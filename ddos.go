// Package ddos is the public facade of the reproduction of "An
// Adversary-Centric Behavior Modeling of DDoS Attacks" (Wang, Mohaisen,
// Chen — ICDCS 2017). It wires the full pipeline together: synthesize an
// AS-level internet, generate a verified-attack dataset with the paper's
// ten botnet families (Table I), extract the §III features, train the
// temporal (ARIMA), spatial (NAR network), and spatiotemporal (model tree)
// predictors, and regenerate every table and figure of the evaluation.
//
// Quick start:
//
//	world, err := ddos.NewWorld(ddos.Config{Seed: 1, Scale: 0.2})
//	fc, err := world.ForecastNextAttack("DirtJumper")
//	fmt.Println(fc.Start, fc.Magnitude)
//
// The experiment entry points (Table1, Figure1, … Figure5, Comparison)
// mirror the paper's evaluation section; cmd/ddosrepro prints them all.
package ddos

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/trace"
)

// Config sizes the synthetic world. The zero value reproduces the paper's
// seven-month, ~45-50k-attack dataset (Scale 1.0).
type Config struct {
	// Seed drives all randomness; equal seeds reproduce every number.
	Seed uint64
	// Scale multiplies Table I attack volumes (0 < Scale <= 1; default 1).
	Scale float64
	// HorizonDays is the observation window (default 220 days).
	HorizonDays int
}

// World is a generated dataset plus the topology and feature extractors
// shared by all experiments.
type World struct {
	env *eval.Env
}

// NewWorld synthesizes the topology, generates the verified-attack
// dataset, and runs the routing-table inference pipeline.
func NewWorld(cfg Config) (*World, error) {
	env, err := eval.BuildEnv(eval.Config{
		Seed:        cfg.Seed,
		Scale:       cfg.Scale,
		HorizonDays: cfg.HorizonDays,
	})
	if err != nil {
		return nil, fmt.Errorf("ddos: %w", err)
	}
	return &World{env: env}, nil
}

// Env exposes the underlying experiment environment for advanced use
// (direct access to the dataset, topology, and feature extractors).
func (w *World) Env() *eval.Env { return w.env }

// Dataset returns the generated verified-attack dataset.
func (w *World) Dataset() *trace.Dataset { return w.env.Dataset }

// SaveDataset writes the dataset as JSON to path.
func (w *World) SaveDataset(path string) error { return w.env.Dataset.SaveFile(path) }

// Table1 computes the activity level of bots (Table I) with the paper's
// reference values attached.
func (w *World) Table1() []eval.Table1Row { return eval.RunTable1(w.env) }

// Table2 returns the model-variable inventory (Table II).
func (w *World) Table2() []eval.Table2Row { return eval.RunTable2() }

// Figure1 reproduces the temporal prediction of attack magnitudes for the
// paper's three most active families (or the given ones).
func (w *World) Figure1(families ...string) ([]eval.Figure1Series, error) {
	return eval.RunFigure1(w.env, families)
}

// Figure2 reproduces the spatial prediction of attacking source (ASN)
// distributions.
func (w *World) Figure2(families ...string) ([]eval.Figure2Result, error) {
	return eval.RunFigure2(w.env, families, 5)
}

// Figure34 reproduces the spatiotemporal timestamp experiment (Figures 3
// and 4): per-model predicted hour/day distributions, error distributions,
// and the RMSE comparison.
func (w *World) Figure34() (*eval.Figure34Result, error) {
	return eval.RunFigure34(w.env, eval.Figure34Config{})
}

// Figure5 runs both §VII-B use cases (AS-based filtering and middlebox
// traversal).
func (w *World) Figure5() (*eval.Figure5Result, error) {
	return eval.RunFigure5(w.env, eval.Figure5Config{})
}

// Comparison reproduces the §VII-A RMSE comparison of the paper's models
// against the Always Same and Always Mean baselines on the five most
// active families.
func (w *World) Comparison() ([]eval.ComparisonRow, error) {
	return eval.RunComparison(w.env, 5)
}

// Forecast is a prediction of a family's next attack.
type Forecast struct {
	Family    string
	Start     time.Time // predicted launch time
	Hour      float64   // predicted hour of day
	Day       float64   // predicted day of month
	Magnitude float64   // predicted number of bots
}

// ForecastNextAttack trains the temporal model on a family's full history
// and predicts its next attack.
func (w *World) ForecastNextAttack(family string) (*Forecast, error) {
	attacks := w.env.Dataset.ByFamily(family)
	if len(attacks) == 0 {
		return nil, fmt.Errorf("ddos: unknown family %q", family)
	}
	m, err := core.FitTemporal(family, attacks, core.TemporalConfig{})
	if err != nil {
		return nil, fmt.Errorf("ddos: %w", err)
	}
	return &Forecast{
		Family:    family,
		Start:     m.PredictNextStart(),
		Hour:      m.PredictHour(),
		Day:       m.PredictDay(),
		Magnitude: m.PredictMagnitude(),
	}, nil
}

// Families lists the dataset's families, most active first.
func (w *World) Families() []string { return w.env.Dataset.Families() }

// TrainBundle fits the deployable model bundle (temporal models per
// family, spatial models per network) on the world's dataset.
func (w *World) TrainBundle() (*core.Bundle, error) {
	return core.TrainBundle(w.env.Dataset, core.BundleConfig{
		Spatial: core.SpatialConfig{Seed: w.env.Cfg.Seed},
	})
}

// LoadDataset reads a dataset written by SaveDataset (or cmd/ddosgen).
func LoadDataset(path string) (*trace.Dataset, error) {
	return trace.LoadFile(path)
}
