package ddos_test

import (
	"fmt"

	"repro"
)

// Generate a small world and read off the most active family.
func ExampleNewWorld() {
	world, err := ddos.NewWorld(ddos.Config{Seed: 1, Scale: 0.05, HorizonDays: 60})
	if err != nil {
		panic(err)
	}
	fams := world.Families()
	fmt.Println("families:", len(fams))
	fmt.Println("most active:", fams[0])
	// Output:
	// families: 10
	// most active: DirtJumper
}
