#!/usr/bin/env bash
# Ingest-wire benchmark lane: boots a fresh ddosd per wire mode, drives
# the same closed-loop record stream through ddosload over scalar JSON
# requests and over binary batch frames (application/x-ddos-batch), runs
# the server-side testing.B microbenchmarks for the allocs-per-record
# numbers, and merges everything into BENCH_6.json
# (schema: protocol -> rec/s, p50/p99 latency, allocs/record), stamped
# with the build provenance (toolchain + commit) ddosload reports.
#
# Exits non-zero unless the binary wire's end-to-end rec/s beats the JSON
# wire's by at least BENCH_MIN_SPEEDUP (default 1.0 — "binary must be
# faster"; the checked-in BENCH_6.json documents the real margin).
#
# A second stage measures cluster routing overhead: the same 64-record
# binary batch landing on its owner directly, through a non-owner's
# split-proxy, and via a 307 redirect bounce, on a 2-in-process-node
# cluster (the BenchmarkClusterRouting* fixtures). The deltas land in
# BENCH_7.json (schema: route -> ns/op, µs/record, allocs/op, overhead
# vs direct).
#
# A third stage measures the online model layer: per-cycle CPU of a full
# target refit vs the incremental fold-in path (BenchmarkRefitFull /
# BenchmarkRefitIncremental), cross-checked against the serve-level
# accuracy-parity test and the zero-alloc batch-ingest pin. The ratio
# lands in BENCH_10.json; the stage fails unless incremental is at least
# BENCH_MIN_REFIT_RATIO (default 3.0) times cheaper at equal-or-better
# tracked accuracy.
#
# Env knobs: BENCH_OUT (default ./BENCH_6.json), BENCH7_OUT (default
# ./BENCH_7.json), BENCH10_OUT (default ./BENCH_10.json), BENCH_RECORDS
# (default 60000), BENCH_BATCH (default 64), BENCH_MIN_SPEEDUP (default
# 1.0), BENCH_MIN_REFIT_RATIO (default 3.0).
set -euo pipefail

workdir="$(mktemp -d)"
out="${BENCH_OUT:-BENCH_6.json}"
out7="${BENCH7_OUT:-BENCH_7.json}"
out10="${BENCH10_OUT:-BENCH_10.json}"
min_refit_ratio="${BENCH_MIN_REFIT_RATIO:-3.0}"
records="${BENCH_RECORDS:-60000}"
batch="${BENCH_BATCH:-64}"
min_speedup="${BENCH_MIN_SPEEDUP:-1.0}"
daemon_pid=""
cleanup() {
  [[ -n "$daemon_pid" ]] && kill "$daemon_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "==> building ddosd and ddosload"
go build -o "$workdir/bin/" ./cmd/ddosd ./cmd/ddosload

# boot <name>: start a fresh daemon (own WAL dir, interval fsync — the
# production durability posture) and wait for its listen address.
boot() {
  local name="$1"
  "$workdir/bin/ddosd" -addr 127.0.0.1:0 \
    -wal-dir "$workdir/wal-$name" -wal-fsync 50ms \
    >"$workdir/ddosd-$name.log" 2>&1 &
  daemon_pid=$!
  addr=""
  for _ in $(seq 1 120); do
    addr="$(sed -n 's/^.*msg=listening .*addr=\([^ ]*\).*$/\1/p' "$workdir/ddosd-$name.log" | head -n1)"
    [[ -n "$addr" ]] && break
    kill -0 "$daemon_pid" 2>/dev/null || { cat "$workdir/ddosd-$name.log"; echo "ddosd died during boot"; exit 1; }
    sleep 0.2
  done
  [[ -n "$addr" ]] || { cat "$workdir/ddosd-$name.log"; echo "ddosd never started"; exit 1; }
}

stop() {
  kill "$daemon_pid" 2>/dev/null || true
  wait "$daemon_pid" 2>/dev/null || true
  daemon_pid=""
}

run_wire() { # run_wire <wire> <batch>
  local wire="$1" b="$2"
  boot "$wire"
  echo "==> $wire wire: $records records, batch $b, against $addr"
  "$workdir/bin/ddosload" -addr "http://$addr" -mode closed \
    -records "$records" -workers 8 -seed 7 \
    -wire "$wire" -batch "$b" \
    -slo-errors 0 -json >"$workdir/report-$wire.json" \
    || { echo "FAIL: ddosload $wire run"; cat "$workdir/ddosd-$wire.log"; exit 1; }
  stop
}

# Scalar JSON requests are the status quo this PR's wire replaces; the
# binary wire runs batched, which is the point of the protocol.
run_wire json 1
run_wire binary "$batch"

echo "==> server-side microbenchmarks (allocs/record)"
go test -run '^$' -bench 'BenchmarkIngest(BatchBinary|ScalarJSON)$' -benchmem \
  ./internal/serve | tee "$workdir/bench.txt"

python3 - "$workdir" "$out" "$records" "$batch" "$min_speedup" <<'EOF'
import json, re, sys

workdir, out, records, batch, min_speedup = (
    sys.argv[1], sys.argv[2], int(sys.argv[3]), int(sys.argv[4]), float(sys.argv[5]))

def load_report(wire):
    with open(f"{workdir}/report-{wire}.json") as f:
        return json.load(f)

# Both microbenchmarks process 64 records per op, so allocs/op / 64 is
# allocs/record for each path.
allocs = {}
with open(f"{workdir}/bench.txt") as f:
    for line in f:
        m = re.match(r"BenchmarkIngest(BatchBinary|ScalarJSON)\S*\s.*?(\d+)\s+allocs/op", line)
        if m:
            wire = "binary" if m.group(1) == "BatchBinary" else "json"
            allocs[wire] = int(m.group(2)) / 64
for wire in ("json", "binary"):
    assert wire in allocs, f"bench.txt is missing the {wire} microbenchmark"

protocols = {}
build = None
for wire, b in (("json", 1), ("binary", batch)):
    doc = load_report(wire)
    rep = doc["report"]
    # ddosload stamps each -json report with the build that produced it;
    # carry that provenance into the archived artifact so numbers stay
    # attributable to a commit and toolchain.
    build = doc["provenance"]["build"]
    assert build["go_version"], doc["provenance"]
    assert rep["errors"] == 0, f"{wire} run had {rep['errors']} errors"
    assert rep["accepted"] > 0, f"{wire} run accepted nothing"
    protocols[wire] = {
        "batch": b,
        "rec_per_sec": round(rep["throughput_rps"], 1),
        "p50_sec": rep["latency_sec"]["p50"],
        "p99_sec": rep["latency_sec"]["p99"],
        "allocs_per_record": allocs[wire],
    }

speedup = protocols["binary"]["rec_per_sec"] / protocols["json"]["rec_per_sec"]
doc = {
    "bench": "ingest-wire",
    "issue": 6,
    "mode": "closed-loop",
    "build": build,
    "records_per_protocol": records,
    "protocols": protocols,
    "binary_speedup": round(speedup, 2),
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(json.dumps(doc, indent=2))
if speedup < min_speedup:
    sys.exit(f"FAIL: binary wire is {speedup:.2f}x JSON, want >= {min_speedup}x")
print(f"==> binary wire is {speedup:.2f}x the JSON wire ({out})")
EOF

echo "==> cluster routing overhead (direct vs split-proxy vs 307 redirect)"
go test -run '^$' -bench 'BenchmarkClusterRouting(Direct|Proxy|Redirect)$' -benchmem \
  ./internal/cluster | tee "$workdir/bench-cluster.txt"

python3 - "$workdir" "$out7" <<'EOF'
import json, re, sys

workdir, out = sys.argv[1], sys.argv[2]
BATCH = 64  # records per benchmarked request (see benchCluster)

# Same checkout produced both stages: reuse the binary run's provenance.
with open(f"{workdir}/report-binary.json") as f:
    build = json.load(f)["provenance"]["build"]

routes = {}
with open(f"{workdir}/bench-cluster.txt") as f:
    for line in f:
        m = re.match(
            r"BenchmarkClusterRouting(Direct|Proxy|Redirect)\S*\s+\d+\s+([\d.]+) ns/op"
            r"(?:\s+([\d.]+) B/op\s+(\d+) allocs/op)?", line)
        if m:
            ns = float(m.group(2))
            routes[m.group(1).lower()] = {
                "ns_per_op": ns,
                "us_per_record": round(ns / 1000 / BATCH, 3),
                "allocs_per_op": int(m.group(4)) if m.group(4) else None,
            }
for r in ("direct", "proxy", "redirect"):
    assert r in routes, f"bench-cluster.txt is missing the {r} benchmark"

direct = routes["direct"]["ns_per_op"]
doc = {
    "bench": "cluster-routing",
    "issue": 7,
    "build": build,
    "nodes": 2,
    "wire": "binary",
    "batch": BATCH,
    "routes": routes,
    "proxy_overhead": round(routes["proxy"]["ns_per_op"] / direct, 2),
    "redirect_overhead": round(routes["redirect"]["ns_per_op"] / direct, 2),
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(json.dumps(doc, indent=2))
print(f"==> proxy {doc['proxy_overhead']}x, redirect {doc['redirect_overhead']}x of direct ({out})")
EOF

echo "==> online model layer: full vs incremental refit cost"
go test -run '^$' -bench 'BenchmarkRefit(Full|Incremental)$' -benchtime=40x \
  ./internal/serve | tee "$workdir/bench-refit.txt"
echo "==> online model layer: accuracy parity + zero-alloc ingest pin"
go test -run 'TestIncrementalServeAccuracyParity|TestIngestBatchZeroAlloc' -v \
  ./internal/serve | tee "$workdir/refit-parity.txt"

python3 - "$workdir" "$out10" "$min_refit_ratio" <<'EOF'
import json, re, sys

workdir, out, min_ratio = sys.argv[1], sys.argv[2], float(sys.argv[3])

# Same checkout produced every stage: reuse the binary run's provenance.
with open(f"{workdir}/report-binary.json") as f:
    build = json.load(f)["provenance"]["build"]

ns = {}
with open(f"{workdir}/bench-refit.txt") as f:
    for line in f:
        m = re.match(r"BenchmarkRefit(Full|Incremental)\S*\s+\d+\s+([\d.]+) ns/op", line)
        if m:
            ns[m.group(1).lower()] = float(m.group(2))
for k in ("full", "incremental"):
    assert k in ns, f"bench-refit.txt is missing the {k} benchmark"

parity = {}
with open(f"{workdir}/refit-parity.txt") as f:
    text = f.read()
m = re.search(
    r"INCR_PARITY incremental_refits=(\d+) full_magnitude_relerr=([\d.]+)"
    r" incremental_magnitude_relerr=([\d.]+)", text)
assert m, "refit-parity.txt is missing the INCR_PARITY line"
assert "--- PASS: TestIncrementalServeAccuracyParity" in text, "accuracy parity test failed"
assert "--- PASS: TestIngestBatchZeroAlloc" in text, "zero-alloc batch-ingest pin failed"
parity = {
    "incremental_refits": int(m.group(1)),
    "full_magnitude_relerr": float(m.group(2)),
    "incremental_magnitude_relerr": float(m.group(3)),
}

ratio = ns["full"] / ns["incremental"]
doc = {
    "bench": "online-model-layer",
    "issue": 10,
    "build": build,
    "window_records": 160,
    "fold_in_records": 8,
    "refit_ns_per_cycle": {"full": ns["full"], "incremental": ns["incremental"]},
    "incremental_speedup": round(ratio, 2),
    "accuracy_parity": parity,
    "zero_alloc_ingest_pin": "pass",
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(json.dumps(doc, indent=2))
if ratio < min_ratio:
    sys.exit(f"FAIL: incremental refit is only {ratio:.2f}x cheaper, want >= {min_ratio}x")
if parity["incremental_magnitude_relerr"] > parity["full_magnitude_relerr"] * 1.10 + 0.05:
    sys.exit("FAIL: incremental refit traded away tracked accuracy")
print(f"==> incremental refit is {ratio:.2f}x cheaper per cycle ({out})")
EOF
