#!/usr/bin/env bash
# CI smoke test for the online serving stack: build every command, boot
# ddosd on a random port with a freshly generated trace, ingest a record
# over HTTP, assert a 200 forecast for a target the trace contains, drive
# paced load, and assert the observability surface is live: per-stage
# latency histograms, online accuracy gauges, /accuracy, /debug/traces,
# and the pprof admin mux. Then the durability pass: kill -9 the daemon
# mid-load, restart it on the same -wal-dir, and assert the replayed
# store knows the same targets and still serves forecasts. The ddosload
# run writes its machine-readable JSON report to $REPORT_OUT (default:
# inside the temp workdir) so CI can archive it as an artifact.
#
# A watchdog stage then re-boots the daemon with the SLO flight recorder
# armed on an unreachable ingest-p99 threshold and asserts a diagnostics
# bundle materializes on disk and streams back over /debug/bundle.
#
# The final stage forms a 2-node cluster, sprays load across both
# members, scrapes the /statusz fleet aggregation, kill -9s one node
# mid-load, promotes the survivor, and asserts forecast continuity. Set
# SMOKE_CLUSTER_ONLY=1 to run just that stage (the CI cluster lane does).
set -euo pipefail

workdir="$(mktemp -d)"
report_out="${REPORT_OUT:-$workdir/ddosload-report.json}"
daemon_pid=""
cluster_pids=""
cleanup() {
  [[ -n "$daemon_pid" ]] && kill "$daemon_pid" 2>/dev/null || true
  for p in $cluster_pids; do kill "$p" 2>/dev/null || true; done
  rm -rf "$workdir"
}
trap cleanup EXIT

free_port() {
  python3 -c 'import socket; s=socket.socket(); s.bind(("127.0.0.1",0)); print(s.getsockname()[1]); s.close()'
}

# cluster_stage boots a 2-node ring, drives mixed-owner load through both
# members (ownership routing sorts every record to its owner), waits for
# WAL-shipped replication to drain, kill -9s node n1 under fresh load,
# promotes n2, and requires every target — including the dead node's —
# to keep serving /forecast from the survivor.
cluster_stage() {
  echo "==> cluster: forming a 2-node ring"
  local cdir="$workdir/cluster"
  mkdir -p "$cdir"
  local port1 port2
  port1="$(free_port)"
  port2="$(free_port)"
  local peers="n1=http://127.0.0.1:$port1,n2=http://127.0.0.1:$port2"
  "$workdir/bin/ddosd" -addr "127.0.0.1:$port1" -wal-dir "$cdir/wal1" -wal-fsync 50ms \
    -cluster-peers "$peers" -cluster-self n1 -cluster-poll 200ms >"$cdir/n1.log" 2>&1 &
  local pid1=$!
  "$workdir/bin/ddosd" -addr "127.0.0.1:$port2" -wal-dir "$cdir/wal2" -wal-fsync 50ms \
    -cluster-peers "$peers" -cluster-self n2 -cluster-poll 200ms >"$cdir/n2.log" 2>&1 &
  local pid2=$!
  cluster_pids="$pid1 $pid2"

  # Readiness: both nodes must log listening with the same ring epoch.
  local epoch1="" epoch2=""
  for _ in $(seq 1 120); do
    epoch1="$(sed -n 's/^.*msg=listening .*ring_epoch=\([0-9]*\).*$/\1/p' "$cdir/n1.log" | head -n1)"
    epoch2="$(sed -n 's/^.*msg=listening .*ring_epoch=\([0-9]*\).*$/\1/p' "$cdir/n2.log" | head -n1)"
    [[ -n "$epoch1" && -n "$epoch2" ]] && break
    kill -0 "$pid1" 2>/dev/null || { cat "$cdir/n1.log"; echo "FAIL: cluster node n1 died during boot"; exit 1; }
    kill -0 "$pid2" 2>/dev/null || { cat "$cdir/n2.log"; echo "FAIL: cluster node n2 died during boot"; exit 1; }
    sleep 0.5
  done
  [[ -n "$epoch1" && -n "$epoch2" ]] || { cat "$cdir/n1.log" "$cdir/n2.log"; echo "FAIL: cluster never formed"; exit 1; }
  [[ "$epoch1" == "$epoch2" ]] || { echo "FAIL: ring epochs disagree: $epoch1 vs $epoch2"; exit 1; }
  echo "==> cluster: both nodes up, ring epoch $epoch1"

  # Spray binary batches across both members: roughly half the records
  # arrive at their non-owner and must be split-proxied to the owner.
  "$workdir/bin/ddosload" -addrs "http://127.0.0.1:$port1,http://127.0.0.1:$port2" \
    -wire binary -batch 16 -records 2000 -targets 8 -workers 4 -seed 7 \
    -slo-errors 0 >/dev/null \
    || { cat "$cdir/n1.log" "$cdir/n2.log"; echo "FAIL: cluster ddosload run"; exit 1; }

  # Quiesce: wait until both nodes report zero replication lag, so every
  # acked record is on its follower before the kill.
  local drained=""
  for _ in $(seq 1 60); do
    drained="$(
      { curl -s "http://127.0.0.1:$port1/healthz"; echo; curl -s "http://127.0.0.1:$port2/healthz"; } \
      | python3 -c '
import json, sys
ok = True
for line in sys.stdin:
    line = line.strip()
    if not line:
        continue
    h = json.loads(line)
    for r in (h.get("cluster") or {}).get("replication") or []:
        if r["lag_segments"] != 0 or r["errors"] != 0:
            ok = False
print("yes" if ok else "no")' | tail -n1
    )"
    [[ "$drained" == "yes" ]] && break
    sleep 0.5
  done
  [[ "$drained" == "yes" ]] || { cat "$cdir/n1.log" "$cdir/n2.log"; echo "FAIL: replication never drained"; exit 1; }
  echo "==> cluster: replication drained"

  # Fleet status: /statusz on n1 must aggregate both members — its own
  # section marshaled locally, n2's fetched over the ring — mark the
  # answering node, and carry per-peer build provenance; ?local=1 must
  # answer the bare node section without fanning out.
  curl -s "http://127.0.0.1:$port1/statusz" | python3 -c '
import json, sys
st = json.load(sys.stdin)
assert st["node"] == "n1" and st["members"] == 2, st
peers = {p["id"]: p for p in st["peers"]}
assert set(peers) == {"n1", "n2"}, sorted(peers)
assert peers["n1"].get("self") is True, peers["n1"]
for name, p in peers.items():
    assert not p.get("error"), p
    assert p["status"]["health"]["status"] == "ok", name
    assert p["status"]["build"]["go_version"], name
assert any(r["peer"] == "n2" for r in st.get("replication") or []), st' \
    || { cat "$cdir/n1.log"; echo "FAIL: /statusz fleet aggregation"; exit 1; }
  curl -s "http://127.0.0.1:$port1/statusz?local=1" | python3 -c '
import json, sys
st = json.load(sys.stdin)
assert "health" in st and "peers" not in st, sorted(st)' \
    || { echo "FAIL: /statusz?local=1 answered a fleet document"; exit 1; }
  # The fan-out just probed n2, so the peer-liveness gauge must read up.
  curl -s "http://127.0.0.1:$port1/metrics" | grep -q 'ddosd_cluster_peer_up{peer="n2"} 1' \
    || { echo "FAIL: ddosd_cluster_peer_up for n2 is not 1"; exit 1; }
  echo "==> cluster: /statusz aggregates both members"

  # Fresh load through the survivor-to-be, then kill -9 the other node
  # mid-flight (proxied partitions to it will fail; -slo-errors -1 keeps
  # the driver from gating on them).
  "$workdir/bin/ddosload" -addr "http://127.0.0.1:$port2" -mode open \
    -rate 200 -duration 4s -workers 4 -targets 8 -seed 11 \
    -wire binary -batch 16 -slo-errors -1 >/dev/null 2>&1 &
  local load_pid=$!
  sleep 1
  echo "==> cluster: kill -9 node n1 mid-load"
  kill -9 "$pid1"
  wait "$pid1" 2>/dev/null || true
  wait "$load_pid" 2>/dev/null || true
  cluster_pids="$pid2"

  echo "==> cluster: promoting n2"
  local status
  status="$(curl -s -o "$workdir/promote.json" -w '%{http_code}' -X POST "http://127.0.0.1:$port2/cluster/promote?dead=n1")"
  [[ "$status" == 200 ]] || { cat "$workdir/promote.json"; echo "FAIL: promote returned HTTP $status"; exit 1; }

  # Survivor serves /forecast for every target, its own and the dead
  # node's (ddosload numbers targets 64512..64519).
  curl -s "http://127.0.0.1:$port2/healthz" | python3 -c '
import json, sys
h = json.load(sys.stdin)
c = h["cluster"]
assert c["node"] == "n2" and c["members"] == 1, c
assert not c.get("replication"), c' \
    || { cat "$cdir/n2.log"; echo "FAIL: survivor healthz after promotion"; exit 1; }
  local as ok_targets=0
  for as in $(seq 64512 64519); do
    for _ in $(seq 1 40); do
      status="$(curl -s -o /dev/null -w '%{http_code}' "http://127.0.0.1:$port2/forecast?target=$as")"
      [[ "$status" == 200 ]] && { ok_targets=$((ok_targets + 1)); break; }
      sleep 0.25
    done
    [[ "$status" == 200 ]] || { cat "$cdir/n2.log"; echo "FAIL: forecast for AS$as is HTTP $status after failover"; exit 1; }
  done
  echo "==> cluster: all $ok_targets targets forecast from the survivor"

  # The survivor's metrics must show replication and the promotion.
  curl -s "http://127.0.0.1:$port2/metrics" >"$workdir/cluster-metrics.txt"
  grep -Eq '^ddosd_cluster_replicated_records_total [1-9]' "$workdir/cluster-metrics.txt" \
    || { echo "FAIL: survivor replicated zero records"; grep '^ddosd_cluster' "$workdir/cluster-metrics.txt"; exit 1; }
  grep -Eq '^ddosd_cluster_promotions_total 1' "$workdir/cluster-metrics.txt" \
    || { echo "FAIL: promotion not counted"; grep '^ddosd_cluster' "$workdir/cluster-metrics.txt"; exit 1; }

  kill -TERM "$pid2"
  wait "$pid2" 2>/dev/null || true
  cluster_pids=""
  echo "==> cluster stage passed"
}

echo "==> building all commands"
go build -o "$workdir/bin/" ./cmd/...

if [[ -n "${SMOKE_CLUSTER_ONLY:-}" ]]; then
  cluster_stage
  echo "smoke test passed (cluster stage only)"
  exit 0
fi

echo "==> generating a trace"
"$workdir/bin/ddosgen" -scale 0.1 -seed 7 -horizon 120 -o "$workdir/trace.json"

# Pick the most-attacked target AS from the trace.
target="$(python3 - "$workdir/trace.json" <<'EOF'
import collections, json, sys
with open(sys.argv[1]) as f:
    attacks = json.load(f)["attacks"]
print(collections.Counter(a["target_as"] for a in attacks).most_common(1)[0][0])
EOF
)"
echo "==> most-attacked target: AS$target"

echo "==> booting ddosd"
"$workdir/bin/ddosd" -addr 127.0.0.1:0 -admin-addr 127.0.0.1:0 \
  -data "$workdir/trace.json" -detect \
  -wal-dir "$workdir/wal" -wal-fsync 50ms \
  -snapshot-out "$workdir/models.snap" >"$workdir/ddosd.log" 2>&1 &
daemon_pid=$!

# The daemon emits slog lines 'msg=listening ... addr=<addr>' (serving mux)
# and 'msg="admin listening" ... addr=<addr>' (pprof mux) once warm start
# completes.
addr=""
admin_addr=""
for _ in $(seq 1 120); do
  addr="$(sed -n 's/^.*msg=listening .*addr=\([^ ]*\).*$/\1/p' "$workdir/ddosd.log" | head -n1)"
  [[ -n "$addr" ]] && break
  kill -0 "$daemon_pid" 2>/dev/null || { cat "$workdir/ddosd.log"; echo "ddosd died during boot"; exit 1; }
  sleep 0.5
done
[[ -n "$addr" ]] || { cat "$workdir/ddosd.log"; echo "ddosd never started listening"; exit 1; }
admin_addr="$(sed -n 's/^.*msg="admin listening" .*addr=\([^ ]*\).*$/\1/p' "$workdir/ddosd.log" | head -n1)"
[[ -n "$admin_addr" ]] || { cat "$workdir/ddosd.log"; echo "ddosd admin mux never started"; exit 1; }
echo "==> ddosd listening on $addr (admin $admin_addr)"

check() { # check <name> <url> [curl args...]
  local name="$1" url="$2"; shift 2
  local status
  status="$(curl -s -o "$workdir/resp.json" -w '%{http_code}' "$@" "$url")"
  if [[ "$status" != 200 ]]; then
    echo "FAIL: $name returned HTTP $status"
    cat "$workdir/resp.json"; echo; cat "$workdir/ddosd.log"
    exit 1
  fi
  echo "==> $name OK: $(head -c 200 "$workdir/resp.json" | tr -d '\0')"
}

check healthz "http://$addr/healthz"
check forecast "http://$addr/forecast?target=$target"
grep -q "\"target_as\":$target" "$workdir/resp.json" || { echo "FAIL: forecast for wrong target"; exit 1; }

check ingest "http://$addr/ingest" -X POST -d "{
  \"id\": 90000001, \"family\": \"DirtJumper\",
  \"start\": \"2012-12-01T14:05:00Z\", \"duration_sec\": 900,
  \"target_as\": $target, \"bots\": [167772161, 167772162]
}"
grep -q '"ingested":1' "$workdir/resp.json" || { echo "FAIL: record not ingested"; exit 1; }

check metrics "http://$addr/metrics"
grep -q '^ddosd_ingest_records_total' "$workdir/resp.json" || { echo "FAIL: metrics missing ingest counter"; exit 1; }

# Ten seconds of paced load through ddosload, gating on its SLO exit code
# and archiving the machine-readable report for CI. The pace and the p99
# ceiling are deliberately modest: the daemon is refitting at full
# -nar-epochs in the background, and CI runners are slow.
echo "==> driving 10s of open-loop load through ddosload"
"$workdir/bin/ddosload" -addr "http://$addr" -mode open \
  -rate 100 -rate-end 200 -duration 10s -workers 8 -seed 7 \
  -slo-errors 0 -slo-p99 5s -json >"$report_out" \
  || { echo "FAIL: ddosload SLO gate"; cat "$report_out" 2>/dev/null; cat "$workdir/ddosd.log"; exit 1; }
python3 - "$report_out" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    rep = json.load(f)
assert rep["slo_pass"] is True, rep
assert rep["report"]["accepted"] > 0, rep
assert "p99" in rep["report"]["latency_sec"], rep
EOF
echo "==> ddosload JSON report OK ($report_out)"

# One more forecast so the forecast stage histogram has post-load traffic.
check post-load-forecast "http://$addr/forecast?target=$target"

check post-load-metrics "http://$addr/metrics"
grep -q '^ddosd_ingest_records_total' "$workdir/resp.json" || { echo "FAIL: metrics gone after load"; exit 1; }
for stage in ingest append detect schedule score fit publish forecast; do
  grep -Eq "^ddosd_stage_seconds_count\{stage=\"$stage\"\} [1-9]" "$workdir/resp.json" \
    || { echo "FAIL: stage histogram \"$stage\" never observed"; grep '^ddosd_stage_seconds_count' "$workdir/resp.json"; exit 1; }
done
grep -q '^ddosd_detect_records_total' "$workdir/resp.json" \
  || { echo "FAIL: metrics missing detect record counter"; exit 1; }
grep -q '^ddosd_detect_active_alerts' "$workdir/resp.json" \
  || { echo "FAIL: metrics missing detect active-alerts gauge"; exit 1; }
for model in st always_same always_mean; do
  grep -Eq "^ddosd_accuracy_samples\{model=\"$model\"\} [1-9]" "$workdir/resp.json" \
    || { echo "FAIL: accuracy gauge for \"$model\" is zero"; grep '^ddosd_accuracy' "$workdir/resp.json"; exit 1; }
done
grep -q "ddosd_accuracy_timestamp_hit_rate{model=\"st\"}" "$workdir/resp.json" \
  || { echo "FAIL: metrics missing accuracy hit-rate gauge"; exit 1; }

check accuracy "http://$addr/accuracy"
python3 - "$workdir/resp.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    acc = json.load(f)
models = acc["models"]
for kind in ("st", "temporal", "spatial", "always_same", "always_mean"):
    assert kind in models, f"missing model {kind}: {sorted(models)}"
assert models["st"]["samples"] > 0, models["st"]
assert models["always_same"]["timestamp"]["samples"] > 0, models["always_same"]
EOF

# The streaming detector is on (-detect): /alerts must report an enabled
# tier whose record count covers the load that just ran. Open-loop smoke
# traffic is baseline-shaped, so no particular alert is required — only a
# live, balanced report.
check alerts "http://$addr/alerts?limit=16"
python3 - "$workdir/resp.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    rep = json.load(f)
assert rep["enabled"] is True, rep
stats = rep["stats"]
assert stats["records"] > 0, rep
assert stats["active"] == stats["raised"] - stats["cleared"], rep
EOF

check traces "http://$addr/debug/traces"
python3 - "$workdir/resp.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    snap = json.load(f)
traces = snap["traces"]
assert traces, "trace ring is empty"
assert any(t.get("children") for t in traces), "no complete span tree retained"
EOF

check buildinfo "http://$addr/buildinfo"
grep -q '"go_version"' "$workdir/resp.json" || { echo "FAIL: buildinfo missing go version"; exit 1; }

# The admin mux answers pprof and expvar; the serving mux must not.
check admin-pprof "http://$admin_addr/debug/pprof/cmdline"
check admin-expvar "http://$admin_addr/debug/vars"
if curl -s -o /dev/null -w '%{http_code}' "http://$addr/debug/pprof/cmdline" | grep -q '^200$'; then
  echo "FAIL: pprof exposed on the public serving mux"
  exit 1
fi

# Crash recovery: SIGKILL the daemon mid-load (no graceful shutdown, no
# final WAL checkpoint), restart it on the same -wal-dir without -data,
# and require the replayed store to know the same targets and still serve
# forecasts. -wal-fsync 50ms means the last <50ms of acks may be torn —
# the restart must treat that as a truncated tail, never a fatal error.
# The load runs on the binary batch wire, so the WAL the daemon replays
# holds binary-ingested frames — recovery must decode those losslessly.
echo "==> kill -9 mid-load (binary wire), then crash recovery from the WAL"
targets_before="$(curl -s "http://$addr/healthz" | python3 -c 'import json,sys; print(json.load(sys.stdin)["targets_known"])')"
"$workdir/bin/ddosload" -addr "http://$addr" -mode open \
  -rate 200 -duration 5s -workers 4 -seed 11 \
  -wire binary -batch 16 >/dev/null 2>&1 &
load_pid=$!
sleep 1
kill -9 "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""
wait "$load_pid" 2>/dev/null || true

"$workdir/bin/ddosd" -addr 127.0.0.1:0 \
  -wal-dir "$workdir/wal" -wal-fsync 50ms \
  -snapshot-out "$workdir/models.snap" >"$workdir/ddosd2.log" 2>&1 &
daemon_pid=$!
addr=""
for _ in $(seq 1 120); do
  addr="$(sed -n 's/^.*msg=listening .*addr=\([^ ]*\).*$/\1/p' "$workdir/ddosd2.log" | head -n1)"
  [[ -n "$addr" ]] && break
  kill -0 "$daemon_pid" 2>/dev/null || { cat "$workdir/ddosd2.log"; echo "ddosd died during crash recovery"; exit 1; }
  sleep 0.5
done
[[ -n "$addr" ]] || { cat "$workdir/ddosd2.log"; echo "ddosd never recovered from the WAL"; exit 1; }
grep -q 'msg="wal recovered"' "$workdir/ddosd2.log" || { cat "$workdir/ddosd2.log"; echo "FAIL: no WAL recovery log line"; exit 1; }
echo "==> recovered ddosd listening on $addr"

check recovered-healthz "http://$addr/healthz"
python3 - "$workdir/resp.json" "$targets_before" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    h = json.load(f)
before = int(sys.argv[2])
assert h["targets_known"] >= before, f'{h["targets_known"]} targets after recovery, {before} before the kill'
assert h["targets_served"] > 0, h
EOF
check recovered-forecast "http://$addr/forecast?target=$target"
grep -q "\"target_as\":$target" "$workdir/resp.json" || { echo "FAIL: recovered forecast for wrong target"; exit 1; }
check recovered-metrics "http://$addr/metrics"
grep -Eq '^ddosd_wal_replayed_records_total [1-9]' "$workdir/resp.json" \
  || { echo "FAIL: WAL replay counter is zero after crash recovery"; grep '^ddosd_wal' "$workdir/resp.json"; exit 1; }

# Graceful shutdown must write a loadable snapshot, and ddospredict must
# forecast from it (and exit non-zero for a bogus target).
kill -TERM "$daemon_pid"
wait "$daemon_pid" || true
daemon_pid=""
[[ -s "$workdir/models.snap" ]] || { cat "$workdir/ddosd.log"; echo "FAIL: no shutdown snapshot"; exit 1; }
"$workdir/bin/ddospredict" -snapshot "$workdir/models.snap" -target "$target" >"$workdir/predict.out" 2>&1 \
  || { echo "FAIL: ddospredict rejected the snapshot"; cat "$workdir/predict.out"; exit 1; }
grep -q "forecast for AS$target" "$workdir/predict.out" \
  || { echo "FAIL: no forecast in ddospredict output"; cat "$workdir/predict.out"; exit 1; }
if "$workdir/bin/ddospredict" -snapshot "$workdir/models.snap" -target 4294900000 >/dev/null 2>&1; then
  echo "FAIL: ddospredict exited zero for an unknown target"
  exit 1
fi

# SLO-breach flight recorder: boot a fresh ddosd with the watchdog armed
# on an unreachable ingest-p99 SLO (1ns — any completed ingest breaches),
# drive one record through, and require a diagnostics bundle to
# materialize on disk and stream back over /debug/bundle.
echo "==> watchdog: booting ddosd with a 1ns ingest-p99 SLO"
"$workdir/bin/ddosd" -addr 127.0.0.1:0 \
  -wal-dir "$workdir/wal-wd" -wal-fsync 50ms \
  -watchdog-dir "$workdir/bundles" -watchdog-interval 250ms \
  -watchdog-cooldown 1h -watchdog-cpu-profile 100ms \
  -watchdog-p99 1ns >"$workdir/ddosd-wd.log" 2>&1 &
daemon_pid=$!
addr=""
for _ in $(seq 1 120); do
  addr="$(sed -n 's/^.*msg=listening .*addr=\([^ ]*\).*$/\1/p' "$workdir/ddosd-wd.log" | head -n1)"
  [[ -n "$addr" ]] && break
  kill -0 "$daemon_pid" 2>/dev/null || { cat "$workdir/ddosd-wd.log"; echo "ddosd died during watchdog boot"; exit 1; }
  sleep 0.5
done
[[ -n "$addr" ]] || { cat "$workdir/ddosd-wd.log"; echo "ddosd with watchdog never started"; exit 1; }

check watchdog-ingest "http://$addr/ingest" -X POST -d "{
  \"id\": 90000002, \"family\": \"DirtJumper\",
  \"start\": \"2012-12-01T14:10:00Z\", \"duration_sec\": 600,
  \"target_as\": $target, \"bots\": [167772163]
}"

# meta.json is written last, so a bundle listing it is fully captured —
# polling for the name alone races the in-flight cpu profile.
bundle_name=""
for _ in $(seq 1 120); do
  bundle_name="$(curl -s "http://$addr/debug/bundle" | python3 -c '
import json, sys
d = json.load(sys.stdin)
bs = d.get("bundles") or []
print(bs[0]["name"] if bs and "meta.json" in bs[0]["files"] else "")')"
  [[ -n "$bundle_name" ]] && break
  kill -0 "$daemon_pid" 2>/dev/null || { cat "$workdir/ddosd-wd.log"; echo "ddosd died while the watchdog ran"; exit 1; }
  sleep 0.25
done
[[ -n "$bundle_name" ]] || { cat "$workdir/ddosd-wd.log"; echo "FAIL: watchdog never captured a bundle"; exit 1; }
[[ -d "$workdir/bundles/$bundle_name" ]] || { echo "FAIL: bundle $bundle_name not on disk"; ls "$workdir/bundles"; exit 1; }
echo "==> watchdog captured $bundle_name"

check watchdog-meta "http://$addr/debug/bundle?name=$bundle_name&file=meta.json"
python3 - "$workdir/resp.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    meta = json.load(f)
assert any(b["rule"] == "ingest_p99_seconds" for b in meta["breaches"]), meta["breaches"]
assert meta["build"]["go_version"], meta
EOF
# The teed log ring must have carried the boot line into the bundle, and
# the path-traversal guard must hold on the streaming endpoint.
check watchdog-log "http://$addr/debug/bundle?name=$bundle_name&file=log.txt"
grep -q 'msg=listening' "$workdir/resp.json" \
  || { echo "FAIL: bundle log.txt missing the boot line"; exit 1; }
if curl -s -o /dev/null -w '%{http_code}' \
    "http://$addr/debug/bundle?name=$bundle_name&file=../../../etc/passwd" | grep -q '^200$'; then
  echo "FAIL: /debug/bundle served a traversal path"
  exit 1
fi
kill -TERM "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""
echo "==> watchdog stage passed"

cluster_stage

echo "smoke test passed"
