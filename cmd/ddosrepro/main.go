// Command ddosrepro regenerates every table and figure of the paper's
// evaluation on a synthetic world and prints text renderings alongside the
// paper's reported values.
//
// Usage:
//
//	ddosrepro [-seed N] [-scale F] [-horizon D] [-exp all|table1|table2|fig1|fig2|fig34|fig5|compare]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/eval"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ddosrepro: ")
	var (
		seed    = flag.Uint64("seed", 42, "random seed (same seed = identical numbers)")
		scale   = flag.Float64("scale", 1.0, "Table I volume scale in (0,1]")
		horizon = flag.Int("horizon", 220, "observation window in days")
		exp     = flag.String("exp", "all", "experiment: all|table1|table2|features|fig1|fig2|fig34|fig5|compare|ablate|pipeline|drift")
		md      = flag.String("md", "", "also write a markdown report of all experiments to this path")
	)
	flag.Parse()

	t0 := time.Now()
	env, err := eval.BuildEnv(eval.Config{Seed: *seed, Scale: *scale, HorizonDays: *horizon})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("world: %d verified attacks, %d families, %d inferred ASes (built in %v)\n\n",
		env.Dataset.Len(), len(env.Dataset.Families()), env.Inferred.Len(), time.Since(t0).Round(time.Millisecond))

	if *md != "" {
		report, err := eval.Report(env)
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*md, []byte(report), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote markdown report to %s\n\n", *md)
	}

	runners := map[string]func(*eval.Env) error{
		"table1":   printTable1,
		"table2":   func(*eval.Env) error { return printTable2() },
		"features": printFeatureAnalysis,
		"fig1":     printFigure1,
		"fig2":     printFigure2,
		"fig34":    printFigure34,
		"fig5":     printFigure5,
		"compare":  printComparison,
		"ablate":   printAblation,
		"pipeline": printPipeline,
		"drift":    printDrift,
	}
	order := []string{"table1", "table2", "features", "fig1", "fig2", "fig34", "fig5", "compare", "ablate", "pipeline", "drift"}
	if *exp != "all" {
		run, ok := runners[*exp]
		if !ok {
			log.Printf("unknown experiment %q", *exp)
			flag.Usage()
			os.Exit(2)
		}
		if err := run(env); err != nil {
			log.Fatal(err)
		}
		return
	}
	for _, name := range order {
		if err := runners[name](env); err != nil {
			log.Fatal(err)
		}
	}
}

func printTable1(env *eval.Env) error {
	fmt.Println("== Table I — activity level of bots (measured vs paper) ==")
	fmt.Printf("%-12s %10s %9s %7s   %10s %9s %7s\n",
		"Family", "Avg#/Day", "ActDays", "CV", "paperAvg", "paperAD", "pCV")
	for _, r := range eval.RunTable1(env) {
		fmt.Printf("%-12s %10.2f %9d %7.2f   %10.2f %9d %7.2f\n",
			r.Family, r.AvgPerDay, r.ActiveDays, r.CV,
			r.PaperAvgPerDay, r.PaperActiveDays, r.PaperCV)
	}
	fmt.Println()
	return nil
}

func printTable2() error {
	fmt.Println("== Table II — main modeling variables ==")
	for _, r := range eval.RunTable2() {
		fmt.Printf("%-14s %s\n", r.Variable, r.Description)
	}
	fmt.Println()
	return nil
}

func printFeatureAnalysis(env *eval.Env) error {
	fmt.Println("== §III — feature analysis (inter-launch CDF, multistage, A^f/A^b/A^s) ==")
	results, err := eval.RunFeatureAnalysis(env, nil)
	if err != nil {
		return err
	}
	for _, fa := range results {
		fmt.Printf("%s\n", fa.Family)
		fmt.Printf("  inter-launch times (same target): p10 %s, p50 %s, p90 %s, p99 %s\n",
			eval.FormatDuration(fa.InterLaunchQuantiles["p10"]),
			eval.FormatDuration(fa.InterLaunchQuantiles["p50"]),
			eval.FormatDuration(fa.InterLaunchQuantiles["p90"]),
			eval.FormatDuration(fa.InterLaunchQuantiles["p99"]))
		fmt.Printf("  30s-24h multistage window covers %.0f%% of gaps\n", 100*fa.WindowCoverage)
		fmt.Printf("  %d chains (mean length %.1f, longest %d); %.0f%% of attacks are multistage\n",
			fa.Chains, fa.MeanChainLen, fa.LongestChain, 100*fa.MultistageFrac)
		fmt.Printf("  walk-forward RMSE (ARIMA vs Always-Mean): A^f %.3g/%.3g  A^b %.3g/%.3g  A^s %.3g/%.3g\n",
			fa.AFModelRMSE, fa.AFMeanRMSE, fa.ABModelRMSE, fa.ABMeanRMSE, fa.ASModelRMSE, fa.ASMeanRMSE)
	}
	fmt.Println()
	return nil
}

func printFigure1(env *eval.Env) error {
	fmt.Println("== Figure 1 — temporal prediction of attacking magnitudes ==")
	series, err := eval.RunFigure1(env, nil)
	if err != nil {
		return err
	}
	for _, s := range series {
		fmt.Printf("%s (test n=%d)\n", s.Family, len(s.Truth))
		fmt.Printf("  truth %s\n", eval.Sparkline(s.Truth, 72))
		fmt.Printf("  pred  %s\n", eval.Sparkline(s.Pred, 72))
		fmt.Printf("  error %s\n", eval.Sparkline(absAll(s.Errors), 72))
		fmt.Printf("  RMSE %.2f bots (Always-Same baseline %.2f); Ljung-Box residual p=%.2f\n",
			s.RMSE, s.NaiveRMSE, s.GoFP)
	}
	fmt.Println()
	return nil
}

func printFigure2(env *eval.Env) error {
	fmt.Println("== Figure 2 — spatial prediction of attacking source distributions ==")
	results, err := eval.RunFigure2(env, nil, 5)
	if err != nil {
		return err
	}
	for _, r := range results {
		fmt.Printf("%s (share RMSE %.4f over %d walk-forward steps)\n", r.Family, r.RMSE, len(r.Errors))
		for i, as := range r.ASes {
			fmt.Printf("  AS%-6d truth %.3f  pred %.3f\n", as, r.TruthShare[i], r.PredShare[i])
		}
		edges, counts := stats.Histogram(r.Errors, 20)
		if len(edges) > 0 {
			xs := make([]float64, len(counts))
			for i, c := range counts {
				xs[i] = float64(c)
			}
			fmt.Printf("  error distribution [%.3f..%.3f]: %s\n",
				edges[0], edges[len(edges)-1], eval.Sparkline(xs, 0))
		}
	}
	fmt.Println()
	return nil
}

func printFigure34(env *eval.Env) error {
	fmt.Println("== Figures 3 & 4 — spatiotemporal timestamp predictions ==")
	res, err := eval.RunFigure34(env, eval.Figure34Config{})
	if err != nil {
		return err
	}
	fmt.Printf("%d target-specific next-attack predictions\n", res.N)
	fmt.Println("hour-of-day distributions (Figure 3 bottom):")
	fmt.Printf("  truth           %s\n", eval.HistString(res.TruthHourHist, 0))
	for _, m := range []string{eval.ModelSpatial, eval.ModelTemporal, eval.ModelSpatiotemporal} {
		fmt.Printf("  %-15s %s\n", m, eval.HistString(res.HourHist[m], 0))
	}
	fmt.Println("day-of-month distributions (Figure 3 top):")
	fmt.Printf("  truth           %s\n", eval.HistString(res.TruthDayHist, 1))
	for _, m := range []string{eval.ModelSpatial, eval.ModelSpatiotemporal} {
		fmt.Printf("  %-15s %s\n", m, eval.HistString(res.DayHist[m], 1))
	}
	fmt.Println("RMSE (Figure 4; paper: hour 5.0/3.82/1.85, day 5.17/-/2.72) and KS distance to the true distribution:")
	fmt.Printf("  %-15s hour=%5.2f h   day=%5.2f d   KS(hour)=%.3f KS(day)=%.3f\n", eval.ModelSpatial,
		res.HourRMSE[eval.ModelSpatial], res.DayRMSE[eval.ModelSpatial], res.HourKS[eval.ModelSpatial], res.DayKS[eval.ModelSpatial])
	fmt.Printf("  %-15s hour=%5.2f h   day=%5.2f d   KS(hour)=%.3f KS(day)=%.3f (excluded from the paper's date plot)\n", eval.ModelTemporal,
		res.HourRMSE[eval.ModelTemporal], res.DayRMSE[eval.ModelTemporal], res.HourKS[eval.ModelTemporal], res.DayKS[eval.ModelTemporal])
	fmt.Printf("  %-15s hour=%5.2f h   day=%5.2f d   KS(hour)=%.3f KS(day)=%.3f\n", eval.ModelSpatiotemporal,
		res.HourRMSE[eval.ModelSpatiotemporal], res.DayRMSE[eval.ModelSpatiotemporal], res.HourKS[eval.ModelSpatiotemporal], res.DayKS[eval.ModelSpatiotemporal])
	fmt.Println()
	return nil
}

func printFigure5(env *eval.Env) error {
	fmt.Println("== Figure 5 — use cases (§VII-B) ==")
	res, err := eval.RunFigure5(env, eval.Figure5Config{})
	if err != nil {
		return err
	}
	fmt.Printf("family %s, %d test attacks\n", res.Family, res.Attacks)
	fmt.Printf("(a) AS-based filtering @90%% predicted coverage:\n")
	fmt.Printf("    predictive: recall %.2f  collateral %.2f  rules %d\n",
		res.PredictiveFiltering.Recall, res.PredictiveFiltering.Collateral, res.PredictiveFiltering.Rules)
	fmt.Printf("    reactive:   recall %.2f  collateral %.2f  rules %d\n",
		res.ReactiveFiltering.Recall, res.ReactiveFiltering.Collateral, res.ReactiveFiltering.Rules)
	fmt.Printf("(b) middlebox traversal (firewall-first before attack onset):\n")
	fmt.Printf("    proactive: %.0f%% protected (mean late-exposure %.0fs)\n",
		100*res.ProactiveProtected, res.ProactiveExposureSec)
	fmt.Printf("    reactive:  %.0f%% protected (mean exposure %.0fs)\n",
		100*res.ReactiveProtected, res.ReactiveExposureSec)
	fmt.Println()
	return nil
}

func printComparison(env *eval.Env) error {
	fmt.Println("== §VII-A — models vs Always Same / Always Mean (RMSE) ==")
	rows, err := eval.RunComparison(env, 5)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %-12s %12s %12s %12s %12s  %s\n",
		"Family", "Feature", "ARIMA", "NAR", "AlwaysSame", "AlwaysMean", "winner")
	for _, r := range rows {
		fmt.Printf("%-12s %-12s %12.4g %12.4g %12.4g %12.4g  %s\n",
			r.Family, r.Feature,
			r.RMSE["Temporal(ARIMA)"], r.RMSE["Spatial(NAR)"],
			r.RMSE["AlwaysSame"], r.RMSE["AlwaysMean"], r.Winner)
	}
	fmt.Println()
	return nil
}

func printAblation(env *eval.Env) error {
	fmt.Println("== Ablations — spatiotemporal design choices (§VI) ==")
	rows, err := eval.RunAblation(env, eval.Figure34Config{})
	if err != nil {
		return err
	}
	fmt.Printf("%-22s %10s %10s %8s\n", "variant", "hourRMSE", "dayRMSE", "leaves")
	for _, r := range rows {
		fmt.Printf("%-22s %10.2f %10.2f %8d\n", r.Variant, r.HourRMSE, r.DayRMSE, r.HourLeaves)
	}
	fmt.Println()
	return nil
}

func printDrift(env *eval.Env) error {
	fmt.Println("== Concept drift — botnet takedown and model re-convergence ==")
	res, err := eval.RunDrift(env.Cfg)
	if err != nil {
		return err
	}
	fmt.Printf("family %s loses AS%d at attack #%d\n", res.Family, res.LostAS, res.TakedownIdx)
	fmt.Printf("  mean |share error|: pre %.4f -> spike %.4f -> post %.4f\n",
		res.PreErr, res.SpikeErr, res.PostErr)
	if res.RecoverySteps >= 0 {
		fmt.Printf("  walk-forward model re-converged after %d attacks\n", res.RecoverySteps)
	} else {
		fmt.Printf("  walk-forward model did not re-converge in the window\n")
	}
	fmt.Printf("  a static (never-updated) predictor stays at %.4f — the paper's critique of static models\n",
		res.StaticPostErr)
	fmt.Println()
	return nil
}

func printPipeline(env *eval.Env) error {
	fmt.Println("== Defense pipeline — detect, reconfigure, scrub (end-to-end §VII-B) ==")
	exp, err := eval.RunDefensePipeline(env, 5)
	if err != nil {
		return err
	}
	fmt.Printf("family %s, replayed flood with entropy detection + SDN rules\n", exp.Family)
	p, r := exp.Predictive, exp.Reactive
	fmt.Printf("  predictive rules: detected after %v, mitigating at %v, scrub rate %.0f%%, leaked %d conns\n",
		p.DetectionDelay, p.MitigationAt, 100*exp.PredictiveScrubRate, p.LeakedConns)
	fmt.Printf("  reactive rules:   detected after %v, mitigating at %v, scrub rate %.0f%%, leaked %d conns\n",
		r.DetectionDelay, r.MitigationAt, 100*exp.ReactiveScrubRate, r.LeakedConns)
	fmt.Println()
	return nil
}

func absAll(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		if x < 0 {
			x = -x
		}
		out[i] = x
	}
	return out
}
