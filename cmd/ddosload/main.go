// Command ddosload is the load generator and SLO gate for the online
// forecasting stack (DESIGN.md §8). It synthesizes attack-record traffic
// shaped by the botnet family profiles, drives it into a live ddosd over
// HTTP or an in-process serve.Service, optionally perturbs the stream and
// the refit path with deterministic chaos injectors, and prints a
// p50/p95/p99/max latency + shed-rate report. The exit status is the
// verdict: 0 when every configured SLO holds, 1 when one is violated,
// 2 on usage or transport errors — so CI can gate on it directly.
//
// Usage:
//
//	ddosload -records 50000                          # in-process, closed loop
//	ddosload -addr http://127.0.0.1:8080 \
//	         -mode open -rate 500 -duration 10s      # live daemon, paced
//	ddosload -addr http://127.0.0.1:8080 \
//	         -wire binary -batch 64 -records 200000  # binary batch wire
//	ddosload -records 20000 -drop 0.05 -dup 0.05 \
//	         -reorder 0.1 -slow-refit 0.3            # chaos soak
//	ddosload -records 50000 -slo-p99 5ms -slo-shed 0.2
//	ddosload -records 20000 -json > report.json   # machine-readable report
//	ddosload -addrs http://h1:8400,http://h2:8400 \
//	         -wire binary -batch 64               # spray a cluster
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/loadgen"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ddosload: ")
	var (
		addr     = flag.String("addr", "", "ddosd base URL (e.g. http://127.0.0.1:8080); empty drives an in-process service")
		addrs    = flag.String("addrs", "", "comma-separated ddosd base URLs; sprays round-robin across cluster members (overrides -addr)")
		mode     = flag.String("mode", "closed", "driver mode: closed (back-to-back) or open (paced arrivals)")
		records  = flag.Int("records", 50000, "records to send (open loop with -duration derives this)")
		rate     = flag.Float64("rate", 1000, "open-loop arrival rate, records/second")
		rateEnd  = flag.Float64("rate-end", 0, "open-loop final rate for a linear ramp (0 = constant)")
		duration = flag.Duration("duration", 0, "open-loop run length; overrides -records via the mean rate")
		workers  = flag.Int("workers", 8, "concurrent sink calls")
		wire     = flag.String("wire", "json", "batch request encoding against a live daemon: json (NDJSON) or binary (application/x-ddos-batch)")
		batch    = flag.Int("batch", 1, "records per sink call (1 = scalar ingest; >1 batches requests)")
		targets  = flag.Int("targets", 16, "target fan-out")
		seed     = flag.Uint64("seed", 1, "generator and chaos seed")
		compress = flag.Float64("compress", 24, "trace-time compression factor for record timestamps")

		burstEvery   = flag.Duration("burst-every", 0, "ground-truth burst period per target in trace time (0 = no bursts)")
		burstLen     = flag.Duration("burst-len", 0, "ground-truth burst duration (0 = period/10)")
		burstGap     = flag.Duration("burst-gap", 0, "mean in-burst record spacing (0 = 200ms)")
		burstTargets = flag.Int("burst-targets", 0, "how many targets burst (0 = all)")
		burstPool    = flag.Int("burst-pool", 0, "in-burst bot-address pool size (0 = 4)")

		drop     = flag.Float64("drop", 0, "chaos: record drop probability")
		dup      = flag.Float64("dup", 0, "chaos: record duplication probability")
		reorder  = flag.Float64("reorder", 0, "chaos: record reorder probability")
		skewProb = flag.Float64("skew-prob", 0, "chaos: timestamp skew probability")
		skewMax  = flag.Duration("skew-max", time.Hour, "chaos: max injected clock skew")

		slowRefit  = flag.Float64("slow-refit", 0, "chaos: slow-refit probability (in-process only)")
		slowDelay  = flag.Duration("slow-refit-delay", 50*time.Millisecond, "chaos: injected refit delay")
		failRefit  = flag.Float64("fail-refit", 0, "chaos: refit failure probability (in-process only)")
		refitEvery = flag.Int("refit-every", 8, "in-process service: refit after this many records per target")
		window     = flag.Int("window", 256, "in-process service: rolling window capacity")
		queue      = flag.Int("queue", 256, "in-process service: refit queue depth")
		epochs     = flag.Int("nar-epochs", 20, "in-process service: NAR training epochs per refit")

		sloP50   = flag.Duration("slo-p50", 0, "SLO: p50 latency ceiling (0 = unchecked)")
		sloP95   = flag.Duration("slo-p95", 0, "SLO: p95 latency ceiling (0 = unchecked)")
		sloP99   = flag.Duration("slo-p99", 0, "SLO: p99 latency ceiling (0 = unchecked)")
		sloMax   = flag.Duration("slo-max", 0, "SLO: max latency ceiling (0 = unchecked)")
		sloShed  = flag.Float64("slo-shed", loadgen.Unchecked, "SLO: shed-rate ceiling in [0,1] (-1 = unchecked)")
		sloErr   = flag.Float64("slo-errors", 0, "SLO: error-rate ceiling in [0,1] (-1 = unchecked)")
		sloRate  = flag.Float64("slo-throughput", 0, "SLO: attempted records/second floor (0 = unchecked)")
		quantify = flag.Bool("v", false, "also dump the raw latency histogram")
		jsonOut  = flag.Bool("json", false, "emit the report (plus chaos counters and SLO verdict) as JSON on stdout")
	)
	flag.Parse()

	if *wire != "json" && *wire != "binary" {
		log.Printf("unknown -wire %q (want json or binary)", *wire)
		os.Exit(2)
	}
	if *batch < 1 {
		log.Printf("-batch must be at least 1, got %d", *batch)
		os.Exit(2)
	}
	if *wire == "binary" && *batch == 1 {
		// The binary encoding is a batch protocol; without -batch the flag
		// would silently fall back to scalar JSON requests.
		*batch = 16
		log.Printf("-wire binary implies batching; defaulting to -batch %d", *batch)
	}
	cfg := loadgen.Config{Records: *records, Workers: *workers, Rate: *rate, RateEnd: *rateEnd, Batch: *batch}
	switch *mode {
	case "closed":
		cfg.Mode = loadgen.ClosedLoop
	case "open":
		cfg.Mode = loadgen.OpenLoop
		if *duration > 0 {
			mean := *rate
			if *rateEnd > 0 {
				mean = (*rate + *rateEnd) / 2
			}
			cfg.Records = int(duration.Seconds() * mean)
			if cfg.Records < 1 {
				cfg.Records = 1
			}
		}
	default:
		log.Printf("unknown -mode %q (want closed or open)", *mode)
		os.Exit(2)
	}

	// Sink: live daemon(s) or in-process service.
	var urls []string
	if *addrs != "" {
		for _, u := range strings.Split(*addrs, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
		if len(urls) == 0 {
			log.Printf("-addrs %q names no URLs", *addrs)
			os.Exit(2)
		}
	} else if *addr != "" {
		urls = []string{*addr}
	}
	var sink loadgen.Sink
	if len(urls) > 0 {
		if *slowRefit > 0 || *failRefit > 0 {
			log.Print("-slow-refit/-fail-refit need the in-process service; ignoring against a live daemon")
		}
		if len(urls) == 1 {
			hs := loadgen.NewHTTPSink(urls[0])
			hs.Wire = *wire
			sink = hs
		} else {
			sink = loadgen.NewMultiHTTPSink(urls, *wire)
		}
	} else {
		svcCfg := serve.Config{
			Window:     *window,
			RefitEvery: *refitEvery,
			QueueDepth: *queue,
			Seed:       *seed,
			Temporal:   core.TemporalConfig{MaxP: 1, MaxQ: 1},
			Spatial: core.SpatialConfig{
				Delays: []int{2},
				Hidden: []int{2},
				Train:  nn.TrainConfig{Epochs: *epochs},
			},
		}
		if *slowRefit > 0 || *failRefit > 0 {
			faults := &chaos.RefitFaults{
				Seed: *seed, SlowProb: *slowRefit, Delay: *slowDelay, FailProb: *failRefit,
			}
			svcCfg.WrapFit = faults.Wrap
			defer func() {
				log.Printf("chaos refits: %d slowed, %d failed", faults.Slowed(), faults.Failed())
			}()
		}
		svc := serve.New(svcCfg)
		defer svc.Close()
		sink = loadgen.ServiceSink{Svc: svc}
	}

	// Record stream: profile-shaped generator, optionally chaos-wrapped.
	gen := loadgen.NewGenerator(loadgen.GenConfig{
		Targets: *targets, Seed: *seed, TimeCompress: *compress,
		Burst: loadgen.BurstConfig{
			Every: *burstEvery, Len: *burstLen, Gap: *burstGap,
			Targets: *burstTargets, BotPool: *burstPool,
		},
	})
	src := gen.Next
	var faults *chaos.StreamFaults
	if *drop > 0 || *dup > 0 || *reorder > 0 || *skewProb > 0 {
		faults = &chaos.StreamFaults{
			Seed: *seed, DropProb: *drop, DupProb: *dup,
			ReorderProb: *reorder, SkewProb: *skewProb, SkewMax: *skewMax,
		}
		src = faults.Stream(src)
	}

	log.Printf("driving %d records (%s, %d workers, %d targets) into %s",
		cfg.Records, cfg.Mode, cfg.Workers, *targets, sinkName(urls))
	rep, err := loadgen.Run(cfg, src, sink)
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}
	violations := rep.Check(loadgen.SLO{
		P50: *sloP50, P95: *sloP95, P99: *sloP99, Max: *sloMax,
		MaxShedRate: *sloShed, MaxErrorRate: *sloErr, MinThroughput: *sloRate,
	})

	if *jsonOut {
		writeJSONReport(rep, faults, violations, provenanceJSON{
			Build:   obs.Provenance(),
			Mode:    *mode,
			Wire:    *wire,
			Batch:   *batch,
			Workers: *workers,
			Records: cfg.Records,
			Targets: *targets,
			Seed:    *seed,
			Sink:    sinkName(urls),
		})
	} else {
		fmt.Print(rep)
		if faults != nil {
			fmt.Printf("chaos       dropped %d, duplicated %d, reordered %d, skewed %d\n",
				faults.Dropped(), faults.Duplicated(), faults.Reordered(), faults.Skewed())
		}
		if *quantify {
			for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 0.999} {
				fmt.Printf("  q%-5g %v\n", q*100, rep.Quantile(q))
			}
		}
	}
	if len(violations) > 0 {
		for _, v := range violations {
			log.Printf("SLO VIOLATION: %v", v)
		}
		os.Exit(1)
	}
	log.Print("SLO: pass")
}

// provenanceJSON stamps the JSON artifact with what produced the numbers:
// the exact build (toolchain, commit) and the wire/batch/concurrency
// configuration, so archived BENCH/SLO artifacts stay comparable.
type provenanceJSON struct {
	Build   obs.BuildProvenance `json:"build"`
	Mode    string              `json:"mode"`
	Wire    string              `json:"wire"`
	Batch   int                 `json:"batch"`
	Workers int                 `json:"workers"`
	Records int                 `json:"records"`
	Targets int                 `json:"targets"`
	Seed    uint64              `json:"seed"`
	Sink    string              `json:"sink"`
}

// chaosJSON is the stream-fault section of the JSON report.
type chaosJSON struct {
	Dropped    int64 `json:"dropped"`
	Duplicated int64 `json:"duplicated"`
	Reordered  int64 `json:"reordered"`
	Skewed     int64 `json:"skewed"`
}

// writeJSONReport prints the machine-readable run artifact on stdout: the
// report body, chaos counters when injectors ran, and the SLO verdict
// (log output stays on stderr, so stdout is valid JSON for CI to archive).
func writeJSONReport(rep *loadgen.Report, faults *chaos.StreamFaults, violations []error, prov provenanceJSON) {
	out := struct {
		Report     *loadgen.Report `json:"report"`
		Provenance provenanceJSON  `json:"provenance"`
		Chaos      *chaosJSON      `json:"chaos,omitempty"`
		SLOPass    bool            `json:"slo_pass"`
		Violations []string        `json:"slo_violations,omitempty"`
	}{Report: rep, Provenance: prov, SLOPass: len(violations) == 0}
	if faults != nil {
		out.Chaos = &chaosJSON{
			Dropped:    faults.Dropped(),
			Duplicated: faults.Duplicated(),
			Reordered:  faults.Reordered(),
			Skewed:     faults.Skewed(),
		}
	}
	for _, v := range violations {
		out.Violations = append(out.Violations, v.Error())
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&out); err != nil {
		log.Print(err)
		os.Exit(2)
	}
}

func sinkName(urls []string) string {
	if len(urls) > 0 {
		return strings.Join(urls, ", ")
	}
	return "in-process serve.Service"
}
