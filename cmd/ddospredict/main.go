// Command ddospredict loads a dataset (or generates one), trains the
// temporal model on one botnet family, and predicts its next attack —
// start time, hour, day, magnitude — plus the spatial model's duration
// prediction for a chosen target network. Trained models can be saved to
// a bundle and reloaded, skipping training entirely (the provider→customer
// workflow of §VI-B). It can also forecast straight from a ddosd registry
// snapshot, so offline tooling and the online daemon share one model
// format.
//
// Usage:
//
//	ddospredict [-data dataset.json] [-family DirtJumper] [-seed N] [-scale F]
//	ddospredict -data dataset.json -save models.json        # train + persist
//	ddospredict -models models.json -family DirtJumper      # predict from bundle
//	ddospredict -snapshot models.snap [-target 64512]       # predict from ddosd snapshot
//
// Exits non-zero when the requested family or target network has no data
// in the loaded bundle or snapshot.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/astopo"
	"repro/internal/botnet"
	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ddospredict: ")
	var (
		data     = flag.String("data", "", "dataset JSON (empty = generate)")
		models   = flag.String("models", "", "load a trained model bundle instead of training")
		snapshot = flag.String("snapshot", "", "load a ddosd registry snapshot instead of a bundle")
		save     = flag.String("save", "", "save the trained model bundle to this path")
		family   = flag.String("family", "DirtJumper", "botnet family to predict")
		target   = flag.Uint("target", 0, "restrict spatial/snapshot forecasts to this target AS (0 = all)")
		seed     = flag.Uint64("seed", 1, "seed when generating")
		scale    = flag.Float64("scale", 0.3, "volume scale when generating")
	)
	flag.Parse()

	if *snapshot != "" {
		if err := predictFromSnapshot(*snapshot, astopo.AS(*target)); err != nil {
			log.Fatal(err)
		}
		return
	}

	var bundle *core.Bundle
	if *models != "" {
		var err error
		bundle, err = core.LoadBundle(*models)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded bundle: %d temporal models, %d spatial models\n",
			len(bundle.Temporal), len(bundle.Spatial))
	} else {
		ds, err := loadOrGenerate(*data, *seed, *scale)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("dataset: %d attacks across %d families\n", ds.Len(), len(ds.Families()))
		bundle, err = core.TrainBundle(ds, core.BundleConfig{
			Spatial: core.SpatialConfig{Seed: *seed},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trained %d temporal and %d spatial models\n",
			len(bundle.Temporal), len(bundle.Spatial))
		if *save != "" {
			if err := bundle.Save(*save); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("saved bundle to %s\n", *save)
		}
	}

	tm := bundle.Temporal[*family]
	if tm == nil {
		fams := make([]string, 0, len(bundle.Temporal))
		for f := range bundle.Temporal {
			fams = append(fams, f)
		}
		sort.Strings(fams)
		log.Fatalf("family %q has no data in this bundle (have %v)", *family, fams)
	}
	fmt.Printf("\ntemporal model forecast for the next %s attack:\n", *family)
	fmt.Printf("  start     %s (interval %.0fs after the last attack)\n",
		tm.PredictNextStart().Format("2006-01-02 15:04:05"), tm.PredictInterval())
	fmt.Printf("  hour      %.1f\n", tm.PredictHour())
	fmt.Printf("  day       %.1f\n", tm.PredictDay())
	fmt.Printf("  magnitude %.0f bots\n", tm.PredictMagnitude())

	ases := make([]astopo.AS, 0, len(bundle.Spatial))
	for as := range bundle.Spatial {
		ases = append(ases, as)
	}
	sort.Slice(ases, func(i, j int) bool { return ases[i] < ases[j] })
	if *target != 0 {
		if bundle.Spatial[astopo.AS(*target)] == nil {
			log.Fatalf("target AS%d has no data in this bundle (have %v)", *target, ases)
		}
		ases = []astopo.AS{astopo.AS(*target)}
	}
	if len(ases) > 0 {
		fmt.Println("\nspatial model forecasts per monitored network:")
		for _, as := range ases {
			sm := bundle.Spatial[as]
			fmt.Printf("  AS%-6d next duration %.0fs, hour %.1f, day %.1f\n",
				as, sm.PredictDuration(), sm.PredictHour(), sm.PredictDay())
		}
	}
}

// predictFromSnapshot forecasts from a ddosd registry snapshot: one target
// when requested, otherwise every target in the file.
func predictFromSnapshot(path string, target astopo.AS) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	reg := serve.NewRegistry()
	if err := reg.ReadSnapshot(f); err != nil {
		return err
	}
	fmt.Printf("loaded snapshot %s: %d targets at version %d\n", path, reg.Size(), reg.Version())

	targets := reg.Targets()
	if target != 0 {
		if _, ok := reg.Lookup(target); !ok {
			return fmt.Errorf("target AS%d has no data in this snapshot (have %v)", target, targets)
		}
		targets = []astopo.AS{target}
	}
	if len(targets) == 0 {
		return fmt.Errorf("snapshot %s contains no targets", path)
	}
	for _, as := range targets {
		fc, err := reg.Forecast(as)
		if err != nil {
			return err
		}
		fmt.Printf("\nforecast for AS%d (family %s, generation %d, window %d):\n",
			fc.TargetAS, fc.Family, fc.ModelGeneration, fc.WindowSize)
		fmt.Printf("  start     %s (interval %.0fs after the last attack)\n",
			fc.NextStart.Format("2006-01-02 15:04:05"), fc.IntervalSec)
		fmt.Printf("  hour      %.1f\n", fc.Hour)
		fmt.Printf("  day       %.1f\n", fc.Day)
		fmt.Printf("  duration  %.0fs\n", fc.DurationSec)
		fmt.Printf("  magnitude %.0f bots\n", fc.Magnitude)
		engines := fmt.Sprintf("temporal=%s spatial=%s",
			fc.Models.Temporal.Interval.Kind, fc.Models.Spatial.Duration.Kind)
		if fc.Models.Spatiotemporal != nil {
			engines += " spatiotemporal=cart"
		}
		fmt.Printf("  engines   %s\n", engines)
	}
	return nil
}

func loadOrGenerate(path string, seed uint64, scale float64) (*trace.Dataset, error) {
	if path != "" {
		return trace.LoadFile(path)
	}
	topo, err := astopo.Synthesize(astopo.SynthConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	return botnet.Simulate(botnet.SimConfig{
		Families: botnet.ScaleProfiles(botnet.DefaultFamilies(), scale),
		Topology: topo,
		Seed:     seed,
	})
}
