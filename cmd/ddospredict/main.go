// Command ddospredict loads a dataset (or generates one), trains the
// temporal model on one botnet family, and predicts its next attack —
// start time, hour, day, magnitude — plus the spatial model's duration
// prediction for a chosen target network. Trained models can be saved to
// a bundle and reloaded, skipping training entirely (the provider→customer
// workflow of §VI-B).
//
// Usage:
//
//	ddospredict [-data dataset.json] [-family DirtJumper] [-seed N] [-scale F]
//	ddospredict -data dataset.json -save models.json        # train + persist
//	ddospredict -models models.json -family DirtJumper      # predict from bundle
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"repro/internal/astopo"
	"repro/internal/botnet"
	"repro/internal/core"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ddospredict: ")
	var (
		data   = flag.String("data", "", "dataset JSON (empty = generate)")
		models = flag.String("models", "", "load a trained model bundle instead of training")
		save   = flag.String("save", "", "save the trained model bundle to this path")
		family = flag.String("family", "DirtJumper", "botnet family to predict")
		seed   = flag.Uint64("seed", 1, "seed when generating")
		scale  = flag.Float64("scale", 0.3, "volume scale when generating")
	)
	flag.Parse()

	var bundle *core.Bundle
	if *models != "" {
		var err error
		bundle, err = core.LoadBundle(*models)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded bundle: %d temporal models, %d spatial models\n",
			len(bundle.Temporal), len(bundle.Spatial))
	} else {
		ds, err := loadOrGenerate(*data, *seed, *scale)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("dataset: %d attacks across %d families\n", ds.Len(), len(ds.Families()))
		bundle, err = core.TrainBundle(ds, core.BundleConfig{
			Spatial: core.SpatialConfig{Seed: *seed},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trained %d temporal and %d spatial models\n",
			len(bundle.Temporal), len(bundle.Spatial))
		if *save != "" {
			if err := bundle.Save(*save); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("saved bundle to %s\n", *save)
		}
	}

	tm := bundle.Temporal[*family]
	if tm == nil {
		fams := make([]string, 0, len(bundle.Temporal))
		for f := range bundle.Temporal {
			fams = append(fams, f)
		}
		sort.Strings(fams)
		log.Fatalf("family %q not in bundle (have %v)", *family, fams)
	}
	fmt.Printf("\ntemporal model forecast for the next %s attack:\n", *family)
	fmt.Printf("  start     %s (interval %.0fs after the last attack)\n",
		tm.PredictNextStart().Format("2006-01-02 15:04:05"), tm.PredictInterval())
	fmt.Printf("  hour      %.1f\n", tm.PredictHour())
	fmt.Printf("  day       %.1f\n", tm.PredictDay())
	fmt.Printf("  magnitude %.0f bots\n", tm.PredictMagnitude())

	if len(bundle.Spatial) > 0 {
		ases := make([]astopo.AS, 0, len(bundle.Spatial))
		for as := range bundle.Spatial {
			ases = append(ases, as)
		}
		sort.Slice(ases, func(i, j int) bool { return ases[i] < ases[j] })
		fmt.Println("\nspatial model forecasts per monitored network:")
		for _, as := range ases {
			sm := bundle.Spatial[as]
			fmt.Printf("  AS%-6d next duration %.0fs, hour %.1f, day %.1f\n",
				as, sm.PredictDuration(), sm.PredictHour(), sm.PredictDay())
		}
	}
}

func loadOrGenerate(path string, seed uint64, scale float64) (*trace.Dataset, error) {
	if path != "" {
		return trace.LoadFile(path)
	}
	topo, err := astopo.Synthesize(astopo.SynthConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	return botnet.Simulate(botnet.SimConfig{
		Families: botnet.ScaleProfiles(botnet.DefaultFamilies(), scale),
		Topology: topo,
		Seed:     seed,
	})
}
