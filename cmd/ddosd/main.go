// Command ddosd is the online forecasting daemon: it ingests verified
// attack records over HTTP, maintains per-target rolling windows in a
// sharded state store, refits the paper's three models (ARIMA temporal,
// NAR spatial, CART spatiotemporal) in the background after every K new
// records per target, and serves next-attack forecasts lock-free from an
// atomically swapped model snapshot (see DESIGN.md §7, §9).
//
// Usage:
//
//	ddosd [-addr :8080] [-refit-every 8] [-window 256] [-shards 64]
//	ddosd -data dataset.json                # warm-start from a trace
//	ddosd -snapshot models.snap             # warm-boot from a snapshot
//	ddosd -snapshot-out models.snap         # write a snapshot on shutdown
//	ddosd -wal-dir wal/                     # durable ingest + crash recovery
//	ddosd -wal-fsync 50ms                   # batch fsync (always|never|interval)
//	ddosd -detect                           # streaming detection tier (/alerts)
//	ddosd -log-level debug -log-format json # structured logging
//	ddosd -admin-addr 127.0.0.1:8081        # opt-in pprof/expvar listener
//	ddosd -cluster-self n1 \
//	      -cluster-peers n1=http://h1:8400,n2=http://h2:8400
//	                                        # cluster mode (DESIGN.md §12)
//
// With -wal-dir set, every accepted ingest is appended to a segmented
// CRC-framed write-ahead log before the HTTP ack. On boot the daemon
// replays checkpoint + WAL into the store (a torn final frame is
// truncated, never fatal), re-schedules refits, and resumes serving;
// sealed segments are checkpointed away in the background.
//
// Endpoints (serving mux):
//
//	POST /ingest               attack records (object, array, or NDJSON;
//	                           Content-Type application/x-ddos-batch posts
//	                           binary batch frames — see DESIGN.md §11)
//	GET  /forecast?target=AS   next-attack forecast for the target network
//	GET  /healthz              liveness + backlog summary
//	GET  /metrics              Prometheus text metrics
//	GET  /accuracy             windowed online forecast accuracy per model
//	GET  /alerts               streaming-detector counters + recent alerts
//	GET  /debug/traces         recent pipeline traces (JSON span trees;
//	                           ?trace=<id> merges spans cluster-wide)
//	GET  /statusz              full node status; in cluster mode, the
//	                           aggregated fleet snapshot
//	GET  /debug/bundle         SLO watchdog diagnostics bundles
//	GET  /buildinfo            module, version, platform
//
// With -cluster-peers set, a rendezvous-hash ring over the static
// membership assigns every target an owner node and one follower:
// /ingest and /forecast transparently proxy (or, with -cluster-route
// redirect, answer 307) to the owner, the owner's sealed WAL segments
// replicate to the follower via GET /cluster/wal, and POST
// /cluster/promote?dead=<id> removes a dead member so its follower takes
// over. Cluster mode requires -wal-dir.
//
// The -admin-addr mux additionally serves /debug/pprof/* and /debug/vars;
// keep it on localhost or behind operator-only network policy.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/trace"
	"repro/internal/wal"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		adminAddr   = flag.String("admin-addr", "", "opt-in admin listener for pprof/expvar (empty = disabled; keep on localhost)")
		data        = flag.String("data", "", "warm-start: ingest this dataset JSON at boot")
		snapshot    = flag.String("snapshot", "", "warm-boot: load a model snapshot at startup")
		snapshotOut = flag.String("snapshot-out", "", "write a model snapshot on graceful shutdown")
		refitEvery  = flag.Int("refit-every", 8, "refit a target after this many new records")
		window      = flag.Int("window", 256, "per-target rolling window capacity")
		shards      = flag.Int("shards", 64, "state store shard count")
		queue       = flag.Int("queue", 256, "refit queue depth")
		watermark   = flag.Int("watermark", 0, "refit backlog watermark for 429 shedding (0 = queue/2)")
		seed        = flag.Uint64("seed", 1, "refit determinism seed")
		epochs      = flag.Int("nar-epochs", 120, "NAR training epochs per refit")
		logLevel    = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logFormat   = flag.String("log-format", "text", "log format: text or json")
		traceSlow   = flag.Duration("trace-slow", 0, "retain only pipeline traces at least this long (0 = all)")
		traceCap    = flag.Int("trace-capacity", 64, "/debug/traces ring size")
		accWindow   = flag.Int("accuracy-window", 512, "sliding window of the online accuracy tracker")

		refitIncr    = flag.Bool("refit-incremental", true, "fold new records into existing models instead of full re-estimation when eligible")
		refitFullEvr = flag.Int("refit-full-every", 8, "force a full re-estimation after this many consecutive incremental refits")
		refitDrift   = flag.Float64("refit-drift-ratio", 4, "residual degradation ratio beyond which an incremental refit falls back to full")
		refitVerdict = flag.Bool("refit-verdict-filter", false, "exclude detector-alerted records from fit windows (needs -detect)")
		maxTargets   = flag.Int("max-targets", 0, "state-store target cap; over it, the least-recently-ingested target is evicted (0 = unbounded)")
		promoWindow  = flag.Int("promo-window", 64, "per-target accuracy window for champion/challenger promotion")
		promoMinSamp = flag.Int("promo-min-samples", 16, "scored arrivals a challenger needs before promotion")
		promoMargin  = flag.Float64("promo-margin", 0.05, "relative improvement a challenger must show over the incumbent")

		detectOn      = flag.Bool("detect", false, "enable the streaming detection tier (/alerts, ddosd_detect_*, per-record verdicts)")
		detectTrigger = flag.Float64("detect-trigger", 4, "rate alert trigger: window count over this multiple of the EWMA baseline")
		detectClear   = flag.Float64("detect-clear", 1.5, "rate alert clear: window count back under this multiple of the baseline (hysteresis)")
		detectMinRate = flag.Float64("detect-min-rate", 1, "trigger floor in records/sec — cold targets need at least this rate to alert")
		detectEntropy = flag.Float64("detect-entropy-drop", 0.3, "source-concentration alert: normalized bot-IP entropy drops below baseline times (1 - this)")
		detectCap     = flag.Int("detect-alert-cap", 256, "in-memory alert ring capacity served by /alerts")

		clusterPeers = flag.String("cluster-peers", "", "comma-separated cluster membership as name=url pairs (empty = single-node)")
		clusterSelf  = flag.String("cluster-self", "", "this node's member name within -cluster-peers")
		clusterRoute = flag.String("cluster-route", "proxy", "non-owned request handling: proxy or redirect")
		clusterPoll  = flag.Duration("cluster-poll", 500*time.Millisecond, "replication poll interval")

		wdDir       = flag.String("watchdog-dir", "", "SLO watchdog bundle directory (empty = watchdog disabled)")
		wdInterval  = flag.Duration("watchdog-interval", 5*time.Second, "watchdog rule evaluation interval")
		wdCooldown  = flag.Duration("watchdog-cooldown", time.Minute, "minimum spacing between diagnostics bundles")
		wdBundles   = flag.Int("watchdog-bundles", 8, "diagnostics bundles retained on disk (oldest pruned)")
		wdCPU       = flag.Duration("watchdog-cpu-profile", time.Second, "cpu.pprof capture length per bundle (negative = skip)")
		wdP99       = flag.Duration("watchdog-p99", 0, "breach when ingest p99 latency exceeds this (0 = rule off)")
		wdShedRate  = flag.Float64("watchdog-shed-rate", -1, "breach when the shed fraction since the last check exceeds this (negative = rule off)")
		wdReplLag   = flag.Int("watchdog-repl-lag", 0, "breach when replication lag exceeds this many segments (0 = rule off)")
		wdAlertRate = flag.Float64("watchdog-alert-rate", 0, "breach when the detector raises more alerts per minute than this (0 = rule off)")

		walDir      = flag.String("wal-dir", "", "write-ahead log directory for durable ingest + crash recovery (empty = disabled)")
		walFsync    = flag.String("wal-fsync", "always", "WAL fsync policy: always, never, or a batching interval like 50ms")
		walSegBytes = flag.Int64("wal-segment-bytes", 0, "WAL segment rotation threshold in bytes (0 = 16 MiB)")
		maxIngest   = flag.Int64("max-ingest-bytes", 8<<20, "per-request /ingest body cap in bytes (over-limit = 413)")
		readHdrTO   = flag.Duration("read-header-timeout", 5*time.Second, "http server read-header timeout (slowloris guard)")
		readTO      = flag.Duration("read-timeout", 60*time.Second, "http server read timeout for the full request")
		idleTO      = flag.Duration("idle-timeout", 120*time.Second, "http server keep-alive idle timeout")
	)
	flag.Parse()
	// With the watchdog armed, the log stream tees through a ring so a
	// breach bundle can capture the last lines before the incident.
	var logW io.Writer = os.Stderr
	var logRing *obs.LogRing
	if *wdDir != "" {
		logRing = obs.NewLogRing(os.Stderr, 256)
		logW = logRing
	}
	logger, err := obs.NewLogger(logW, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ddosd:", err)
		os.Exit(2)
	}
	opts := daemonOpts{
		addr:              *addr,
		adminAddr:         *adminAddr,
		data:              *data,
		snapshot:          *snapshot,
		snapshotOut:       *snapshotOut,
		walDir:            *walDir,
		walFsync:          *walFsync,
		walSegmentBytes:   *walSegBytes,
		clusterPeers:      *clusterPeers,
		clusterSelf:       *clusterSelf,
		clusterRoute:      *clusterRoute,
		clusterPoll:       *clusterPoll,
		maxIngestBytes:    *maxIngest,
		readHeaderTimeout: *readHdrTO,
		readTimeout:       *readTO,
		idleTimeout:       *idleTO,
		logger:            logger,
		logRing:           logRing,
		watchdog: serve.WatchdogConfig{
			Dir:             *wdDir,
			Interval:        *wdInterval,
			Cooldown:        *wdCooldown,
			MaxBundles:      *wdBundles,
			CPUProfile:      *wdCPU,
			IngestP99:       *wdP99,
			ShedRate:        *wdShedRate,
			ReplLagSegs:     *wdReplLag,
			AlertRatePerMin: *wdAlertRate,
		},
	}
	var detectCfg *detect.Config
	if *detectOn {
		detectCfg = &detect.Config{
			Trigger:     *detectTrigger,
			Clear:       *detectClear,
			MinRate:     *detectMinRate,
			EntropyDrop: *detectEntropy,
			AlertCap:    *detectCap,
		}
	}
	if err := run(opts, serve.Config{
		Shards:         *shards,
		Window:         *window,
		RefitEvery:     *refitEvery,
		QueueDepth:     *queue,
		LagWatermark:   *watermark,
		Seed:           *seed,
		Spatial:        core.SpatialConfig{Train: nn.TrainConfig{Epochs: *epochs}},
		TraceCapacity:  *traceCap,
		TraceSlow:      *traceSlow,
		AccuracyWindow: *accWindow,
		MaxBatchBytes:  *maxIngest,
		Detect:         detectCfg,

		IncrementalRefit:   *refitIncr,
		FullRefitEvery:     *refitFullEvr,
		DriftRatio:         *refitDrift,
		RefitVerdictFilter: *refitVerdict,
		MaxTargets:         *maxTargets,
		PromoWindow:        *promoWindow,
		PromoMinSamples:    *promoMinSamp,
		PromoMargin:        *promoMargin,
	}); err != nil {
		logger.Error("exiting", "component", "daemon", "error", err)
		os.Exit(1)
	}
}

// daemonOpts bundles run's wiring: flag values in production, plus the
// hooks tests use to drive a real daemon lifecycle in-process.
type daemonOpts struct {
	addr              string
	adminAddr         string
	data              string
	snapshot          string
	snapshotOut       string
	walDir            string
	walFsync          string
	walSegmentBytes   int64
	clusterPeers      string
	clusterSelf       string
	clusterRoute      string
	clusterPoll       time.Duration
	maxIngestBytes    int64
	readHeaderTimeout time.Duration
	readTimeout       time.Duration
	idleTimeout       time.Duration
	logger            *slog.Logger
	// watchdog configures the SLO flight recorder (Dir empty = disabled);
	// logRing, when set, is the tee the logger already writes through, so
	// bundles capture the last lines before a breach.
	watchdog serve.WatchdogConfig
	logRing  *obs.LogRing
	// ready, when set, is called once the listener is bound — tests use it
	// to learn the picked port before sending traffic and signals.
	ready func(net.Addr)
}

// httpServer builds a server with the daemon's connection timeouts; both
// the public and the admin listener get them so a slowloris peer cannot
// pin connections open indefinitely.
func (o daemonOpts) httpServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: o.readHeaderTimeout,
		ReadTimeout:       o.readTimeout,
		IdleTimeout:       o.idleTimeout,
	}
}

func run(opts daemonOpts, cfg serve.Config) error {
	logger := opts.logger
	if logger == nil {
		logger, _ = obs.NewLogger(os.Stderr, "info", "text")
	}
	svc := serve.New(cfg)
	defer svc.Close()

	if opts.snapshot != "" {
		f, err := os.Open(opts.snapshot)
		if err != nil {
			return fmt.Errorf("open snapshot: %w", err)
		}
		err = svc.Registry().ReadSnapshot(f)
		f.Close()
		if err != nil {
			return err
		}
		logger.Info("loaded snapshot", "component", "boot", "path", opts.snapshot,
			"targets", svc.Registry().Size(), "version", svc.Registry().Version())
	}

	var walLog *wal.WAL
	if opts.walDir != "" {
		policy, err := wal.ParseSyncPolicy(opts.walFsync)
		if err != nil {
			return fmt.Errorf("-wal-fsync: %w", err)
		}
		walLog, err = wal.Open(wal.Options{
			Dir:          opts.walDir,
			SegmentBytes: opts.walSegmentBytes,
			Sync:         policy,
		})
		if err != nil {
			return fmt.Errorf("open wal: %w", err)
		}
		defer walLog.Close()
		t0 := time.Now()
		rs, err := svc.RecoverWAL(walLog, func(p serve.RecoveryStats) {
			logger.Debug("wal replay progress", "component", "wal",
				"segments", p.Segments, "replayed", p.Replayed, "skipped", p.Skipped)
		})
		if err != nil {
			return fmt.Errorf("wal recovery: %w", err)
		}
		if rs.Truncated {
			logger.Warn("wal tail truncated at torn frame", "component", "wal",
				"segment", rs.TruncatedSeq, "offset", rs.TruncatedOff)
		}
		logger.Info("wal recovered", "component", "wal", "dir", opts.walDir,
			"checkpoint_targets", rs.CheckpointTargets, "segments", rs.Segments,
			"replayed", rs.Replayed, "duplicates", rs.Duplicates, "skipped", rs.Skipped,
			"refits", rs.Refits, "fsync", policy.String(),
			"elapsed", time.Since(t0).Round(time.Millisecond).String())
		svc.AttachWAL(walLog, logger)
	}

	if opts.data != "" {
		ds, err := trace.LoadFile(opts.data)
		if err != nil {
			return err
		}
		t0 := time.Now()
		n, err := svc.WarmStart(ds)
		if err != nil {
			return err
		}
		logger.Info("warm start", "component", "boot", "records", n,
			"targets_served", svc.Registry().Size(),
			"elapsed", time.Since(t0).Round(time.Millisecond).String())
	}

	var node *cluster.Node
	handler := svc.Handler()
	if opts.clusterPeers != "" {
		if walLog == nil {
			return errors.New("cluster mode requires -wal-dir (replication ships WAL segments)")
		}
		peers, err := cluster.ParseMembers(opts.clusterPeers)
		if err != nil {
			return err
		}
		node, err = cluster.NewNode(svc, walLog, cluster.Config{
			Self:         opts.clusterSelf,
			Peers:        peers,
			Route:        opts.clusterRoute,
			PollInterval: opts.clusterPoll,
			MaxBodyBytes: opts.maxIngestBytes,
			Logger:       logger,
		})
		if err != nil {
			return err
		}
		defer node.Close()
		handler = node.Handler(handler)
	}

	if opts.watchdog.Dir != "" {
		wcfg := opts.watchdog
		wcfg.Logger = logger
		if opts.logRing != nil {
			wcfg.LogLines = opts.logRing.Lines
		}
		if node != nil {
			wcfg.ReplLag = node.Lag
			nodeRef := node
			wcfg.Statusz = func() any { return nodeRef.FleetStatus(context.Background()) }
		}
		if _, err := svc.StartWatchdog(wcfg); err != nil {
			return fmt.Errorf("watchdog: %w", err)
		}
		logger.Info("watchdog armed", "component", "watchdog", "dir", wcfg.Dir,
			"interval", wcfg.Interval.String(), "cooldown", wcfg.Cooldown.String(),
			"p99", wcfg.IngestP99.String(), "shed_rate", wcfg.ShedRate,
			"repl_lag", wcfg.ReplLagSegs, "alert_rate", wcfg.AlertRatePerMin)
	}

	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return err
	}
	srv := opts.httpServer(handler)
	if node != nil {
		// Extra attrs append after addr so the smoke/CI readiness parse
		// (`msg=listening ... addr=<x>`) keeps matching.
		logger.Info("listening", "component", "http", "addr", ln.Addr().String(),
			"node", node.Self().ID, "ring_epoch", node.Ring().Epoch(), "route", node.RouteMode())
		node.Start()
	} else {
		logger.Info("listening", "component", "http", "addr", ln.Addr().String())
	}

	var adminSrv *http.Server
	if opts.adminAddr != "" {
		aln, err := net.Listen("tcp", opts.adminAddr)
		if err != nil {
			return fmt.Errorf("admin listener: %w", err)
		}
		adminSrv = opts.httpServer(obs.AdminMux())
		logger.Info("admin listening", "component", "admin", "addr", aln.Addr().String())
		go func() {
			if err := adminSrv.Serve(aln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("admin server failed", "component", "admin", "error", err)
			}
		}()
	}
	if opts.ready != nil {
		opts.ready(ln.Addr())
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		logger.Info("shutting down", "component", "daemon", "signal", s.String())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if adminSrv != nil {
		if err := adminSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			logger.Warn("admin shutdown", "component", "admin", "error", err)
		}
	}
	if walLog != nil {
		// One last checkpoint so the next boot replays (almost) nothing,
		// then detach before walLog's deferred Close.
		if err := svc.CheckpointWAL(); err != nil {
			logger.Warn("final wal checkpoint failed", "component", "wal", "error", err)
		}
		svc.DetachWAL()
		logger.Info("wal checkpointed", "component", "wal", "dir", opts.walDir)
	}
	if opts.snapshotOut != "" {
		svc.Flush()
		// Written via temp-file + rename so a crash mid-write never tears an
		// existing snapshot.
		err := wal.WriteFileAtomic(opts.snapshotOut, func(w io.Writer) error {
			return svc.Registry().WriteSnapshot(w)
		})
		if err != nil {
			return fmt.Errorf("write snapshot: %w", err)
		}
		logger.Info("wrote snapshot", "component", "daemon", "path", opts.snapshotOut,
			"targets", svc.Registry().Size(), "version", svc.Registry().Version())
	}
	return nil
}
