// Command ddosd is the online forecasting daemon: it ingests verified
// attack records over HTTP, maintains per-target rolling windows in a
// sharded state store, refits the paper's three models (ARIMA temporal,
// NAR spatial, CART spatiotemporal) in the background after every K new
// records per target, and serves next-attack forecasts lock-free from an
// atomically swapped model snapshot (see DESIGN.md §7).
//
// Usage:
//
//	ddosd [-addr :8080] [-refit-every 8] [-window 256] [-shards 64]
//	ddosd -data dataset.json                # warm-start from a trace
//	ddosd -snapshot models.snap             # warm-boot from a snapshot
//	ddosd -snapshot-out models.snap         # write a snapshot on shutdown
//
// Endpoints:
//
//	POST /ingest               attack records (object, array, or NDJSON)
//	GET  /forecast?target=AS   next-attack forecast for the target network
//	GET  /healthz              liveness + backlog summary
//	GET  /metrics              Prometheus text metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/serve"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ddosd: ")
	var (
		addr        = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		data        = flag.String("data", "", "warm-start: ingest this dataset JSON at boot")
		snapshot    = flag.String("snapshot", "", "warm-boot: load a model snapshot at startup")
		snapshotOut = flag.String("snapshot-out", "", "write a model snapshot on graceful shutdown")
		refitEvery  = flag.Int("refit-every", 8, "refit a target after this many new records")
		window      = flag.Int("window", 256, "per-target rolling window capacity")
		shards      = flag.Int("shards", 64, "state store shard count")
		queue       = flag.Int("queue", 256, "refit queue depth")
		watermark   = flag.Int("watermark", 0, "refit backlog watermark for 429 shedding (0 = queue/2)")
		seed        = flag.Uint64("seed", 1, "refit determinism seed")
		epochs      = flag.Int("nar-epochs", 120, "NAR training epochs per refit")
	)
	flag.Parse()
	if err := run(daemonOpts{
		addr:        *addr,
		data:        *data,
		snapshot:    *snapshot,
		snapshotOut: *snapshotOut,
	}, serve.Config{
		Shards:       *shards,
		Window:       *window,
		RefitEvery:   *refitEvery,
		QueueDepth:   *queue,
		LagWatermark: *watermark,
		Seed:         *seed,
		Spatial:      core.SpatialConfig{Train: nn.TrainConfig{Epochs: *epochs}},
	}); err != nil {
		log.Fatal(err)
	}
}

// daemonOpts bundles run's wiring: flag values in production, plus the
// hooks tests use to drive a real daemon lifecycle in-process.
type daemonOpts struct {
	addr        string
	data        string
	snapshot    string
	snapshotOut string
	// ready, when set, is called once the listener is bound — tests use it
	// to learn the picked port before sending traffic and signals.
	ready func(net.Addr)
}

func run(opts daemonOpts, cfg serve.Config) error {
	svc := serve.New(cfg)
	defer svc.Close()

	if opts.snapshot != "" {
		f, err := os.Open(opts.snapshot)
		if err != nil {
			return fmt.Errorf("open snapshot: %w", err)
		}
		err = svc.Registry().ReadSnapshot(f)
		f.Close()
		if err != nil {
			return err
		}
		log.Printf("loaded snapshot %s: %d targets at version %d",
			opts.snapshot, svc.Registry().Size(), svc.Registry().Version())
	}
	if opts.data != "" {
		ds, err := trace.LoadFile(opts.data)
		if err != nil {
			return err
		}
		t0 := time.Now()
		n, err := svc.WarmStart(ds)
		if err != nil {
			return err
		}
		log.Printf("warm start: ingested %d records, %d targets served (%v)",
			n, svc.Registry().Size(), time.Since(t0).Round(time.Millisecond))
	}

	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: svc.Handler()}
	log.Printf("listening on %s", ln.Addr())
	if opts.ready != nil {
		opts.ready(ln.Addr())
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		log.Printf("received %v, shutting down", s)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if opts.snapshotOut != "" {
		svc.Flush()
		f, err := os.Create(opts.snapshotOut)
		if err != nil {
			return fmt.Errorf("write snapshot: %w", err)
		}
		if err := svc.Registry().WriteSnapshot(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		log.Printf("wrote snapshot %s (%d targets, version %d)",
			opts.snapshotOut, svc.Registry().Size(), svc.Registry().Version())
	}
	return nil
}
