// Command ddosd is the online forecasting daemon: it ingests verified
// attack records over HTTP, maintains per-target rolling windows in a
// sharded state store, refits the paper's three models (ARIMA temporal,
// NAR spatial, CART spatiotemporal) in the background after every K new
// records per target, and serves next-attack forecasts lock-free from an
// atomically swapped model snapshot (see DESIGN.md §7, §9).
//
// Usage:
//
//	ddosd [-addr :8080] [-refit-every 8] [-window 256] [-shards 64]
//	ddosd -data dataset.json                # warm-start from a trace
//	ddosd -snapshot models.snap             # warm-boot from a snapshot
//	ddosd -snapshot-out models.snap         # write a snapshot on shutdown
//	ddosd -log-level debug -log-format json # structured logging
//	ddosd -admin-addr 127.0.0.1:8081        # opt-in pprof/expvar listener
//
// Endpoints (serving mux):
//
//	POST /ingest               attack records (object, array, or NDJSON)
//	GET  /forecast?target=AS   next-attack forecast for the target network
//	GET  /healthz              liveness + backlog summary
//	GET  /metrics              Prometheus text metrics
//	GET  /accuracy             windowed online forecast accuracy per model
//	GET  /debug/traces         recent pipeline traces (JSON span trees)
//	GET  /buildinfo            module, version, platform
//
// The -admin-addr mux additionally serves /debug/pprof/* and /debug/vars;
// keep it on localhost or behind operator-only network policy.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/trace"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		adminAddr   = flag.String("admin-addr", "", "opt-in admin listener for pprof/expvar (empty = disabled; keep on localhost)")
		data        = flag.String("data", "", "warm-start: ingest this dataset JSON at boot")
		snapshot    = flag.String("snapshot", "", "warm-boot: load a model snapshot at startup")
		snapshotOut = flag.String("snapshot-out", "", "write a model snapshot on graceful shutdown")
		refitEvery  = flag.Int("refit-every", 8, "refit a target after this many new records")
		window      = flag.Int("window", 256, "per-target rolling window capacity")
		shards      = flag.Int("shards", 64, "state store shard count")
		queue       = flag.Int("queue", 256, "refit queue depth")
		watermark   = flag.Int("watermark", 0, "refit backlog watermark for 429 shedding (0 = queue/2)")
		seed        = flag.Uint64("seed", 1, "refit determinism seed")
		epochs      = flag.Int("nar-epochs", 120, "NAR training epochs per refit")
		logLevel    = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logFormat   = flag.String("log-format", "text", "log format: text or json")
		traceSlow   = flag.Duration("trace-slow", 0, "retain only pipeline traces at least this long (0 = all)")
		traceCap    = flag.Int("trace-capacity", 64, "/debug/traces ring size")
		accWindow   = flag.Int("accuracy-window", 512, "sliding window of the online accuracy tracker")
	)
	flag.Parse()
	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ddosd:", err)
		os.Exit(2)
	}
	if err := run(daemonOpts{
		addr:        *addr,
		adminAddr:   *adminAddr,
		data:        *data,
		snapshot:    *snapshot,
		snapshotOut: *snapshotOut,
		logger:      logger,
	}, serve.Config{
		Shards:         *shards,
		Window:         *window,
		RefitEvery:     *refitEvery,
		QueueDepth:     *queue,
		LagWatermark:   *watermark,
		Seed:           *seed,
		Spatial:        core.SpatialConfig{Train: nn.TrainConfig{Epochs: *epochs}},
		TraceCapacity:  *traceCap,
		TraceSlow:      *traceSlow,
		AccuracyWindow: *accWindow,
	}); err != nil {
		logger.Error("exiting", "component", "daemon", "error", err)
		os.Exit(1)
	}
}

// daemonOpts bundles run's wiring: flag values in production, plus the
// hooks tests use to drive a real daemon lifecycle in-process.
type daemonOpts struct {
	addr        string
	adminAddr   string
	data        string
	snapshot    string
	snapshotOut string
	logger      *slog.Logger
	// ready, when set, is called once the listener is bound — tests use it
	// to learn the picked port before sending traffic and signals.
	ready func(net.Addr)
}

func run(opts daemonOpts, cfg serve.Config) error {
	logger := opts.logger
	if logger == nil {
		logger, _ = obs.NewLogger(os.Stderr, "info", "text")
	}
	svc := serve.New(cfg)
	defer svc.Close()

	if opts.snapshot != "" {
		f, err := os.Open(opts.snapshot)
		if err != nil {
			return fmt.Errorf("open snapshot: %w", err)
		}
		err = svc.Registry().ReadSnapshot(f)
		f.Close()
		if err != nil {
			return err
		}
		logger.Info("loaded snapshot", "component", "boot", "path", opts.snapshot,
			"targets", svc.Registry().Size(), "version", svc.Registry().Version())
	}
	if opts.data != "" {
		ds, err := trace.LoadFile(opts.data)
		if err != nil {
			return err
		}
		t0 := time.Now()
		n, err := svc.WarmStart(ds)
		if err != nil {
			return err
		}
		logger.Info("warm start", "component", "boot", "records", n,
			"targets_served", svc.Registry().Size(),
			"elapsed", time.Since(t0).Round(time.Millisecond).String())
	}

	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: svc.Handler()}
	logger.Info("listening", "component", "http", "addr", ln.Addr().String())

	var adminSrv *http.Server
	if opts.adminAddr != "" {
		aln, err := net.Listen("tcp", opts.adminAddr)
		if err != nil {
			return fmt.Errorf("admin listener: %w", err)
		}
		adminSrv = &http.Server{Handler: obs.AdminMux()}
		logger.Info("admin listening", "component", "admin", "addr", aln.Addr().String())
		go func() {
			if err := adminSrv.Serve(aln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("admin server failed", "component", "admin", "error", err)
			}
		}()
	}
	if opts.ready != nil {
		opts.ready(ln.Addr())
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		logger.Info("shutting down", "component", "daemon", "signal", s.String())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if adminSrv != nil {
		if err := adminSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			logger.Warn("admin shutdown", "component", "admin", "error", err)
		}
	}
	if opts.snapshotOut != "" {
		svc.Flush()
		f, err := os.Create(opts.snapshotOut)
		if err != nil {
			return fmt.Errorf("write snapshot: %w", err)
		}
		if err := svc.Registry().WriteSnapshot(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		logger.Info("wrote snapshot", "component", "daemon", "path", opts.snapshotOut,
			"targets", svc.Registry().Size(), "version", svc.Registry().Version())
	}
	return nil
}
