package main

// Lifecycle test for the daemon's signal path: SIGTERM landing while a
// scheduled refit is mid-flight must neither deadlock the shutdown
// sequence nor write a partial registry snapshot. The test runs the real
// run() in-process (real listener, real signal handler), holds a refit
// open across the signal with a blocking FitFunc wrapper, then SIGTERMs
// its own process and verifies run() returns promptly with a snapshot a
// fresh registry accepts wholesale.

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/internal/astopo"
	"repro/internal/core"
	"repro/internal/loadgen"
	"repro/internal/nn"
	"repro/internal/serve"
	"repro/internal/trace"
)

func TestSIGTERMDuringRefitShutsDownCleanly(t *testing.T) {
	snapPath := filepath.Join(t.TempDir(), "models.snap")

	// Hold every refit open ~30ms and flag the first one, so the signal is
	// guaranteed to land while a fit is in flight.
	refitStarted := make(chan struct{}, 1)
	cfg := serve.Config{
		Shards:     4,
		Window:     64,
		MinWindow:  6,
		RefitEvery: 2,
		QueueDepth: 64,
		BatchSize:  4,
		Seed:       7,
		Temporal:   core.TemporalConfig{MaxP: 1, MaxQ: 1},
		Spatial: core.SpatialConfig{
			Delays: []int{2},
			Hidden: []int{2},
			Train:  nn.TrainConfig{Epochs: 5},
		},
		WrapFit: func(next serve.FitFunc) serve.FitFunc {
			return func(as astopo.AS, window []trace.Attack, total, gen uint64, cfg serve.Config) (*serve.TargetModels, error) {
				select {
				case refitStarted <- struct{}{}:
				default:
				}
				time.Sleep(30 * time.Millisecond)
				return next(as, window, total, gen, cfg)
			}
		},
	}

	addrc := make(chan net.Addr, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(daemonOpts{
			addr:        "127.0.0.1:0",
			snapshotOut: snapPath,
			ready:       func(a net.Addr) { addrc <- a },
		}, cfg)
	}()

	var addr net.Addr
	select {
	case addr = <-addrc:
	case err := <-errc:
		t.Fatalf("daemon exited before binding: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never became ready")
	}

	// Drive enough records over real HTTP to queue refits on every target.
	gen := loadgen.NewGenerator(loadgen.GenConfig{Targets: 6, Seed: 11, TimeCompress: 24})
	rep, err := loadgen.Run(loadgen.Config{Mode: loadgen.ClosedLoop, Records: 400, Workers: 4},
		gen.Next, loadgen.NewHTTPSink("http://"+addr.String()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted == 0 {
		t.Fatalf("no records accepted pre-signal:\n%s", rep)
	}

	select {
	case <-refitStarted:
	case <-time.After(5 * time.Second):
		t.Fatal("no refit started after 400 records")
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// No deadlock: run() must come back well inside its own 10s shutdown
	// budget even with refits still draining through the slow wrapper.
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("shutdown returned error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run() deadlocked after SIGTERM during a refit")
	}

	// No partial snapshot: a fresh registry must accept the file wholesale,
	// with published models and a positive version.
	f, err := os.Open(snapPath)
	if err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}
	defer f.Close()
	restored := serve.NewRegistry()
	if err := restored.ReadSnapshot(f); err != nil {
		t.Fatalf("snapshot written on SIGTERM is partial or corrupt: %v", err)
	}
	if restored.Size() == 0 {
		t.Fatal("snapshot holds zero targets after accepted ingest and refits")
	}
	if restored.Version() == 0 {
		t.Fatal("restored registry has version 0")
	}
	for _, as := range restored.Targets() {
		tm, ok := restored.Lookup(as)
		if !ok || tm == nil {
			t.Fatalf("AS%d listed but not loadable from the snapshot", as)
		}
		if tm.Generation == 0 || tm.FittedAt.IsZero() {
			t.Fatalf("AS%d snapshot entry incoherent: %+v", as, tm)
		}
	}
}

// TestDaemonWALRecoveryAcrossRestart runs the real daemon twice against
// one WAL directory: boot, ingest over HTTP, stop, boot again — the
// second instance must report the first instance's records on /healthz
// and serve forecasts for the recovered targets without new ingest.
func TestDaemonWALRecoveryAcrossRestart(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal")

	boot := func() (net.Addr, chan error) {
		addrc := make(chan net.Addr, 1)
		errc := make(chan error, 1)
		go func() {
			errc <- run(daemonOpts{
				addr:     "127.0.0.1:0",
				walDir:   walDir,
				walFsync: "always",
				ready:    func(a net.Addr) { addrc <- a },
			}, serve.Config{
				Shards:     4,
				Window:     64,
				MinWindow:  6,
				RefitEvery: 4,
				QueueDepth: 64,
				BatchSize:  4,
				Seed:       7,
				Temporal:   core.TemporalConfig{MaxP: 1, MaxQ: 1},
				Spatial: core.SpatialConfig{
					Delays: []int{2},
					Hidden: []int{2},
					Train:  nn.TrainConfig{Epochs: 5},
				},
			})
		}()
		select {
		case addr := <-addrc:
			return addr, errc
		case err := <-errc:
			t.Fatalf("daemon exited before binding: %v", err)
		case <-time.After(5 * time.Second):
			t.Fatal("daemon never became ready")
		}
		panic("unreachable")
	}
	stop := func(errc chan error) {
		if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-errc:
			if err != nil {
				t.Fatalf("shutdown returned error: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("run() did not return after SIGTERM")
		}
	}
	healthz := func(addr net.Addr) serve.Health {
		resp, err := http.Get("http://" + addr.String() + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h serve.Health
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h
	}

	addr, errc := boot()
	gen := loadgen.NewGenerator(loadgen.GenConfig{Targets: 5, Seed: 23, TimeCompress: 24})
	rep, err := loadgen.Run(loadgen.Config{Mode: loadgen.ClosedLoop, Records: 200, Workers: 2},
		gen.Next, loadgen.NewHTTPSink("http://"+addr.String()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted == 0 {
		t.Fatalf("no records accepted:\n%s", rep)
	}
	known := healthz(addr).TargetsKnown
	if known == 0 {
		t.Fatal("first instance knows zero targets after accepted ingest")
	}
	stop(errc)

	addr, errc = boot()
	defer stop(errc)
	h := healthz(addr)
	if h.TargetsKnown != known {
		t.Fatalf("restarted daemon knows %d targets, first instance knew %d", h.TargetsKnown, known)
	}
	if h.TargetsServed == 0 {
		t.Fatal("restarted daemon serves zero targets after WAL recovery")
	}
	served := 0
	for _, as := range gen.Targets() {
		resp, err := http.Get(fmt.Sprintf("http://%s/forecast?target=%d", addr, as))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			served++
		}
	}
	if served == 0 {
		t.Fatal("no recovered target serves a forecast after restart")
	}
}

// TestDaemonClusterFormation boots two real daemons through run() with
// the cluster flags and checks the wiring the Go-level cluster tests
// cannot see: flag parsing into a live ring, the routed handler on the
// real listener, /healthz carrying the cluster section, and records
// posted to one node landing on their owner. One SIGTERM stops both
// (in-process daemons share the signal handler).
func TestDaemonClusterFormation(t *testing.T) {
	// Reserve two ports so each daemon can be told its peer's URL before
	// either boots (cluster membership is static).
	reserve := func() string {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		ln.Close()
		return addr
	}
	addr1, addr2 := reserve(), reserve()
	peers := fmt.Sprintf("n1=http://%s,n2=http://%s", addr1, addr2)

	cfg := serve.Config{
		Shards:     4,
		Window:     64,
		MinWindow:  6,
		RefitEvery: 4,
		QueueDepth: 64,
		BatchSize:  4,
		Seed:       7,
		Temporal:   core.TemporalConfig{MaxP: 1, MaxQ: 1},
		Spatial: core.SpatialConfig{
			Delays: []int{2},
			Hidden: []int{2},
			Train:  nn.TrainConfig{Epochs: 5},
		},
	}
	boot := func(self, addr string) chan error {
		addrc := make(chan net.Addr, 1)
		errc := make(chan error, 1)
		go func() {
			errc <- run(daemonOpts{
				addr:         addr,
				walDir:       filepath.Join(t.TempDir(), "wal"),
				walFsync:     "always",
				clusterPeers: peers,
				clusterSelf:  self,
				clusterRoute: "proxy",
				clusterPoll:  50 * time.Millisecond,
				ready:        func(a net.Addr) { addrc <- a },
			}, cfg)
		}()
		select {
		case <-addrc:
			return errc
		case err := <-errc:
			t.Fatalf("daemon %s exited before binding: %v", self, err)
		case <-time.After(5 * time.Second):
			t.Fatalf("daemon %s never became ready", self)
		}
		panic("unreachable")
	}
	errc1 := boot("n1", addr1)
	errc2 := boot("n2", addr2)
	defer func() {
		if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		for _, errc := range []chan error{errc1, errc2} {
			select {
			case err := <-errc:
				if err != nil {
					t.Fatalf("shutdown returned error: %v", err)
				}
			case <-time.After(30 * time.Second):
				t.Fatal("a daemon did not return after SIGTERM")
			}
		}
	}()

	// Mixed-owner traffic into n1 only; the router must spread it.
	gen := loadgen.NewGenerator(loadgen.GenConfig{Targets: 8, Seed: 31, TimeCompress: 24})
	sink := loadgen.NewHTTPSink("http://" + addr1)
	sink.Wire = "binary"
	rep, err := loadgen.Run(loadgen.Config{Mode: loadgen.ClosedLoop, Records: 400, Workers: 2, Batch: 16},
		gen.Next, sink)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted != 400 {
		t.Fatalf("accepted %d of 400 records:\n%s", rep.Accepted, rep)
	}

	// Both daemons report the same ring epoch and their own identity, and
	// both hold targets (each owns roughly half of 8).
	type clusterHealth struct {
		TargetsKnown int `json:"targets_known"`
		Cluster      *struct {
			Node      string `json:"node"`
			RingEpoch uint64 `json:"ring_epoch"`
			Members   int    `json:"members"`
		} `json:"cluster"`
	}
	var epochs [2]uint64
	for i, addr := range []string{addr1, addr2} {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var h clusterHealth
		err = json.NewDecoder(resp.Body).Decode(&h)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if h.Cluster == nil {
			t.Fatalf("node %d: /healthz has no cluster section", i+1)
		}
		if want := fmt.Sprintf("n%d", i+1); h.Cluster.Node != want || h.Cluster.Members != 2 {
			t.Fatalf("node %d cluster section = %+v", i+1, h.Cluster)
		}
		if h.TargetsKnown == 0 {
			t.Fatalf("node n%d owns no targets; routing did not spread the batches", i+1)
		}
		epochs[i] = h.Cluster.RingEpoch
	}
	if epochs[0] != epochs[1] || epochs[0] == 0 {
		t.Fatalf("ring epochs disagree: %d vs %d", epochs[0], epochs[1])
	}
}
