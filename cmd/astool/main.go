// Command astool is the AS-relationship tool of §IV-A3: it synthesizes a
// topology (or accepts routing-table paths on stdin as space-separated AS
// numbers, one path per line), infers business relationships with the Gao
// degree heuristic, and answers valley-free path and hop-distance queries.
//
// Usage:
//
//	astool [-seed N] [-stdin] [-from AS -to AS]
//	echo "100 10 1 2 13 104" | astool -stdin -from 100 -to 104
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/astopo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("astool: ")
	var (
		seed     = flag.Uint64("seed", 1, "seed for the synthetic topology")
		useStdin = flag.Bool("stdin", false, "read routing-table AS paths from stdin")
		from     = flag.Uint("from", 0, "source AS for a path query")
		to       = flag.Uint("to", 0, "destination AS for a path query")
		vantage  = flag.Int("vantage", 15, "vantage points when synthesizing")
	)
	flag.Parse()

	var paths []astopo.Path
	if *useStdin {
		var err error
		paths, err = astopo.ReadRouteTable(os.Stdin)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		topo, err := astopo.Synthesize(astopo.SynthConfig{Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
		paths = topo.EmitRouteTable(*vantage, *seed+1)
	}
	fmt.Printf("routing table: %d AS paths\n", len(paths))

	g := astopo.InferRelationships(paths, astopo.InferConfig{})
	var c2p, p2p int
	for _, a := range g.Nodes() {
		for _, b := range g.Neighbors(a) {
			if a >= b {
				continue
			}
			switch g.Rel(a, b) {
			case astopo.RelCustomerToProvider, astopo.RelProviderToCustomer:
				c2p++
			case astopo.RelPeer, astopo.RelSibling:
				p2p++
			}
		}
	}
	fmt.Printf("inferred graph: %d ASes, %d transit links, %d peering links\n", g.Len(), c2p, p2p)

	if *from != 0 && *to != 0 {
		src, dst := astopo.AS(*from), astopo.AS(*to)
		path, ok := astopo.ValleyFreePath(g, src, dst)
		if !ok {
			fmt.Printf("no valley-free route AS%d -> AS%d\n", src, dst)
			os.Exit(1)
		}
		parts := make([]string, len(path))
		for i, as := range path {
			parts[i] = fmt.Sprintf("AS%d", as)
		}
		fmt.Printf("route: %s (%d hops)\n", strings.Join(parts, " -> "), len(path)-1)
	}
}
