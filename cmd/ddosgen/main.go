// Command ddosgen generates a synthetic verified-DDoS-attack dataset (the
// schema of §II of the paper) and writes it as JSON.
//
// Usage:
//
//	ddosgen [-seed N] [-scale F] [-horizon D] [-o dataset.json]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/astopo"
	"repro/internal/botnet"
	"repro/internal/features"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ddosgen: ")
	var (
		seed    = flag.Uint64("seed", 1, "random seed")
		scale   = flag.Float64("scale", 1.0, "Table I volume scale in (0,1]")
		horizon = flag.Int("horizon", 220, "observation window in days")
		out     = flag.String("o", "dataset.json", "output path")
	)
	flag.Parse()

	t0 := time.Now()
	topo, err := astopo.Synthesize(astopo.SynthConfig{Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	profiles := botnet.ScaleProfiles(botnet.DefaultFamilies(), *scale)
	ds, err := botnet.Simulate(botnet.SimConfig{
		Families:    profiles,
		Topology:    topo,
		HorizonDays: *horizon,
		Seed:        *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := ds.SaveFile(*out); err != nil {
		log.Fatal(err)
	}
	sum := trace.Summarize(ds)
	fmt.Printf("wrote %s: %d verified attacks, %s .. %s (%v)\n",
		*out, sum.Attacks, sum.First.Format("2006-01-02"), sum.Last.Format("2006-01-02"),
		time.Since(t0).Round(time.Millisecond))
	fmt.Printf("  %d families, %d targets in %d ASes, %d unique bots, peak %d concurrent attacks\n",
		sum.Families, sum.Targets, sum.TargetASes, sum.UniqueBots, sum.PeakConcurrent)
	for _, l := range features.ActivityLevels(ds) {
		fmt.Printf("  %-12s avg %.2f/day over %d active days (CV %.2f)\n",
			l.Family, l.AvgPerDay, l.ActiveDays, l.CV)
	}
}
