package ddos

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index), plus ablation
// benchmarks for the design choices the spatiotemporal model depends on.
// Run with:
//
//	go test -bench=. -benchmem
//
// Benchmarks share one generated world (benchWorld) so the expensive
// dataset generation is amortized; BenchmarkDatasetGeneration measures it
// separately.

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"time"

	"repro/internal/arima"
	"repro/internal/astopo"
	"repro/internal/cart"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/features"
	"repro/internal/nn"
	"repro/internal/serve"
	"repro/internal/trace"
)

// benchScale keeps a single bench iteration in the hundreds of
// milliseconds; the experiment shapes are scale-invariant (see
// EXPERIMENTS.md for full-scale numbers).
const benchScale = 0.12

var (
	benchOnce sync.Once
	benchEnv  *eval.Env
	benchErr  error
)

func benchWorld(b *testing.B) *eval.Env {
	b.Helper()
	benchOnce.Do(func() {
		benchEnv, benchErr = eval.BuildEnv(eval.Config{Seed: 99, Scale: benchScale, HorizonDays: 200})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchEnv
}

// BenchmarkDatasetGeneration measures the §II data pipeline: topology
// synthesis, attack generation, route emission, and Gao inference.
func BenchmarkDatasetGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env, err := eval.BuildEnv(eval.Config{Seed: uint64(i + 1), Scale: 0.05, HorizonDays: 100})
		if err != nil {
			b.Fatal(err)
		}
		if env.Dataset.Len() == 0 {
			b.Fatal("empty dataset")
		}
	}
}

// BenchmarkTable1ActivityLevels regenerates Table I.
func BenchmarkTable1ActivityLevels(b *testing.B) {
	env := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := eval.RunTable1(env)
		if len(rows) != 10 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkFigure1TemporalMagnitude regenerates Figure 1 (temporal
// prediction of attack magnitudes for the three most active families).
func BenchmarkFigure1TemporalMagnitude(b *testing.B) {
	env := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series, err := eval.RunFigure1(env, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(series) != 3 {
			b.Fatal("family count")
		}
	}
}

// BenchmarkFigure2SpatialSources regenerates Figure 2 (spatial prediction
// of attacking source distributions).
func BenchmarkFigure2SpatialSources(b *testing.B) {
	env := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunFigure2(env, []string{"DirtJumper"}, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3SpatiotemporalTimestamps regenerates Figure 3 (the
// spatiotemporal timestamp predictions; Figure 4 derives from the same
// run).
func BenchmarkFigure3SpatiotemporalTimestamps(b *testing.B) {
	env := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.RunFigure34(env, eval.Figure34Config{})
		if err != nil {
			b.Fatal(err)
		}
		if res.N == 0 {
			b.Fatal("no predictions")
		}
	}
}

// BenchmarkFigure4ErrorDistributions measures just the error-distribution
// assembly of Figure 4 (reusing a cached Figure 3 run would hide the cost
// structure, so it re-runs the experiment and touches the error slices).
func BenchmarkFigure4ErrorDistributions(b *testing.B) {
	env := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.RunFigure34(env, eval.Figure34Config{})
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, e := range res.HourErrors[eval.ModelSpatiotemporal] {
			sum += e
		}
		_ = sum
	}
}

// BenchmarkComparisonBaselines regenerates the §VII-A model-vs-baseline
// RMSE comparison.
func BenchmarkComparisonBaselines(b *testing.B) {
	env := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunComparison(env, 3)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFigure5UseCases regenerates the §VII-B use cases.
func BenchmarkFigure5UseCases(b *testing.B) {
	env := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunFigure5(env, eval.Figure5Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationMeanLeaves ablates the model tree's MLR leaves down to
// constant-mean leaves (the paper's Eq. 8 motivation for MLR leaves).
func BenchmarkAblationMeanLeaves(b *testing.B) {
	env := benchWorld(b)
	samples := ablationSamples(b, env)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := core.FitSpatiotemporal(samples, core.STConfig{
			Tree: cart.Config{LeafModel: cart.LeafMean},
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = st.Hour.Leaves()
	}
}

// BenchmarkAblationMLRLeaves is the paired baseline for the leaf ablation.
func BenchmarkAblationMLRLeaves(b *testing.B) {
	env := benchWorld(b)
	samples := ablationSamples(b, env)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := core.FitSpatiotemporal(samples, core.STConfig{})
		if err != nil {
			b.Fatal(err)
		}
		_ = st.Hour.Leaves()
	}
}

// BenchmarkAblationNoPruning grows the model tree without the paper's 88%
// standard-deviation retention (StdDevRetain ~ 1 keeps splitting).
func BenchmarkAblationNoPruning(b *testing.B) {
	env := benchWorld(b)
	samples := ablationSamples(b, env)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := core.FitSpatiotemporal(samples, core.STConfig{
			Tree: cart.Config{StdDevRetain: 0.999},
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = st.Hour.Leaves()
	}
}

// ablationSamples derives a reusable spatiotemporal training set from the
// bench world's per-attack features.
func ablationSamples(b *testing.B, env *eval.Env) []core.STSample {
	b.Helper()
	ds := env.Dataset
	attacks := ds.ByFamily("DirtJumper")
	if len(attacks) < 60 {
		b.Fatal("not enough attacks for ablation")
	}
	samples := make([]core.STSample, 0, len(attacks)-1)
	for i := 1; i < len(attacks); i++ {
		prev, cur := &attacks[i-1], &attacks[i]
		samples = append(samples, core.STSample{
			F: core.STFeatures{
				TmpHour:    float64(prev.Hour()),
				TmpDay:     float64(prev.Day()),
				PrevHour:   float64(prev.Hour()),
				PrevDay:    float64(prev.Day()),
				PrevGapSec: cur.Start.Sub(prev.Start).Seconds(),
				AvgMag:     float64(prev.Magnitude()),
				TargetAS:   float64(cur.TargetAS),
			},
			Hour: float64(cur.Hour()),
			Day:  float64(cur.Day()),
			Dur:  cur.DurationSec,
			Mag:  float64(cur.Magnitude()),
		})
	}
	return samples
}

// --- Parallel engine ------------------------------------------------------
//
// The benchmarks below pin the speedup of the parallel evaluation engine:
// each one runs the same workload serially (GOMAXPROCS=1, where the worker
// pool degenerates to a plain loop) and at full width. The deterministic
// reductions guarantee both settings produce identical results, so the
// sub-benchmarks differ only in wall clock.

// withProcs runs fn under the given GOMAXPROCS setting.
func withProcs(procs int, fn func()) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
	fn()
}

// benchWidths returns the GOMAXPROCS settings to compare: serial and full
// machine width. On a single-CPU machine only the serial run is emitted —
// a second identical sub-benchmark would just duplicate the name.
func benchWidths() []int {
	if n := runtime.NumCPU(); n > 1 {
		return []int{1, n}
	}
	return []int{1}
}

// BenchmarkMeanPairwiseDistance measures the oracle's all-pairs sweep on a
// cold cache (a fresh oracle per iteration, so every per-source BFS runs).
func BenchmarkMeanPairwiseDistance(b *testing.B) {
	env := benchWorld(b)
	nodes := env.Inferred.Nodes()
	for _, procs := range benchWidths() {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			withProcs(procs, func() {
				for i := 0; i < b.N; i++ {
					o := astopo.NewDistanceOracle(env.Inferred)
					mean, pairs := o.MeanPairwiseDistance(nodes)
					if pairs == 0 || mean <= 0 {
						b.Fatal("degenerate mean")
					}
				}
			})
		})
	}
}

// BenchmarkComparisonFanOut measures the §VII-A comparison's per-(family,
// feature) fan-out end to end.
func BenchmarkComparisonFanOut(b *testing.B) {
	env := benchWorld(b)
	for _, procs := range benchWidths() {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			withProcs(procs, func() {
				for i := 0; i < b.N; i++ {
					rows, err := eval.RunComparison(env, 3)
					if err != nil {
						b.Fatal(err)
					}
					if len(rows) == 0 {
						b.Fatal("no rows")
					}
				}
			})
		})
	}
}

// BenchmarkSelectOrderGrid measures the ARIMA (p,q) order grid on a real
// feature series from the bench world.
func BenchmarkSelectOrderGrid(b *testing.B) {
	env := benchWorld(b)
	xs := features.MagnitudeSeries(env.Dataset.ByFamily("DirtJumper"))
	if len(xs) < 100 {
		b.Fatal("series too short")
	}
	for _, procs := range benchWidths() {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			withProcs(procs, func() {
				for i := 0; i < b.N; i++ {
					if _, err := arima.SelectOrder(xs, 4, 1, 3); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// --- Online serving -------------------------------------------------------

// serveBenchRegistry publishes n targets built from one fitted model set:
// the forecast hot path never mutates models, so sharing the fitted
// Temporal/Spatial across AS entries is safe and keeps setup O(1) in n.
func serveBenchRegistry(b *testing.B, n int) *serve.Registry {
	b.Helper()
	t0 := time.Date(2012, 8, 1, 0, 0, 0, 0, time.UTC)
	attacks := make([]trace.Attack, 16)
	for i := range attacks {
		attacks[i] = trace.Attack{
			ID: i + 1, Family: "DirtJumper",
			Start:       t0.Add(time.Duration(i) * 3 * time.Hour),
			DurationSec: float64(600 + 60*(i%5)),
			TargetAS:    64512,
			Bots:        make([]astopo.IPv4, 3+i%5),
		}
	}
	tm, err := core.FitTemporal("DirtJumper", attacks, core.TemporalConfig{MaxP: 1, MaxQ: 1})
	if err != nil {
		b.Fatal(err)
	}
	sm, err := core.FitSpatial(64512, attacks, core.SpatialConfig{
		Delays: []int{2}, Hidden: []int{2}, Train: nn.TrainConfig{Epochs: 10},
	})
	if err != nil {
		b.Fatal(err)
	}
	reg := serve.NewRegistry()
	batch := make([]*serve.TargetModels, n)
	for i := range batch {
		batch[i] = &serve.TargetModels{
			AS: astopo.AS(64512 + i), Family: "DirtJumper",
			Temporal: tm, Spatial: sm,
			Window: len(attacks), Generation: reg.NextGeneration(),
		}
	}
	reg.Publish(batch)
	return reg
}

// BenchmarkServeForecast pins the ddosd hot-path acceptance criterion:
// serving a forecast is one atomic snapshot load plus closed-form model
// reads — ns/op and allocs/op must stay flat as the store grows.
func BenchmarkServeForecast(b *testing.B) {
	for _, n := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("targets=%d", n), func(b *testing.B) {
			reg := serveBenchRegistry(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fc, err := reg.Forecast(astopo.AS(64512 + i%n))
				if err != nil {
					b.Fatal(err)
				}
				if fc.Hour < 0 {
					b.Fatal("bad forecast")
				}
			}
		})
	}
}

// BenchmarkServeIngest measures the sharded store's ingest path alone
// (window insert + dedup scan), with refits disabled via a high MinWindow.
func BenchmarkServeIngest(b *testing.B) {
	cfg := serve.Config{Window: 256, MinWindow: 1 << 30}
	svc := serve.New(cfg)
	defer svc.Close()
	t0 := time.Date(2012, 8, 1, 0, 0, 0, 0, time.UTC)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := trace.Attack{
			ID: i + 1, Family: "DirtJumper",
			Start:       t0.Add(time.Duration(i) * time.Minute),
			DurationSec: 600,
			TargetAS:    astopo.AS(64512 + i%64),
			Bots:        []astopo.IPv4{1, 2, 3},
		}
		if _, err := svc.Ingest(&a); err != nil {
			b.Fatal(err)
		}
	}
}
