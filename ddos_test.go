package ddos

import (
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/trace"
)

var (
	worldOnce sync.Once
	testWorld *World
	worldErr  error
)

func sharedWorld(t *testing.T) *World {
	t.Helper()
	worldOnce.Do(func() {
		testWorld, worldErr = NewWorld(Config{Seed: 31, Scale: 0.1, HorizonDays: 150})
	})
	if worldErr != nil {
		t.Fatal(worldErr)
	}
	return testWorld
}

func TestNewWorldAndAccessors(t *testing.T) {
	w := sharedWorld(t)
	if w.Env() == nil || w.Dataset() == nil {
		t.Fatal("nil accessors")
	}
	if w.Dataset().Len() == 0 {
		t.Fatal("empty dataset")
	}
	fams := w.Families()
	if len(fams) != 10 {
		t.Fatalf("families = %d, want 10", len(fams))
	}
	if fams[0] != "DirtJumper" {
		t.Errorf("top family = %s", fams[0])
	}
}

func TestSaveDatasetRoundTrip(t *testing.T) {
	w := sharedWorld(t)
	path := filepath.Join(t.TempDir(), "world.json")
	if err := w.SaveDataset(path); err != nil {
		t.Fatal(err)
	}
	back, err := trace.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != w.Dataset().Len() {
		t.Errorf("round trip %d vs %d", back.Len(), w.Dataset().Len())
	}
}

func TestForecastNextAttack(t *testing.T) {
	w := sharedWorld(t)
	fc, err := w.ForecastNextAttack("DirtJumper")
	if err != nil {
		t.Fatal(err)
	}
	if fc.Family != "DirtJumper" {
		t.Error("family not set")
	}
	last := w.Dataset().ByFamily("DirtJumper")
	if !fc.Start.After(last[len(last)-1].Start) {
		t.Error("forecast start should be after the last observed attack")
	}
	if fc.Hour < 0 || fc.Hour >= 24 || fc.Day < 1 || fc.Day > 31 {
		t.Errorf("forecast out of range: %+v", fc)
	}
	if fc.Magnitude <= 0 {
		t.Errorf("magnitude = %v", fc.Magnitude)
	}
	if _, err := w.ForecastNextAttack("NoSuchFamily"); err == nil {
		t.Error("unknown family should error")
	}
}

func TestWorldExperimentEntryPoints(t *testing.T) {
	w := sharedWorld(t)
	if rows := w.Table1(); len(rows) != 10 {
		t.Errorf("Table1 rows = %d", len(rows))
	}
	if rows := w.Table2(); len(rows) != 9 {
		t.Errorf("Table2 rows = %d", len(rows))
	}
	f1, err := w.Figure1()
	if err != nil || len(f1) != 3 {
		t.Errorf("Figure1: %v, %d series", err, len(f1))
	}
	f5, err := w.Figure5()
	if err != nil || f5.Attacks == 0 {
		t.Errorf("Figure5: %v", err)
	}
	cmp, err := w.Comparison()
	if err != nil || len(cmp) == 0 {
		t.Errorf("Comparison: %v", err)
	}
}

func TestWorldTrainBundleAndLoadDataset(t *testing.T) {
	w := sharedWorld(t)
	b, err := w.TrainBundle()
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Temporal) == 0 || len(b.Spatial) == 0 {
		t.Fatalf("bundle shape: %d temporal, %d spatial", len(b.Temporal), len(b.Spatial))
	}
	path := filepath.Join(t.TempDir(), "ds.json")
	if err := w.SaveDataset(path); err != nil {
		t.Fatal(err)
	}
	ds, err := LoadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != w.Dataset().Len() {
		t.Error("LoadDataset round trip mismatch")
	}
}
