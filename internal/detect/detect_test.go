package detect

import (
	"testing"
	"time"

	"repro/internal/astopo"
	"repro/internal/trace"
)

// rec builds a minimal record for the detector: only TargetAS, Start,
// and Bots matter on this path.
func rec(target astopo.AS, sec int64, bots ...astopo.IPv4) trace.Attack {
	return trace.Attack{TargetAS: target, Start: time.Unix(sec, 0), Bots: bots}
}

const baseSec = int64(1_700_000_000)

// TestRateAlertRaiseAndClear walks one target through the full rate
// hysteresis cycle: a sparse baseline, a burst that must raise, and a
// return to sparse traffic that must clear.
func TestRateAlertRaiseAndClear(t *testing.T) {
	var alerts []Alert
	d := New(Config{OnAlert: func(a Alert) { alerts = append(alerts, a) }})
	st := d.NewState()

	// Baseline: one record every 30s. Counts never reach MinCount=3 in
	// the short windows, and the long-window EWMA stays low.
	sec := baseSec
	for i := 0; i < 40; i++ {
		r := rec(64500, sec)
		if res := d.Observe(st, &r); res.Verdict != 0 {
			t.Fatalf("baseline record %d got verdict %#x", i, res.Verdict)
		}
		sec += 30
	}
	if len(alerts) != 0 {
		t.Fatalf("baseline raised %d alerts: %+v", len(alerts), alerts)
	}

	// Burst: 50 records in one second must trip the rate windows.
	var v uint8
	for i := 0; i < 50; i++ {
		r := rec(64500, sec)
		v = d.Observe(st, &r).Verdict
	}
	if v&VerdictRate == 0 {
		t.Fatalf("burst verdict %#x lacks VerdictRate", v)
	}
	raised := 0
	for _, a := range alerts {
		if a.Kind != KindRate || a.Cleared {
			t.Fatalf("unexpected alert during burst: %+v", a)
		}
		if a.Severity < 1 {
			t.Fatalf("raise severity %v < 1 (threshold crossing)", a.Severity)
		}
		raised++
	}
	if raised == 0 {
		t.Fatal("burst emitted no raise alerts")
	}
	if d.Active() != int64(raised) {
		t.Fatalf("Active()=%d after %d raises", d.Active(), raised)
	}

	// Quiet again: sparse records far in the future must clear every
	// window (counts fall to ≤ MinCount-1 and the frozen baseline is low).
	alerts = alerts[:0]
	for i := 0; i < 10; i++ {
		sec += 400
		r := rec(64500, sec)
		v = d.Observe(st, &r).Verdict
	}
	if v != 0 {
		t.Fatalf("post-burst verdict %#x, want 0", v)
	}
	cleared := 0
	for _, a := range alerts {
		if a.Kind == KindRate && a.Cleared {
			cleared++
		}
	}
	if cleared != raised {
		t.Fatalf("%d raises but %d clears", raised, cleared)
	}
	if d.Active() != 0 {
		t.Fatalf("Active()=%d after full clear", d.Active())
	}
	s := d.Stats()
	if s.Raised != uint64(raised) || s.Cleared != uint64(cleared) {
		t.Fatalf("stats %+v disagree with %d raises / %d clears", s, raised, cleared)
	}
}

// TestEntropyAlert drives the source-concentration signal: a dispersed
// bot population establishes the entropy baseline, then the same traffic
// volume from a 2-address pool must raise KindEntropy, and renewed
// dispersion must clear it.
func TestEntropyAlert(t *testing.T) {
	var alerts []Alert
	// The records are 30s apart; a 600s half-life keeps the decayed
	// sample count above the EntropyMin floor (the default 60s half-life
	// equilibrates near 8 samples at this pacing, gating every alert).
	d := New(Config{EntropyHalfLife: 600, OnAlert: func(a Alert) { alerts = append(alerts, a) }})
	st := d.NewState()

	sec := baseSec
	diverse := func(i int) []astopo.IPv4 {
		out := make([]astopo.IPv4, 4)
		for j := range out {
			out[j] = astopo.IPv4(0x0a00_0000 + uint32(i*17+j*131)%4096)
		}
		return out
	}
	for i := 0; i < 60; i++ {
		r := rec(64500, sec, diverse(i)...)
		d.Observe(st, &r)
		sec += 30
	}
	for _, a := range alerts {
		if a.Kind == KindEntropy {
			t.Fatalf("dispersed baseline raised entropy alert: %+v", a)
		}
	}

	// Concentrate: every record now comes from the same two addresses.
	var sawEntropy bool
	for i := 0; i < 120 && !sawEntropy; i++ {
		r := rec(64500, sec, astopo.IPv4(0x0a00_0001), astopo.IPv4(0x0a00_0002),
			astopo.IPv4(0x0a00_0001), astopo.IPv4(0x0a00_0002))
		sawEntropy = d.Observe(st, &r).Verdict&VerdictEntropy != 0
		sec += 30
	}
	if !sawEntropy {
		t.Fatal("concentrated pool never raised VerdictEntropy")
	}

	// Disperse again: the alert must clear.
	var clearedAt = -1
	for i := 0; i < 200 && clearedAt < 0; i++ {
		r := rec(64500, sec, diverse(i+1000)...)
		if d.Observe(st, &r).Verdict&VerdictEntropy == 0 {
			clearedAt = i
		}
		sec += 30
	}
	if clearedAt < 0 {
		t.Fatal("entropy alert never cleared after dispersion returned")
	}
	var clears int
	for _, a := range alerts {
		if a.Kind == KindEntropy && a.Cleared {
			clears++
		}
	}
	if clears == 0 {
		t.Fatal("no KindEntropy clear alert emitted")
	}
}

// TestStaleRecords pins the watermark semantics: a record more than the
// ring coverage behind head is reported stale and leaves every window
// count untouched.
func TestStaleRecords(t *testing.T) {
	d := New(Config{})
	st := d.NewState()
	r := rec(64500, baseSec)
	d.Observe(st, &r)
	before := st.WindowCounts()

	old := rec(64500, baseSec-int64(ringSeconds))
	res := d.Observe(st, &old)
	if !res.Stale {
		t.Fatalf("record %ds behind head not marked stale", ringSeconds)
	}
	if st.WindowCounts() != before {
		t.Fatalf("stale record changed window counts: %v -> %v", before, st.WindowCounts())
	}
	if got := d.Stats().Stale; got != 1 {
		t.Fatalf("Stats().Stale = %d, want 1", got)
	}

	// One second newer than the stale horizon is late-but-live: it lands
	// in the widest window only.
	late := rec(64500, baseSec-int64(ringSeconds)+1)
	if res := d.Observe(st, &late); res.Stale {
		t.Fatal("record just inside coverage marked stale")
	}
	got := st.WindowCounts()
	want := before
	want[NumWindows-1]++
	if got != want {
		t.Fatalf("late record counts %v, want %v", got, want)
	}
}

// TestRecentAlerts pins the /alerts ring: most-recent-first order, the
// max argument, and cap wraparound.
func TestRecentAlerts(t *testing.T) {
	d := New(Config{AlertCap: 4})
	for i := 0; i < 7; i++ {
		d.emit(Alert{Target: astopo.AS(100 + i), Kind: KindRate, At: time.Unix(baseSec+int64(i), 0)})
	}
	all := d.Recent(0)
	if len(all) != 4 {
		t.Fatalf("Recent(0) returned %d alerts with cap 4", len(all))
	}
	for i, a := range all {
		if want := astopo.AS(106 - i); a.Target != want {
			t.Fatalf("Recent(0)[%d].Target = %v, want %v", i, a.Target, want)
		}
	}
	if two := d.Recent(2); len(two) != 2 || two[0].Target != 106 || two[1].Target != 105 {
		t.Fatalf("Recent(2) = %+v", two)
	}
}

// TestDetectZeroAlloc pins the hot-path allocation contract: once a
// target's State exists, Observe allocates nothing — across watermark
// advances, late records, and bot-sketch updates.
func TestDetectZeroAlloc(t *testing.T) {
	d := New(Config{})
	st := d.NewState()
	bots := []astopo.IPv4{0x0a000001, 0x0a000002, 0x0a000003, 0x0a000004}
	r := trace.Attack{TargetAS: 64500, Bots: bots}
	sec := baseSec
	for i := 0; i < 2000; i++ {
		sec++
		r.Start = time.Unix(sec, 0)
		d.Observe(st, &r)
	}
	i := 0
	allocs := testing.AllocsPerRun(2000, func() {
		i++
		switch i % 4 {
		case 0:
			sec++ // advance the watermark
			r.Start = time.Unix(sec, 0)
		case 1:
			r.Start = time.Unix(sec-5, 0) // late but live
		default:
			r.Start = time.Unix(sec, 0) // same-second repeat
		}
		d.Observe(st, &r)
	})
	if allocs != 0 {
		t.Fatalf("Observe allocates %v per record, want 0", allocs)
	}
}

// FuzzDetector feeds the detector hostile op streams — wild timestamp
// deltas (including pre-epoch and far-future), extreme bot magnitudes,
// and target churn — and requires that it never panics and that every
// state's window invariants survive every single record.
func FuzzDetector(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0})
	f.Add([]byte{0xff, 0x7f, 3, 5, 1, 0, 0x00, 0x80, 200, 9, 2, 3})
	f.Add([]byte{10, 0, 0, 1, 0, 1, 246, 255, 50, 2, 1, 2, 0, 4, 0, 0, 3, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := New(Config{MinCount: 1, EntropyMin: 4})
		states := make(map[astopo.AS]*State)
		var recs int
		sec := baseSec
		var bots [64]astopo.IPv4
		for len(data) >= 6 && recs < 4096 {
			op := data[:6]
			data = data[6:]
			recs++

			// Bytes 0-1: signed second delta; byte 5 scales it so streams
			// reach both the stale horizon and whole-ring jumps, and can
			// run time backwards below the epoch.
			delta := int64(int16(uint16(op[0]) | uint16(op[1])<<8))
			switch op[5] % 4 {
			case 1:
				delta *= 61
			case 2:
				delta *= 7919
			case 3:
				delta *= 1 << 16
			}
			sec += delta

			target := astopo.AS(64500 + uint32(op[2]%5)) // churn across 5 targets
			n := int(op[3]) % len(bots)                  // 0..63 bots
			for j := 0; j < n; j++ {
				bots[j] = astopo.IPv4(uint32(op[4])<<8 | uint32(j%(1+int(op[5]%8))))
			}
			r := trace.Attack{TargetAS: target, Start: time.Unix(sec, 0), Bots: bots[:n]}

			st := states[target]
			if st == nil {
				st = d.NewState()
				states[target] = st
			}
			res := d.Observe(st, &r)
			if err := st.CheckInvariants(); err != nil {
				t.Fatalf("record %d (sec %d, delta %d): %v", recs, sec, delta, err)
			}
			if res.Stale && res.Verdict != st.verdict() {
				t.Fatalf("record %d: stale verdict %#x != state verdict %#x", recs, res.Verdict, st.verdict())
			}
		}
		if a := d.Active(); a < 0 {
			t.Fatalf("negative active alert count %d", a)
		}
		s := d.Stats()
		if s.Cleared > s.Raised {
			t.Fatalf("cleared %d > raised %d", s.Cleared, s.Raised)
		}
		if s.Records != uint64(recs) {
			t.Fatalf("Stats().Records = %d, want %d", s.Records, recs)
		}
	})
}

// BenchmarkDetect measures the per-record Observe cost on a warm state —
// the marginal price the ingest path pays for the detection tier.
func BenchmarkDetect(b *testing.B) {
	d := New(Config{})
	st := d.NewState()
	bots := []astopo.IPv4{0x0a000001, 0x0a000002, 0x0a000003, 0x0a000004}
	r := trace.Attack{TargetAS: 64500, Bots: bots}
	sec := baseSec
	for i := 0; i < 1000; i++ {
		sec++
		r.Start = time.Unix(sec, 0)
		d.Observe(st, &r)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%8 == 0 {
			sec++
		}
		r.Start = time.Unix(sec, 0)
		d.Observe(st, &r)
	}
}
