package detect_test

// Black-box property test for the sliding multi-window counters. It
// lives outside package detect because it perturbs its streams with
// internal/chaos, which reaches detect again through internal/serve —
// an import cycle for an in-package test.

import (
	"math/rand/v2"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/detect"
	"repro/internal/trace"
)

// ringSeconds mirrors the detector's ring coverage: the widest window.
var ringSeconds = detect.Windows[detect.NumWindows-1]

// bruteRef is the oracle for the sliding multi-window counters: it keeps
// every accepted record's second in a map and recomputes each window
// count from scratch. Semantics mirror the ring exactly — the watermark
// is the max second seen, a record at least ringSeconds behind it at
// arrival is stale (never counted), and window w covers (head-w, head].
type bruteRef struct {
	init   bool
	head   int64
	counts map[int64]uint64
}

func (b *bruteRef) observe(sec int64) (stale bool) {
	if !b.init {
		b.init = true
		b.head = sec
	}
	if sec > b.head {
		b.head = sec
	}
	if sec <= b.head-int64(ringSeconds) {
		return true
	}
	b.counts[sec]++
	return false
}

func (b *bruteRef) window(w int) uint64 {
	var sum uint64
	for s := b.head - int64(w) + 1; s <= b.head; s++ {
		sum += b.counts[s]
	}
	return sum
}

// TestWindowCountsMatchBruteForce is the property test for the ring:
// randomized streams — out-of-order, duplicated, and clock-skewed via
// the same chaos injector the soak tests use — must agree with the
// brute-force oracle on every window count after every single record.
func TestWindowCountsMatchBruteForce(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 7, 42} {
		rng := rand.New(rand.NewPCG(seed, 0xdd05))
		base := make([]trace.Attack, 4000)
		sec := int64(1_700_000_000)
		for i := range base {
			switch rng.IntN(12) {
			case 0:
				sec += int64(rng.IntN(900)) // occasionally jump past the ring
			case 1:
				// same second again
			default:
				sec += int64(rng.IntN(3))
			}
			// Local jitter: a few seconds of out-of-order arrival even
			// before the chaos injector reorders whole records.
			base[i] = trace.Attack{
				ID: i + 1, TargetAS: 64500,
				Start: time.Unix(sec-int64(rng.IntN(5)), 0),
			}
		}
		faults := &chaos.StreamFaults{
			Seed: seed, DropProb: 0.05, DupProb: 0.1,
			ReorderProb: 0.2, SkewProb: 0.2, SkewMax: 10 * time.Minute,
		}
		stream := faults.Apply(base)

		d := detect.New(detect.Config{})
		st := d.NewState()
		ref := &bruteRef{counts: make(map[int64]uint64)}
		for i := range stream {
			res := d.Observe(st, &stream[i])
			stale := ref.observe(stream[i].Start.Unix())
			if res.Stale != stale {
				t.Fatalf("seed %d record %d (sec %d): Stale=%v, oracle says %v",
					seed, i, stream[i].Start.Unix(), res.Stale, stale)
			}
			got := st.WindowCounts()
			for wi, w := range detect.Windows {
				if want := ref.window(w); uint64(got[wi]) != want {
					t.Fatalf("seed %d record %d: window %ds count %d, oracle %d",
						seed, i, w, got[wi], want)
				}
			}
			if err := st.CheckInvariants(); err != nil {
				t.Fatalf("seed %d record %d: %v", seed, i, err)
			}
		}
	}
}
