// Package detect is the line-rate streaming detection tier in front of
// the modeling pipeline (DESIGN.md §13): a per-target detector that runs
// under the store's shard locks on every ingested record, before the
// record is appended. It combines three signals —
//
//   - multi-window sliding-rate counters (1s/10s/60s/300s) over a
//     per-second ring of buckets, advanced in event time (the record
//     timestamps, not the wall clock), so replay, backfill, and
//     compressed load tests all see the same verdicts;
//   - a per-window EWMA behavioral baseline with trigger/clear
//     hysteresis, frozen while an alert is active so the baseline never
//     learns the attack it is flagging;
//   - streaming source entropy over bot IPs via a fixed-size
//     count-min + top-K sketch with event-time decay, flagging the
//     source-concentration collapse of a botnet reusing a small address
//     pool.
//
// Everything is allocation-free per record once a target's State exists
// (pinned by TestDetectZeroAlloc / BenchmarkDetect): the ring, sketch,
// and alert buffer are fixed-size, and raise/clear transitions — the only
// locked operations — are rare by construction. Verdicts are recorded on
// the stored record (trace.Attack.Verdict) so refits can condition on
// them, and typed Alerts are exposed over /alerts and ddosd_detect_*.
package detect

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/astopo"
	"repro/internal/trace"
)

// NumWindows is how many sliding rate windows each target tracks.
const NumWindows = 4

// Windows are the sliding rate windows in seconds, ascending. The ring
// covers exactly the largest window, so every non-stale record lands in a
// live bucket.
var Windows = [NumWindows]int{1, 10, 60, 300}

// ringSeconds is the per-target bucket ring coverage: the largest window.
const ringSeconds = 300

// Verdict bits recorded on trace.Attack.Verdict. Zero means baseline.
const (
	// VerdictRate: at least one sliding-rate window is in alert.
	VerdictRate uint8 = 1 << 0
	// VerdictEntropy: the source-concentration (entropy) alert is active.
	VerdictEntropy uint8 = 1 << 1
)

// Kind labels an alert family (the ddosd_detect_alerts_total{kind} label).
type Kind string

const (
	// KindRate is a sliding-window rate threshold crossing.
	KindRate Kind = "rate"
	// KindEntropy is a source-entropy collapse: the bot-address
	// distribution concentrated onto a small pool.
	KindEntropy Kind = "source_concentration"
)

// Alert is one detector transition: a raise (Cleared=false) or the
// matching hysteresis clear (Cleared=true) for a target's signal.
type Alert struct {
	Target   astopo.AS `json:"target"`
	Kind     Kind      `json:"kind"`
	Window   int       `json:"window_sec,omitempty"` // rate window in seconds; 0 for entropy
	Severity float64   `json:"severity"`             // observed/threshold at raise; observed deficit at clear
	At       time.Time `json:"at"`                   // event time of the record that transitioned
	Cleared  bool      `json:"cleared,omitempty"`
}

// Config tunes a Detector. The zero value gets production-ish defaults.
type Config struct {
	// Trigger raises a rate alert when a window's count reaches this
	// multiple of its EWMA baseline. Default 4.
	Trigger float64
	// Clear drops a rate alert when the count falls to this multiple of
	// the (frozen) baseline — the hysteresis band. Default 1.5.
	Clear float64
	// MinRate floors the trigger threshold at MinRate×window seconds, so
	// cold targets with a near-zero baseline still need a real rate burst
	// to alert. Default 1 record/sec.
	MinRate float64
	// MinCount is the absolute records-in-window floor below which no
	// window ever triggers (and at MinCount-1, any window clears) — it
	// keeps a single sparse record from tripping the 1s window. Default 3.
	MinCount int
	// EWMAAlpha is the per-event-second baseline smoothing factor.
	// Default 0.05.
	EWMAAlpha float64
	// EntropyDrop raises the source-concentration alert when normalized
	// top-K entropy falls below baseline×(1−EntropyDrop); it clears above
	// baseline×(1−EntropyDrop/2). Default 0.3.
	EntropyDrop float64
	// EntropyMin is the decayed bot-sample floor before entropy alerts are
	// considered (sparse baseline traffic never concentrates "enough" to
	// matter). Default 32.
	EntropyMin int
	// EntropyHalfLife is the event-time interval between sketch halvings.
	// Default 60s.
	EntropyHalfLife int
	// AlertCap bounds the in-memory alert ring served by /alerts.
	// Default 256.
	AlertCap int
	// OnAlert, when non-nil, observes every raise and clear (telemetry).
	// It is called from the ingest path under the target's shard lock:
	// keep it cheap and never re-enter the service from it.
	OnAlert func(Alert)
}

func (c Config) withDefaults() Config {
	if c.Trigger <= 0 {
		c.Trigger = 4
	}
	if c.Clear <= 0 {
		c.Clear = 1.5
	}
	if c.Clear >= c.Trigger {
		c.Clear = c.Trigger / 2
	}
	if c.MinRate <= 0 {
		c.MinRate = 1
	}
	if c.MinCount < 1 {
		c.MinCount = 3
	}
	if c.EWMAAlpha <= 0 || c.EWMAAlpha >= 1 {
		c.EWMAAlpha = 0.05
	}
	if c.EntropyDrop <= 0 || c.EntropyDrop >= 1 {
		c.EntropyDrop = 0.3
	}
	if c.EntropyMin < 1 {
		c.EntropyMin = 32
	}
	if c.EntropyHalfLife < 1 {
		c.EntropyHalfLife = 60
	}
	if c.AlertCap < 1 {
		c.AlertCap = 256
	}
	return c
}

// Count-min sketch geometry: 4 rows × 128 columns of uint32, plus an
// 8-entry top-K heavy-hitter table. Fixed arrays keep State a single
// allocation.
const (
	cmDepth = 4
	cmWidth = 128 // power of two: the hash folds with a shift
	topK    = 8
)

// cmSeeds are per-row multiplicative hash constants.
var cmSeeds = [cmDepth]uint32{0x9e3779b1, 0x85ebca77, 0xc2b2ae3d, 0x27d4eb2f}

type topEntry struct {
	ip uint32
	n  uint32
}

// State is one target's detector state. All access happens under the
// owning store shard's lock; the struct is a single fixed-size allocation
// created lazily on the target's first record.
type State struct {
	init bool
	head int64 // event-time watermark: max record second seen (unix)

	buckets [ringSeconds]uint32 // per-second counts covering (head-300, head]
	sums    [NumWindows]uint32  // records in (head-w, head] per window
	ewma    [NumWindows]float64 // behavioral baseline per window (frozen in alert)
	active  [NumWindows]bool    // rate alert latch per window

	// Source-entropy sketch over bot IPs.
	cm        [cmDepth][cmWidth]uint32
	top       [topK]topEntry
	topN      int
	samples   uint32  // decayed bot observations folded into the sketch
	lastDecay int64   // event second of the last sketch halving epoch
	entBase   float64 // EWMA baseline of normalized top-K entropy
	entInit   bool
	entActive bool
}

// Result is one Observe outcome.
type Result struct {
	// Verdict is the record's classification bitmask (VerdictRate |
	// VerdictEntropy), reflecting the alerts active after this record.
	Verdict uint8
	// Stale marks a record older than the ring's 300s coverage behind the
	// target's watermark: counted, but outside every window.
	Stale bool
}

// Detector evaluates records against per-target State and keeps the
// shared alert ring. Observe may run concurrently for different targets
// (different shard locks); the ring has its own mutex, taken only on the
// rare raise/clear transitions.
type Detector struct {
	cfg Config

	records atomic.Uint64
	stale   atomic.Uint64
	raised  atomic.Uint64
	cleared atomic.Uint64
	active  atomic.Int64

	mu   sync.Mutex
	ring []Alert // fixed-capacity circular buffer, slot seq%cap
	seq  uint64
}

// New builds a detector.
func New(cfg Config) *Detector {
	cfg = cfg.withDefaults()
	return &Detector{cfg: cfg, ring: make([]Alert, cfg.AlertCap)}
}

// Config returns the detector's effective (defaulted) configuration.
func (d *Detector) Config() Config { return d.cfg }

// NewState allocates a fresh per-target state (one allocation; everything
// inside is fixed-size).
func (d *Detector) NewState() *State { return &State{} }

// slot maps an event second onto its ring index (negative-safe: hostile
// pre-epoch timestamps must not panic).
func slot(sec int64) int {
	m := sec % ringSeconds
	if m < 0 {
		m += ringSeconds
	}
	return int(m)
}

// Observe folds one record into the target's state and returns its
// verdict. Event time comes from the record's Start; out-of-order records
// within ring coverage land in their true second, older ones are counted
// stale. Allocation-free once st exists.
func (d *Detector) Observe(st *State, a *trace.Attack) Result {
	d.records.Add(1)
	sec := a.Start.Unix()
	var res Result
	switch {
	case !st.init:
		st.init = true
		st.head = sec
		st.lastDecay = sec
		st.buckets[slot(sec)]++
		for i := range st.sums {
			st.sums[i]++
		}
	case sec > st.head:
		d.advance(st, sec)
		st.buckets[slot(sec)]++
		for i := range st.sums {
			st.sums[i]++
		}
	case sec > st.head-ringSeconds:
		// Late but within coverage: its second's bucket is still live.
		st.buckets[slot(sec)]++
		off := st.head - sec
		for wi := range Windows {
			if off < int64(Windows[wi]) {
				st.sums[wi]++
			}
		}
	default:
		// Older than the ring covers: outside every window by definition.
		d.stale.Add(1)
		res.Stale = true
		res.Verdict = st.verdict()
		return res
	}

	d.observeSources(st, a)
	d.evalRate(st, a)
	res.Verdict = st.verdict()
	return res
}

// advance moves the watermark forward to sec: retire the seconds leaving
// each window, update the (unfrozen) EWMA baselines with the drained
// counts, and recycle the ring slots the new seconds will use.
func (d *Detector) advance(st *State, sec int64) {
	delta := sec - st.head
	if delta >= ringSeconds {
		// The whole ring ages out.
		for i := range st.buckets {
			st.buckets[i] = 0
		}
		for i := range st.sums {
			st.sums[i] = 0
		}
	} else {
		for wi := range Windows {
			w := int64(Windows[wi])
			if delta >= w {
				st.sums[wi] = 0
				continue
			}
			// Seconds leaving window wi: (head-w, sec-w]; delta < w keeps
			// them at or before head, so their buckets are still live.
			for s := st.head - w + 1; s <= sec-w; s++ {
				st.sums[wi] -= st.buckets[slot(s)]
			}
		}
		for s := st.head + 1; s <= sec; s++ {
			st.buckets[slot(s)] = 0
		}
	}
	// Fold the elapsed seconds into each baseline in closed form:
	// ewma ← c + (ewma−c)·(1−α)^delta with c the drained count. Frozen
	// while that window's alert is active so the baseline never chases
	// the attack.
	decay := math.Pow(1-d.cfg.EWMAAlpha, float64(delta))
	for wi := range Windows {
		if st.active[wi] {
			continue
		}
		c := float64(st.sums[wi])
		st.ewma[wi] = c + (st.ewma[wi]-c)*decay
	}
	st.head = sec
}

// verdict is the bitmask of currently active alerts.
func (st *State) verdict() uint8 {
	var v uint8
	for wi := range st.active {
		if st.active[wi] {
			v |= VerdictRate
			break
		}
	}
	if st.entActive {
		v |= VerdictEntropy
	}
	return v
}

// evalRate applies the trigger/clear hysteresis per window after the
// record has been folded in.
func (d *Detector) evalRate(st *State, a *trace.Attack) {
	for wi := range Windows {
		w := Windows[wi]
		c := float64(st.sums[wi])
		if !st.active[wi] {
			thr := d.cfg.MinRate * float64(w)
			if m := float64(d.cfg.MinCount); m > thr {
				thr = m
			}
			if e := st.ewma[wi] * d.cfg.Trigger; e > thr {
				thr = e
			}
			if c >= thr {
				st.active[wi] = true
				d.emit(Alert{Target: a.TargetAS, Kind: KindRate, Window: w, Severity: c / thr, At: a.Start})
			}
			continue
		}
		clr := st.ewma[wi] * d.cfg.Clear
		if m := float64(d.cfg.MinCount - 1); m > clr {
			clr = m
		}
		if c <= clr {
			st.active[wi] = false
			sev := 0.0
			if clr > 0 {
				sev = c / clr
			}
			d.emit(Alert{Target: a.TargetAS, Kind: KindRate, Window: w, Severity: sev, At: a.Start, Cleared: true})
		}
	}
}

// observeSources folds the record's bot IPs into the count-min + top-K
// sketch, decays it on event-time epochs, and applies the entropy
// hysteresis.
func (d *Detector) observeSources(st *State, a *trace.Attack) {
	// Event-time decay: halve every counter once per elapsed half-life.
	if steps := (st.head - st.lastDecay) / int64(d.cfg.EntropyHalfLife); steps > 0 {
		st.lastDecay += steps * int64(d.cfg.EntropyHalfLife)
		if steps > 31 {
			steps = 31 // a >>32 is UB-adjacent; past 31 everything is zero anyway
		}
		sh := uint(steps)
		for r := range st.cm {
			for i := range st.cm[r] {
				st.cm[r][i] >>= sh
			}
		}
		keep := 0
		for i := 0; i < st.topN; i++ {
			st.top[i].n >>= sh
			if st.top[i].n > 0 {
				st.top[keep] = st.top[i]
				keep++
			}
		}
		st.topN = keep
		st.samples >>= sh
	}
	for _, b := range a.Bots {
		ip := uint32(b)
		est := uint32(math.MaxUint32)
		for r := range cmSeeds {
			i := (ip * cmSeeds[r]) >> (32 - 7) // cmWidth == 1<<7
			st.cm[r][i]++
			if st.cm[r][i] < est {
				est = st.cm[r][i]
			}
		}
		st.updateTop(ip, est)
		st.samples++
	}
	if len(a.Bots) == 0 {
		return
	}

	ent := st.entropy()
	if !st.entInit {
		st.entBase = ent
		st.entInit = true
	} else if !st.entActive {
		st.entBase = 0.9*st.entBase + 0.1*ent
	}
	if !st.entActive {
		if st.samples >= uint32(d.cfg.EntropyMin) && ent < st.entBase*(1-d.cfg.EntropyDrop) {
			st.entActive = true
			sev := 0.0
			if st.entBase > 0 {
				sev = (st.entBase - ent) / st.entBase
			}
			d.emit(Alert{Target: a.TargetAS, Kind: KindEntropy, Severity: sev, At: a.Start})
		}
		return
	}
	if ent >= st.entBase*(1-d.cfg.EntropyDrop/2) || st.samples < uint32(d.cfg.EntropyMin)/2 {
		st.entActive = false
		sev := 0.0
		if st.entBase > 0 {
			sev = (st.entBase - ent) / st.entBase
		}
		d.emit(Alert{Target: a.TargetAS, Kind: KindEntropy, Severity: sev, At: a.Start, Cleared: true})
	}
}

// updateTop maintains the top-K heavy hitters with count-min-estimate
// admission (space-saving style).
func (st *State) updateTop(ip, est uint32) {
	minI := -1
	var minN uint32 = math.MaxUint32
	for i := 0; i < st.topN; i++ {
		if st.top[i].ip == ip {
			st.top[i].n++
			return
		}
		if st.top[i].n < minN {
			minN, minI = st.top[i].n, i
		}
	}
	if st.topN < topK {
		st.top[st.topN] = topEntry{ip: ip, n: est}
		st.topN++
		return
	}
	if est > minN {
		st.top[minI] = topEntry{ip: ip, n: est}
	}
}

// entropy returns the normalized Shannon entropy of the top-K counts in
// [0,1]: 1 for a uniform heavy-hitter table (dispersed sources), falling
// toward 0 as the mass concentrates onto few addresses.
func (st *State) entropy() float64 {
	if st.topN <= 1 {
		return 0
	}
	var tot float64
	for i := 0; i < st.topN; i++ {
		tot += float64(st.top[i].n)
	}
	if tot <= 0 {
		return 0
	}
	var h float64
	for i := 0; i < st.topN; i++ {
		p := float64(st.top[i].n) / tot
		if p > 0 {
			h -= p * math.Log(p)
		}
	}
	return h / math.Log(topK)
}

// emit records one raise/clear into the ring and counters and fires the
// hook. Called under the observing shard's lock; transitions are rare.
func (d *Detector) emit(a Alert) {
	if a.Cleared {
		d.cleared.Add(1)
		d.active.Add(-1)
	} else {
		d.raised.Add(1)
		d.active.Add(1)
	}
	d.mu.Lock()
	d.ring[int(d.seq%uint64(len(d.ring)))] = a
	d.seq++
	d.mu.Unlock()
	if d.cfg.OnAlert != nil {
		d.cfg.OnAlert(a)
	}
}

// Stats is the detector's counter snapshot (/alerts, tests).
type Stats struct {
	Records uint64 `json:"records"`
	Stale   uint64 `json:"stale"`
	Raised  uint64 `json:"raised"`
	Cleared uint64 `json:"cleared"`
	Active  int64  `json:"active"`
}

// Stats snapshots the detector counters.
func (d *Detector) Stats() Stats {
	return Stats{
		Records: d.records.Load(),
		Stale:   d.stale.Load(),
		Raised:  d.raised.Load(),
		Cleared: d.cleared.Load(),
		Active:  d.active.Load(),
	}
}

// Active returns the number of currently active alerts.
func (d *Detector) Active() int64 { return d.active.Load() }

// Recent returns up to max alerts, most recent first.
func (d *Detector) Recent(max int) []Alert {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := int(d.seq)
	if uint64(n) != d.seq || n > len(d.ring) {
		n = len(d.ring)
	}
	if max > 0 && n > max {
		n = max
	}
	out := make([]Alert, n)
	for i := 0; i < n; i++ {
		out[i] = d.ring[int((d.seq-1-uint64(i))%uint64(len(d.ring)))]
	}
	return out
}

// CheckInvariants recomputes every window sum from the bucket ring and
// verifies the invariants the fuzzer pins: stored sums match the ring
// exactly, and coverage is monotone (a wider window never counts fewer
// records). Test support; not called on the hot path.
func (st *State) CheckInvariants() error {
	if !st.init {
		for wi := range st.sums {
			if st.sums[wi] != 0 {
				return fmt.Errorf("detect: uninitialized state has sums[%d]=%d", wi, st.sums[wi])
			}
		}
		return nil
	}
	var prev uint64
	for wi := range Windows {
		w := int64(Windows[wi])
		var sum uint64
		for s := st.head - w + 1; s <= st.head; s++ {
			sum += uint64(st.buckets[slot(s)])
		}
		if sum != uint64(st.sums[wi]) {
			return fmt.Errorf("detect: window %ds sum %d != ring total %d", Windows[wi], st.sums[wi], sum)
		}
		if sum < prev {
			return fmt.Errorf("detect: window coverage not monotone: %ds holds %d < narrower window's %d", Windows[wi], sum, prev)
		}
		prev = sum
	}
	return nil
}

// WindowCounts returns the current per-window record counts (tests,
// /alerts introspection helpers).
func (st *State) WindowCounts() [NumWindows]uint32 { return st.sums }

// Head returns the state's event-time watermark second (0 before the
// first record).
func (st *State) Head() int64 { return st.head }
