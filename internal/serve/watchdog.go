package serve

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// SLO watchdog wiring: the serve layer turns its own telemetry into the
// obs.Watchdog's rules and snapshot producers (DESIGN.md §14). Rate-style
// objectives (shed rate, alert storms) are computed as deltas between
// watchdog evaluations, not lifetime ratios — a node that shed heavily an
// hour ago but is healthy now must not keep tripping the recorder.

// WatchdogConfig selects the monitored SLOs and the bundle ring. The
// zero value for any threshold disables that rule (ShedRate uses a
// negative value: a 0.0 shed-rate threshold — "any shedding breaches" —
// is legitimate).
type WatchdogConfig struct {
	// Dir is the bundle ring directory. Required.
	Dir string
	// Interval, Cooldown, MaxBundles, CPUProfile tune the recorder
	// (obs.WatchdogConfig defaults apply when zero).
	Interval   time.Duration
	Cooldown   time.Duration
	MaxBundles int
	CPUProfile time.Duration

	// IngestP99 breaches when the ingest request p99 exceeds it. 0 = off.
	IngestP99 time.Duration
	// ShedRate breaches when the fraction of ingest requests shed since
	// the last evaluation exceeds it. Negative = off.
	ShedRate float64
	// ReplLagSegs breaches when replication lag (total segments behind
	// across owned peers, via ReplLag) exceeds it. 0 = off.
	ReplLagSegs int
	// AlertRatePerMin breaches when the detector raises alerts faster
	// than this per minute, measured between evaluations. 0 = off.
	AlertRatePerMin float64

	// ReplLag, when non-nil, reports replication lag in segments (the
	// cluster node's Lag). Required for ReplLagSegs.
	ReplLag func() int
	// Statusz, when non-nil, is marshaled into the bundle's statusz.json
	// (the cluster's fleet status, or the node's own NodeStatus).
	Statusz func() any
	// LogLines, when non-nil, supplies the bundle's log.txt (obs.LogRing).
	LogLines func() []string

	Logger *slog.Logger
}

// StartWatchdog builds and starts the SLO-breach flight recorder. Call
// once, after cluster wiring (so ReplLag and Statusz see the node);
// Close stops it.
func (s *Service) StartWatchdog(cfg WatchdogConfig) (*obs.Watchdog, error) {
	if s.watchdog.Load() != nil {
		return nil, fmt.Errorf("serve: watchdog already started")
	}
	var rules []obs.WatchdogRule
	if cfg.IngestP99 > 0 {
		rules = append(rules, obs.WatchdogRule{
			Name:      "ingest_p99_seconds",
			Threshold: cfg.IngestP99.Seconds(),
			Value:     func() float64 { return s.tel.ingestSeconds.Quantile(0.99) },
		})
	}
	if cfg.ShedRate >= 0 {
		rules = append(rules, obs.WatchdogRule{
			Name:      "ingest_shed_rate",
			Threshold: cfg.ShedRate,
			Value:     s.shedRateProbe(),
		})
	}
	if cfg.ReplLagSegs > 0 && cfg.ReplLag != nil {
		rules = append(rules, obs.WatchdogRule{
			Name:      "replication_lag_segments",
			Threshold: float64(cfg.ReplLagSegs),
			Value:     func() float64 { return float64(cfg.ReplLag()) },
		})
	}
	if cfg.AlertRatePerMin > 0 {
		rules = append(rules, obs.WatchdogRule{
			Name:      "detect_alerts_per_minute",
			Threshold: cfg.AlertRatePerMin,
			Value:     s.alertRateProbe(),
		})
	}
	snapshots := map[string]func() ([]byte, error){
		"spans.json": func() ([]byte, error) {
			return json.MarshalIndent(obs.TracesSnapshot{
				Capacity: s.tracer.Capacity(),
				SlowSec:  s.tracer.SlowThreshold().Seconds(),
				Traces:   s.tracer.Snapshot(),
			}, "", "  ")
		},
		"metrics.prom": func() ([]byte, error) {
			var sb strings.Builder
			s.tel.reg.WriteText(&sb)
			return []byte(sb.String()), nil
		},
	}
	if cfg.Statusz != nil {
		snapshots["statusz.json"] = func() ([]byte, error) {
			return json.MarshalIndent(cfg.Statusz(), "", "  ")
		}
	} else {
		snapshots["statusz.json"] = func() ([]byte, error) {
			st := s.NodeStatus()
			return json.MarshalIndent(&st, "", "  ")
		}
	}
	if cfg.LogLines != nil {
		snapshots["log.txt"] = func() ([]byte, error) {
			return []byte(strings.Join(cfg.LogLines(), "\n") + "\n"), nil
		}
	}
	wd, err := obs.NewWatchdog(obs.WatchdogConfig{
		Dir:        cfg.Dir,
		Interval:   cfg.Interval,
		Cooldown:   cfg.Cooldown,
		MaxBundles: cfg.MaxBundles,
		CPUProfile: cfg.CPUProfile,
		Rules:      rules,
		Snapshots:  snapshots,
		Logger:     cfg.Logger,
	})
	if err != nil {
		return nil, err
	}
	s.watchdog.Store(wd)
	wd.Start()
	return wd, nil
}

// shedRateProbe returns a delta-based shed-rate probe: the fraction of
// ingest requests answered 429 since the previous call.
func (s *Service) shedRateProbe() func() float64 {
	var mu sync.Mutex
	var lastShed, lastTotal uint64
	return func() float64 {
		shed := s.tel.ingestShed.Value()
		total := s.tel.ingestSeconds.Count()
		mu.Lock()
		dShed, dTotal := shed-lastShed, total-lastTotal
		lastShed, lastTotal = shed, total
		mu.Unlock()
		if dTotal == 0 {
			return 0
		}
		return float64(dShed) / float64(dTotal)
	}
}

// alertRateProbe returns a delta-based alert-storm probe: detector
// raises per minute since the previous call.
func (s *Service) alertRateProbe() func() float64 {
	var mu sync.Mutex
	var lastRaised uint64
	last := time.Now()
	return func() float64 {
		raised := s.tel.detAlertsRate.Value() + s.tel.detAlertsEnt.Value()
		now := time.Now()
		mu.Lock()
		d := raised - lastRaised
		mins := now.Sub(last).Minutes()
		lastRaised, last = raised, now
		mu.Unlock()
		if mins <= 0 {
			return 0
		}
		return float64(d) / mins
	}
}

// Watchdog exposes the running flight recorder (nil when not started).
func (s *Service) Watchdog() *obs.Watchdog { return s.watchdog.Load() }
