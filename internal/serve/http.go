package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/astopo"
	"repro/internal/detect"
	"repro/internal/obs"
	"repro/internal/trace"
)

// HTTP layer. Endpoints:
//
//	POST /ingest        — attack records: one object, an array, or NDJSON;
//	                      or a binary batch with Content-Type
//	                      application/x-ddos-batch (trace.BatchEncoder)
//	GET  /forecast      — ?target=<AS>: next-attack forecast for the target
//	GET  /healthz       — liveness + store/registry/backlog summary
//	GET  /metrics       — Prometheus text exposition
//	GET  /accuracy      — windowed online forecast-accuracy per model
//	GET  /alerts        — streaming-detector state: counters plus the
//	                      recent raise/clear ring (?limit=N)
//	GET  /debug/traces  — ring of recent pipeline traces (JSON span trees;
//	                      ?trace=<id>, ?stage=<name>, ?min_ms=<d> filters)
//	GET  /statusz       — this node's full status (health + WAL + detect +
//	                      accuracy + runtime); cluster.Node shadows this
//	                      route with the fleet-wide fan-out version
//	GET  /debug/bundle  — SLO watchdog diagnostics bundles (StartWatchdog)
//	GET  /buildinfo     — module, version, VCS revision
//
// Errors are JSON {"error": "..."}; load shedding answers 429 with a
// Retry-After hint. pprof and expvar live on the separate opt-in admin
// mux (obs.AdminMux, ddosd -admin-addr), not here.

// Handler returns the service's HTTP mux.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/ingest", s.handleIngest)
	mux.HandleFunc("/forecast", s.handleForecast)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.Handle("/metrics", s.tel.reg.Handler())
	mux.Handle("/accuracy", s.acc.Handler())
	mux.HandleFunc("/alerts", s.handleAlerts)
	mux.Handle("/debug/traces", s.tracer.Handler())
	mux.HandleFunc("/statusz", s.handleStatusz)
	mux.HandleFunc("/debug/bundle", s.handleBundle)
	mux.HandleFunc("/buildinfo", obs.BuildInfo)
	return mux
}

// IngestResult is the /ingest response body. On a mid-batch failure the
// same shape comes back with Error set: Ingested/Duplicates report what
// the service already committed before the bad record, so clients can
// resume a partially applied batch instead of blindly resending it. The
// failing record itself is counted in Rejected and the error names its
// 1-based position — always Ingested+Duplicates+Rejected, on every
// error path. (Binary batches are the one exception: a frame that fails
// to decode aborts the whole batch before anything is applied, so all
// three counts come back zero and the error still names the frame's
// position.)
type IngestResult struct {
	Ingested   int    `json:"ingested"`
	Duplicates int    `json:"duplicates"`
	Rejected   int    `json:"rejected"`
	Error      string `json:"error,omitempty"`
}

func (s *Service) handleIngest(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { s.tel.ingestSeconds.Observe(time.Since(start).Seconds()) }()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	// One root span per request; the per-record append/wal/score/schedule
	// wall times are summed and attached as pre-measured children
	// (per-record observations already hit the stage histograms inside
	// ingestTimed, so Attach keeps the trace tree without double-counting).
	// A request forwarded by a cluster router carries trace context (header
	// on proxied sub-requests, ?xtrace= on 307 redirects) — this root then
	// joins the router's trace instead of opening its own.
	ctx, _ := obs.ContextFromRequest(r)
	span := s.tracer.StartRemote(StageIngest, ctx)
	var agg ingestStageTimes
	outcome := "ok"
	var res IngestResult
	defer func() {
		span.Attach(StageAppend, start, agg.Append)
		span.Attach(StageDetect, start, agg.Detect)
		span.Attach(StageWAL, start, agg.WAL)
		span.Attach(StageScore, start, agg.Score)
		span.Attach(StageSchedule, start, agg.Schedule)
		span.SetAttr("outcome", outcome)
		span.SetAttr("ingested", strconv.Itoa(res.Ingested))
		span.SetAttr("duplicates", strconv.Itoa(res.Duplicates))
		span.End()
	}()
	// Refresh the target gauges on every exit, not only full success:
	// records committed mid-batch must show even when the request then
	// sheds or errors, or ddosd_targets_* goes stale under sustained
	// error traffic.
	defer s.updateTargetGauges()
	if s.sched.Overloaded() {
		s.tel.ingestShed.Inc()
		outcome = "shed"
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("refit backlog %d over watermark %d", s.sched.Lag(), s.cfg.LagWatermark))
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBatchBytes)
	if r.Header.Get("Content-Type") == trace.BatchContentType {
		s.ingestBinary(w, body, &res, &agg, &outcome)
		return
	}
	dec := trace.NewStreamDecoder(body)
	for {
		if res.Ingested+res.Duplicates+res.Rejected >= s.cfg.MaxBatchRecords {
			outcome = "too_large"
			writeIngestError(w, http.StatusRequestEntityTooLarge, &res,
				fmt.Sprintf("batch larger than %d records", s.cfg.MaxBatchRecords))
			return
		}
		a, err := dec.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			outcome = "too_large"
			writeIngestError(w, http.StatusRequestEntityTooLarge, &res,
				fmt.Sprintf("request body larger than %d bytes", tooBig.Limit))
			return
		}
		if err != nil {
			res.Rejected++
			outcome = "bad_record"
			writeIngestError(w, http.StatusBadRequest, &res, fmt.Sprintf("record %d: %v",
				res.Ingested+res.Duplicates+res.Rejected, err))
			return
		}
		ok, st, err := s.ingestTimed(a)
		agg.Append += st.Append
		agg.Detect += st.Detect
		agg.WAL += st.WAL
		agg.Score += st.Score
		agg.Schedule += st.Schedule
		if ok {
			res.Ingested++
		}
		switch {
		case errors.Is(err, ErrShedding):
			outcome = "shed"
			w.Header().Set("Retry-After", "1")
			writeIngestError(w, http.StatusTooManyRequests, &res, err.Error())
			return
		case errors.Is(err, ErrNotDurable):
			// Applied in memory but not persisted: fail the request so the
			// client retries; the dedup window absorbs the replayed records.
			outcome = "not_durable"
			writeIngestError(w, http.StatusInternalServerError, &res, err.Error())
			return
		case err != nil:
			res.Rejected++
			outcome = "bad_record"
			writeIngestError(w, http.StatusBadRequest, &res, fmt.Sprintf("record %d: %v",
				res.Ingested+res.Duplicates+res.Rejected, err))
			return
		case !ok:
			res.Duplicates++
		}
	}
	writeJSON(w, http.StatusOK, &res)
}

// batchDecPool recycles binary batch decoders across /ingest requests;
// a warm decoder's arenas make the decode path amortized zero-alloc.
var batchDecPool = sync.Pool{New: func() any { return trace.NewBatchDecoder() }}

// ingestBinary handles an application/x-ddos-batch body: decode the
// whole batch (nothing is applied from a batch with an undecodable
// frame), then apply it through the vectorized IngestBatch, handing the
// decoder's raw frame payloads to the WAL untouched.
func (s *Service) ingestBinary(w http.ResponseWriter, body io.Reader, res *IngestResult, agg *ingestStageTimes, outcome *string) {
	dec := batchDecPool.Get().(*trace.BatchDecoder)
	defer batchDecPool.Put(dec)
	dec.Reset(body)
	if err := dec.Decode(s.cfg.MaxBatchRecords); err != nil {
		var tooBig *http.MaxBytesError
		var tooMany *trace.BatchTooLargeError
		switch {
		case errors.As(err, &tooBig):
			*outcome = "too_large"
			writeIngestError(w, http.StatusRequestEntityTooLarge, res,
				fmt.Sprintf("request body larger than %d bytes", tooBig.Limit))
		case errors.As(err, &tooMany):
			*outcome = "too_large"
			writeIngestError(w, http.StatusRequestEntityTooLarge, res,
				fmt.Sprintf("batch larger than %d records", tooMany.Max))
		default:
			// A torn, corrupt, or mislabeled batch: nothing was applied.
			// BatchFrameError already names the failing record's 1-based
			// position.
			*outcome = "bad_record"
			writeIngestError(w, http.StatusBadRequest, res, err.Error())
		}
		return
	}
	br, st, err := s.ingestBatchTimed(dec.Records(), dec.Payload)
	*agg = st
	res.Ingested = br.Ingested
	res.Duplicates = br.Duplicates
	switch {
	case errors.Is(err, ErrShedding):
		*outcome = "shed"
		w.Header().Set("Retry-After", "1")
		writeIngestError(w, http.StatusTooManyRequests, res, err.Error())
	case errors.Is(err, ErrNotDurable):
		*outcome = "not_durable"
		writeIngestError(w, http.StatusInternalServerError, res, err.Error())
	case err != nil:
		// *BatchRecordError: the prefix before the named record was
		// applied, the rest was not. Same index convention as the JSON
		// wire: Ingested+Duplicates+Rejected.
		res.Rejected++
		*outcome = "bad_record"
		writeIngestError(w, http.StatusBadRequest, res, err.Error())
	default:
		writeJSON(w, http.StatusOK, res)
	}
}

// writeIngestError reports a failed /ingest request without discarding
// what already happened: the body carries the committed ingested and
// duplicate counts alongside the error.
func writeIngestError(w http.ResponseWriter, status int, res *IngestResult, msg string) {
	out := *res
	out.Error = msg
	writeJSON(w, status, &out)
}

func (s *Service) handleForecast(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { s.tel.forecastSecs.Observe(time.Since(start).Seconds()) }()
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	ctx, _ := obs.ContextFromRequest(r)
	span := s.tracer.StartRemote(StageForecast, ctx)
	outcome := "hit"
	defer func() {
		span.SetAttr("outcome", outcome)
		span.End()
	}()
	q := r.URL.Query().Get("target")
	if q == "" {
		outcome = "bad_request"
		writeError(w, http.StatusBadRequest, "missing target parameter (AS number)")
		return
	}
	asn, err := strconv.ParseUint(q, 10, 32)
	if err != nil {
		outcome = "bad_request"
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad target %q: %v", q, err))
		return
	}
	span.SetAttr("target", q)
	fc, err := s.reg.Forecast(astopo.AS(asn))
	if err != nil {
		s.tel.forecastMisses.Inc()
		outcome = "miss"
		if window, _ := s.store.Window(astopo.AS(asn)); window != nil {
			writeError(w, http.StatusNotFound, fmt.Sprintf(
				"target AS%d warming up: %d/%d records ingested, no model published yet",
				asn, len(window), s.cfg.MinWindow))
			return
		}
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown target AS%d", asn))
		return
	}
	s.tel.forecasts.Inc()
	writeJSON(w, http.StatusOK, fc)
}

// AlertsReport is the /alerts response body. With detection off only
// Enabled is present; otherwise Stats carries the detector counters and
// Alerts the most-recent-first raise/clear ring (capped by ?limit=N).
type AlertsReport struct {
	Enabled bool           `json:"enabled"`
	Stats   *detect.Stats  `json:"stats,omitempty"`
	Alerts  []detect.Alert `json:"alerts,omitempty"`
}

func (s *Service) handleAlerts(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	d := s.store.Detector()
	if d == nil {
		writeJSON(w, http.StatusOK, &AlertsReport{Enabled: false})
		return
	}
	limit := 0
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad limit %q", q))
			return
		}
		limit = n
	}
	stats := d.Stats()
	writeJSON(w, http.StatusOK, &AlertsReport{
		Enabled: true,
		Stats:   &stats,
		Alerts:  d.Recent(limit),
	})
}

// Health is the /healthz response body. Cluster is present only when the
// node runs in cluster mode (cluster.Status via SetClusterInfo): node
// identity, ring epoch, peer count, replication lag — the fields smoke/CI
// polls to wait on cluster formation.
type Health struct {
	Status          string  `json:"status"`
	UptimeSec       float64 `json:"uptime_sec"`
	Shards          int     `json:"shards"`
	TargetsKnown    int     `json:"targets_known"`
	TargetsServed   int     `json:"targets_served"`
	SnapshotVersion uint64  `json:"snapshot_version"`
	RefitLag        int64   `json:"refit_lag"`
	Shedding        bool    `json:"shedding"`
	Cluster         any     `json:"cluster,omitempty"`
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.updateTargetGauges()
	writeJSON(w, http.StatusOK, &Health{
		Status:          "ok",
		UptimeSec:       time.Since(s.start).Seconds(),
		Shards:          s.store.Shards(),
		TargetsKnown:    s.store.Len(),
		TargetsServed:   s.reg.Size(),
		SnapshotVersion: s.reg.Version(),
		RefitLag:        s.sched.Lag(),
		Shedding:        s.sched.Overloaded(),
		Cluster:         s.clusterInfoValue(),
	})
}

func (s *Service) updateTargetGauges() {
	s.tel.targetsKnown.Set(int64(s.store.Len()))
	s.tel.targetsServed.Set(int64(s.reg.Size()))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
