package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/astopo"
	"repro/internal/detect"
	"repro/internal/trace"
)

// Store is the sharded per-target state store: each target network (AS)
// owns a rolling window of its most recent attacks plus ingest counters.
// Targets hash onto a fixed power-of-two shard array; every shard has its
// own mutex, so ingest for different targets contends only 1/shards of the
// time and never blocks the forecast path (which reads the registry's
// snapshot, not the store).
type Store struct {
	shards []storeShard
	mask   uint64
	window int

	// det, when non-nil, runs the streaming detection tier on every
	// accepted record inside ingestLocked — under the same shard lock as
	// the append, so the verdict written onto the stored record is exactly
	// the detector state the record itself produced (score → detect →
	// append ordering). Set once before traffic via AttachDetector.
	det *detect.Detector

	// maxTargets, when positive, bounds the total target count: ingesting a
	// new target over the cap evicts the least-recently-ingested other
	// target in the same shard and calls onEvict with it. Both are set once
	// before traffic via SetMaxTargets.
	maxTargets int
	onEvict    func(astopo.AS)
	count      atomic.Int64  // known targets across all shards
	seq        atomic.Uint64 // global ingest clock stamping targetState.touch
}

type storeShard struct {
	mu      sync.Mutex
	targets map[astopo.AS]*targetState
}

// targetState is one target's mutable ingest state. All access is under
// the owning shard's mutex. The running sums track the current window
// (updated on insert and eviction) so the accuracy tracker's baselines —
// Always-Same and Always-Mean — read in O(1) on the ingest path.
type targetState struct {
	attacks    []trace.Attack // rolling window, chronological
	total      uint64         // all-time ingested (after dedup)
	sinceRefit int            // records since the last completed refit

	magSum  float64 // sum of magnitudes over the current window
	durSum  float64 // sum of durations over the current window
	hourSum float64 // sum of start hours over the current window
	daySum  float64 // sum of start days over the current window

	touch uint64 // Store.seq value of the last accepted ingest (eviction order)

	det *detect.State // streaming detector state; nil until first record with a detector attached
}

func (ts *targetState) addSums(a *trace.Attack) {
	ts.magSum += float64(a.Magnitude())
	ts.durSum += a.DurationSec
	ts.hourSum += float64(a.Hour())
	ts.daySum += float64(a.Day())
}

func (ts *targetState) subSums(a *trace.Attack) {
	ts.magSum -= float64(a.Magnitude())
	ts.durSum -= a.DurationSec
	ts.hourSum -= float64(a.Hour())
	ts.daySum -= float64(a.Day())
}

// PrevStats summarizes a target's window as it stood before one ingest:
// exactly the information the §VII baselines had available when the
// forecast for the arriving attack was made. N == 0 means the target had
// no history (nothing to score against).
type PrevStats struct {
	N         int       // window length before the insert
	LastStart time.Time // most recent attack's start
	LastMag   float64   // Always-Same magnitude
	LastDur   float64   // Always-Same duration
	MeanMag   float64   // Always-Mean magnitude
	MeanDur   float64   // Always-Mean duration
	MeanHour  float64   // Always-Mean start hour
	MeanDay   float64   // Always-Mean start day
}

// AttachDetector installs the streaming detection tier (DESIGN.md §13).
// Call once, before traffic: ingestLocked reads the field without
// synchronization beyond the shard lock it already holds.
func (s *Store) AttachDetector(d *detect.Detector) { s.det = d }

// SetMaxTargets bounds the target count (-max-targets); onEvict fires for
// every evicted target (the service drops its registry entry and promotion
// window there). Call once, before traffic. The hook runs under the shard
// lock of the ingest that triggered the eviction: it must not re-enter the
// store (Registry.Drop and promoTracker.Drop take only their own locks, so
// the shard→registry lock order has no inverse anywhere).
func (s *Store) SetMaxTargets(n int, onEvict func(astopo.AS)) {
	s.maxTargets = n
	s.onEvict = onEvict
}

// Known reports whether the target currently exists in the store.
func (s *Store) Known(as astopo.AS) bool {
	sh := s.shardFor(as)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.targets[as] != nil
}

// Detector returns the attached detector (nil when detection is off).
func (s *Store) Detector() *detect.Detector { return s.det }

// detectOutcome reports what the detect stage did for one record: whether
// it ran, the wall time it took, and the stale flag mirrored into
// ddosd_detect_stale_records_total. The verdict itself is written onto
// the record.
type detectOutcome struct {
	Ran   bool
	Stale bool
	Dur   time.Duration
}

// NewStore builds a store with the given shard count (rounded up to a
// power of two, minimum 1) and per-target window capacity.
func NewStore(shards, window int) *Store {
	n := 1
	for n < shards {
		n <<= 1
	}
	if window < 1 {
		window = 1
	}
	s := &Store{shards: make([]storeShard, n), mask: uint64(n - 1), window: window}
	for i := range s.shards {
		s.shards[i].targets = make(map[astopo.AS]*targetState)
	}
	return s
}

// shardIndex hashes the target AS onto its shard slot (Fibonacci
// multiplicative hash: consecutive AS numbers — the common synthetic
// layout — spread across shards instead of clustering). Exposed
// separately from shardFor so the batched ingest path can group records
// by shard before taking any lock.
func (s *Store) shardIndex(as astopo.AS) int {
	h := uint64(as) * 0x9e3779b97f4a7c15
	return int((h >> 32) & s.mask)
}

func (s *Store) shardFor(as astopo.AS) *storeShard {
	return &s.shards[s.shardIndex(as)]
}

// Ingest folds one attack into its target's window and returns the
// target's records-since-refit count, the window length, and whether the
// record was new (false: a duplicate attack ID already in the window was
// dropped).
func (s *Store) Ingest(a *trace.Attack) (sinceRefit, windowLen int, accepted bool) {
	sinceRefit, windowLen, _, accepted = s.IngestScored(a)
	return sinceRefit, windowLen, accepted
}

// IngestScored is Ingest plus the pre-append window summary the accuracy
// tracker scores baselines against. The summary is captured under the
// same shard lock, immediately before the insert, so it reflects exactly
// the history available when the arriving attack was still the future.
func (s *Store) IngestScored(a *trace.Attack) (sinceRefit, windowLen int, prev PrevStats, accepted bool) {
	sinceRefit, windowLen, prev, _, accepted = s.ingestScored(a)
	return sinceRefit, windowLen, prev, accepted
}

// ingestScored is IngestScored plus the detect-stage outcome the service
// layer feeds into telemetry.
func (s *Store) ingestScored(a *trace.Attack) (sinceRefit, windowLen int, prev PrevStats, det detectOutcome, accepted bool) {
	sh := s.shardFor(a.TargetAS)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return s.ingestLocked(sh, a)
}

// ingestLocked is IngestScored's body with sh (the shard owning
// a.TargetAS) already locked — the unit the batched ingest path applies
// repeatedly under one lock acquisition per shard group.
func (s *Store) ingestLocked(sh *storeShard, a *trace.Attack) (sinceRefit, windowLen int, prev PrevStats, det detectOutcome, accepted bool) {
	ts := sh.targets[a.TargetAS]
	if ts == nil {
		ts = &targetState{}
		sh.targets[a.TargetAS] = ts
		if n := s.count.Add(1); s.maxTargets > 0 && n > int64(s.maxTargets) {
			s.evictLocked(sh, a.TargetAS)
		}
	}
	for i := range ts.attacks {
		if ts.attacks[i].ID == a.ID {
			return ts.sinceRefit, len(ts.attacks), prev, det, false
		}
	}
	if n := len(ts.attacks); n > 0 {
		last := &ts.attacks[n-1]
		prev = PrevStats{
			N:         n,
			LastStart: last.Start,
			LastMag:   float64(last.Magnitude()),
			LastDur:   last.DurationSec,
			MeanMag:   ts.magSum / float64(n),
			MeanDur:   ts.durSum / float64(n),
			MeanHour:  ts.hourSum / float64(n),
			MeanDay:   ts.daySum / float64(n),
		}
	}
	// Detect-then-append, still under the shard lock: the verdict written
	// onto the stored record reflects the alerts active the instant this
	// record was folded in. The field is server-authoritative — it is
	// always overwritten, so a client-supplied verdict never survives into
	// the store (or into cross-node checkpoint comparisons).
	a.Verdict = 0
	if s.det != nil {
		t0 := time.Now()
		if ts.det == nil {
			ts.det = s.det.NewState()
		}
		r := s.det.Observe(ts.det, a)
		a.Verdict = r.Verdict
		det = detectOutcome{Ran: true, Stale: r.Stale, Dur: time.Since(t0)}
	}

	// Insert keeping chronological order: records usually arrive in order,
	// so scan from the tail.
	pos := len(ts.attacks)
	for pos > 0 && ts.attacks[pos-1].Start.After(a.Start) {
		pos--
	}
	ts.attacks = append(ts.attacks, trace.Attack{})
	copy(ts.attacks[pos+1:], ts.attacks[pos:])
	ts.attacks[pos] = *a
	ts.addSums(a)
	if len(ts.attacks) > s.window {
		for i := 0; i < len(ts.attacks)-s.window; i++ {
			ts.subSums(&ts.attacks[i])
		}
		ts.attacks = append(ts.attacks[:0], ts.attacks[len(ts.attacks)-s.window:]...)
	}
	ts.total++
	ts.sinceRefit++
	if s.maxTargets > 0 {
		ts.touch = s.seq.Add(1)
	}
	return ts.sinceRefit, len(ts.attacks), prev, det, true
}

// evictLocked removes the least-recently-ingested target in sh other than
// keep, fires the eviction hook, and decrements the global count. Eviction
// is shard-local: the victim is the stalest target sharing the newcomer's
// shard, not a global minimum — O(shard population) under a lock already
// held, and within a constant factor of global LRU for hashed placement.
func (s *Store) evictLocked(sh *storeShard, keep astopo.AS) {
	var victim astopo.AS
	var victimTouch uint64
	found := false
	for as, ts := range sh.targets {
		if as == keep {
			continue
		}
		if !found || ts.touch < victimTouch {
			victim, victimTouch, found = as, ts.touch, true
		}
	}
	if !found {
		return // the newcomer is alone on this shard; the overshoot stands
	}
	delete(sh.targets, victim)
	s.count.Add(-1)
	if s.onEvict != nil {
		s.onEvict(victim)
	}
}

// Window returns a copy of the target's rolling window and its all-time
// ingest count. A nil slice means the target is unknown.
func (s *Store) Window(as astopo.AS) ([]trace.Attack, uint64) {
	sh := s.shardFor(as)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ts := sh.targets[as]
	if ts == nil {
		return nil, 0
	}
	out := make([]trace.Attack, len(ts.attacks))
	copy(out, ts.attacks)
	return out, ts.total
}

// MarkRefitted resets the target's since-refit counter by the number of
// records the refit consumed (records ingested while the refit ran keep
// counting toward the next one).
func (s *Store) MarkRefitted(as astopo.AS, consumed int) {
	sh := s.shardFor(as)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if ts := sh.targets[as]; ts != nil {
		ts.sinceRefit -= consumed
		if ts.sinceRefit < 0 {
			ts.sinceRefit = 0
		}
	}
}

// TargetCheckpoint is one target's durable ingest state: the rolling
// window plus the counters a restart must carry forward. It is the unit
// of the WAL checkpoint file and of lossless store comparison in the
// crash-recovery tests.
type TargetCheckpoint struct {
	AS         astopo.AS      `json:"as"`
	Total      uint64         `json:"total"`
	SinceRefit int            `json:"since_refit"`
	Attacks    []trace.Attack `json:"attacks"`
}

// Checkpoint dumps every target's state, sorted by AS so two stores
// holding the same records serialize byte-identically. Each shard is
// locked only while it is copied.
func (s *Store) Checkpoint() []TargetCheckpoint {
	var out []TargetCheckpoint
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for as, ts := range sh.targets {
			attacks := make([]trace.Attack, len(ts.attacks))
			copy(attacks, ts.attacks)
			out = append(out, TargetCheckpoint{
				AS:         as,
				Total:      ts.total,
				SinceRefit: ts.sinceRefit,
				Attacks:    attacks,
			})
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].AS < out[j].AS })
	return out
}

// Restore loads checkpointed targets wholesale (boot-time recovery,
// before WAL replay applies the tail). Windows longer than the store's
// capacity — a checkpoint taken under a larger -window — keep their most
// recent records; running sums are rebuilt.
func (s *Store) Restore(targets []TargetCheckpoint) {
	for i := range targets {
		tc := &targets[i]
		sh := s.shardFor(tc.AS)
		sh.mu.Lock()
		ts := &targetState{total: tc.Total, sinceRefit: tc.SinceRefit}
		attacks := tc.Attacks
		if len(attacks) > s.window {
			attacks = attacks[len(attacks)-s.window:]
		}
		ts.attacks = make([]trace.Attack, len(attacks))
		copy(ts.attacks, attacks)
		for j := range ts.attacks {
			ts.addSums(&ts.attacks[j])
		}
		if sh.targets[tc.AS] == nil {
			s.count.Add(1)
		}
		if s.maxTargets > 0 {
			ts.touch = s.seq.Add(1)
		}
		sh.targets[tc.AS] = ts
		sh.mu.Unlock()
	}
}

// Targets returns every known target AS in ascending order.
func (s *Store) Targets() []astopo.AS {
	var out []astopo.AS
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for as := range sh.targets {
			out = append(out, as)
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of known targets.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.targets)
		sh.mu.Unlock()
	}
	return n
}

// Shards returns the shard count (for /healthz introspection).
func (s *Store) Shards() int { return len(s.shards) }
