package metrics

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "help")
	g := r.Gauge("test_gauge", "help")
	c.Inc()
	c.Add(4)
	g.Set(7)
	g.Add(-2)
	if c.Value() != 5 {
		t.Fatalf("counter %d, want 5", c.Value())
	}
	if g.Value() != 5 {
		t.Fatalf("gauge %d, want 5", g.Value())
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "help", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count %d, want 5", h.Count())
	}
	if sum := h.Sum(); sum < 56 || sum > 56.2 {
		t.Fatalf("sum %v, want ~56.05", sum)
	}
	// Median falls in the (0.1, 1] bucket; the estimate reports its upper bound.
	if q := h.Quantile(0.5); q != 1 {
		t.Fatalf("p50 %v, want bucket bound 1", q)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewRegistry().Histogram("test_seconds", "help", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count %d, want 8000", h.Count())
	}
	if sum := h.Sum(); sum < 7.99 || sum > 8.01 {
		t.Fatalf("sum %v, want 8.0", sum)
	}
}

func TestExpositionEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "Line one\nline two with a \\ backslash.").Inc()

	var b strings.Builder
	r.WriteText(&b)
	text := b.String()
	want := `# HELP esc_total Line one\nline two with a \\ backslash.` + "\n"
	if !strings.Contains(text, want) {
		t.Errorf("HELP escaping wrong, want %q in:\n%s", want, text)
	}
	// The exposition must still be one-directive-per-line: no line may be a
	// bare continuation of a broken HELP comment.
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if !strings.HasPrefix(line, "#") && !strings.HasPrefix(line, "esc_total") {
			t.Errorf("stray exposition line %q", line)
		}
	}
	if got := escapeLabel("a\"b\\c\nd"); got != `a\"b\\c\nd` {
		t.Errorf("escapeLabel = %q", got)
	}
}

func TestExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "A counter.").Add(3)
	r.Gauge("b_current", "A gauge.").Set(-2)
	r.Histogram("c_seconds", "A histogram.", []float64{1}).Observe(0.5)

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	var b strings.Builder
	r.WriteText(&b)
	text := b.String()
	for _, want := range []string{
		"# TYPE a_total counter",
		"a_total 3",
		"# TYPE b_current gauge",
		"b_current -2",
		"# TYPE c_seconds histogram",
		`c_seconds_bucket{le="1"} 1`,
		`c_seconds_bucket{le="+Inf"} 1`,
		"c_seconds_sum 0.5",
		"c_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}
