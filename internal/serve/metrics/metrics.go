// Package metrics is a minimal, dependency-free instrumentation kit for
// the online forecasting daemon: monotonic counters, gauges, float
// gauges, and fixed-bucket latency histograms, all updated with atomics
// (safe on every request path without locks) and exposed in the
// Prometheus text format. Single-label vec variants (HistogramVec,
// FGaugeVec) cover the per-stage and per-model series; beyond that it is
// deliberately tiny — no multi-label sets, no registries of registries —
// just enough for ddosd's /metrics endpoint.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous int64 value.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket cumulative histogram. Observations and the
// running sum use atomics only, so Observe is safe on hot paths. The
// exposition derives _count from the cumulative bucket total, so a scrape
// racing concurrent Observe calls always sees _count equal to its own
// +Inf bucket — the histogram is internally consistent by construction
// instead of by luck of atomic interleaving.
type Histogram struct {
	name, help string
	bounds     []float64       // upper bounds, ascending
	buckets    []atomic.Uint64 // len(bounds)+1; last is +Inf
	sumBits    atomic.Uint64   // float64 bits, CAS-accumulated
}

// DefBuckets are latency buckets in seconds, spanning sub-millisecond
// forecast reads through multi-second refits.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Observe records one value. The sum is accumulated before the bucket so
// a scrape that counts an observation has at least as much sum as the
// pre-observation state (the sum may briefly lead the count, never a
// counted observation with no sum contribution).
func (h *Histogram) Observe(v float64) {
	for {
		old := h.sumBits.Load()
		neu := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, neu) {
			break
		}
	}
	h.buckets[sort.SearchFloat64s(h.bounds, v)].Add(1)
}

// Count returns the number of observations (the sum over all buckets).
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile returns an upper-bound estimate of quantile q in [0,1] from the
// bucket counts (the smallest bucket bound covering the q-th observation;
// +Inf falls back to the largest finite bound).
func (h *Histogram) Quantile(q float64) float64 {
	// Snapshot the buckets once so the rank and the walk agree even under
	// concurrent observation.
	counts := make([]uint64, len(h.buckets))
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.bounds[len(h.bounds)-1]
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// Registry holds the daemon's metrics in registration order.
type Registry struct {
	mu     sync.Mutex
	order  []func(w io.Writer)
	before []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter registers and returns a counter. Names follow Prometheus
// conventions (snake_case with a unit suffix).
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.add(func(w io.Writer) {
		header(w, c.name, c.help, "counter")
		fmt.Fprintf(w, "%s %d\n", c.name, c.Value())
	})
	return c
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.add(func(w io.Writer) {
		header(w, g.name, g.help, "gauge")
		fmt.Fprintf(w, "%s %d\n", g.name, g.Value())
	})
	return g
}

// Histogram registers and returns a histogram over the given upper bounds
// (nil means DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(name, help, bounds)
	r.add(func(w io.Writer) {
		header(w, h.name, h.help, "histogram")
		h.write(w, h.name, "")
	})
	return h
}

func newHistogram(name, help string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{name: name, help: help, bounds: bs, buckets: make([]atomic.Uint64, len(bs)+1)}
}

// write renders the histogram's bucket/sum/count lines. labels is either
// empty or a comma-terminated label-pair prefix like `stage="fit",`. The
// _count line reuses the cumulative bucket total, so it always equals the
// +Inf bucket of the same scrape.
func (h *Histogram) write(w io.Writer, name, labels string) {
	var cum uint64
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket{%sle=\"%s\"} %d\n", name, labels, escapeLabel(trimFloat(b)), cum)
	}
	cum += h.buckets[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, labels, cum)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n", name, h.Sum())
		fmt.Fprintf(w, "%s_count %d\n", name, cum)
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, strings.TrimSuffix(labels, ","), h.Sum())
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, strings.TrimSuffix(labels, ","), cum)
	}
}

// HistogramVec is a family of histograms split by one label (the stage
// histograms ddosd_stage_seconds{stage="..."}). Children are created on
// first use and rendered in sorted label order under a single HELP/TYPE
// header.
type HistogramVec struct {
	name, help, label string
	bounds            []float64
	mu                sync.RWMutex
	children          map[string]*Histogram
}

// HistogramVec registers and returns a labeled histogram family with
// caller-supplied upper bounds (nil means DefBuckets).
func (r *Registry) HistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	v := &HistogramVec{name: name, help: help, label: label, bounds: bounds,
		children: make(map[string]*Histogram)}
	r.add(func(w io.Writer) {
		header(w, v.name, v.help, "histogram")
		v.mu.RLock()
		values := make([]string, 0, len(v.children))
		for value := range v.children {
			values = append(values, value)
		}
		sort.Strings(values)
		for _, value := range values {
			labels := fmt.Sprintf("%s=\"%s\",", v.label, escapeLabel(value))
			v.children[value].write(w, v.name, labels)
		}
		v.mu.RUnlock()
	})
	return v
}

// With returns the child histogram for one label value, creating it on
// first use. Callers on hot paths should cache the returned child.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.RLock()
	h := v.children[value]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h = v.children[value]; h == nil {
		h = newHistogram(v.name, v.help, v.bounds)
		v.children[value] = h
	}
	return h
}

// CounterVec is a family of counters split by one label
// (ddosd_detect_alerts_total{kind="..."}). Children are created on first
// use and rendered in sorted label order under a single HELP/TYPE header.
type CounterVec struct {
	name, help, label string
	mu                sync.RWMutex
	children          map[string]*Counter
}

// CounterVec registers and returns a labeled counter family.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	v := &CounterVec{name: name, help: help, label: label, children: make(map[string]*Counter)}
	r.add(func(w io.Writer) {
		header(w, v.name, v.help, "counter")
		v.mu.RLock()
		values := make([]string, 0, len(v.children))
		for value := range v.children {
			values = append(values, value)
		}
		sort.Strings(values)
		for _, value := range values {
			fmt.Fprintf(w, "%s{%s=\"%s\"} %d\n", v.name, v.label, escapeLabel(value), v.children[value].Value())
		}
		v.mu.RUnlock()
	})
	return v
}

// With returns the child counter for one label value, creating it on
// first use. Callers on hot paths should cache the returned child.
func (v *CounterVec) With(value string) *Counter {
	v.mu.RLock()
	c := v.children[value]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.children[value]; c == nil {
		c = &Counter{name: v.name, help: v.help}
		v.children[value] = c
	}
	return c
}

// GaugeVec is a family of int gauges split by one label
// (ddosd_cluster_peer_up{peer="..."}).
type GaugeVec struct {
	name, help, label string
	mu                sync.RWMutex
	children          map[string]*Gauge
}

// GaugeVec registers and returns a labeled gauge family.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	v := &GaugeVec{name: name, help: help, label: label, children: make(map[string]*Gauge)}
	r.add(func(w io.Writer) {
		header(w, v.name, v.help, "gauge")
		v.mu.RLock()
		values := make([]string, 0, len(v.children))
		for value := range v.children {
			values = append(values, value)
		}
		sort.Strings(values)
		for _, value := range values {
			fmt.Fprintf(w, "%s{%s=\"%s\"} %d\n", v.name, v.label, escapeLabel(value), v.children[value].Value())
		}
		v.mu.RUnlock()
	})
	return v
}

// With returns the child gauge for one label value, creating it on first
// use.
func (v *GaugeVec) With(value string) *Gauge {
	v.mu.RLock()
	g := v.children[value]
	v.mu.RUnlock()
	if g != nil {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g = v.children[value]; g == nil {
		g = &Gauge{name: v.name, help: v.help}
		v.children[value] = g
	}
	return g
}

// FGauge is an instantaneous float64 value (accuracy rates and mean
// relative errors are fractions, not integers).
type FGauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *FGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// FGauge registers and returns an unlabeled float gauge.
func (r *Registry) FGauge(name, help string) *FGauge {
	g := &FGauge{}
	r.add(func(w io.Writer) {
		header(w, name, help, "gauge")
		fmt.Fprintf(w, "%s %g\n", name, g.Value())
	})
	return g
}

// FGaugeVec is a family of float gauges split by one label
// (ddosd_accuracy_*{model="..."}).
type FGaugeVec struct {
	name, help, label string
	mu                sync.RWMutex
	children          map[string]*FGauge
}

// FGaugeVec registers and returns a labeled float-gauge family.
func (r *Registry) FGaugeVec(name, help, label string) *FGaugeVec {
	v := &FGaugeVec{name: name, help: help, label: label, children: make(map[string]*FGauge)}
	r.add(func(w io.Writer) {
		header(w, v.name, v.help, "gauge")
		v.mu.RLock()
		values := make([]string, 0, len(v.children))
		for value := range v.children {
			values = append(values, value)
		}
		sort.Strings(values)
		for _, value := range values {
			fmt.Fprintf(w, "%s{%s=\"%s\"} %g\n", v.name, v.label, escapeLabel(value), v.children[value].Value())
		}
		v.mu.RUnlock()
	})
	return v
}

// With returns the child gauge for one label value, creating it on first
// use.
func (v *FGaugeVec) With(value string) *FGauge {
	v.mu.RLock()
	g := v.children[value]
	v.mu.RUnlock()
	if g != nil {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g = v.children[value]; g == nil {
		g = &FGauge{}
		v.children[value] = g
	}
	return g
}

func (r *Registry) add(render func(w io.Writer)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.order = append(r.order, render)
}

// OnScrape registers a hook that runs at the start of every WriteText —
// the refresh point for gauges derived from state too expensive (or too
// pointless) to poll continuously: runtime MemStats, WAL disk stats. No
// background goroutine ever runs for these; a scrape pays for its own
// freshness.
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.before = append(r.before, fn)
}

// WriteText renders every metric in the Prometheus text exposition format,
// running the OnScrape hooks first.
func (r *Registry) WriteText(w io.Writer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, fn := range r.before {
		fn()
	}
	for _, render := range r.order {
		render(w)
	}
}

// Handler serves WriteText over HTTP.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}

func header(w io.Writer, name, help, kind string) {
	if help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(help))
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
}

// escapeHelp escapes HELP text per the Prometheus text exposition format:
// a raw newline would split the comment mid-line and corrupt the scrape,
// and an unescaped backslash would be mis-decoded by conforming parsers.
// Only backslash and newline are escaped on HELP lines.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value: backslash, double quote, and newline.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func trimFloat(v float64) string { return fmt.Sprintf("%g", v) }
