// Package metrics is a minimal, dependency-free instrumentation kit for
// the online forecasting daemon: monotonic counters, gauges, and
// fixed-bucket latency histograms, all updated with atomics (safe on every
// request path without locks) and exposed in the Prometheus text format.
// It is deliberately tiny — no labels, no registries of registries — just
// enough for ddosd's /metrics endpoint.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous int64 value.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket cumulative histogram. Observations and the
// running sum use atomics only, so Observe is safe on hot paths.
type Histogram struct {
	name, help string
	bounds     []float64       // upper bounds, ascending
	buckets    []atomic.Uint64 // len(bounds)+1; last is +Inf
	count      atomic.Uint64
	sumBits    atomic.Uint64 // float64 bits, CAS-accumulated
}

// DefBuckets are latency buckets in seconds, spanning sub-millisecond
// forecast reads through multi-second refits.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		neu := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, neu) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile returns an upper-bound estimate of quantile q in [0,1] from the
// bucket counts (the smallest bucket bound covering the q-th observation;
// +Inf falls back to the largest finite bound).
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.bounds[len(h.bounds)-1]
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// Registry holds the daemon's metrics in registration order.
type Registry struct {
	mu    sync.Mutex
	order []func(w io.Writer)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter registers and returns a counter. Names follow Prometheus
// conventions (snake_case with a unit suffix).
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.add(func(w io.Writer) {
		header(w, c.name, c.help, "counter")
		fmt.Fprintf(w, "%s %d\n", c.name, c.Value())
	})
	return c
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.add(func(w io.Writer) {
		header(w, g.name, g.help, "gauge")
		fmt.Fprintf(w, "%s %d\n", g.name, g.Value())
	})
	return g
}

// Histogram registers and returns a histogram over the given upper bounds
// (nil means DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	h := &Histogram{name: name, help: help, bounds: bs, buckets: make([]atomic.Uint64, len(bs)+1)}
	r.add(func(w io.Writer) {
		header(w, h.name, h.help, "histogram")
		var cum uint64
		for i, b := range h.bounds {
			cum += h.buckets[i].Load()
			fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", h.name, escapeLabel(trimFloat(b)), cum)
		}
		cum += h.buckets[len(h.bounds)].Load()
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, cum)
		fmt.Fprintf(w, "%s_sum %g\n", h.name, h.Sum())
		fmt.Fprintf(w, "%s_count %d\n", h.name, h.Count())
	})
	return h
}

func (r *Registry) add(render func(w io.Writer)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.order = append(r.order, render)
}

// WriteText renders every metric in the Prometheus text exposition format.
func (r *Registry) WriteText(w io.Writer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, render := range r.order {
		render(w)
	}
}

// Handler serves WriteText over HTTP.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}

func header(w io.Writer, name, help, kind string) {
	if help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(help))
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
}

// escapeHelp escapes HELP text per the Prometheus text exposition format:
// a raw newline would split the comment mid-line and corrupt the scrape,
// and an unescaped backslash would be mis-decoded by conforming parsers.
// Only backslash and newline are escaped on HELP lines.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value: backslash, double quote, and newline.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func trimFloat(v float64) string { return fmt.Sprintf("%g", v) }
