package metrics

import (
	"bufio"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestHistogramVecExposition(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("stage_seconds", "Per-stage latency.", "stage", []float64{0.01, 0.1})
	v.With("fit").Observe(0.05)
	v.With("fit").Observe(0.5)
	v.With("ingest").Observe(0.001)

	var b strings.Builder
	r.WriteText(&b)
	text := b.String()
	for _, want := range []string{
		"# TYPE stage_seconds histogram",
		`stage_seconds_bucket{stage="fit",le="0.01"} 0`,
		`stage_seconds_bucket{stage="fit",le="0.1"} 1`,
		`stage_seconds_bucket{stage="fit",le="+Inf"} 2`,
		`stage_seconds_sum{stage="fit"} 0.55`,
		`stage_seconds_count{stage="fit"} 2`,
		`stage_seconds_bucket{stage="ingest",le="0.01"} 1`,
		`stage_seconds_count{stage="ingest"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// One HELP/TYPE header for the whole family.
	if strings.Count(text, "# TYPE stage_seconds histogram") != 1 {
		t.Errorf("duplicated TYPE header:\n%s", text)
	}
	// Children render in sorted label order.
	if strings.Index(text, `stage="fit"`) > strings.Index(text, `stage="ingest"`) {
		t.Errorf("children not sorted:\n%s", text)
	}
}

func TestHistogramVecWithReturnsSameChild(t *testing.T) {
	v := NewRegistry().HistogramVec("x_seconds", "", "stage", nil)
	if v.With("a") != v.With("a") {
		t.Fatal("With returned distinct children for the same label")
	}
	if v.With("a") == v.With("b") {
		t.Fatal("distinct labels share a child")
	}
}

func TestFGaugeVecExposition(t *testing.T) {
	r := NewRegistry()
	v := r.FGaugeVec("accuracy_rate", "Hit rate.", "model")
	v.With("st").Set(0.75)
	v.With("always_same").Set(0.25)

	var b strings.Builder
	r.WriteText(&b)
	text := b.String()
	for _, want := range []string{
		"# TYPE accuracy_rate gauge",
		`accuracy_rate{model="always_same"} 0.25`,
		`accuracy_rate{model="st"} 0.75`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	if g := v.With("st"); g.Value() != 0.75 {
		t.Fatalf("Value = %v", g.Value())
	}
}

// TestHistogramExpositionConsistentUnderRace scrapes a histogram while
// eight goroutines observe into it and asserts every scrape is internally
// consistent: _count equals the +Inf bucket of the same scrape, and
// bucket lines are cumulative (non-decreasing). Run with -race in CI.
func TestHistogramExpositionConsistentUnderRace(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("race_seconds", "Raced histogram.", []float64{0.001, 0.01, 0.1})

	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			vals := []float64{0.0005, 0.005, 0.05, 0.5}
			for i := 0; i < perWorker; i++ {
				h.Observe(vals[(i+w)%len(vals)])
			}
		}(w)
	}
	go func() { wg.Wait(); close(stop) }()

	scrapes := 0
	for {
		select {
		case <-stop:
		default:
		}
		var b strings.Builder
		r.WriteText(&b)
		assertConsistentScrape(t, b.String())
		scrapes++
		select {
		case <-stop:
		default:
			continue
		}
		break
	}
	if scrapes < 2 {
		t.Fatalf("only %d scrapes raced the observers", scrapes)
	}

	// Quiesced: totals are exact.
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("final count %d, want %d", got, workers*perWorker)
	}
	wantSum := float64(workers*perWorker) / 4 * (0.0005 + 0.005 + 0.05 + 0.5)
	if got := h.Sum(); got < wantSum*0.999 || got > wantSum*1.001 {
		t.Fatalf("final sum %v, want ~%v", got, wantSum)
	}
	var b strings.Builder
	r.WriteText(&b)
	if !strings.Contains(b.String(), "race_seconds_count "+strconv.Itoa(workers*perWorker)) {
		t.Fatalf("final exposition count wrong:\n%s", b.String())
	}
}

// assertConsistentScrape parses one text exposition and checks the
// histogram invariants that concurrent observation must not break.
func assertConsistentScrape(t *testing.T, text string) {
	t.Helper()
	var lastCum, inf, count uint64
	var haveInf, haveCount bool
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "race_seconds_bucket"):
			v := parseUintField(t, line)
			if v < lastCum {
				t.Fatalf("bucket went backwards within one scrape: %q after %d", line, lastCum)
			}
			lastCum = v
			if strings.Contains(line, `le="+Inf"`) {
				inf, haveInf = v, true
			}
		case strings.HasPrefix(line, "race_seconds_count"):
			count, haveCount = parseUintField(t, line), true
		}
	}
	if !haveInf || !haveCount {
		t.Fatalf("scrape missing histogram lines:\n%s", text)
	}
	if count != inf {
		t.Fatalf("_count %d != +Inf bucket %d within one scrape:\n%s", count, inf, text)
	}
}

func parseUintField(t *testing.T, line string) uint64 {
	t.Helper()
	fields := strings.Fields(line)
	v, err := strconv.ParseUint(fields[len(fields)-1], 10, 64)
	if err != nil {
		t.Fatalf("bad exposition line %q: %v", line, err)
	}
	return v
}
