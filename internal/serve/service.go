// Package serve is the online forecasting subsystem behind cmd/ddosd: a
// sharded per-target state store holding each target network's rolling
// attack window, a model registry serving forecasts lock-free from an
// atomically swapped snapshot, and a background refit scheduler that
// refits stale targets after every K ingested records with bounded-queue
// admission and load shedding. It turns the repository's batch models
// (ARIMA temporal, NAR spatial, CART spatiotemporal) into an operational
// early-warning service: ingest attack records as they are verified, read
// next-attack forecasts per target at any time. See DESIGN.md §7.
package serve

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/astopo"
	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/serve/metrics"
	"repro/internal/trace"
)

// Config tunes the service. The zero value gets production-ish defaults;
// tests shrink the windows and model grids.
type Config struct {
	// Shards is the state-store shard count (rounded up to a power of two).
	// Default 64.
	Shards int
	// Window caps each target's rolling attack window. Default 256.
	Window int
	// MinWindow is the fewest records a target needs before its first fit.
	// Default 8.
	MinWindow int
	// MinSTWindow is the fewest records before the spatiotemporal tree is
	// attempted (the walk-forward sample construction needs headroom).
	// Default 32.
	MinSTWindow int
	// RefitEvery re-queues a target after this many new records. Default 8.
	RefitEvery int
	// QueueDepth bounds the refit queue. Default 256.
	QueueDepth int
	// LagWatermark is the refit backlog (queued + in-flight) beyond which
	// ingest is shed with 429. Default QueueDepth/2.
	LagWatermark int
	// BatchSize caps how many targets one snapshot swap refits. Default 16.
	BatchSize int
	// RefitWorkers bounds the per-batch fit fan-out (0 = parallel.Workers()).
	RefitWorkers int
	// MaxBatchRecords caps records accepted per ingest request. Default 10000.
	MaxBatchRecords int
	// Seed makes refits deterministic per target window.
	Seed uint64
	// WrapFit optionally wraps the per-target refit function — the seam the
	// chaos harness uses to inject slow or failing refits (internal/chaos),
	// also usable for instrumentation. nil means fit directly.
	WrapFit func(FitFunc) FitFunc

	// Model configuration shared with the batch layer.
	Temporal core.TemporalConfig
	Spatial  core.SpatialConfig
	ST       core.STConfig
}

func (c Config) withDefaults() Config {
	if c.Shards < 1 {
		c.Shards = 64
	}
	if c.Window < 1 {
		c.Window = 256
	}
	if c.MinWindow < 3 {
		c.MinWindow = 8
	}
	if c.MinSTWindow < 1 {
		c.MinSTWindow = 32
	}
	if c.RefitEvery < 1 {
		c.RefitEvery = 8
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 256
	}
	if c.LagWatermark < 1 {
		c.LagWatermark = c.QueueDepth / 2
	}
	if c.BatchSize < 1 {
		c.BatchSize = 16
	}
	if c.RefitWorkers < 1 {
		c.RefitWorkers = parallel.Workers()
	}
	if c.MaxBatchRecords < 1 {
		c.MaxBatchRecords = 10000
	}
	return c
}

// FitFunc is the per-target refit function the scheduler invokes: window
// and all-time total come from the state store, gen from the registry's
// generation counter. Exposed so Config.WrapFit can interpose on it.
type FitFunc func(as astopo.AS, window []trace.Attack, total uint64, gen uint64, cfg Config) (*TargetModels, error)

// telemetry bundles the instruments every layer updates.
type telemetry struct {
	reg *metrics.Registry

	ingestRecords  *metrics.Counter
	ingestDups     *metrics.Counter
	ingestShed     *metrics.Counter
	ingestSeconds  *metrics.Histogram
	forecasts      *metrics.Counter
	forecastMisses *metrics.Counter
	forecastSecs   *metrics.Histogram
	refitsDone     *metrics.Counter
	refitErrors    *metrics.Counter
	refitsDropped  *metrics.Counter
	refitSeconds   *metrics.Histogram
	refitLag       *metrics.Gauge
	targetsKnown   *metrics.Gauge
	targetsServed  *metrics.Gauge
}

func newTelemetry() *telemetry {
	r := metrics.NewRegistry()
	return &telemetry{
		reg:            r,
		ingestRecords:  r.Counter("ddosd_ingest_records_total", "Records accepted into the state store."),
		ingestDups:     r.Counter("ddosd_ingest_duplicates_total", "Records dropped as duplicates of a windowed attack ID."),
		ingestShed:     r.Counter("ddosd_ingest_shed_total", "Ingest requests rejected with 429 under refit backlog."),
		ingestSeconds:  r.Histogram("ddosd_ingest_seconds", "Ingest request latency.", nil),
		forecasts:      r.Counter("ddosd_forecasts_total", "Forecasts served."),
		forecastMisses: r.Counter("ddosd_forecast_misses_total", "Forecast requests for unknown or warming-up targets."),
		forecastSecs:   r.Histogram("ddosd_forecast_seconds", "Forecast request latency.", nil),
		refitsDone:     r.Counter("ddosd_refits_total", "Completed target refits."),
		refitErrors:    r.Counter("ddosd_refit_errors_total", "Refits skipped (window not ready or fit failed)."),
		refitsDropped:  r.Counter("ddosd_refits_dropped_total", "Refit marks dropped on a full queue."),
		refitSeconds:   r.Histogram("ddosd_refit_seconds", "Per-target refit latency.", nil),
		refitLag:       r.Gauge("ddosd_refit_lag", "Refit backlog: queued plus in-flight targets."),
		targetsKnown:   r.Gauge("ddosd_targets_known", "Targets present in the state store."),
		targetsServed:  r.Gauge("ddosd_targets_served", "Targets with published models."),
	}
}

// Service wires the store, registry, and scheduler together.
type Service struct {
	cfg   Config
	store *Store
	reg   *Registry
	sched *scheduler
	tel   *telemetry
	start time.Time
}

// New builds and starts a service (the refit scheduler goroutine runs
// until Close).
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	tel := newTelemetry()
	store := NewStore(cfg.Shards, cfg.Window)
	reg := NewRegistry()
	return &Service{
		cfg:   cfg,
		store: store,
		reg:   reg,
		sched: newScheduler(store, reg, cfg, tel),
		tel:   tel,
		start: time.Now(),
	}
}

// Close stops the refit scheduler (in-flight batch completes first).
func (s *Service) Close() { s.sched.Stop() }

// Registry exposes the model registry (snapshot persistence, direct
// forecasts).
func (s *Service) Registry() *Registry { return s.reg }

// Store exposes the state store (introspection).
func (s *Service) Store() *Store { return s.store }

// Flush waits for the refit backlog to drain (tests, shutdown snapshots).
func (s *Service) Flush() { s.sched.Flush() }

// ErrShedding is returned by Ingest while the refit backlog exceeds the
// watermark; the HTTP layer maps it to 429.
var ErrShedding = errors.New("serve: refit backlog over watermark, shedding ingest")

// ValidateRecord rejects records the models cannot use.
func ValidateRecord(a *trace.Attack) error {
	switch {
	case a.ID == 0:
		return errors.New("serve: record missing id")
	case a.Family == "":
		return errors.New("serve: record missing family")
	case a.Start.IsZero():
		return errors.New("serve: record missing start")
	case a.DurationSec < 0:
		return errors.New("serve: negative duration")
	case a.TargetAS == 0:
		return errors.New("serve: record missing target_as")
	}
	return nil
}

// Ingest admits one record: dedup + window update in the store, then a
// refit mark once the target has accumulated RefitEvery new records (or
// has enough history for its first fit). Returns whether the record was
// new. Under backlog it returns ErrShedding without touching the store.
func (s *Service) Ingest(a *trace.Attack) (bool, error) {
	if s.sched.Overloaded() {
		s.tel.ingestShed.Inc()
		return false, ErrShedding
	}
	if err := ValidateRecord(a); err != nil {
		return false, err
	}
	since, windowLen, accepted := s.store.Ingest(a)
	if !accepted {
		s.tel.ingestDups.Inc()
		return false, nil
	}
	s.tel.ingestRecords.Inc()
	if windowLen >= s.cfg.MinWindow {
		_, published := s.reg.Lookup(a.TargetAS)
		if since >= s.cfg.RefitEvery || !published {
			s.sched.TryEnqueue(a.TargetAS)
		}
	}
	return true, nil
}

// Forecast serves the target's published forecast.
func (s *Service) Forecast(as astopo.AS) (*Forecast, error) {
	return s.reg.Forecast(as)
}

// WarmStart bulk-ingests a dataset (boot-time backfill) and waits for the
// resulting refits to publish.
func (s *Service) WarmStart(ds *trace.Dataset) (int, error) {
	n := 0
	for i := range ds.Attacks {
		ok, err := s.Ingest(&ds.Attacks[i])
		if errors.Is(err, ErrShedding) {
			s.sched.Flush()
			ok, err = s.Ingest(&ds.Attacks[i])
		}
		if err != nil {
			return n, fmt.Errorf("serve: warm start record %d: %w", i, err)
		}
		if ok {
			n++
		}
	}
	s.sched.Flush()
	return n, nil
}
