// Package serve is the online forecasting subsystem behind cmd/ddosd: a
// sharded per-target state store holding each target network's rolling
// attack window, a model registry serving forecasts lock-free from an
// atomically swapped snapshot, and a background refit scheduler that
// refits stale targets after every K ingested records with bounded-queue
// admission and load shedding. It turns the repository's batch models
// (ARIMA temporal, NAR spatial, CART spatiotemporal) into an operational
// early-warning service: ingest attack records as they are verified, read
// next-attack forecasts per target at any time. See DESIGN.md §7.
package serve

import (
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/astopo"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/serve/metrics"
	"repro/internal/trace"
	"repro/internal/wal"
)

// Config tunes the service. The zero value gets production-ish defaults;
// tests shrink the windows and model grids.
type Config struct {
	// Shards is the state-store shard count (rounded up to a power of two).
	// Default 64.
	Shards int
	// Window caps each target's rolling attack window. Default 256.
	Window int
	// MinWindow is the fewest records a target needs before its first fit.
	// Default 8.
	MinWindow int
	// MinSTWindow is the fewest records before the spatiotemporal tree is
	// attempted (the walk-forward sample construction needs headroom).
	// Default 32.
	MinSTWindow int
	// RefitEvery re-queues a target after this many new records. Default 8.
	RefitEvery int
	// QueueDepth bounds the refit queue. Default 256.
	QueueDepth int
	// LagWatermark is the refit backlog (queued + in-flight) beyond which
	// ingest is shed with 429. Default QueueDepth/2.
	LagWatermark int
	// BatchSize caps how many targets one snapshot swap refits. Default 16.
	BatchSize int
	// RefitWorkers bounds the per-batch fit fan-out (0 = parallel.Workers()).
	RefitWorkers int
	// MaxBatchRecords caps records accepted per ingest request. Default 10000.
	MaxBatchRecords int
	// MaxBatchBytes caps one /ingest request body in bytes
	// (http.MaxBytesReader; over-limit requests answer 413). Default 8 MiB.
	MaxBatchBytes int64
	// Seed makes refits deterministic per target window.
	Seed uint64
	// WrapFit optionally wraps the per-target refit function — the seam the
	// chaos harness uses to inject slow or failing refits (internal/chaos),
	// also usable for instrumentation. nil means fit directly.
	WrapFit func(FitFunc) FitFunc

	// TraceCapacity is the /debug/traces ring size. Default 64.
	TraceCapacity int
	// TraceSlow retains only pipeline traces at least this long in the
	// ring (stage histograms always observe). Default 0: retain all.
	TraceSlow time.Duration
	// AccuracyWindow is the sliding-window length of the online
	// forecast-accuracy tracker. Default 512.
	AccuracyWindow int
	// StageBuckets overrides the ddosd_stage_seconds histogram bounds
	// (nil = metrics.DefBuckets).
	StageBuckets []float64
	// IncrementalRefit enables the O(new records) refit path: fold-in
	// updates of the previous generation's models when the window tail is
	// small and drift diagnostics stay quiet, with automatic fallback to a
	// full refit otherwise. Default false (cmd/ddosd enables it).
	IncrementalRefit bool
	// FullRefitEvery forces a full re-estimation after this many
	// consecutive incremental refits of a target (bounds drift and
	// re-fits the spatiotemporal tree + ensemble). Default 8.
	FullRefitEvery int
	// DriftRatio is the residual-degradation ratio beyond which an
	// incremental refit aborts in favor of a full one. Default 4.
	DriftRatio float64
	// RefitVerdictFilter excludes detector-alerted records (non-zero
	// stored verdict) from fit windows when enough clean records remain.
	// Default false.
	RefitVerdictFilter bool
	// MaxTargets caps state-store targets; over the cap, ingesting a new
	// target evicts the least-recently-ingested one from its shard (store,
	// registry, and promotion trackers all drop it). Default 0: unbounded.
	MaxTargets int
	// PromoWindow is the per-target accuracy window length used by
	// champion/challenger promotion. Default 64.
	PromoWindow int
	// PromoMinSamples is the fewest scored arrivals a challenger needs for
	// a measure before it may be promoted. Default 16.
	PromoMinSamples int
	// PromoMargin is the relative improvement a challenger must show over
	// the incumbent (hit rates: absolute). Default 0.05.
	PromoMargin float64
	// Detect, when non-nil, enables the streaming detection tier
	// (DESIGN.md §13): every accepted record is evaluated under its shard
	// lock before the append, its verdict recorded on the stored record,
	// and raise/clear transitions exposed over /alerts and ddosd_detect_*.
	// Default nil: detection off (the store and WAL byte-images are then
	// identical to a pre-detect build).
	Detect *detect.Config

	// Model configuration shared with the batch layer.
	Temporal core.TemporalConfig
	Spatial  core.SpatialConfig
	ST       core.STConfig
}

func (c Config) withDefaults() Config {
	if c.Shards < 1 {
		c.Shards = 64
	}
	if c.Window < 1 {
		c.Window = 256
	}
	if c.MinWindow < 3 {
		c.MinWindow = 8
	}
	if c.MinSTWindow < 1 {
		c.MinSTWindow = 32
	}
	if c.RefitEvery < 1 {
		c.RefitEvery = 8
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 256
	}
	if c.LagWatermark < 1 {
		c.LagWatermark = c.QueueDepth / 2
	}
	if c.BatchSize < 1 {
		c.BatchSize = 16
	}
	if c.RefitWorkers < 1 {
		c.RefitWorkers = parallel.Workers()
	}
	if c.MaxBatchRecords < 1 {
		c.MaxBatchRecords = 10000
	}
	if c.MaxBatchBytes < 1 {
		c.MaxBatchBytes = 8 << 20
	}
	if c.TraceCapacity < 1 {
		c.TraceCapacity = 64
	}
	if c.AccuracyWindow < 1 {
		c.AccuracyWindow = 512
	}
	if c.FullRefitEvery < 1 {
		c.FullRefitEvery = 8
	}
	if c.DriftRatio <= 0 {
		c.DriftRatio = 4
	}
	if c.PromoWindow < 1 {
		c.PromoWindow = 64
	}
	if c.PromoMinSamples < 1 {
		c.PromoMinSamples = 16
	}
	if c.PromoMargin <= 0 {
		c.PromoMargin = 0.05
	}
	return c
}

// FitFunc is the per-target refit function the scheduler invokes: window
// and all-time total come from the state store, gen from the registry's
// generation counter. Exposed so Config.WrapFit can interpose on it.
type FitFunc func(as astopo.AS, window []trace.Attack, total uint64, gen uint64, cfg Config) (*TargetModels, error)

// Pipeline stage names: span names in /debug/traces and the label values
// of the ddosd_stage_seconds histograms.
const (
	StageIngest    = "ingest"    // one /ingest request, decode to response
	StageAppend    = "append"    // shard-window append in the state store
	StageDetect    = "detect"    // streaming detector evaluation under the shard lock
	StageWAL       = "wal"       // write-ahead-log append before the ack
	StageSchedule  = "schedule"  // refit-mark enqueue
	StageScore     = "score"     // online accuracy scoring of the arrival
	StageRefit     = "refit"     // one scheduler batch, fits through publish
	StageFit       = "fit"       // one target's model refit
	StagePublish   = "publish"   // registry snapshot swap
	StageForecast  = "forecast"  // one /forecast request
	StageProxy     = "proxy"     // cluster router forwarding to the owner node
	StageReplicate = "replicate" // one replication pass: follower poll plus owner WAL ship
)

// Accuracy model-kind labels (ddosd_accuracy_*{model="..."}).
const (
	ModelTemporal   = "temporal"
	ModelSpatial    = "spatial"
	ModelST         = "st"       // the CART tree when engaged, component composition otherwise
	ModelEnsemble   = "ensemble" // the stacked simplex combiner over the components
	ModelAlwaysSame = "always_same"
	ModelAlwaysMean = "always_mean"
)

func accuracyModels() []string {
	return []string{ModelTemporal, ModelSpatial, ModelST, ModelEnsemble, ModelAlwaysSame, ModelAlwaysMean}
}

// telemetry bundles the instruments every layer updates.
type telemetry struct {
	reg *metrics.Registry

	ingestRecords  *metrics.Counter
	ingestDups     *metrics.Counter
	ingestShed     *metrics.Counter
	ingestSeconds  *metrics.Histogram
	forecasts      *metrics.Counter
	forecastMisses *metrics.Counter
	forecastSecs   *metrics.Histogram
	refitsDone     *metrics.Counter
	refitErrors    *metrics.Counter
	refitsDropped  *metrics.Counter
	refitSeconds   *metrics.Histogram
	refitLag       *metrics.Gauge
	targetsKnown   *metrics.Gauge
	targetsServed  *metrics.Gauge
	targetsEvicted *metrics.Counter
	traceDropped   *metrics.Counter

	// Online model-layer instruments (DESIGN.md §15): incremental-refit
	// volume and champion promotions by the kind promoted to.
	refitIncremental *metrics.Counter
	promotions       *metrics.CounterVec

	// stageSecs splits pipeline latency by stage; stages caches the
	// children so the ingest hot path skips the vec lookup.
	stageSecs *metrics.HistogramVec
	stages    map[string]*metrics.Histogram

	// Write-ahead-log instruments (ddosd_wal_*). Registered always so the
	// series exist from boot; they stay zero when no WAL is attached.
	walAppendSecs   *metrics.Histogram
	walAppends      *metrics.Counter
	walAppendErrors *metrics.Counter
	walBytes        *metrics.Counter
	walSegments     *metrics.Gauge
	walActiveBytes  *metrics.Gauge
	walDiskBytes    *metrics.Gauge
	walReplayed     *metrics.Counter
	walReplayDups   *metrics.Counter
	walTruncations  *metrics.Counter
	walCheckpoints  *metrics.Counter
	walCompacted    *metrics.Counter

	// Streaming-detector instruments (ddosd_detect_*). Registered always
	// so the series exist from boot; they stay zero with detection off.
	detRecords    *metrics.Counter
	detStale      *metrics.Counter
	detAlerts     *metrics.CounterVec
	detClears     *metrics.CounterVec
	detActive     *metrics.Gauge
	detAlertsRate *metrics.Counter // cached {kind="rate"} children: the
	detAlertsEnt  *metrics.Counter // OnAlert hook runs under a shard lock
	detClearsRate *metrics.Counter
	detClearsEnt  *metrics.Counter

	// Online accuracy gauges, one child per model kind.
	accMagErr  *metrics.FGaugeVec
	accDurErr  *metrics.FGaugeVec
	accHitRate *metrics.FGaugeVec
	accSamples *metrics.FGaugeVec
}

func newTelemetry(stageBuckets []float64) *telemetry {
	r := metrics.NewRegistry()
	t := &telemetry{
		reg:            r,
		ingestRecords:  r.Counter("ddosd_ingest_records_total", "Records accepted into the state store."),
		ingestDups:     r.Counter("ddosd_ingest_duplicates_total", "Records dropped as duplicates of a windowed attack ID."),
		ingestShed:     r.Counter("ddosd_ingest_shed_total", "Ingest requests rejected with 429 under refit backlog."),
		ingestSeconds:  r.Histogram("ddosd_ingest_seconds", "Ingest request latency.", nil),
		forecasts:      r.Counter("ddosd_forecasts_total", "Forecasts served."),
		forecastMisses: r.Counter("ddosd_forecast_misses_total", "Forecast requests for unknown or warming-up targets."),
		forecastSecs:   r.Histogram("ddosd_forecast_seconds", "Forecast request latency.", nil),
		refitsDone:     r.Counter("ddosd_refits_total", "Completed target refits."),
		refitErrors:    r.Counter("ddosd_refit_errors_total", "Refits skipped (window not ready or fit failed)."),
		refitsDropped:  r.Counter("ddosd_refits_dropped_total", "Refit marks dropped on a full queue."),
		refitSeconds:   r.Histogram("ddosd_refit_seconds", "Per-target refit latency.", nil),
		refitLag:       r.Gauge("ddosd_refit_lag", "Refit backlog: queued plus in-flight targets."),
		targetsKnown:   r.Gauge("ddosd_targets_known", "Targets present in the state store."),
		targetsServed:  r.Gauge("ddosd_targets_served", "Targets with published models."),
		targetsEvicted: r.Counter("ddosd_targets_evicted_total", "Targets evicted from the state store under -max-targets."),
		refitIncremental: r.Counter("ddosd_refit_incremental_total",
			"Refits that took the incremental fold-in path instead of a full re-estimation."),
		promotions: r.CounterVec("ddosd_model_promotions_total",
			"Champion/challenger promotions, by the model kind promoted to.", "kind"),
		traceDropped: r.Counter("ddosd_trace_dropped_total", "Root spans evicted from the trace ring before any /debug/traces read."),
		stageSecs: r.HistogramVec("ddosd_stage_seconds",
			"Pipeline latency by stage (ingest, append, detect, wal, schedule, score, refit, fit, publish, forecast, proxy, replicate).",
			"stage", stageBuckets),
		accMagErr: r.FGaugeVec("ddosd_accuracy_magnitude_relative_error",
			"Windowed mean relative error of the predicted attack magnitude, per model.", "model"),
		accDurErr: r.FGaugeVec("ddosd_accuracy_duration_relative_error",
			"Windowed mean relative error of the predicted attack duration, per model.", "model"),
		accHitRate: r.FGaugeVec("ddosd_accuracy_timestamp_hit_rate",
			"Windowed rate of predicted (day, hour) landing within tolerance, per model.", "model"),
		accSamples: r.FGaugeVec("ddosd_accuracy_samples",
			"All-time scored arrivals, per model.", "model"),
		walAppendSecs:   r.Histogram("ddosd_wal_append_seconds", "WAL append latency (framing plus the sync policy's cost).", nil),
		walAppends:      r.Counter("ddosd_wal_appends_total", "Records appended to the write-ahead log."),
		walAppendErrors: r.Counter("ddosd_wal_append_errors_total", "WAL appends that failed (the ingest was not acked durable)."),
		walBytes:        r.Counter("ddosd_wal_appended_bytes_total", "Frame bytes appended to the write-ahead log."),
		walSegments:     r.Gauge("ddosd_wal_segments", "WAL segment files on disk (sealed plus active)."),
		walActiveBytes:  r.Gauge("ddosd_wal_active_segment_bytes", "Bytes in the active WAL segment."),
		walDiskBytes:    r.Gauge("ddosd_wal_disk_bytes", "Total WAL bytes on disk (sealed segments plus active), refreshed at scrape."),
		walReplayed:     r.Counter("ddosd_wal_replayed_records_total", "Records replayed into the store from the WAL at boot."),
		walReplayDups:   r.Counter("ddosd_wal_replay_duplicates_total", "Replayed records dropped as duplicates (checkpoint overlap)."),
		walTruncations:  r.Counter("ddosd_wal_replay_truncated_total", "Boot replays that stopped at a torn or corrupt frame."),
		walCheckpoints:  r.Counter("ddosd_wal_checkpoints_total", "Durable store checkpoints written."),
		walCompacted:    r.Counter("ddosd_wal_compacted_segments_total", "WAL segments removed by checkpoint compaction."),
		detRecords:      r.Counter("ddosd_detect_records_total", "Records evaluated by the streaming detection tier."),
		detStale:        r.Counter("ddosd_detect_stale_records_total", "Detector records older than the ring coverage behind the target watermark (outside every window)."),
		detAlerts:       r.CounterVec("ddosd_detect_alerts_total", "Detector alerts raised, per kind.", "kind"),
		detClears:       r.CounterVec("ddosd_detect_clears_total", "Detector alerts cleared (hysteresis), per kind.", "kind"),
		detActive:       r.Gauge("ddosd_detect_active_alerts", "Detector alerts currently active across all targets."),
	}
	t.detAlertsRate = t.detAlerts.With(string(detect.KindRate))
	t.detAlertsEnt = t.detAlerts.With(string(detect.KindEntropy))
	t.detClearsRate = t.detClears.With(string(detect.KindRate))
	t.detClearsEnt = t.detClears.With(string(detect.KindEntropy))
	// Pre-create every stage child: the series exist from boot (dashboards
	// need not wait for traffic) and the hot path reads a plain map.
	t.stages = make(map[string]*metrics.Histogram)
	for _, stage := range []string{
		StageIngest, StageAppend, StageDetect, StageWAL, StageSchedule, StageScore,
		StageRefit, StageFit, StagePublish, StageForecast, StageProxy, StageReplicate,
	} {
		t.stages[stage] = t.stageSecs.With(stage)
	}
	for _, model := range accuracyModels() {
		t.accMagErr.With(model)
		t.accDurErr.With(model)
		t.accHitRate.With(model)
		t.accSamples.With(model)
	}
	for _, kind := range promoKinds() {
		t.promotions.With(kind)
	}
	return t
}

// observeStage is the tracer's per-span hook: span names are stage names.
func (t *telemetry) observeStage(stage string, seconds float64) {
	if h := t.stages[stage]; h != nil {
		h.Observe(seconds)
	}
}

// onDetectAlert mirrors one detector raise/clear into the counters. It
// runs on the ingest path under a shard lock (transitions are rare), so
// it touches only pre-created children and atomics.
func (t *telemetry) onDetectAlert(a detect.Alert, active int64) {
	switch {
	case a.Cleared && a.Kind == detect.KindRate:
		t.detClearsRate.Inc()
	case a.Cleared:
		t.detClearsEnt.Inc()
	case a.Kind == detect.KindRate:
		t.detAlertsRate.Inc()
	default:
		t.detAlertsEnt.Inc()
	}
	t.detActive.Set(active)
}

// onScore mirrors a model's refreshed accuracy summary into the gauges.
func (t *telemetry) onScore(model string, s obs.Summary) {
	t.accMagErr.With(model).Set(s.Magnitude.MeanRelErr)
	t.accDurErr.With(model).Set(s.Duration.MeanRelErr)
	t.accHitRate.With(model).Set(s.Timestamp.Rate)
	t.accSamples.With(model).Set(float64(s.Samples))
}

// Service wires the store, registry, and scheduler together.
type Service struct {
	cfg    Config
	store  *Store
	reg    *Registry
	sched  *scheduler
	tel    *telemetry
	tracer *obs.Tracer
	acc    *obs.Accuracy
	promo  *promoTracker
	start  time.Time

	// Durability layer (durability.go). walRef is nil until AttachWAL;
	// walMu is the checkpoint barrier: ingest holds it shared across the
	// store-insert + WAL-append pair, CheckpointWAL holds it exclusively
	// across the segment rotation + store snapshot, so every record lands
	// on exactly one side of the checkpoint cut. ckptMu serializes
	// checkpoint writers (the background compactor vs shutdown).
	walRef    atomic.Pointer[wal.WAL]
	walMu     sync.RWMutex
	ckptMu    sync.Mutex
	walLogger *slog.Logger
	walStop   chan struct{}
	walDone   chan struct{}

	// clusterInfo feeds the /healthz cluster section (SetClusterInfo).
	clusterInfo clusterInfoHook

	// watchdog is the SLO-breach flight recorder (StartWatchdog); nil
	// until started.
	watchdog atomic.Pointer[obs.Watchdog]
}

// New builds and starts a service (the refit scheduler goroutine runs
// until Close).
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	tel := newTelemetry(cfg.StageBuckets)
	tracer := obs.NewTracer(obs.TracerConfig{
		Capacity: cfg.TraceCapacity,
		Slow:     cfg.TraceSlow,
		Observe:  tel.observeStage,
		OnDrop:   tel.traceDropped.Inc,
	})
	acc := obs.NewAccuracy(obs.AccuracyConfig{
		Window:  cfg.AccuracyWindow,
		OnScore: tel.onScore,
	})
	for _, model := range accuracyModels() {
		acc.Model(model)
	}
	store := NewStore(cfg.Shards, cfg.Window)
	if cfg.Detect != nil {
		dcfg := *cfg.Detect
		userHook := dcfg.OnAlert
		var det *detect.Detector
		dcfg.OnAlert = func(a detect.Alert) {
			tel.onDetectAlert(a, det.Active())
			if userHook != nil {
				userHook(a)
			}
		}
		// det is assigned before any Observe can fire the hook: the store
		// takes no traffic until New returns.
		det = detect.New(dcfg)
		store.AttachDetector(det)
	}
	reg := NewRegistry()
	promo := newPromoTracker(cfg.PromoWindow)
	if cfg.MaxTargets > 0 {
		store.SetMaxTargets(cfg.MaxTargets, func(as astopo.AS) {
			reg.Drop(as)
			promo.Drop(as)
			tel.targetsEvicted.Inc()
		})
	}
	svc := &Service{
		cfg:    cfg,
		store:  store,
		reg:    reg,
		sched:  newScheduler(store, reg, promo, cfg, tel, tracer),
		tel:    tel,
		tracer: tracer,
		acc:    acc,
		promo:  promo,
		start:  time.Now(),
	}
	// Runtime self-telemetry and WAL disk gauges refresh at scrape time —
	// registered here (not in newTelemetry) so the golden exposition test,
	// which drives newTelemetry directly, stays machine-independent. The
	// refit-lag gauge is also derived at scrape (the queue and in-flight
	// counters move concurrently; sampling once here is race-free and
	// always consistent with what the scheduler would report).
	obs.RegisterRuntime(tel.reg)
	tel.reg.OnScrape(svc.refreshWALGauges)
	tel.reg.OnScrape(func() { tel.refitLag.Set(svc.sched.lag.Load()) })
	return svc
}

// Close stops the background checkpointer (if a WAL is attached) and the
// refit scheduler (in-flight batch completes first). It does not close
// the WAL itself — the owner that passed it to AttachWAL does that.
func (s *Service) Close() {
	if w := s.watchdog.Load(); w != nil {
		w.Close()
	}
	s.DetachWAL()
	s.sched.Stop()
}

// Registry exposes the model registry (snapshot persistence, direct
// forecasts).
func (s *Service) Registry() *Registry { return s.reg }

// Store exposes the state store (introspection).
func (s *Service) Store() *Store { return s.store }

// Tracer exposes the pipeline tracer (/debug/traces).
func (s *Service) Tracer() *obs.Tracer { return s.tracer }

// Accuracy exposes the online forecast-accuracy tracker (/accuracy).
func (s *Service) Accuracy() *obs.Accuracy { return s.acc }

// Flush waits for the refit backlog to drain (tests, shutdown snapshots).
func (s *Service) Flush() { s.sched.Flush() }

// ErrShedding is returned by Ingest while the refit backlog exceeds the
// watermark; the HTTP layer maps it to 429.
var ErrShedding = errors.New("serve: refit backlog over watermark, shedding ingest")

// ValidateRecord rejects records the models cannot use.
func ValidateRecord(a *trace.Attack) error {
	switch {
	case a.ID == 0:
		return errors.New("serve: record missing id")
	case a.Family == "":
		return errors.New("serve: record missing family")
	case a.Start.IsZero():
		return errors.New("serve: record missing start")
	case a.DurationSec < 0:
		return errors.New("serve: negative duration")
	case a.TargetAS == 0:
		return errors.New("serve: record missing target_as")
	}
	return nil
}

// Ingest admits one record: dedup + window update in the store, online
// accuracy scoring of the published forecast against the arrival, then a
// refit mark once the target has accumulated RefitEvery new records (or
// has enough history for its first fit). Returns whether the record was
// new. Under backlog it returns ErrShedding without touching the store.
func (s *Service) Ingest(a *trace.Attack) (bool, error) {
	accepted, _, err := s.ingestTimed(a)
	return accepted, err
}

// ingestStageTimes is one record's wall time per pipeline stage; the HTTP
// layer aggregates these into the request's trace tree.
type ingestStageTimes struct {
	Append, Detect, WAL, Score, Schedule time.Duration
}

// ingestTimed is Ingest plus per-stage timings. The published model set is
// looked up *before* the store append: the accuracy tracker must judge the
// forecast that existed while this arrival was still the future
// (score-then-append ordering), never one refit on data that includes it.
func (s *Service) ingestTimed(a *trace.Attack) (bool, ingestStageTimes, error) {
	var st ingestStageTimes
	if s.sched.Overloaded() {
		s.tel.ingestShed.Inc()
		return false, st, ErrShedding
	}
	if err := ValidateRecord(a); err != nil {
		return false, st, err
	}
	tm, published := s.reg.Lookup(a.TargetAS)

	// The store insert and the WAL append form the durability-critical
	// pair: both happen under the shared side of the checkpoint barrier,
	// so a concurrent checkpoint either sees the record in its store
	// snapshot (and the frame in a covered segment) or sees neither.
	w := s.walRef.Load()
	if w != nil {
		s.walMu.RLock()
	}
	t0 := time.Now()
	since, windowLen, prev, det, accepted := s.store.ingestScored(a)
	st.Append = time.Since(t0) - det.Dur
	s.tel.observeStage(StageAppend, st.Append.Seconds())
	if det.Ran {
		st.Detect = det.Dur
		s.tel.observeStage(StageDetect, det.Dur.Seconds())
		s.tel.detRecords.Inc()
		if det.Stale {
			s.tel.detStale.Inc()
		}
	}
	var walErr error
	if accepted && w != nil {
		t := time.Now()
		walErr = s.appendWAL(w, a)
		st.WAL = time.Since(t)
		s.tel.observeStage(StageWAL, st.WAL.Seconds())
		s.tel.walAppendSecs.Observe(st.WAL.Seconds())
	}
	if w != nil {
		s.walMu.RUnlock()
	}
	if !accepted {
		s.tel.ingestDups.Inc()
		return false, st, nil
	}
	s.tel.ingestRecords.Inc()
	if walErr != nil {
		// The record is applied in memory but not persisted: fail the ack
		// so the client retries (dedup makes the retry idempotent while
		// the window holds the attack ID).
		s.tel.walAppendErrors.Inc()
		return true, st, fmt.Errorf("%w: %w", ErrNotDurable, walErr)
	}

	// Score only in-order, non-first arrivals: the first record has no
	// history to forecast from, and a backfilled out-of-order record was
	// never "the next attack" any forecast claimed to predict.
	t1 := time.Now()
	if prev.N > 0 && !a.Start.Before(prev.LastStart) {
		s.scoreArrival(tm, published, prev, a)
	}
	st.Score = time.Since(t1)
	s.tel.observeStage(StageScore, st.Score.Seconds())

	t2 := time.Now()
	if windowLen >= s.cfg.MinWindow {
		if since >= s.cfg.RefitEvery || !published {
			s.sched.TryEnqueue(a.TargetAS)
		}
	}
	st.Schedule = time.Since(t2)
	s.tel.observeStage(StageSchedule, st.Schedule.Seconds())
	return true, st, nil
}

// scoreArrival folds one in-order arrival into the accuracy tracker: the
// two history baselines always, the model kinds when a forecast was
// published before the arrival. prev summarizes the target's window as it
// stood before the append — exactly the baselines' knowledge. Uses only
// cached predictions and stack values, so the ingest hot path stays
// allocation-free (pinned by BenchmarkIngestScoring).
func (s *Service) scoreArrival(tm *TargetModels, published bool, prev PrevStats, a *trace.Attack) {
	out := obs.Outcome{
		Magnitude:   float64(a.Magnitude()),
		DurationSec: a.DurationSec,
		Hour:        float64(a.Hour()),
		Day:         float64(a.Day()),
	}
	s.acc.Score(ModelAlwaysSame, obs.Prediction{
		Magnitude:   prev.LastMag,
		DurationSec: prev.LastDur,
		Hour:        float64(prev.LastStart.Hour()),
		Day:         float64(prev.LastStart.Day()),
	}, out)
	s.acc.Score(ModelAlwaysMean, obs.Prediction{
		Magnitude:   prev.MeanMag,
		DurationSec: prev.MeanDur,
		Hour:        prev.MeanHour,
		Day:         prev.MeanDay,
	}, out)
	if !published || tm == nil {
		return
	}
	p := tm.preds()
	nan := math.NaN()
	tmpPred := obs.Prediction{Magnitude: p.TmpMag, DurationSec: nan, Hour: p.TmpHour, Day: p.TmpDay}
	spaPred := obs.Prediction{Magnitude: nan, DurationSec: p.SpaDur, Hour: p.SpaHour, Day: p.SpaDay}
	stPred := obs.Prediction{Magnitude: p.STMag, DurationSec: p.STDur, Hour: p.STHour, Day: p.STDay}
	ensPred := obs.Prediction{Magnitude: p.EnsMag, DurationSec: p.EnsDur, Hour: p.EnsHour, Day: p.EnsDay}
	s.acc.Score(ModelTemporal, tmpPred, out)
	s.acc.Score(ModelSpatial, spaPred, out)
	s.acc.Score(ModelST, stPred, out)
	s.acc.Score(ModelEnsemble, ensPred, out)
	// The same arrival judges the per-target champion contest: identical
	// predictions, but in this target's own window so promotion decisions
	// reflect local (not fleet-wide) accuracy.
	pacc, created := s.promo.ensure(a.TargetAS)
	pacc.Score(ModelTemporal, tmpPred, out)
	pacc.Score(ModelSpatial, spaPred, out)
	pacc.Score(ModelST, stPred, out)
	pacc.Score(ModelEnsemble, ensPred, out)
	// ensure can race the eviction hook: the store removes the target
	// before onEvict drops its tracker, so a create that lost that race
	// always observes the target gone here and removes itself — otherwise
	// the ghost window would leak until the AS is re-ingested (evicted
	// targets get no refits). Checked only on creation, so the steady-state
	// scoring path takes no extra shard lock.
	if created && !s.store.Known(a.TargetAS) {
		s.promo.Drop(a.TargetAS)
	}
}

// Forecast serves the target's published forecast.
func (s *Service) Forecast(as astopo.AS) (*Forecast, error) {
	return s.reg.Forecast(as)
}

// WarmStart bulk-ingests a dataset (boot-time backfill) and waits for the
// resulting refits to publish.
func (s *Service) WarmStart(ds *trace.Dataset) (int, error) {
	n := 0
	for i := range ds.Attacks {
		ok, err := s.Ingest(&ds.Attacks[i])
		if errors.Is(err, ErrShedding) {
			s.sched.Flush()
			ok, err = s.Ingest(&ds.Attacks[i])
		}
		if err != nil {
			return n, fmt.Errorf("serve: warm start record %d: %w", i, err)
		}
		if ok {
			n++
		}
	}
	s.sched.Flush()
	return n, nil
}
