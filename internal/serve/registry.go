package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/astopo"
	"repro/internal/core"
)

// Registry serves forecasts lock-free from an immutable snapshot. The
// snapshot — a map from target AS to that target's fitted models — is
// published by atomic pointer swap: readers load the pointer once and see
// a consistent world for the whole request, while refits build new
// TargetModels off to the side and swap them in as a batch. Models inside
// a published snapshot are never mutated (prediction methods on
// core.Temporal/Spatial/Spatiotemporal are read-only), so no
// reader-side locking exists anywhere on the forecast path.
type Registry struct {
	snap atomic.Pointer[snapshot]
	mu   sync.Mutex // serializes publishers (copy-on-write swap)
	gen  atomic.Uint64
}

type snapshot struct {
	version uint64
	models  map[astopo.AS]*TargetModels
}

// TargetModels is one target's immutable fitted-model set plus the frozen
// feature context the spatiotemporal tree needs at forecast time. All
// fields serialize through the existing core persist codecs, so a registry
// snapshot on disk is the same wire format cmd/ddospredict bundles use.
type TargetModels struct {
	AS     astopo.AS `json:"as"`
	Family string    `json:"family"` // dominant family in the fit window

	Temporal *core.Temporal       `json:"temporal"`
	Spatial  *core.Spatial        `json:"spatial"`
	ST       *core.Spatiotemporal `json:"st,omitempty"`
	Ensemble *Ensemble            `json:"ensemble,omitempty"`

	// Prov records how this generation was produced (full vs incremental
	// refit, verdict filtering) and the champion composition it serves.
	Prov Provenance `json:"prov"`

	Ctx        STContext `json:"ctx"`
	Window     int       `json:"window"`     // records the fit consumed
	Total      uint64    `json:"total"`      // all-time ingested at fit time
	Generation uint64    `json:"generation"` // monotone fit counter
	FittedAt   time.Time `json:"fitted_at"`

	// LastStart is the newest record Start the fit window contained — the
	// out-of-order fence for incremental refits: only records sorting
	// strictly after it can be genuinely new, so a positional tail that
	// reaches at or before it holds already-folded history and the fold-in
	// path must decline. Zero (e.g. a pre-fence snapshot) declines too.
	LastStart time.Time `json:"last_start"`

	// predsReady/predsVal cache the point predictions the online accuracy
	// tracker scores. Models in a published snapshot are immutable, so
	// their forecasts are constants per generation — computing them once
	// keeps the per-arrival scoring on the ingest path allocation-free
	// (the NAR forward pass allocates its lag input, and a sync.Once
	// closure would allocate per call). Not serialized: a snapshot loaded
	// from disk recomputes lazily.
	predsReady atomic.Bool
	predsMu    sync.Mutex
	predsVal   scorePreds
}

// scorePreds is one generation's frozen point forecast per model kind:
// the temporal and spatial components, the spatiotemporal composition
// (the CART tree when engaged, component composition otherwise), and the
// stacked ensemble blend. NaN marks measures a kind does not predict
// (the accuracy tracker skips NaN measures).
type scorePreds struct {
	TmpMag, TmpHour, TmpDay float64
	SpaDur, SpaHour, SpaDay float64
	STMag, STDur            float64
	STHour, STDay           float64
	EnsMag, EnsDur          float64
	EnsHour, EnsDay         float64
}

// preds computes (once per generation) and returns the cached score
// predictions. The fast path is one atomic load and a struct copy — no
// closure, no lock. The composition mirrors Registry.Forecast exactly —
// pinned by TestScorePredsMatchForecast.
func (tm *TargetModels) preds() scorePreds {
	if tm.predsReady.Load() {
		return tm.predsVal
	}
	tm.predsMu.Lock()
	defer tm.predsMu.Unlock()
	if !tm.predsReady.Load() {
		tm.predsVal = tm.computePreds()
		tm.predsReady.Store(true)
	}
	return tm.predsVal
}

func (tm *TargetModels) computePreds() scorePreds {
	t, s := tm.Temporal, tm.Spatial
	p := scorePreds{
		TmpMag: t.PredictMagnitude(), TmpHour: t.PredictHour(), TmpDay: t.PredictDay(),
		SpaDur: s.PredictDuration(), SpaHour: s.PredictHour(), SpaDay: s.PredictDay(),
	}
	p.STMag, p.STHour, p.STDay, p.STDur = max(0, p.TmpMag), p.TmpHour, p.TmpDay, max(0, p.SpaDur)
	if tm.ST != nil {
		f := core.STFeatures{
			TmpHour:     p.TmpHour,
			TmpDay:      p.TmpDay,
			TmpInterval: t.PredictInterval(),
			TmpMag:      p.TmpMag,
			SpaHour:     p.SpaHour,
			SpaDay:      p.SpaDay,
			SpaDur:      p.SpaDur,
			PrevHour:    tm.Ctx.PrevHour,
			PrevDay:     tm.Ctx.PrevDay,
			PrevGapSec:  tm.Ctx.PrevGapSec,
			NextDueDay:  tm.Ctx.NextDueDay,
			AvgMag:      tm.Ctx.AvgMag,
			TargetAS:    float64(tm.AS),
		}
		p.STHour = tm.ST.PredictHour(&f)
		p.STDay = tm.ST.PredictDay(&f)
		p.STDur = max(0, tm.ST.PredictDuration(&f))
		p.STMag = max(0, tm.ST.PredictMagnitude(&f))
	}
	// The ensemble blends component forecasts per measure (column orders
	// documented on Ensemble); measures without a fitted combiner stay NaN
	// and are skipped by scoring and by the serving composition's fallback.
	nan := math.NaN()
	p.EnsMag, p.EnsDur, p.EnsHour, p.EnsDay = nan, nan, nan, nan
	if e := tm.Ensemble; e != nil {
		if e.Mag != nil {
			p.EnsMag = max(0, e.Mag.Predict([]float64{max(0, p.TmpMag), p.STMag}))
		}
		if e.Dur != nil {
			p.EnsDur = max(0, e.Dur.Predict([]float64{max(0, p.SpaDur), p.STDur}))
		}
		if e.Hour != nil {
			p.EnsHour = e.Hour.Predict([]float64{p.TmpHour, p.SpaHour, p.STHour})
		}
		if e.Day != nil {
			p.EnsDay = e.Day.Predict([]float64{p.TmpDay, p.SpaDay, p.STDay})
		}
	}
	return p
}

// servedMeasure picks a kind's prediction for one measure, falling back to
// the ST composition when the champion kind does not predict it (NaN).
func pick(champion string, tmp, spa, st, ens float64) float64 {
	var v float64
	switch champion {
	case ModelTemporal:
		v = tmp
	case ModelSpatial:
		v = spa
	case ModelEnsemble:
		v = ens
	default:
		v = st
	}
	if math.IsNaN(v) {
		return st
	}
	return v
}

// served composes the forecast actually answered to clients: per measure,
// the champion kind's prediction with ST fallback. With zero-value
// champions this is exactly the pre-promotion ST composition.
type servedPreds struct {
	Magnitude, DurationSec, Hour, Day float64
}

func (tm *TargetModels) served() servedPreds {
	p := tm.preds()
	c := tm.Prov.Champions
	nan := math.NaN()
	return servedPreds{
		Magnitude:   pick(champOr(c.Magnitude), max(0, p.TmpMag), nan, p.STMag, p.EnsMag),
		DurationSec: pick(champOr(c.Duration), nan, max(0, p.SpaDur), p.STDur, p.EnsDur),
		Hour:        pick(champOr(c.Timestamp), p.TmpHour, p.SpaHour, p.STHour, p.EnsHour),
		Day:         pick(champOr(c.Timestamp), p.TmpDay, p.SpaDay, p.STDay, p.EnsDay),
	}
}

// STContext is the target-local feature context frozen at fit time (the
// PrevHour/PrevDay/... inputs of core.STFeatures).
type STContext struct {
	PrevHour   float64 `json:"prev_hour"`
	PrevDay    float64 `json:"prev_day"`
	PrevGapSec float64 `json:"prev_gap_sec"`
	NextDueDay float64 `json:"next_due_day"`
	AvgMag     float64 `json:"avg_mag"`
}

// Forecast is one target's next-attack prediction plus provenance.
type Forecast struct {
	TargetAS        astopo.AS `json:"target_as"`
	Family          string    `json:"family"`
	SnapshotVersion uint64    `json:"snapshot_version"`
	ModelGeneration uint64    `json:"model_generation"`
	WindowSize      int       `json:"window_size"`
	Observations    uint64    `json:"observations"`
	FittedAt        time.Time `json:"fitted_at"`

	NextStart   time.Time `json:"next_start"`
	IntervalSec float64   `json:"interval_sec"`
	Hour        float64   `json:"hour"`
	Day         float64   `json:"day"`
	DurationSec float64   `json:"duration_sec"`
	Magnitude   float64   `json:"magnitude"`

	Models ForecastModels `json:"models"`

	// Provenance exposes how the serving generation was produced and which
	// champion kind answers each measure.
	Provenance *Provenance `json:"provenance,omitempty"`
}

// ForecastModels carries the per-engine descriptors (which engine engaged,
// selected structure, observation counts).
type ForecastModels struct {
	Temporal       core.TemporalInfo        `json:"temporal"`
	Spatial        core.SpatialInfo         `json:"spatial"`
	Spatiotemporal *core.SpatiotemporalInfo `json:"spatiotemporal,omitempty"`
}

// ErrUnknownTarget is returned for targets without a published model.
var ErrUnknownTarget = errors.New("serve: no model for target")

// NewRegistry returns a registry with an empty published snapshot.
func NewRegistry() *Registry {
	r := &Registry{}
	r.snap.Store(&snapshot{models: map[astopo.AS]*TargetModels{}})
	return r
}

// Version returns the published snapshot version (increments per swap).
func (r *Registry) Version() uint64 { return r.snap.Load().version }

// Size returns the number of targets in the published snapshot.
func (r *Registry) Size() int { return len(r.snap.Load().models) }

// NextGeneration returns a fresh monotone fit-generation number.
func (r *Registry) NextGeneration() uint64 { return r.gen.Add(1) }

// Targets returns every published target AS in ascending order.
func (r *Registry) Targets() []astopo.AS {
	snap := r.snap.Load()
	out := make([]astopo.AS, 0, len(snap.models))
	for as := range snap.models {
		out = append(out, as)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Lookup returns the published models for a target.
func (r *Registry) Lookup(as astopo.AS) (*TargetModels, bool) {
	tm, ok := r.snap.Load().models[as]
	return tm, ok
}

// Forecast composes the target's next-attack forecast from its published
// models. It is the serving hot path: one atomic load, one map lookup, and
// closed-form model reads — no fitting, no locks, no mutation.
func (r *Registry) Forecast(as astopo.AS) (*Forecast, error) {
	snap := r.snap.Load()
	tm := snap.models[as]
	if tm == nil {
		return nil, fmt.Errorf("%w AS%d", ErrUnknownTarget, as)
	}
	t, s := tm.Temporal, tm.Spatial
	sp := tm.served()
	prov := tm.Prov
	prov.Champions = Champions{
		Magnitude: champOr(prov.Champions.Magnitude),
		Duration:  champOr(prov.Champions.Duration),
		Timestamp: champOr(prov.Champions.Timestamp),
	}
	fc := &Forecast{
		TargetAS:        as,
		Family:          tm.Family,
		SnapshotVersion: snap.version,
		ModelGeneration: tm.Generation,
		WindowSize:      tm.Window,
		Observations:    tm.Total,
		FittedAt:        tm.FittedAt,
		NextStart:       t.PredictNextStart(),
		IntervalSec:     max(0, t.PredictInterval()),
		Hour:            sp.Hour,
		Day:             sp.Day,
		DurationSec:     sp.DurationSec,
		Magnitude:       sp.Magnitude,
		Models: ForecastModels{
			Temporal: t.Describe(),
			Spatial:  s.Describe(),
		},
		Provenance: &prov,
	}
	if tm.ST != nil {
		info := tm.ST.Describe()
		fc.Models.Spatiotemporal = &info
	}
	return fc, nil
}

// Drop removes a target from the published snapshot (state-store eviction
// under -max-targets). No-op when the target is not published.
func (r *Registry) Drop(as astopo.AS) {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.snap.Load()
	if _, ok := old.models[as]; !ok {
		return
	}
	models := make(map[astopo.AS]*TargetModels, len(old.models)-1)
	for k, tm := range old.models {
		if k != as {
			models[k] = tm
		}
	}
	r.snap.Store(&snapshot{version: old.version + 1, models: models})
}

// Publish swaps a new snapshot in that carries every existing target plus
// the given batch (copy-on-write). Readers keep the old snapshot until the
// single atomic store below; nothing is ever published half-updated.
func (r *Registry) Publish(batch []*TargetModels) {
	if len(batch) == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.snap.Load()
	models := make(map[astopo.AS]*TargetModels, len(old.models)+len(batch))
	for as, tm := range old.models {
		models[as] = tm
	}
	for _, tm := range batch {
		if tm != nil {
			models[tm.AS] = tm
		}
	}
	r.snap.Store(&snapshot{version: old.version + 1, models: models})
}

// SnapshotFile is the on-disk snapshot format, targets sorted by AS so
// snapshots of the same state are byte-identical.
type SnapshotFile struct {
	Version uint64          `json:"version"`
	Targets []*TargetModels `json:"targets"`
}

// WriteSnapshot serializes the published snapshot.
func (r *Registry) WriteSnapshot(w io.Writer) error {
	snap := r.snap.Load()
	file := SnapshotFile{Version: snap.version, Targets: make([]*TargetModels, 0, len(snap.models))}
	for _, tm := range snap.models {
		file.Targets = append(file.Targets, tm)
	}
	sort.Slice(file.Targets, func(i, j int) bool { return file.Targets[i].AS < file.Targets[j].AS })
	if err := json.NewEncoder(w).Encode(&file); err != nil {
		return fmt.Errorf("serve: write snapshot: %w", err)
	}
	return nil
}

// ReadSnapshot replaces the published snapshot with one read from r2 (the
// daemon's warm-boot path; also loadable by cmd/ddospredict -snapshot).
func (r *Registry) ReadSnapshot(r2 io.Reader) error {
	file, err := DecodeSnapshot(r2)
	if err != nil {
		return err
	}
	models := make(map[astopo.AS]*TargetModels, len(file.Targets))
	var maxGen uint64
	for _, tm := range file.Targets {
		if tm.Temporal == nil || tm.Spatial == nil {
			return fmt.Errorf("serve: snapshot target AS%d missing models", tm.AS)
		}
		models[tm.AS] = tm
		if tm.Generation > maxGen {
			maxGen = tm.Generation
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		g := r.gen.Load()
		if g >= maxGen || r.gen.CompareAndSwap(g, maxGen) {
			break
		}
	}
	// A file older than the published snapshot must not replace fresher
	// in-memory models: readers (and the cluster replicator) treat version
	// as a monotone clock, so relabeling stale content under the current
	// version would make version-gated consumers skip re-sync. Keep the
	// published snapshot untouched; the generation clamp above still holds.
	if cur := r.snap.Load().version; file.Version < cur {
		return nil
	}
	r.snap.Store(&snapshot{version: file.Version, models: models})
	return nil
}

// DecodeSnapshot parses a snapshot file without publishing it (used by
// cmd/ddospredict to forecast straight from a ddosd snapshot).
func DecodeSnapshot(r io.Reader) (*SnapshotFile, error) {
	var file SnapshotFile
	if err := json.NewDecoder(r).Decode(&file); err != nil {
		return nil, fmt.Errorf("serve: read snapshot: %w", err)
	}
	return &file, nil
}
