package serve

// Property tests for the sharded store: whatever interleaving concurrent
// ingesters produce across shards, each target's window must come out
// chronological, duplicate-free, and lossless (every unique record is
// either in the window or was evicted by capacity — never silently
// dropped, never double-counted).

import (
	"sync"
	"testing"
	"time"

	"repro/internal/astopo"
	"repro/internal/stats"
	"repro/internal/trace"
)

// propRecord generates the i-th record for a target: unique ID, strictly
// increasing timestamps in generation order.
func propRecord(as astopo.AS, i int) trace.Attack {
	return trace.Attack{
		ID:          int(as)*100000 + i,
		Family:      "prop",
		Start:       time.Date(2012, 8, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Minute),
		DurationSec: 60,
		TargetAS:    as,
		TargetIP:    astopo.IPv4(uint32(as)),
		Bots:        []astopo.IPv4{1},
	}
}

func TestStorePropertiesUnderInterleaving(t *testing.T) {
	cases := []struct {
		name       string
		shards     int
		window     int
		targets    int
		perTarget  int
		goroutines int
		shuffle    bool // scramble global submission order
		dupes      bool // resubmit every record once (needs perTarget <= window)
	}{
		{name: "in-order fits window", shards: 4, window: 64, targets: 8, perTarget: 40, goroutines: 8},
		{name: "in-order overflows window", shards: 4, window: 16, targets: 8, perTarget: 120, goroutines: 8},
		{name: "shuffled fits window", shards: 8, window: 128, targets: 16, perTarget: 100, goroutines: 16, shuffle: true},
		{name: "shuffled overflows window", shards: 2, window: 8, targets: 5, perTarget: 64, goroutines: 12, shuffle: true},
		{name: "duplicates rejected", shards: 4, window: 64, targets: 6, perTarget: 30, goroutines: 8, dupes: true},
		{name: "single shard serializes", shards: 1, window: 32, targets: 10, perTarget: 50, goroutines: 10, shuffle: true},
	}
	for ci, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := NewStore(tc.shards, tc.window)

			// Build the submission list: per-target chronological batches,
			// optionally shuffled globally and doubled with duplicates.
			var work []trace.Attack
			for tg := 0; tg < tc.targets; tg++ {
				as := astopo.AS(65000 + tg)
				for i := 0; i < tc.perTarget; i++ {
					work = append(work, propRecord(as, i))
				}
			}
			if tc.dupes {
				work = append(work, work...)
			}
			if tc.shuffle || tc.dupes {
				s := stats.NewSampler(uint64(ci)*977 + 5)
				for i := len(work) - 1; i > 0; i-- {
					j := s.IntN(i + 1)
					work[i], work[j] = work[j], work[i]
				}
			}

			// Concurrent ingest: goroutines claim strided slices of the
			// submission list, so shard mutex interleavings vary freely.
			var (
				wg       sync.WaitGroup
				accepted = make([]int64, tc.goroutines)
			)
			for g := 0; g < tc.goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := g; i < len(work); i += tc.goroutines {
						if _, _, ok := st.Ingest(&work[i]); ok {
							accepted[g]++
						}
					}
				}(g)
			}
			wg.Wait()

			// Global accounting: duplicates of in-window records are the
			// only rejections.
			var acceptedTotal int64
			for _, n := range accepted {
				acceptedTotal += n
			}
			wantUnique := int64(tc.targets * tc.perTarget)
			if tc.dupes {
				// perTarget <= window, so every duplicate finds its original
				// still resident and must be rejected.
				if tc.perTarget > tc.window {
					t.Fatalf("bad case: dupes need perTarget <= window")
				}
			}
			if acceptedTotal != wantUnique {
				t.Fatalf("accepted %d records, want %d unique", acceptedTotal, wantUnique)
			}
			if st.Len() != tc.targets {
				t.Fatalf("store knows %d targets, want %d", st.Len(), tc.targets)
			}

			// Per-target invariants.
			for tg := 0; tg < tc.targets; tg++ {
				as := astopo.AS(65000 + tg)
				win, total := st.Window(as)
				if total != uint64(tc.perTarget) {
					t.Fatalf("AS%d total %d, want %d (lost or double-counted records)", as, total, tc.perTarget)
				}
				wantLen := tc.perTarget
				if wantLen > tc.window {
					wantLen = tc.window
				}
				if len(win) != wantLen {
					t.Fatalf("AS%d window %d records, want %d", as, len(win), wantLen)
				}
				seen := make(map[int]bool, len(win))
				for i, a := range win {
					if a.TargetAS != as {
						t.Fatalf("AS%d window holds a record for AS%d", as, a.TargetAS)
					}
					if seen[a.ID] {
						t.Fatalf("AS%d window holds ID %d twice", as, a.ID)
					}
					seen[a.ID] = true
					if i > 0 && a.Start.Before(win[i-1].Start) {
						t.Fatalf("AS%d window not chronological at %d: %v after %v",
							as, i, a.Start, win[i-1].Start)
					}
				}
				// Lossless when everything fits: the window is exactly the
				// full generated set in order.
				if tc.perTarget <= tc.window {
					for i, a := range win {
						if want := propRecord(as, i); a.ID != want.ID {
							t.Fatalf("AS%d window[%d] = ID %d, want %d", as, i, a.ID, want.ID)
						}
					}
				}
			}
		})
	}
}

// TestStoreWindowEvictsOldest pins the eviction discipline for in-order
// arrival: the window is exactly the chronologically-latest w records.
func TestStoreWindowEvictsOldest(t *testing.T) {
	const w = 8
	st := NewStore(1, w)
	as := astopo.AS(64999)
	for i := 0; i < 3*w; i++ {
		r := propRecord(as, i)
		st.Ingest(&r)
	}
	win, total := st.Window(as)
	if total != 3*w {
		t.Fatalf("total %d, want %d", total, 3*w)
	}
	for i, a := range win {
		if want := propRecord(as, 2*w+i); a.ID != want.ID {
			t.Fatalf("window[%d] = ID %d, want %d (oldest not evicted)", i, a.ID, want.ID)
		}
	}
}

// TestStoreRefitCounters pins the sinceRefit bookkeeping the scheduler
// relies on: MarkRefitted subtracts what the refit consumed and clamps at
// zero, so records ingested mid-refit still count toward the next one.
func TestStoreRefitCounters(t *testing.T) {
	st := NewStore(2, 16)
	as := astopo.AS(64998)
	var since int
	for i := 0; i < 5; i++ {
		r := propRecord(as, i)
		since, _, _ = st.Ingest(&r)
	}
	if since != 5 {
		t.Fatalf("sinceRefit %d after 5 ingests, want 5", since)
	}
	st.MarkRefitted(as, 3)
	r := propRecord(as, 5)
	since, _, _ = st.Ingest(&r)
	if since != 3 {
		t.Fatalf("sinceRefit %d after consuming 3, want 3", since)
	}
	st.MarkRefitted(as, 100) // over-consume clamps at zero
	r = propRecord(as, 6)
	since, _, _ = st.Ingest(&r)
	if since != 1 {
		t.Fatalf("sinceRefit %d after clamp, want 1", since)
	}
	st.MarkRefitted(astopo.AS(1), 1) // unknown target is a no-op
	if _, total := st.Window(as); total != 7 {
		t.Fatalf("total %d, want 7", total)
	}
}
