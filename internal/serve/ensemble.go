package serve

import (
	"math"

	"repro/internal/core"
	"repro/internal/regress"
)

// The stacked ensemble (DESIGN.md §15): instead of hard-picking the
// spatiotemporal tree whenever it engages, a per-measure combiner is
// learned over the component forecasts on the same walk-forward samples
// the tree trains on. Each combiner is a constrained least squares fit on
// the probability simplex (weights >= 0, summing to 1), so the blend
// interpolates the component forecasts — a wildly wrong component can be
// voted down to weight zero but never amplified. The Gupta et al. survey
// in PAPERS.md ranks regression families per regime; the simplex weights
// are the online estimate of exactly that ranking, per target.

// Ensemble is a target's per-measure stacked combiner. Column order per
// measure is fixed (documented per field) so serialized weights stay
// meaningful across generations. A nil measure means that combiner could
// not be fit (degenerate holdout); the champion logic then never selects
// the ensemble for it.
type Ensemble struct {
	// Mag blends [temporal magnitude, st magnitude].
	Mag *regress.SimplexModel `json:"mag,omitempty"`
	// Dur blends [spatial duration, st duration].
	Dur *regress.SimplexModel `json:"dur,omitempty"`
	// Hour blends [temporal hour, spatial hour, st hour].
	Hour *regress.SimplexModel `json:"hour,omitempty"`
	// Day blends [temporal day, spatial day, st day].
	Day *regress.SimplexModel `json:"day,omitempty"`
}

// ready reports whether any measure has a fitted combiner.
func (e *Ensemble) ready() bool {
	return e != nil && (e.Mag != nil || e.Dur != nil || e.Hour != nil || e.Day != nil)
}

const (
	// ensMinSamples is the fewest walk-forward samples before an ensemble
	// is attempted: the first ensHoldFrac trains the throwaway tree that
	// produces honest ST predictions, the remainder fits the weights.
	ensMinSamples = 2 * stMinSamples
	ensHoldFrac   = 0.5
	ensIters      = 300
)

// fitEnsemble learns the per-measure combiners from the walk-forward
// samples fitSTModels collected. The ST column must be *honest*: the
// final tree saw every sample, so predicting its own training rows would
// leak. A throwaway tree fit on the leading fraction supplies
// out-of-sample ST predictions for the rest, mirroring how the serving
// tree sees future arrivals. Returns nil when there is not enough holdout
// or no measure admits a fit.
func fitEnsemble(samples []core.STSample, cfg Config) *Ensemble {
	if len(samples) < ensMinSamples {
		return nil
	}
	split := int(ensHoldFrac * float64(len(samples)))
	hold, err := core.FitSpatiotemporal(samples[:split], cfg.ST)
	if err != nil {
		return nil
	}
	n := len(samples) - split
	magRows := make([][]float64, 0, n)
	durRows := make([][]float64, 0, n)
	hourRows := make([][]float64, 0, n)
	dayRows := make([][]float64, 0, n)
	mags := make([]float64, 0, n)
	durs := make([]float64, 0, n)
	hours := make([]float64, 0, n)
	days := make([]float64, 0, n)
	for i := split; i < len(samples); i++ {
		s := &samples[i]
		stMag := math.Max(0, hold.PredictMagnitude(&s.F))
		stDur := math.Max(0, hold.PredictDuration(&s.F))
		magRows = append(magRows, []float64{math.Max(0, s.F.TmpMag), stMag})
		durRows = append(durRows, []float64{math.Max(0, s.F.SpaDur), stDur})
		hourRows = append(hourRows, []float64{s.F.TmpHour, s.F.SpaHour, hold.PredictHour(&s.F)})
		dayRows = append(dayRows, []float64{s.F.TmpDay, s.F.SpaDay, hold.PredictDay(&s.F)})
		mags = append(mags, s.Mag)
		durs = append(durs, s.Dur)
		hours = append(hours, s.Hour)
		days = append(days, s.Day)
	}
	e := &Ensemble{}
	e.Mag, _ = regress.FitSimplex(magRows, mags, ensIters)
	e.Dur, _ = regress.FitSimplex(durRows, durs, ensIters)
	e.Hour, _ = regress.FitSimplex(hourRows, hours, ensIters)
	e.Day, _ = regress.FitSimplex(dayRows, days, ensIters)
	if !e.ready() {
		return nil
	}
	return e
}
