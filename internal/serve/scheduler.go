package serve

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/astopo"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/trace"
)

// scheduler is the background refit engine. Ingest marks targets stale;
// the scheduler coalesces marks per target, queues them on a bounded
// channel, drains the queue in batches, refits every target of a batch
// concurrently on the parallel worker pool, and publishes the whole batch
// with one snapshot swap. The queue depth bounds memory; the lag counter
// (queued + in-flight refits) drives admission: past the watermark the
// HTTP layer sheds ingest load with 429 instead of letting the refit
// backlog grow without bound.
type scheduler struct {
	store  *Store
	reg    *Registry
	promo  *promoTracker
	cfg    Config
	tel    *telemetry
	tracer *obs.Tracer
	fit    FitFunc

	queue   chan astopo.AS
	mu      sync.Mutex
	pending map[astopo.AS]bool // targets queued but not yet picked up
	lag     atomic.Int64       // queued + in-flight targets

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

func newScheduler(store *Store, reg *Registry, promo *promoTracker, cfg Config, tel *telemetry, tracer *obs.Tracer) *scheduler {
	s := &scheduler{
		store:   store,
		reg:     reg,
		promo:   promo,
		cfg:     cfg,
		tel:     tel,
		tracer:  tracer,
		queue:   make(chan astopo.AS, cfg.QueueDepth),
		pending: make(map[astopo.AS]bool, cfg.QueueDepth),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	fit := FitFunc(s.fitOnline)
	if cfg.WrapFit != nil {
		fit = cfg.WrapFit(fit)
	}
	s.fit = fit
	go s.run()
	return s
}

// fitOnline is the scheduler's FitFunc: try the incremental fold-in path
// when enabled and eligible, fall back to the full refit, then run the
// champion/challenger contest against the target's live accuracy window.
// It is the function Config.WrapFit wraps, so chaos-injected faults cover
// both refit paths and the promotion decision rides inside the fit span.
func (s *scheduler) fitOnline(as astopo.AS, window []trace.Attack, total uint64, gen uint64, cfg Config) (*TargetModels, error) {
	prev, _ := s.reg.Lookup(as)
	var tm *TargetModels
	var err error
	if cfg.IncrementalRefit && prev != nil {
		tm, err = fitTargetIncremental(prev, as, window, total, gen, cfg)
		if err != nil {
			tm = nil // any failure — ineligibility or drift — means full refit
		}
	}
	if tm == nil {
		if tm, err = fitTarget(as, window, total, gen, cfg); err != nil {
			return nil, err
		}
	}
	var prevChamps Champions
	var history []Promotion
	if prev != nil {
		prevChamps = prev.Prov.Champions
		history = prev.Prov.History
	}
	champs, promos := decideChampions(prevChamps, s.promo.get(as), tm.Ensemble.ready(), gen, cfg)
	tm.Prov.Champions = champs
	tm.Prov.History = appendHistory(history, promos)
	return tm, nil
}

// TryEnqueue marks a target for refit. Marks for an already-queued target
// coalesce (the refit will read the latest window anyway). A full queue
// drops the mark and reports false; the target stays stale and the next
// ingest for it will try again.
func (s *scheduler) TryEnqueue(as astopo.AS) bool {
	s.mu.Lock()
	if s.pending[as] {
		s.mu.Unlock()
		return true
	}
	s.pending[as] = true
	s.mu.Unlock()
	select {
	case s.queue <- as:
		// The lag gauge is derived from s.lag at scrape time (Service.New
		// registers an OnScrape hook); setting it here too would race other
		// enqueues/drains into stale-last-writer values.
		s.lag.Add(1)
		return true
	default:
		s.mu.Lock()
		delete(s.pending, as)
		s.mu.Unlock()
		s.tel.refitsDropped.Inc()
		return false
	}
}

// Overloaded reports whether the refit backlog has crossed the admission
// watermark — the HTTP layer answers 429 while this holds.
func (s *scheduler) Overloaded() bool {
	return s.lag.Load() > int64(s.cfg.LagWatermark)
}

// Lag returns the current refit backlog (queued + in-flight).
func (s *scheduler) Lag() int64 { return s.lag.Load() }

// Stop terminates the run loop after the in-flight batch completes.
func (s *scheduler) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}

// Flush blocks until the queue is empty and no refit is in flight (test
// and shutdown helper; ingest may keep adding work while it waits). A
// stopped scheduler never drains its queue, so Flush also returns once the
// run loop has exited — otherwise a Stop/Flush race (SIGTERM while refits
// are queued) would spin forever.
func (s *scheduler) Flush() {
	for s.lag.Load() > 0 {
		select {
		case <-s.done:
			return
		default:
		}
		time.Sleep(time.Millisecond)
	}
}

func (s *scheduler) run() {
	defer close(s.done)
	for {
		select {
		case <-s.stop:
			return
		case first := <-s.queue:
			batch := s.collectBatch(first)
			s.refitBatch(batch)
		}
	}
}

// collectBatch drains up to BatchSize-1 more queued targets without
// blocking, so bursty ingest amortizes into one snapshot swap.
func (s *scheduler) collectBatch(first astopo.AS) []astopo.AS {
	batch := []astopo.AS{first}
	for len(batch) < s.cfg.BatchSize {
		select {
		case as := <-s.queue:
			batch = append(batch, as)
		default:
			return batch
		}
	}
	return batch
}

// refitBatch fits every target of the batch on the worker pool and
// publishes the survivors with a single atomic snapshot swap. The whole
// batch is one "refit" trace: a "fit" child per target (workers open
// children concurrently) and a "publish" child for the snapshot swap.
func (s *scheduler) refitBatch(batch []astopo.AS) {
	// A target is in-flight from here: clear its pending mark so records
	// arriving during the refit can re-queue it.
	s.mu.Lock()
	for _, as := range batch {
		delete(s.pending, as)
	}
	s.mu.Unlock()

	root := s.tracer.Start(StageRefit)
	root.SetAttr("targets", strconv.Itoa(len(batch)))

	fitted := make([]*TargetModels, len(batch))
	consumed := make([]int, len(batch))
	_ = parallel.ForEach(len(batch), s.cfg.RefitWorkers, func(i int) error {
		span := root.Child(StageFit)
		span.SetAttr("as", strconv.FormatUint(uint64(batch[i]), 10))
		start := time.Now()
		window, total := s.store.Window(batch[i])
		tm, err := s.fit(batch[i], window, total, s.reg.NextGeneration(), s.cfg)
		if err != nil {
			s.tel.refitErrors.Inc()
			span.SetAttr("outcome", "skipped: "+err.Error())
			span.End()
			return nil // not-ready targets are routine, not batch failures
		}
		fitted[i] = tm
		consumed[i] = len(window)
		s.tel.refitSeconds.Observe(time.Since(start).Seconds())
		span.SetAttr("outcome", "published")
		span.SetAttr("generation", strconv.FormatUint(tm.Generation, 10))
		span.End()
		return nil
	})
	pub := root.Child(StagePublish)
	s.reg.Publish(fitted)
	pub.End()
	published := 0
	for i, as := range batch {
		tm := fitted[i]
		if tm == nil {
			continue
		}
		s.store.MarkRefitted(as, consumed[i])
		s.tel.refitsDone.Inc()
		published++
		if tm.Prov.Refit == refitIncremental {
			s.tel.refitIncremental.Inc()
		}
		for _, p := range tm.Prov.History {
			if p.Generation == tm.Generation {
				s.tel.promotions.With(p.To).Inc()
			}
		}
		// A bounded store may have evicted this target while its refit was
		// in flight; publishing it anyway would resurrect a ghost, so drop
		// it again (the eviction hook already dropped the old generation).
		if s.cfg.MaxTargets > 0 && !s.store.Known(as) {
			s.reg.Drop(as)
			s.promo.Drop(as)
		}
	}
	root.SetAttr("published", strconv.Itoa(published))
	root.End()
	s.lag.Add(-int64(len(batch)))
}
