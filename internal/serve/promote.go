package serve

import (
	"fmt"
	"sync"

	"repro/internal/astopo"
	"repro/internal/obs"
)

// Champion/challenger promotion (DESIGN.md §15): every published target
// carries a per-measure champion — the model kind whose forecast the
// serving composition uses for that measure. Challengers are judged on
// per-target obs.Accuracy windows scored on the ingest path (the same
// score-then-append protocol as the global tracker), and the decision is
// taken at refit time, so a promotion is always published atomically with
// the generation it applies to. The default champion for every measure is
// the spatiotemporal kind — exactly the ST-when-available composition the
// service served before promotion existed — so a target with no scored
// window behaves identically to earlier builds.

// Measure names used in champion provenance (and /statusz aggregation).
const (
	MeasureMagnitude = "magnitude"
	MeasureDuration  = "duration"
	MeasureTimestamp = "timestamp"
)

// Champions records the serving model kind per measure. Empty fields mean
// the default (ModelST).
type Champions struct {
	Magnitude string `json:"magnitude,omitempty"`
	Duration  string `json:"duration,omitempty"`
	Timestamp string `json:"timestamp,omitempty"`
}

// champOr maps the zero value to the default champion.
func champOr(kind string) string {
	if kind == "" {
		return ModelST
	}
	return kind
}

// Promotion is one champion change, recorded in the target's lineage.
type Promotion struct {
	Measure    string `json:"measure"`
	From       string `json:"from"`
	To         string `json:"to"`
	Generation uint64 `json:"generation"` // generation the change took effect
	Reason     string `json:"reason"`
}

// maxPromotionHistory caps the per-target lineage carried through
// snapshots (oldest entries fall off).
const maxPromotionHistory = 8

// Provenance records how a generation was produced and which model kinds
// it serves. It rides inside TargetModels through the snapshot codec,
// /forecast, and /statusz.
type Provenance struct {
	// Refit is "full" or "incremental".
	Refit string `json:"refit,omitempty"`
	// BaseGeneration is the generation an incremental refit folded from.
	BaseGeneration uint64 `json:"base_generation,omitempty"`
	// FoldedRecords is how many new records the incremental refit consumed.
	FoldedRecords int `json:"folded_records,omitempty"`
	// FilteredRecords counts alerted records the verdict filter excluded.
	FilteredRecords int `json:"filtered_records,omitempty"`
	// IncrSinceFull counts consecutive incremental refits since the last
	// full re-estimation (bounded by Config.FullRefitEvery).
	IncrSinceFull int `json:"incr_since_full,omitempty"`
	// Champions is the served composition per measure.
	Champions Champions `json:"champions"`
	// History is the capped promotion lineage, oldest first.
	History []Promotion `json:"history,omitempty"`
}

const (
	refitFull        = "full"
	refitIncremental = "incremental"
)

// promoTracker holds one obs.Accuracy window per target, scoring every
// model kind's point forecast against each in-order arrival. Trackers are
// created lazily on the first scored arrival of a target with published
// models and dropped with the target on store eviction.
type promoTracker struct {
	window int
	mu     sync.RWMutex
	m      map[astopo.AS]*obs.Accuracy
}

func newPromoTracker(window int) *promoTracker {
	return &promoTracker{window: window, m: make(map[astopo.AS]*obs.Accuracy)}
}

// promoKinds are the champion candidates tracked per target.
func promoKinds() []string {
	return []string{ModelTemporal, ModelSpatial, ModelST, ModelEnsemble}
}

// get returns the target's tracker, or nil when none exists yet.
func (p *promoTracker) get(as astopo.AS) *obs.Accuracy {
	p.mu.RLock()
	acc := p.m[as]
	p.mu.RUnlock()
	return acc
}

// ensure returns the target's tracker, creating it on first use. created
// reports whether this call inserted a fresh tracker — the caller must
// then re-check the target still exists (see scoreArrival): an ensure that
// lost a race against the eviction hook's Drop would otherwise resurrect a
// tracker no refit will ever read.
func (p *promoTracker) ensure(as astopo.AS) (acc *obs.Accuracy, created bool) {
	if acc := p.get(as); acc != nil {
		return acc, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if acc := p.m[as]; acc != nil {
		return acc, false
	}
	acc = obs.NewAccuracy(obs.AccuracyConfig{Window: p.window})
	for _, kind := range promoKinds() {
		acc.Model(kind)
	}
	p.m[as] = acc
	return acc, true
}

// Drop forgets a target's windows (store eviction).
func (p *promoTracker) Drop(as astopo.AS) {
	p.mu.Lock()
	delete(p.m, as)
	p.mu.Unlock()
}

// Size returns the number of tracked targets (/statusz).
func (p *promoTracker) Size() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.m)
}

// measureSpec describes one measure's champion contest: the eligible
// kinds in deterministic order, how to read a kind's windowed value, and
// whether lower or higher is better.
type measureSpec struct {
	name      string
	kinds     []string
	value     func(obs.Summary) (val float64, samples int)
	lowerWins bool
}

func measureSpecs() []measureSpec {
	return []measureSpec{
		{
			name:      MeasureMagnitude,
			kinds:     []string{ModelST, ModelEnsemble, ModelTemporal},
			value:     func(s obs.Summary) (float64, int) { return s.Magnitude.MeanRelErr, s.Magnitude.Samples },
			lowerWins: true,
		},
		{
			name:      MeasureDuration,
			kinds:     []string{ModelST, ModelEnsemble, ModelSpatial},
			value:     func(s obs.Summary) (float64, int) { return s.Duration.MeanRelErr, s.Duration.Samples },
			lowerWins: true,
		},
		{
			name:      MeasureTimestamp,
			kinds:     []string{ModelST, ModelEnsemble, ModelTemporal, ModelSpatial},
			value:     func(s obs.Summary) (float64, int) { return s.Timestamp.Rate, s.Timestamp.Samples },
			lowerWins: false,
		},
	}
}

// decideChampions runs the champion/challenger contest for one target at
// refit time. prev carries the incumbents (zero value: ST defaults); acc
// is the target's live accuracy window (nil: no scored arrivals yet —
// incumbents hold); hasEnsemble gates the ensemble kind. A challenger
// must beat the incumbent by the configured margin with at least
// PromoMinSamples scored arrivals for its measure; an incumbent that has
// become unavailable (ensemble dropped by a full refit that could not
// re-fit it) is demoted to the default. Every change is returned as a
// Promotion stamped with gen.
func decideChampions(prev Champions, acc *obs.Accuracy, hasEnsemble bool, gen uint64, cfg Config) (Champions, []Promotion) {
	out := Champions{
		Magnitude: champOr(prev.Magnitude),
		Duration:  champOr(prev.Duration),
		Timestamp: champOr(prev.Timestamp),
	}
	var promos []Promotion
	set := func(measure string, kind string) *string {
		switch measure {
		case MeasureMagnitude:
			out.Magnitude = kind
			return &out.Magnitude
		case MeasureDuration:
			out.Duration = kind
			return &out.Duration
		default:
			out.Timestamp = kind
			return &out.Timestamp
		}
	}
	field := func(measure string) string {
		switch measure {
		case MeasureMagnitude:
			return out.Magnitude
		case MeasureDuration:
			return out.Duration
		default:
			return out.Timestamp
		}
	}
	for _, spec := range measureSpecs() {
		incumbent := field(spec.name)
		if incumbent == ModelEnsemble && !hasEnsemble {
			set(spec.name, ModelST)
			promos = append(promos, Promotion{
				Measure: spec.name, From: ModelEnsemble, To: ModelST, Generation: gen,
				Reason: "ensemble no longer available",
			})
			incumbent = ModelST
		}
		if acc == nil {
			continue
		}
		incVal, incSamples := spec.value(acc.Summary(incumbent))
		bestKind, bestVal := "", 0.0
		for _, kind := range spec.kinds {
			if kind == incumbent || (kind == ModelEnsemble && !hasEnsemble) {
				continue
			}
			val, samples := spec.value(acc.Summary(kind))
			if samples < cfg.PromoMinSamples {
				continue
			}
			better := false
			switch {
			case incSamples < cfg.PromoMinSamples:
				// The incumbent has no judged window of its own: any fully
				// sampled challenger may take over (first in kind order wins
				// ties via the strict comparison below).
				better = true
			case spec.lowerWins:
				better = val < incVal*(1-cfg.PromoMargin)
			default:
				better = val > incVal+cfg.PromoMargin
			}
			if !better {
				continue
			}
			if bestKind == "" || (spec.lowerWins && val < bestVal) || (!spec.lowerWins && val > bestVal) {
				bestKind, bestVal = kind, val
			}
		}
		if bestKind == "" {
			continue
		}
		reason := fmt.Sprintf("%s: %s %.4f vs %s %.4f over live window", spec.name, bestKind, bestVal, incumbent, incVal)
		if incSamples < cfg.PromoMinSamples {
			reason = fmt.Sprintf("%s: %s %.4f; incumbent %s unscored", spec.name, bestKind, bestVal, incumbent)
		}
		set(spec.name, bestKind)
		promos = append(promos, Promotion{
			Measure: spec.name, From: incumbent, To: bestKind, Generation: gen, Reason: reason,
		})
	}
	return out, promos
}

// appendHistory merges new promotions into the capped lineage.
func appendHistory(history []Promotion, promos []Promotion) []Promotion {
	if len(promos) == 0 && len(history) <= maxPromotionHistory {
		return history
	}
	merged := make([]Promotion, 0, len(history)+len(promos))
	merged = append(merged, history...)
	merged = append(merged, promos...)
	if len(merged) > maxPromotionHistory {
		merged = merged[len(merged)-maxPromotionHistory:]
	}
	return merged
}
