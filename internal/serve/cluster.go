package serve

import (
	"sync/atomic"

	"repro/internal/serve/metrics"
	"repro/internal/trace"
)

// Cluster hooks (DESIGN.md §12): the seams internal/cluster drives. The
// cluster layer wraps the service's HTTP handler for ownership routing
// and runs the WAL-shipping replication loops; everything it applies or
// snapshots goes through the same walMu checkpoint barrier as local
// ingest, so cluster replication inherits the single-node exactly-once
// guarantees unchanged.

// IngestBatchReplica applies a batch of replicated records — frames
// tailed from a peer's sealed WAL segments. It is IngestBatch minus load
// shedding: replication is how a follower stays warm for takeover, so it
// must not be turned away by a refit backlog (the refit scheduler's own
// queue still bounds refit work; a dropped refit mark is recovered by the
// next applied record). The records re-enter this node's own WAL under
// the checkpoint barrier, so a promoted follower recovers replicated
// state from its local log exactly like locally ingested state.
func (s *Service) IngestBatchReplica(records []trace.Attack, payload func(i int) []byte) (BatchResult, error) {
	res, _, err := s.ingestBatch(records, payload, false)
	return res, err
}

// MetricsRegistry exposes the service's Prometheus registry so the
// cluster layer registers its ddosd_cluster_* instruments into the same
// /metrics exposition.
func (s *Service) MetricsRegistry() *metrics.Registry { return s.tel.reg }

// ObserveStage feeds one externally measured stage duration into the
// ddosd_stage_seconds histograms (the cluster router times its proxy hops
// as StageProxy).
func (s *Service) ObserveStage(stage string, seconds float64) {
	s.tel.observeStage(stage, seconds)
}

// SetClusterInfo installs the /healthz cluster section provider: node
// identity, ring epoch, peer count, replication lag. fn must be safe for
// concurrent use; nil detaches.
func (s *Service) SetClusterInfo(fn func() any) {
	if fn == nil {
		s.clusterInfo.Store((*func() any)(nil))
		return
	}
	s.clusterInfo.Store(&fn)
}

func (s *Service) clusterInfoValue() any {
	fn := s.clusterInfo.Load()
	if fn == nil || *fn == nil {
		return nil
	}
	return (*fn)()
}

// clusterInfoHook is the atomic holder behind SetClusterInfo.
type clusterInfoHook = atomic.Pointer[func() any]

// CheckpointSnapshot forces a durable checkpoint and returns its content:
// the covered WAL cut line and the full per-target store image. This is
// the owner side of the replication catch-up fallback — when a follower's
// cursor points below the oldest retained segment (compaction won the
// race), it installs this image and resumes tailing at CoveredSeq+1.
func (s *Service) CheckpointSnapshot() (coveredSeq uint64, targets []TargetCheckpoint, err error) {
	return s.checkpointWAL()
}

// InstallCheckpoint merges a peer's checkpointed targets into the store
// (keep selects which — the follower keeps only targets it follows for
// that peer), re-queues refits so the registry republishes models for
// them, and checkpoints locally so the installed state is durable before
// the install is acknowledged.
func (s *Service) InstallCheckpoint(targets []TargetCheckpoint, keep func(tc *TargetCheckpoint) bool) (int, error) {
	kept := targets[:0:0]
	for i := range targets {
		if keep == nil || keep(&targets[i]) {
			kept = append(kept, targets[i])
		}
	}
	if len(kept) == 0 {
		return 0, nil
	}
	// Restore holds each shard lock while swapping the target in; the
	// checkpoint barrier below then makes the merged image durable.
	s.store.Restore(kept)
	for i := range kept {
		if len(kept[i].Attacks) >= s.cfg.MinWindow {
			s.sched.TryEnqueue(kept[i].AS)
		}
	}
	if s.walRef.Load() != nil {
		if err := s.CheckpointWAL(); err != nil {
			return len(kept), err
		}
	}
	return len(kept), nil
}

// RequeueRefits re-enqueues a refit for every target with enough history
// and waits for the models to publish — the promotion step that makes a
// freshly promoted follower serve /forecast for its newly owned targets
// immediately.
func (s *Service) RequeueRefits() int {
	n := 0
	for _, as := range s.store.Targets() {
		if window, _ := s.store.Window(as); len(window) >= s.cfg.MinWindow {
			if s.sched.TryEnqueue(as) {
				n++
			}
		}
	}
	s.sched.Flush()
	return n
}
