package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/obs"
)

// Tests for the observability wiring: score-then-append accuracy
// semantics, the cached score predictions' agreement with the serving
// forecast, pipeline trace trees, and the ingest hot path's allocation
// budget.

func TestScorePredsMatchForecast(t *testing.T) {
	for _, tc := range []struct {
		name    string
		st      bool
		records int
	}{
		{"components-only", false, 12},
		{"st-engaged", true, 40},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig()
			if tc.st {
				cfg.MinSTWindow = 24
			}
			svc := New(cfg)
			defer svc.Close()
			attacks := mkAttacks(64512, 0, tc.records)
			for i := range attacks {
				if _, err := svc.Ingest(&attacks[i]); err != nil {
					t.Fatal(err)
				}
			}
			svc.Flush()
			tm, ok := svc.reg.Lookup(64512)
			if !ok {
				t.Fatal("no published models after flush")
			}
			if tc.st && tm.ST == nil {
				t.Fatal("spatiotemporal tree did not engage")
			}
			fc, err := svc.Forecast(64512)
			if err != nil {
				t.Fatal(err)
			}
			p := tm.preds()
			// The served ("st") prediction must be byte-identical to what
			// /forecast returns, tree or no tree.
			if p.STMag != fc.Magnitude || p.STDur != fc.DurationSec ||
				p.STHour != fc.Hour || p.STDay != fc.Day {
				t.Fatalf("scorePreds ST (%v %v %v %v) != forecast (%v %v %v %v)",
					p.STMag, p.STDur, p.STHour, p.STDay,
					fc.Magnitude, fc.DurationSec, fc.Hour, fc.Day)
			}
			// Component predictions come straight from the fitted models.
			if p.TmpHour != tm.Temporal.PredictHour() || p.TmpDay != tm.Temporal.PredictDay() ||
				p.TmpMag != tm.Temporal.PredictMagnitude() {
				t.Fatalf("temporal preds drifted: %+v", p)
			}
			if p.SpaDur != tm.Spatial.PredictDuration() || p.SpaHour != tm.Spatial.PredictHour() ||
				p.SpaDay != tm.Spatial.PredictDay() {
				t.Fatalf("spatial preds drifted: %+v", p)
			}
		})
	}
}

func TestIngestScoringSemantics(t *testing.T) {
	svc := New(testConfig())
	defer svc.Close()
	acc := svc.Accuracy()
	attacks := mkAttacks(64512, 0, 12)

	// First record for a fresh target: nothing to score against.
	if _, err := svc.Ingest(&attacks[0]); err != nil {
		t.Fatal(err)
	}
	if got := acc.Summary(ModelAlwaysSame).Samples; got != 0 {
		t.Fatalf("first record scored %d times, want 0", got)
	}

	// Second in-order record: baselines score, model kinds do not (no
	// forecast was published before it arrived).
	if _, err := svc.Ingest(&attacks[1]); err != nil {
		t.Fatal(err)
	}
	if got := acc.Summary(ModelAlwaysSame).Samples; got != 1 {
		t.Fatalf("always_same scored %d, want 1", got)
	}
	if got := acc.Summary(ModelAlwaysMean).Samples; got != 1 {
		t.Fatalf("always_mean scored %d, want 1", got)
	}
	if got := acc.Summary(ModelST).Samples; got != 0 {
		t.Fatalf("st scored %d before any publish, want 0", got)
	}

	// A duplicate is dropped before scoring.
	if ok, _ := svc.Ingest(&attacks[1]); ok {
		t.Fatal("duplicate accepted")
	}
	if got := acc.Summary(ModelAlwaysSame).Samples; got != 1 {
		t.Fatalf("duplicate scored: samples %d, want 1", got)
	}

	// An out-of-order (backfilled) record was never "the next attack" any
	// forecast predicted: appended, not scored.
	if _, err := svc.Ingest(&attacks[3]); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Ingest(&attacks[2]); err != nil { // starts before [3]
		t.Fatal(err)
	}
	if got := acc.Summary(ModelAlwaysSame).Samples; got != 2 {
		t.Fatalf("out-of-order record scored: samples %d, want 2", got)
	}

	// Publish models, then stream in-order arrivals: every model kind
	// scores, and the NaN measures stay skipped (the temporal model has no
	// duration output, the spatial model no magnitude output).
	for i := 4; i < len(attacks); i++ {
		if _, err := svc.Ingest(&attacks[i]); err != nil {
			t.Fatal(err)
		}
	}
	svc.Flush()
	last := attacks[len(attacks)-1].Start
	more := mkAttacks(64512, 100, 6)
	for i := range more {
		more[i].Start = last.Add(time.Duration(i+1) * 3 * time.Hour)
		if _, err := svc.Ingest(&more[i]); err != nil {
			t.Fatal(err)
		}
	}
	for _, model := range []string{ModelTemporal, ModelSpatial, ModelST} {
		if got := acc.Summary(model).Samples; got < uint64(len(more)) {
			t.Fatalf("%s scored %d arrivals, want >= %d", model, got, len(more))
		}
	}
	if got := acc.Summary(ModelTemporal).Duration.Samples; got != 0 {
		t.Fatalf("temporal duration scored %d times despite NaN prediction", got)
	}
	if got := acc.Summary(ModelSpatial).Magnitude.Samples; got != 0 {
		t.Fatalf("spatial magnitude scored %d times despite NaN prediction", got)
	}
	if got := acc.Summary(ModelST).Magnitude.Samples; got == 0 {
		t.Fatal("st magnitude never scored")
	}

	// The snapshot carries every registered model kind.
	snap := acc.Snapshot()
	for _, model := range accuracyModels() {
		if _, ok := snap.Models[model]; !ok {
			t.Fatalf("snapshot missing model %q", model)
		}
	}
}

func TestScoreArrivalDoesNotAllocate(t *testing.T) {
	svc := New(testConfig())
	defer svc.Close()
	attacks := mkAttacks(64512, 0, 12)
	for i := range attacks {
		if _, err := svc.Ingest(&attacks[i]); err != nil {
			t.Fatal(err)
		}
	}
	svc.Flush()
	tm, ok := svc.reg.Lookup(64512)
	if !ok {
		t.Fatal("no published models")
	}
	tm.preds() // warm the per-generation prediction cache
	prev := PrevStats{
		N: 5, LastStart: attacks[10].Start, LastMag: 4, LastDur: 660,
		MeanMag: 5, MeanDur: 700, MeanHour: 9, MeanDay: 2,
	}
	a := attacks[11]
	if n := testing.AllocsPerRun(200, func() {
		svc.scoreArrival(tm, true, prev, &a)
	}); n != 0 {
		t.Fatalf("scoreArrival allocates %v times per call, want 0", n)
	}
}

func BenchmarkIngestScoring(b *testing.B) {
	svc := New(testConfig())
	defer svc.Close()
	attacks := mkAttacks(64512, 0, 12)
	for i := range attacks {
		if _, err := svc.Ingest(&attacks[i]); err != nil {
			b.Fatal(err)
		}
	}
	svc.Flush()
	tm, ok := svc.reg.Lookup(64512)
	if !ok {
		b.Fatal("no published models")
	}
	prev := PrevStats{
		N: 5, LastStart: attacks[10].Start, LastMag: 4, LastDur: 660,
		MeanMag: 5, MeanDur: 700, MeanHour: 9, MeanDay: 2,
	}
	a := attacks[11]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svc.scoreArrival(tm, true, prev, &a)
	}
}

func TestPipelineTracesAndStageHistograms(t *testing.T) {
	svc := New(testConfig())
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	resp := postAttacks(t, srv.URL, mkAttacks(64512, 0, 12))
	resp.Body.Close()
	svc.Flush()
	fr, err := http.Get(srv.URL + "/forecast?target=64512")
	if err != nil {
		t.Fatal(err)
	}
	fr.Body.Close()

	roots := map[string]obs.SpanJSON{}
	for _, tr := range svc.Tracer().Snapshot() {
		if _, seen := roots[tr.Name]; !seen {
			roots[tr.Name] = tr
		}
	}
	ing, ok := roots[StageIngest]
	if !ok {
		t.Fatalf("no ingest trace recorded; roots: %v", keys(roots))
	}
	children := map[string]bool{}
	for _, c := range ing.Children {
		children[c.Name] = true
	}
	for _, want := range []string{StageAppend, StageScore, StageSchedule} {
		if !children[want] {
			t.Fatalf("ingest trace missing %q child: %+v", want, ing)
		}
	}
	ref, ok := roots[StageRefit]
	if !ok {
		t.Fatalf("no refit trace recorded; roots: %v", keys(roots))
	}
	var fits, publishes int
	for _, c := range ref.Children {
		switch c.Name {
		case StageFit:
			fits++
		case StagePublish:
			publishes++
		}
	}
	if fits < 1 || publishes != 1 {
		t.Fatalf("refit trace has %d fit / %d publish children: %+v", fits, publishes, ref)
	}
	if _, ok := roots[StageForecast]; !ok {
		t.Fatalf("no forecast trace recorded; roots: %v", keys(roots))
	}

	// Stage histograms observed each stage at least once; the attached
	// (pre-measured) ingest children must not double-count: append was
	// observed once per record, not once more per request.
	counts := map[string]uint64{}
	for stage, h := range svc.tel.stages {
		counts[stage] = h.Count()
	}
	for _, stage := range []string{StageIngest, StageAppend, StageScore, StageSchedule, StageFit, StagePublish, StageRefit, StageForecast} {
		if counts[stage] == 0 {
			t.Fatalf("stage %q never observed: %v", stage, counts)
		}
	}
	if counts[StageAppend] != 12 {
		t.Fatalf("append observed %d times for 12 records (Attach double-count?)", counts[StageAppend])
	}
	if counts[StageIngest] != 1 {
		t.Fatalf("ingest observed %d times for 1 request", counts[StageIngest])
	}
}

func TestObservabilityEndpoints(t *testing.T) {
	svc := New(testConfig())
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	resp := postAttacks(t, srv.URL, mkAttacks(64512, 0, 12))
	resp.Body.Close()
	svc.Flush()

	ar, err := http.Get(srv.URL + "/accuracy")
	if err != nil {
		t.Fatal(err)
	}
	snap := decodeBody[obs.AccuracySnapshot](t, ar)
	if len(snap.Models) != len(accuracyModels()) {
		t.Fatalf("/accuracy models %v, want %d kinds", snap.Models, len(accuracyModels()))
	}
	if snap.Models[ModelAlwaysSame].Samples == 0 {
		t.Fatal("/accuracy shows zero always_same samples after 12 in-order records")
	}

	tr, err := http.Get(srv.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	traces := decodeBody[obs.TracesSnapshot](t, tr)
	if len(traces.Traces) == 0 {
		t.Fatal("/debug/traces empty after traffic")
	}
	found := false
	for _, root := range traces.Traces {
		if root.Name == StageIngest && len(root.Children) > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("/debug/traces has no complete ingest span tree")
	}

	br, err := http.Get(srv.URL + "/buildinfo")
	if err != nil {
		t.Fatal(err)
	}
	var bi obs.BuildInfoJSON
	if err := json.NewDecoder(br.Body).Decode(&bi); err != nil {
		t.Fatal(err)
	}
	br.Body.Close()
	if bi.GoVersion == "" {
		t.Fatal("/buildinfo missing go version")
	}
}

func keys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
