package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/astopo"
	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/trace"
)

// testConfig keeps refits cheap: tiny NAR grid, few epochs, short windows.
func testConfig() Config {
	return Config{
		Shards:      4,
		Window:      64,
		MinWindow:   6,
		MinSTWindow: 1 << 20, // no spatiotemporal tree unless a test opts in
		RefitEvery:  4,
		QueueDepth:  64,
		BatchSize:   8,
		Seed:        7,
		Temporal:    core.TemporalConfig{MaxP: 1, MaxQ: 1},
		Spatial: core.SpatialConfig{
			Delays: []int{2},
			Hidden: []int{2},
			Train:  nn.TrainConfig{Epochs: 10},
		},
	}
}

// mkAttacks builds n chronological attacks on one target, IDs starting at
// idBase+1.
func mkAttacks(as astopo.AS, idBase, n int) []trace.Attack {
	t0 := time.Date(2012, 8, 1, 0, 0, 0, 0, time.UTC)
	out := make([]trace.Attack, n)
	for i := range out {
		out[i] = trace.Attack{
			ID:          idBase + i + 1,
			Family:      "DirtJumper",
			Start:       t0.Add(time.Duration(i) * 3 * time.Hour),
			DurationSec: float64(600 + 60*(i%5)),
			TargetIP:    astopo.IPv4(uint32(as)<<8 | uint32(i)),
			TargetAS:    as,
			Bots:        make([]astopo.IPv4, 3+i%5),
		}
	}
	return out
}

func postAttacks(t *testing.T, url string, attacks []trace.Attack) *http.Response {
	t.Helper()
	body, err := json.Marshal(attacks)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return v
}

// --- store ---------------------------------------------------------------

func TestStoreShardRounding(t *testing.T) {
	if got := NewStore(5, 8).Shards(); got != 8 {
		t.Fatalf("Shards() = %d, want 8", got)
	}
	if got := NewStore(0, 8).Shards(); got != 1 {
		t.Fatalf("Shards() = %d, want 1", got)
	}
}

func TestStoreDedupAndOrder(t *testing.T) {
	s := NewStore(4, 16)
	attacks := mkAttacks(64512, 0, 3)
	// Ingest out of order: 2, 0, 1.
	for _, i := range []int{2, 0, 1} {
		if _, _, ok := s.Ingest(&attacks[i]); !ok {
			t.Fatalf("record %d not accepted", i)
		}
	}
	if _, _, ok := s.Ingest(&attacks[1]); ok {
		t.Fatal("duplicate ID accepted")
	}
	window, total := s.Window(64512)
	if total != 3 || len(window) != 3 {
		t.Fatalf("window %d total %d, want 3/3", len(window), total)
	}
	for i := 1; i < len(window); i++ {
		if window[i].Start.Before(window[i-1].Start) {
			t.Fatal("window not chronological")
		}
	}
}

func TestStoreWindowTrim(t *testing.T) {
	s := NewStore(1, 4)
	attacks := mkAttacks(64512, 0, 6)
	for i := range attacks {
		s.Ingest(&attacks[i])
	}
	window, total := s.Window(64512)
	if len(window) != 4 {
		t.Fatalf("window %d, want 4 (trimmed)", len(window))
	}
	if total != 6 {
		t.Fatalf("total %d, want 6", total)
	}
	if window[0].ID != 3 || window[3].ID != 6 {
		t.Fatalf("window kept IDs %d..%d, want the latest 3..6", window[0].ID, window[3].ID)
	}
}

func TestStoreMarkRefitted(t *testing.T) {
	s := NewStore(1, 16)
	attacks := mkAttacks(64512, 0, 5)
	var since int
	for i := range attacks {
		since, _, _ = s.Ingest(&attacks[i])
	}
	if since != 5 {
		t.Fatalf("sinceRefit %d, want 5", since)
	}
	s.MarkRefitted(64512, 3)
	more := mkAttacks(64512, 100, 1)
	more[0].Start = attacks[4].Start.Add(time.Hour)
	since, _, _ = s.Ingest(&more[0])
	if since != 3 {
		t.Fatalf("sinceRefit after partial mark %d, want 3 (5-3+1)", since)
	}
}

// --- registry ------------------------------------------------------------

func TestRegistryUnknownTarget(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Forecast(1); !errors.Is(err, ErrUnknownTarget) {
		t.Fatalf("err = %v, want ErrUnknownTarget", err)
	}
}

func TestRegistrySnapshotSwapConsistency(t *testing.T) {
	cfg := testConfig().withDefaults()
	r := NewRegistry()
	tm1, err := fitTarget(64512, mkAttacks(64512, 0, 12), 12, r.NextGeneration(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.Publish([]*TargetModels{tm1})
	v1 := r.Version()
	fc1, err := r.Forecast(64512)
	if err != nil {
		t.Fatal(err)
	}

	// Publish a second generation; the old forecast value must be
	// reproducible from the snapshot it came from, and the new one must
	// carry the bumped version and generation.
	tm2, err := fitTarget(64512, mkAttacks(64512, 100, 16), 28, r.NextGeneration(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.Publish([]*TargetModels{tm2})
	if r.Version() != v1+1 {
		t.Fatalf("version %d, want %d", r.Version(), v1+1)
	}
	fc2, err := r.Forecast(64512)
	if err != nil {
		t.Fatal(err)
	}
	if fc2.ModelGeneration <= fc1.ModelGeneration {
		t.Fatalf("generation did not advance: %d -> %d", fc1.ModelGeneration, fc2.ModelGeneration)
	}
	if fc2.SnapshotVersion != fc1.SnapshotVersion+1 {
		t.Fatalf("snapshot version %d -> %d, want +1", fc1.SnapshotVersion, fc2.SnapshotVersion)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	cfg := testConfig().withDefaults()
	r := NewRegistry()
	var batch []*TargetModels
	for i, as := range []astopo.AS{64512, 64513, 64514} {
		tm, err := fitTarget(as, mkAttacks(as, i*100, 12), 12, r.NextGeneration(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		batch = append(batch, tm)
	}
	r.Publish(batch)

	var buf bytes.Buffer
	if err := r.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	r2 := NewRegistry()
	if err := r2.ReadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if r2.Version() != r.Version() || r2.Size() != r.Size() {
		t.Fatalf("restored version/size %d/%d, want %d/%d", r2.Version(), r2.Size(), r.Version(), r.Size())
	}
	for _, as := range r.Targets() {
		want, err := r.Forecast(as)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r2.Forecast(as)
		if err != nil {
			t.Fatalf("restored registry AS%d: %v", as, err)
		}
		// JSON comparison sidesteps monotonic-clock noise in time fields.
		wj, _ := json.Marshal(want)
		gj, _ := json.Marshal(got)
		if !bytes.Equal(wj, gj) {
			t.Fatalf("AS%d forecast diverged after round trip:\n  want %s\n  got  %s", as, wj, gj)
		}
	}
	// New fits after a restore must not reuse generation numbers.
	if g := r2.NextGeneration(); g <= batch[len(batch)-1].Generation {
		t.Fatalf("generation %d not past restored max %d", g, batch[len(batch)-1].Generation)
	}
}

func TestReadSnapshotRejectsPartialTargets(t *testing.T) {
	r := NewRegistry()
	err := r.ReadSnapshot(strings.NewReader(`{"version":1,"targets":[{"as":5,"family":"x"}]}`))
	if err == nil || !strings.Contains(err.Error(), "missing models") {
		t.Fatalf("err = %v, want missing-models rejection", err)
	}
}

// --- scheduler admission (no run loop: deterministic) --------------------

func TestSchedulerBackpressure(t *testing.T) {
	cfg := testConfig().withDefaults()
	cfg.QueueDepth = 2
	cfg.LagWatermark = 1
	tel := newTelemetry(nil)
	// Construct without newScheduler so no drain loop runs.
	s := &scheduler{
		store:   NewStore(cfg.Shards, cfg.Window),
		reg:     NewRegistry(),
		cfg:     cfg,
		tel:     tel,
		queue:   make(chan astopo.AS, cfg.QueueDepth),
		pending: make(map[astopo.AS]bool),
	}
	if s.Overloaded() {
		t.Fatal("empty scheduler overloaded")
	}
	if !s.TryEnqueue(1) || !s.TryEnqueue(1) {
		t.Fatal("enqueue/coalesce failed")
	}
	if s.Lag() != 1 {
		t.Fatalf("coalesced lag %d, want 1", s.Lag())
	}
	if !s.TryEnqueue(2) {
		t.Fatal("second target rejected with queue space left")
	}
	if !s.Overloaded() {
		t.Fatal("lag 2 > watermark 1 should shed")
	}
	if s.TryEnqueue(3) {
		t.Fatal("full queue accepted a third target")
	}
	if tel.refitsDropped.Value() != 1 {
		t.Fatalf("dropped counter %d, want 1", tel.refitsDropped.Value())
	}
}

func TestIngestShedsOverWatermark(t *testing.T) {
	cfg := testConfig().withDefaults()
	svc := New(cfg)
	defer svc.Close()
	svc.sched.lag.Store(int64(cfg.LagWatermark) + 1) // simulate backlog
	a := mkAttacks(64512, 0, 1)
	if _, err := svc.Ingest(&a[0]); !errors.Is(err, ErrShedding) {
		t.Fatalf("err = %v, want ErrShedding", err)
	}
	svc.sched.lag.Store(0)

	// The HTTP layer maps it to 429 with Retry-After.
	svcShed := New(cfg)
	defer svcShed.Close()
	svcShed.sched.lag.Store(int64(cfg.LagWatermark) + 1)
	srv := httptest.NewServer(svcShed.Handler())
	defer srv.Close()
	resp := postAttacks(t, srv.URL, a)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	svcShed.sched.lag.Store(0)
}

// --- validation ----------------------------------------------------------

func TestValidateRecord(t *testing.T) {
	good := mkAttacks(64512, 0, 1)[0]
	cases := []struct {
		name   string
		mutate func(*trace.Attack)
	}{
		{"missing id", func(a *trace.Attack) { a.ID = 0 }},
		{"missing family", func(a *trace.Attack) { a.Family = "" }},
		{"missing start", func(a *trace.Attack) { a.Start = time.Time{} }},
		{"negative duration", func(a *trace.Attack) { a.DurationSec = -1 }},
		{"missing target_as", func(a *trace.Attack) { a.TargetAS = 0 }},
	}
	if err := ValidateRecord(&good); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	for _, tc := range cases {
		a := good
		tc.mutate(&a)
		if err := ValidateRecord(&a); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// --- end to end ----------------------------------------------------------

func TestEndToEndIngestRefitForecast(t *testing.T) {
	svc := New(testConfig())
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	const target = astopo.AS(64512)
	attacks := mkAttacks(target, 0, 16)

	// Below MinWindow: records accepted but no model yet.
	resp := postAttacks(t, srv.URL, attacks[:3])
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	if res := decodeBody[IngestResult](t, resp); res.Ingested != 3 {
		t.Fatalf("ingested %d, want 3", res.Ingested)
	}
	svc.Flush()
	resp, err := http.Get(srv.URL + "/forecast?target=64512")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("warming-up status %d, want 404", resp.StatusCode)
	}
	if e := decodeBody[map[string]string](t, resp); !strings.Contains(e["error"], "warming up") {
		t.Fatalf("warming-up error %q", e["error"])
	}

	// Rest of the window, including a duplicate batch.
	resp = postAttacks(t, srv.URL, attacks)
	res := decodeBody[IngestResult](t, resp)
	if res.Ingested != 13 || res.Duplicates != 3 {
		t.Fatalf("ingested/duplicates %d/%d, want 13/3", res.Ingested, res.Duplicates)
	}
	svc.Flush()

	resp, err = http.Get(srv.URL + "/forecast?target=64512")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forecast status %d, want 200", resp.StatusCode)
	}
	fc := decodeBody[Forecast](t, resp)
	if fc.TargetAS != target || fc.Family != "DirtJumper" {
		t.Fatalf("forecast identity %+v", fc)
	}
	if fc.Hour < 0 || fc.Hour >= 24 || fc.Day < 1 || fc.Day > 31 {
		t.Fatalf("forecast hour/day out of range: %v/%v", fc.Hour, fc.Day)
	}
	if fc.DurationSec < 0 || fc.Magnitude < 0 || fc.IntervalSec < 0 {
		t.Fatalf("negative forecast values: %+v", fc)
	}
	last := attacks[len(attacks)-1].Start
	if !fc.NextStart.After(last) {
		t.Fatalf("next start %v not after last attack %v", fc.NextStart, last)
	}
	if fc.Models.Temporal.Interval.Kind == "" || fc.Models.Spatial.Duration.Kind == "" {
		t.Fatalf("missing model descriptors: %+v", fc.Models)
	}

	// Unknown target.
	resp, err = http.Get(srv.URL + "/forecast?target=999")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown-target status %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()

	// Bad target parameter.
	resp, err = http.Get(srv.URL + "/forecast?target=abc")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad-target status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	// Healthz reflects the served target.
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h := decodeBody[Health](t, resp)
	if h.Status != "ok" || h.TargetsKnown != 1 || h.TargetsServed != 1 {
		t.Fatalf("healthz %+v", h)
	}
	if h.SnapshotVersion == 0 {
		t.Fatal("healthz snapshot version 0 after publish")
	}

	// Metrics exposition mentions the ingest counter with the right count.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(raw), "ddosd_ingest_records_total 16") {
		t.Fatalf("metrics missing ingest counter:\n%s", raw)
	}
	if !strings.Contains(string(raw), "ddosd_refits_total") {
		t.Fatalf("metrics missing refit counter:\n%s", raw)
	}
}

func TestIngestRejectsBadRecordsAndMethods(t *testing.T) {
	svc := New(testConfig())
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/ingest")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /ingest status %d, want 405", resp.StatusCode)
	}
	resp.Body.Close()

	bad := mkAttacks(64512, 0, 2)
	bad[1].Family = ""
	resp = postAttacks(t, srv.URL, bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad record status %d, want 400", resp.StatusCode)
	}
	// A mid-batch failure reports what was already committed so the client
	// can resume instead of resending the whole batch.
	e := decodeBody[IngestResult](t, resp)
	if !strings.Contains(e.Error, "record 2") {
		t.Fatalf("bad-record error %q does not locate the record", e.Error)
	}
	if e.Ingested != 1 || e.Duplicates != 0 || e.Rejected != 1 {
		t.Fatalf("error body counts = %+v, want ingested 1, duplicates 0, rejected 1", e)
	}

	// Malformed JSON.
	resp, err = http.Post(srv.URL+"/ingest", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestIngestBatchCap(t *testing.T) {
	cfg := testConfig()
	cfg.MaxBatchRecords = 4
	svc := New(cfg)
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	resp := postAttacks(t, srv.URL, mkAttacks(64512, 0, 5))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch status %d, want 413", resp.StatusCode)
	}
}

func TestSpatiotemporalEngagesOnLongWindows(t *testing.T) {
	cfg := testConfig()
	cfg.MinSTWindow = 24
	cfg.Window = 64
	svc := New(cfg)
	defer svc.Close()

	attacks := mkAttacks(64512, 0, 40)
	for i := range attacks {
		if _, err := svc.Ingest(&attacks[i]); err != nil {
			t.Fatal(err)
		}
	}
	svc.Flush()
	fc, err := svc.Forecast(64512)
	if err != nil {
		t.Fatal(err)
	}
	if fc.Models.Spatiotemporal == nil {
		t.Fatal("spatiotemporal tree did not engage on a 40-record window")
	}
	if fc.Models.Spatiotemporal.Hour.Leaves < 1 {
		t.Fatalf("degenerate hour tree: %+v", fc.Models.Spatiotemporal)
	}
	if fc.Hour < 0 || fc.Hour >= 24 || fc.Day < 1 || fc.Day > 31 || fc.DurationSec < 0 {
		t.Fatalf("ST forecast out of range: %+v", fc)
	}
}

func TestWarmStart(t *testing.T) {
	svc := New(testConfig())
	defer svc.Close()
	a := mkAttacks(64512, 0, 12)
	a = append(a, mkAttacks(64513, 100, 12)...)
	ds, err := trace.New(a)
	if err != nil {
		t.Fatal(err)
	}
	n, err := svc.WarmStart(ds)
	if err != nil {
		t.Fatal(err)
	}
	if n != 24 {
		t.Fatalf("warm start ingested %d, want 24", n)
	}
	for _, as := range []astopo.AS{64512, 64513} {
		if _, err := svc.Forecast(as); err != nil {
			t.Fatalf("AS%d not served after warm start: %v", as, err)
		}
	}
}

// TestForecastHotPathDoesNotRefit pins the acceptance criterion that the
// forecast path never fits models: with the scheduler stopped, repeated
// forecasts leave the refit counter and snapshot version unchanged.
func TestForecastHotPathDoesNotRefit(t *testing.T) {
	svc := New(testConfig())
	a := mkAttacks(64512, 0, 12)
	for i := range a {
		if _, err := svc.Ingest(&a[i]); err != nil {
			t.Fatal(err)
		}
	}
	svc.Flush()
	svc.Close() // scheduler stopped: any further fit would have to happen inline
	refits := svc.tel.refitsDone.Value()
	version := svc.reg.Version()
	for i := 0; i < 100; i++ {
		if _, err := svc.Forecast(64512); err != nil {
			t.Fatal(err)
		}
	}
	if svc.tel.refitsDone.Value() != refits || svc.reg.Version() != version {
		t.Fatal("forecast path triggered refit activity")
	}
}

func TestDominantFamily(t *testing.T) {
	w := []trace.Attack{{Family: "b"}, {Family: "a"}, {Family: "b"}, {Family: "a"}}
	if f := dominantFamily(w); f != "a" {
		t.Fatalf("tie broke to %q, want lexicographic winner \"a\"", f)
	}
	w = append(w, trace.Attack{Family: "b"})
	if f := dominantFamily(w); f != "b" {
		t.Fatalf("dominant %q, want \"b\"", f)
	}
}
