package serve_test

// The soak/regression gate for the serving stack (DESIGN.md §8): loadgen
// traffic perturbed by every chaos stream fault, refits slowed and failed
// by the chaos refit injector, concurrent forecast readers — all under
// -race in CI's soak-short lane. The assertions are the harness's
// correctness contract:
//
//  1. every forecast served during the storm is finite and in range;
//  2. provenance stays consistent across registry swaps (snapshot version
//     and per-target generation never move backwards, fit metadata is
//     coherent);
//  3. 429-style shedding engages under refit backlog and recovers once the
//     injected faults stop;
//  4. a corrupted snapshot load fails cleanly without touching the
//     published registry.
//
// The test is -short-guarded: `go test -short` (the race lane over the
// whole repo) skips it, while the dedicated soak-short CI job runs it via
// `go test -race -run TestSoak` with a scaled-up record budget.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"net/http"
	"net/http/httptest"

	"repro/internal/astopo"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/loadgen"
	"repro/internal/nn"
	"repro/internal/serve"
	"repro/internal/trace"
	"repro/internal/wal"
)

// finiteForecast returns an error naming the first non-finite or
// out-of-range field.
func finiteForecast(fc *serve.Forecast) error {
	fields := map[string]float64{
		"interval_sec": fc.IntervalSec,
		"hour":         fc.Hour,
		"day":          fc.Day,
		"duration_sec": fc.DurationSec,
		"magnitude":    fc.Magnitude,
	}
	for name, v := range fields {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%s is %v", name, v)
		}
	}
	if fc.Hour < 0 || fc.Hour >= 24 {
		return fmt.Errorf("hour %v out of [0,24)", fc.Hour)
	}
	if fc.Day < 1 || fc.Day > 31 {
		return fmt.Errorf("day %v out of [1,31]", fc.Day)
	}
	if fc.IntervalSec < 0 || fc.DurationSec < 0 || fc.Magnitude < 0 {
		return fmt.Errorf("negative forecast value: %+v", fc)
	}
	return nil
}

// provenanceError checks fit metadata coherence.
func provenanceError(fc *serve.Forecast, as astopo.AS) error {
	switch {
	case fc.TargetAS != as:
		return fmt.Errorf("forecast for AS%d answered AS%d", as, fc.TargetAS)
	case fc.ModelGeneration == 0:
		return errors.New("zero model generation")
	case fc.WindowSize <= 0:
		return fmt.Errorf("window size %d", fc.WindowSize)
	case fc.Observations < uint64(fc.WindowSize):
		return fmt.Errorf("observations %d below window %d", fc.Observations, fc.WindowSize)
	case fc.FittedAt.IsZero():
		return errors.New("zero FittedAt")
	case fc.Family == "":
		return errors.New("empty family")
	}
	return nil
}

func TestSoakLoadChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("soak: skipped in -short mode (the soak-short CI lane runs it with -race)")
	}

	const (
		targets = 8
		records = 12000
		readers = 3
	)
	refitFaults := &chaos.RefitFaults{
		Seed:      7,
		SlowProb:  0.6,
		Delay:     8 * time.Millisecond,
		FailProb:  0.2,
		MaxFaults: 80, // cap so shedding can recover at the tail
	}
	cfg := serve.Config{
		Shards:       4,
		Window:       64,
		MinWindow:    6,
		MinSTWindow:  32, // the spatiotemporal tree engages mid-soak
		RefitEvery:   2,
		QueueDepth:   8,
		LagWatermark: 4,
		BatchSize:    4,
		Seed:         7,
		Temporal:     core.TemporalConfig{MaxP: 1, MaxQ: 1},
		Spatial: core.SpatialConfig{
			Delays: []int{2},
			Hidden: []int{2},
			Train:  nn.TrainConfig{Epochs: 8},
		},
		WrapFit: refitFaults.Wrap,
		Detect:  &detect.Config{AlertCap: 1024},
	}
	svc := serve.New(cfg)
	defer svc.Close()

	// Half the targets run labeled attack bursts so the detection tier has
	// something real to raise on — and clear after — through all the
	// stream chaos below.
	gen := loadgen.NewGenerator(loadgen.GenConfig{
		Targets: targets, Seed: 13, TimeCompress: 24,
		Burst: loadgen.BurstConfig{
			Every: 30 * time.Minute, Len: 2 * time.Minute,
			Gap: 500 * time.Millisecond, Targets: targets / 2,
		},
	})
	streamFaults := &chaos.StreamFaults{
		Seed: 13, DropProb: 0.03, DupProb: 0.05, ReorderProb: 0.08,
		SkewProb: 0.1, SkewMax: 2 * time.Hour,
	}
	src := streamFaults.Stream(gen.Next)

	// Concurrent forecast readers assert finiteness and monotone
	// provenance for the whole run.
	var (
		stop     = make(chan struct{})
		wg       sync.WaitGroup
		served   atomic.Int64
		readerMu sync.Mutex
		readErr  error
	)
	fail := func(err error) {
		readerMu.Lock()
		if readErr == nil {
			readErr = err
		}
		readerMu.Unlock()
	}
	fanout := gen.Targets()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var lastVersion uint64
			lastGen := make(map[astopo.AS]uint64)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				as := fanout[(r+i)%len(fanout)]
				fc, err := svc.Forecast(as)
				if err != nil {
					continue // not yet published
				}
				served.Add(1)
				if err := finiteForecast(fc); err != nil {
					fail(fmt.Errorf("reader %d AS%d: %w", r, as, err))
					return
				}
				if err := provenanceError(fc, as); err != nil {
					fail(fmt.Errorf("reader %d AS%d: %w", r, as, err))
					return
				}
				if fc.SnapshotVersion < lastVersion {
					fail(fmt.Errorf("snapshot version went backwards: %d -> %d", lastVersion, fc.SnapshotVersion))
					return
				}
				lastVersion = fc.SnapshotVersion
				if g := lastGen[as]; fc.ModelGeneration < g {
					fail(fmt.Errorf("AS%d generation went backwards: %d -> %d", as, g, fc.ModelGeneration))
					return
				}
				lastGen[as] = fc.ModelGeneration
			}
		}(r)
	}

	// Phase 1: the storm. Open loop paces the run so refits, faults, and
	// reads interleave rather than the whole load landing in one burst.
	rep, err := loadgen.Run(loadgen.Config{
		Mode: loadgen.OpenLoop, Records: records, Workers: 4,
		Rate: 6000, RateEnd: 18000,
	}, src, loadgen.ServiceSink{Svc: svc})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d sink errors during the storm", rep.Errors)
	}
	if rep.Shed == 0 {
		t.Fatalf("shedding never engaged under slowed refits (report:\n%s)", rep)
	}
	if rep.Accepted == 0 {
		t.Fatal("no records accepted during the storm")
	}

	// Phase 2: recovery. Faults are capped out; the backlog must drain and
	// ingest must come back without shedding.
	svc.Flush()
	recovered := false
	fresh := gen.Next()
	for attempt := 0; attempt < 100; attempt++ {
		if _, err := svc.Ingest(fresh); !errors.Is(err, serve.ErrShedding) {
			if err != nil {
				t.Fatalf("post-storm ingest failed: %v", err)
			}
			recovered = true
			break
		}
		svc.Flush()
		time.Sleep(time.Millisecond)
	}
	if !recovered {
		t.Fatal("shedding never recovered after the faults capped out")
	}
	svc.Flush()

	// Let the readers hammer the settled registry briefly, then stop them.
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	readerMu.Lock()
	defer readerMu.Unlock()
	if readErr != nil {
		t.Fatal(readErr)
	}
	if served.Load() == 0 {
		t.Fatal("no forecasts served during the soak")
	}

	// Phase 3: every target is served, finite, and coherent at rest.
	for _, as := range fanout {
		fc, err := svc.Forecast(as)
		if err != nil {
			t.Fatalf("AS%d unserved after the soak: %v", as, err)
		}
		if err := finiteForecast(fc); err != nil {
			t.Fatalf("AS%d settled forecast: %v", as, err)
		}
		if err := provenanceError(fc, as); err != nil {
			t.Fatalf("AS%d settled provenance: %v", as, err)
		}
	}
	if refitFaults.Slowed() == 0 || refitFaults.Failed() == 0 {
		t.Fatalf("refit chaos never fired: slowed %d failed %d",
			refitFaults.Slowed(), refitFaults.Failed())
	}

	// Phase 4: snapshot round trip survives the soak; a corrupted load
	// fails cleanly and leaves the published registry untouched.
	var snap bytes.Buffer
	if err := svc.Registry().WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	restored := serve.NewRegistry()
	if err := restored.ReadSnapshot(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatalf("clean snapshot rejected after soak: %v", err)
	}
	if restored.Size() != svc.Registry().Size() {
		t.Fatalf("restored %d targets, want %d", restored.Size(), svc.Registry().Size())
	}

	// Phase 3b: observability survived the storm — the tracer retained
	// complete refit span trees, the accuracy tracker scored arrivals for
	// the baselines (model kinds depend on publish timing; the baselines
	// score every in-order non-first arrival), and the whole accuracy
	// snapshot marshals.
	traces := svc.Tracer().Snapshot()
	if len(traces) == 0 {
		t.Fatal("trace ring empty after the soak")
	}
	completeRefit := false
	for _, root := range traces {
		if root.Name == "refit" && len(root.Children) > 0 {
			completeRefit = true
			break
		}
	}
	if !completeRefit {
		t.Fatal("no complete refit span tree retained after the soak")
	}
	accSnap := svc.Accuracy().Snapshot()
	for _, model := range []string{"always_same", "always_mean"} {
		if accSnap.Models[model].Samples == 0 {
			t.Fatalf("accuracy tracker never scored %s during the soak", model)
		}
	}
	for name, sum := range accSnap.Models {
		for measure, v := range map[string]float64{
			"magnitude": sum.Magnitude.MeanRelErr,
			"duration":  sum.Duration.MeanRelErr,
			"hit_rate":  sum.Timestamp.Rate,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s %s error is %v after the soak", name, measure, v)
			}
		}
	}

	// Phase 3c: the detection tier survived the same storm. Bursts must
	// have raised alerts, hysteresis must have cleared some of them (the
	// stream faults skew and reorder right through burst boundaries), the
	// books must balance, and the /alerts endpoint and ddosd_detect_*
	// metrics must expose it all.
	det := svc.Store().Detector()
	if det == nil {
		t.Fatal("detector not attached despite Detect config")
	}
	ds := det.Stats()
	if ds.Raised == 0 || ds.Cleared == 0 {
		t.Fatalf("detect tier never cycled under chaos: %+v", ds)
	}
	if ds.Active < 0 || ds.Active != int64(ds.Raised)-int64(ds.Cleared) {
		t.Fatalf("detect books don't balance: %+v", ds)
	}
	if ds.Records == 0 {
		t.Fatalf("detector observed no records: %+v", ds)
	}
	srv := httptest.NewServer(svc.Handler())
	alertsResp, err := http.Get(srv.URL + "/alerts?limit=16")
	if err != nil {
		t.Fatal(err)
	}
	var alerts serve.AlertsReport
	err = json.NewDecoder(alertsResp.Body).Decode(&alerts)
	alertsResp.Body.Close()
	if err != nil {
		t.Fatalf("/alerts did not parse after the soak: %v", err)
	}
	if !alerts.Enabled || alerts.Stats == nil || len(alerts.Alerts) == 0 {
		t.Fatalf("/alerts report incomplete after the soak: %+v", alerts)
	}
	metricsResp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsBody := new(bytes.Buffer)
	_, err = metricsBody.ReadFrom(metricsResp.Body)
	metricsResp.Body.Close()
	srv.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"ddosd_detect_records_total", "ddosd_detect_alerts_total", "ddosd_detect_active_alerts"} {
		if !strings.Contains(metricsBody.String(), name) {
			t.Fatalf("%s missing from /metrics after the soak", name)
		}
	}

	version, size := svc.Registry().Version(), svc.Registry().Size()
	corrupter := chaos.NewCorrupter(bytes.NewReader(snap.Bytes()), 99, 0.001)
	err = svc.Registry().ReadSnapshot(corrupter)
	if corrupter.Flipped() == 0 {
		t.Fatal("corrupter flipped nothing over the snapshot bytes")
	}
	if err == nil {
		t.Fatal("corrupted snapshot loaded without error")
	}
	if svc.Registry().Version() != version || svc.Registry().Size() != size {
		t.Fatalf("failed snapshot load mutated the registry: version %d->%d size %d->%d",
			version, svc.Registry().Version(), size, svc.Registry().Size())
	}
	for _, as := range fanout {
		if _, err := svc.Forecast(as); err != nil {
			t.Fatalf("AS%d lost after rejected corrupt snapshot: %v", as, err)
		}
	}
}

// mirrorSink feeds the service and keeps a lossless reference copy of
// every record the service actually accepted — the oracle the WAL crash
// test compares the replayed store against.
type mirrorSink struct {
	svc *serve.Service
	ref *serve.Store
}

func (m mirrorSink) Ingest(a *trace.Attack) (loadgen.Result, error) {
	res, err := loadgen.ServiceSink{Svc: m.svc}.Ingest(a)
	if err == nil && res.Accepted {
		m.ref.Ingest(a)
	}
	return res, err
}

// durableImage serializes a store's durable state: the rolling windows
// and totals, with the since-refit scheduler hint zeroed (refit marks are
// not WAL-logged — losing them only makes the next refit come earlier).
func durableImage(t *testing.T, s *serve.Store) []byte {
	t.Helper()
	cp := s.Checkpoint()
	for i := range cp {
		cp[i].SinceRefit = 0
	}
	buf, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestSoakWALCrashRecovery is the end-to-end durability gate: open-loop
// load with stream chaos into a WAL-backed service (interval fsync, tiny
// segments so rotation, background checkpointing, and compaction all
// engage), then an abrupt kill — the WAL directory is imaged as-is, with
// a half-written frame appended, exactly what SIGKILL mid-append leaves
// behind. A fresh service recovering from the image must hold every
// acked record (byte-identical to the lossless reference store) and
// serve forecasts again before it would start listening.
func TestSoakWALCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("soak: skipped in -short mode (the soak-short CI lane runs it with -race)")
	}

	cfg := serve.Config{
		Shards:     4,
		Window:     64,
		MinWindow:  6,
		RefitEvery: 8,
		QueueDepth: 64,
		BatchSize:  8,
		Seed:       7,
		Temporal:   core.TemporalConfig{MaxP: 1, MaxQ: 1},
		Spatial: core.SpatialConfig{
			Delays: []int{2},
			Hidden: []int{2},
			Train:  nn.TrainConfig{Epochs: 8},
		},
	}
	svc := serve.New(cfg)
	defer svc.Close()

	dir := t.TempDir()
	policy, err := wal.ParseSyncPolicy("5ms")
	if err != nil {
		t.Fatal(err)
	}
	w, err := wal.Open(wal.Options{Dir: dir, SegmentBytes: 8 << 10, Sync: policy})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	svc.AttachWAL(w, nil)

	gen := loadgen.NewGenerator(loadgen.GenConfig{Targets: 6, Seed: 17, TimeCompress: 24})
	streamFaults := &chaos.StreamFaults{Seed: 17, DupProb: 0.05, ReorderProb: 0.05}
	src := streamFaults.Stream(gen.Next)

	// Workers: 1 keeps the ack order deterministic so the reference store
	// is an exact oracle, not just a superset.
	ref := serve.NewStore(cfg.Shards, cfg.Window)
	rep, err := loadgen.Run(loadgen.Config{
		Mode: loadgen.OpenLoop, Records: 4000, Workers: 1, Rate: 20000,
	}, src, mirrorSink{svc: svc, ref: ref})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || rep.Accepted == 0 {
		t.Fatalf("load phase: %d errors, %d accepted", rep.Errors, rep.Accepted)
	}
	// Force at least one checkpoint + compaction cycle over the sealed
	// segments the tiny SegmentBytes produced.
	if err := svc.CheckpointWAL(); err != nil {
		t.Fatal(err)
	}
	stats, ok := svc.WALStats()
	if !ok {
		t.Fatal("WAL not attached")
	}
	if stats.ActiveSeq < 2 {
		t.Fatalf("segments never rotated under 8KiB cap: %+v", stats)
	}

	// A second burst after the checkpoint: these records exist only in the
	// WAL tail, so recovery has to merge both sources.
	rep, err = loadgen.Run(loadgen.Config{
		Mode: loadgen.OpenLoop, Records: 500, Workers: 1, Rate: 20000,
	}, src, mirrorSink{svc: svc, ref: ref})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || rep.Accepted == 0 {
		t.Fatalf("post-checkpoint burst: %d errors, %d accepted", rep.Errors, rep.Accepted)
	}

	// The kill: freeze the WAL exactly as it sits on disk (detach stops the
	// background checkpointer but never syncs or checkpoints — the file
	// bytes are a faithful SIGKILL image) and copy it aside with a torn
	// half-frame appended at the tail.
	svc.DetachWAL()
	img := t.TempDir()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var newest string
	for _, e := range entries {
		buf, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(img, e.Name()), buf, 0o644); err != nil {
			t.Fatal(err)
		}
		if strings.HasSuffix(e.Name(), ".wal") {
			newest = filepath.Join(img, e.Name())
		}
	}
	if newest == "" {
		t.Fatal("no WAL segment in the crash image")
	}
	f, err := os.OpenFile(newest, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x42, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	svc2 := serve.New(cfg)
	defer svc2.Close()
	w2, err := wal.Open(wal.Options{Dir: img})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	rs, err := svc2.RecoverWAL(w2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Truncated {
		t.Fatalf("torn tail not reported: %+v", rs)
	}
	if rs.CheckpointTargets == 0 || rs.Replayed == 0 {
		t.Fatalf("recovery exercised only one source: %+v", rs)
	}
	if got, want := durableImage(t, svc2.Store()), durableImage(t, ref); !bytes.Equal(got, want) {
		t.Fatalf("replayed store diverges from the lossless reference (recovery %+v)", rs)
	}
	if rs.Refits == 0 {
		t.Fatalf("no refits re-scheduled after recovery: %+v", rs)
	}
	served := 0
	for _, as := range gen.Targets() {
		if fc, err := svc2.Forecast(as); err == nil {
			if err := finiteForecast(fc); err != nil {
				t.Fatalf("recovered AS%d forecast: %v", as, err)
			}
			served++
		}
	}
	if served == 0 {
		t.Fatal("no target serving forecasts after crash recovery")
	}
}
