package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/astopo"
)

// TestHammerConcurrentIngestForecast drives ingest, forecast, and snapshot
// persistence concurrently while the background scheduler refits, pinning
// two acceptance criteria under -race: zero data races on the hot paths,
// and forecast consistency during refits — every reader sees a fully
// published snapshot (monotone version, matching generation) and never a
// half-swapped one.
func TestHammerConcurrentIngestForecast(t *testing.T) {
	cfg := testConfig()
	cfg.RefitEvery = 2 // maximize swap frequency under load
	cfg.QueueDepth = 1024
	svc := New(cfg)
	defer svc.Close()

	const (
		writers       = 4
		readers       = 4
		targetsPerWkr = 2
		recordsPerTgt = 60
	)
	var (
		wg       sync.WaitGroup
		ingested atomic.Int64
		served   atomic.Int64
	)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < targetsPerWkr; k++ {
				as := astopo.AS(64512 + w*targetsPerWkr + k)
				attacks := mkAttacks(as, int(as)*1000, recordsPerTgt)
				for i := range attacks {
					for {
						_, err := svc.Ingest(&attacks[i])
						if errors.Is(err, ErrShedding) {
							time.Sleep(time.Millisecond)
							continue
						}
						if err != nil {
							t.Errorf("ingest AS%d: %v", as, err)
							return
						}
						ingested.Add(1)
						break
					}
				}
			}
		}(w)
	}

	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var lastVersion uint64
			lastGen := make(map[astopo.AS]uint64)
			for {
				select {
				case <-stop:
					return
				default:
				}
				as := astopo.AS(64512 + r%(writers*targetsPerWkr))
				fc, err := svc.Forecast(as)
				if err != nil {
					continue // not yet published
				}
				served.Add(1)
				if fc.SnapshotVersion < lastVersion {
					t.Errorf("snapshot version went backwards: %d -> %d", lastVersion, fc.SnapshotVersion)
					return
				}
				lastVersion = fc.SnapshotVersion
				if g := lastGen[as]; fc.ModelGeneration < g {
					t.Errorf("AS%d model generation went backwards: %d -> %d", as, g, fc.ModelGeneration)
					return
				}
				lastGen[as] = fc.ModelGeneration
				if fc.TargetAS != as || fc.Hour < 0 || fc.Hour >= 24 || fc.Day < 1 || fc.Day > 31 {
					t.Errorf("inconsistent forecast under load: %+v", fc)
					return
				}
			}
		}(r)
	}

	// One goroutine snapshots the registry concurrently (the shutdown path).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := svc.Registry().WriteSnapshot(discard{}); err != nil {
				t.Errorf("snapshot under load: %v", err)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// Wait for the writers, then let readers observe the final state.
	done := make(chan struct{})
	go func() {
		for ingested.Load() < int64(writers*targetsPerWkr*recordsPerTgt) && !t.Failed() {
			time.Sleep(time.Millisecond)
		}
		svc.Flush()
		close(done)
	}()
	select {
	case <-done:
		// Writers are done and all refits published; give readers a beat to
		// hammer the final snapshot before stopping them.
		time.Sleep(50 * time.Millisecond)
	case <-time.After(30 * time.Second):
		t.Error("hammer timed out")
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	if served.Load() == 0 {
		t.Fatal("no forecasts served during the hammer")
	}
	for as := astopo.AS(64512); as < astopo.AS(64512+writers*targetsPerWkr); as++ {
		if _, err := svc.Forecast(as); err != nil {
			t.Errorf("AS%d unserved after hammer: %v", as, err)
		}
	}
}

// discard is an io.Writer black hole (io.Discard allocates interface
// conversions in tight loops; this keeps the hammer lean).
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
