package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/astopo"
	"repro/internal/trace"
	"repro/internal/wal"
)

// encodeBinaryBatch frames attacks as an application/x-ddos-batch body.
func encodeBinaryBatch(t testing.TB, attacks []trace.Attack) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := trace.NewBatchEncoder(&buf)
	for i := range attacks {
		if err := enc.Encode(&attacks[i]); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func postBinary(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/ingest", trace.BatchContentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestIngestBinaryBatchHTTP(t *testing.T) {
	svc := New(testConfig())
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	attacks := mkAttacks(64512, 0, 10)
	resp := postBinary(t, srv.URL, encodeBinaryBatch(t, attacks))
	res := decodeBody[IngestResult](t, resp)
	if resp.StatusCode != http.StatusOK || res.Ingested != 10 || res.Duplicates != 0 {
		t.Fatalf("binary batch: status %d, result %+v", resp.StatusCode, res)
	}

	// Resending the same batch dedups every record.
	resp = postBinary(t, srv.URL, encodeBinaryBatch(t, attacks))
	res = decodeBody[IngestResult](t, resp)
	if resp.StatusCode != http.StatusOK || res.Ingested != 0 || res.Duplicates != 10 {
		t.Fatalf("replayed batch: status %d, result %+v", resp.StatusCode, res)
	}

	window, total := svc.Store().Window(64512)
	if total != 10 || len(window) != 10 {
		t.Fatalf("store window %d total %d, want 10/10", len(window), total)
	}

	// An empty batch (bare magic, or empty body) is zero records, HTTP 200.
	resp = postBinary(t, srv.URL, nil)
	res = decodeBody[IngestResult](t, resp)
	if resp.StatusCode != http.StatusOK || res.Ingested != 0 {
		t.Fatalf("empty batch: status %d, result %+v", resp.StatusCode, res)
	}
}

func TestIngestBinaryBatchRejectsCorruptFrames(t *testing.T) {
	svc := New(testConfig())
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	body := encodeBinaryBatch(t, mkAttacks(64512, 0, 4))
	mut := bytes.Clone(body)
	mut[len(mut)-1] ^= 0x01 // corrupt the last record's payload

	resp := postBinary(t, srv.URL, mut)
	res := decodeBody[IngestResult](t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt batch status %d, want 400", resp.StatusCode)
	}
	// Decode-all-then-apply: a corrupt frame aborts the batch before
	// anything reaches the store, and the error names the frame.
	if res.Ingested != 0 || res.Duplicates != 0 || res.Rejected != 0 {
		t.Fatalf("corrupt batch committed records: %+v", res)
	}
	if !strings.Contains(res.Error, "record 4") {
		t.Fatalf("error %q does not name record 4", res.Error)
	}
	if n := svc.Store().Len(); n != 0 {
		t.Fatalf("store holds %d targets after an aborted batch", n)
	}

	// A JSON body mislabeled with the batch content type is a 400.
	resp = postBinary(t, srv.URL, []byte(`[{"id":1}]`))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mislabeled body status %d, want 400", resp.StatusCode)
	}
}

func TestIngestBinaryBatchRecordCap(t *testing.T) {
	cfg := testConfig()
	cfg.MaxBatchRecords = 4
	svc := New(cfg)
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	resp := postBinary(t, srv.URL, encodeBinaryBatch(t, mkAttacks(64512, 0, 5)))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized binary batch status %d, want 413", resp.StatusCode)
	}
	if n := svc.Store().Len(); n != 0 {
		t.Fatalf("store holds %d targets after a rejected batch", n)
	}
}

// TestIngestErrorIndexConvention pins the unified failing-record index
// convention across every /ingest error path: the failing record is
// counted in Rejected and the error names its 1-based batch position,
// which always equals Ingested+Duplicates+Rejected.
func TestIngestErrorIndexConvention(t *testing.T) {
	newSrv := func(t *testing.T) (*Service, *httptest.Server) {
		svc := New(testConfig())
		t.Cleanup(svc.Close)
		srv := httptest.NewServer(svc.Handler())
		t.Cleanup(srv.Close)
		return svc, srv
	}

	t.Run("json decode error", func(t *testing.T) {
		_, srv := newSrv(t)
		attacks := mkAttacks(64512, 0, 2)
		var body bytes.Buffer
		for i := range attacks {
			writeNDJSON(t, &body, &attacks[i])
		}
		body.WriteString(`{nope`)
		resp, err := http.Post(srv.URL+"/ingest", "application/json", &body)
		if err != nil {
			t.Fatal(err)
		}
		res := decodeBody[IngestResult](t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
		if res.Ingested != 2 || res.Duplicates != 0 || res.Rejected != 1 {
			t.Fatalf("counts %+v, want ingested 2, rejected 1", res)
		}
		if want := fmt.Sprintf("record %d:", res.Ingested+res.Duplicates+res.Rejected); !strings.HasPrefix(res.Error, want) {
			t.Fatalf("error %q does not open with %q", res.Error, want)
		}
	})

	t.Run("json reject", func(t *testing.T) {
		_, srv := newSrv(t)
		attacks := mkAttacks(64512, 0, 3)
		attacks[2].Family = ""
		resp := postAttacks(t, srv.URL, attacks)
		res := decodeBody[IngestResult](t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
		if res.Ingested != 2 || res.Duplicates != 0 || res.Rejected != 1 {
			t.Fatalf("counts %+v, want ingested 2, rejected 1", res)
		}
		if want := fmt.Sprintf("record %d:", res.Ingested+res.Duplicates+res.Rejected); !strings.HasPrefix(res.Error, want) {
			t.Fatalf("error %q does not open with %q", res.Error, want)
		}
	})

	t.Run("binary reject", func(t *testing.T) {
		svc, srv := newSrv(t)
		attacks := mkAttacks(64512, 0, 3)
		attacks[1].TargetAS = 0 // invalid: prefix of 1 applies, rest does not
		resp := postBinary(t, srv.URL, encodeBinaryBatch(t, attacks))
		res := decodeBody[IngestResult](t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
		if res.Ingested != 1 || res.Duplicates != 0 || res.Rejected != 1 {
			t.Fatalf("counts %+v, want ingested 1, rejected 1", res)
		}
		if want := fmt.Sprintf("record %d:", res.Ingested+res.Duplicates+res.Rejected); !strings.HasPrefix(res.Error, want) {
			t.Fatalf("error %q does not open with %q", res.Error, want)
		}
		if _, total := svc.Store().Window(64512); total != 1 {
			t.Fatalf("store total %d, want the 1-record prefix", total)
		}
	})
}

func writeNDJSON(t *testing.T, w io.Writer, a *trace.Attack) {
	t.Helper()
	buf, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, '\n')
	if _, err := w.Write(buf); err != nil {
		t.Fatal(err)
	}
}

// TestTargetGaugesFreshAfterErroredBatch pins the gauge-refresh fix:
// records committed before a mid-batch error must show in
// ddosd_targets_known even though the request failed.
func TestTargetGaugesFreshAfterErroredBatch(t *testing.T) {
	svc := New(testConfig())
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	attacks := mkAttacks(64512, 0, 3)
	attacks[1].Family = "" // record 2 rejects; record 1 commits
	resp := postAttacks(t, srv.URL, attacks)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(raw), "ddosd_targets_known 1") {
		t.Fatalf("ddosd_targets_known stale after errored batch:\n%s",
			grepLines(string(raw), "ddosd_targets_known"))
	}
}

func grepLines(s, substr string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestIngestBatchMatchesScalar drives the same multi-target stream
// through the scalar path and the vectorized path and requires
// byte-identical store state — the shard-grouped application must be
// invisible.
func TestIngestBatchMatchesScalar(t *testing.T) {
	stream := interleavedStream(t)

	scalar := New(testConfig())
	defer scalar.Close()
	for i := range stream {
		a := stream[i]
		if _, err := scalar.Ingest(&a); err != nil {
			t.Fatal(err)
		}
	}

	vec := New(testConfig())
	defer vec.Close()
	for lo := 0; lo < len(stream); lo += 7 {
		hi := min(lo+7, len(stream))
		if _, err := vec.IngestBatch(stream[lo:hi], nil); err != nil {
			t.Fatal(err)
		}
	}

	if got, want := storeImage(t, vec.Store()), storeImage(t, scalar.Store()); !bytes.Equal(got, want) {
		t.Fatalf("vectorized store diverges from scalar store:\n got %s\nwant %s", got, want)
	}
}

// interleavedStream builds a deterministic multi-target stream with
// in-batch duplicates and out-of-order arrivals — the store edge cases.
func interleavedStream(t testing.TB) []trace.Attack {
	t.Helper()
	var stream []trace.Attack
	for _, as := range []astopo.AS{64512, 64513, 64514, 65000} {
		stream = append(stream, mkAttacks(as, int(as)*1000, 12)...)
	}
	// Interleave targets round-robin so shard groups are non-trivial.
	perTarget := 12
	out := make([]trace.Attack, 0, len(stream))
	for i := 0; i < perTarget; i++ {
		for tgt := 0; tgt < 4; tgt++ {
			out = append(out, stream[tgt*perTarget+i])
		}
	}
	// Swap two arrivals of one target out of order and duplicate another.
	out[8], out[12] = out[12], out[8]
	out = append(out, out[5])
	return out
}

// TestCrossWireEquivalence is the cross-protocol property: the same
// record stream through the JSON wire and the binary wire must yield
// byte-identical store checkpoints, and replaying each WAL into a fresh
// store must again yield byte-identical state.
func TestCrossWireEquivalence(t *testing.T) {
	stream := interleavedStream(t)
	cfg := testConfig()

	run := func(t *testing.T, dir string, post func(url string, batch []trace.Attack)) []byte {
		svc := New(cfg)
		defer svc.Close()
		svc.AttachWAL(openWAL(t, dir, 0), nil)
		srv := httptest.NewServer(svc.Handler())
		defer srv.Close()
		for lo := 0; lo < len(stream); lo += 7 {
			post(srv.URL, stream[lo:min(lo+7, len(stream))])
		}
		return storeImage(t, svc.Store())
	}

	jsonDir, binDir := t.TempDir(), t.TempDir()
	jsonImage := run(t, jsonDir, func(url string, batch []trace.Attack) {
		resp := postAttacks(t, url, batch)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("json wire status %d", resp.StatusCode)
		}
	})
	binImage := run(t, binDir, func(url string, batch []trace.Attack) {
		resp := postBinary(t, url, encodeBinaryBatch(t, batch))
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("binary wire status %d", resp.StatusCode)
		}
	})
	if !bytes.Equal(jsonImage, binImage) {
		t.Fatalf("wire protocols diverge:\n json %s\n bin  %s", jsonImage, binImage)
	}

	// WAL replay state must match too: both logs hold the same binary
	// record frames, so recovery is wire-independent.
	replay := func(t *testing.T, dir string) []byte {
		svc := New(cfg)
		defer svc.Close()
		if _, err := svc.RecoverWAL(openWAL(t, dir, 0), nil); err != nil {
			t.Fatal(err)
		}
		return storeImage(t, svc.Store())
	}
	jsonReplay := replay(t, jsonDir)
	binReplay := replay(t, binDir)
	if !bytes.Equal(jsonReplay, binReplay) {
		t.Fatalf("WAL replay diverges across wires:\n json %s\n bin  %s", jsonReplay, binReplay)
	}
	if !bytes.Equal(jsonReplay, jsonImage) {
		t.Fatalf("WAL replay diverges from live store:\n replay %s\n live   %s", jsonReplay, jsonImage)
	}
}

// TestIngestBatchDurableBeforeAck pins durability-before-ack on the
// batch path: every acked record is in the WAL when IngestBatch returns.
func TestIngestBatchDurableBeforeAck(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	svc := New(cfg)
	svc.AttachWAL(openWAL(t, dir, 0), nil)

	stream := mkAttacks(64512, 0, 20)
	br, err := svc.IngestBatch(stream, nil)
	if err != nil || br.Ingested != 20 {
		t.Fatalf("IngestBatch = %+v, %v", br, err)
	}
	st, ok := svc.WALStats()
	if !ok || st.Appends != 20 {
		t.Fatalf("WAL appends %d, want 20", st.Appends)
	}
	want := storeImage(t, svc.Store())
	svc.Close() // no checkpoint: the WAL is the only copy

	svc2 := New(cfg)
	defer svc2.Close()
	rs, err := svc2.RecoverWAL(openWAL(t, dir, 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Replayed != 20 || rs.Truncated {
		t.Fatalf("recovery %+v, want 20 clean replays", rs)
	}
	if got := storeImage(t, svc2.Store()); !bytes.Equal(got, want) {
		t.Fatal("batch-ingested records did not survive the crash")
	}
}

// TestIngestBatchZeroAlloc pins the pooling contract: once the arenas
// are warm, decode + vectorized apply (store, WAL, scoring, scheduling)
// allocates amortized (near-)zero per record.
func TestIngestBatchZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	svc, bodies, dec := newZeroAllocHarness(t, 256)
	var r bytes.Reader
	round := 0
	warm := func(n int) {
		for i := 0; i < n; i++ {
			r.Reset(bodies[round%len(bodies)])
			round++
			dec.Reset(&r)
			if err := dec.Decode(0); err != nil {
				t.Fatal(err)
			}
			if _, _, err := svc.ingestBatchTimed(dec.Records(), dec.Payload); err != nil {
				t.Fatal(err)
			}
		}
	}
	warm(64) // fill pools, arenas, shard maps, histogram buckets
	const perRound = 64
	avg := testing.AllocsPerRun(100, func() { warm(1) })
	if perRecord := avg / perRound; perRecord > 0.25 {
		t.Fatalf("decode+apply allocates %.3f/record (%.1f/batch), want amortized ~0", perRecord, avg)
	}
}

// newZeroAllocHarness builds a WAL-backed service plus nBodies
// pre-encoded 64-record binary batches across 8 targets (unique IDs, so
// every record is accepted, every frame reaches the WAL). Optional
// mutators adjust the config before the service is built (the detect
// variants turn the streaming detector on).
func newZeroAllocHarness(t testing.TB, nBodies int, mutate ...func(*Config)) (*Service, [][]byte, *trace.BatchDecoder) {
	t.Helper()
	cfg := testConfig()
	cfg.MinWindow = 1 << 20 // no refits: isolate the ingest path
	for _, m := range mutate {
		m(&cfg)
	}
	svc := New(cfg)
	t.Cleanup(svc.Close)
	w, err := wal.Open(wal.Options{
		Dir:          t.TempDir(),
		SegmentBytes: 1 << 30, // no rotation mid-measurement
		Sync:         wal.SyncPolicy{Mode: wal.SyncNever},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	svc.AttachWAL(w, nil)

	bodies := make([][]byte, nBodies)
	id := 0
	for i := range bodies {
		batch := make([]trace.Attack, 64)
		for j := range batch {
			id++
			batch[j] = mkAttacks(astopo.AS(64512+id%8), id*100, 1)[0]
		}
		bodies[i] = encodeBinaryBatch(t, batch)
	}
	return svc, bodies, trace.NewBatchDecoder()
}

// BenchmarkIngestBatchBinary measures the server-side binary hot path —
// batch decode + vectorized store/WAL apply — in records/second and
// allocs/record (the numbers BENCH_6.json checks in).
// BenchmarkIngestScalarJSON measures the status-quo path the binary wire
// replaces — per-record json.Unmarshal + scalar Ingest + per-record WAL
// append — over the same record stream as BenchmarkIngestBatchBinary, so
// scripts/bench.sh can merge both into BENCH_6.json.
func BenchmarkIngestScalarJSON(b *testing.B) {
	svc, bodies, dec := newZeroAllocHarness(b, 512)
	var r bytes.Reader
	lines := make([][][]byte, len(bodies))
	for i, body := range bodies {
		r.Reset(body)
		dec.Reset(&r)
		if err := dec.Decode(0); err != nil {
			b.Fatal(err)
		}
		recs := dec.Records()
		lines[i] = make([][]byte, len(recs))
		for j := range recs {
			buf, err := json.Marshal(&recs[j])
			if err != nil {
				b.Fatal(err)
			}
			lines[i][j] = buf
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, line := range lines[i%len(lines)] {
			var a trace.Attack
			if err := json.Unmarshal(line, &a); err != nil {
				b.Fatal(err)
			}
			if _, err := svc.Ingest(&a); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	recs := float64(b.N * 64)
	b.ReportMetric(recs/b.Elapsed().Seconds(), "rec/s")
}

func BenchmarkIngestBatchBinary(b *testing.B) {
	svc, bodies, dec := newZeroAllocHarness(b, 512)
	var r bytes.Reader
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(bodies[i%len(bodies)])
		dec.Reset(&r)
		if err := dec.Decode(0); err != nil {
			b.Fatal(err)
		}
		if _, _, err := svc.ingestBatchTimed(dec.Records(), dec.Payload); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	recs := float64(b.N * 64)
	b.ReportMetric(recs/b.Elapsed().Seconds(), "rec/s")
}
