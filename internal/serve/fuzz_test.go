package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// FuzzIngestHandler feeds arbitrary bytes to POST /ingest: whatever the
// body, the handler must answer a well-formed JSON response with one of
// the documented status codes and never panic or corrupt the store.
func FuzzIngestHandler(f *testing.F) {
	f.Add([]byte(`{"id":1,"family":"DirtJumper","start":"2012-08-01T00:00:00Z","duration_sec":60,"target_as":64512}`))
	f.Add([]byte(`[{"id":1,"family":"a","start":"2012-08-01T00:00:00Z","target_as":1},{"id":2,"family":"a","start":"2012-08-01T01:00:00Z","target_as":1}]`))
	f.Add([]byte("{\"id\":1,\"family\":\"a\",\"start\":\"2012-08-01T00:00:00Z\",\"target_as\":1}\n{\"id\":2,\"family\":\"a\",\"start\":\"2012-08-01T01:00:00Z\",\"target_as\":1}"))
	f.Add([]byte(`[]`))
	f.Add([]byte(``))
	f.Add([]byte(`{`))
	f.Add([]byte(`[{]`))
	f.Add([]byte(`{"id":0}`))
	f.Add([]byte(`{"id":1,"family":"a","start":"2012-08-01T00:00:00Z","duration_sec":-5,"target_as":1}`))
	f.Add([]byte(`nonsense`))
	f.Add([]byte("\x00\x01\x02"))

	cfg := testConfig()
	cfg.MaxBatchRecords = 64
	svc := New(cfg)
	f.Cleanup(svc.Close)
	handler := svc.Handler()

	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/ingest", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusOK, http.StatusBadRequest,
			http.StatusRequestEntityTooLarge, http.StatusTooManyRequests:
		default:
			t.Fatalf("unexpected status %d for body %q", rec.Code, body)
		}
		if !json.Valid(rec.Body.Bytes()) {
			t.Fatalf("non-JSON response %q for body %q", rec.Body.Bytes(), body)
		}
	})
}
