package serve

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/astopo"
	"repro/internal/core"
	"repro/internal/trace"
)

// Per-target refit: turn a rolling window of attacks into a fresh
// TargetModels. The construction mirrors the offline evaluation
// (eval.collectSamples): the spatiotemporal tree is trained on features
// produced by *walking forward* prefix-fitted component models, so its
// training rows have the same semantics as the rows it sees at forecast
// time (component predictions + frozen target context), then the
// component models are refitted on the full window for serving.

// fitTarget builds a target's models from its window. The caller provides
// the fit generation and the all-time ingest total for provenance. Windows
// shorter than cfg.MinWindow return an error (the target is not ready).
func fitTarget(as astopo.AS, window []trace.Attack, total uint64, gen uint64, cfg Config) (*TargetModels, error) {
	if len(window) < cfg.MinWindow {
		return nil, fmt.Errorf("serve: AS%d window %d below minimum %d", as, len(window), cfg.MinWindow)
	}
	fitWin, filtered := filterVerdicts(window, cfg)
	family := dominantFamily(fitWin)

	// Spatiotemporal stage first: it fits throwaway prefix models, and a
	// failure here only disables the tree (and its stacked ensemble),
	// never the whole target.
	st, ens := fitSTModels(as, fitWin, cfg)

	tm, err := core.FitTemporal(family, fitWin, cfg.Temporal)
	if err != nil {
		return nil, fmt.Errorf("serve: AS%d temporal: %w", as, err)
	}
	sm, err := core.FitSpatial(as, fitWin, spatialCfg(as, cfg))
	if err != nil {
		return nil, fmt.Errorf("serve: AS%d spatial: %w", as, err)
	}
	return &TargetModels{
		AS:         as,
		Family:     family,
		Temporal:   tm,
		Spatial:    sm,
		ST:         st,
		Ensemble:   ens,
		Ctx:        contextFromWindow(fitWin),
		Window:     len(window),
		Total:      total,
		Generation: gen,
		FittedAt:   time.Now().UTC(),
		LastStart:  window[len(window)-1].Start,
		Prov:       Provenance{Refit: refitFull, FilteredRecords: filtered},
	}, nil
}

// filterVerdicts drops detector-alerted records from a fit window when the
// verdict filter is on (-refit-verdict-filter): the baseline-regime models
// should not learn burst traffic the detection tier already flagged as
// anomalous. The filter is conservative — it only engages when enough
// clean records remain (at least MinWindow and at least half the window),
// otherwise the full window fits as before. Returns the window to fit on
// and how many records were excluded.
func filterVerdicts(window []trace.Attack, cfg Config) ([]trace.Attack, int) {
	if !cfg.RefitVerdictFilter {
		return window, 0
	}
	clean := 0
	for i := range window {
		if window[i].Verdict == 0 {
			clean++
		}
	}
	if clean == len(window) || clean < cfg.MinWindow || clean < len(window)/2 {
		return window, 0
	}
	out := make([]trace.Attack, 0, clean)
	for i := range window {
		if window[i].Verdict == 0 {
			out = append(out, window[i])
		}
	}
	return out, len(window) - clean
}

// warmEpochs is the per-series RPROP budget of an incremental spatial
// refit: enough to fold a short tail into warm-started weights, far below
// the full grid search's per-candidate cost.
const warmEpochs = 40

// errNotEligible marks windows the incremental path must decline (the
// scheduler then falls back to a full refit without counting an error).
var errNotEligible = errors.New("serve: window not eligible for incremental refit")

// fitTargetIncremental folds only the records that arrived since the
// previous generation into clones of its models — O(new records) instead
// of O(window) — keeping the previous spatiotemporal tree and ensemble
// (they are re-estimated on the periodic full refit). Eligibility is
// strict: there must be a genuinely small in-order tail, the family must
// be stable, and the per-series drift diagnostics must stay quiet;
// anything else returns an error and the caller runs the full fit.
func fitTargetIncremental(prev *TargetModels, as astopo.AS, window []trace.Attack, total uint64, gen uint64, cfg Config) (*TargetModels, error) {
	if prev == nil || len(window) < cfg.MinWindow {
		return nil, errNotEligible
	}
	if prev.Prov.IncrSinceFull >= cfg.FullRefitEvery-1 {
		return nil, fmt.Errorf("%w: %d incremental generations since last full", errNotEligible, prev.Prov.IncrSinceFull)
	}
	newCount := int(total - prev.Total)
	if newCount <= 0 || newCount > len(window)/2 {
		return nil, errNotEligible
	}
	tail := window[len(window)-newCount:]
	// The store keeps the window sorted by Start, so an out-of-order
	// arrival inserts mid-window and shifts already-folded history into the
	// positional tail. Fence on the newest Start the previous fit saw:
	// every genuinely new record sorts strictly after it, so a tail that
	// does not would double-count records FoldIn already absorbed — decline
	// (ties included) and let the full refit rebuild from scratch.
	if prev.LastStart.IsZero() || !tail[0].Start.After(prev.LastStart) {
		return nil, errNotEligible
	}
	// Mirror fitTarget: eligibility and context come from the same filtered
	// view the full path fits on, so family comparisons are like-for-like
	// across generations and the ST feature context stays consistent.
	fitWin, _ := filterVerdicts(window, cfg)
	if dominantFamily(fitWin) != prev.Family {
		return nil, fmt.Errorf("%w: dominant family changed", errNotEligible)
	}
	tailFiltered := 0
	if len(fitWin) < len(window) { // the verdict filter engaged on this window
		clean := tail[:0:0]
		for i := range tail {
			if tail[i].Verdict == 0 {
				clean = append(clean, tail[i])
			}
		}
		tailFiltered = len(tail) - len(clean)
		if len(clean) == 0 {
			return nil, fmt.Errorf("%w: tail entirely alerted", errNotEligible)
		}
		tail = clean
	}
	tm, err := core.IncrementalTemporal(prev.Temporal, tail, cfg.DriftRatio)
	if err != nil {
		return nil, fmt.Errorf("serve: AS%d incremental temporal: %w", as, err)
	}
	sm, err := core.IncrementalSpatial(prev.Spatial, tail, warmEpochs, cfg.DriftRatio)
	if err != nil {
		return nil, fmt.Errorf("serve: AS%d incremental spatial: %w", as, err)
	}
	return &TargetModels{
		AS:         as,
		Family:     prev.Family,
		Temporal:   tm,
		Spatial:    sm,
		ST:         prev.ST,       // immutable; re-fit on the next full refit
		Ensemble:   prev.Ensemble, // immutable; re-fit on the next full refit
		Ctx:        contextFromWindow(fitWin),
		Window:     len(window),
		Total:      total,
		Generation: gen,
		FittedAt:   time.Now().UTC(),
		LastStart:  window[len(window)-1].Start,
		Prov: Provenance{
			Refit:           refitIncremental,
			BaseGeneration:  prev.Generation,
			FoldedRecords:   len(tail),
			FilteredRecords: tailFiltered,
			IncrSinceFull:   prev.Prov.IncrSinceFull + 1,
		},
	}, nil
}

// spatialCfg derives the per-target NAR configuration: the seed mixes the
// service seed with the target AS, so refits are deterministic for a given
// window regardless of scheduling.
func spatialCfg(as astopo.AS, cfg Config) core.SpatialConfig {
	sc := cfg.Spatial
	sc.Seed = cfg.Seed ^ (uint64(as) * 0x9e3779b97f4a7c15)
	return sc
}

// dominantFamily returns the most frequent family label in the window
// (ties broken lexicographically for determinism).
func dominantFamily(window []trace.Attack) string {
	counts := make(map[string]int)
	for i := range window {
		counts[window[i].Family]++
	}
	best, bestN := "", -1
	for f, n := range counts {
		if n > bestN || (n == bestN && f < best) {
			best, bestN = f, n
		}
	}
	return best
}

// targetCtx tracks the walk-forward target context while generating
// spatiotemporal training samples.
type targetCtx struct {
	lastStart time.Time
	lastHour  float64
	lastDay   float64
	prevGap   float64
	magSum    float64
	magN      int
	gapSum    float64
	gapN      int
}

func (c *targetCtx) observe(a *trace.Attack) {
	if !c.lastStart.IsZero() {
		gap := a.Start.Sub(c.lastStart).Seconds()
		if gap >= 0 {
			c.prevGap = gap
			c.gapSum += gap
			c.gapN++
		}
	}
	c.lastStart = a.Start
	c.lastHour = float64(a.Hour())
	c.lastDay = float64(a.Day())
	c.magSum += float64(a.Magnitude())
	c.magN++
}

func (c *targetCtx) features() STContext {
	ctx := STContext{
		PrevHour:   c.lastHour,
		PrevDay:    c.lastDay,
		PrevGapSec: c.prevGap,
		NextDueDay: c.lastDay,
	}
	if c.magN > 0 {
		ctx.AvgMag = c.magSum / float64(c.magN)
	}
	if c.gapN > 0 && !c.lastStart.IsZero() {
		meanGap := c.gapSum / float64(c.gapN)
		due := c.lastStart.Add(time.Duration(meanGap * float64(time.Second)))
		ctx.NextDueDay = float64(due.Day())
	}
	return ctx
}

// contextFromWindow freezes the forecast-time STContext from the full
// window tail.
func contextFromWindow(window []trace.Attack) STContext {
	var c targetCtx
	for i := range window {
		c.observe(&window[i])
	}
	return c.features()
}

// fitSTModels grows the target's model trees by the walk-forward protocol:
// fit components on the leading stFitFrac of the window, then walk the
// remainder recording component predictions and target context as features
// with the realized attack as label. The same walk-forward samples feed the
// stacked ensemble combiners. Returns nils when the window is too short or
// any stage fails — the target then serves component forecasts.
const (
	stFitFrac    = 0.6
	stMinWindow  = 24
	stMinSamples = 10
)

func fitSTModels(as astopo.AS, window []trace.Attack, cfg Config) (*core.Spatiotemporal, *Ensemble) {
	if len(window) < stMinWindow || len(window) < cfg.MinSTWindow {
		return nil, nil
	}
	fitEnd := int(stFitFrac * float64(len(window)))
	prefix := window[:fitEnd]
	tm, err := core.FitTemporal(dominantFamily(prefix), prefix, cfg.Temporal)
	if err != nil {
		return nil, nil
	}
	sm, err := core.FitSpatial(as, prefix, spatialCfg(as, cfg))
	if err != nil {
		return nil, nil
	}
	var ctx targetCtx
	for i := range prefix {
		ctx.observe(&prefix[i])
	}
	samples := make([]core.STSample, 0, len(window)-fitEnd)
	for i := fitEnd; i < len(window); i++ {
		a := &window[i]
		fctx := ctx.features()
		samples = append(samples, core.STSample{
			F: core.STFeatures{
				TmpHour:     tm.PredictHour(),
				TmpDay:      tm.PredictDay(),
				TmpInterval: tm.PredictInterval(),
				TmpMag:      tm.PredictMagnitude(),
				SpaHour:     sm.PredictHour(),
				SpaDay:      sm.PredictDay(),
				SpaDur:      sm.PredictDuration(),
				PrevHour:    fctx.PrevHour,
				PrevDay:     fctx.PrevDay,
				PrevGapSec:  a.Start.Sub(ctx.lastStart).Seconds(),
				NextDueDay:  fctx.NextDueDay,
				AvgMag:      fctx.AvgMag,
				TargetAS:    float64(as),
			},
			Hour: float64(a.Hour()),
			Day:  float64(a.Day()),
			Dur:  a.DurationSec,
			Mag:  float64(a.Magnitude()),
		})
		tm.Observe(a)
		sm.Observe(a)
		ctx.observe(a)
	}
	if len(samples) < stMinSamples {
		return nil, nil
	}
	st, err := core.FitSpatiotemporal(samples, cfg.ST)
	if err != nil {
		return nil, nil
	}
	return st, fitEnsemble(samples, cfg)
}
