package serve

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/astopo"
	"repro/internal/trace"
	"repro/internal/wal"
)

func openWAL(t *testing.T, dir string, segBytes int64) *wal.WAL {
	t.Helper()
	w, err := wal.Open(wal.Options{Dir: dir, SegmentBytes: segBytes})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

// storeImage serializes the store's durable state for equality checks.
// The since-refit counter is zeroed: it moves with background refit
// timing (MarkRefitted), and losing refit marks across a crash only makes
// the next refit come earlier.
func storeImage(t *testing.T, s *Store) []byte {
	t.Helper()
	cp := s.Checkpoint()
	for i := range cp {
		cp[i].SinceRefit = 0
	}
	buf, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestWALRecoveryRoundTrip is the basic crash story: ingest with a WAL
// attached, drop the service on the floor (no final checkpoint), boot a
// fresh one from the same directory. The replayed store must be
// byte-identical and the recovered targets must serve forecasts again
// before the daemon would start listening.
func TestWALRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	svc := New(cfg)
	svc.AttachWAL(openWAL(t, dir, 0), nil)

	const as = astopo.AS(64512)
	for _, a := range mkAttacks(as, 0, 20) {
		if _, err := svc.Ingest(&a); err != nil {
			t.Fatal(err)
		}
	}
	want := storeImage(t, svc.Store())
	svc.Close() // detaches, but never checkpoints: the WAL is the only copy

	svc2 := New(cfg)
	defer svc2.Close()
	w2 := openWAL(t, dir, 0)
	rs, err := svc2.RecoverWAL(w2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Replayed != 20 || rs.Truncated {
		t.Fatalf("recovery = %+v, want 20 clean replays", rs)
	}
	if rs.Refits == 0 {
		t.Fatal("recovery did not re-schedule any refits")
	}
	if got := storeImage(t, svc2.Store()); !bytes.Equal(got, want) {
		t.Fatalf("replayed store differs from pre-crash store:\n got %s\nwant %s", got, want)
	}
	// RecoverWAL flushes the refit queue, so the target serves immediately.
	if _, err := svc2.Forecast(as); err != nil {
		t.Fatalf("recovered target not serving: %v", err)
	}

	// Replaying the same WAL into the same service is idempotent: the dedup
	// window absorbs every record.
	rs2, err := svc2.RecoverWAL(w2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rs2.Replayed != 0 || rs2.Duplicates != 20 {
		t.Fatalf("second replay = %+v, want 0 new / 20 duplicates", rs2)
	}
}

// copyWALDir snapshots a WAL directory the way SIGKILL would leave it —
// a point-in-time image of the files (the WAL has no userspace buffering,
// so written bytes are what a restarted process reads back).
func copyWALDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		buf, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), buf, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestWALCrashRecoveryProperty drives randomized kill-point recovery:
// records stream in across several targets while checkpoints fire at
// random; at random points the WAL directory is imaged (= SIGKILL),
// sometimes with garbage appended to the newest segment (= a torn write
// caught mid-frame). Every image must recover to a store byte-identical
// to a reference store fed exactly the records acked before the image —
// nothing lost, nothing extra, torn tails never fatal.
func TestWALCrashRecoveryProperty(t *testing.T) {
	const (
		targets = 5
		records = 300
	)
	rng := rand.New(rand.NewSource(41))
	cfg := testConfig()
	// Keep the scheduler quiet so since-refit counters stay deterministic
	// and the image comparison can demand full byte equality.
	cfg.MinWindow = 1 << 20
	cfg.RefitEvery = 1 << 20
	// Park the background checkpointer: kill-point images must not race a
	// concurrent compaction; every checkpoint in this test is explicit.
	oldInterval := walCheckInterval
	walCheckInterval = time.Hour
	defer func() { walCheckInterval = oldInterval }()

	dir := t.TempDir()
	svc := New(cfg)
	defer svc.Close()
	w := openWAL(t, dir, 512) // tiny segments: rotations and compactions mid-run
	svc.AttachWAL(w, nil)

	var stream []trace.Attack
	for i := 0; i < targets; i++ {
		stream = append(stream, mkAttacks(astopo.AS(64512+i), 1000*i, records/targets)...)
	}
	rng.Shuffle(len(stream), func(i, j int) { stream[i], stream[j] = stream[j], stream[i] })

	type image struct {
		dir   string
		acked int
		torn  bool
	}
	var images []image
	for i := range stream {
		if _, err := svc.Ingest(&stream[i]); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rng.Float64() < 0.05 {
			if err := svc.CheckpointWAL(); err != nil {
				t.Fatalf("checkpoint after record %d: %v", i, err)
			}
		}
		if rng.Float64() < 0.04 || i == len(stream)-1 {
			img := image{dir: copyWALDir(t, dir), acked: i + 1}
			if rng.Float64() < 0.5 {
				// A torn final frame: garbage the crashed writer never finished.
				segs, err := filepath.Glob(filepath.Join(img.dir, "*.wal"))
				if err != nil || len(segs) == 0 {
					t.Fatalf("no segments in image after record %d: %v", i, err)
				}
				newest := segs[len(segs)-1]
				garbage := make([]byte, 1+rng.Intn(16))
				rng.Read(garbage)
				f, err := os.OpenFile(newest, os.O_APPEND|os.O_WRONLY, 0)
				if err != nil {
					t.Fatal(err)
				}
				f.Write(garbage)
				f.Close()
				img.torn = true
			}
			images = append(images, img)
		}
	}
	if len(images) < 5 {
		t.Fatalf("only %d kill-point images taken, rng drifted?", len(images))
	}

	for _, img := range images {
		ref := NewStore(cfg.Shards, cfg.Window)
		for i := 0; i < img.acked; i++ {
			ref.Ingest(&stream[i])
		}
		want := storeImage(t, ref)

		rec := New(cfg)
		w2 := openWAL(t, img.dir, 512)
		rs, err := rec.RecoverWAL(w2, nil)
		if err != nil {
			t.Fatalf("image at %d acked (torn=%v): %v", img.acked, img.torn, err)
		}
		if img.torn && !rs.Truncated {
			t.Fatalf("image at %d acked: torn tail not reported: %+v", img.acked, rs)
		}
		if got := storeImage(t, rec.Store()); !bytes.Equal(got, want) {
			t.Fatalf("image at %d acked (torn=%v, stats %+v): recovered store diverges\n got %s\nwant %s",
				img.acked, img.torn, rs, got, want)
		}
		w2.Close()
		rec.Close()
	}
}

// TestWALRecoveryRejectsCorruptCheckpoint: the checkpoint is written
// atomically and its covered segments are gone, so damage to it cannot be
// shrugged off like a torn WAL tail — boot must fail loudly.
func TestWALRecoveryRejectsCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	svc := New(cfg)
	svc.AttachWAL(openWAL(t, dir, 0), nil)
	for _, a := range mkAttacks(64512, 0, 8) {
		if _, err := svc.Ingest(&a); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.CheckpointWAL(); err != nil {
		t.Fatal(err)
	}
	svc.Close()
	if err := os.WriteFile(filepath.Join(dir, "checkpoint.json"), []byte(`{"covered_`), 0o644); err != nil {
		t.Fatal(err)
	}

	svc2 := New(cfg)
	defer svc2.Close()
	if _, err := svc2.RecoverWAL(openWAL(t, dir, 0), nil); err == nil {
		t.Fatal("corrupt checkpoint recovered without error")
	}
}

// TestIngestWALFailureMapsTo500 pins the not-durable contract: when the
// WAL cannot take the append, the record stays in memory but the request
// fails with 500 so the client retries (the dedup window absorbs the
// replay), and the error body still reports the committed counts.
func TestIngestWALFailureMapsTo500(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	svc := New(cfg)
	defer svc.Close()
	w := openWAL(t, dir, 0)
	svc.AttachWAL(w, nil)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	w.Close() // every append now fails

	attacks := mkAttacks(64512, 0, 2)
	resp := postAttacks(t, srv.URL, attacks)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	res := decodeBody[IngestResult](t, resp)
	if res.Error == "" || res.Ingested != 1 {
		t.Fatalf("not-durable body = %+v, want error set and ingested 1", res)
	}

	// The record is in memory: resending it after the WAL heals dedups.
	svc.DetachWAL()
	resp = postAttacks(t, srv.URL, attacks[:1])
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry status %d, want 200", resp.StatusCode)
	}
	if res := decodeBody[IngestResult](t, resp); res.Duplicates != 1 || res.Ingested != 0 {
		t.Fatalf("retry = %+v, want 1 duplicate", res)
	}
}

// TestIngestBodyCap413 pins the request-size guard: a body over
// MaxBatchBytes answers 413, not a generic 400.
func TestIngestBodyCap413(t *testing.T) {
	cfg := testConfig()
	cfg.MaxBatchBytes = 512
	svc := New(cfg)
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	resp := postAttacks(t, srv.URL, mkAttacks(64512, 0, 32))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	res := decodeBody[IngestResult](t, resp)
	if !strings.Contains(res.Error, "512") {
		t.Fatalf("413 body %q does not name the byte cap", res.Error)
	}
}
