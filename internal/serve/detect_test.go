package serve

// In-package tests for the streaming detection tier's serve integration:
// the /alerts endpoint, and the hot-path allocation/throughput contracts
// with the detector enabled. The ground-truth precision/recall/latency
// validation lives in detect_truth_test.go (package serve_test — it
// drives internal/loadgen, which imports serve).

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/astopo"
	"repro/internal/detect"
	"repro/internal/trace"
)

// TestAlertsEndpoint covers /alerts over HTTP: the disabled body, the
// enabled report with live stats and alerts, the limit parameter, and
// method/parameter validation.
func TestAlertsEndpoint(t *testing.T) {
	getJSON := func(t *testing.T, url string, out any) int {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if out != nil && resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(body, out); err != nil {
				t.Fatalf("bad /alerts body %q: %v", body, err)
			}
		}
		return resp.StatusCode
	}

	t.Run("disabled", func(t *testing.T) {
		svc := New(testConfig())
		defer svc.Close()
		srv := httptest.NewServer(svc.Handler())
		defer srv.Close()
		var rep AlertsReport
		if code := getJSON(t, srv.URL+"/alerts", &rep); code != http.StatusOK {
			t.Fatalf("GET /alerts = %d", code)
		}
		if rep.Enabled || rep.Stats != nil || rep.Alerts != nil {
			t.Fatalf("detector off, got %+v", rep)
		}
	})

	t.Run("enabled", func(t *testing.T) {
		cfg := testConfig()
		cfg.MinWindow = 1 << 20
		cfg.Detect = &detect.Config{}
		svc := New(cfg)
		defer svc.Close()
		srv := httptest.NewServer(svc.Handler())
		defer srv.Close()

		// A one-second 30-record storm on one target must raise.
		t0 := time.Date(2012, 8, 1, 0, 0, 0, 0, time.UTC)
		for i := 0; i < 30; i++ {
			a := &trace.Attack{
				ID: i + 1, Family: "DirtJumper", TargetAS: 64512,
				TargetIP: 1, Start: t0.Add(time.Duration(i) * 30 * time.Millisecond),
				DurationSec: 60, Bots: []astopo.IPv4{1, 2, 3},
			}
			if ok, err := svc.Ingest(a); err != nil || !ok {
				t.Fatalf("ingest %d: accepted=%v err=%v", i, ok, err)
			}
		}

		var rep AlertsReport
		if code := getJSON(t, srv.URL+"/alerts", &rep); code != http.StatusOK {
			t.Fatalf("GET /alerts = %d", code)
		}
		if !rep.Enabled || rep.Stats == nil {
			t.Fatalf("expected enabled report, got %+v", rep)
		}
		if rep.Stats.Raised == 0 || len(rep.Alerts) == 0 {
			t.Fatalf("storm raised nothing: %+v", rep)
		}
		for _, a := range rep.Alerts {
			if a.Kind != detect.KindRate && a.Kind != detect.KindEntropy {
				t.Fatalf("alert with unknown kind %q", a.Kind)
			}
			if a.Target != 64512 {
				t.Fatalf("alert for unexpected target %v", a.Target)
			}
		}

		var one AlertsReport
		if code := getJSON(t, srv.URL+"/alerts?limit=1", &one); code != http.StatusOK {
			t.Fatalf("GET /alerts?limit=1 = %d", code)
		}
		if len(one.Alerts) != 1 {
			t.Fatalf("limit=1 returned %d alerts", len(one.Alerts))
		}
		if one.Alerts[0] != rep.Alerts[0] {
			t.Fatalf("limit=1 alert %+v != most recent %+v", one.Alerts[0], rep.Alerts[0])
		}

		if code := getJSON(t, srv.URL+"/alerts?limit=bogus", nil); code != http.StatusBadRequest {
			t.Fatalf("bad limit accepted: %d", code)
		}
		resp, err := http.Post(srv.URL+"/alerts", "application/json", bytes.NewReader(nil))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST /alerts = %d, want 405", resp.StatusCode)
		}
	})
}

// TestIngestBatchDetectZeroAlloc re-pins the vectorized ingest pooling
// contract with the detector enabled: detection must not cost the hot
// path its amortized-zero allocation budget.
func TestIngestBatchDetectZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	svc, bodies, dec := newZeroAllocHarness(t, 256, func(c *Config) {
		c.Detect = &detect.Config{}
	})
	var r bytes.Reader
	round := 0
	warm := func(n int) {
		for i := 0; i < n; i++ {
			r.Reset(bodies[round%len(bodies)])
			round++
			dec.Reset(&r)
			if err := dec.Decode(0); err != nil {
				t.Fatal(err)
			}
			if _, _, err := svc.ingestBatchTimed(dec.Records(), dec.Payload); err != nil {
				t.Fatal(err)
			}
		}
	}
	warm(64)
	const perRound = 64
	avg := testing.AllocsPerRun(100, func() { warm(1) })
	if perRecord := avg / perRound; perRecord > 0.25 {
		t.Fatalf("detect-enabled decode+apply allocates %.3f/record (%.1f/batch), want amortized ~0", perRecord, avg)
	}
}

// BenchmarkIngestBatchBinaryDetect is BenchmarkIngestBatchBinary with the
// streaming detector enabled — the marginal detection cost on the binary
// hot path. The acceptance bar is rec/s within 10% of the baseline
// benchmark at 0 amortized allocs/record.
func BenchmarkIngestBatchBinaryDetect(b *testing.B) {
	svc, bodies, dec := newZeroAllocHarness(b, 512, func(c *Config) {
		c.Detect = &detect.Config{}
	})
	var r bytes.Reader
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(bodies[i%len(bodies)])
		dec.Reset(&r)
		if err := dec.Decode(0); err != nil {
			b.Fatal(err)
		}
		if _, _, err := svc.ingestBatchTimed(dec.Records(), dec.Payload); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	recs := float64(b.N * 64)
	b.ReportMetric(recs/b.Elapsed().Seconds(), "rec/s")
}
