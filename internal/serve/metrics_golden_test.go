package serve

// Golden-file test for the daemon's /metrics exposition: the exact bytes
// ddosd serves for a fixed instrument state. Pins metric names, HELP/TYPE
// lines, bucket bounds, and formatting — a renamed metric or a format
// regression breaks dashboards silently, so it must break this test
// loudly instead. Refresh with:
//
//	go test ./internal/serve -run TestMetricsGolden -update-golden

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/detect"
	"repro/internal/obs"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

func TestMetricsGoldenExposition(t *testing.T) {
	tel := newTelemetry(nil)

	// Exercise every instrument with fixed values so the rendered counts,
	// sums, and cumulative buckets are deterministic.
	tel.ingestRecords.Add(1200)
	tel.ingestDups.Add(34)
	tel.ingestShed.Add(5)
	for _, v := range []float64{0.0002, 0.0004, 0.003, 0.003} {
		tel.ingestSeconds.Observe(v)
	}
	tel.forecasts.Add(900)
	tel.forecastMisses.Add(11)
	for _, v := range []float64{0.00005, 0.0001, 0.02} {
		tel.forecastSecs.Observe(v)
	}
	tel.refitsDone.Add(60)
	tel.refitErrors.Add(2)
	tel.refitsDropped.Add(1)
	for _, v := range []float64{0.04, 0.3, 7.5} {
		tel.refitSeconds.Observe(v)
	}
	tel.refitLag.Set(3)
	tel.targetsKnown.Set(16)
	tel.targetsServed.Set(14)
	tel.targetsEvicted.Add(2)
	tel.refitIncremental.Add(45)
	tel.promotions.With(ModelEnsemble).Add(3)
	tel.promotions.With(ModelTemporal).Inc()
	for _, v := range []float64{0.0002, 0.004} {
		tel.observeStage(StageIngest, v)
	}
	tel.observeStage(StageFit, 0.25)
	tel.onScore(ModelST, obs.Summary{
		Samples:   40,
		Magnitude: obs.MeasureSummary{Samples: 40, MeanRelErr: 0.25},
		Duration:  obs.MeasureSummary{Samples: 40, MeanRelErr: 0.5},
		Timestamp: obs.HitSummary{Samples: 40, Rate: 0.625},
	})
	tel.onScore(ModelAlwaysSame, obs.Summary{
		Samples:   40,
		Magnitude: obs.MeasureSummary{Samples: 40, MeanRelErr: 1.5},
		Duration:  obs.MeasureSummary{Samples: 40, MeanRelErr: 2},
		Timestamp: obs.HitSummary{Samples: 40, Rate: 0.125},
	})
	tel.detRecords.Add(500)
	tel.detStale.Add(7)
	tel.onDetectAlert(detect.Alert{Kind: detect.KindRate}, 1)
	tel.onDetectAlert(detect.Alert{Kind: detect.KindEntropy}, 2)
	tel.onDetectAlert(detect.Alert{Kind: detect.KindRate, Cleared: true}, 1)
	tel.onDetectAlert(detect.Alert{Kind: detect.KindEntropy, Cleared: true}, 0)
	// A hostile label value through the vec pins the escaping rules for
	// backslash, quote, and newline in CounterVec children.
	tel.detAlerts.With("bad\\label\"with\nnewline").Inc()

	var got bytes.Buffer
	tel.reg.WriteText(&got)

	path := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("/metrics exposition drifted from %s.\n--- got ---\n%s--- want ---\n%s",
			path, got.Bytes(), want)
	}
}
