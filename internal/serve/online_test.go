package serve

// Tests for the online model layer (DESIGN.md §15): incremental refits,
// the stacked ensemble, champion/challenger promotion, bounded-store
// eviction, and the snapshot codec carrying the new provenance.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/astopo"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/regress"
	"repro/internal/trace"
)

// ingestAllSync ingests records one at a time, draining the refit queue
// after each, so refit boundaries (and therefore champion decisions) are
// deterministic for a fixed stream.
func ingestAllSync(t *testing.T, svc *Service, attacks []trace.Attack) {
	t.Helper()
	for i := range attacks {
		if _, err := svc.Ingest(&attacks[i]); err != nil {
			t.Fatalf("ingest record %d: %v", i, err)
		}
		svc.Flush()
	}
}

// --- satellite: bounded store eviction drops every layer ----------------

func TestEvictionDropsRegistryTarget(t *testing.T) {
	cfg := testConfig()
	cfg.Shards = 1 // one shard: eviction order is the exact global LRU
	cfg.MaxTargets = 2
	svc := New(cfg)
	defer svc.Close()

	const a, b, c = astopo.AS(64512), astopo.AS(64513), astopo.AS(64514)
	ingestAllSync(t, svc, mkAttacks(a, 0, 12))
	ingestAllSync(t, svc, mkAttacks(b, 1000, 12))
	if _, err := svc.Forecast(a); err != nil {
		t.Fatalf("target A not published before eviction: %v", err)
	}
	sizeBefore := svc.Registry().Size()
	if sizeBefore != 2 {
		t.Fatalf("published targets = %d, want 2", sizeBefore)
	}

	// A third target over the cap evicts the least-recently-ingested (A).
	ingestAllSync(t, svc, mkAttacks(c, 2000, 12))

	if got := svc.Store().Len(); got != 2 {
		t.Fatalf("store targets = %d, want 2 after eviction", got)
	}
	if svc.Store().Known(a) {
		t.Fatal("evicted target still in the store")
	}
	if _, ok := svc.Registry().Lookup(a); ok {
		t.Fatal("evicted target still published in the registry")
	}
	if _, err := svc.Forecast(a); err == nil {
		t.Fatal("forecast for evicted target succeeded, want unknown-target error")
	}
	if got := svc.Registry().Size(); got != 2 {
		t.Fatalf("published targets = %d after eviction, want 2 (B and C)", got)
	}
	if svc.promo.Size() != 2 {
		t.Fatalf("promotion trackers = %d, want 2 after eviction", svc.promo.Size())
	}
	if svc.tel.targetsEvicted.Value() == 0 {
		t.Fatal("ddosd_targets_evicted_total not incremented")
	}
	// B and C keep serving.
	for _, as := range []astopo.AS{b, c} {
		if _, err := svc.Forecast(as); err != nil {
			t.Fatalf("surviving target AS%d lost its forecast: %v", as, err)
		}
	}
}

// --- satellite: snapshot version can never move backwards ---------------

func TestReadSnapshotVersionMonotone(t *testing.T) {
	cfg := testConfig().withDefaults()
	window := mkAttacks(64512, 0, 12)
	tm, err := fitTarget(64512, window, 12, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}

	src := NewRegistry()
	src.Publish([]*TargetModels{tm})
	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	stale := buf.Bytes() // version 1

	// A registry whose version has advanced past the file must keep its
	// own clock: readers treat version as monotone.
	dst := NewRegistry()
	for i := 0; i < 5; i++ {
		dst.Publish([]*TargetModels{tm})
	}
	if v := dst.Version(); v != 5 {
		t.Fatalf("setup: version = %d, want 5", v)
	}
	if err := dst.ReadSnapshot(bytes.NewReader(stale)); err != nil {
		t.Fatal(err)
	}
	if v := dst.Version(); v != 5 {
		t.Fatalf("version moved backwards to %d after loading a stale snapshot, want 5", v)
	}

	// A fresh registry adopts the file's version unchanged.
	fresh := NewRegistry()
	if err := fresh.ReadSnapshot(bytes.NewReader(stale)); err != nil {
		t.Fatal(err)
	}
	if v := fresh.Version(); v != 1 {
		t.Fatalf("fresh registry version = %d, want 1", v)
	}
}

func TestReadSnapshotIgnoresStaleFile(t *testing.T) {
	cfg := testConfig().withDefaults()
	const oldAS, newAS = astopo.AS(64512), astopo.AS(64600)
	tmOld, err := fitTarget(oldAS, mkAttacks(oldAS, 0, 12), 12, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tmNew, err := fitTarget(newAS, mkAttacks(newAS, 1000, 12), 12, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}

	src := NewRegistry()
	src.Publish([]*TargetModels{tmOld})
	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	stale := buf.Bytes() // version 1, contains only oldAS

	// A registry whose clock has advanced past the file must keep its own
	// content as well as its version: installing the stale models under a
	// current version would make version-gated readers (the cluster
	// replicator) treat old content as already synced.
	dst := NewRegistry()
	for i := 0; i < 3; i++ {
		dst.Publish([]*TargetModels{tmNew})
	}
	if err := dst.ReadSnapshot(bytes.NewReader(stale)); err != nil {
		t.Fatal(err)
	}
	if v := dst.Version(); v != 3 {
		t.Fatalf("version = %d after loading a stale snapshot, want 3", v)
	}
	if _, ok := dst.Lookup(oldAS); ok {
		t.Fatal("stale snapshot's models were installed over fresher state")
	}
	if _, ok := dst.Lookup(newAS); !ok {
		t.Fatal("fresher in-memory target lost after loading a stale snapshot")
	}
}

// --- satellite: verdict-filtered refits ---------------------------------

func TestVerdictFilterImprovesBurstAccuracy(t *testing.T) {
	// A stable baseline regime plus a detector-flagged burst: the filtered
	// fit must predict the baseline magnitude at least as well as the
	// unfiltered one, which learns the burst.
	const as = astopo.AS(64512)
	attacks := mkAttacks(as, 0, 40)
	baseMag := 0.0
	for i := range attacks {
		baseMag += float64(attacks[i].Magnitude())
	}
	baseMag /= float64(len(attacks))
	burst := mkAttacks(as, 1000, 10)
	last := attacks[len(attacks)-1].Start
	for i := range burst {
		burst[i].Start = last.Add(time.Duration(i+1) * 3 * time.Hour)
		burst[i].Bots = make([]astopo.IPv4, 500+i)
		burst[i].Verdict = 1
	}
	window := append(append([]trace.Attack{}, attacks...), burst...)

	cfg := testConfig().withDefaults()
	plain, err := fitTarget(as, window, uint64(len(window)), 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.RefitVerdictFilter = true
	filtered, err := fitTarget(as, window, uint64(len(window)), 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if filtered.Prov.FilteredRecords != len(burst) {
		t.Fatalf("FilteredRecords = %d, want %d", filtered.Prov.FilteredRecords, len(burst))
	}
	errPlain := math.Abs(plain.Temporal.PredictMagnitude() - baseMag)
	errFiltered := math.Abs(filtered.Temporal.PredictMagnitude() - baseMag)
	if errFiltered > errPlain {
		t.Fatalf("verdict filter hurt baseline magnitude accuracy: filtered err %.2f > unfiltered %.2f",
			errFiltered, errPlain)
	}
}

func TestVerdictFilterKeepsWindowWhenMostlyAlerted(t *testing.T) {
	cfg := testConfig().withDefaults()
	cfg.RefitVerdictFilter = true
	window := mkAttacks(64512, 0, 12)
	for i := range window {
		if i >= 2 {
			window[i].Verdict = 1
		}
	}
	got, filtered := filterVerdicts(window, cfg)
	if filtered != 0 || len(got) != len(window) {
		t.Fatalf("filter engaged on a mostly-alerted window (kept %d, filtered %d); want full window",
			len(got), filtered)
	}
}

// --- incremental eligibility: the out-of-order fence --------------------

func TestIncrementalDeclinesOutOfOrderTail(t *testing.T) {
	const as = astopo.AS(64512)
	cfg := testConfig().withDefaults()
	cfg.DriftRatio = 0 // eligibility under test, not the drift diagnostic
	base := mkAttacks(as, 0, 40)

	prev, err := fitTarget(as, base[:36], 36, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if prev.LastStart.IsZero() || !prev.LastStart.Equal(base[35].Start) {
		t.Fatalf("fit did not record the window's newest Start: %v", prev.LastStart)
	}

	// In-order growth: the positional tail is exactly the new records and
	// the fold-in path stays eligible.
	inc, err := fitTargetIncremental(prev, as, base, 40, 2, cfg)
	if err != nil {
		t.Fatalf("in-order tail declined: %v", err)
	}
	if inc.Prov.Refit != refitIncremental || inc.Prov.FoldedRecords != 4 {
		t.Fatalf("unexpected incremental provenance: %+v", inc.Prov)
	}

	// An out-of-order arrival inserts mid-window (the store keeps windows
	// sorted by Start), shifting an already-folded record into the
	// positional tail. The fence must decline: folding that tail would
	// double-count history and never fold the actual new record.
	oob := base[10]
	oob.ID = 9999
	oob.Start = oob.Start.Add(time.Hour) // sorts between base[10] and base[11]
	window := make([]trace.Attack, 0, 40)
	window = append(window, base[:11]...)
	window = append(window, oob)
	window = append(window, base[11:36]...)
	window = append(window, base[36:39]...)
	if _, err := fitTargetIncremental(prev, as, window, 40, 2, cfg); !errors.Is(err, errNotEligible) {
		t.Fatalf("out-of-order tail accepted: got %v, want errNotEligible", err)
	}
}

func TestIncrementalFamilyCheckUsesFilteredWindow(t *testing.T) {
	// With the verdict filter on, eligibility must compare like-for-like:
	// the previous generation's family came from the filtered window, so an
	// alerted burst whose family dominates only the unfiltered view must
	// not flip the comparison into a spurious full-refit fallback.
	const as = astopo.AS(64512)
	cfg := testConfig().withDefaults()
	cfg.DriftRatio = 0 // eligibility under test, not the drift diagnostic
	cfg.RefitVerdictFilter = true

	// Clean records on mkAttacks' regular 3-hour grid: 15 DirtJumper then
	// 14 Nitol, with the last 4 (all DirtJumper) arriving as the new tail.
	clean := mkAttacks(as, 0, 33)
	for i := 15; i < 29; i++ {
		clean[i].Family = "Nitol"
	}
	// A 24-record alerted burst squeezed between two grid points, so the
	// filtered series keeps its cadence while Blackenergy takes the
	// unfiltered plurality (24 vs 19 DirtJumper).
	burst := mkAttacks(as, 1000, 24)
	for i := range burst {
		burst[i].Family = "Blackenergy"
		burst[i].Verdict = 1
		burst[i].Start = clean[28].Start.Add(time.Duration(i+1) * time.Second)
	}
	prevWin := append(append([]trace.Attack{}, clean[:29]...), burst...)
	prev, err := fitTarget(as, prevWin, uint64(len(prevWin)), 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if prev.Family != "DirtJumper" {
		t.Fatalf("setup: filtered family = %q, want DirtJumper", prev.Family)
	}

	window := append(append([]trace.Attack{}, prevWin...), clean[29:]...)
	if fam := dominantFamily(window); fam != "Blackenergy" {
		t.Fatalf("setup: unfiltered family = %q, want Blackenergy", fam)
	}
	inc, err := fitTargetIncremental(prev, as, window, uint64(len(window)), 2, cfg)
	if err != nil {
		t.Fatalf("filtered-family eligibility declined: %v", err)
	}
	if inc.Family != prev.Family {
		t.Fatalf("incremental family = %q, want %q", inc.Family, prev.Family)
	}
	if inc.Prov.FoldedRecords != 4 || inc.Prov.FilteredRecords != 0 {
		t.Fatalf("unexpected incremental provenance: %+v", inc.Prov)
	}
}

// --- promotion tracker: eviction race cannot resurrect a window ---------

func TestScoreArrivalDoesNotResurrectEvictedTracker(t *testing.T) {
	svc := New(testConfig())
	defer svc.Close()
	const a = astopo.AS(64512)
	ingestAllSync(t, svc, mkAttacks(a, 0, 12))
	tm, ok := svc.Registry().Lookup(a)
	if !ok {
		t.Fatal("target not published")
	}
	if svc.promo.Size() != 1 {
		t.Fatalf("promotion trackers = %d, want 1", svc.promo.Size())
	}

	// An arrival for a target the store no longer knows (its eviction hook
	// already dropped the tracker) must not leave a ghost window behind:
	// evicted targets get no refits, so nothing would ever clean it up.
	ghost := mkAttacks(astopo.AS(65000), 5000, 2)
	prev := PrevStats{N: 5, LastStart: ghost[0].Start, LastMag: 4, LastDur: 660}
	svc.scoreArrival(tm, true, prev, &ghost[1])
	if got := svc.promo.Size(); got != 1 {
		t.Fatalf("promotion trackers = %d after scoring an evicted target, want 1", got)
	}
}

// --- incremental vs full: serve-level equivalence + accuracy parity -----

func TestIncrementalServeAccuracyParity(t *testing.T) {
	const as = astopo.AS(64512)
	run := func(incremental bool) (obs.Summary, *Forecast, uint64) {
		cfg := testConfig()
		cfg.IncrementalRefit = incremental
		svc := New(cfg)
		defer svc.Close()
		ingestAllSync(t, svc, mkAttacks(as, 0, 120))
		fc, err := svc.Forecast(as)
		if err != nil {
			t.Fatal(err)
		}
		return svc.Accuracy().Summary(ModelST), fc, svc.tel.refitIncremental.Value()
	}
	full, fcFull, nFull := run(false)
	inc, fcInc, nInc := run(true)
	if nFull != 0 {
		t.Fatalf("full-only service recorded %d incremental refits", nFull)
	}
	if nInc == 0 {
		t.Fatal("incremental service never took the fold-in path")
	}
	// Machine-parseable for scripts/bench.sh (BENCH_10 accuracy gate).
	fmt.Printf("INCR_PARITY incremental_refits=%d full_magnitude_relerr=%.6f incremental_magnitude_relerr=%.6f\n",
		nInc, full.Magnitude.MeanRelErr, inc.Magnitude.MeanRelErr)
	if inc.Magnitude.Samples == 0 || full.Magnitude.Samples == 0 {
		t.Fatal("no scored magnitude samples")
	}
	// Equal-or-better within noise: the fold-in path must not trade away
	// tracked accuracy for its speedup.
	if inc.Magnitude.MeanRelErr > full.Magnitude.MeanRelErr*1.10+0.05 {
		t.Fatalf("incremental magnitude accuracy regressed: %.4f vs full %.4f",
			inc.Magnitude.MeanRelErr, full.Magnitude.MeanRelErr)
	}
	for _, fc := range []*Forecast{fcFull, fcInc} {
		if math.IsNaN(fc.Magnitude) || math.IsNaN(fc.DurationSec) || fc.Magnitude < 0 {
			t.Fatalf("degenerate forecast %+v", fc)
		}
	}
	if fcInc.Provenance == nil || fcFull.Provenance == nil {
		t.Fatal("forecast missing provenance")
	}
	// The incremental service's serving generation folded from a base one.
	if fcInc.Provenance.Refit == refitIncremental && fcInc.Provenance.BaseGeneration == 0 {
		t.Fatal("incremental provenance missing base generation")
	}
}

// --- promotion: determinism and the degraded-ST acceptance path ---------

func TestPromotionDeterminism(t *testing.T) {
	const a, b = astopo.AS(64512), astopo.AS(64520)
	run := func() map[astopo.AS]Provenance {
		cfg := testConfig()
		cfg.MinSTWindow = 24 // let the tree and ensemble engage
		cfg.PromoMinSamples = 4
		cfg.IncrementalRefit = true
		svc := New(cfg)
		defer svc.Close()
		as1, as2 := mkAttacks(a, 0, 60), mkAttacks(b, 5000, 60)
		for i := range as1 {
			if _, err := svc.Ingest(&as1[i]); err != nil {
				t.Fatal(err)
			}
			if _, err := svc.Ingest(&as2[i]); err != nil {
				t.Fatal(err)
			}
			svc.Flush()
		}
		out := make(map[astopo.AS]Provenance)
		for _, as := range svc.Registry().Targets() {
			tm, _ := svc.Registry().Lookup(as)
			out[as] = tm.Prov
		}
		return out
	}
	first, second := run(), run()
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("promotion lineage diverged across identical runs:\nrun1: %+v\nrun2: %+v", first, second)
	}
}

// badSpatiotemporal fits a CART tree on garbage labels (~1e6 everywhere):
// the stand-in for a spatiotemporal stage that degraded mid-stream.
func badSpatiotemporal(t *testing.T, cfg Config) *core.Spatiotemporal {
	t.Helper()
	samples := make([]core.STSample, 16)
	for i := range samples {
		samples[i] = core.STSample{
			F: core.STFeatures{
				TmpHour: float64(i % 24), TmpDay: float64(1 + i%28), TmpMag: float64(5 + i%3),
				SpaHour: float64(i % 24), SpaDay: float64(1 + i%28), SpaDur: 600,
				TargetAS: 64512,
			},
			Hour: 0, Day: 1, Dur: 1e6, Mag: 1e6,
		}
	}
	st, err := core.FitSpatiotemporal(samples, cfg.ST)
	if err != nil {
		t.Fatalf("fit bad ST: %v", err)
	}
	return st
}

func TestDegradedSTPromotesComponentChampion(t *testing.T) {
	// Acceptance: a target whose spatiotemporal stage degrades mid-stream
	// ends with a component (or ensemble) champion serving each measure,
	// with the promotion recorded in provenance and metrics.
	const as = astopo.AS(64512)
	cfg := testConfig()
	cfg.PromoMinSamples = 4
	cfg.PromoWindow = 64
	var bad *core.Spatiotemporal
	cfg.WrapFit = func(next FitFunc) FitFunc {
		return func(as astopo.AS, window []trace.Attack, total uint64, gen uint64, c Config) (*TargetModels, error) {
			tm, err := next(as, window, total, gen, c)
			if err != nil {
				return nil, err
			}
			// From here on, every published generation serves the degraded
			// tree: its forecasts are ~1e6, wildly off the real regime.
			tm.ST = bad
			tm.Ensemble = nil
			return tm, nil
		}
	}
	svc := New(cfg)
	defer svc.Close()
	bad = badSpatiotemporal(t, svc.cfg)

	ingestAllSync(t, svc, mkAttacks(as, 0, 80))

	tm, ok := svc.Registry().Lookup(as)
	if !ok {
		t.Fatal("target not published")
	}
	champs := tm.Prov.Champions
	if champOr(champs.Magnitude) == ModelST {
		t.Fatalf("magnitude champion still the degraded ST kind: %+v", champs)
	}
	if len(tm.Prov.History) == 0 {
		t.Fatal("promotion happened but lineage is empty")
	}
	promoted := uint64(0)
	for _, kind := range promoKinds() {
		promoted += svc.tel.promotions.With(kind).Value()
	}
	if promoted == 0 {
		t.Fatal("ddosd_model_promotions_total never incremented")
	}
	// The served forecast follows the champion, not the degraded tree.
	fc, err := svc.Forecast(as)
	if err != nil {
		t.Fatal(err)
	}
	if fc.Magnitude > 1e5 {
		t.Fatalf("served magnitude %.0f still follows the degraded tree", fc.Magnitude)
	}
	if fc.Provenance == nil || champOr(fc.Provenance.Champions.Magnitude) == ModelST {
		t.Fatalf("forecast provenance does not carry the promoted champion: %+v", fc.Provenance)
	}
	// The promotion also shows in the exposition.
	var buf bytes.Buffer
	svc.tel.reg.WriteText(&buf)
	if !bytes.Contains(buf.Bytes(), []byte("ddosd_model_promotions_total")) {
		t.Fatal("promotions metric missing from /metrics exposition")
	}
}

// --- snapshot codec: ensemble + provenance round-trip -------------------

func TestSnapshotRoundTripEnsembleProvenance(t *testing.T) {
	cfg := testConfig().withDefaults()
	window := mkAttacks(64512, 0, 12)
	tm, err := fitTarget(64512, window, 12, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tm.Ensemble = &Ensemble{
		Mag:  &regress.SimplexModel{Weights: []float64{0.25, 0.75}, MSE: 1.5, N: 20},
		Hour: &regress.SimplexModel{Weights: []float64{0.2, 0.3, 0.5}, MSE: 2.25, N: 20},
	}
	tm.Prov = Provenance{
		Refit:           refitIncremental,
		BaseGeneration:  2,
		FoldedRecords:   4,
		FilteredRecords: 1,
		IncrSinceFull:   3,
		Champions:       Champions{Magnitude: ModelEnsemble, Duration: ModelSpatial, Timestamp: ModelST},
		History: []Promotion{
			{Measure: MeasureMagnitude, From: ModelST, To: ModelEnsemble, Generation: 3, Reason: "test"},
		},
	}
	src := NewRegistry()
	src.Publish([]*TargetModels{tm})
	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dst := NewRegistry()
	if err := dst.ReadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	got, ok := dst.Lookup(64512)
	if !ok {
		t.Fatal("target missing after round trip")
	}
	if !reflect.DeepEqual(got.Prov, tm.Prov) {
		t.Fatalf("provenance mutated by codec:\ngot  %+v\nwant %+v", got.Prov, tm.Prov)
	}
	if !reflect.DeepEqual(got.Ensemble, tm.Ensemble) {
		t.Fatalf("ensemble mutated by codec:\ngot  %+v\nwant %+v", got.Ensemble, tm.Ensemble)
	}
	// The restored generation serves the identical champion composition.
	fcSrc, err := src.Forecast(64512)
	if err != nil {
		t.Fatal(err)
	}
	fcDst, err := dst.Forecast(64512)
	if err != nil {
		t.Fatal(err)
	}
	if fcSrc.Magnitude != fcDst.Magnitude || fcSrc.Hour != fcDst.Hour ||
		fcSrc.DurationSec != fcDst.DurationSec || fcSrc.Day != fcDst.Day {
		t.Fatalf("forecast drifted across snapshot round trip:\nsrc %+v\ndst %+v", fcSrc, fcDst)
	}
	srcJSON, _ := json.Marshal(fcSrc.Provenance)
	dstJSON, _ := json.Marshal(fcDst.Provenance)
	if !bytes.Equal(srcJSON, dstJSON) {
		t.Fatalf("provenance drifted across snapshot round trip:\nsrc %s\ndst %s", srcJSON, dstJSON)
	}
}

// --- ensemble: fit on walk-forward samples ------------------------------

func TestEnsembleFitsOnWalkForwardSamples(t *testing.T) {
	cfg := testConfig().withDefaults()
	cfg.MinSTWindow = 24
	window := mkAttacks(64512, 0, 64)
	st, ens := fitSTModels(64512, window, cfg)
	if st == nil {
		t.Fatal("spatiotemporal stage did not engage on a 64-record window")
	}
	if !ens.ready() {
		t.Fatal("ensemble did not fit on the walk-forward samples")
	}
	for name, m := range map[string]*regress.SimplexModel{
		"mag": ens.Mag, "dur": ens.Dur, "hour": ens.Hour, "day": ens.Day,
	} {
		if m == nil {
			continue
		}
		sum := 0.0
		for _, w := range m.Weights {
			if w < -1e-9 {
				t.Fatalf("%s combiner has negative weight %v", name, w)
			}
			sum += w
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("%s combiner weights sum to %v, want 1", name, sum)
		}
	}
}

// --- refit cost: the BENCH_10 pair --------------------------------------

func benchWindow(n int) []trace.Attack { return mkAttacks(64512, 0, n) }

func BenchmarkRefitFull(b *testing.B) {
	cfg := testConfig().withDefaults()
	window := benchWindow(160)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fitTarget(64512, window, uint64(len(window)), uint64(i+1), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRefitIncremental(b *testing.B) {
	cfg := testConfig().withDefaults()
	cfg.IncrementalRefit = true
	// The synthetic day-of-month ramp sits at the NAR's extrapolation edge
	// and trips the default drift threshold; a huge ratio keeps the
	// diagnostic's cost in the measurement without aborting the fold-in.
	cfg.DriftRatio = 1e9
	window := benchWindow(160)
	prev, err := fitTarget(64512, window[:152], 152, 1, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fitTargetIncremental(prev, 64512, window, 160, uint64(i+2), cfg); err != nil {
			b.Fatal(err)
		}
	}
}
