package serve

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/trace"
)

// Vectorized ingest (DESIGN.md §11): IngestBatch pushes a whole decoded
// batch through the same pipeline as Ingest — dedup + window insert,
// WAL durability before the ack, online accuracy scoring, refit
// scheduling — while amortizing the per-record costs the scalar path
// pays N times:
//
//   - records are grouped by store shard (counting sort, stable so each
//     target sees its records in arrival order) and every shard lock is
//     taken once per batch instead of once per record;
//   - all accepted frames reach the WAL through one AppendBatch call —
//     one WAL lock, one buffered write, one fsync;
//   - every piece of per-record scratch state lives in a pooled arena,
//     so the path performs amortized zero allocations per record
//     (pinned by TestIngestBatchZeroAlloc / BenchmarkIngestBatch).
//
// Ordering guarantees are identical to N scalar Ingest calls in batch
// order: registry lookups happen before any store insert
// (score-then-append — the accuracy tracker judges the forecast that
// existed while the arrival was still the future), PrevStats are
// captured per record under the shard lock immediately before its
// insert, and the store-insert + WAL-append pair sits under the shared
// side of the checkpoint barrier so a concurrent checkpoint sees each
// record on exactly one side of the cut.

// BatchResult counts what one IngestBatch call committed.
type BatchResult struct {
	Ingested   int // new records applied to the store
	Duplicates int // records dropped as windowed-attack-ID duplicates
}

// BatchRecordError reports the first record IngestBatch rejected as
// invalid. Index is the record's 1-based position in the batch; records
// before it were applied (counted in the accompanying BatchResult),
// records at and after it were not.
type BatchRecordError struct {
	Index int
	Err   error
}

func (e *BatchRecordError) Error() string {
	return fmt.Sprintf("record %d: %v", e.Index, e.Err)
}

func (e *BatchRecordError) Unwrap() error { return e.Err }

// batchRec is one record's per-batch scratch state.
type batchRec struct {
	tm        *TargetModels
	prev      PrevStats
	det       detectOutcome
	shard     int
	since     int
	windowLen int
	accepted  bool
	published bool
}

// batchScratch is the pooled arena behind IngestBatch: reused across
// batches so the hot path allocates nothing once warm.
type batchScratch struct {
	recs     []batchRec
	counts   []int    // per-shard bucket offsets for the counting sort
	order    []int    // record indices grouped by shard, arrival-stable
	payloads [][]byte // accepted records' WAL frames, arrival order
	enc      []byte   // arena for self-encoded payloads (nil payload fn)
	encOffs  []int
}

var batchPool = sync.Pool{New: func() any { return &batchScratch{} }}

// IngestBatch admits records as one vectorized operation. payload, when
// non-nil, returns record i's pre-encoded binary WAL frame (the zero
// re-serialization path: the HTTP layer passes BatchDecoder.Payload);
// when nil the service encodes accepted records itself.
//
// Error semantics mirror the scalar path, batched: ErrShedding means
// nothing was applied; ErrNotDurable means the counted records are in
// memory but the batch's WAL append failed, so the client must retry
// (dedup absorbs the replay); a *BatchRecordError means everything
// before the named record was applied and nothing at or after it was.
func (s *Service) IngestBatch(records []trace.Attack, payload func(i int) []byte) (BatchResult, error) {
	res, _, err := s.ingestBatchTimed(records, payload)
	return res, err
}

func (s *Service) ingestBatchTimed(records []trace.Attack, payload func(i int) []byte) (BatchResult, ingestStageTimes, error) {
	return s.ingestBatch(records, payload, true)
}

// ingestBatch is the shared body. shed=false is the replication-apply
// path (IngestBatchReplica): a follower keeping warm must not be turned
// away by its own refit backlog.
func (s *Service) ingestBatch(records []trace.Attack, payload func(i int) []byte, shed bool) (BatchResult, ingestStageTimes, error) {
	var res BatchResult
	var st ingestStageTimes
	if shed && s.sched.Overloaded() {
		s.tel.ingestShed.Inc()
		return res, st, ErrShedding
	}
	// Validate up front and apply only the prefix before the first bad
	// record, so the reported index tells the client exactly where the
	// batch stopped.
	n := len(records)
	bad := -1
	var badErr error
	for i := range records {
		if err := ValidateRecord(&records[i]); err != nil {
			bad, badErr, n = i, err, i
			break
		}
	}
	if n == 0 {
		if bad >= 0 {
			return res, st, &BatchRecordError{Index: 1, Err: badErr}
		}
		return res, st, nil
	}

	b := batchPool.Get().(*batchScratch)
	defer func() {
		for i := range b.recs {
			b.recs[i].tm = nil // don't pin model snapshots in the pool
		}
		batchPool.Put(b)
	}()
	if cap(b.recs) < n {
		b.recs = make([]batchRec, n)
	}
	b.recs = b.recs[:n]

	// Model lookup for every record before any store insert: the
	// score-then-append ordering, batched.
	for i := 0; i < n; i++ {
		b.recs[i].tm, b.recs[i].published = s.reg.Lookup(records[i].TargetAS)
		b.recs[i].shard = s.store.shardIndex(records[i].TargetAS)
	}

	// Stable counting sort of record indices by shard: each shard lock is
	// taken once, and a target's records apply in arrival order.
	shards := len(s.store.shards)
	if cap(b.counts) < shards {
		b.counts = make([]int, shards)
	}
	b.counts = b.counts[:shards]
	for i := range b.counts {
		b.counts[i] = 0
	}
	for i := 0; i < n; i++ {
		b.counts[b.recs[i].shard]++
	}
	sum := 0
	for i := range b.counts {
		c := b.counts[i]
		b.counts[i] = sum
		sum += c
	}
	if cap(b.order) < n {
		b.order = make([]int, n)
	}
	b.order = b.order[:n]
	for i := 0; i < n; i++ {
		sh := b.recs[i].shard
		b.order[b.counts[sh]] = i
		b.counts[sh]++
	}

	w := s.walRef.Load()
	if w != nil {
		s.walMu.RLock()
	}
	t0 := time.Now()
	for lo := 0; lo < n; {
		shardIdx := b.recs[b.order[lo]].shard
		hi := lo
		for hi < n && b.recs[b.order[hi]].shard == shardIdx {
			hi++
		}
		sh := &s.store.shards[shardIdx]
		sh.mu.Lock()
		for _, i := range b.order[lo:hi] {
			r := &b.recs[i]
			r.since, r.windowLen, r.prev, r.det, r.accepted = s.store.ingestLocked(sh, &records[i])
		}
		sh.mu.Unlock()
		lo = hi
	}
	if s.store.det != nil {
		var detRan, detStale uint64
		for i := 0; i < n; i++ {
			if d := &b.recs[i].det; d.Ran {
				detRan++
				if d.Stale {
					detStale++
				}
				st.Detect += d.Dur
			}
		}
		s.tel.detRecords.Add(detRan)
		s.tel.detStale.Add(detStale)
		s.tel.observeStage(StageDetect, st.Detect.Seconds())
	}
	st.Append = time.Since(t0) - st.Detect
	s.tel.observeStage(StageAppend, st.Append.Seconds())

	var walErr error
	if w != nil {
		b.payloads = b.payloads[:0]
		if payload != nil {
			for i := 0; i < n; i++ {
				if b.recs[i].accepted {
					b.payloads = append(b.payloads, payload(i))
				}
			}
		} else {
			// Self-encode into the arena; subslice after it stops growing.
			b.enc = b.enc[:0]
			b.encOffs = append(b.encOffs[:0], 0)
			for i := 0; i < n && walErr == nil; i++ {
				if !b.recs[i].accepted {
					continue
				}
				b.enc, walErr = trace.AppendRecord(b.enc, &records[i])
				b.encOffs = append(b.encOffs, len(b.enc))
			}
			for j := 0; j+1 < len(b.encOffs); j++ {
				b.payloads = append(b.payloads, b.enc[b.encOffs[j]:b.encOffs[j+1]])
			}
		}
		if walErr == nil && len(b.payloads) > 0 {
			t := time.Now()
			walErr = s.appendWALBatch(w, b.payloads)
			st.WAL = time.Since(t)
			s.tel.observeStage(StageWAL, st.WAL.Seconds())
			s.tel.walAppendSecs.Observe(st.WAL.Seconds())
		}
	}
	if w != nil {
		s.walMu.RUnlock()
	}

	for i := 0; i < n; i++ {
		if b.recs[i].accepted {
			res.Ingested++
		} else {
			res.Duplicates++
		}
	}
	s.tel.ingestRecords.Add(uint64(res.Ingested))
	s.tel.ingestDups.Add(uint64(res.Duplicates))
	if walErr != nil {
		// Applied in memory but not persisted: fail the ack so the client
		// retries the batch; the dedup window absorbs the replay.
		s.tel.walAppendErrors.Inc()
		return res, st, fmt.Errorf("%w: %w", ErrNotDurable, walErr)
	}

	t1 := time.Now()
	for i := 0; i < n; i++ {
		r := &b.recs[i]
		if !r.accepted {
			continue
		}
		if r.prev.N > 0 && !records[i].Start.Before(r.prev.LastStart) {
			s.scoreArrival(r.tm, r.published, r.prev, &records[i])
		}
	}
	st.Score = time.Since(t1)
	s.tel.observeStage(StageScore, st.Score.Seconds())

	t2 := time.Now()
	for i := 0; i < n; i++ {
		r := &b.recs[i]
		if !r.accepted || r.windowLen < s.cfg.MinWindow {
			continue
		}
		if r.since >= s.cfg.RefitEvery || !r.published {
			s.sched.TryEnqueue(records[i].TargetAS)
		}
	}
	st.Schedule = time.Since(t2)
	s.tel.observeStage(StageSchedule, st.Schedule.Seconds())

	if bad >= 0 {
		return res, st, &BatchRecordError{Index: bad + 1, Err: badErr}
	}
	return res, st, nil
}
