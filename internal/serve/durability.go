package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/trace"
	"repro/internal/wal"
)

// Durability layer (DESIGN.md §10): the glue between the serving stack
// and internal/wal. Three moving parts:
//
//   - Append path: once a record is accepted into the store, ingestTimed
//     appends its binary record encoding (trace.AppendRecord — the same
//     bytes the batch wire carries) to the WAL before the HTTP ack (the
//     StageWAL child of the ingest span); ingestBatchTimed appends a whole
//     batch's frames in one wal.AppendBatch call, passing binary-wire
//     payloads through without re-serialization. Both operations happen
//     under the shared side of the checkpoint barrier (Service.walMu).
//     Replay dispatches per frame on the first payload byte, so logs
//     holding legacy JSON frames keep replaying.
//   - Recovery path: RecoverWAL restores the last durable checkpoint into
//     the store, replays the WAL tail (stopping cleanly at a torn frame),
//     re-schedules refits for every recovered target, and waits for the
//     models to publish before the daemon starts serving.
//   - Checkpoint path: CheckpointWAL rotates the active segment, writes
//     the whole store (windows are bounded, so this is cheap) atomically
//     to checkpoint.json in the WAL dir, and compacts the segments the
//     checkpoint covers. A background loop runs it whenever sealed
//     segments accumulate, and the daemon runs it once more at shutdown
//     so the next boot replays (almost) nothing.

// checkpointName is the durable store image inside the WAL directory.
const checkpointName = "checkpoint.json"

// walCheckInterval is how often the background compactor looks for sealed
// segments to checkpoint away. A variable so deterministic tests can park
// the background loop and drive checkpoints explicitly.
var walCheckInterval = time.Second

// ErrNotDurable wraps WAL append failures surfaced through Ingest: the
// record was applied in memory but could not be persisted, so the client
// must treat the request as failed and retry. The HTTP layer maps it to
// 500 rather than 400 (the record itself was fine).
var ErrNotDurable = errors.New("serve: record not durable")

// checkpointFile is the on-disk checkpoint: the store image plus the WAL
// cut line it covers. Segments with sequence ≤ CoveredSeq are redundant
// once this file is durable; replay skips their frames if a crash beat
// the compaction to them.
type checkpointFile struct {
	CoveredSeq uint64             `json:"covered_seq"`
	Targets    []TargetCheckpoint `json:"targets"`
}

// RecoveryStats summarizes one boot-time RecoverWAL pass.
type RecoveryStats struct {
	CheckpointTargets int    // targets restored from checkpoint.json
	CoveredSeq        uint64 // WAL cut line the checkpoint covered
	Segments          int    // WAL segments visited by replay
	Replayed          int    // records replayed into the store
	Duplicates        int    // replayed frames dropped as duplicates
	Skipped           int    // frames under the checkpoint cut line
	Truncated         bool   // replay stopped at a torn/corrupt frame
	TruncatedSeq      uint64 // segment holding the bad frame
	TruncatedOff      int64  // byte offset of the bad frame
	Refits            int    // targets re-queued for refit after replay
}

// AttachWAL arms the durability layer: subsequent accepted ingests append
// to w before they are acked, and a background loop checkpoints the store
// and compacts covered segments whenever the active segment rotates.
// Call after RecoverWAL at boot — an attached WAL must not be replayed
// into the same service again. The service does not take ownership of w;
// detach (or Close) before closing it.
func (s *Service) AttachWAL(w *wal.WAL, logger *slog.Logger) {
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	s.walLogger = logger
	s.walRef.Store(w)
	s.updateWALGauges(w)
	s.walStop = make(chan struct{})
	s.walDone = make(chan struct{})
	go s.compactLoop(w)
}

// DetachWAL stops the background checkpointer and detaches the WAL from
// the ingest path. Safe to call when nothing is attached. Pending
// checkpoint state is left to the caller (ddosd runs one final
// CheckpointWAL before detaching).
func (s *Service) DetachWAL() {
	if s.walRef.Swap(nil) == nil {
		return
	}
	close(s.walStop)
	<-s.walDone
}

// WALStats exposes the attached WAL's counters (tests, /healthz callers).
// ok is false when no WAL is attached.
func (s *Service) WALStats() (wal.Stats, bool) {
	w := s.walRef.Load()
	if w == nil {
		return wal.Stats{}, false
	}
	return w.Stats(), true
}

// walEncPool holds per-append encode buffers (appendWAL runs on
// concurrent ingest requests).
var walEncPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 256)
	return &b
}}

// appendWAL frames one accepted record into the log using the binary
// record encoding — the same bytes the batch wire carries, so scalar
// and batched ingests of the same record are byte-identical in the log.
// Called under walMu.RLock from ingestTimed.
func (s *Service) appendWAL(w *wal.WAL, a *trace.Attack) error {
	bp := walEncPool.Get().(*[]byte)
	defer walEncPool.Put(bp)
	buf, err := trace.AppendRecord((*bp)[:0], a)
	if err != nil {
		return fmt.Errorf("encode: %w", err)
	}
	*bp = buf[:0]
	if err := w.Append(buf); err != nil {
		return err
	}
	s.tel.walAppends.Inc()
	s.tel.walBytes.Add(uint64(len(buf)) + 8)
	s.updateWALGauges(w)
	return nil
}

// appendWALBatch is appendWAL for a whole batch of pre-encoded frames:
// one wal.AppendBatch call, so one log lock and one fsync. Called under
// walMu.RLock from ingestBatchTimed.
func (s *Service) appendWALBatch(w *wal.WAL, payloads [][]byte) error {
	if err := w.AppendBatch(payloads); err != nil {
		return err
	}
	s.tel.walAppends.Add(uint64(len(payloads)))
	var bytes uint64
	for _, p := range payloads {
		bytes += uint64(len(p)) + 8
	}
	s.tel.walBytes.Add(bytes)
	s.updateWALGauges(w)
	return nil
}

func (s *Service) updateWALGauges(w *wal.WAL) {
	st := w.Stats()
	s.tel.walSegments.Set(int64(st.TotalSegments()))
	s.tel.walActiveBytes.Set(st.ActiveBytes)
	s.tel.walDiskBytes.Set(st.DiskBytes())
}

// refreshWALGauges is the registry's scrape hook: the disk gauges track
// the WAL's real on-disk footprint at read time, not just the value at
// the last append (compaction and sealing both move them).
func (s *Service) refreshWALGauges() {
	if w := s.walRef.Load(); w != nil {
		s.updateWALGauges(w)
	}
}

// RecoverWAL rebuilds the store from the WAL directory: checkpoint first,
// then the segment tail, oldest first. Replay stops cleanly at the first
// torn or corrupt frame — everything acked before the tear is recovered,
// nothing after it is trusted — and a torn tail is never fatal. After the
// records are back, every target with enough history is re-queued for
// refit and the call blocks until those models publish, so the daemon
// serves forecasts immediately on restart. progress, when non-nil, is
// invoked after each replayed segment (the daemon logs it at debug).
//
// Call once at boot on a fresh service, before AttachWAL.
func (s *Service) RecoverWAL(w *wal.WAL, progress func(RecoveryStats)) (RecoveryStats, error) {
	var rs RecoveryStats
	cpPath := filepath.Join(w.Dir(), checkpointName)
	if f, err := os.Open(cpPath); err == nil {
		var cp checkpointFile
		err := json.NewDecoder(f).Decode(&cp)
		f.Close()
		if err != nil {
			// The checkpoint is written atomically, so a torn file here means
			// disk-level damage; its covered segments were compacted away, so
			// proceeding without it would silently drop acked records.
			return rs, fmt.Errorf("serve: wal checkpoint %s corrupt: %w (remove it to boot from the remaining segments)", cpPath, err)
		}
		s.store.Restore(cp.Targets)
		rs.CheckpointTargets = len(cp.Targets)
		rs.CoveredSeq = cp.CoveredSeq
	} else if !os.IsNotExist(err) {
		return rs, fmt.Errorf("serve: wal checkpoint: %w", err)
	}

	lastSeq := uint64(0)
	res, err := w.Replay(func(seq uint64, rec []byte) error {
		if seq != lastSeq && lastSeq != 0 && progress != nil {
			rs.Segments++
			progress(rs)
		}
		lastSeq = seq
		if seq <= rs.CoveredSeq {
			rs.Skipped++
			return nil
		}
		// Frames dispatch on their first byte: 0xDB marks the binary record
		// encoding, anything else is a legacy JSON frame from a pre-binary
		// log — both replay into the same store.
		var a trace.Attack
		if trace.IsBinaryRecord(rec) {
			if err := trace.UnmarshalRecord(rec, &a); err != nil {
				return fmt.Errorf("serve: wal segment %d holds an undecodable record: %w", seq, err)
			}
		} else if err := json.Unmarshal(rec, &a); err != nil {
			return fmt.Errorf("serve: wal segment %d holds an undecodable record: %w", seq, err)
		}
		if err := ValidateRecord(&a); err != nil {
			return fmt.Errorf("serve: wal segment %d: %w", seq, err)
		}
		if _, _, ok := s.store.Ingest(&a); ok {
			rs.Replayed++
		} else {
			rs.Duplicates++
		}
		return nil
	})
	rs.Segments = res.Segments
	rs.Truncated = res.Truncated
	rs.TruncatedSeq = res.TruncatedSeq
	rs.TruncatedOff = res.TruncatedOff
	if err != nil {
		return rs, err
	}
	s.tel.walReplayed.Add(uint64(rs.Replayed))
	s.tel.walReplayDups.Add(uint64(rs.Duplicates))
	if rs.Truncated {
		s.tel.walTruncations.Inc()
	}

	// Re-schedule refits so the registry repopulates before serving.
	for _, as := range s.store.Targets() {
		if window, _ := s.store.Window(as); len(window) >= s.cfg.MinWindow {
			if s.sched.TryEnqueue(as) {
				rs.Refits++
			}
		}
	}
	s.sched.Flush()
	if progress != nil {
		progress(rs)
	}
	return rs, nil
}

// CheckpointWAL writes a durable image of the store into the WAL dir and
// compacts the segments it covers. The barrier (walMu) makes the cut
// exact: the rotation and the store snapshot happen atomically with
// respect to ingest's insert+append pair, so every record is either in
// this checkpoint (segment ≤ cut, compacted) or in a later segment
// (replayed on boot) — never both, never neither. The checkpoint file
// itself is written atomically; a crash at any point leaves either the
// old or the new checkpoint, each consistent with the segments on disk.
func (s *Service) CheckpointWAL() error {
	_, _, err := s.checkpointWAL()
	return err
}

// checkpointWAL is CheckpointWAL returning the checkpoint's content —
// the cluster catch-up fallback serves the same image it just made
// durable (Service.CheckpointSnapshot).
func (s *Service) checkpointWAL() (uint64, []TargetCheckpoint, error) {
	w := s.walRef.Load()
	if w == nil {
		return 0, nil, errors.New("serve: no WAL attached")
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()

	s.walMu.Lock()
	covered, err := w.Rotate()
	var targets []TargetCheckpoint
	if err == nil {
		targets = s.store.Checkpoint()
	}
	s.walMu.Unlock()
	if err != nil {
		return 0, nil, err
	}

	path := filepath.Join(w.Dir(), checkpointName)
	err = wal.WriteFileAtomic(path, func(wr io.Writer) error {
		return json.NewEncoder(wr).Encode(&checkpointFile{CoveredSeq: covered, Targets: targets})
	})
	if err != nil {
		return 0, nil, err
	}
	removed, err := w.Compact(covered)
	if err != nil {
		return 0, nil, err
	}
	s.tel.walCheckpoints.Inc()
	s.tel.walCompacted.Add(uint64(removed))
	s.updateWALGauges(w)
	return covered, targets, nil
}

// compactLoop checkpoints in the background whenever segment rotation has
// left sealed segments behind, bounding both replay time after a crash
// and disk usage under sustained ingest.
func (s *Service) compactLoop(w *wal.WAL) {
	defer close(s.walDone)
	t := time.NewTicker(walCheckInterval)
	defer t.Stop()
	for {
		select {
		case <-s.walStop:
			return
		case <-t.C:
			if w.Stats().SealedSegments == 0 {
				continue
			}
			if err := s.CheckpointWAL(); err != nil {
				if errors.Is(err, wal.ErrClosed) {
					return
				}
				s.walLogger.Warn("wal checkpoint failed", "component", "wal", "error", err)
			}
		}
	}
}
