package serve_test

// Ground-truth validation for the streaming detection tier (DESIGN.md
// §13): the load generator overlays an analytic burst schedule on its
// baseline profile traffic and labels every record it emits, so detector
// quality is measured against known truth instead of asserted —
// record-level precision and recall over the verdicts the service stored,
// and detection latency from each burst's analytic start to its first
// raise alert. A pure-baseline profile additionally pins the
// zero-false-positive contract: profile-shaped traffic alone must never
// trip an alert.

import (
	"sort"
	"testing"
	"time"

	"repro/internal/astopo"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/loadgen"
	"repro/internal/nn"
	"repro/internal/serve"
	"repro/internal/trace"
)

// detectGenConfig is the labeled-burst profile the validation test
// drives: 4 targets whose bursts (90s long, ~2.5 rec/s, 4-address bot
// pool) recur every 40 trace-minutes, staggered by a quarter period, over
// compressed baseline pacing of roughly one record per 6-45s per target.
func detectGenConfig() loadgen.GenConfig {
	return loadgen.GenConfig{
		Targets:      4,
		Seed:         5,
		TimeCompress: 1500,
		Burst: loadgen.BurstConfig{
			Every:   40 * time.Minute,
			Len:     90 * time.Second,
			Gap:     400 * time.Millisecond,
			BotPool: 4,
		},
	}
}

// detectServeConfig is the service under test: refits disabled (the
// detector, not the modeling pipeline, is on trial) and windows big
// enough to retain every record for the read-back join.
func detectServeConfig() serve.Config {
	return serve.Config{
		Shards:    4,
		Window:    16384,
		MinWindow: 1 << 20,
		Seed:      7,
		Detect:    &detect.Config{AlertCap: 8192},
		Temporal:  core.TemporalConfig{MaxP: 1, MaxQ: 1},
		Spatial: core.SpatialConfig{
			Delays: []int{2},
			Hidden: []int{2},
			Train:  nn.TrainConfig{Epochs: 8},
		},
	}
}

func TestDetectGroundTruth(t *testing.T) {
	const records = 24000
	svc := serve.New(detectServeConfig())
	defer svc.Close()
	gen := loadgen.NewGenerator(detectGenConfig())

	var until time.Time
	for i := 0; i < records; i++ {
		a := gen.Next()
		if a.Start.After(until) {
			until = a.Start
		}
		if ok, err := svc.Ingest(a); err != nil || !ok {
			t.Fatalf("record %d (ID %d): accepted=%v err=%v", i, a.ID, ok, err)
		}
	}

	// Record-level confusion matrix over the verdicts the store holds,
	// joined with the generator's ground-truth labels by record ID.
	var stored []trace.Attack
	for _, as := range gen.Targets() {
		w, _ := svc.Store().Window(as)
		stored = append(stored, w...)
	}
	if len(stored) != records {
		t.Fatalf("read back %d records, drove %d (window eviction breaks the join)", len(stored), records)
	}
	var tp, fp, fn, attack int
	for i := range stored {
		truth := gen.Label(stored[i].ID)
		flagged := stored[i].Verdict != 0
		if truth {
			attack++
		}
		switch {
		case flagged && truth:
			tp++
		case flagged && !truth:
			fp++
		case !flagged && truth:
			fn++
		}
	}
	if attack == 0 {
		t.Fatal("generator produced no attack-phase records")
	}
	precision := float64(tp) / float64(tp+fp)
	recall := float64(tp) / float64(tp+fn)
	t.Logf("records=%d attack=%d tp=%d fp=%d fn=%d precision=%.4f recall=%.4f",
		records, attack, tp, fp, fn, precision, recall)
	if precision < 0.9 {
		t.Errorf("precision %.4f below the 0.9 gate (tp=%d fp=%d)", precision, tp, fp)
	}
	if recall < 0.8 {
		t.Errorf("recall %.4f below the 0.8 gate (tp=%d fn=%d)", recall, tp, fn)
	}

	// Detection latency: every generated burst's first record lands
	// exactly on its analytic start, so the gap from interval start to the
	// first raise alert inside the interval is the tier's true latency.
	// Only intervals the finite run actually populated with a full burst
	// are scored.
	d := svc.Store().Detector()
	raises := d.Recent(0)
	recsOf := make(map[astopo.AS][]time.Time)
	for i := range stored {
		if gen.Label(stored[i].ID) {
			recsOf[stored[i].TargetAS] = append(recsOf[stored[i].TargetAS], stored[i].Start)
		}
	}
	var latencies []time.Duration
	for _, iv := range gen.BurstIntervals(until) {
		n := 0
		for _, ts := range recsOf[iv.Target] {
			if !ts.Before(iv.Start) && ts.Before(iv.End) {
				n++
			}
		}
		if n < 20 {
			continue // tail interval the run never (fully) reached
		}
		first := time.Time{}
		for _, a := range raises {
			if a.Cleared || a.Target != iv.Target || a.At.Before(iv.Start) || !a.At.Before(iv.End) {
				continue
			}
			if first.IsZero() || a.At.Before(first) {
				first = a.At
			}
		}
		if first.IsZero() {
			t.Errorf("burst %v @ %v (%d records) never raised an alert", iv.Target, iv.Start, n)
			continue
		}
		latencies = append(latencies, first.Sub(iv.Start))
	}
	if len(latencies) < 8 {
		t.Fatalf("only %d scoreable burst intervals; the run is too short to gate latency", len(latencies))
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	median := latencies[len(latencies)/2]
	t.Logf("bursts=%d median detection latency=%v (min=%v max=%v)",
		len(latencies), median, latencies[0], latencies[len(latencies)-1])
	if median > 10*time.Second {
		t.Errorf("median detection latency %v above the 10s gate", median)
	}

	// The detector saw every record and its books balance.
	st := d.Stats()
	if st.Records != records {
		t.Errorf("detector observed %d records, drove %d", st.Records, records)
	}
	if st.Raised == 0 || st.Cleared == 0 {
		t.Errorf("detector never cycled: raised=%d cleared=%d", st.Raised, st.Cleared)
	}
	if st.Active < 0 || st.Active != int64(st.Raised)-int64(st.Cleared) {
		t.Errorf("active %d != raised %d - cleared %d", st.Active, st.Raised, st.Cleared)
	}
}

// TestDetectPureBaseline pins the zero-false-positive contract: the same
// profile traffic with no bursts scheduled must produce no alerts and no
// flagged records at all.
func TestDetectPureBaseline(t *testing.T) {
	svc := serve.New(detectServeConfig())
	defer svc.Close()
	genCfg := detectGenConfig()
	genCfg.Burst = loadgen.BurstConfig{}
	gen := loadgen.NewGenerator(genCfg)

	const records = 8000
	for i := 0; i < records; i++ {
		if ok, err := svc.Ingest(gen.Next()); err != nil || !ok {
			t.Fatalf("record %d: accepted=%v err=%v", i, ok, err)
		}
	}
	if st := svc.Store().Detector().Stats(); st.Raised != 0 {
		t.Fatalf("pure-baseline traffic raised %d alerts: %+v", st.Raised, svc.Store().Detector().Recent(10))
	}
	for _, as := range gen.Targets() {
		w, _ := svc.Store().Window(as)
		for i := range w {
			if w[i].Verdict != 0 {
				t.Fatalf("baseline record ID %d stored with verdict %#x", w[i].ID, w[i].Verdict)
			}
		}
	}
}
