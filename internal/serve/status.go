package serve

import (
	"net/http"
	"time"

	"repro/internal/obs"
	"repro/internal/wal"
)

// /statusz: one node's full operational picture in a single JSON
// document — the per-node section the cluster router's fleet fan-out
// aggregates (DESIGN.md §14). Everything here is already exposed
// piecemeal (/healthz, /metrics, /accuracy, /alerts); /statusz is the
// one-stop read an operator or the watchdog bundle wants.

// WALStatus is the /statusz WAL section (wal.Stats in stable snake_case).
type WALStatus struct {
	ActiveSeq      uint64 `json:"active_seq"`
	ActiveBytes    int64  `json:"active_bytes"`
	SealedSegments int    `json:"sealed_segments"`
	SealedBytes    int64  `json:"sealed_bytes"`
	Appends        uint64 `json:"appends"`
	AppendedBytes  uint64 `json:"appended_bytes"`
	TotalSegments  int    `json:"total_segments"`
	DiskBytes      int64  `json:"disk_bytes"`
}

func walStatus(st wal.Stats) *WALStatus {
	return &WALStatus{
		ActiveSeq:      st.ActiveSeq,
		ActiveBytes:    st.ActiveBytes,
		SealedSegments: st.SealedSegments,
		SealedBytes:    st.SealedBytes,
		Appends:        st.Appends,
		AppendedBytes:  st.AppendedBytes,
		TotalSegments:  st.TotalSegments(),
		DiskBytes:      st.DiskBytes(),
	}
}

// AccuracyWinner names the best model for one measure in the current
// accuracy window.
type AccuracyWinner struct {
	Model string  `json:"model"`
	Value float64 `json:"value"`
}

// AccuracyStatus is the /statusz accuracy section: the full windowed
// snapshot plus the per-measure winners so a fleet view can answer
// "which model is winning where" without re-deriving it.
type AccuracyStatus struct {
	obs.AccuracySnapshot
	Winners map[string]AccuracyWinner `json:"winners,omitempty"`
}

// ModelLayerStatus is the /statusz online-model-layer section: how the
// fleet's champions are distributed and how much of the refit volume is
// incremental (DESIGN.md §15).
type ModelLayerStatus struct {
	IncrementalEnabled bool `json:"incremental_enabled"`
	// TrackedTargets counts targets with a live promotion accuracy window.
	TrackedTargets int `json:"tracked_targets"`
	// Champions maps measure → champion kind → number of published targets
	// serving that kind for the measure.
	Champions map[string]map[string]int `json:"champions,omitempty"`
	// IncrementalServing counts published targets whose serving generation
	// came from the incremental path.
	IncrementalServing int `json:"incremental_serving"`
}

// NodeStatus is the /statusz response body for one node.
type NodeStatus struct {
	Health   Health              `json:"health"`
	WAL      *WALStatus          `json:"wal,omitempty"`
	Detect   AlertsReport        `json:"detect"`
	Accuracy AccuracyStatus      `json:"accuracy"`
	Models   ModelLayerStatus    `json:"models"`
	Runtime  obs.RuntimeSnapshot `json:"runtime"`
	Build    obs.BuildProvenance `json:"build"`
}

// NodeStatus captures this node's full status.
func (s *Service) NodeStatus() NodeStatus {
	s.updateTargetGauges()
	st := NodeStatus{
		Health: Health{
			Status:          "ok",
			UptimeSec:       time.Since(s.start).Seconds(),
			Shards:          s.store.Shards(),
			TargetsKnown:    s.store.Len(),
			TargetsServed:   s.reg.Size(),
			SnapshotVersion: s.reg.Version(),
			RefitLag:        s.sched.Lag(),
			Shedding:        s.sched.Overloaded(),
			Cluster:         s.clusterInfoValue(),
		},
		Runtime: obs.ReadRuntime(),
		Build:   obs.Provenance(),
	}
	if ws, ok := s.WALStats(); ok {
		st.WAL = walStatus(ws)
	}
	if d := s.store.Detector(); d != nil {
		stats := d.Stats()
		st.Detect = AlertsReport{Enabled: true, Stats: &stats, Alerts: d.Recent(maxStatuszAlerts)}
	}
	snap := s.acc.Snapshot()
	st.Accuracy = AccuracyStatus{AccuracySnapshot: *snap, Winners: accuracyWinners(*snap)}
	st.Models = s.modelLayerStatus()
	return st
}

// modelLayerStatus aggregates the published snapshot's champion
// composition and refit provenance.
func (s *Service) modelLayerStatus() ModelLayerStatus {
	ms := ModelLayerStatus{
		IncrementalEnabled: s.cfg.IncrementalRefit,
		TrackedTargets:     s.promo.Size(),
	}
	champs := make(map[string]map[string]int)
	add := func(measure, kind string) {
		m := champs[measure]
		if m == nil {
			m = make(map[string]int)
			champs[measure] = m
		}
		m[champOr(kind)]++
	}
	for _, as := range s.reg.Targets() {
		tm, ok := s.reg.Lookup(as)
		if !ok {
			continue
		}
		add(MeasureMagnitude, tm.Prov.Champions.Magnitude)
		add(MeasureDuration, tm.Prov.Champions.Duration)
		add(MeasureTimestamp, tm.Prov.Champions.Timestamp)
		if tm.Prov.Refit == refitIncremental {
			ms.IncrementalServing++
		}
	}
	if len(champs) > 0 {
		ms.Champions = champs
	}
	return ms
}

// maxStatuszAlerts bounds the detect section: /statusz is a fleet
// fan-out payload, not the full alert ring (/alerts serves that).
const maxStatuszAlerts = 8

// accuracyWinners picks the window's best model per measure: lowest mean
// relative error for magnitude and duration, highest hit rate for
// timestamp. Models with no scored samples for a measure don't compete.
func accuracyWinners(snap obs.AccuracySnapshot) map[string]AccuracyWinner {
	winners := make(map[string]AccuracyWinner)
	pick := func(measure, model string, value float64, better func(new, cur float64) bool) {
		cur, ok := winners[measure]
		if !ok || better(value, cur.Value) {
			winners[measure] = AccuracyWinner{Model: model, Value: value}
		}
	}
	lower := func(new, cur float64) bool { return new < cur }
	higher := func(new, cur float64) bool { return new > cur }
	for model, sum := range snap.Models {
		if sum.Magnitude.Samples > 0 {
			pick("magnitude", model, sum.Magnitude.MeanRelErr, lower)
		}
		if sum.Duration.Samples > 0 {
			pick("duration", model, sum.Duration.MeanRelErr, lower)
		}
		if sum.Timestamp.Samples > 0 {
			pick("timestamp", model, sum.Timestamp.Rate, higher)
		}
	}
	if len(winners) == 0 {
		return nil
	}
	return winners
}

func (s *Service) handleStatusz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	st := s.NodeStatus()
	writeJSON(w, http.StatusOK, &st)
}

// handleBundle serves /debug/bundle: the watchdog's diagnostics-bundle
// ring, or a JSON 404 when no watchdog is running (-watchdog-dir unset).
func (s *Service) handleBundle(w http.ResponseWriter, r *http.Request) {
	wd := s.watchdog.Load()
	if wd == nil {
		writeError(w, http.StatusNotFound, "watchdog disabled (start ddosd with -watchdog-dir)")
		return
	}
	wd.Handler().ServeHTTP(w, r)
}
