package serve

// /statusz and watchdog integration tests (DESIGN.md §14).

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/wal"
)

func TestStatuszSectionsComplete(t *testing.T) {
	svc := New(testConfig())
	defer svc.Close()
	w, err := wal.Open(wal.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	svc.AttachWAL(w, nil)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	resp := postBinary(t, srv.URL, encodeBinaryBatch(t, mkAttacks(64512, 0, 10)))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	st := decodeBody[NodeStatus](t, resp)
	if st.Health.Status != "ok" || st.Health.TargetsKnown != 1 {
		t.Fatalf("health section = %+v", st.Health)
	}
	if st.WAL == nil || st.WAL.Appends == 0 || st.WAL.TotalSegments < 1 || st.WAL.DiskBytes <= 0 {
		t.Fatalf("wal section = %+v", st.WAL)
	}
	if st.Runtime.Goroutines < 1 || st.Runtime.HeapAlloc == 0 {
		t.Fatalf("runtime section = %+v", st.Runtime)
	}
	if st.Build.GoVersion == "" {
		t.Fatalf("build section = %+v", st.Build)
	}

	resp, err = http.Post(srv.URL+"/statusz", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /statusz: HTTP %d, want 405", resp.StatusCode)
	}
}

// TestWatchdogBreachServesBundle drives the full flight-recorder path
// over HTTP: an unreachable p99 SLO trips on real ingest traffic, the
// loop captures a bundle, and /debug/bundle lists and streams it.
func TestWatchdogBreachServesBundle(t *testing.T) {
	svc := New(testConfig())
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	// Before the watchdog exists, the endpoint explains itself with a 404.
	resp, err := http.Get(srv.URL + "/debug/bundle")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/bundle without watchdog: HTTP %d, want 404", resp.StatusCode)
	}

	resp = postBinary(t, srv.URL, encodeBinaryBatch(t, mkAttacks(64512, 0, 10)))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	wd, err := svc.StartWatchdog(WatchdogConfig{
		Dir:        t.TempDir(),
		Interval:   5 * time.Millisecond,
		Cooldown:   time.Hour,
		CPUProfile: -1,
		IngestP99:  time.Nanosecond, // any completed ingest breaches
		ShedRate:   -1,
		LogLines:   func() []string { return []string{"line-1", "line-2"} },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.StartWatchdog(WatchdogConfig{Dir: t.TempDir()}); err == nil {
		t.Fatal("second StartWatchdog did not error")
	}
	if svc.Watchdog() != wd {
		t.Fatal("Watchdog() does not expose the started recorder")
	}

	var list struct {
		Captures uint64           `json:"captures"`
		Bundles  []obs.BundleInfo `json:"bundles"`
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/debug/bundle")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&list)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if list.Captures >= 1 && len(list.Bundles) >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("watchdog never captured: %+v", list)
		}
		time.Sleep(10 * time.Millisecond)
	}

	files := strings.Join(list.Bundles[0].Files, ",")
	for _, f := range []string{"meta.json", "heap.pprof", "spans.json", "metrics.prom", "statusz.json", "log.txt"} {
		if !strings.Contains(files, f) {
			t.Errorf("bundle %s missing %s (has %s)", list.Bundles[0].Name, f, files)
		}
	}

	get := func(file string) string {
		t.Helper()
		resp, err := http.Get(srv.URL + "/debug/bundle?name=" + list.Bundles[0].Name + "&file=" + file)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("bundle file %s: HTTP %d: %s", file, resp.StatusCode, b)
		}
		return string(b)
	}
	var meta struct {
		Breaches []obs.Breach `json:"breaches"`
	}
	if err := json.Unmarshal([]byte(get("meta.json")), &meta); err != nil {
		t.Fatal(err)
	}
	if len(meta.Breaches) == 0 || meta.Breaches[0].Rule != "ingest_p99_seconds" {
		t.Fatalf("bundle breaches = %+v", meta.Breaches)
	}
	// statusz.json carries the node's own status (no cluster hook wired).
	var stz struct {
		Health json.RawMessage `json:"health"`
	}
	if err := json.Unmarshal([]byte(get("statusz.json")), &stz); err != nil || len(stz.Health) == 0 {
		t.Fatalf("statusz.json health section missing (err=%v)", err)
	}
	if got := get("log.txt"); !strings.Contains(got, "line-2") {
		t.Fatalf("log.txt = %q", got)
	}
	// Close is safe and stops the loop; Service.Close does it again.
	wd.Close()
}

// TestWatchdogShedRateIsDeltaBased pins the rate-probe contract: a
// historical shedding episode must not re-trip the recorder once
// traffic is healthy again.
func TestWatchdogShedRateIsDeltaBased(t *testing.T) {
	svc := New(testConfig())
	defer svc.Close()
	probe := svc.shedRateProbe()

	svc.tel.ingestShed.Inc()
	svc.tel.ingestSeconds.Observe(0.001)
	svc.tel.ingestSeconds.Observe(0.001)
	if got := probe(); got != 0.5 {
		t.Fatalf("shed rate = %v, want 0.5", got)
	}
	// Healthy interval: two more requests, no shedding.
	svc.tel.ingestSeconds.Observe(0.001)
	svc.tel.ingestSeconds.Observe(0.001)
	if got := probe(); got != 0 {
		t.Fatalf("shed rate after healthy interval = %v, want 0 (lifetime ratio leaked)", got)
	}
	// No traffic at all: defined as healthy, not NaN.
	if got := probe(); got != 0 {
		t.Fatalf("shed rate with no traffic = %v, want 0", got)
	}
}
