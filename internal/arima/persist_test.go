package arima

import (
	"encoding/json"
	"math"
	"testing"
)

func TestModelJSONRoundTrip(t *testing.T) {
	xs := genAR(1000, 0.5, 0.7, 1, 91)
	for _, order := range [][3]int{{1, 0, 0}, {2, 1, 1}} {
		m, err := Fit(xs, order[0], order[1], order[2])
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		var back Model
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		f1, err := m.Forecast(5)
		if err != nil {
			t.Fatal(err)
		}
		f2, err := back.Forecast(5)
		if err != nil {
			t.Fatal(err)
		}
		for i := range f1 {
			if math.Abs(f1[i]-f2[i]) > 1e-9 {
				t.Fatalf("order %v: forecasts differ: %v vs %v", order, f1, f2)
			}
		}
		// Updates keep the two in lock-step.
		m.Update(3.3)
		back.Update(3.3)
		p1, _ := m.PredictNext()
		p2, _ := back.PredictNext()
		if math.Abs(p1-p2) > 1e-9 {
			t.Fatalf("order %v: post-update predictions differ", order)
		}
		if math.Abs(m.AIC()-back.AIC()) > 1e-9 {
			t.Errorf("order %v: AIC differs", order)
		}
	}
}

func TestModelJSONTruncatesState(t *testing.T) {
	xs := genAR(5000, 0, 0.5, 1, 93)
	m, err := Fit(xs, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Model
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.w) > maxPersistedState {
		t.Errorf("persisted state = %d values, want <= %d", len(back.w), maxPersistedState)
	}
	// Predictions must still agree (they depend only on the tail).
	p1, _ := m.PredictNext()
	p2, _ := back.PredictNext()
	if math.Abs(p1-p2) > 1e-9 {
		t.Error("truncated state changed the forecast")
	}
}

func TestModelUnmarshalValidation(t *testing.T) {
	var m Model
	cases := map[string]string{
		"bad json":       `{`,
		"invalid order":  `{"p":-1,"d":0,"q":0,"w":[1],"e":[0],"orig":[1]}`,
		"phi mismatch":   `{"p":2,"d":0,"q":0,"phi":[0.5],"c":0,"w":[1,2,3],"e":[0,0,0],"orig":[1,2,3]}`,
		"no state":       `{"p":1,"d":0,"q":0,"phi":[0.5],"c":0,"w":[],"e":[],"orig":[1]}`,
		"w/e mismatch":   `{"p":1,"d":0,"q":0,"phi":[0.5],"c":0,"w":[1,2],"e":[0],"orig":[1,2]}`,
		"orig too short": `{"p":1,"d":2,"q":0,"phi":[0.5],"c":0,"w":[1,2],"e":[0,0],"orig":[1,2]}`,
	}
	for name, data := range cases {
		if err := json.Unmarshal([]byte(data), &m); err == nil {
			t.Errorf("%s should fail to unmarshal", name)
		}
	}
}
