package arima_test

import (
	"fmt"

	"repro/internal/arima"
)

// Fit an AR(1)-style model to a deterministic series and forecast.
func ExampleFit() {
	// A geometric approach to 10: x_{t+1} = 10 + 0.5 (x_t - 10).
	series := make([]float64, 40)
	x := 0.0
	for i := range series {
		series[i] = x
		x = 10 + 0.5*(x-10)
	}
	m, err := arima.Fit(series, 1, 0, 0)
	if err != nil {
		panic(err)
	}
	f, err := m.Forecast(3)
	if err != nil {
		panic(err)
	}
	fmt.Printf("phi=%.2f c=%.2f\n", m.Phi[0], m.C)
	fmt.Printf("forecasts: %.2f %.2f %.2f\n", f[0], f[1], f[2])
	// Output:
	// phi=0.50 c=5.00
	// forecasts: 10.00 10.00 10.00
}
