package arima

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/stats"
)

// genAR synthesizes an AR(1) series x_t = c + phi x_{t-1} + e_t.
func genAR(n int, c, phi, sigma float64, seed uint64) []float64 {
	rng := rand.New(rand.NewPCG(seed, seed+1))
	xs := make([]float64, n)
	xs[0] = c / (1 - phi)
	for i := 1; i < n; i++ {
		xs[i] = c + phi*xs[i-1] + rng.NormFloat64()*sigma
	}
	return xs
}

func TestFitARRecoversCoefficients(t *testing.T) {
	xs := genAR(3000, 1.0, 0.7, 0.5, 11)
	m, err := Fit(xs, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Phi[0]-0.7) > 0.05 {
		t.Errorf("phi = %v, want ~0.7", m.Phi[0])
	}
	if math.Abs(m.C-1.0) > 0.2 {
		t.Errorf("c = %v, want ~1", m.C)
	}
}

func TestFitARMARecoversMA(t *testing.T) {
	// ARMA(1,1): x_t = 0.6 x_{t-1} + e_t + 0.5 e_{t-1}.
	rng := rand.New(rand.NewPCG(13, 14))
	n := 6000
	xs := make([]float64, n)
	ePrev := 0.0
	for i := 1; i < n; i++ {
		e := rng.NormFloat64()
		xs[i] = 0.6*xs[i-1] + e + 0.5*ePrev
		ePrev = e
	}
	m, err := Fit(xs, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Phi[0]-0.6) > 0.1 {
		t.Errorf("phi = %v, want ~0.6", m.Phi[0])
	}
	if math.Abs(m.Theta[0]-0.5) > 0.15 {
		t.Errorf("theta = %v, want ~0.5", m.Theta[0])
	}
}

func TestFitIntegratedSeries(t *testing.T) {
	// Random walk with drift: first difference is iid with mean 0.5.
	rng := rand.New(rand.NewPCG(15, 16))
	n := 2000
	xs := make([]float64, n)
	for i := 1; i < n; i++ {
		xs[i] = xs[i-1] + 0.5 + rng.NormFloat64()*0.2
	}
	m, err := Fit(xs, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	f, err := m.Forecast(5)
	if err != nil {
		t.Fatal(err)
	}
	// Forecasts should continue the drift: roughly last + 0.5*h.
	last := xs[n-1]
	for h, v := range f {
		want := last + 0.5*float64(h+1)
		if math.Abs(v-want) > 1.0 {
			t.Errorf("h=%d forecast %v, want ~%v", h+1, v, want)
		}
	}
}

func TestForecastConvergesToMean(t *testing.T) {
	xs := genAR(3000, 2.0, 0.5, 0.3, 17)
	m, err := Fit(xs, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	f, err := m.Forecast(200)
	if err != nil {
		t.Fatal(err)
	}
	wantMean := 2.0 / (1 - 0.5)
	if math.Abs(f[199]-wantMean) > 0.3 {
		t.Errorf("long-horizon forecast %v, want ~%v", f[199], wantMean)
	}
}

func TestUpdateWalkForwardBeatsNaive(t *testing.T) {
	xs := genAR(1200, 0.5, 0.8, 1.0, 19)
	train, test := xs[:1000], xs[1000:]
	m, err := Fit(train, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	preds := make([]float64, len(test))
	naive := make([]float64, len(test))
	prev := train[len(train)-1]
	for i, x := range test {
		p, err := m.PredictNext()
		if err != nil {
			t.Fatal(err)
		}
		preds[i] = p
		naive[i] = prev
		prev = x
		m.Update(x)
	}
	rmseModel, _ := stats.RMSE(preds, test)
	rmseNaive, _ := stats.RMSE(naive, test)
	if rmseModel >= rmseNaive {
		t.Errorf("ARIMA RMSE %v should beat naive %v", rmseModel, rmseNaive)
	}
}

func TestUpdateWithDifferencing(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	n := 600
	xs := make([]float64, n)
	for i := 1; i < n; i++ {
		xs[i] = xs[i-1] + 1 + rng.NormFloat64()*0.1
	}
	m, err := Fit(xs[:500], 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range xs[500:] {
		p, err := m.PredictNext()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p-x) > 2 {
			t.Errorf("one-step prediction %v far from %v", p, x)
		}
		m.Update(x)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit([]float64{1, 2, 3}, 0, 0, 0); err == nil {
		t.Error("p=0 should error")
	}
	if _, err := Fit([]float64{1, 2, 3}, 1, -1, 0); err == nil {
		t.Error("d<0 should error")
	}
	if _, err := Fit([]float64{1, 2}, 2, 0, 0); err == nil {
		t.Error("too-short series should error")
	}
	if _, err := Fit(make([]float64, 10), 1, 0, 3); err == nil {
		t.Error("too-short for HR should error")
	}
}

func TestForecastErrors(t *testing.T) {
	m, err := Fit(genAR(100, 0, 0.5, 1, 23), 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Forecast(0); err == nil {
		t.Error("h=0 should error")
	}
}

func TestSelectOrderPicksReasonableModel(t *testing.T) {
	// AR(2) process.
	rng := rand.New(rand.NewPCG(25, 26))
	n := 2000
	xs := make([]float64, n)
	for i := 2; i < n; i++ {
		xs[i] = 0.5*xs[i-1] + 0.3*xs[i-2] + rng.NormFloat64()
	}
	m, err := SelectOrder(xs, 4, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.D != 0 {
		t.Errorf("stationary series should get d=0, got %d", m.D)
	}
	if m.P < 1 || m.P > 4 {
		t.Errorf("p = %d out of grid", m.P)
	}
	// The fit must at least track the process 1-step.
	p, err := m.PredictNext()
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(p) || math.IsInf(p, 0) {
		t.Errorf("prediction = %v", p)
	}
}

func TestSelectOrderUnitRootGetsDifferenced(t *testing.T) {
	rng := rand.New(rand.NewPCG(27, 28))
	n := 1500
	xs := make([]float64, n)
	for i := 1; i < n; i++ {
		xs[i] = xs[i-1] + rng.NormFloat64()*0.05 + 0.2
	}
	m, err := SelectOrder(xs, 3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.D < 1 {
		t.Errorf("random walk should get d>=1, got %d", m.D)
	}
}

func TestSelectOrderTooShort(t *testing.T) {
	if _, err := SelectOrder([]float64{1, 2}, 3, 1, 2); err == nil {
		t.Error("tiny series should error")
	}
}

func TestAICFinite(t *testing.T) {
	m, err := Fit(genAR(300, 0, 0.5, 1, 29), 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a := m.AIC(); math.IsNaN(a) || math.IsInf(a, 0) {
		t.Errorf("AIC = %v", a)
	}
}
