package arima

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/stats"
)

// genAR synthesizes an AR(1) series x_t = c + phi x_{t-1} + e_t.
func genAR(n int, c, phi, sigma float64, seed uint64) []float64 {
	rng := rand.New(rand.NewPCG(seed, seed+1))
	xs := make([]float64, n)
	xs[0] = c / (1 - phi)
	for i := 1; i < n; i++ {
		xs[i] = c + phi*xs[i-1] + rng.NormFloat64()*sigma
	}
	return xs
}

func TestFitARRecoversCoefficients(t *testing.T) {
	xs := genAR(3000, 1.0, 0.7, 0.5, 11)
	m, err := Fit(xs, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Phi[0]-0.7) > 0.05 {
		t.Errorf("phi = %v, want ~0.7", m.Phi[0])
	}
	if math.Abs(m.C-1.0) > 0.2 {
		t.Errorf("c = %v, want ~1", m.C)
	}
}

func TestFitARMARecoversMA(t *testing.T) {
	// ARMA(1,1): x_t = 0.6 x_{t-1} + e_t + 0.5 e_{t-1}.
	rng := rand.New(rand.NewPCG(13, 14))
	n := 6000
	xs := make([]float64, n)
	ePrev := 0.0
	for i := 1; i < n; i++ {
		e := rng.NormFloat64()
		xs[i] = 0.6*xs[i-1] + e + 0.5*ePrev
		ePrev = e
	}
	m, err := Fit(xs, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Phi[0]-0.6) > 0.1 {
		t.Errorf("phi = %v, want ~0.6", m.Phi[0])
	}
	if math.Abs(m.Theta[0]-0.5) > 0.15 {
		t.Errorf("theta = %v, want ~0.5", m.Theta[0])
	}
}

func TestFitIntegratedSeries(t *testing.T) {
	// Random walk with drift: first difference is iid with mean 0.5.
	rng := rand.New(rand.NewPCG(15, 16))
	n := 2000
	xs := make([]float64, n)
	for i := 1; i < n; i++ {
		xs[i] = xs[i-1] + 0.5 + rng.NormFloat64()*0.2
	}
	m, err := Fit(xs, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	f, err := m.Forecast(5)
	if err != nil {
		t.Fatal(err)
	}
	// Forecasts should continue the drift: roughly last + 0.5*h.
	last := xs[n-1]
	for h, v := range f {
		want := last + 0.5*float64(h+1)
		if math.Abs(v-want) > 1.0 {
			t.Errorf("h=%d forecast %v, want ~%v", h+1, v, want)
		}
	}
}

func TestForecastConvergesToMean(t *testing.T) {
	xs := genAR(3000, 2.0, 0.5, 0.3, 17)
	m, err := Fit(xs, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	f, err := m.Forecast(200)
	if err != nil {
		t.Fatal(err)
	}
	wantMean := 2.0 / (1 - 0.5)
	if math.Abs(f[199]-wantMean) > 0.3 {
		t.Errorf("long-horizon forecast %v, want ~%v", f[199], wantMean)
	}
}

func TestUpdateWalkForwardBeatsNaive(t *testing.T) {
	xs := genAR(1200, 0.5, 0.8, 1.0, 19)
	train, test := xs[:1000], xs[1000:]
	m, err := Fit(train, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	preds := make([]float64, len(test))
	naive := make([]float64, len(test))
	prev := train[len(train)-1]
	for i, x := range test {
		p, err := m.PredictNext()
		if err != nil {
			t.Fatal(err)
		}
		preds[i] = p
		naive[i] = prev
		prev = x
		m.Update(x)
	}
	rmseModel, _ := stats.RMSE(preds, test)
	rmseNaive, _ := stats.RMSE(naive, test)
	if rmseModel >= rmseNaive {
		t.Errorf("ARIMA RMSE %v should beat naive %v", rmseModel, rmseNaive)
	}
}

func TestUpdateWithDifferencing(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	n := 600
	xs := make([]float64, n)
	for i := 1; i < n; i++ {
		xs[i] = xs[i-1] + 1 + rng.NormFloat64()*0.1
	}
	m, err := Fit(xs[:500], 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range xs[500:] {
		p, err := m.PredictNext()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p-x) > 2 {
			t.Errorf("one-step prediction %v far from %v", p, x)
		}
		m.Update(x)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit([]float64{1, 2, 3}, -1, 0, 0); err == nil {
		t.Error("p<0 should error")
	}
	if _, err := Fit([]float64{1, 2, 3}, 1, -1, 0); err == nil {
		t.Error("d<0 should error")
	}
	if _, err := Fit([]float64{1, 2}, 2, 0, 0); err == nil {
		t.Error("too-short series should error")
	}
	if _, err := Fit(make([]float64, 10), 1, 0, 3); err == nil {
		t.Error("too-short for HR should error")
	}
}

func TestForecastErrors(t *testing.T) {
	m, err := Fit(genAR(100, 0, 0.5, 1, 23), 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Forecast(0); err == nil {
		t.Error("h=0 should error")
	}
}

func TestSelectOrderPicksReasonableModel(t *testing.T) {
	// AR(2) process.
	rng := rand.New(rand.NewPCG(25, 26))
	n := 2000
	xs := make([]float64, n)
	for i := 2; i < n; i++ {
		xs[i] = 0.5*xs[i-1] + 0.3*xs[i-2] + rng.NormFloat64()
	}
	m, err := SelectOrder(xs, 4, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.D != 0 {
		t.Errorf("stationary series should get d=0, got %d", m.D)
	}
	if m.P < 1 || m.P > 4 {
		t.Errorf("p = %d out of grid", m.P)
	}
	// The fit must at least track the process 1-step.
	p, err := m.PredictNext()
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(p) || math.IsInf(p, 0) {
		t.Errorf("prediction = %v", p)
	}
}

func TestSelectOrderUnitRootGetsDifferenced(t *testing.T) {
	rng := rand.New(rand.NewPCG(27, 28))
	n := 1500
	xs := make([]float64, n)
	for i := 1; i < n; i++ {
		xs[i] = xs[i-1] + rng.NormFloat64()*0.05 + 0.2
	}
	m, err := SelectOrder(xs, 3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.D < 1 {
		t.Errorf("random walk should get d>=1, got %d", m.D)
	}
}

func TestSelectOrderTooShort(t *testing.T) {
	if _, err := SelectOrder([]float64{1, 2}, 3, 1, 2); err == nil {
		t.Error("tiny series should error")
	}
}

func TestAICFinite(t *testing.T) {
	m, err := Fit(genAR(300, 0, 0.5, 1, 29), 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a := m.AIC(); math.IsNaN(a) || math.IsInf(a, 0) {
		t.Errorf("AIC = %v", a)
	}
}

// genMA synthesizes an MA(1) series x_t = mu + e_t + theta e_{t-1}.
func genMA(n int, mu, theta, sigma float64, seed uint64) []float64 {
	rng := rand.New(rand.NewPCG(seed, seed+1))
	xs := make([]float64, n)
	ePrev := 0.0
	for i := 0; i < n; i++ {
		e := rng.NormFloat64() * sigma
		xs[i] = mu + e + theta*ePrev
		ePrev = e
	}
	return xs
}

func TestFitPureMARecoversTheta(t *testing.T) {
	xs := genMA(5000, 0, 0.6, 1.0, 31)
	m, err := Fit(xs, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.P != 0 || len(m.Phi) != 0 {
		t.Fatalf("pure MA fit has AR terms: P=%d Phi=%v", m.P, m.Phi)
	}
	if math.Abs(m.Theta[0]-0.6) > 0.1 {
		t.Errorf("theta = %v, want ~0.6", m.Theta[0])
	}
}

func TestFitInterceptOnly(t *testing.T) {
	rng := rand.New(rand.NewPCG(33, 34))
	xs := make([]float64, 500)
	var mean float64
	for i := range xs {
		xs[i] = 3 + rng.NormFloat64()
		mean += xs[i]
	}
	mean /= float64(len(xs))
	m, err := Fit(xs, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.C-mean) > 1e-9 {
		t.Errorf("intercept = %v, want sample mean %v", m.C, mean)
	}
	f, err := m.Forecast(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range f {
		if math.Abs(v-mean) > 1e-9 {
			t.Errorf("white-noise forecast %v should be the mean %v", v, mean)
		}
	}
	if a := m.AIC(); math.IsNaN(a) || math.IsInf(a, 0) {
		t.Errorf("AIC = %v", a)
	}
}

// TestSelectOrderIncludesPureMA is the regression test for the grid
// starting at p=1: on an MA(1)-generated series the AIC-best model is a
// pure-MA ARIMA(0,0,q), which the old grid could never return.
func TestSelectOrderIncludesPureMA(t *testing.T) {
	xs := genMA(4000, 0, 0.8, 1.0, 35)
	m, err := SelectOrder(xs, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.P != 0 {
		t.Errorf("MA(1) series selected P=%d, want 0 (pure MA must be a candidate)", m.P)
	}
	if m.Q < 1 {
		t.Errorf("MA(1) series selected Q=%d, want >= 1", m.Q)
	}
	if m.D != 0 {
		t.Errorf("stationary MA(1) series selected D=%d, want 0", m.D)
	}
}

// TestChooseDNegativeACFKeepsD0 is the regression test for the
// over-differencing bug: an alternating series has acf(1) ~ -1, the
// textbook sign of over-differencing, and must NOT be differenced.
func TestChooseDNegativeACFKeepsD0(t *testing.T) {
	xs := make([]float64, 200)
	for i := range xs {
		if i%2 == 0 {
			xs[i] = 1
		} else {
			xs[i] = -1
		}
	}
	if d := chooseD(xs, 2); d != 0 {
		t.Fatalf("alternating series chooseD = %d, want 0", d)
	}
	m, err := SelectOrder(xs, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.D != 0 {
		t.Fatalf("alternating series selected D=%d, want 0", m.D)
	}
}

// TestSelectOrderParallelMatchesSerial pins the determinism contract: the
// parallel grid must select exactly the model a serial loop over the same
// grid picks, including (p,q)-order tie-breaking.
func TestSelectOrderParallelMatchesSerial(t *testing.T) {
	for _, seed := range []uint64{41, 43, 45, 47} {
		xs := genAR(400, 0.5, 0.6, 1.0, seed)
		maxP, maxD, maxQ := 3, 1, 2
		got, err := SelectOrder(xs, maxP, maxD, maxQ)
		if err != nil {
			t.Fatal(err)
		}
		// Serial reference: same grid, same strict-< reduction.
		d := chooseD(xs, maxD)
		var want *Model
		for p := 0; p <= maxP; p++ {
			for q := 0; q <= maxQ; q++ {
				m, err := Fit(xs, p, d, q)
				if err != nil {
					continue
				}
				if want == nil || m.AIC() < want.AIC() {
					want = m
				}
			}
		}
		if want == nil {
			t.Fatal("serial reference found no model")
		}
		if got.P != want.P || got.D != want.D || got.Q != want.Q {
			t.Fatalf("seed %d: parallel picked (%d,%d,%d), serial picked (%d,%d,%d)",
				seed, got.P, got.D, got.Q, want.P, want.D, want.Q)
		}
		if got.AIC() != want.AIC() {
			t.Fatalf("seed %d: AIC differs: %v vs %v", seed, got.AIC(), want.AIC())
		}
	}
}

func TestPersistPureMAModel(t *testing.T) {
	xs := genMA(600, 0, 0.5, 1.0, 49)
	m, err := Fit(xs, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	data, err := m.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Model
	if err := back.UnmarshalJSON(data); err != nil {
		t.Fatalf("round-trip of P=0 model rejected: %v", err)
	}
	p1, err := m.PredictNext()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := back.PredictNext()
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatalf("round-trip prediction %v != original %v", p2, p1)
	}
}

// TestSelectOrderRejectsExplosiveModels pins the stability guard: a short
// strictly periodic series used to drive Hannan–Rissanen to an explosive
// MA estimate whose residual recursion overflowed to +Inf — the selected
// model then predicted astronomical values and could not be serialized.
// The guard must make SelectOrder fall back to a sane candidate.
func TestSelectOrderRejectsExplosiveModels(t *testing.T) {
	for n := 40; n <= 60; n++ {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(3 + i%5)
		}
		m, err := SelectOrder(xs, 1, 0, 1)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		p, err := m.PredictNext()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if math.IsNaN(p) || math.IsInf(p, 0) || math.Abs(p) > 100 {
			t.Fatalf("n=%d: explosive prediction %v from ARIMA(%d,%d,%d)", n, p, m.P, m.D, m.Q)
		}
		if _, err := m.MarshalJSON(); err != nil {
			t.Fatalf("n=%d: selected model does not serialize: %v", n, err)
		}
	}
}
