package arima

import (
	"errors"
	"math"
)

// ErrDrift is returned by FoldIn when the residuals implied by the newly
// folded observations degrade past the caller's threshold relative to the
// in-sample fit — the signal that the frozen coefficients no longer
// describe the process and a full re-estimation is due.
var ErrDrift = errors.New("arima: folded residuals drifted past threshold")

// foldStateCap bounds the walk-forward state an incrementally maintained
// model accumulates across generations. Forecasting needs only the last
// max(P,Q,D)+1 values; the cap mirrors the persistence tail so a model that
// lives through many fold-ins behaves like one reloaded from a snapshot.
const foldStateCap = 2 * maxPersistedState

// Clone returns a deep copy of the model: coefficient vectors and
// walk-forward state share no memory with the receiver. Incremental refits
// clone the previous generation's model before folding in the new tail so
// the published generation stays immutable under concurrent readers.
func (m *Model) Clone() *Model {
	if m == nil {
		return nil
	}
	c := *m
	c.Phi = append([]float64(nil), m.Phi...)
	c.Theta = append([]float64(nil), m.Theta...)
	c.w = append([]float64(nil), m.w...)
	c.e = append([]float64(nil), m.e...)
	c.orig = append([]float64(nil), m.orig...)
	return &c
}

// FoldIn advances the model over newly observed values (original scale)
// without re-estimating coefficients: each value is absorbed as a
// walk-forward Update, O(len(xs)·(P+Q)) total, independent of the fitted
// window length. It then runs a residual diagnostic: if the mean squared
// innovation of the folded tail exceeds maxRatio times the in-sample
// residual variance of the original estimation, the coefficients have
// stopped describing the process and ErrDrift is returned — the model state
// still holds the folded values, but the caller should schedule a full
// refit. A maxRatio <= 0 disables the diagnostic.
func (m *Model) FoldIn(xs []float64, maxRatio float64) error {
	if len(xs) == 0 {
		return nil
	}
	n0 := len(m.e)
	for _, x := range xs {
		m.Update(x)
	}
	// Diagnose on the residuals this fold-in appended, before the state
	// trim below can swallow them — the largest fold-ins are exactly the
	// ones most likely to drift.
	err := m.foldDrift(m.e[n0:], maxRatio)
	// Bound state growth across many generations of fold-ins.
	if len(m.w) > foldStateCap {
		m.w = tail(m.w, maxPersistedState)
		m.e = tail(m.e, maxPersistedState)
		m.orig = tail(m.orig, maxPersistedState)
	}
	return err
}

// foldDrift runs the residual diagnostic over the innovations a fold-in
// produced.
func (m *Model) foldDrift(folded []float64, maxRatio float64) error {
	if maxRatio <= 0 || m.n == 0 || len(folded) == 0 {
		return nil
	}
	var sse float64
	for _, e := range folded {
		if math.IsNaN(e) || math.IsInf(e, 0) {
			return ErrDrift
		}
		sse += e * e
	}
	baseline := m.rss / float64(m.n)
	// Floor the baseline so a near-perfect in-sample fit (rss ~ 0) does not
	// flag ordinary noise as drift.
	if floor := 1e-9 * (1 + m.C*m.C); baseline < floor {
		baseline = floor
	}
	if sse/float64(len(folded)) > maxRatio*baseline {
		return ErrDrift
	}
	return nil
}
