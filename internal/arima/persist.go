package arima

import (
	"encoding/json"
	"errors"
	"fmt"
)

// maxPersistedState bounds how much walk-forward history is serialized.
// Forecasting needs only the last max(P, Q, D)+1 values; a generous tail
// is kept so a reloaded model behaves identically for further updates.
const maxPersistedState = 512

// modelJSON is the serialized form of a fitted model.
type modelJSON struct {
	P     int       `json:"p"`
	D     int       `json:"d"`
	Q     int       `json:"q"`
	Phi   []float64 `json:"phi,omitempty"`
	Theta []float64 `json:"theta,omitempty"`
	C     float64   `json:"c"`
	W     []float64 `json:"w"`
	E     []float64 `json:"e"`
	Orig  []float64 `json:"orig"`
	RSS   float64   `json:"rss"`
	N     int       `json:"n"`
}

// MarshalJSON serializes the fitted model, truncating the walk-forward
// state to the most recent maxPersistedState observations.
func (m *Model) MarshalJSON() ([]byte, error) {
	return json.Marshal(modelJSON{
		P: m.P, D: m.D, Q: m.Q,
		Phi: m.Phi, Theta: m.Theta, C: m.C,
		W:    tail(m.w, maxPersistedState),
		E:    tail(m.e, maxPersistedState),
		Orig: tail(m.orig, maxPersistedState),
		RSS:  m.rss, N: m.n,
	})
}

// UnmarshalJSON restores a model serialized by MarshalJSON.
func (m *Model) UnmarshalJSON(data []byte) error {
	var j modelJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return fmt.Errorf("arima: unmarshal: %w", err)
	}
	if j.P < 0 || j.D < 0 || j.Q < 0 {
		return fmt.Errorf("arima: unmarshal: invalid order (%d,%d,%d)", j.P, j.D, j.Q)
	}
	if len(j.Phi) != j.P || len(j.Theta) != j.Q {
		return errors.New("arima: unmarshal: coefficient lengths disagree with order")
	}
	if len(j.Orig) < j.D+1 || len(j.W) == 0 || len(j.W) != len(j.E) {
		return errors.New("arima: unmarshal: inconsistent state")
	}
	m.P, m.D, m.Q = j.P, j.D, j.Q
	m.Phi, m.Theta, m.C = j.Phi, j.Theta, j.C
	m.w, m.e, m.orig = j.W, j.E, j.Orig
	m.rss, m.n = j.RSS, j.N
	return nil
}

func tail(xs []float64, n int) []float64 {
	if len(xs) > n {
		xs = xs[len(xs)-n:]
	}
	out := make([]float64, len(xs))
	copy(out, xs)
	return out
}
