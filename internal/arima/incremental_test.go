package arima

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// ar1Series simulates a stationary AR(1) process x_t = c + phi x_{t-1} + e_t.
func ar1Series(n int, c, phi, sigma float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	x := c / (1 - phi)
	for i := range xs {
		x = c + phi*x + sigma*rng.NormFloat64()
		xs[i] = x
	}
	return xs
}

func TestCloneIsDeep(t *testing.T) {
	xs := ar1Series(120, 2, 0.6, 1, 1)
	m, err := Fit(xs, 1, 0, 1)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	c := m.Clone()
	want, _ := m.PredictNext()
	// Mutating the clone must not disturb the original.
	c.Update(1e6)
	c.Phi[0] = -0.99
	got, _ := m.PredictNext()
	if got != want {
		t.Fatalf("original forecast changed after clone mutation: %v != %v", got, want)
	}
	if m.Observations() == c.Observations() {
		t.Fatalf("clone Update leaked into original history")
	}
	if (*Model)(nil).Clone() != nil {
		t.Fatalf("nil Clone should stay nil")
	}
}

// TestIncrementalFoldInTracksFullRefit is the incremental-vs-full
// equivalence property: on a stationary series, fitting a prefix and
// folding in the remainder must (a) keep the drift diagnostic quiet,
// (b) keep coefficients within estimation tolerance of the full-window
// refit, and (c) keep one-step forecasts close to the full refit's.
func TestIncrementalFoldInTracksFullRefit(t *testing.T) {
	for _, seed := range []int64{3, 7, 11, 19, 23} {
		xs := ar1Series(240, 1.5, 0.55, 1, seed)
		split := 200

		inc, err := Fit(xs[:split], 1, 0, 0)
		if err != nil {
			t.Fatalf("seed %d: prefix Fit: %v", seed, err)
		}
		if err := inc.FoldIn(xs[split:], 4); err != nil {
			t.Fatalf("seed %d: FoldIn flagged drift on a stationary series: %v", seed, err)
		}

		full, err := Fit(xs, 1, 0, 0)
		if err != nil {
			t.Fatalf("seed %d: full Fit: %v", seed, err)
		}

		// Coefficients: both estimate the same AR(1); they differ only by
		// the estimator's own sampling noise over 200 vs 240 observations.
		if d := math.Abs(inc.Phi[0] - full.Phi[0]); d > 0.15 {
			t.Fatalf("seed %d: phi drift %v (inc %v vs full %v)", seed, d, inc.Phi[0], full.Phi[0])
		}

		fInc, err := inc.PredictNext()
		if err != nil {
			t.Fatalf("seed %d: inc PredictNext: %v", seed, err)
		}
		fFull, err := full.PredictNext()
		if err != nil {
			t.Fatalf("seed %d: full PredictNext: %v", seed, err)
		}
		scale := math.Abs(fFull) + 1
		if d := math.Abs(fInc-fFull) / scale; d > 0.25 {
			t.Fatalf("seed %d: forecast drift %.3f (inc %v vs full %v)", seed, d, fInc, fFull)
		}
	}
}

func TestIncrementalFoldInFlagsRegimeChange(t *testing.T) {
	xs := ar1Series(200, 1.5, 0.55, 1, 5)
	m, err := Fit(xs, 1, 0, 0)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	// A level shift two orders of magnitude above the fitted regime must
	// trip the residual diagnostic.
	shifted := make([]float64, 24)
	for i := range shifted {
		shifted[i] = 400 + float64(i)
	}
	if err := m.FoldIn(shifted, 4); !errors.Is(err, ErrDrift) {
		t.Fatalf("FoldIn on a regime change: got %v, want ErrDrift", err)
	}
	// State still advanced: a follow-up full refit sees the new values.
	if m.Observations() != 224 {
		t.Fatalf("Observations after fold = %d, want 224", m.Observations())
	}
}

func TestIncrementalFoldInFlagsDriftAcrossStateCap(t *testing.T) {
	// A fold-in large enough to cross foldStateCap trims the walk-forward
	// state; the drift diagnostic must still run on the residuals the
	// fold-in produced — big fold-ins are the ones most likely to drift.
	xs := ar1Series(200, 1.5, 0.55, 1, 5)
	m, err := Fit(xs, 1, 0, 0)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	shifted := make([]float64, foldStateCap)
	for i := range shifted {
		shifted[i] = 400 + float64(i%7)
	}
	if err := m.FoldIn(shifted, 4); !errors.Is(err, ErrDrift) {
		t.Fatalf("FoldIn across the state cap on a regime change: got %v, want ErrDrift", err)
	}
	if len(m.w) > foldStateCap {
		t.Fatalf("state grew unbounded: w=%d cap=%d", len(m.w), foldStateCap)
	}
}

func TestIncrementalFoldInBoundsState(t *testing.T) {
	xs := ar1Series(128, 1, 0.4, 1, 9)
	m, err := Fit(xs, 1, 0, 0)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	for i := 0; i < 40; i++ {
		if err := m.FoldIn(ar1Series(64, 1, 0.4, 1, int64(100+i)), 0); err != nil {
			t.Fatalf("FoldIn %d: %v", i, err)
		}
	}
	if len(m.w) > foldStateCap || len(m.orig) > foldStateCap {
		t.Fatalf("state grew unbounded: w=%d orig=%d cap=%d", len(m.w), len(m.orig), foldStateCap)
	}
	if f, err := m.PredictNext(); err != nil || math.IsNaN(f) {
		t.Fatalf("forecast after trims: %v, %v", f, err)
	}
}
