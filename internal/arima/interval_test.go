package arima

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestForecastIntervalCoverage(t *testing.T) {
	// Fit an AR(1) once; repeatedly simulate continuations and check the
	// empirical coverage of the 90% one-step band.
	const phi, sigma = 0.7, 1.0
	xs := genAR(3000, 0, phi, sigma, 61)
	m, err := Fit(xs, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	point, lo, hi, err := m.ForecastInterval(1, 0.90)
	if err != nil {
		t.Fatal(err)
	}
	if lo[0] >= point[0] || hi[0] <= point[0] {
		t.Fatalf("band [%v, %v] does not bracket point %v", lo[0], hi[0], point[0])
	}
	// Theoretical one-step band half-width: z90 * sigma = 1.645.
	half := (hi[0] - lo[0]) / 2
	if math.Abs(half-1.645*sigma) > 0.15 {
		t.Errorf("half-width = %v, want ~1.645", half)
	}
	// Empirical coverage over simulated next observations.
	rng := rand.New(rand.NewPCG(63, 64))
	last := xs[len(xs)-1]
	hits, trials := 0, 4000
	for i := 0; i < trials; i++ {
		next := phi*last + rng.NormFloat64()*sigma
		if next >= lo[0] && next <= hi[0] {
			hits++
		}
	}
	cov := float64(hits) / float64(trials)
	if math.Abs(cov-0.90) > 0.04 {
		t.Errorf("coverage = %v, want ~0.90", cov)
	}
}

func TestForecastIntervalWidensWithHorizon(t *testing.T) {
	xs := genAR(2000, 1, 0.8, 0.5, 65)
	m, err := Fit(xs, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, lo, hi, err := m.ForecastInterval(20, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	prev := hi[0] - lo[0]
	for s := 1; s < 20; s++ {
		w := hi[s] - lo[s]
		if w < prev-1e-9 {
			t.Fatalf("band narrowed at step %d: %v < %v", s+1, w, prev)
		}
		prev = w
	}
	// For a stationary AR(1), band width converges to the unconditional
	// bound 2*z*sigma/sqrt(1-phi^2).
	limit := 2 * 1.96 * 0.5 / math.Sqrt(1-0.8*0.8)
	if math.Abs(prev-limit) > 0.4 {
		t.Errorf("limiting width = %v, want ~%v", prev, limit)
	}
}

func TestForecastIntervalIntegratedGrowth(t *testing.T) {
	// Random walk: h-step variance grows linearly, width like sqrt(h).
	rng := rand.New(rand.NewPCG(67, 68))
	n := 2000
	xs := make([]float64, n)
	for i := 1; i < n; i++ {
		xs[i] = xs[i-1] + rng.NormFloat64()
	}
	m, err := Fit(xs, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, lo, hi, err := m.ForecastInterval(16, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	w1 := hi[0] - lo[0]
	w16 := hi[15] - lo[15]
	if ratio := w16 / w1; math.Abs(ratio-4) > 0.8 {
		t.Errorf("width ratio at h=16 vs h=1 = %v, want ~4 (sqrt growth)", ratio)
	}
}

func TestForecastIntervalValidation(t *testing.T) {
	m, err := Fit(genAR(200, 0, 0.5, 1, 69), 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := m.ForecastInterval(5, 0); err == nil {
		t.Error("level 0 should error")
	}
	if _, _, _, err := m.ForecastInterval(5, 1); err == nil {
		t.Error("level 1 should error")
	}
	if _, _, _, err := m.ForecastInterval(0, 0.9); err == nil {
		t.Error("h=0 should error")
	}
}

func TestPsiWeightsARMA(t *testing.T) {
	m := &Model{P: 1, Q: 1, Phi: []float64{0.5}, Theta: []float64{0.3}}
	psi := m.psiWeights(4)
	// psi_0=1, psi_1=theta1+phi1 = 0.8, psi_2 = phi1*psi_1 = 0.4, ...
	want := []float64{1, 0.8, 0.4, 0.2}
	for i := range want {
		if math.Abs(psi[i]-want[i]) > 1e-12 {
			t.Fatalf("psi = %v, want %v", psi, want)
		}
	}
}

func TestGoodnessOfFit(t *testing.T) {
	// A correctly specified AR(1) fit leaves white residuals.
	xs := genAR(3000, 0.5, 0.75, 1, 217)
	m, err := Fit(xs, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, p := m.GoodnessOfFit(12)
	if p < 0.01 {
		t.Errorf("well-specified model rejected: p = %v", p)
	}
	// An AR(1) fit to an AR(2) process leaves structure behind.
	rng := rand.New(rand.NewPCG(219, 220))
	n := 3000
	ys := make([]float64, n)
	for i := 2; i < n; i++ {
		ys[i] = 0.3*ys[i-1] + 0.55*ys[i-2] + rng.NormFloat64()
	}
	bad, err := Fit(ys, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, p = bad.GoodnessOfFit(12)
	if p > 0.01 {
		t.Errorf("underspecified model accepted: p = %v", p)
	}
	// And the properly specified AR(2) passes.
	good, err := Fit(ys, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, p = good.GoodnessOfFit(12)
	if p < 0.01 {
		t.Errorf("AR(2) fit rejected: p = %v", p)
	}
}
