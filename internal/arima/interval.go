package arima

import (
	"errors"
	"math"

	"repro/internal/stats"
)

// ForecastInterval returns h-step-ahead point forecasts together with a
// symmetric confidence band at the given level (e.g. 0.95). The band uses
// the standard psi-weight variance of ARMA forecast errors,
//
//	Var(e_{t+h}) = sigma² Σ_{j=0}^{h-1} psi_j²,
//
// with psi weights cumulated d times for integrated models, and sigma²
// estimated from the in-sample residuals. The paper validates point
// predictions only; the interval quantifies how much defense headroom a
// provisioning decision should add (see examples/proactive_defense).
func (m *Model) ForecastInterval(h int, level float64) (point, lo, hi []float64, err error) {
	if level <= 0 || level >= 1 {
		return nil, nil, nil, errors.New("arima: confidence level must be in (0, 1)")
	}
	point, err = m.Forecast(h)
	if err != nil {
		return nil, nil, nil, err
	}
	sigma2 := m.ResidualVariance()
	psi := m.psiWeights(h)
	if m.D > 0 {
		for d := 0; d < m.D; d++ {
			for j := 1; j < len(psi); j++ {
				psi[j] += psi[j-1]
			}
		}
	}
	z := math.Sqrt2 * math.Erfinv(level)
	lo = make([]float64, h)
	hi = make([]float64, h)
	var cum float64
	for step := 0; step < h; step++ {
		cum += psi[step] * psi[step]
		half := z * math.Sqrt(sigma2*cum)
		lo[step] = point[step] - half
		hi[step] = point[step] + half
	}
	return point, lo, hi, nil
}

// ResidualVariance estimates the innovation variance from the in-sample
// one-step residuals (excluding the zero presample).
func (m *Model) ResidualVariance() float64 {
	var ss float64
	n := 0
	for t := m.P; t < len(m.e); t++ {
		ss += m.e[t] * m.e[t]
		n++
	}
	if n == 0 {
		return 0
	}
	return ss / float64(n)
}

// psiWeights returns the first h MA(∞) weights of the fitted ARMA part:
// psi_0 = 1, psi_j = theta_j + Σ_{k=1..min(j,p)} phi_k psi_{j-k}.
func (m *Model) psiWeights(h int) []float64 {
	psi := make([]float64, h)
	if h == 0 {
		return psi
	}
	psi[0] = 1
	for j := 1; j < h; j++ {
		var v float64
		if j <= m.Q {
			v = m.Theta[j-1]
		}
		for k := 1; k <= m.P && k <= j; k++ {
			v += m.Phi[k-1] * psi[j-k]
		}
		psi[j] = v
	}
	return psi
}

// GoodnessOfFit runs the Ljung–Box whiteness test on the in-sample
// residuals over the first maxLag autocorrelations (§III-C's other
// validation axis: "goodness of fit of the model"). It returns the Q
// statistic and p-value; a large p-value means the model captured the
// series' autocorrelation structure.
func (m *Model) GoodnessOfFit(maxLag int) (q, pValue float64) {
	resid := m.e[m.P:]
	return stats.LjungBox(resid, maxLag, m.P+m.Q)
}
