// Package arima implements autoregressive integrated moving average models
// — ARIMA(p,d,q) — the engine of the paper's temporal model (§IV). The
// forecast of the AR part is a function of past observations, the MA part a
// function of past errors (Eq. 5). Estimation uses the two-stage
// Hannan–Rissanen procedure built on OLS, which keeps the package free of
// nonlinear optimizers while remaining faithful to the model class.
package arima

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/parallel"
	"repro/internal/regress"
	"repro/internal/timeseries"
)

// ErrTooShort is returned when a series has too few observations for the
// requested model order.
var ErrTooShort = errors.New("arima: series too short for requested order")

// ErrUnstable is returned when estimation produces a numerically unstable
// model — non-finite coefficients, or an explosive residual recursion from
// a non-stationary AR / non-invertible MA estimate. SelectOrder skips such
// candidates.
var ErrUnstable = errors.New("arima: estimation produced an unstable model")

// Model is a fitted ARIMA(p,d,q) model:
//
//	w_t = C + Σ_{j=1..p} Phi[j-1] w_{t-j} + Σ_{j=1..q} Theta[j-1] e_{t-j} + e_t
//
// where w is the d-th difference of the observed series.
type Model struct {
	P, D, Q int
	Phi     []float64 // AR coefficients, lag 1 first
	Theta   []float64 // MA coefficients, lag 1 first
	C       float64   // intercept

	w    []float64 // differenced history
	e    []float64 // residual history aligned with w (presample entries are 0)
	orig []float64 // original-scale history (for integration seeds)

	rss float64
	n   int // observations used in the estimation regression
}

// Fit estimates an ARIMA(p,d,q) model on xs. p, d, and q must be >= 0.
// ARIMA(0,d,q) fits a pure-MA model; ARIMA(0,d,0) is the intercept-only
// white-noise model — both are legitimate AIC candidates (a grid that
// skips them can never select an over-differenced or moving-average-only
// process).
func Fit(xs []float64, p, d, q int) (*Model, error) {
	if p < 0 || d < 0 || q < 0 {
		return nil, fmt.Errorf("arima: invalid order (%d,%d,%d)", p, d, q)
	}
	w, err := timeseries.Diff(xs, d)
	if err != nil {
		return nil, ErrTooShort
	}
	minLen := p + q + 2
	if minLen < 3 {
		// Even the intercept-only model needs a residual degree of freedom
		// beyond the mean for its variance (and AIC) to carry information.
		minLen = 3
	}
	if q > 0 {
		minLen += longAROrder(p, q, len(w))
	}
	if len(w) < minLen {
		return nil, ErrTooShort
	}
	m := &Model{P: p, D: d, Q: q}
	m.orig = append(m.orig, xs...)
	m.w = append(m.w, w...)
	switch {
	case p == 0 && q == 0:
		m.fitIntercept(w)
	case q == 0:
		if err := m.fitAR(w, p); err != nil {
			return nil, err
		}
	default:
		if err := m.fitHannanRissanen(w, p, q); err != nil {
			return nil, err
		}
	}
	m.computeResiduals()
	if !m.stable() {
		return nil, ErrUnstable
	}
	return m, nil
}

// stable reports whether the fitted state is numerically sane: finite
// coefficients and in-sample residuals that stay within a large multiple
// of the differenced series' scale. The OLS stages place no stationarity
// or invertibility constraint on the estimates, so a pathological series
// can yield e.g. |theta| > 1, whose residual recursion grows geometrically
// — after a handful of steps it dwarfs the data by many orders of
// magnitude, which is what the residual bound detects.
func (m *Model) stable() bool {
	if math.IsNaN(m.C) || math.IsInf(m.C, 0) || math.IsNaN(m.rss) || math.IsInf(m.rss, 0) {
		return false
	}
	for _, cs := range [2][]float64{m.Phi, m.Theta} {
		for _, c := range cs {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				return false
			}
		}
	}
	var scale float64
	for _, v := range m.w {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	limit := 1e8 * (scale + 1)
	for _, v := range m.e {
		if !(math.Abs(v) <= limit) { // NaN fails the comparison too
			return false
		}
	}
	return true
}

// fitIntercept estimates the degenerate ARIMA(0,d,0): w_t = C + e_t, the
// sample-mean model. It anchors the AIC grid so pure noise is not forced
// into spurious AR or MA structure.
func (m *Model) fitIntercept(w []float64) {
	var mean float64
	for _, v := range w {
		mean += v
	}
	mean /= float64(len(w))
	var rss float64
	for _, v := range w {
		d := v - mean
		rss += d * d
	}
	m.C = mean
	m.Phi, m.Theta = nil, nil
	m.rss = rss
	m.n = len(w)
}

// fitAR estimates a pure AR(p) by OLS on the lag matrix.
func (m *Model) fitAR(w []float64, p int) error {
	rows, ys, err := timeseries.LagMatrix(w, p)
	if err != nil {
		return ErrTooShort
	}
	ols, err := regress.Fit(rows, ys)
	if err != nil {
		return fmt.Errorf("arima: AR estimation: %w", err)
	}
	m.C = ols.Intercept
	m.Phi = ols.Coeffs
	m.Theta = nil
	m.rss = ols.RSS
	m.n = ols.N
	return nil
}

// longAROrder picks the order of the first-stage long autoregression used
// by Hannan–Rissanen to approximate the innovations.
func longAROrder(p, q, n int) int {
	order := p + q + 4
	if order < 8 {
		order = 8
	}
	if max := n/4 - 1; order > max {
		order = max
	}
	if order < p+q {
		order = p + q
	}
	return order
}

// fitHannanRissanen estimates an ARMA(p,q) in two OLS stages: a long AR fit
// yields residuals approximating the innovations, then the series is
// regressed on its own lags and the lagged residuals.
func (m *Model) fitHannanRissanen(w []float64, p, q int) error {
	long := longAROrder(p, q, len(w))
	rows, ys, err := timeseries.LagMatrix(w, long)
	if err != nil {
		return ErrTooShort
	}
	stage1, err := regress.Fit(rows, ys)
	if err != nil {
		return fmt.Errorf("arima: HR stage 1: %w", err)
	}
	// Innovation estimates aligned with w: zero for the presample.
	eh := make([]float64, len(w))
	for i, row := range rows {
		eh[i+long] = ys[i] - stage1.Predict(row)
	}
	// Stage 2: regress w_t on p lags of w and q lags of eh, for
	// t >= long+q so every regressor is a genuine (non-presample) value.
	start := long + q
	if start < p {
		start = p
	}
	nObs := len(w) - start
	if nObs < p+q+2 {
		return ErrTooShort
	}
	rows2 := make([][]float64, nObs)
	ys2 := make([]float64, nObs)
	for i := 0; i < nObs; i++ {
		t := start + i
		row := make([]float64, p+q)
		for j := 1; j <= p; j++ {
			row[j-1] = w[t-j]
		}
		for j := 1; j <= q; j++ {
			row[p+j-1] = eh[t-j]
		}
		rows2[i] = row
		ys2[i] = w[t]
	}
	stage2, err := regress.Fit(rows2, ys2)
	if err != nil {
		return fmt.Errorf("arima: HR stage 2: %w", err)
	}
	m.C = stage2.Intercept
	m.Phi = stage2.Coeffs[:p]
	m.Theta = stage2.Coeffs[p:]
	if p == 0 {
		m.Phi = nil // pure MA: keep the canonical nil form persistence expects
	}
	m.rss = stage2.RSS
	m.n = stage2.N
	return nil
}

// computeResiduals fills m.e with one-step in-sample residuals over the
// differenced history, using zeros for the presample.
func (m *Model) computeResiduals() {
	m.e = make([]float64, len(m.w))
	for t := m.P; t < len(m.w); t++ {
		m.e[t] = m.w[t] - m.stepAt(t)
	}
	// Recompute once so MA terms see first-pass residuals rather than the
	// zero presample (a light second iteration improves early residuals).
	for t := m.P; t < len(m.w); t++ {
		m.e[t] = m.w[t] - m.stepAt(t)
	}
}

// stepAt returns the model's one-step prediction of w[t] from history
// strictly before t (residuals before index P, or negative, read as zero).
func (m *Model) stepAt(t int) float64 {
	pred := m.C
	for j := 1; j <= m.P; j++ {
		if t-j < 0 {
			return pred
		}
		pred += m.Phi[j-1] * m.w[t-j]
	}
	for j := 1; j <= m.Q; j++ {
		if t-j >= 0 {
			pred += m.Theta[j-1] * m.e[t-j]
		}
	}
	return pred
}

// Forecast returns h-step-ahead forecasts on the original scale of the
// series the model was fitted on (or last Updated with).
func (m *Model) Forecast(h int) ([]float64, error) {
	if h < 1 {
		return nil, errors.New("arima: horizon must be >= 1")
	}
	w := append([]float64(nil), m.w...)
	e := append([]float64(nil), m.e...)
	diffs := make([]float64, h)
	for s := 0; s < h; s++ {
		t := len(w)
		pred := m.C
		for j := 1; j <= m.P; j++ {
			if t-j >= 0 {
				pred += m.Phi[j-1] * w[t-j]
			}
		}
		for j := 1; j <= m.Q; j++ {
			if t-j >= 0 {
				pred += m.Theta[j-1] * e[t-j]
			}
		}
		diffs[s] = pred
		w = append(w, pred)
		e = append(e, 0)
	}
	if m.D == 0 {
		return diffs, nil
	}
	seeds := m.orig[len(m.orig)-m.D:]
	return timeseries.Integrate(diffs, seeds)
}

// PredictNext returns the one-step-ahead forecast on the original scale.
func (m *Model) PredictNext() (float64, error) {
	f, err := m.Forecast(1)
	if err != nil {
		return 0, err
	}
	return f[0], nil
}

// Update appends a newly observed value (original scale) to the model
// state without re-estimating coefficients, recording the innovation it
// implies. This enables walk-forward one-step evaluation as in the paper's
// test-set validation.
func (m *Model) Update(x float64) {
	var wNew float64
	if m.D == 0 {
		wNew = x
	} else {
		ext := append(append([]float64(nil), m.orig[len(m.orig)-m.D:]...), x)
		d, err := timeseries.Diff(ext, m.D)
		if err != nil || len(d) == 0 {
			return
		}
		wNew = d[len(d)-1]
	}
	t := len(m.w)
	m.w = append(m.w, wNew)
	m.e = append(m.e, 0)
	m.e[t] = wNew - m.stepAt(t)
	m.orig = append(m.orig, x)
}

// Observations returns the number of original-scale observations the model
// currently holds: the fitted series plus every Update since. Serving-layer
// registries use it to report model staleness without reaching into the
// internal history.
func (m *Model) Observations() int { return len(m.orig) }

// AIC returns the Akaike information criterion of the fitted model.
func (m *Model) AIC() float64 {
	if m.n == 0 {
		return math.Inf(1)
	}
	rssPerN := m.rss / float64(m.n)
	if rssPerN <= 0 {
		rssPerN = 1e-300
	}
	k := float64(m.P + m.Q + 1)
	return float64(m.n)*math.Log(rssPerN) + 2*k
}

// SelectOrder fits ARIMA models over the full (p,q) grid — including the
// pure-MA column p=0 and the intercept-only corner (0,d,0) — and returns
// the model with the best (lowest) AIC. The differencing order is chosen
// first by a persistence heuristic: difference while the lag-1
// autocorrelation stays above 0.9 (an indication of a unit root), up to
// maxD.
//
// The grid is fitted on the parallel worker pool: every candidate order is
// independent, and the winner is reduced from the results in grid order
// (p ascending, then q ascending) with a strict comparison — exactly the
// model the serial loop would pick, including tie-breaks.
func SelectOrder(xs []float64, maxP, maxD, maxQ int) (*Model, error) {
	if maxP < 1 {
		maxP = 1
	}
	if maxQ < 0 {
		maxQ = 0
	}
	d := chooseD(xs, maxD)
	type order struct{ p, q int }
	grid := make([]order, 0, (maxP+1)*(maxQ+1))
	for p := 0; p <= maxP; p++ {
		for q := 0; q <= maxQ; q++ {
			grid = append(grid, order{p, q})
		}
	}
	// Infeasible orders are skipped, not errors, so Map never fails here.
	models, _ := parallel.Map(len(grid), 0, func(i int) (*Model, error) {
		m, err := Fit(xs, grid[i].p, d, grid[i].q)
		if err != nil {
			return nil, nil
		}
		return m, nil
	})
	var best *Model
	for _, m := range models {
		if m == nil {
			continue
		}
		if best == nil || m.AIC() < best.AIC() {
			best = m
		}
	}
	if best == nil {
		return nil, ErrTooShort
	}
	return best, nil
}

// chooseD differences only on a strongly *positive* lag-1 autocorrelation.
// A strongly negative acf(1) is the textbook signature of an already
// over-differenced series — differencing again would make it worse, so it
// must terminate the loop, not extend it.
func chooseD(xs []float64, maxD int) int {
	cur := xs
	for d := 0; d < maxD; d++ {
		if len(cur) < 3 {
			return d
		}
		acf := timeseries.ACF(cur, 1)
		if len(acf) < 2 || math.IsNaN(acf[1]) || acf[1] < 0.9 {
			return d
		}
		next, err := timeseries.Diff(cur, 1)
		if err != nil {
			return d
		}
		cur = next
	}
	return maxD
}
