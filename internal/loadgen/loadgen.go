package loadgen

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve/metrics"
	"repro/internal/trace"
)

// Mode selects the driver's pacing discipline.
type Mode int

const (
	// ClosedLoop sends back-to-back from Workers goroutines: each worker
	// issues its next record the moment the previous call returns. It
	// measures the sink's maximum sustainable throughput; latency is the
	// bare call duration.
	ClosedLoop Mode = iota
	// OpenLoop schedules arrivals on a clock at Rate (optionally ramping
	// to RateEnd) regardless of how fast the sink answers. Latency is
	// completion minus the scheduled arrival, so a sink that falls behind
	// accrues queue wait instead of silently slowing the generator
	// (no coordinated omission).
	OpenLoop
)

func (m Mode) String() string {
	if m == OpenLoop {
		return "open-loop"
	}
	return "closed-loop"
}

// Config tunes one driver run.
type Config struct {
	Mode Mode
	// Records is the total number of records to send. Required.
	Records int
	// Workers is the sink-call concurrency. Default 4.
	Workers int
	// Rate is the open-loop arrival rate in records/second at the start of
	// the run. Required for OpenLoop.
	Rate float64
	// RateEnd, when positive, ramps the arrival rate linearly from Rate to
	// RateEnd across the run (stress ramps; find the shedding knee).
	RateEnd float64
	// Batch groups this many records per sink call when the sink
	// implements BatchSink (HTTPSink: one request per batch; ServiceSink:
	// one vectorized IngestBatch). Default 1: scalar Ingest calls.
	Batch int
	// Buckets overrides the latency histogram bounds (seconds). Default
	// LatencyBuckets.
	Buckets []float64
}

// workItem pairs a record with its scheduled arrival.
type workItem struct {
	a   *trace.Attack
	due time.Time
}

// Run drives records from next into sink per cfg and reports the outcome.
// next is pulled under a driver lock, so generators and chaos stream
// wrappers need no concurrency handling of their own. A nil record from
// next ends the run early (finite sources).
func Run(cfg Config, next func() *trace.Attack, sink Sink) (*Report, error) {
	if cfg.Records < 1 {
		return nil, errors.New("loadgen: Config.Records must be positive")
	}
	if cfg.Workers < 1 {
		cfg.Workers = 4
	}
	if cfg.Mode == OpenLoop && cfg.Rate <= 0 {
		return nil, errors.New("loadgen: open loop needs Config.Rate")
	}
	buckets := cfg.Buckets
	if len(buckets) == 0 {
		buckets = LatencyBuckets
	}

	rep := &Report{Mode: cfg.Mode.String()}
	reg := metrics.NewRegistry()
	rep.Hist = reg.Histogram("loadgen_latency_seconds", "", buckets)

	var (
		mu       sync.Mutex // serializes next()
		sent     atomic.Int64
		accepted atomic.Int64
		dups     atomic.Int64
		shed     atomic.Int64
		errCnt   atomic.Int64
		maxNanos atomic.Int64
	)
	pull := func() *trace.Attack {
		mu.Lock()
		defer mu.Unlock()
		return next()
	}
	observe := func(d time.Duration) {
		rep.Hist.Observe(d.Seconds())
		for {
			cur := maxNanos.Load()
			if int64(d) <= cur || maxNanos.CompareAndSwap(cur, int64(d)) {
				return
			}
		}
	}
	deliver := func(a *trace.Attack, due time.Time) {
		sent.Add(1)
		res, err := sink.Ingest(a)
		observe(time.Since(due))
		switch {
		case err != nil:
			errCnt.Add(1)
		case res.Shed:
			shed.Add(1)
		case res.Duplicate:
			dups.Add(1)
		case res.Accepted:
			accepted.Add(1)
		}
	}
	// Batched delivery: one sink call for the run, each record's latency
	// observed against its own due time (the whole batch completes when
	// the call returns).
	bsink, batched := sink.(BatchSink)
	batched = batched && cfg.Batch > 1
	deliverBatch := func(items []workItem, recs []*trace.Attack) {
		sent.Add(int64(len(items)))
		recs = recs[:0]
		for i := range items {
			recs = append(recs, items[i].a)
		}
		br, err := bsink.IngestBatch(recs)
		now := time.Now()
		for i := range items {
			observe(now.Sub(items[i].due))
		}
		switch {
		case err != nil:
			errCnt.Add(int64(len(items)))
		case br.Shed:
			shed.Add(int64(len(items)))
		default:
			accepted.Add(int64(br.Accepted))
			dups.Add(int64(br.Duplicates))
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	switch cfg.Mode {
	case ClosedLoop:
		var claimed atomic.Int64
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if !batched {
					for claimed.Add(1) <= int64(cfg.Records) {
						a := pull()
						if a == nil {
							return
						}
						deliver(a, time.Now())
					}
					return
				}
				items := make([]workItem, 0, cfg.Batch)
				recs := make([]*trace.Attack, 0, cfg.Batch)
				for {
					items = items[:0]
					exhausted := false
					for len(items) < cfg.Batch {
						if claimed.Add(1) > int64(cfg.Records) {
							exhausted = true
							break
						}
						a := pull()
						if a == nil {
							exhausted = true
							break
						}
						items = append(items, workItem{a: a, due: time.Now()})
					}
					if len(items) > 0 {
						deliverBatch(items, recs)
					}
					if exhausted {
						return
					}
				}
			}()
		}
	case OpenLoop:
		work := make(chan workItem, cfg.Workers*4)
		workB := make(chan []workItem, cfg.Workers*2)
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if !batched {
					for item := range work {
						deliver(item.a, item.due)
					}
					return
				}
				recs := make([]*trace.Attack, 0, cfg.Batch)
				for items := range workB {
					deliverBatch(items, recs)
				}
			}()
		}
		// Dispatcher: the k-th arrival is due at the integral of the
		// linearly ramped rate. If workers fall behind, the send blocks
		// but due times stay on schedule — the backlog shows up as
		// latency, which is the point of the open loop. Batched runs group
		// consecutive arrivals, each keeping its own due time.
		due := start
		var pending []workItem
		for k := 0; k < cfg.Records; k++ {
			rate := cfg.Rate
			if cfg.RateEnd > 0 && cfg.Records > 1 {
				rate += (cfg.RateEnd - cfg.Rate) * float64(k) / float64(cfg.Records-1)
			}
			due = due.Add(time.Duration(float64(time.Second) / rate))
			if wait := time.Until(due); wait > 0 {
				time.Sleep(wait)
			}
			a := pull()
			if a == nil {
				break
			}
			if !batched {
				work <- workItem{a: a, due: due}
				continue
			}
			pending = append(pending, workItem{a: a, due: due})
			if len(pending) >= cfg.Batch {
				workB <- pending
				pending = nil
			}
		}
		if len(pending) > 0 {
			workB <- pending
		}
		close(work)
		close(workB)
	}
	wg.Wait()

	rep.Elapsed = time.Since(start)
	rep.Sent = sent.Load()
	rep.Accepted = accepted.Load()
	rep.Dups = dups.Load()
	rep.Shed = shed.Load()
	rep.Errors = errCnt.Load()
	rep.Max = time.Duration(maxNanos.Load())
	return rep, nil
}
