package loadgen

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/serve"
	"repro/internal/trace"
)

// Result classifies one ingest attempt.
type Result struct {
	// Accepted: the record entered the store as new.
	Accepted bool
	// Duplicate: the record was deduplicated (known attack ID).
	Duplicate bool
	// Shed: the service refused the record under load (429 / ErrShedding).
	Shed bool
}

// Sink is where the driver pushes records. Implementations classify the
// outcome; an error means the record was rejected for a non-load reason
// (validation, transport) and counts against the run.
type Sink interface {
	Ingest(a *trace.Attack) (Result, error)
}

// ServiceSink drives an in-process serve.Service — the zero-transport
// path, for soak tests and maximum-pressure runs.
type ServiceSink struct {
	Svc *serve.Service
}

// Ingest implements Sink.
func (s ServiceSink) Ingest(a *trace.Attack) (Result, error) {
	ok, err := s.Svc.Ingest(a)
	switch {
	case errors.Is(err, serve.ErrShedding):
		return Result{Shed: true}, nil
	case err != nil:
		return Result{}, err
	case ok:
		return Result{Accepted: true}, nil
	default:
		return Result{Duplicate: true}, nil
	}
}

// HTTPSink drives a live ddosd over POST /ingest, one record per request
// (per-record latency is the point; batch throughput is the in-process
// sink's job).
type HTTPSink struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Client defaults to a dedicated client with sane timeouts.
	Client *http.Client
}

// NewHTTPSink returns a sink with a connection-reusing client.
func NewHTTPSink(baseURL string) *HTTPSink {
	return &HTTPSink{
		BaseURL: baseURL,
		Client: &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        256,
				MaxIdleConnsPerHost: 256,
			},
		},
	}
}

// Ingest implements Sink.
func (s *HTTPSink) Ingest(a *trace.Attack) (Result, error) {
	body, err := json.Marshal(a)
	if err != nil {
		return Result{}, err
	}
	client := s.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Post(s.BaseURL+"/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		return Result{}, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
		var res serve.IngestResult
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			return Result{}, fmt.Errorf("loadgen: bad /ingest response: %w", err)
		}
		if res.Ingested > 0 {
			return Result{Accepted: true}, nil
		}
		return Result{Duplicate: true}, nil
	case http.StatusTooManyRequests:
		return Result{Shed: true}, nil
	default:
		return Result{}, fmt.Errorf("loadgen: /ingest returned HTTP %d", resp.StatusCode)
	}
}
