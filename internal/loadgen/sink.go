package loadgen

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve"
	"repro/internal/trace"
)

// Result classifies one ingest attempt.
type Result struct {
	// Accepted: the record entered the store as new.
	Accepted bool
	// Duplicate: the record was deduplicated (known attack ID).
	Duplicate bool
	// Shed: the service refused the record under load (429 / ErrShedding).
	Shed bool
}

// BatchResult classifies one batched ingest attempt.
type BatchResult struct {
	// Accepted records entered the store as new.
	Accepted int
	// Duplicates were deduplicated (known attack IDs).
	Duplicates int
	// Shed: the service refused the whole batch under load (429).
	Shed bool
}

// Sink is where the driver pushes records. Implementations classify the
// outcome; an error means the record was rejected for a non-load reason
// (validation, transport) and counts against the run.
type Sink interface {
	Ingest(a *trace.Attack) (Result, error)
}

// BatchSink is the vectorized extension a sink may implement; the driver
// uses it when Config.Batch > 1 (HTTPSink: one request per batch;
// ServiceSink: one serve.IngestBatch call).
type BatchSink interface {
	Sink
	IngestBatch(recs []*trace.Attack) (BatchResult, error)
}

// ServiceSink drives an in-process serve.Service — the zero-transport
// path, for soak tests and maximum-pressure runs.
type ServiceSink struct {
	Svc *serve.Service
}

// Ingest implements Sink.
func (s ServiceSink) Ingest(a *trace.Attack) (Result, error) {
	ok, err := s.Svc.Ingest(a)
	switch {
	case errors.Is(err, serve.ErrShedding):
		return Result{Shed: true}, nil
	case err != nil:
		return Result{}, err
	case ok:
		return Result{Accepted: true}, nil
	default:
		return Result{Duplicate: true}, nil
	}
}

// svcBatchPool recycles ServiceSink.IngestBatch's record scratch.
var svcBatchPool = sync.Pool{New: func() any { return new([]trace.Attack) }}

// IngestBatch implements BatchSink over serve.Service.IngestBatch.
func (s ServiceSink) IngestBatch(recs []*trace.Attack) (BatchResult, error) {
	bp := svcBatchPool.Get().(*[]trace.Attack)
	arr := (*bp)[:0]
	for _, a := range recs {
		arr = append(arr, *a)
	}
	br, err := s.Svc.IngestBatch(arr, nil)
	*bp = arr[:0]
	svcBatchPool.Put(bp)
	switch {
	case errors.Is(err, serve.ErrShedding):
		return BatchResult{Shed: true}, nil
	case err != nil:
		return BatchResult{}, err
	}
	return BatchResult{Accepted: br.Ingested, Duplicates: br.Duplicates}, nil
}

// HTTPSink drives a live ddosd over POST /ingest: one record per request
// through Ingest, or one batch per request through IngestBatch on the
// wire Wire selects.
type HTTPSink struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Client defaults to a dedicated client with sane timeouts.
	Client *http.Client
	// Wire selects IngestBatch's request encoding: "json" (NDJSON body,
	// the default) or "binary" (application/x-ddos-batch frames).
	Wire string

	bufs sync.Pool // *batchBuf: request-body scratch per in-flight call
}

// batchBuf is one pooled request-encoding workspace.
type batchBuf struct {
	body bytes.Buffer
	enc  *trace.BatchEncoder
	je   *json.Encoder
}

// NewHTTPSink returns a sink with a connection-reusing client.
func NewHTTPSink(baseURL string) *HTTPSink {
	return &HTTPSink{
		BaseURL: baseURL,
		Client: &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        256,
				MaxIdleConnsPerHost: 256,
			},
		},
	}
}

// Ingest implements Sink.
func (s *HTTPSink) Ingest(a *trace.Attack) (Result, error) {
	body, err := json.Marshal(a)
	if err != nil {
		return Result{}, err
	}
	resp, err := s.post("application/json", body)
	if err != nil {
		return Result{}, err
	}
	// Drain before close so the keep-alive connection returns to the
	// transport's idle pool instead of being torn down (the success path
	// below reads the JSON body, but error paths and trailing bytes must
	// drain too — pinned by TestHTTPSinkReusesConnections).
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
		var res serve.IngestResult
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			return Result{}, fmt.Errorf("loadgen: bad /ingest response: %w", err)
		}
		if res.Ingested > 0 {
			return Result{Accepted: true}, nil
		}
		return Result{Duplicate: true}, nil
	case http.StatusTooManyRequests:
		return Result{Shed: true}, nil
	default:
		return Result{}, fmt.Errorf("loadgen: /ingest returned HTTP %d", resp.StatusCode)
	}
}

func (s *HTTPSink) client() *http.Client {
	if s.Client != nil {
		return s.Client
	}
	return http.DefaultClient
}

// post sends one /ingest request with an explicit GetBody so the client
// replays the payload across 307/308 redirects. A cluster node in
// redirect routing answers /ingest with 307 to the owner node; without
// GetBody the redirected request would carry an empty body and the
// records would be lost. Pinned by TestHTTPSinkResendsBodyOn307.
func (s *HTTPSink) post(contentType string, payload []byte) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodPost, s.BaseURL+"/ingest", bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	req.GetBody = func() (io.ReadCloser, error) {
		return io.NopCloser(bytes.NewReader(payload)), nil
	}
	return s.client().Do(req)
}

// IngestBatch implements BatchSink: all records in one request. The
// binary wire encodes trace.BatchEncoder frames under the batch content
// type; the JSON wire sends NDJSON, which /ingest's stream decoder
// accepts natively — so both wires exercise the same endpoint and the
// comparison isolates the encoding.
func (s *HTTPSink) IngestBatch(recs []*trace.Attack) (BatchResult, error) {
	b, _ := s.bufs.Get().(*batchBuf)
	if b == nil {
		b = &batchBuf{}
	}
	defer s.bufs.Put(b)
	b.body.Reset()
	contentType := "application/json"
	if s.Wire == "binary" {
		contentType = trace.BatchContentType
		if b.enc == nil {
			b.enc = trace.NewBatchEncoder(&b.body)
		} else {
			b.enc.Reset(&b.body)
		}
		for _, a := range recs {
			if err := b.enc.Encode(a); err != nil {
				return BatchResult{}, err
			}
		}
	} else {
		if b.je == nil {
			b.je = json.NewEncoder(&b.body)
		}
		for _, a := range recs {
			if err := b.je.Encode(a); err != nil {
				return BatchResult{}, err
			}
		}
	}
	resp, err := s.post(contentType, b.body.Bytes())
	if err != nil {
		return BatchResult{}, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
		var res serve.IngestResult
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			return BatchResult{}, fmt.Errorf("loadgen: bad /ingest response: %w", err)
		}
		return BatchResult{Accepted: res.Ingested, Duplicates: res.Duplicates}, nil
	case http.StatusTooManyRequests:
		return BatchResult{Shed: true}, nil
	default:
		return BatchResult{}, fmt.Errorf("loadgen: /ingest returned HTTP %d", resp.StatusCode)
	}
}

// MultiSink sprays calls round-robin across several sinks — the
// multi-node driver: point one ddosload at every cluster member and the
// nodes' ownership routing sorts each record to its owner regardless of
// which member received it. Safe for concurrent use when the underlying
// sinks are.
type MultiSink struct {
	Sinks []BatchSink
	next  atomic.Uint64
}

// NewMultiHTTPSink builds a MultiSink of HTTPSinks, one per base URL,
// all speaking the same wire.
func NewMultiHTTPSink(baseURLs []string, wire string) *MultiSink {
	m := &MultiSink{}
	for _, u := range baseURLs {
		hs := NewHTTPSink(u)
		hs.Wire = wire
		m.Sinks = append(m.Sinks, hs)
	}
	return m
}

func (m *MultiSink) pick() BatchSink {
	return m.Sinks[(m.next.Add(1)-1)%uint64(len(m.Sinks))]
}

// Ingest implements Sink.
func (m *MultiSink) Ingest(a *trace.Attack) (Result, error) { return m.pick().Ingest(a) }

// IngestBatch implements BatchSink.
func (m *MultiSink) IngestBatch(recs []*trace.Attack) (BatchResult, error) {
	return m.pick().IngestBatch(recs)
}
