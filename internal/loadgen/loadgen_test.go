package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/http/httptrace"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/serve"
	"repro/internal/trace"
)

func testServeConfig() serve.Config {
	return serve.Config{
		Shards:      4,
		Window:      64,
		MinWindow:   6,
		MinSTWindow: 1 << 20,
		RefitEvery:  4,
		QueueDepth:  64,
		BatchSize:   8,
		Seed:        7,
		Temporal:    core.TemporalConfig{MaxP: 1, MaxQ: 1},
		Spatial: core.SpatialConfig{
			Delays: []int{2},
			Hidden: []int{2},
			Train:  nn.TrainConfig{Epochs: 10},
		},
	}
}

func TestGeneratorDeterministicAndValid(t *testing.T) {
	mk := func() *Generator {
		return NewGenerator(GenConfig{Targets: 8, Seed: 11, TimeCompress: 24})
	}
	a, b := mk(), mk()
	seen := make(map[int]bool)
	perTargetLast := make(map[int]time.Time)
	for i := 0; i < 2000; i++ {
		ra, rb := a.Next(), b.Next()
		if ra.ID != rb.ID || !ra.Start.Equal(rb.Start) || ra.TargetAS != rb.TargetAS {
			t.Fatalf("record %d differs across equal seeds", i)
		}
		if err := serve.ValidateRecord(ra); err != nil {
			t.Fatalf("generated record %d invalid: %v", i, err)
		}
		if seen[ra.ID] {
			t.Fatalf("duplicate generated ID %d", ra.ID)
		}
		seen[ra.ID] = true
		tgt := int(ra.TargetAS)
		if last, ok := perTargetLast[tgt]; ok && ra.Start.Before(last) {
			t.Fatalf("target %d stream not chronological: %v after %v", tgt, ra.Start, last)
		}
		perTargetLast[tgt] = ra.Start
		if len(ra.Bots) < 1 || len(ra.Bots) > 8 {
			t.Fatalf("record %d has %d bots, want 1..8", i, len(ra.Bots))
		}
	}
	if len(a.Targets()) != 8 {
		t.Fatalf("fan-out %d, want 8", len(a.Targets()))
	}
}

func TestClosedLoopAgainstService(t *testing.T) {
	svc := serve.New(testServeConfig())
	defer svc.Close()
	gen := NewGenerator(GenConfig{Targets: 4, Seed: 3, TimeCompress: 24})
	rep, err := Run(Config{Mode: ClosedLoop, Records: 3000, Workers: 4}, gen.Next, ServiceSink{Svc: svc})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent != 3000 {
		t.Fatalf("sent %d, want 3000", rep.Sent)
	}
	if rep.Accepted+rep.Dups+rep.Shed+rep.Errors != rep.Sent {
		t.Fatalf("outcome counters %d+%d+%d+%d don't add to sent %d",
			rep.Accepted, rep.Dups, rep.Shed, rep.Errors, rep.Sent)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d sink errors", rep.Errors)
	}
	if rep.Accepted == 0 {
		t.Fatal("nothing accepted")
	}
	if rep.Max <= 0 || rep.Quantile(0.99) <= 0 {
		t.Fatalf("latency stats empty: max %v p99 %v", rep.Max, rep.Quantile(0.99))
	}
	svc.Flush()
	// The fan-out targets got enough records each to be served.
	served := 0
	for _, as := range gen.Targets() {
		if _, err := svc.Forecast(as); err == nil {
			served++
		}
	}
	if served == 0 {
		t.Fatal("no target served after 3000 accepted records")
	}
}

func TestOpenLoopRampAndChaosCompose(t *testing.T) {
	svc := serve.New(testServeConfig())
	defer svc.Close()
	gen := NewGenerator(GenConfig{Targets: 4, Seed: 5, TimeCompress: 24})
	faults := &chaos.StreamFaults{Seed: 9, DropProb: 0.1, DupProb: 0.1, ReorderProb: 0.1}
	src := faults.Stream(gen.Next)

	rep, err := Run(Config{
		Mode: OpenLoop, Records: 600, Workers: 4,
		Rate: 3000, RateEnd: 9000,
	}, src, ServiceSink{Svc: svc})
	if err != nil {
		t.Fatal(err)
	}
	// Drops shrink the stream below Records only if the source runs dry —
	// it never does (infinite generator), so everything scheduled went out.
	if rep.Sent != 600 {
		t.Fatalf("sent %d, want 600", rep.Sent)
	}
	if faults.Dropped() == 0 || faults.Duplicated() == 0 {
		t.Fatalf("chaos did not fire: dropped %d dup %d", faults.Dropped(), faults.Duplicated())
	}
	if rep.Dups == 0 {
		t.Fatal("duplicated records were not deduplicated by the service")
	}
	// Open loop at 3k..9k rec/s of 600 records should finish in well under
	// a second of scheduled time plus slack.
	if rep.Elapsed > 5*time.Second {
		t.Fatalf("open loop took %v", rep.Elapsed)
	}
}

func TestHTTPSinkClassifiesOutcomes(t *testing.T) {
	svc := serve.New(testServeConfig())
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	sink := NewHTTPSink(srv.URL)
	gen := NewGenerator(GenConfig{Targets: 2, Seed: 1, TimeCompress: 24})
	a := gen.Next()
	res, err := sink.Ingest(a)
	if err != nil || !res.Accepted {
		t.Fatalf("first ingest: %+v, %v", res, err)
	}
	res, err = sink.Ingest(a)
	if err != nil || !res.Duplicate {
		t.Fatalf("repeat ingest: %+v, %v", res, err)
	}
	bad := *gen.Next()
	bad.Family = ""
	if _, err := sink.Ingest(&bad); err == nil {
		t.Fatal("invalid record did not error through the HTTP sink")
	}
}

// TestHTTPSinkReusesConnections pins the keep-alive behavior behind the
// response-body drain: under concurrent workers against a live server,
// requests after the first wave must ride pooled connections
// (httptrace GotConn.Reused), not fresh TCP handshakes.
func TestHTTPSinkReusesConnections(t *testing.T) {
	svc := serve.New(testServeConfig())
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	sink := NewHTTPSink(srv.URL)
	var reused, total atomic.Int64
	ctx := httptrace.WithClientTrace(context.Background(), &httptrace.ClientTrace{
		GotConn: func(info httptrace.GotConnInfo) {
			total.Add(1)
			if info.Reused {
				reused.Add(1)
			}
		},
	})
	gen := NewGenerator(GenConfig{Targets: 2, Seed: 8, TimeCompress: 24})

	// Serial scalar requests: after the first, every request must reuse.
	for i := 0; i < 20; i++ {
		a := gen.Next()
		body, err := json.Marshal(a)
		if err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/ingest", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := sink.Client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if got := reused.Load(); got < 19 {
		t.Fatalf("connection reused on %d/20 requests; the sink is defeating keep-alive", got)
	}

	// The sink's own Ingest path must leave the connection reusable too:
	// drive it, then confirm a traced request still reuses.
	for i := 0; i < 5; i++ {
		if _, err := sink.Ingest(gen.Next()); err != nil {
			t.Fatal(err)
		}
	}
	before := reused.Load()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/ingest", strings.NewReader("[]"))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := sink.Client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if reused.Load() != before+1 {
		t.Fatal("request after sink.Ingest did not reuse the pooled connection")
	}
}

// TestHTTPSinkBatchWires drives both batch encodings through IngestBatch
// against a live handler and requires identical classification.
func TestHTTPSinkBatchWires(t *testing.T) {
	for _, wire := range []string{"json", "binary"} {
		t.Run(wire, func(t *testing.T) {
			svc := serve.New(testServeConfig())
			defer svc.Close()
			srv := httptest.NewServer(svc.Handler())
			defer srv.Close()

			sink := NewHTTPSink(srv.URL)
			sink.Wire = wire
			gen := NewGenerator(GenConfig{Targets: 2, Seed: 4, TimeCompress: 24})
			batch := make([]*trace.Attack, 16)
			for i := range batch {
				batch[i] = gen.Next()
			}
			br, err := sink.IngestBatch(batch)
			if err != nil || br.Accepted != 16 || br.Duplicates != 0 {
				t.Fatalf("first batch: %+v, %v", br, err)
			}
			br, err = sink.IngestBatch(batch)
			if err != nil || br.Accepted != 0 || br.Duplicates != 16 {
				t.Fatalf("replayed batch: %+v, %v", br, err)
			}
		})
	}
}

// TestHTTPSinkResendsBodyOn307 pins the redirect round trip a cluster
// node in redirect routing relies on: the first node answers /ingest
// with 307 to the owner, and the sink's client must replay the full
// request body to the redirect target (Go only does this when
// Request.GetBody is set — a sink built on a plain one-shot reader
// follows the redirect with an empty body and silently loses records).
func TestHTTPSinkResendsBodyOn307(t *testing.T) {
	svc := serve.New(testServeConfig())
	defer svc.Close()
	owner := httptest.NewServer(svc.Handler())
	defer owner.Close()

	var redirects atomic.Int64
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		redirects.Add(1)
		http.Redirect(w, r, owner.URL+r.URL.RequestURI(), http.StatusTemporaryRedirect)
	}))
	defer front.Close()

	gen := NewGenerator(GenConfig{Targets: 2, Seed: 3, TimeCompress: 24})

	// Scalar path.
	sink := NewHTTPSink(front.URL)
	res, err := sink.Ingest(gen.Next())
	if err != nil || !res.Accepted {
		t.Fatalf("redirected scalar ingest: %+v, %v", res, err)
	}

	// Both batch wires.
	for _, wire := range []string{"json", "binary"} {
		sink.Wire = wire
		batch := make([]*trace.Attack, 8)
		for i := range batch {
			batch[i] = gen.Next()
		}
		br, err := sink.IngestBatch(batch)
		if err != nil || br.Accepted != 8 {
			t.Fatalf("redirected %s batch: %+v, %v", wire, br, err)
		}
	}
	if redirects.Load() != 3 {
		t.Fatalf("front server saw %d requests, want 3", redirects.Load())
	}
}

// TestMultiSinkSpraysAcrossSinks checks the round-robin fan-out the
// cluster load driver uses for -addrs.
func TestMultiSinkSpraysAcrossSinks(t *testing.T) {
	var hits [2]atomic.Int64
	var srvs [2]*httptest.Server
	for i := range srvs {
		i := i
		svc := serve.New(testServeConfig())
		defer svc.Close()
		inner := svc.Handler()
		srvs[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hits[i].Add(1)
			inner.ServeHTTP(w, r)
		}))
		defer srvs[i].Close()
	}
	m := NewMultiHTTPSink([]string{srvs[0].URL, srvs[1].URL}, "binary")
	gen := NewGenerator(GenConfig{Targets: 2, Seed: 5, TimeCompress: 24})
	for i := 0; i < 6; i++ {
		batch := []*trace.Attack{gen.Next(), gen.Next()}
		if br, err := m.IngestBatch(batch); err != nil || br.Accepted != 2 {
			t.Fatalf("batch %d: %+v, %v", i, br, err)
		}
	}
	if hits[0].Load() != 3 || hits[1].Load() != 3 {
		t.Fatalf("round robin skewed: %d vs %d hits", hits[0].Load(), hits[1].Load())
	}
}

// TestBatchedDriverAgainstService runs the full driver in batch mode on
// the in-process vectorized path, both pacing disciplines.
func TestBatchedDriverAgainstService(t *testing.T) {
	for _, mode := range []Mode{ClosedLoop, OpenLoop} {
		t.Run(mode.String(), func(t *testing.T) {
			svc := serve.New(testServeConfig())
			defer svc.Close()
			gen := NewGenerator(GenConfig{Targets: 4, Seed: 6, TimeCompress: 24})
			cfg := Config{Mode: mode, Records: 1000, Workers: 4, Batch: 32}
			if mode == OpenLoop {
				cfg.Rate = 50000
			}
			rep, err := Run(cfg, gen.Next, ServiceSink{Svc: svc})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Sent != 1000 {
				t.Fatalf("sent %d, want 1000", rep.Sent)
			}
			if rep.Accepted+rep.Dups+rep.Shed+rep.Errors != rep.Sent {
				t.Fatalf("outcome counters %d+%d+%d+%d don't add to sent %d",
					rep.Accepted, rep.Dups, rep.Shed, rep.Errors, rep.Sent)
			}
			if rep.Errors != 0 {
				t.Fatalf("%d sink errors", rep.Errors)
			}
			if rep.Accepted == 0 {
				t.Fatal("nothing accepted")
			}
		})
	}
}

func TestReportSLOChecks(t *testing.T) {
	rep, err := Run(Config{Mode: ClosedLoop, Records: 100, Workers: 2},
		NewGenerator(GenConfig{Targets: 2, Seed: 2}).Next, nullSink{})
	if err != nil {
		t.Fatal(err)
	}
	if errs := rep.Check(SLO{MaxShedRate: Unchecked, MaxErrorRate: Unchecked}); len(errs) != 0 {
		t.Fatalf("empty SLO violated: %v", errs)
	}
	if errs := rep.Check(SLO{P99: time.Nanosecond, MaxShedRate: Unchecked, MaxErrorRate: Unchecked}); len(errs) == 0 {
		t.Fatal("1ns p99 SLO not violated")
	}
	if errs := rep.Check(SLO{MinThroughput: 1e12, MaxShedRate: Unchecked, MaxErrorRate: Unchecked}); len(errs) == 0 {
		t.Fatal("absurd throughput floor not violated")
	}
	out := rep.String()
	for _, want := range []string{"p50", "p95", "p99", "max", "shed", "sent"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report output missing %q:\n%s", want, out)
		}
	}
}

func TestReportMarshalJSON(t *testing.T) {
	rep, err := Run(Config{Mode: ClosedLoop, Records: 100, Workers: 2},
		NewGenerator(GenConfig{Targets: 2, Seed: 2}).Next, nullSink{})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("report JSON does not round-trip: %v\n%s", err, raw)
	}
	// CI artifacts key on these names; renaming them breaks dashboards.
	for _, key := range []string{
		"mode", "elapsed_sec", "sent", "accepted", "duplicates",
		"shed", "errors", "throughput_rps", "shed_rate", "latency_sec",
	} {
		if _, ok := got[key]; !ok {
			t.Fatalf("report JSON missing %q:\n%s", key, raw)
		}
	}
	if got["sent"].(float64) != 100 {
		t.Fatalf("sent = %v, want 100", got["sent"])
	}
	lat, ok := got["latency_sec"].(map[string]any)
	if !ok {
		t.Fatalf("latency_sec is %T", got["latency_sec"])
	}
	for _, q := range []string{"p50", "p95", "p99", "max"} {
		if _, ok := lat[q]; !ok {
			t.Fatalf("latency_sec missing %q:\n%s", q, raw)
		}
	}
}

// nullSink accepts everything instantly.
type nullSink struct{}

func (nullSink) Ingest(*trace.Attack) (Result, error) { return Result{Accepted: true}, nil }
