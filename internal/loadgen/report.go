package loadgen

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/serve/metrics"
)

// LatencyBuckets are the report histogram bounds in seconds: 20µs through
// 2.5s, tight at the bottom where the in-process ingest path lives.
var LatencyBuckets = []float64{
	0.00002, 0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025,
	0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// Report is one run's outcome: outcome counters, achieved rate, and the
// latency distribution (open loop measures completion minus scheduled
// arrival, so queue wait — the coordinated-omission term — is included;
// closed loop measures the bare sink call).
type Report struct {
	Mode     string
	Sent     int64
	Accepted int64
	Dups     int64
	Shed     int64
	Errors   int64
	Elapsed  time.Duration

	Hist *metrics.Histogram // latency histogram, seconds
	Max  time.Duration      // exact maximum latency
}

// Throughput returns attempted records per second.
func (r *Report) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Sent) / r.Elapsed.Seconds()
}

// ShedRate returns the fraction of sent records the service shed.
func (r *Report) ShedRate() float64 {
	if r.Sent == 0 {
		return 0
	}
	return float64(r.Shed) / float64(r.Sent)
}

// Quantile returns the latency quantile as a duration (histogram upper
// bound, the conservative estimate).
func (r *Report) Quantile(q float64) time.Duration {
	return time.Duration(r.Hist.Quantile(q) * float64(time.Second))
}

// String renders the human report ddosload prints.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mode        %s\n", r.Mode)
	fmt.Fprintf(&b, "elapsed     %v\n", r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "sent        %d (%.0f rec/s)\n", r.Sent, r.Throughput())
	fmt.Fprintf(&b, "accepted    %d\n", r.Accepted)
	fmt.Fprintf(&b, "duplicates  %d\n", r.Dups)
	fmt.Fprintf(&b, "shed        %d (%.2f%%)\n", r.Shed, 100*r.ShedRate())
	fmt.Fprintf(&b, "errors      %d\n", r.Errors)
	fmt.Fprintf(&b, "latency     p50 %-10v p95 %-10v p99 %-10v max %v\n",
		r.Quantile(0.50), r.Quantile(0.95), r.Quantile(0.99), r.Max.Round(time.Microsecond))
	return b.String()
}

// MarshalJSON renders the machine-readable report (ddosload -json, CI
// artifacts): counters, derived rates, and the latency quantiles in
// seconds under stable snake_case keys.
func (r *Report) MarshalJSON() ([]byte, error) {
	latency := map[string]float64{
		"p50":  r.Quantile(0.50).Seconds(),
		"p90":  r.Quantile(0.90).Seconds(),
		"p95":  r.Quantile(0.95).Seconds(),
		"p99":  r.Quantile(0.99).Seconds(),
		"p999": r.Quantile(0.999).Seconds(),
		"max":  r.Max.Seconds(),
	}
	return json.Marshal(struct {
		Mode          string             `json:"mode"`
		ElapsedSec    float64            `json:"elapsed_sec"`
		Sent          int64              `json:"sent"`
		Accepted      int64              `json:"accepted"`
		Duplicates    int64              `json:"duplicates"`
		Shed          int64              `json:"shed"`
		Errors        int64              `json:"errors"`
		ThroughputRPS float64            `json:"throughput_rps"`
		ShedRate      float64            `json:"shed_rate"`
		LatencySec    map[string]float64 `json:"latency_sec"`
	}{
		Mode:          r.Mode,
		ElapsedSec:    r.Elapsed.Seconds(),
		Sent:          r.Sent,
		Accepted:      r.Accepted,
		Duplicates:    r.Dups,
		Shed:          r.Shed,
		Errors:        r.Errors,
		ThroughputRPS: r.Throughput(),
		ShedRate:      r.ShedRate(),
		LatencySec:    latency,
	})
}

// SLO is the pass/fail contract a run is judged against. Zero duration
// fields and negative rate fields are unchecked.
type SLO struct {
	P50, P95, P99 time.Duration // latency ceilings
	Max           time.Duration // worst-case latency ceiling
	MaxShedRate   float64       // ceiling on ShedRate; negative = unchecked
	MaxErrorRate  float64       // ceiling on Errors/Sent; negative = unchecked
	MinThroughput float64       // floor on attempted rec/s; 0 = unchecked
}

// Unchecked is the SLO rate value meaning "do not check".
const Unchecked = -1

// Check returns one error per violated objective (empty slice: the run
// passed).
func (r *Report) Check(slo SLO) []error {
	var out []error
	checkQ := func(name string, q float64, limit time.Duration) {
		if limit <= 0 {
			return
		}
		if got := r.Quantile(q); got > limit {
			out = append(out, fmt.Errorf("loadgen: %s latency %v over SLO %v", name, got, limit))
		}
	}
	checkQ("p50", 0.50, slo.P50)
	checkQ("p95", 0.95, slo.P95)
	checkQ("p99", 0.99, slo.P99)
	if slo.Max > 0 && r.Max > slo.Max {
		out = append(out, fmt.Errorf("loadgen: max latency %v over SLO %v", r.Max, slo.Max))
	}
	if slo.MaxShedRate >= 0 && r.ShedRate() > slo.MaxShedRate {
		out = append(out, fmt.Errorf("loadgen: shed rate %.4f over SLO %.4f", r.ShedRate(), slo.MaxShedRate))
	}
	if slo.MaxErrorRate >= 0 && r.Sent > 0 {
		if rate := float64(r.Errors) / float64(r.Sent); rate > slo.MaxErrorRate {
			out = append(out, fmt.Errorf("loadgen: error rate %.4f over SLO %.4f", rate, slo.MaxErrorRate))
		}
	}
	if slo.MinThroughput > 0 && r.Throughput() < slo.MinThroughput {
		out = append(out, fmt.Errorf("loadgen: throughput %.0f rec/s under SLO %.0f", r.Throughput(), slo.MinThroughput))
	}
	return out
}
