// Package loadgen is the traffic side of the load/soak harness (DESIGN.md
// §8): it synthesizes attack-record streams shaped by internal/botnet
// family profiles, drives them into an ingest sink — the in-process
// serve.Service or a live ddosd over HTTP — in open-loop (scheduled
// arrivals, rate ramps, queue-wait counted into latency) or closed-loop
// (back-to-back) mode, and reports p50/p95/p99/max latency, shed rate, and
// SLO verdicts. Fault injection composes underneath via internal/chaos
// stream wrappers.
package loadgen

import (
	"math"
	"sync"
	"time"

	"repro/internal/astopo"
	"repro/internal/botnet"
	"repro/internal/stats"
	"repro/internal/trace"
)

// GenConfig shapes the synthetic record stream.
type GenConfig struct {
	// Profiles are the botnet families records draw behavior from
	// (launch-hour peaks, duration and magnitude scales, activity rates).
	// Default botnet.DefaultFamilies().
	Profiles []botnet.Profile
	// Targets is the victim fan-out; records spread over this many target
	// ASes with a Zipf popularity skew. Default 16.
	Targets int
	// BaseAS numbers the synthetic targets BaseAS, BaseAS+1, ...
	// Default 64512 (the private-use ASN range).
	BaseAS astopo.AS
	// Start anchors record timestamps. Default 2012-08-01 UTC.
	Start time.Time
	// Seed drives all randomness; equal seeds yield identical streams.
	Seed uint64
	// MaxBots caps the bot list per record (magnitude signal stays, memory
	// per record stays small under 100k-record runs). Default 8.
	MaxBots int
	// TimeCompress divides inter-attack gaps, compressing days of trace
	// time into a short run without collapsing the hour-of-day structure.
	// Default 1 (real profile pacing).
	TimeCompress float64
}

func (c GenConfig) withDefaults() GenConfig {
	if len(c.Profiles) == 0 {
		c.Profiles = botnet.DefaultFamilies()
	}
	if c.Targets < 1 {
		c.Targets = 16
	}
	if c.BaseAS == 0 {
		c.BaseAS = 64512
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2012, 8, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.MaxBots < 1 {
		c.MaxBots = 8
	}
	if c.TimeCompress <= 0 {
		c.TimeCompress = 1
	}
	return c
}

// genTarget is one synthetic victim's stream state.
type genTarget struct {
	as         astopo.AS
	profile    *botnet.Profile
	hourOffset float64   // preferred launch hour offset from the family peak
	next       time.Time // next attack start (pre-hour-shaping)
	magState   float64   // AR(1) log-magnitude state
}

// Generator produces an endless, deterministic attack-record stream over a
// fixed target fan-out. Next is safe for concurrent use (one mutex; the
// drivers serialize pulls anyway so contention is irrelevant next to the
// sink call).
type Generator struct {
	mu      sync.Mutex
	cfg     GenConfig
	s       *stats.Sampler
	zipf    *stats.Zipf
	targets []genTarget
	nextID  int
}

// NewGenerator builds a generator; streams are deterministic in
// GenConfig.Seed.
func NewGenerator(cfg GenConfig) *Generator {
	cfg = cfg.withDefaults()
	g := &Generator{
		cfg:     cfg,
		s:       stats.NewSampler(cfg.Seed ^ 0x10adc3),
		zipf:    stats.NewZipf(cfg.Targets, 1.1),
		targets: make([]genTarget, cfg.Targets),
		nextID:  1,
	}
	for i := range g.targets {
		p := &cfg.Profiles[i%len(cfg.Profiles)]
		g.targets[i] = genTarget{
			as:         cfg.BaseAS + astopo.AS(i),
			profile:    p,
			hourOffset: g.s.Normal(0, p.TargetHourSigma/2),
			next:       cfg.Start.Add(time.Duration(g.s.Float64() * float64(24*time.Hour))),
		}
	}
	return g
}

// Targets returns the synthetic target ASes in fan-out order.
func (g *Generator) Targets() []astopo.AS {
	out := make([]astopo.AS, len(g.targets))
	for i := range g.targets {
		out[i] = g.targets[i].as
	}
	return out
}

// Next returns the next record. The stream never ends; the driver decides
// how many records a run sends.
func (g *Generator) Next() *trace.Attack {
	g.mu.Lock()
	defer g.mu.Unlock()
	tgt := &g.targets[g.zipf.Sample(g.s)]
	p := tgt.profile

	// Advance the target's clock by a profile-paced gap, then — when the
	// sampled preferred launch hour still lies ahead on the clock's day —
	// snap forward to it. The snap is forward-only, so each target's
	// stream stays strictly chronological while the family's diurnal peak
	// (plus the target's own offset) shows through: the signal the
	// temporal models fit.
	gapMean := 86400 / math.Max(p.AvgPerDay, 0.2) / g.cfg.TimeCompress
	gap := gapMean * math.Exp(g.s.Normal(0, 0.35))
	if gap < 1 {
		gap = 1
	}
	tgt.next = tgt.next.Add(time.Duration(gap * float64(time.Second)))
	h := math.Mod(p.PeakHour+tgt.hourOffset+g.s.Normal(0, p.HourSigma), 24)
	if h < 0 {
		h += 24
	}
	day := tgt.next.Truncate(24 * time.Hour)
	if cand := day.Add(time.Duration(h * float64(time.Hour))); cand.After(tgt.next) {
		tgt.next = cand
	}
	start := tgt.next

	dur := math.Exp(p.DurLogMean + g.s.Normal(0, p.DurLogSigma))
	if dur > 48*3600 {
		dur = 48 * 3600
	}

	tgt.magState = 0.8*tgt.magState + g.s.Normal(0, p.MagSigma)
	mag := int(p.MagBase*math.Exp(tgt.magState) + 0.5)
	if mag < 1 {
		mag = 1
	}
	if mag > g.cfg.MaxBots {
		mag = g.cfg.MaxBots
	}
	bots := make([]astopo.IPv4, mag)
	for i := range bots {
		bots[i] = astopo.IPv4(0x0a000000 | uint32(g.s.IntN(1<<24)))
	}

	id := g.nextID
	g.nextID++
	return &trace.Attack{
		ID:          id,
		Family:      p.Name,
		Start:       start,
		DurationSec: dur,
		TargetIP:    astopo.IPv4(0xc0a80000 | uint32(tgt.as&0xffff)),
		TargetAS:    tgt.as,
		Bots:        bots,
	}
}
