// Package loadgen is the traffic side of the load/soak harness (DESIGN.md
// §8): it synthesizes attack-record streams shaped by internal/botnet
// family profiles, drives them into an ingest sink — the in-process
// serve.Service or a live ddosd over HTTP — in open-loop (scheduled
// arrivals, rate ramps, queue-wait counted into latency) or closed-loop
// (back-to-back) mode, and reports p50/p95/p99/max latency, shed rate, and
// SLO verdicts. Fault injection composes underneath via internal/chaos
// stream wrappers.
package loadgen

import (
	"math"
	"sync"
	"time"

	"repro/internal/astopo"
	"repro/internal/botnet"
	"repro/internal/stats"
	"repro/internal/trace"
)

// GenConfig shapes the synthetic record stream.
type GenConfig struct {
	// Profiles are the botnet families records draw behavior from
	// (launch-hour peaks, duration and magnitude scales, activity rates).
	// Default botnet.DefaultFamilies().
	Profiles []botnet.Profile
	// Targets is the victim fan-out; records spread over this many target
	// ASes with a Zipf popularity skew. Default 16.
	Targets int
	// BaseAS numbers the synthetic targets BaseAS, BaseAS+1, ...
	// Default 64512 (the private-use ASN range).
	BaseAS astopo.AS
	// Start anchors record timestamps. Default 2012-08-01 UTC.
	Start time.Time
	// Seed drives all randomness; equal seeds yield identical streams.
	Seed uint64
	// MaxBots caps the bot list per record (magnitude signal stays, memory
	// per record stays small under 100k-record runs). Default 8.
	MaxBots int
	// TimeCompress divides inter-attack gaps, compressing days of trace
	// time into a short run without collapsing the hour-of-day structure.
	// Default 1 (real profile pacing).
	TimeCompress float64
	// Burst schedules ground-truth attack bursts on top of the baseline
	// stream (detector validation). Zero value: no bursts.
	Burst BurstConfig
}

// BurstConfig overlays periodic high-rate attack bursts onto the baseline
// profile pacing, in trace (already-compressed) time: every bursting
// target alternates long baseline stretches with Len-long storms of
// records Gap apart drawn from a small bot-address pool. Each generated
// record is labeled with its ground-truth phase — Generator.Label — and
// the analytic schedule is exposed via Generator.BurstIntervals, so
// detector precision/recall/latency are measured against known truth
// instead of asserted.
type BurstConfig struct {
	// Every is the burst period per target; 0 disables bursts. Target i's
	// k-th burst starts at Start + Every·i/Targets + k·Every (the phase
	// offset staggers targets so bursts don't all land at once).
	Every time.Duration
	// Len is the burst duration. Default Every/10.
	Len time.Duration
	// Gap is the mean in-burst record spacing (the burst rate is ~1/Gap).
	// Default 200ms.
	Gap time.Duration
	// Targets is how many of the fan-out targets burst (the first N).
	// Default: all of them.
	Targets int
	// BotPool is the per-target bot-address pool size in-burst records
	// draw from — small pools collapse source entropy, the detector's
	// concentration signal. Default 4.
	BotPool int
}

func (c GenConfig) withDefaults() GenConfig {
	if len(c.Profiles) == 0 {
		c.Profiles = botnet.DefaultFamilies()
	}
	if c.Targets < 1 {
		c.Targets = 16
	}
	if c.BaseAS == 0 {
		c.BaseAS = 64512
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2012, 8, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.MaxBots < 1 {
		c.MaxBots = 8
	}
	if c.TimeCompress <= 0 {
		c.TimeCompress = 1
	}
	if c.Burst.Every > 0 {
		if c.Burst.Len <= 0 || c.Burst.Len >= c.Burst.Every {
			c.Burst.Len = c.Burst.Every / 10
		}
		if c.Burst.Gap <= 0 {
			c.Burst.Gap = 200 * time.Millisecond
		}
		if c.Burst.Targets < 1 || c.Burst.Targets > c.Targets {
			c.Burst.Targets = c.Targets
		}
		if c.Burst.BotPool < 1 {
			c.Burst.BotPool = 4
		}
	}
	return c
}

// genTarget is one synthetic victim's stream state.
type genTarget struct {
	as         astopo.AS
	profile    *botnet.Profile
	hourOffset float64   // preferred launch hour offset from the family peak
	next       time.Time // next attack start (pre-hour-shaping)
	magState   float64   // AR(1) log-magnitude state
}

// Generator produces an endless, deterministic attack-record stream over a
// fixed target fan-out. Next is safe for concurrent use (one mutex; the
// drivers serialize pulls anyway so contention is irrelevant next to the
// sink call).
type Generator struct {
	mu      sync.Mutex
	cfg     GenConfig
	s       *stats.Sampler
	zipf    *stats.Zipf
	targets []genTarget
	nextID  int
	labels  []bool // ground-truth phase per dense record ID (labels[id-1])
}

// NewGenerator builds a generator; streams are deterministic in
// GenConfig.Seed.
func NewGenerator(cfg GenConfig) *Generator {
	cfg = cfg.withDefaults()
	g := &Generator{
		cfg:     cfg,
		s:       stats.NewSampler(cfg.Seed ^ 0x10adc3),
		zipf:    stats.NewZipf(cfg.Targets, 1.1),
		targets: make([]genTarget, cfg.Targets),
		nextID:  1,
	}
	for i := range g.targets {
		p := &cfg.Profiles[i%len(cfg.Profiles)]
		g.targets[i] = genTarget{
			as:         cfg.BaseAS + astopo.AS(i),
			profile:    p,
			hourOffset: g.s.Normal(0, p.TargetHourSigma/2),
			next:       cfg.Start.Add(time.Duration(g.s.Float64() * float64(24*time.Hour))),
		}
	}
	return g
}

// Targets returns the synthetic target ASes in fan-out order.
func (g *Generator) Targets() []astopo.AS {
	out := make([]astopo.AS, len(g.targets))
	for i := range g.targets {
		out[i] = g.targets[i].as
	}
	return out
}

// bursts reports whether target index ti has a burst schedule.
func (g *Generator) bursts(ti int) bool {
	return g.cfg.Burst.Every > 0 && ti < g.cfg.Burst.Targets
}

// burstPhase is target ti's schedule offset from cfg.Start.
func (g *Generator) burstPhase(ti int) time.Duration {
	return time.Duration(int64(g.cfg.Burst.Every) * int64(ti) / int64(g.cfg.Targets))
}

// burstStartBefore returns the start of the burst interval containing or
// most recently preceding t for target ti (zero time if t predates the
// schedule).
func (g *Generator) burstStartBefore(ti int, t time.Time) time.Time {
	base := g.cfg.Start.Add(g.burstPhase(ti))
	off := t.Sub(base)
	if off < 0 {
		return time.Time{}
	}
	return base.Add(off / g.cfg.Burst.Every * g.cfg.Burst.Every)
}

// inBurst reports whether t falls inside a burst interval [bs, bs+Len)
// for target ti.
func (g *Generator) inBurst(ti int, t time.Time) bool {
	if !g.bursts(ti) {
		return false
	}
	bs := g.burstStartBefore(ti, t)
	return !bs.IsZero() && t.Sub(bs) < g.cfg.Burst.Len
}

// nextBurstStart returns the first burst start strictly after t.
func (g *Generator) nextBurstStart(ti int, t time.Time) time.Time {
	base := g.cfg.Start.Add(g.burstPhase(ti))
	if t.Before(base) {
		return base
	}
	return base.Add((t.Sub(base)/g.cfg.Burst.Every + 1) * g.cfg.Burst.Every)
}

// Next returns the next record. The stream never ends; the driver decides
// how many records a run sends.
func (g *Generator) Next() *trace.Attack {
	g.mu.Lock()
	defer g.mu.Unlock()
	ti := g.zipf.Sample(g.s)
	tgt := &g.targets[ti]
	p := tgt.profile

	// Advance the target's clock. Inside a burst interval records are
	// paced at the burst gap; a burst that ends (or baseline pacing)
	// resumes the profile-shaped gap, and a baseline step that would jump
	// clean over an upcoming burst start snaps onto it instead — every
	// scheduled burst produces records, starting exactly at its analytic
	// start (the detection-latency reference point).
	prev := tgt.next
	advanced := false
	if g.bursts(ti) && g.inBurst(ti, prev) {
		gap := float64(g.cfg.Burst.Gap) * math.Exp(g.s.Normal(0, 0.3))
		cand := prev.Add(time.Duration(gap))
		end := g.burstStartBefore(ti, prev).Add(g.cfg.Burst.Len)
		if cand.Before(end) {
			tgt.next = cand
			advanced = true
		} else {
			prev = end // burst over: baseline pacing resumes from its end
		}
	}
	if !advanced {
		// Profile-paced gap, then — when the sampled preferred launch hour
		// still lies ahead on the clock's day — snap forward to it. The
		// snap is forward-only, so each target's stream stays strictly
		// chronological while the family's diurnal peak (plus the target's
		// own offset) shows through: the signal the temporal models fit.
		gapMean := 86400 / math.Max(p.AvgPerDay, 0.2) / g.cfg.TimeCompress
		gap := gapMean * math.Exp(g.s.Normal(0, 0.35))
		if gap < 1 {
			gap = 1
		}
		tgt.next = prev.Add(time.Duration(gap * float64(time.Second)))
		h := math.Mod(p.PeakHour+tgt.hourOffset+g.s.Normal(0, p.HourSigma), 24)
		if h < 0 {
			h += 24
		}
		day := tgt.next.Truncate(24 * time.Hour)
		if cand := day.Add(time.Duration(h * float64(time.Hour))); cand.After(tgt.next) {
			tgt.next = cand
		}
		if g.bursts(ti) {
			if nb := g.nextBurstStart(ti, prev); !tgt.next.Before(nb) {
				tgt.next = nb
			}
		}
	}
	start := tgt.next
	label := g.inBurst(ti, start)

	dur := math.Exp(p.DurLogMean + g.s.Normal(0, p.DurLogSigma))
	if dur > 48*3600 {
		dur = 48 * 3600
	}

	var bots []astopo.IPv4
	if label {
		// In-burst records ride the full magnitude cap and draw their bots
		// from the target's small fixed pool: the address-reuse signature
		// the entropy detector keys on.
		bots = make([]astopo.IPv4, g.cfg.MaxBots)
		base := 0x0a000000 | uint32(ti)<<8
		k := g.s.IntN(g.cfg.Burst.BotPool)
		for i := range bots {
			bots[i] = astopo.IPv4(base | uint32((k+i)%g.cfg.Burst.BotPool))
		}
	} else {
		tgt.magState = 0.8*tgt.magState + g.s.Normal(0, p.MagSigma)
		mag := int(p.MagBase*math.Exp(tgt.magState) + 0.5)
		if mag < 1 {
			mag = 1
		}
		if mag > g.cfg.MaxBots {
			mag = g.cfg.MaxBots
		}
		bots = make([]astopo.IPv4, mag)
		for i := range bots {
			bots[i] = astopo.IPv4(0x0a000000 | uint32(g.s.IntN(1<<24)))
		}
	}

	id := g.nextID
	g.nextID++
	g.labels = append(g.labels, label)
	return &trace.Attack{
		ID:          id,
		Family:      p.Name,
		Start:       start,
		DurationSec: dur,
		TargetIP:    astopo.IPv4(0xc0a80000 | uint32(tgt.as&0xffff)),
		TargetAS:    tgt.as,
		Bots:        bots,
	}
}

// Label reports the ground-truth phase of the record with the given dense
// ID: true when it was generated inside an attack burst. Unknown IDs
// (never generated) report false.
func (g *Generator) Label(id int) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if id < 1 || id > len(g.labels) {
		return false
	}
	return g.labels[id-1]
}

// Labels returns a copy of the ground-truth labels indexed by ID-1.
func (g *Generator) Labels() []bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]bool, len(g.labels))
	copy(out, g.labels)
	return out
}

// BurstInterval is one analytic ground-truth burst: records of Target
// with Start in [Start, End) are attack-phase.
type BurstInterval struct {
	Target astopo.AS
	Start  time.Time
	End    time.Time
}

// BurstIntervals returns the analytic burst schedule per bursting target,
// covering every burst that begins before until.
func (g *Generator) BurstIntervals(until time.Time) []BurstInterval {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.cfg.Burst.Every <= 0 {
		return nil
	}
	var out []BurstInterval
	for ti := 0; ti < g.cfg.Burst.Targets; ti++ {
		for bs := g.cfg.Start.Add(g.burstPhase(ti)); bs.Before(until); bs = bs.Add(g.cfg.Burst.Every) {
			out = append(out, BurstInterval{
				Target: g.targets[ti].as,
				Start:  bs,
				End:    bs.Add(g.cfg.Burst.Len),
			})
		}
	}
	return out
}
