// Package timeseries provides the time-series plumbing shared by the
// temporal (ARIMA) and spatial (NAR) models: differencing and integration,
// lag-matrix construction, autocorrelation diagnostics, train/test splits,
// and reversible standardization.
package timeseries

import (
	"errors"
	"math"

	"repro/internal/stats"
)

// ErrTooShort is returned when a series is too short for the requested
// operation (for example, differencing or lagging beyond its length).
var ErrTooShort = errors.New("timeseries: series too short")

// Diff returns the d-th order difference of xs. The result has length
// len(xs)-d. It errors when d < 0 or the series is too short.
func Diff(xs []float64, d int) ([]float64, error) {
	if d < 0 {
		return nil, errors.New("timeseries: negative differencing order")
	}
	cur := make([]float64, len(xs))
	copy(cur, xs)
	for k := 0; k < d; k++ {
		if len(cur) < 2 {
			return nil, ErrTooShort
		}
		next := make([]float64, len(cur)-1)
		for i := 1; i < len(cur); i++ {
			next[i-1] = cur[i] - cur[i-1]
		}
		cur = next
	}
	return cur, nil
}

// Integrate inverts Diff: given the d-th differences and the d seed values
// (the last d observations of the original series, oldest first), it
// reconstructs the forecast path on the original scale. diffs holds the
// forecast increments on the differenced scale.
func Integrate(diffs []float64, seeds []float64) ([]float64, error) {
	d := len(seeds)
	cur := make([]float64, len(diffs))
	copy(cur, diffs)
	for k := d - 1; k >= 0; k-- {
		// Each integration pass needs the running tail value at that level.
		// Compute the level-k tail by differencing the seeds k times.
		tail, err := Diff(seeds, k)
		if err != nil {
			return nil, err
		}
		last := tail[len(tail)-1]
		out := make([]float64, len(cur))
		for i, v := range cur {
			last += v
			out[i] = last
		}
		cur = out
	}
	return cur, nil
}

// LagMatrix builds the design matrix for autoregression of order p: row i
// holds [x_{i+p-1}, x_{i+p-2}, ..., x_i] (most recent lag first) and the
// target vector holds x_{i+p}. It errors when the series has no complete
// rows.
func LagMatrix(xs []float64, p int) (rows [][]float64, targets []float64, err error) {
	if p < 1 {
		return nil, nil, errors.New("timeseries: lag order must be >= 1")
	}
	n := len(xs) - p
	if n < 1 {
		return nil, nil, ErrTooShort
	}
	rows = make([][]float64, n)
	targets = make([]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, p)
		for j := 0; j < p; j++ {
			row[j] = xs[i+p-1-j]
		}
		rows[i] = row
		targets[i] = xs[i+p]
	}
	return rows, targets, nil
}

// ACF returns the autocorrelation function of xs for lags 0..maxLag.
func ACF(xs []float64, maxLag int) []float64 {
	if maxLag >= len(xs) {
		maxLag = len(xs) - 1
	}
	if maxLag < 0 {
		return nil
	}
	out := make([]float64, maxLag+1)
	for k := 0; k <= maxLag; k++ {
		out[k] = stats.Autocorrelation(xs, k)
	}
	return out
}

// PACF returns the partial autocorrelation function for lags 1..maxLag via
// the Durbin–Levinson recursion. Index 0 of the result corresponds to lag 1.
func PACF(xs []float64, maxLag int) []float64 {
	acf := ACF(xs, maxLag)
	if len(acf) < 2 {
		return nil
	}
	maxLag = len(acf) - 1
	pacf := make([]float64, maxLag)
	phi := make([][]float64, maxLag+1)
	for k := range phi {
		phi[k] = make([]float64, maxLag+1)
	}
	phi[1][1] = acf[1]
	pacf[0] = acf[1]
	for k := 2; k <= maxLag; k++ {
		num := acf[k]
		var den float64 = 1
		for j := 1; j < k; j++ {
			num -= phi[k-1][j] * acf[k-j]
			den -= phi[k-1][j] * acf[j]
		}
		if den == 0 {
			pacf[k-1] = math.NaN()
			continue
		}
		phi[k][k] = num / den
		for j := 1; j < k; j++ {
			phi[k][j] = phi[k-1][j] - phi[k][k]*phi[k-1][k-j]
		}
		pacf[k-1] = phi[k][k]
	}
	return pacf
}

// SplitFrac splits xs into a training prefix holding frac of the points and
// a test suffix with the remainder. frac is clamped into [0, 1].
func SplitFrac(xs []float64, frac float64) (train, test []float64) {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(math.Round(frac * float64(len(xs))))
	return xs[:n], xs[n:]
}

// Scaler standardizes a series to zero mean and unit variance and can
// invert the transform. A zero-variance series is only centered.
type Scaler struct {
	Mean, Std float64
}

// FitScaler computes the standardization parameters of xs.
func FitScaler(xs []float64) *Scaler {
	return &Scaler{Mean: stats.Mean(xs), Std: stats.StdDev(xs)}
}

// Transform returns the standardized copy of xs.
func (s *Scaler) Transform(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = s.Apply(x)
	}
	return out
}

// Apply standardizes a single value.
func (s *Scaler) Apply(x float64) float64 {
	if s.Std == 0 {
		return x - s.Mean
	}
	return (x - s.Mean) / s.Std
}

// Invert maps a standardized value back to the original scale.
func (s *Scaler) Invert(z float64) float64 {
	if s.Std == 0 {
		return z + s.Mean
	}
	return z*s.Std + s.Mean
}
