package timeseries

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestDiff(t *testing.T) {
	xs := []float64{1, 3, 6, 10}
	d1, err := Diff(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, 4}
	for i := range want {
		if d1[i] != want[i] {
			t.Fatalf("Diff1 = %v, want %v", d1, want)
		}
	}
	d2, err := Diff(xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(d2) != 2 || d2[0] != 1 || d2[1] != 1 {
		t.Errorf("Diff2 = %v, want [1 1]", d2)
	}
	d0, err := Diff(xs, 0)
	if err != nil || len(d0) != 4 {
		t.Errorf("Diff0 = %v, err %v", d0, err)
	}
	if _, err := Diff(xs, -1); err == nil {
		t.Error("negative order should error")
	}
	if _, err := Diff([]float64{1}, 1); err == nil {
		t.Error("too-short series should error")
	}
}

func TestIntegrateInvertsDiff(t *testing.T) {
	xs := []float64{2, 5, 4, 8, 9, 12, 11}
	for d := 1; d <= 2; d++ {
		diffs, err := Diff(xs, d)
		if err != nil {
			t.Fatal(err)
		}
		// Treat the tail of the differenced series as "forecasts" and
		// reconstruct from the first len(xs)-k observations.
		split := 4
		seeds := xs[split-d : split]
		future := diffs[split-d:]
		rec, err := Integrate(future, seeds)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range rec {
			if math.Abs(v-xs[split+i]) > 1e-9 {
				t.Errorf("d=%d: reconstructed %v, want %v", d, rec, xs[split:])
				break
			}
		}
	}
}

// Property: Integrate(Diff(xs, 1) tail, seed) reproduces the tail exactly.
func TestDiffIntegrateRoundTripProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.Abs(v) < 1e9 && !math.IsNaN(v) {
				xs = append(xs, v)
			}
		}
		if len(xs) < 3 {
			return true
		}
		diffs, err := Diff(xs, 1)
		if err != nil {
			return false
		}
		rec, err := Integrate(diffs, xs[:1])
		if err != nil {
			return false
		}
		for i := range rec {
			if math.Abs(rec[i]-xs[i+1]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLagMatrix(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	rows, ys, err := LagMatrix(xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || len(ys) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Row 0 should be [x1, x0] = [2, 1] with target x2 = 3.
	if rows[0][0] != 2 || rows[0][1] != 1 || ys[0] != 3 {
		t.Errorf("row0 = %v -> %v", rows[0], ys[0])
	}
	if rows[2][0] != 4 || rows[2][1] != 3 || ys[2] != 5 {
		t.Errorf("row2 = %v -> %v", rows[2], ys[2])
	}
	if _, _, err := LagMatrix(xs, 0); err == nil {
		t.Error("p=0 should error")
	}
	if _, _, err := LagMatrix(xs, 5); err == nil {
		t.Error("p=len should error")
	}
}

func TestACFPACF(t *testing.T) {
	// AR(1) with phi=0.8 has geometric ACF and single PACF spike.
	rng := rand.New(rand.NewPCG(5, 6))
	n := 5000
	xs := make([]float64, n)
	for i := 1; i < n; i++ {
		xs[i] = 0.8*xs[i-1] + rng.NormFloat64()
	}
	acf := ACF(xs, 3)
	if math.Abs(acf[0]-1) > 1e-12 {
		t.Errorf("ACF[0] = %v", acf[0])
	}
	if math.Abs(acf[1]-0.8) > 0.05 {
		t.Errorf("ACF[1] = %v, want ~0.8", acf[1])
	}
	pacf := PACF(xs, 5)
	if math.Abs(pacf[0]-0.8) > 0.05 {
		t.Errorf("PACF lag1 = %v, want ~0.8", pacf[0])
	}
	for lag := 2; lag <= 5; lag++ {
		if math.Abs(pacf[lag-1]) > 0.08 {
			t.Errorf("PACF lag%d = %v, want ~0", lag, pacf[lag-1])
		}
	}
	if got := ACF([]float64{1}, 5); len(got) != 1 {
		t.Errorf("short-series ACF = %v", got)
	}
	if got := PACF([]float64{1}, 5); got != nil {
		t.Errorf("short-series PACF = %v", got)
	}
}

func TestSplitFrac(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	train, test := SplitFrac(xs, 0.8)
	if len(train) != 8 || len(test) != 2 {
		t.Errorf("split = %d/%d, want 8/2", len(train), len(test))
	}
	train, test = SplitFrac(xs, -1)
	if len(train) != 0 || len(test) != 10 {
		t.Error("clamped low split wrong")
	}
	train, test = SplitFrac(xs, 2)
	if len(train) != 10 || len(test) != 0 {
		t.Error("clamped high split wrong")
	}
}

func TestScalerRoundTrip(t *testing.T) {
	xs := []float64{3, 6, 9, 12}
	s := FitScaler(xs)
	z := s.Transform(xs)
	for i, v := range z {
		if math.Abs(s.Invert(v)-xs[i]) > 1e-12 {
			t.Errorf("round trip failed at %d", i)
		}
	}
	// Standardized series has mean ~0, std ~1.
	var mean float64
	for _, v := range z {
		mean += v
	}
	mean /= float64(len(z))
	if math.Abs(mean) > 1e-12 {
		t.Errorf("standardized mean = %v", mean)
	}
	// Constant series: centered only, invert still round-trips.
	c := FitScaler([]float64{5, 5, 5})
	if got := c.Invert(c.Apply(5)); got != 5 {
		t.Errorf("constant scaler round trip = %v", got)
	}
}
