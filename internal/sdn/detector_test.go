package sdn

import (
	"testing"

	"repro/internal/astopo"
	"repro/internal/stats"
)

func TestNewEntropyDetectorValidation(t *testing.T) {
	if _, err := NewEntropyDetector(1, 0.5); err == nil {
		t.Error("window 1 should error")
	}
	if _, err := NewEntropyDetector(10, 0); err == nil {
		t.Error("threshold 0 should error")
	}
}

// feedBenign pushes uniform traffic over nASes source ASes.
func feedBenign(d *EntropyDetector, s *stats.Sampler, n, nASes int) (alarms int) {
	for i := 0; i < n; i++ {
		if d.Observe(astopo.AS(100 + s.IntN(nASes))) {
			alarms++
		}
	}
	return alarms
}

func TestEntropyDetectorDetectsConcentratedFlood(t *testing.T) {
	d, err := NewEntropyDetector(200, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	s := stats.NewSampler(81)
	// Benign warm-up over 16 ASes, then calibrate.
	feedBenign(d, s, 400, 16)
	d.CalibrateBaseline()
	base, ok := d.Baseline()
	if !ok {
		t.Fatal("baseline not set")
	}
	// Uniform over 16 ASes has ~4 bits of entropy.
	if base < 3.5 || base > 4.01 {
		t.Fatalf("baseline entropy = %v, want ~4", base)
	}
	// Continued benign traffic must not alarm.
	if alarms := feedBenign(d, s, 400, 16); alarms != 0 {
		t.Fatalf("benign traffic raised %d alarms", alarms)
	}
	// Botnet flood: 80% of connections from two home ASes.
	detectedAt := -1
	for i := 0; i < 400; i++ {
		var src astopo.AS
		if s.Float64() < 0.8 {
			src = astopo.AS(900 + s.IntN(2))
		} else {
			src = astopo.AS(100 + s.IntN(16))
		}
		if d.Observe(src) && detectedAt < 0 {
			detectedAt = i
		}
	}
	if detectedAt < 0 {
		t.Fatal("flood never detected")
	}
	// Detection should happen well within one window of flood onset.
	if detectedAt > 250 {
		t.Errorf("detected after %d flood connections, want earlier", detectedAt)
	}
}

func TestEntropyDetectorNoAlarmWithoutBaseline(t *testing.T) {
	d, err := NewEntropyDetector(50, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	s := stats.NewSampler(83)
	// Even wildly swinging traffic cannot alarm before a baseline exists.
	if alarms := feedBenign(d, s, 200, 2); alarms != 0 {
		t.Errorf("alarms without baseline: %d", alarms)
	}
}

func TestEntropyDetectorWindowEviction(t *testing.T) {
	d, err := NewEntropyDetector(4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Fill the window with one AS: entropy 0.
	for i := 0; i < 4; i++ {
		d.Observe(1)
	}
	if h := d.Entropy(); h != 0 {
		t.Fatalf("single-AS entropy = %v", h)
	}
	// Replace the window with 4 distinct ASes: entropy 2 bits, and the
	// old AS must have been fully evicted from the counts.
	for as := astopo.AS(10); as < 14; as++ {
		d.Observe(as)
	}
	if h := d.Entropy(); h != 2 {
		t.Fatalf("post-eviction entropy = %v, want 2", h)
	}
	if len(d.counts) != 4 {
		t.Errorf("counts hold %d ASes, want 4", len(d.counts))
	}
}
