package sdn

import (
	"testing"
	"time"

	"repro/internal/astopo"
)

func benignASes(n int) []astopo.AS {
	out := make([]astopo.AS, n)
	for i := range out {
		out[i] = astopo.AS(100 + i)
	}
	return out
}

func attackShares() []PredictedShare {
	return []PredictedShare{
		{AS: 900, Share: 0.6},
		{AS: 901, Share: 0.3},
		{AS: 902, Share: 0.1},
	}
}

func TestNewPipelineValidation(t *testing.T) {
	if _, err := NewPipeline(PipelineConfig{BenignASes: benignASes(4)}); err == nil {
		t.Error("missing prediction should error")
	}
	if _, err := NewPipeline(PipelineConfig{Predicted: attackShares()}); err == nil {
		t.Error("missing benign ASes should error")
	}
}

func TestPipelineDetectsAndMitigates(t *testing.T) {
	p, err := NewPipeline(PipelineConfig{
		Predicted:        attackShares(), // the model predicted the true sources
		BenignASes:       benignASes(16),
		ReconfigureDelay: 10 * time.Second,
		Seed:             7,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Replay(AttackProfile{
		Sources:  attackShares(),
		Rate:     100,
		Duration: 5 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected {
		t.Fatal("flood not detected")
	}
	if res.DetectionDelay > 30*time.Second {
		t.Errorf("detection took %v, want < 30s", res.DetectionDelay)
	}
	if res.MitigationAt < res.DetectionDelay {
		t.Errorf("mitigation at %v before detection %v", res.MitigationAt, res.DetectionDelay)
	}
	totalAttack := res.UnmitigatedConns + res.ScrubbedConns + res.LeakedConns
	if totalAttack != 100*300 {
		t.Fatalf("attack accounting off: %d", totalAttack)
	}
	// With accurate predictions, nearly all post-mitigation attack
	// traffic is scrubbed.
	post := res.ScrubbedConns + res.LeakedConns
	if post == 0 || float64(res.ScrubbedConns)/float64(post) < 0.95 {
		t.Errorf("scrub rate = %d/%d, want >= 95%%", res.ScrubbedConns, post)
	}
	// The unmitigated window is roughly detection + reconfiguration.
	maxUnmitigated := int((res.MitigationAt/time.Second + 2)) * 100
	if res.UnmitigatedConns > maxUnmitigated {
		t.Errorf("unmitigated = %d, bound %d", res.UnmitigatedConns, maxUnmitigated)
	}
	// Collateral stays modest: benign ASes are disjoint from rules here.
	if res.BenignDiverted != 0 {
		t.Errorf("benign diverted = %d, want 0 (disjoint rule set)", res.BenignDiverted)
	}
}

func TestPipelineWrongPredictionLeaks(t *testing.T) {
	// The model predicted entirely different sources: mitigation activates
	// but diverts nothing.
	wrong := []PredictedShare{{AS: 700, Share: 1}}
	p, err := NewPipeline(PipelineConfig{
		Predicted:        wrong,
		BenignASes:       benignASes(16),
		ReconfigureDelay: 10 * time.Second,
		Seed:             9,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Replay(AttackProfile{
		Sources:  attackShares(),
		Rate:     100,
		Duration: 3 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected {
		t.Fatal("flood should still be detected")
	}
	if res.ScrubbedConns != 0 {
		t.Errorf("wrong rules scrubbed %d connections", res.ScrubbedConns)
	}
	if res.LeakedConns == 0 {
		t.Error("everything should leak with wrong predictions")
	}
}

func TestPipelineQuietTrafficNoDetection(t *testing.T) {
	p, err := NewPipeline(PipelineConfig{
		Predicted:  attackShares(),
		BenignASes: benignASes(16),
		Seed:       11,
	})
	if err != nil {
		t.Fatal(err)
	}
	// An "attack" indistinguishable from benign traffic (same sources,
	// negligible rate) must not trip the detector.
	res, err := p.Replay(AttackProfile{
		Sources:  []PredictedShare{{AS: 100, Share: 0.5}, {AS: 101, Share: 0.5}},
		Rate:     1,
		Duration: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected {
		t.Error("benign-like trickle should not alarm")
	}
	if res.ScrubbedConns != 0 || res.MitigationAt != 0 {
		t.Error("no mitigation should have activated")
	}
}

func TestPipelineReplayValidation(t *testing.T) {
	p, err := NewPipeline(PipelineConfig{Predicted: attackShares(), BenignASes: benignASes(4), Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Replay(AttackProfile{}); err == nil {
		t.Error("empty profile should error")
	}
	if _, err := p.Replay(AttackProfile{Sources: attackShares(), Rate: 0, Duration: time.Minute}); err == nil {
		t.Error("zero rate should error")
	}
}

// Property: every attack connection is accounted exactly once, whatever
// the profile.
func TestPipelineConservationProperty(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		p, err := NewPipeline(PipelineConfig{
			Predicted:        attackShares(),
			BenignASes:       benignASes(8),
			ReconfigureDelay: 5 * time.Second,
			Seed:             seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		rate := 10 + int(seed)*37
		secs := 60 + int(seed)*30
		res, err := p.Replay(AttackProfile{
			Sources:  attackShares(),
			Rate:     rate,
			Duration: time.Duration(secs) * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		want := rate * secs
		got := res.UnmitigatedConns + res.ScrubbedConns + res.LeakedConns
		if got != want {
			t.Fatalf("seed %d: %d connections accounted, want %d", seed, got, want)
		}
		if res.BenignTotal != 20*secs {
			t.Fatalf("seed %d: benign total %d, want %d", seed, res.BenignTotal, 20*secs)
		}
	}
}
