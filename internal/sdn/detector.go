package sdn

import (
	"errors"

	"repro/internal/astopo"
	"repro/internal/stats"
)

// EntropyDetector implements the early-detection idea of §V-B: with the
// attacker source distribution predictable at the AS level, a monitor can
// watch the Shannon entropy of the source-AS distribution over the most
// recent connections and alarm when it deviates from the benign baseline —
// botnet floods concentrate traffic into the families' home ASes and pull
// the entropy down (or, for very dispersed botnets, push it up).
type EntropyDetector struct {
	window    int
	threshold float64
	baseline  float64
	hasBase   bool

	ring   []astopo.AS
	counts map[astopo.AS]int
	next   int
	filled bool
}

// NewEntropyDetector monitors the last window connections and alarms when
// the entropy deviates from the baseline by more than threshold bits.
func NewEntropyDetector(window int, threshold float64) (*EntropyDetector, error) {
	if window < 2 {
		return nil, errors.New("sdn: detector window must be >= 2")
	}
	if threshold <= 0 {
		return nil, errors.New("sdn: detector threshold must be positive")
	}
	return &EntropyDetector{
		window:    window,
		threshold: threshold,
		ring:      make([]astopo.AS, window),
		counts:    make(map[astopo.AS]int),
	}, nil
}

// SetBaseline fixes the benign reference entropy (bits). Typically the
// entropy of the traffic mix observed outside attack windows, or of the
// model's predicted benign distribution.
func (d *EntropyDetector) SetBaseline(bits float64) {
	d.baseline = bits
	d.hasBase = true
}

// CalibrateBaseline sets the baseline to the current window's entropy
// (call after feeding a representative stretch of benign traffic).
func (d *EntropyDetector) CalibrateBaseline() {
	d.SetBaseline(d.Entropy())
}

// Observe feeds one connection's source AS and reports whether the
// detector is alarming. Alarms require a full window and a baseline.
func (d *EntropyDetector) Observe(src astopo.AS) bool {
	if d.filled {
		old := d.ring[d.next]
		if d.counts[old] == 1 {
			delete(d.counts, old)
		} else {
			d.counts[old]--
		}
	}
	d.ring[d.next] = src
	d.counts[src]++
	d.next++
	if d.next == d.window {
		d.next = 0
		d.filled = true
	}
	if !d.filled || !d.hasBase {
		return false
	}
	dev := d.Entropy() - d.baseline
	if dev < 0 {
		dev = -dev
	}
	return dev > d.threshold
}

// Entropy returns the Shannon entropy (bits) of the current window's
// source-AS distribution.
func (d *EntropyDetector) Entropy() float64 {
	weights := make([]float64, 0, len(d.counts))
	for _, c := range d.counts {
		weights = append(weights, float64(c))
	}
	return stats.ShannonEntropy(weights)
}

// Baseline returns the configured baseline and whether one is set.
func (d *EntropyDetector) Baseline() (float64, bool) { return d.baseline, d.hasBase }
