// Package sdn implements the use-case substrate of §VII-B: a small
// software-defined-networking control plane that consumes the models'
// predictions. Figure 5(a) is reproduced by AS-based filtering — the
// controller installs classification rules for the predicted attack-source
// ASes so matching ingress traffic is diverted for scrubbing. Figure 5(b)
// is reproduced by middlebox traversal — the chain is reordered from
// load-balancer-first to firewall-first ahead of the predicted attack
// window.
package sdn

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/astopo"
)

// Action is what a rule does with matching traffic.
type Action int

// Rule actions.
const (
	// ActionForward sends traffic on the normal path.
	ActionForward Action = iota + 1
	// ActionDivert sends traffic through the scrubbing path for further
	// examination (Figure 5a's "different route path").
	ActionDivert
)

// Rule matches ingress traffic by source AS.
type Rule struct {
	SrcAS  astopo.AS
	Action Action
}

// Flow is one ingress traffic aggregate.
type Flow struct {
	SrcAS     astopo.AS
	DstIP     astopo.IPv4
	PPS       float64 // packets per second
	Malicious bool
}

// ErrTableFull is returned when a rule cannot be installed because the
// switch's classification table is at capacity.
var ErrTableFull = errors.New("sdn: rule table full")

// Controller is a minimal SDN control plane holding source-AS rules.
// The zero value forwards everything and has unbounded capacity.
type Controller struct {
	rules map[astopo.AS]Action
	// capacity bounds the rule table (0 = unbounded), modeling the
	// limited classification entries of real switching hardware.
	capacity int
}

// NewController returns an empty controller with unbounded rule capacity.
func NewController() *Controller {
	return &Controller{rules: make(map[astopo.AS]Action)}
}

// NewControllerWithCapacity returns a controller whose rule table holds at
// most n entries (n <= 0 means unbounded).
func NewControllerWithCapacity(n int) *Controller {
	c := NewController()
	if n > 0 {
		c.capacity = n
	}
	return c
}

// Install sets the action for a source AS, replacing any previous rule.
// It returns ErrTableFull when a new entry would exceed capacity
// (replacements always succeed).
func (c *Controller) Install(r Rule) error {
	if c.rules == nil {
		c.rules = make(map[astopo.AS]Action)
	}
	if _, exists := c.rules[r.SrcAS]; !exists && c.capacity > 0 && len(c.rules) >= c.capacity {
		return ErrTableFull
	}
	c.rules[r.SrcAS] = r.Action
	return nil
}

// Clear removes all rules.
func (c *Controller) Clear() {
	c.rules = make(map[astopo.AS]Action)
}

// RuleCount returns the number of installed rules.
func (c *Controller) RuleCount() int { return len(c.rules) }

// Classify returns the action for a flow (ActionForward when no rule
// matches).
func (c *Controller) Classify(f *Flow) Action {
	if a, ok := c.rules[f.SrcAS]; ok {
		return a
	}
	return ActionForward
}

// PredictedShare is a predicted attack-source AS with its traffic share.
type PredictedShare struct {
	AS    astopo.AS
	Share float64
}

// InstallFilteringRules installs divert rules for the smallest set of
// predicted source ASes whose cumulative predicted share reaches coverage
// (0 < coverage <= 1). It returns the number of rules installed.
func (c *Controller) InstallFilteringRules(pred []PredictedShare, coverage float64) (int, error) {
	if coverage <= 0 || coverage > 1 {
		return 0, errors.New("sdn: coverage must be in (0, 1]")
	}
	sorted := make([]PredictedShare, len(pred))
	copy(sorted, pred)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Share != sorted[j].Share {
			return sorted[i].Share > sorted[j].Share
		}
		return sorted[i].AS < sorted[j].AS
	})
	var cum float64
	n := 0
	for _, p := range sorted {
		if cum >= coverage {
			break
		}
		if p.Share <= 0 {
			continue
		}
		if err := c.Install(Rule{SrcAS: p.AS, Action: ActionDivert}); err != nil {
			// Capacity reached: report how far coverage got.
			return n, fmt.Errorf("sdn: coverage %.2f reached only %.2f: %w", coverage, cum, err)
		}
		cum += p.Share
		n++
	}
	return n, nil
}

// FilterMetrics summarizes one filtering evaluation.
type FilterMetrics struct {
	// Recall is the fraction of malicious traffic (by packets) diverted.
	Recall float64
	// Collateral is the fraction of benign traffic diverted.
	Collateral float64
	// Rules is the number of rules it took.
	Rules int
}

// EvaluateFiltering classifies the flows and measures diverted malicious
// and benign packet fractions.
func (c *Controller) EvaluateFiltering(flows []Flow) FilterMetrics {
	var malTotal, malDiverted, benTotal, benDiverted float64
	for i := range flows {
		f := &flows[i]
		diverted := c.Classify(f) == ActionDivert
		if f.Malicious {
			malTotal += f.PPS
			if diverted {
				malDiverted += f.PPS
			}
		} else {
			benTotal += f.PPS
			if diverted {
				benDiverted += f.PPS
			}
		}
	}
	m := FilterMetrics{Rules: c.RuleCount()}
	if malTotal > 0 {
		m.Recall = malDiverted / malTotal
	}
	if benTotal > 0 {
		m.Collateral = benDiverted / benTotal
	}
	return m
}

// MiddleboxKind identifies a middlebox in the chain.
type MiddleboxKind string

// The two middleboxes of Figure 5(b).
const (
	LoadBalancer MiddleboxKind = "load-balancer"
	Firewall     MiddleboxKind = "firewall"
)

// Chain is an ordered middlebox traversal. In normal operation traffic
// crosses the load balancer first for throughput; under attack the
// firewall must come first so packets cannot be modified to evade
// detection (§VII-B2).
type Chain struct {
	Order []MiddleboxKind
	// ReconfigureDelay is how long a reordering takes to apply.
	ReconfigureDelay time.Duration

	pendingAt    time.Time
	pendingOrder []MiddleboxKind
	pending      bool
	now          time.Time
}

// NewChain returns the normal-operation chain (LB before FW).
func NewChain(reconfigureDelay time.Duration) *Chain {
	return &Chain{
		Order:            []MiddleboxKind{LoadBalancer, Firewall},
		ReconfigureDelay: reconfigureDelay,
	}
}

// FirewallFirst reports whether the chain currently scrubs before
// balancing.
func (ch *Chain) FirewallFirst() bool {
	return len(ch.Order) > 0 && ch.Order[0] == Firewall
}

// RequestReorder schedules a reordering to the given order at time t; it
// completes ReconfigureDelay later. A pending reorder is replaced.
func (ch *Chain) RequestReorder(t time.Time, order []MiddleboxKind) {
	ch.pendingAt = t.Add(ch.ReconfigureDelay)
	ch.pendingOrder = append([]MiddleboxKind(nil), order...)
	ch.pending = true
}

// AdvanceTo moves simulated time forward, applying a pending reorder when
// its completion time passes.
func (ch *Chain) AdvanceTo(t time.Time) {
	ch.now = t
	if ch.pending && !t.Before(ch.pendingAt) {
		ch.Order = ch.pendingOrder
		ch.pending = false
	}
}

// String renders the traversal order.
func (ch *Chain) String() string {
	parts := make([]string, len(ch.Order))
	for i, m := range ch.Order {
		parts[i] = string(m)
	}
	return fmt.Sprintf("[%v]", parts)
}
