package sdn

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/astopo"
)

func TestControllerClassify(t *testing.T) {
	c := NewController()
	if got := c.Classify(&Flow{SrcAS: 1}); got != ActionForward {
		t.Errorf("empty controller should forward, got %v", got)
	}
	c.Install(Rule{SrcAS: 1, Action: ActionDivert})
	if got := c.Classify(&Flow{SrcAS: 1}); got != ActionDivert {
		t.Error("installed rule should divert")
	}
	if got := c.Classify(&Flow{SrcAS: 2}); got != ActionForward {
		t.Error("unmatched flow should forward")
	}
	if c.RuleCount() != 1 {
		t.Errorf("RuleCount = %d", c.RuleCount())
	}
	c.Clear()
	if c.RuleCount() != 0 || c.Classify(&Flow{SrcAS: 1}) != ActionForward {
		t.Error("Clear should remove rules")
	}
	// Zero value is usable.
	var zero Controller
	if zero.Classify(&Flow{SrcAS: 1}) != ActionForward {
		t.Error("zero-value controller should forward")
	}
	zero.Install(Rule{SrcAS: 3, Action: ActionDivert})
	if zero.Classify(&Flow{SrcAS: 3}) != ActionDivert {
		t.Error("zero-value controller should accept installs")
	}
}

func TestInstallFilteringRulesCoverage(t *testing.T) {
	c := NewController()
	pred := []PredictedShare{
		{AS: 1, Share: 0.5},
		{AS: 2, Share: 0.3},
		{AS: 3, Share: 0.15},
		{AS: 4, Share: 0.05},
	}
	n, err := c.InstallFilteringRules(pred, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	// 0.5 + 0.3 = 0.8 reaches coverage with two rules.
	if n != 2 {
		t.Errorf("rules = %d, want 2", n)
	}
	if c.Classify(&Flow{SrcAS: 3}) != ActionForward {
		t.Error("AS 3 should not be filtered at 0.8 coverage")
	}
	// Full coverage takes all four (positive-share) rules.
	c2 := NewController()
	n, err = c2.InstallFilteringRules(pred, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("full coverage rules = %d, want 4", n)
	}
	// Zero/negative shares are skipped.
	c3 := NewController()
	n, _ = c3.InstallFilteringRules([]PredictedShare{{AS: 1, Share: 0}}, 0.9)
	if n != 0 {
		t.Errorf("zero-share rules = %d", n)
	}
	if _, err := c3.InstallFilteringRules(pred, 0); err == nil {
		t.Error("coverage 0 should error")
	}
	if _, err := c3.InstallFilteringRules(pred, 1.5); err == nil {
		t.Error("coverage > 1 should error")
	}
}

func TestEvaluateFiltering(t *testing.T) {
	c := NewController()
	c.Install(Rule{SrcAS: 1, Action: ActionDivert})
	flows := []Flow{
		{SrcAS: 1, PPS: 100, Malicious: true},
		{SrcAS: 2, PPS: 100, Malicious: true},
		{SrcAS: 1, PPS: 50},
		{SrcAS: 3, PPS: 150},
	}
	m := c.EvaluateFiltering(flows)
	if math.Abs(m.Recall-0.5) > 1e-12 {
		t.Errorf("recall = %v, want 0.5", m.Recall)
	}
	if math.Abs(m.Collateral-0.25) > 1e-12 {
		t.Errorf("collateral = %v, want 0.25", m.Collateral)
	}
	if m.Rules != 1 {
		t.Errorf("rules = %d", m.Rules)
	}
	// No traffic at all.
	empty := c.EvaluateFiltering(nil)
	if empty.Recall != 0 || empty.Collateral != 0 {
		t.Error("empty evaluation should be zero")
	}
}

func TestChainReorder(t *testing.T) {
	base := time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC)
	ch := NewChain(30 * time.Second)
	if ch.FirewallFirst() {
		t.Error("normal chain should be LB first")
	}
	ch.RequestReorder(base, []MiddleboxKind{Firewall, LoadBalancer})
	ch.AdvanceTo(base.Add(10 * time.Second))
	if ch.FirewallFirst() {
		t.Error("reorder should not complete before the delay")
	}
	ch.AdvanceTo(base.Add(30 * time.Second))
	if !ch.FirewallFirst() {
		t.Error("reorder should complete at the delay")
	}
	if got := ch.String(); got != "[[firewall load-balancer]]" {
		t.Errorf("String = %q", got)
	}
}

func TestChainPendingReplaced(t *testing.T) {
	base := time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC)
	ch := NewChain(time.Minute)
	ch.RequestReorder(base, []MiddleboxKind{Firewall, LoadBalancer})
	// Replace with a later request back to normal order.
	ch.RequestReorder(base.Add(time.Hour), []MiddleboxKind{LoadBalancer, Firewall})
	ch.AdvanceTo(base.Add(2 * time.Minute))
	if ch.FirewallFirst() {
		t.Error("replaced request should not have applied the first order")
	}
	ch.AdvanceTo(base.Add(2 * time.Hour))
	if ch.FirewallFirst() {
		t.Error("final order should be LB first")
	}
}

func TestControllerCapacity(t *testing.T) {
	c := NewControllerWithCapacity(2)
	if err := c.Install(Rule{SrcAS: 1, Action: ActionDivert}); err != nil {
		t.Fatal(err)
	}
	if err := c.Install(Rule{SrcAS: 2, Action: ActionDivert}); err != nil {
		t.Fatal(err)
	}
	if err := c.Install(Rule{SrcAS: 3, Action: ActionDivert}); err == nil {
		t.Error("third rule should hit capacity")
	}
	// Replacing an existing rule always succeeds.
	if err := c.Install(Rule{SrcAS: 1, Action: ActionForward}); err != nil {
		t.Errorf("replacement should succeed: %v", err)
	}
	if c.RuleCount() != 2 {
		t.Errorf("rules = %d, want 2", c.RuleCount())
	}
	// Unbounded constructor ignores nonpositive capacity.
	u := NewControllerWithCapacity(0)
	for i := 0; i < 100; i++ {
		if err := u.Install(Rule{SrcAS: astopo.AS(i), Action: ActionDivert}); err != nil {
			t.Fatalf("unbounded install failed at %d: %v", i, err)
		}
	}
}

func TestInstallFilteringRulesCapacityExhausted(t *testing.T) {
	c := NewControllerWithCapacity(1)
	pred := []PredictedShare{
		{AS: 1, Share: 0.4},
		{AS: 2, Share: 0.4},
		{AS: 3, Share: 0.2},
	}
	n, err := c.InstallFilteringRules(pred, 0.9)
	if err == nil {
		t.Fatal("capacity exhaustion should surface as an error")
	}
	if !errors.Is(err, ErrTableFull) {
		t.Errorf("error should wrap ErrTableFull: %v", err)
	}
	if n != 1 {
		t.Errorf("partial install = %d rules, want 1", n)
	}
	// The installed rule still filters its AS.
	if c.Classify(&Flow{SrcAS: 1}) != ActionDivert {
		t.Error("partial rule set should still be active")
	}
}
