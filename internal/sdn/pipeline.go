package sdn

import (
	"errors"
	"time"

	"repro/internal/astopo"
	"repro/internal/stats"
)

// Pipeline composes the §VII-B building blocks into a victim network's
// full defense loop: benign and attack connections arrive second by
// second; the entropy detector watches the source-AS mix; on its first
// alarm the controller installs divert rules from the model's predicted
// source distribution (after the SDN reconfiguration delay); from then on
// matching traffic is scrubbed. The replay quantifies time-to-detection
// and the attack volume that got through — the end-to-end benefit the
// paper claims for prediction-driven defenses.
type Pipeline struct {
	cfg        PipelineConfig
	detector   *EntropyDetector
	controller *Controller
	sampler    *stats.Sampler
}

// PipelineConfig assembles a defense pipeline.
type PipelineConfig struct {
	// DetectorWindow / DetectorThreshold configure the entropy detector
	// (defaults 300 connections, 0.8 bits).
	DetectorWindow    int
	DetectorThreshold float64
	// Coverage is the predicted-share mass the filter rules must cover
	// (default 0.9).
	Coverage float64
	// ReconfigureDelay is how long rule installation takes (default 30s).
	ReconfigureDelay time.Duration
	// Predicted is the model's attack-source distribution; rules are
	// installed from it at alarm time. Required.
	Predicted []PredictedShare
	// BenignASes are the background traffic sources. Required (>= 2).
	BenignASes []astopo.AS
	// BenignRate is benign connections per second (default 20).
	BenignRate int
	// Seed drives the replay's randomness.
	Seed uint64
}

func (c PipelineConfig) withDefaults() PipelineConfig {
	if c.DetectorWindow < 2 {
		c.DetectorWindow = 300
	}
	if c.DetectorThreshold <= 0 {
		c.DetectorThreshold = 0.8
	}
	if c.Coverage <= 0 || c.Coverage > 1 {
		c.Coverage = 0.9
	}
	if c.ReconfigureDelay <= 0 {
		c.ReconfigureDelay = 30 * time.Second
	}
	if c.BenignRate < 1 {
		c.BenignRate = 20
	}
	return c
}

// NewPipeline validates the configuration and warms the detector on
// benign-only traffic, calibrating its baseline.
func NewPipeline(cfg PipelineConfig) (*Pipeline, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Predicted) == 0 {
		return nil, errors.New("sdn: pipeline needs a predicted source distribution")
	}
	if len(cfg.BenignASes) < 2 {
		return nil, errors.New("sdn: pipeline needs at least 2 benign source ASes")
	}
	det, err := NewEntropyDetector(cfg.DetectorWindow, cfg.DetectorThreshold)
	if err != nil {
		return nil, err
	}
	p := &Pipeline{
		cfg:        cfg,
		detector:   det,
		controller: NewController(),
		sampler:    stats.NewSampler(cfg.Seed + 0x9d),
	}
	// Warm-up: two windows of benign traffic, then calibrate.
	for i := 0; i < 2*cfg.DetectorWindow; i++ {
		det.Observe(p.benignSource())
	}
	det.CalibrateBaseline()
	return p, nil
}

func (p *Pipeline) benignSource() astopo.AS {
	return p.cfg.BenignASes[p.sampler.IntN(len(p.cfg.BenignASes))]
}

// AttackProfile describes the replayed flood.
type AttackProfile struct {
	// Sources is the actual attack-source distribution (which the models
	// predicted with some error).
	Sources []PredictedShare
	// Rate is attack connections per second.
	Rate int
	// Duration is the flood length.
	Duration time.Duration
}

// PipelineResult summarizes one replay.
type PipelineResult struct {
	// Detected reports whether the detector alarmed during the flood, and
	// DetectionDelay how long after onset.
	Detected       bool
	DetectionDelay time.Duration
	// MitigationAt is when divert rules became active (detection +
	// reconfiguration).
	MitigationAt time.Duration
	// UnmitigatedConns is the number of attack connections that reached
	// the victim before mitigation was active; LeakedConns those that
	// slipped past the rules afterwards; ScrubbedConns those diverted.
	UnmitigatedConns int
	LeakedConns      int
	ScrubbedConns    int
	// BenignDiverted counts benign connections sent to scrubbing after
	// mitigation (the collateral).
	BenignDiverted int
	BenignTotal    int
}

// Replay runs the flood through the pipeline at one-second granularity.
func (p *Pipeline) Replay(attack AttackProfile) (*PipelineResult, error) {
	if attack.Rate < 1 || attack.Duration <= 0 || len(attack.Sources) == 0 {
		return nil, errors.New("sdn: invalid attack profile")
	}
	cum := make([]float64, len(attack.Sources))
	var total float64
	for i, s := range attack.Sources {
		total += s.Share
		cum[i] = total
	}
	drawAttacker := func() astopo.AS {
		u := p.sampler.Float64() * total
		for i, c := range cum {
			if u <= c {
				return attack.Sources[i].AS
			}
		}
		return attack.Sources[len(attack.Sources)-1].AS
	}

	res := &PipelineResult{}
	seconds := int(attack.Duration / time.Second)
	mitigationSecond := -1
	detectedSecond := -1
	for sec := 0; sec < seconds; sec++ {
		if detectedSecond >= 0 && mitigationSecond < 0 {
			// Reconfiguration countdown.
			if sec >= detectedSecond+int(p.cfg.ReconfigureDelay/time.Second) {
				if _, err := p.controller.InstallFilteringRules(p.cfg.Predicted, p.cfg.Coverage); err != nil {
					return nil, err
				}
				mitigationSecond = sec
			}
		}
		// Interleave benign and attack connections within the second.
		for k := 0; k < p.cfg.BenignRate; k++ {
			src := p.benignSource()
			p.detector.Observe(src)
			res.BenignTotal++
			if mitigationSecond >= 0 && p.controller.Classify(&Flow{SrcAS: src}) == ActionDivert {
				res.BenignDiverted++
			}
		}
		for k := 0; k < attack.Rate; k++ {
			src := drawAttacker()
			if p.detector.Observe(src) && detectedSecond < 0 {
				detectedSecond = sec
			}
			switch {
			case mitigationSecond < 0:
				res.UnmitigatedConns++
			case p.controller.Classify(&Flow{SrcAS: src}) == ActionDivert:
				res.ScrubbedConns++
			default:
				res.LeakedConns++
			}
		}
	}
	if detectedSecond >= 0 {
		res.Detected = true
		res.DetectionDelay = time.Duration(detectedSecond) * time.Second
	}
	if mitigationSecond >= 0 {
		res.MitigationAt = time.Duration(mitigationSecond) * time.Second
	}
	return res, nil
}
