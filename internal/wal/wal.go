// Package wal is the daemon's write-ahead log: a directory of
// fixed-capacity segment files holding length+CRC32C-framed records, so
// every ingest ddosd acknowledges survives a crash and replays into the
// state store on the next boot (DESIGN.md §10). The design follows the
// classic segmented-log shape:
//
//   - Appends go to a single active segment; when it fills, the segment is
//     sealed (synced, closed) and a new one opens. Sealed segments are
//     immutable.
//   - Each record is framed as [length uint32 LE][crc32c uint32 LE][payload],
//     and each segment starts with an 8-byte magic header. A frame is valid
//     only if it is complete and its checksum matches, so a crash mid-write
//     can only ever produce a detectable torn tail — never a silently
//     half-applied record.
//   - Replay walks the sealed segments in sequence order and stops cleanly
//     at the first torn or corrupt frame: everything acked before the tear
//     is delivered, the tear itself is reported, and nothing after it is
//     trusted.
//   - Compact removes sealed segments once a checkpoint of the replayed
//     state covers them (serve.Service.CheckpointWAL).
//
// Durability is tunable per deployment with SyncPolicy: fsync on every
// append (ack == on disk), on a background interval (bounded loss window,
// much cheaper), or never (page cache only; survives process death but not
// power loss).
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

const (
	// segmentSuffix names segment files: <seq as %016x>.wal.
	segmentSuffix = ".wal"
	// frameHeaderLen is the per-record framing overhead.
	frameHeaderLen = 8
	// MaxRecordBytes caps one record's payload. A decoded length above the
	// cap marks the frame corrupt instead of attempting the allocation.
	MaxRecordBytes = 16 << 20
	// DefaultSegmentBytes is the segment-rotation threshold when
	// Options.SegmentBytes is zero.
	DefaultSegmentBytes = 16 << 20
)

// segmentMagic opens every segment file; a file that does not start with
// it is treated as corrupt from offset zero.
var segmentMagic = []byte("ddoswal1")

// castagnoli is the CRC32C table (the polynomial with hardware support on
// both amd64 and arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed WAL.
var ErrClosed = errors.New("wal: closed")

// SyncMode selects when appends reach stable storage.
type SyncMode int

const (
	// SyncAlways fsyncs before Append returns: an acked record is on disk.
	SyncAlways SyncMode = iota
	// SyncInterval batches fsyncs on a background timer: at most one
	// interval of acked records can be lost to a power failure.
	SyncInterval
	// SyncNever leaves flushing to the OS: records survive a process
	// crash (the kernel holds the writes) but not a machine crash.
	SyncNever
)

// SyncPolicy is a SyncMode plus the batching interval for SyncInterval.
type SyncPolicy struct {
	Mode     SyncMode
	Interval time.Duration
}

// ParseSyncPolicy reads the -wal-fsync flag forms: "always", "never", or
// a positive Go duration such as "100ms" for interval batching.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always":
		return SyncPolicy{Mode: SyncAlways}, nil
	case "never":
		return SyncPolicy{Mode: SyncNever}, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return SyncPolicy{}, fmt.Errorf("wal: bad sync policy %q (want always, never, or a positive duration)", s)
	}
	return SyncPolicy{Mode: SyncInterval, Interval: d}, nil
}

// String renders the policy in the same form ParseSyncPolicy accepts.
func (p SyncPolicy) String() string {
	switch p.Mode {
	case SyncInterval:
		return p.Interval.String()
	case SyncNever:
		return "never"
	default:
		return "always"
	}
}

// Options configures Open.
type Options struct {
	// Dir holds the segment files; created if missing.
	Dir string
	// SegmentBytes rotates the active segment once it reaches this size.
	// Default DefaultSegmentBytes.
	SegmentBytes int64
	// Sync is the durability policy. The zero value is SyncAlways.
	Sync SyncPolicy
}

// Stats is a point-in-time summary of the log (the ddosd_wal_* gauges).
type Stats struct {
	ActiveSeq      uint64 // sequence number of the append segment
	ActiveBytes    int64  // bytes in the append segment (incl. header)
	SealedSegments int    // immutable segments awaiting compaction
	SealedBytes    int64  // bytes across sealed segments
	Appends        uint64 // records appended over this WAL's lifetime
	AppendedBytes  uint64 // frame bytes appended over this WAL's lifetime
}

// TotalSegments is the segment-file count on disk: sealed plus the one
// active append segment.
func (s Stats) TotalSegments() int { return s.SealedSegments + 1 }

// DiskBytes is the log's total on-disk footprint: sealed segments plus
// the active append segment.
func (s Stats) DiskBytes() int64 { return s.SealedBytes + s.ActiveBytes }

// ReplayResult summarizes one Replay pass.
type ReplayResult struct {
	Segments     int    // sealed segments visited
	Records      int    // frames delivered to the callback
	Truncated    bool   // a torn/corrupt frame stopped the replay early
	TruncatedSeq uint64 // segment holding the bad frame (when Truncated)
	TruncatedOff int64  // byte offset of the bad frame (when Truncated)
}

// WAL is a segmented append-only log. All methods are safe for concurrent
// use.
type WAL struct {
	opts Options

	mu            sync.Mutex
	f             *os.File
	activeSeq     uint64
	activeBytes   int64
	sealed        map[uint64]int64 // seq -> file size
	appends       uint64
	appendedBytes uint64
	dirty         bool // unsynced appends (SyncInterval)
	closed        bool
	frame         []byte // reusable frame buffer

	syncStop chan struct{}
	syncDone chan struct{}
}

// Open creates Dir if needed, catalogs the existing segments as sealed,
// and starts a fresh active segment after the highest existing sequence —
// a possibly-torn tail from a crashed process is never appended to, only
// replayed. The previous run's segments stay on disk until Compact.
func Open(opts Options) (*WAL, error) {
	if opts.Dir == "" {
		return nil, errors.New("wal: Options.Dir is required")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.SegmentBytes < int64(len(segmentMagic))+frameHeaderLen {
		opts.SegmentBytes = int64(len(segmentMagic)) + frameHeaderLen
	}
	if opts.Sync.Mode == SyncInterval && opts.Sync.Interval <= 0 {
		return nil, errors.New("wal: SyncInterval needs a positive interval")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	w := &WAL{opts: opts, sealed: make(map[uint64]int64)}
	entries, err := os.ReadDir(opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var maxSeq uint64
	for _, e := range entries {
		seq, ok := parseSegmentName(e.Name())
		if !ok {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		w.sealed[seq] = info.Size()
		if seq > maxSeq {
			maxSeq = seq
		}
	}
	w.activeSeq = maxSeq + 1
	if err := w.openActiveLocked(); err != nil {
		return nil, err
	}
	if opts.Sync.Mode == SyncInterval {
		w.syncStop = make(chan struct{})
		w.syncDone = make(chan struct{})
		go w.syncLoop()
	}
	return w, nil
}

// Dir returns the segment directory.
func (w *WAL) Dir() string { return w.opts.Dir }

func segmentName(seq uint64) string {
	return fmt.Sprintf("%016x%s", seq, segmentSuffix)
}

func parseSegmentName(name string) (uint64, bool) {
	base, ok := strings.CutSuffix(name, segmentSuffix)
	if !ok || len(base) != 16 {
		return 0, false
	}
	seq, err := strconv.ParseUint(base, 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

func (w *WAL) segmentPath(seq uint64) string {
	return filepath.Join(w.opts.Dir, segmentName(seq))
}

// openActiveLocked creates the active segment file and writes its header.
func (w *WAL) openActiveLocked() error {
	f, err := os.OpenFile(w.segmentPath(w.activeSeq), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write(segmentMagic); err != nil {
		f.Close()
		return fmt.Errorf("wal: segment header: %w", err)
	}
	w.f = f
	w.activeBytes = int64(len(segmentMagic))
	// Make the new file name durable before anything depends on it.
	syncDir(w.opts.Dir)
	return nil
}

// Append frames payload and writes it to the active segment, rotating
// first if the segment is full. Under SyncAlways the record is on disk
// when Append returns — this is the call the ingest path makes before the
// HTTP ack.
func (w *WAL) Append(payload []byte) error {
	if len(payload) > MaxRecordBytes {
		return fmt.Errorf("wal: record %d bytes over cap %d", len(payload), MaxRecordBytes)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	need := int64(frameHeaderLen + len(payload))
	if w.activeBytes > int64(len(segmentMagic)) && w.activeBytes+need > w.opts.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			return err
		}
	}
	w.frame = w.frame[:0]
	w.frame = binary.LittleEndian.AppendUint32(w.frame, uint32(len(payload)))
	w.frame = binary.LittleEndian.AppendUint32(w.frame, crc32.Checksum(payload, castagnoli))
	w.frame = append(w.frame, payload...)
	if _, err := w.f.Write(w.frame); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	w.activeBytes += need
	w.appends++
	w.appendedBytes += uint64(need)
	switch w.opts.Sync.Mode {
	case SyncAlways:
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync: %w", err)
		}
	case SyncInterval:
		w.dirty = true
	}
	return nil
}

// AppendBatch frames every payload into the active segment under a
// single lock acquisition, buffering the frames into one write (per
// rotation-delimited run) and — under SyncAlways — paying one fsync for
// the whole batch instead of one per record. This is the durability
// amortization behind the binary batch ingest path: a 64-record batch
// costs the same number of fsyncs as a 1-record one. Rotation between
// frames is handled exactly as in Append; counters advance only for
// frames that reached the file.
func (w *WAL) AppendBatch(payloads [][]byte) error {
	if len(payloads) == 0 {
		return nil
	}
	for _, p := range payloads {
		if len(p) > MaxRecordBytes {
			return fmt.Errorf("wal: record %d bytes over cap %d", len(p), MaxRecordBytes)
		}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	w.frame = w.frame[:0]
	pending := uint64(0)
	flush := func() error {
		if len(w.frame) == 0 {
			return nil
		}
		if _, err := w.f.Write(w.frame); err != nil {
			return fmt.Errorf("wal: append: %w", err)
		}
		w.activeBytes += int64(len(w.frame))
		w.appends += pending
		w.appendedBytes += uint64(len(w.frame))
		pending = 0
		w.frame = w.frame[:0]
		return nil
	}
	for _, p := range payloads {
		need := int64(frameHeaderLen + len(p))
		filled := w.activeBytes + int64(len(w.frame))
		if filled > int64(len(segmentMagic)) && filled+need > w.opts.SegmentBytes {
			if err := flush(); err != nil {
				return err
			}
			if err := w.rotateLocked(); err != nil {
				return err
			}
		}
		w.frame = binary.LittleEndian.AppendUint32(w.frame, uint32(len(p)))
		w.frame = binary.LittleEndian.AppendUint32(w.frame, crc32.Checksum(p, castagnoli))
		w.frame = append(w.frame, p...)
		pending++
	}
	if err := flush(); err != nil {
		return err
	}
	switch w.opts.Sync.Mode {
	case SyncAlways:
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync: %w", err)
		}
	case SyncInterval:
		w.dirty = true
	}
	return nil
}

// Sync flushes the active segment to stable storage.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	w.dirty = false
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	return nil
}

func (w *WAL) syncLoop() {
	defer close(w.syncDone)
	t := time.NewTicker(w.opts.Sync.Interval)
	defer t.Stop()
	for {
		select {
		case <-w.syncStop:
			return
		case <-t.C:
			w.mu.Lock()
			if !w.closed && w.dirty {
				w.dirty = false
				_ = w.f.Sync()
			}
			w.mu.Unlock()
		}
	}
}

// rotateLocked seals the active segment and opens the next one.
func (w *WAL) rotateLocked() error {
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: seal sync: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("wal: seal close: %w", err)
	}
	w.dirty = false
	w.sealed[w.activeSeq] = w.activeBytes
	w.activeSeq++
	return w.openActiveLocked()
}

// Rotate seals the active segment (if it holds any records) and returns
// the highest sealed sequence — everything at or below it is immutable on
// disk, the checkpoint cut line. An empty active segment is kept, so
// back-to-back checkpoints do not churn files.
func (w *WAL) Rotate() (sealedUpTo uint64, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	if w.activeBytes > int64(len(segmentMagic)) {
		if err := w.rotateLocked(); err != nil {
			return 0, err
		}
	}
	return w.activeSeq - 1, nil
}

// Compact removes sealed segments with sequence ≤ upTo (the segments a
// durable checkpoint covers). The active segment is never touched.
func (w *WAL) Compact(upTo uint64) (removed int, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	for seq := range w.sealed {
		if seq > upTo {
			continue
		}
		if err := os.Remove(w.segmentPath(seq)); err != nil && !os.IsNotExist(err) {
			return removed, fmt.Errorf("wal: compact: %w", err)
		}
		delete(w.sealed, seq)
		removed++
	}
	if removed > 0 {
		syncDir(w.opts.Dir)
	}
	return removed, nil
}

// Replay streams every record of the sealed segments, oldest first, to fn
// along with the segment sequence it came from. Replay stops cleanly at
// the first torn or corrupt frame: the result reports where, records
// before the tear are all delivered, and no error is returned for the
// tear itself — only fn's own error (which aborts the walk) or an I/O
// error surfaces. The active segment (created by this Open) is not read.
func (w *WAL) Replay(fn func(seq uint64, payload []byte) error) (ReplayResult, error) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ReplayResult{}, ErrClosed
	}
	seqs := make([]uint64, 0, len(w.sealed))
	for seq := range w.sealed {
		seqs = append(seqs, seq)
	}
	w.mu.Unlock()
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })

	var res ReplayResult
	for _, seq := range seqs {
		f, err := os.Open(w.segmentPath(seq))
		if err != nil {
			return res, fmt.Errorf("wal: replay: %w", err)
		}
		n, off, clean, err := ScanSegment(f, func(payload []byte) error {
			return fn(seq, payload)
		})
		f.Close()
		res.Segments++
		res.Records += n
		if err != nil {
			return res, err
		}
		if !clean {
			res.Truncated = true
			res.TruncatedSeq = seq
			res.TruncatedOff = off
			return res, nil
		}
	}
	return res, nil
}

// ScanSegment decodes one segment stream: the magic header, then frames
// until EOF. It returns the number of valid frames delivered, the byte
// offset scanning stopped at, and clean=true when the segment ended
// exactly on a frame boundary. clean=false — a torn tail, a checksum
// mismatch, an implausible length, or a bad header — is an expected
// crash artifact, not an error; only fn's error or a non-EOF read error
// is returned. Exposed for the fuzz harness.
func ScanSegment(r io.Reader, fn func(payload []byte) error) (records int, off int64, clean bool, err error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, len(segmentMagic))
	n, err := io.ReadFull(br, head)
	off = int64(n)
	if err != nil || !hasMagic(head) {
		if err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, off, false, fmt.Errorf("wal: read segment header: %w", err)
		}
		// Short or wrong header: corrupt from the start.
		return 0, 0, false, nil
	}
	var hdr [frameHeaderLen]byte
	var payload []byte
	for {
		_, err := io.ReadFull(br, hdr[:])
		if errors.Is(err, io.EOF) {
			return records, off, true, nil // frame boundary: clean end
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return records, off, false, nil // torn frame header
		}
		if err != nil {
			return records, off, false, fmt.Errorf("wal: read frame: %w", err)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length > MaxRecordBytes {
			return records, off, false, nil // implausible length: corrupt
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(br, payload); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return records, off, false, nil // torn payload
			}
			return records, off, false, fmt.Errorf("wal: read frame: %w", err)
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			return records, off, false, nil // bit rot or mid-frame tear
		}
		if err := fn(payload); err != nil {
			return records, off, false, err
		}
		records++
		off += frameHeaderLen + int64(length)
	}
}

func hasMagic(b []byte) bool {
	if len(b) != len(segmentMagic) {
		return false
	}
	for i := range b {
		if b[i] != segmentMagic[i] {
			return false
		}
	}
	return true
}

// Stats returns current counters and sizes.
func (w *WAL) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	s := Stats{
		ActiveSeq:      w.activeSeq,
		ActiveBytes:    w.activeBytes,
		SealedSegments: len(w.sealed),
		Appends:        w.appends,
		AppendedBytes:  w.appendedBytes,
	}
	for _, size := range w.sealed {
		s.SealedBytes += size
	}
	return s
}

// Close syncs and closes the active segment. Further operations return
// ErrClosed. Close is idempotent.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	syncErr := w.f.Sync()
	closeErr := w.f.Close()
	w.mu.Unlock()
	if w.syncStop != nil {
		close(w.syncStop)
		<-w.syncDone
	}
	if syncErr != nil {
		return fmt.Errorf("wal: close: %w", syncErr)
	}
	if closeErr != nil {
		return fmt.Errorf("wal: close: %w", closeErr)
	}
	return nil
}

// syncDir fsyncs a directory so renames and creates within it are
// durable. Best-effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	d.Close()
}
