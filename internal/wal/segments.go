package wal

import (
	"fmt"
	"os"
	"sort"
)

// SegmentInfo describes one sealed, immutable segment — the unit the
// cluster layer ships to followers.
type SegmentInfo struct {
	Seq   uint64 // segment sequence number
	Bytes int64  // file size including the magic header
}

// Segments lists the sealed segments in ascending sequence order. The
// active segment is excluded: it is still being appended to and is not
// safe to ship. Sealing is forced with Rotate.
func (w *WAL) Segments() []SegmentInfo {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]SegmentInfo, 0, len(w.sealed))
	for seq, size := range w.sealed {
		out = append(out, SegmentInfo{Seq: seq, Bytes: size})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// OpenSegment opens a sealed segment for reading (the replication
// streaming path). The caller owns the returned file. Because the fd is
// held open, the stream survives a concurrent Compact unlinking the file
// mid-transfer — the reader drains the old inode. Asking for the active
// or an unknown segment returns os.ErrNotExist wrapped with the sequence,
// which the HTTP layer maps to 410 Gone (compacted away: the follower
// must fall back to a checkpoint install).
func (w *WAL) OpenSegment(seq uint64) (*os.File, error) {
	w.mu.Lock()
	_, ok := w.sealed[seq]
	closed := w.closed
	path := w.segmentPath(seq)
	w.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	if !ok {
		return nil, fmt.Errorf("wal: segment %016x: %w", seq, os.ErrNotExist)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("wal: open segment %016x: %w", seq, err)
	}
	return f, nil
}
