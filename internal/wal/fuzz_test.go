package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// frame builds one valid wire frame for fuzz seeds.
func frame(payload []byte) []byte {
	var b []byte
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(payload, castagnoli))
	return append(b, payload...)
}

// FuzzScanSegment hammers the frame decoder with arbitrary segment bytes —
// torn tails, bit flips, concatenated segments, hostile lengths (the
// mirror of trace.FuzzStreamDecoder for the WAL wire format). Whatever the
// input, ScanSegment must not panic, must deliver only checksum-valid
// frames, and must stop at the first bad frame: when the input is a valid
// prefix plus garbage, exactly the prefix's records come back.
func FuzzScanSegment(f *testing.F) {
	valid := append(append([]byte{}, segmentMagic...), frame([]byte(`{"id":1}`))...)
	valid = append(valid, frame([]byte(`{"id":2,"pad":"xxxxxxxxxxxxxxxx"}`))...)

	f.Add([]byte{})
	f.Add(append([]byte{}, segmentMagic...))
	f.Add(valid)
	f.Add(valid[:len(valid)-3])                        // torn payload
	f.Add(valid[:len(segmentMagic)+3])                 // torn frame header
	f.Add(append(append([]byte{}, valid...), 0x01))    // trailing garbage byte
	f.Add(append(append([]byte{}, valid...), valid...)) // concatenated segments
	f.Add([]byte("ddoswal1\xff\xff\xff\xff\x00\x00\x00\x00")) // hostile length
	f.Add([]byte("notmagic" + "rest"))
	bitflip := append([]byte{}, valid...)
	bitflip[len(bitflip)-1] ^= 0x40
	f.Add(bitflip)

	f.Fuzz(func(t *testing.T, data []byte) {
		var got [][]byte
		records, off, clean, err := ScanSegment(bytes.NewReader(data), func(p []byte) error {
			got = append(got, append([]byte(nil), p...))
			return nil
		})
		if err != nil {
			t.Fatalf("in-memory scan returned an I/O error: %v", err)
		}
		if records != len(got) {
			t.Fatalf("records=%d but delivered %d", records, len(got))
		}
		if off < 0 || off > int64(len(data)) {
			t.Fatalf("offset %d outside input of %d bytes", off, len(data))
		}
		if clean && len(data) >= len(segmentMagic) && off != int64(len(data)) {
			t.Fatalf("clean scan stopped at %d of %d bytes", off, len(data))
		}
		// Every delivered frame must re-verify against the raw input at the
		// offsets the decoder claims, with a matching checksum.
		cursor := int64(len(segmentMagic))
		for i, p := range got {
			hdr := data[cursor : cursor+frameHeaderLen]
			length := binary.LittleEndian.Uint32(hdr[0:4])
			sum := binary.LittleEndian.Uint32(hdr[4:8])
			if int(length) != len(p) {
				t.Fatalf("frame %d length %d != payload %d", i, length, len(p))
			}
			if crc32.Checksum(p, castagnoli) != sum {
				t.Fatalf("frame %d delivered with a bad checksum", i)
			}
			if !bytes.Equal(p, data[cursor+frameHeaderLen:cursor+frameHeaderLen+int64(length)]) {
				t.Fatalf("frame %d payload does not match input bytes", i)
			}
			cursor += frameHeaderLen + int64(length)
		}
		if cursor != off && records > 0 {
			t.Fatalf("decoder offset %d disagrees with recomputed %d", off, cursor)
		}

		// Append-then-scan round trip: a valid prefix followed by this fuzz
		// input yields at least the prefix's records, unmangled.
		combined := append(append([]byte{}, valid...), data...)
		var first2 [][]byte
		_, _, _, err = ScanSegment(bytes.NewReader(combined), func(p []byte) error {
			if len(first2) < 2 {
				first2 = append(first2, append([]byte(nil), p...))
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(first2) < 2 ||
			!bytes.Equal(first2[0], []byte(`{"id":1}`)) ||
			!bytes.Equal(first2[1], []byte(`{"id":2,"pad":"xxxxxxxxxxxxxxxx"}`)) {
			t.Fatalf("valid prefix lost under trailing fuzz bytes: %q", first2)
		}
	})
}
