package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func mustOpen(t *testing.T, opts Options) *WAL {
	t.Helper()
	w, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

func rec(i int) []byte { return []byte(fmt.Sprintf(`{"seq":%d,"pad":"0123456789abcdef"}`, i)) }

func replayAll(t *testing.T, w *WAL) ([][]byte, ReplayResult) {
	t.Helper()
	var got [][]byte
	res, err := w.Replay(func(_ uint64, payload []byte) error {
		got = append(got, append([]byte(nil), payload...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, res
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, Options{Dir: dir, SegmentBytes: 256}) // force several rotations
	const n = 100
	for i := 0; i < n; i++ {
		if err := w.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// A second Open (a "reboot") sees every appended record, in order.
	w2 := mustOpen(t, Options{Dir: dir})
	got, res := replayAll(t, w2)
	if res.Truncated {
		t.Fatalf("clean log reported truncated: %+v", res)
	}
	if len(got) != n {
		t.Fatalf("replayed %d records, want %d", len(got), n)
	}
	for i, g := range got {
		if !bytes.Equal(g, rec(i)) {
			t.Fatalf("record %d = %q, want %q", i, g, rec(i))
		}
	}
	if res.Segments < 2 {
		t.Fatalf("expected multiple segments at SegmentBytes=256, got %d", res.Segments)
	}
}

func TestWALReopenWithoutCloseIsACrashImage(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, Options{Dir: dir, SegmentBytes: 512})
	for i := 0; i < 20; i++ {
		if err := w.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	// No Close: simulate SIGKILL. The file bytes are already written (the
	// WAL has no userspace buffer), so a fresh Open must replay them all.
	w2 := mustOpen(t, Options{Dir: dir})
	got, res := replayAll(t, w2)
	if len(got) != 20 || res.Truncated {
		t.Fatalf("replayed %d records (truncated=%v), want 20 clean", len(got), res.Truncated)
	}
	// The crashed process's active segment is sealed now; the new active
	// segment has a higher sequence.
	if s := w2.Stats(); s.ActiveSeq <= w.Stats().ActiveSeq-1 {
		t.Fatalf("new active seq %d not past crashed active %d", s.ActiveSeq, w.Stats().ActiveSeq)
	}
}

// TestWALReplayTornTail truncates the newest segment at every byte offset
// and asserts replay always yields a clean prefix of the appended records
// and never an error: torn tails are expected crash artifacts.
func TestWALReplayTornTail(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, Options{Dir: dir, SegmentBytes: 1 << 20})
	const n = 8
	for i := 0; i < n; i++ {
		if err := w.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	segs, err := filepath.Glob(filepath.Join(dir, "*"+segmentSuffix))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want 1 segment, got %v (%v)", segs, err)
	}
	whole, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(whole); cut++ {
		sub := t.TempDir()
		if err := os.WriteFile(filepath.Join(sub, filepath.Base(segs[0])), whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w2, err := Open(Options{Dir: sub})
		if err != nil {
			t.Fatalf("cut=%d: open: %v", cut, err)
		}
		got, res := replayAll(t, w2)
		w2.Close()
		for i, g := range got {
			if !bytes.Equal(g, rec(i)) {
				t.Fatalf("cut=%d: record %d = %q, want %q", cut, i, g, rec(i))
			}
		}
		if cut == len(whole) {
			if res.Truncated || len(got) != n {
				t.Fatalf("full file: got %d records truncated=%v", len(got), res.Truncated)
			}
		} else if len(got) == n && !res.Truncated && cut < len(whole) {
			// Cutting mid-file with all records intact can only happen if the
			// cut landed exactly after the last frame — impossible here since
			// cut < len(whole) and the file ends on the last frame.
			t.Fatalf("cut=%d silently replayed a torn file as complete", cut)
		}
	}
}

func TestWALRotateAndCompact(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, Options{Dir: dir, SegmentBytes: 1 << 20})
	for i := 0; i < 10; i++ {
		if err := w.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	sealedUpTo, err := w.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if s := w.Stats(); s.SealedSegments != 1 || s.ActiveSeq != sealedUpTo+1 {
		t.Fatalf("after rotate: %+v (sealedUpTo %d)", s, sealedUpTo)
	}
	// Rotating an empty active segment is a no-op with the same cut line.
	again, err := w.Rotate()
	if err != nil || again != sealedUpTo {
		t.Fatalf("empty rotate moved the cut line: %d -> %d (%v)", sealedUpTo, again, err)
	}
	for i := 10; i < 15; i++ {
		if err := w.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := w.Compact(sealedUpTo)
	if err != nil || removed != 1 {
		t.Fatalf("compact removed %d (%v), want 1", removed, err)
	}
	if s := w.Stats(); s.SealedSegments != 0 {
		t.Fatalf("sealed segments after compact: %+v", s)
	}

	// Only the uncompacted tail replays after a reopen.
	w.Close()
	w2 := mustOpen(t, Options{Dir: dir})
	got, res := replayAll(t, w2)
	if res.Truncated || len(got) != 5 {
		t.Fatalf("replayed %d records truncated=%v, want 5 clean", len(got), res.Truncated)
	}
	if !bytes.Equal(got[0], rec(10)) {
		t.Fatalf("tail replay starts at %q, want %q", got[0], rec(10))
	}
}

func TestWALSyncPolicies(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
		ok   bool
	}{
		{"always", SyncPolicy{Mode: SyncAlways}, true},
		{"Never", SyncPolicy{Mode: SyncNever}, true},
		{"100ms", SyncPolicy{Mode: SyncInterval, Interval: 100 * time.Millisecond}, true},
		{"0s", SyncPolicy{}, false},
		{"-5ms", SyncPolicy{}, false},
		{"sometimes", SyncPolicy{}, false},
	} {
		got, err := ParseSyncPolicy(tc.in)
		if tc.ok != (err == nil) || got != tc.want {
			t.Fatalf("ParseSyncPolicy(%q) = %+v, %v; want %+v ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
		if tc.ok && got.String() == "" {
			t.Fatalf("empty String() for %q", tc.in)
		}
	}

	// Interval mode: the background loop flushes without explicit Sync.
	dir := t.TempDir()
	w := mustOpen(t, Options{Dir: dir, Sync: SyncPolicy{Mode: SyncInterval, Interval: time.Millisecond}})
	if err := w.Append(rec(0)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Never mode still replays across a reopen (page cache, same machine).
	w2 := mustOpen(t, Options{Dir: dir, Sync: SyncPolicy{Mode: SyncNever}})
	if err := w2.Append(rec(1)); err != nil {
		t.Fatal(err)
	}
	got, _ := replayAll(t, w2)
	if len(got) != 1 {
		t.Fatalf("replayed %d sealed records, want 1", len(got))
	}
}

func TestWALClosedOperations(t *testing.T) {
	w := mustOpen(t, Options{Dir: t.TempDir()})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := w.Append(rec(0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close: %v", err)
	}
	if _, err := w.Rotate(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Rotate after Close: %v", err)
	}
	if _, err := w.Compact(99); !errors.Is(err, ErrClosed) {
		t.Fatalf("Compact after Close: %v", err)
	}
	if _, err := w.Replay(func(uint64, []byte) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Replay after Close: %v", err)
	}
}

func TestWALOversizeRecordRejected(t *testing.T) {
	w := mustOpen(t, Options{Dir: t.TempDir()})
	if err := w.Append(make([]byte, MaxRecordBytes+1)); err == nil {
		t.Fatal("oversize record accepted")
	}
}

func TestWriteFileAtomicReplacesAndPreservesOnFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "models.snap")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "good v1")
		return err
	}); err != nil {
		t.Fatal(err)
	}

	// A failure injected mid-write must leave the old content intact and
	// no temp litter behind.
	boom := errors.New("disk exploded mid-write")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		if _, err := io.WriteString(w, "torn v2 partial"); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("injected failure not surfaced: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "good v1" {
		t.Fatalf("old snapshot destroyed by failed write: %q", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp litter after failed write: %v", entries)
	}

	// A successful rewrite replaces wholesale.
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "good v2")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "good v2" {
		t.Fatalf("rewrite did not land: %q", got)
	}
}
