package wal

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes a file so that readers — including a process
// booting after a mid-write crash — only ever see the complete old
// content or the complete new content, never a torn mix. The content is
// streamed into a temp file in the target's own directory (rename is only
// atomic within one filesystem), synced, and renamed over the target;
// the directory is then synced so the rename itself is durable. On any
// failure the temp file is removed and the target is left untouched.
//
// ddosd's -snapshot-out and the WAL checkpoint both write through this —
// the fix for the torn-snapshot bug where a crash mid-os.Create destroyed
// the previous good snapshot.
func WriteFileAtomic(path string, write func(w io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("wal: atomic write %s: %w", path, err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriter(tmp)
	if err = write(bw); err != nil {
		return fmt.Errorf("wal: atomic write %s: %w", path, err)
	}
	if err = bw.Flush(); err != nil {
		return fmt.Errorf("wal: atomic write %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("wal: atomic write %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("wal: atomic write %s: %w", path, err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("wal: atomic write %s: %w", path, err)
	}
	syncDir(dir)
	return nil
}
