// Bit-flip replay tests live in the external test package: they drive the
// WAL through internal/chaos, which (via its refit injector) depends on
// internal/serve, which depends on this package — an in-package test file
// importing chaos would be an import cycle.
package wal_test

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/chaos"
	"repro/internal/wal"
)

// TestWALReplayBitFlips runs the chaos corrupter over a sealed segment:
// replay must stop at the first corrupt frame, deliver only the intact
// prefix, and report the truncation — never fail or deliver mangled
// payloads.
func TestWALReplayBitFlips(t *testing.T) {
	rec := func(i int) []byte {
		return []byte(fmt.Sprintf(`{"seq":%d,"pad":"0123456789abcdef"}`, i))
	}
	dir := t.TempDir()
	w, err := wal.Open(wal.Options{Dir: dir, SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	for i := 0; i < n; i++ {
		if err := w.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	segs, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want 1 segment, got %v (%v)", segs, err)
	}
	whole, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}

	for seed := uint64(1); seed <= 20; seed++ {
		corrupter := chaos.NewCorrupter(bytes.NewReader(whole), seed, 0.002)
		mangled, err := io.ReadAll(corrupter)
		if err != nil {
			t.Fatal(err)
		}
		if corrupter.Flipped() == 0 {
			continue
		}
		sub := t.TempDir()
		if err := os.WriteFile(filepath.Join(sub, filepath.Base(segs[0])), mangled, 0o644); err != nil {
			t.Fatal(err)
		}
		w2, err := wal.Open(wal.Options{Dir: sub})
		if err != nil {
			t.Fatalf("seed=%d: open: %v", seed, err)
		}
		var got [][]byte
		res, err := w2.Replay(func(_ uint64, payload []byte) error {
			got = append(got, append([]byte(nil), payload...))
			return nil
		})
		w2.Close()
		if err != nil {
			t.Fatalf("seed=%d: replay: %v", seed, err)
		}
		if !res.Truncated {
			t.Fatalf("seed=%d flipped %d bytes but replay reported clean", seed, corrupter.Flipped())
		}
		if len(got) >= n {
			t.Fatalf("seed=%d: corrupt log replayed all %d records", seed, len(got))
		}
		for i, g := range got {
			if !bytes.Equal(g, rec(i)) {
				t.Fatalf("seed=%d: delivered mangled record %d: %q", seed, i, g)
			}
		}
	}
}
