package astopo

// Gao-style AS relationship inference (Gao 2001, as used by the paper's
// tool in §IV-A3): in a valley-free route the path climbs customer →
// provider links, crosses at most one peer link at the top, and descends
// provider → customer links. The AS of highest degree in a path is taken
// as the top; links before it are classified customer-to-provider, links
// after provider-to-customer, and links adjacent to the top whose endpoint
// degrees are within a peering ratio are classified as peers. Votes are
// accumulated over all paths and the majority wins per link.

// InferConfig tunes the inference.
type InferConfig struct {
	// PeerDegreeRatio R: adjacent ASes with degree ratio in [1/R, R]
	// around the path top may be classified as peers. Default 2.0.
	PeerDegreeRatio float64
}

func (c InferConfig) withDefaults() InferConfig {
	if c.PeerDegreeRatio <= 1 {
		c.PeerDegreeRatio = 2.0
	}
	return c
}

// InferRelationships runs the Gao heuristic over a set of routing-table
// paths and returns the annotated graph. Paths that fail validation are
// skipped.
func InferRelationships(paths []Path, cfg InferConfig) *Graph {
	cfg = cfg.withDefaults()
	// Pass 1: degrees from path adjacency.
	deg := make(map[AS]map[AS]bool)
	addAdj := func(a, b AS) {
		if deg[a] == nil {
			deg[a] = make(map[AS]bool)
		}
		deg[a][b] = true
	}
	valid := make([]Path, 0, len(paths))
	for _, p := range paths {
		if p.Validate() != nil {
			continue
		}
		valid = append(valid, p)
		for i := 0; i+1 < len(p); i++ {
			addAdj(p[i], p[i+1])
			addAdj(p[i+1], p[i])
		}
	}
	degree := func(a AS) int { return len(deg[a]) }

	// Pass 2: vote per directed link.
	type votes struct{ c2p, p2c, peer int }
	tally := make(map[[2]AS]*votes)
	vote := func(a, b AS, rel Relationship) {
		key := [2]AS{a, b}
		if a > b {
			key = [2]AS{b, a}
			rel = rel.invert()
		}
		v := tally[key]
		if v == nil {
			v = &votes{}
			tally[key] = v
		}
		switch rel {
		case RelCustomerToProvider:
			v.c2p++
		case RelProviderToCustomer:
			v.p2c++
		case RelPeer:
			v.peer++
		}
	}
	for _, p := range valid {
		top := 0
		for i := 1; i < len(p); i++ {
			if degree(p[i]) > degree(p[top]) {
				top = i
			}
		}
		for i := 0; i+1 < len(p); i++ {
			a, b := p[i], p[i+1]
			switch {
			case i+1 <= top && isPeerCandidate(degree(a), degree(b), cfg.PeerDegreeRatio) && (i+1 == top || i == top):
				vote(a, b, RelPeer)
			case i+1 <= top:
				vote(a, b, RelCustomerToProvider)
			default:
				vote(a, b, RelProviderToCustomer)
			}
		}
	}

	// Pass 3: majority per link.
	g := NewGraph()
	for key, v := range tally {
		rel := RelCustomerToProvider
		best := v.c2p
		if v.p2c > best {
			rel, best = RelProviderToCustomer, v.p2c
		}
		if v.peer > best {
			rel = RelPeer
		}
		g.AddLink(key[0], key[1], rel)
	}
	return g
}

func isPeerCandidate(degA, degB int, ratio float64) bool {
	if degA == 0 || degB == 0 {
		return false
	}
	r := float64(degA) / float64(degB)
	return r >= 1/ratio && r <= ratio
}
