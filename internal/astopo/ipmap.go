package astopo

import (
	"errors"
	"fmt"
	"sort"
)

// IPv4 is an IPv4 address as a big-endian 32-bit integer.
type IPv4 uint32

// ParseIPv4 parses dotted-quad notation.
func ParseIPv4(s string) (IPv4, error) {
	var a, b, c, d int
	if _, err := fmt.Sscanf(s, "%d.%d.%d.%d", &a, &b, &c, &d); err != nil {
		return 0, fmt.Errorf("astopo: bad IPv4 %q: %w", s, err)
	}
	for _, o := range []int{a, b, c, d} {
		if o < 0 || o > 255 {
			return 0, fmt.Errorf("astopo: bad IPv4 octet in %q", s)
		}
	}
	return IPv4(a)<<24 | IPv4(b)<<16 | IPv4(c)<<8 | IPv4(d), nil
}

// String renders the address in dotted-quad notation.
func (ip IPv4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// PrefixRange is a contiguous address block announced by one AS.
type PrefixRange struct {
	Lo, Hi IPv4 // inclusive
	Owner  AS
}

// Size returns the number of addresses in the range.
func (r PrefixRange) Size() int { return int(r.Hi-r.Lo) + 1 }

// IPMap resolves IPv4 addresses to the announcing AS, replacing the
// paper's commercial whois-based mapping. Build one with NewIPMap.
type IPMap struct {
	ranges []PrefixRange // sorted by Lo, non-overlapping
	sizes  map[AS]int    // total addresses per AS
}

// NewIPMap validates and indexes the given prefix ranges. Ranges must not
// overlap.
func NewIPMap(ranges []PrefixRange) (*IPMap, error) {
	rs := make([]PrefixRange, len(ranges))
	copy(rs, ranges)
	sort.Slice(rs, func(i, j int) bool { return rs[i].Lo < rs[j].Lo })
	sizes := make(map[AS]int)
	for i, r := range rs {
		if r.Hi < r.Lo {
			return nil, fmt.Errorf("astopo: inverted range %v-%v", r.Lo, r.Hi)
		}
		if i > 0 && r.Lo <= rs[i-1].Hi {
			return nil, fmt.Errorf("astopo: overlapping ranges at %v", r.Lo)
		}
		sizes[r.Owner] += r.Size()
	}
	return &IPMap{ranges: rs, sizes: sizes}, nil
}

// Lookup returns the AS announcing ip, and false for unrouted space.
func (m *IPMap) Lookup(ip IPv4) (AS, bool) {
	idx := sort.Search(len(m.ranges), func(i int) bool { return m.ranges[i].Hi >= ip })
	if idx == len(m.ranges) || m.ranges[idx].Lo > ip {
		return 0, false
	}
	return m.ranges[idx].Owner, true
}

// AddressCount returns the total number of addresses announced by as,
// which is the N_AS denominator of the intra-AS distribution (Eq. 4).
func (m *IPMap) AddressCount(as AS) int { return m.sizes[as] }

// RangesOf returns the prefix ranges announced by as.
func (m *IPMap) RangesOf(as AS) []PrefixRange {
	var out []PrefixRange
	for _, r := range m.ranges {
		if r.Owner == as {
			out = append(out, r)
		}
	}
	return out
}

// MapAll maps a slice of IPs to ASes, skipping unrouted addresses, and
// reports how many were unrouted.
func (m *IPMap) MapAll(ips []IPv4) (ases []AS, unrouted int) {
	ases = make([]AS, 0, len(ips))
	for _, ip := range ips {
		if as, ok := m.Lookup(ip); ok {
			ases = append(ases, as)
		} else {
			unrouted++
		}
	}
	return ases, unrouted
}

// ErrNoSpace is returned when an AS has no address space to draw from.
var ErrNoSpace = errors.New("astopo: AS announces no address space")

// RandomIPIn returns a deterministic pseudo-random address inside the AS's
// announced space, using pick in [0, 1).
func (m *IPMap) RandomIPIn(as AS, pick float64) (IPv4, error) {
	total := m.sizes[as]
	if total == 0 {
		return 0, ErrNoSpace
	}
	if pick < 0 {
		pick = 0
	}
	if pick >= 1 {
		pick = 0.999999999
	}
	offset := int(pick * float64(total))
	for _, r := range m.ranges {
		if r.Owner != as {
			continue
		}
		if offset < r.Size() {
			return r.Lo + IPv4(offset), nil
		}
		offset -= r.Size()
	}
	return 0, ErrNoSpace
}
