package astopo_test

import (
	"fmt"

	"repro/internal/astopo"
)

// Infer AS relationships from routing-table paths and query a
// valley-free route.
func ExampleInferRelationships() {
	paths := []astopo.Path{
		{100, 10, 1}, // stub 100 reaches tier-1 AS1 via provider 10
		{101, 10, 1}, // sibling stub, same provider
		{103, 12, 1}, // more regions homed on AS1: its degree
		{104, 13, 1}, // grows far past AS10's, so the Gao
		{105, 14, 1}, // heuristic sees AS1 as the transit core
		{106, 15, 1}, // rather than a peer of its customers
		{107, 16, 1},
		{100, 10, 1, 2, 11, 102}, // cross-core route over the 1-2 peering
		{102, 11, 2},
		{101, 10, 1, 2, 11, 102},
	}
	g := astopo.InferRelationships(paths, astopo.InferConfig{})
	fmt.Println("10 -> 1:", g.Rel(10, 1))
	fmt.Println("1 -> 10:", g.Rel(1, 10))

	route, ok := astopo.ValleyFreePath(g, 100, 101)
	fmt.Println("route found:", ok, route)
	// Output:
	// 10 -> 1: customer-to-provider
	// 1 -> 10: provider-to-customer
	// route found: true [100 10 101]
}
