package astopo

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Routing tables are serialized one AS path per line as space-separated AS
// numbers, vantage point first, origin last — the shape of a Route Views
// AS-path dump after prepending collapse. cmd/astool reads this format
// from stdin.

// WriteRouteTable serializes paths to w.
func WriteRouteTable(w io.Writer, paths []Path) error {
	bw := bufio.NewWriter(w)
	for _, p := range paths {
		for i, as := range p {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return fmt.Errorf("astopo: write route table: %w", err)
				}
			}
			if _, err := bw.WriteString(strconv.FormatUint(uint64(as), 10)); err != nil {
				return fmt.Errorf("astopo: write route table: %w", err)
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("astopo: write route table: %w", err)
		}
	}
	return bw.Flush()
}

// ReadRouteTable parses the format written by WriteRouteTable. Blank lines
// and lines starting with '#' are skipped; malformed AS numbers are
// reported with their line number.
func ReadRouteTable(r io.Reader) ([]Path, error) {
	var paths []Path
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		p := make(Path, 0, len(fields))
		for _, f := range fields {
			n, err := strconv.ParseUint(f, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("astopo: route table line %d: bad AS %q: %w", line, f, err)
			}
			p = append(p, AS(n))
		}
		paths = append(paths, p)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("astopo: read route table: %w", err)
	}
	return paths, nil
}
