package astopo

import (
	"strings"
	"testing"
	"testing/quick"
)

// smallTopology builds a hand-checked hierarchy:
//
//	      1 ---- 2        (tier-1 peers)
//	     / \    / \
//	   10   11 12  13     (tier-2 customers)
//	  /  \   |  |   \
//	100  101 102 103 104  (stubs)
func smallTopology() *Graph {
	g := NewGraph()
	g.AddLink(1, 2, RelPeer)
	g.AddLink(10, 1, RelCustomerToProvider)
	g.AddLink(11, 1, RelCustomerToProvider)
	g.AddLink(12, 2, RelCustomerToProvider)
	g.AddLink(13, 2, RelCustomerToProvider)
	g.AddLink(100, 10, RelCustomerToProvider)
	g.AddLink(101, 10, RelCustomerToProvider)
	g.AddLink(102, 11, RelCustomerToProvider)
	g.AddLink(103, 12, RelCustomerToProvider)
	g.AddLink(104, 13, RelCustomerToProvider)
	return g
}

func TestGraphBasics(t *testing.T) {
	g := smallTopology()
	if g.Rel(10, 1) != RelCustomerToProvider {
		t.Error("10->1 should be customer-to-provider")
	}
	if g.Rel(1, 10) != RelProviderToCustomer {
		t.Error("1->10 should be provider-to-customer")
	}
	if g.Rel(1, 2) != RelPeer || g.Rel(2, 1) != RelPeer {
		t.Error("1-2 should be peer in both directions")
	}
	if g.Rel(100, 104) != RelUnknown {
		t.Error("non-adjacent pair should be unknown")
	}
	if !g.HasLink(100, 10) || g.HasLink(100, 11) {
		t.Error("HasLink mismatch")
	}
	if g.Degree(1) != 3 {
		t.Errorf("Degree(1) = %d, want 3", g.Degree(1))
	}
	if g.Len() != 11 {
		t.Errorf("Len = %d, want 11", g.Len())
	}
	nbs := g.Neighbors(1)
	if len(nbs) != 3 || nbs[0] != 2 || nbs[1] != 10 || nbs[2] != 11 {
		t.Errorf("Neighbors(1) = %v", nbs)
	}
	var zero Graph
	if zero.Rel(1, 2) != RelUnknown || zero.HasLink(1, 2) {
		t.Error("zero-value graph should be empty")
	}
	zero.AddLink(1, 2, RelPeer)
	if zero.Rel(1, 2) != RelPeer {
		t.Error("zero-value graph should accept AddLink")
	}
}

func TestRelationshipString(t *testing.T) {
	for rel, want := range map[Relationship]string{
		RelUnknown:            "unknown",
		RelCustomerToProvider: "customer-to-provider",
		RelProviderToCustomer: "provider-to-customer",
		RelPeer:               "peer",
		RelSibling:            "sibling",
	} {
		if got := rel.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", rel, got, want)
		}
	}
}

func TestPathValidate(t *testing.T) {
	if err := (Path{100, 10, 1}).Validate(); err != nil {
		t.Errorf("valid path rejected: %v", err)
	}
	if err := (Path{100}).Validate(); err == nil {
		t.Error("singleton path should fail")
	}
	if err := (Path{100, 10, 100}).Validate(); err == nil {
		t.Error("looping path should fail")
	}
}

func TestValleyFreePathUpPeerDown(t *testing.T) {
	g := smallTopology()
	// 100 -> 104 must climb to 1, peer to 2, descend through 13.
	p, ok := ValleyFreePath(g, 100, 104)
	if !ok {
		t.Fatal("no path found")
	}
	want := []AS{100, 10, 1, 2, 13, 104}
	if len(p) != len(want) {
		t.Fatalf("path = %v, want %v", p, want)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("path = %v, want %v", p, want)
		}
	}
	// Same endpoint.
	p, ok = ValleyFreePath(g, 100, 100)
	if !ok || len(p) != 1 {
		t.Errorf("self path = %v", p)
	}
	// Disconnected AS.
	if _, ok := ValleyFreePath(g, 100, 999); ok {
		t.Error("unknown destination should be unreachable")
	}
}

func TestValleyFreeRejectsValley(t *testing.T) {
	// A route descending then climbing (valley) must not exist: make the
	// only topological connection between 100 and 101 be via their shared
	// provider 10, which IS legal (up then down). But a path 102 -> 10
	// -> ... does not exist via customers of 10.
	g := NewGraph()
	g.AddLink(100, 10, RelCustomerToProvider)
	g.AddLink(101, 10, RelCustomerToProvider)
	g.AddLink(101, 11, RelCustomerToProvider) // 101 multihomed
	g.AddLink(102, 11, RelCustomerToProvider)
	// 100 -> 102 would require 10 -> 101 -> 11, i.e. provider-to-customer
	// followed by customer-to-provider: a valley. No peering exists.
	if _, ok := ValleyFreePath(g, 100, 102); ok {
		t.Error("valley route should be rejected")
	}
	// 100 -> 101 via shared provider is fine.
	if _, ok := ValleyFreePath(g, 100, 101); !ok {
		t.Error("up-down route should exist")
	}
}

func TestHopDistanceOracle(t *testing.T) {
	g := smallTopology()
	o := NewDistanceOracle(g)
	d, ok := o.HopDistance(100, 101)
	if !ok || d != 2 {
		t.Errorf("dist(100,101) = %d,%v want 2", d, ok)
	}
	d, ok = o.HopDistance(100, 104)
	if !ok || d != 5 {
		t.Errorf("dist(100,104) = %d,%v want 5", d, ok)
	}
	if d, ok := o.HopDistance(7, 7); !ok || d != 0 {
		t.Errorf("self distance = %d,%v", d, ok)
	}
	if _, ok := o.HopDistance(100, 999); ok {
		t.Error("unreachable should report false")
	}
	// Cached second call must agree.
	d2, _ := o.HopDistance(100, 104)
	if d2 != 5 {
		t.Errorf("cached dist = %d", d2)
	}
}

func TestMeanPairwiseDistance(t *testing.T) {
	g := smallTopology()
	o := NewDistanceOracle(g)
	// Pairs: (100,101)=2, (100,102)=4, (101,102)=4 -> mean 10/3.
	mean, n := o.MeanPairwiseDistance([]AS{100, 101, 102})
	if n != 3 {
		t.Fatalf("pairs = %d, want 3", n)
	}
	if want := 10.0 / 3.0; mean != want {
		t.Errorf("mean = %v, want %v", mean, want)
	}
	if mean, n := o.MeanPairwiseDistance([]AS{100}); mean != 0 || n != 0 {
		t.Error("single AS should give 0 pairs")
	}
}

func TestInferRelationshipsRecoversHierarchy(t *testing.T) {
	topo, err := Synthesize(SynthConfig{Tier1: 4, Tier2: 10, Stubs: 40, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	paths := topo.EmitRouteTable(12, 7)
	if len(paths) == 0 {
		t.Fatal("no paths emitted")
	}
	inferred := InferRelationships(paths, InferConfig{})
	// Score the inference against ground truth on links present in both.
	var total, correct int
	for _, a := range topo.Graph.Nodes() {
		for _, b := range topo.Graph.Neighbors(a) {
			if a >= b || !inferred.HasLink(a, b) {
				continue
			}
			total++
			truth := topo.Graph.Rel(a, b)
			got := inferred.Rel(a, b)
			if got == truth {
				correct++
				continue
			}
			// Count peer/sibling confusion as correct enough: both are
			// non-transit lateral links.
			if (truth == RelPeer || truth == RelSibling) && (got == RelPeer || got == RelSibling) {
				correct++
			}
		}
	}
	if total == 0 {
		t.Fatal("no overlapping links to score")
	}
	acc := float64(correct) / float64(total)
	if acc < 0.80 {
		t.Errorf("Gao inference accuracy = %.2f on %d links, want >= 0.80", acc, total)
	}
}

func TestInferSkipsInvalidPaths(t *testing.T) {
	paths := []Path{
		{1},          // too short
		{1, 2, 1},    // loop
		{100, 10, 1}, // fine
		{101, 10, 1}, // fine
	}
	g := InferRelationships(paths, InferConfig{})
	if !g.HasLink(100, 10) {
		t.Error("valid paths should still be used")
	}
	if g.HasLink(1, 1) {
		t.Error("looped path leaked into the graph")
	}
}

func TestParseIPv4(t *testing.T) {
	ip, err := ParseIPv4("10.1.2.3")
	if err != nil {
		t.Fatal(err)
	}
	if ip != 0x0A010203 {
		t.Errorf("parsed %x", uint32(ip))
	}
	if ip.String() != "10.1.2.3" {
		t.Errorf("String = %q", ip.String())
	}
	for _, bad := range []string{"1.2.3", "256.1.1.1", "a.b.c.d", ""} {
		if _, err := ParseIPv4(bad); err == nil {
			t.Errorf("ParseIPv4(%q) should fail", bad)
		}
	}
}

func TestIPMapLookup(t *testing.T) {
	m, err := NewIPMap([]PrefixRange{
		{Lo: 100, Hi: 199, Owner: 1},
		{Lo: 200, Hi: 299, Owner: 2},
		{Lo: 500, Hi: 599, Owner: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		ip   IPv4
		want AS
		ok   bool
	}{
		{ip: 100, want: 1, ok: true},
		{ip: 199, want: 1, ok: true},
		{ip: 250, want: 2, ok: true},
		{ip: 550, want: 1, ok: true},
		{ip: 99, ok: false},
		{ip: 300, ok: false},
		{ip: 1000, ok: false},
	}
	for _, tt := range tests {
		got, ok := m.Lookup(tt.ip)
		if ok != tt.ok || (ok && got != tt.want) {
			t.Errorf("Lookup(%d) = %v,%v want %v,%v", tt.ip, got, ok, tt.want, tt.ok)
		}
	}
	if m.AddressCount(1) != 200 {
		t.Errorf("AddressCount(1) = %d, want 200", m.AddressCount(1))
	}
	if len(m.RangesOf(1)) != 2 {
		t.Errorf("RangesOf(1) = %v", m.RangesOf(1))
	}
	ases, unrouted := m.MapAll([]IPv4{100, 250, 999})
	if len(ases) != 2 || unrouted != 1 {
		t.Errorf("MapAll = %v, %d", ases, unrouted)
	}
}

func TestIPMapValidation(t *testing.T) {
	if _, err := NewIPMap([]PrefixRange{{Lo: 10, Hi: 5, Owner: 1}}); err == nil {
		t.Error("inverted range should fail")
	}
	if _, err := NewIPMap([]PrefixRange{
		{Lo: 0, Hi: 100, Owner: 1},
		{Lo: 50, Hi: 150, Owner: 2},
	}); err == nil {
		t.Error("overlap should fail")
	}
}

func TestRandomIPIn(t *testing.T) {
	m, err := NewIPMap([]PrefixRange{
		{Lo: 100, Hi: 109, Owner: 1},
		{Lo: 200, Hi: 209, Owner: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	ip, err := m.RandomIPIn(1, 0)
	if err != nil || ip != 100 {
		t.Errorf("pick 0 = %v, %v", ip, err)
	}
	ip, err = m.RandomIPIn(1, 0.99)
	if err != nil || ip != 209 {
		t.Errorf("pick 0.99 = %v, %v", ip, err)
	}
	ip, err = m.RandomIPIn(1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if as, ok := m.Lookup(ip); !ok || as != 1 {
		t.Errorf("mid pick %v not owned by AS1", ip)
	}
	if _, err := m.RandomIPIn(9, 0.5); err == nil {
		t.Error("unknown AS should error")
	}
}

// Property: every address drawn by RandomIPIn maps back to the same AS.
func TestRandomIPInRoundTripProperty(t *testing.T) {
	m, err := NewIPMap([]PrefixRange{
		{Lo: 1000, Hi: 1999, Owner: 7},
		{Lo: 5000, Hi: 5099, Owner: 7},
		{Lo: 8000, Hi: 8999, Owner: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	f := func(pickRaw float64, pickAS bool) bool {
		pick := pickRaw - float64(int(pickRaw))
		if pick < 0 {
			pick++
		}
		as := AS(7)
		if pickAS {
			as = 9
		}
		ip, err := m.RandomIPIn(as, pick)
		if err != nil {
			return false
		}
		got, ok := m.Lookup(ip)
		return ok && got == as
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSynthesizeShape(t *testing.T) {
	topo, err := Synthesize(SynthConfig{Tier1: 3, Tier2: 8, Stubs: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Tier1) != 3 || len(topo.Tier2) != 8 || len(topo.Stubs) != 20 {
		t.Fatalf("tiers = %d/%d/%d", len(topo.Tier1), len(topo.Tier2), len(topo.Stubs))
	}
	if got := len(topo.AllASes()); got != 31 {
		t.Errorf("AllASes = %d, want 31", got)
	}
	// Tier-1 clique is fully peered.
	for i, a := range topo.Tier1 {
		for _, b := range topo.Tier1[i+1:] {
			if topo.Graph.Rel(a, b) != RelPeer {
				t.Errorf("tier1 %d-%d not peered", a, b)
			}
		}
	}
	// Every stub has at least one provider and address space.
	for _, s := range topo.Stubs {
		if topo.Graph.Degree(s) < 1 {
			t.Errorf("stub %d disconnected", s)
		}
		if topo.IPMap.AddressCount(s) == 0 {
			t.Errorf("stub %d has no addresses", s)
		}
	}
	// Determinism.
	topo2, err := Synthesize(SynthConfig{Tier1: 3, Tier2: 8, Stubs: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(topo2.Graph.Nodes()) != len(topo.Graph.Nodes()) {
		t.Error("same seed should give same topology")
	}
}

func TestSynthesizeDefaults(t *testing.T) {
	topo, err := Synthesize(SynthConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Tier1) != 4 || len(topo.Tier2) != 12 || len(topo.Stubs) != 60 {
		t.Errorf("defaults = %d/%d/%d", len(topo.Tier1), len(topo.Tier2), len(topo.Stubs))
	}
}

func TestEmitRouteTable(t *testing.T) {
	topo, err := Synthesize(SynthConfig{Tier1: 3, Tier2: 6, Stubs: 15, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	paths := topo.EmitRouteTable(5, 1)
	if len(paths) == 0 {
		t.Fatal("no paths")
	}
	for _, p := range paths {
		if err := p.Validate(); err != nil {
			t.Fatalf("emitted invalid path %v: %v", p, err)
		}
	}
	// Clamp over-large vantage counts.
	paths2 := topo.EmitRouteTable(10000, 1)
	if len(paths2) < len(paths) {
		t.Error("clamped emission should cover at least as many paths")
	}
}

func TestRouteTableRoundTrip(t *testing.T) {
	paths := []Path{
		{100, 10, 1},
		{101, 10, 1, 2, 13, 104},
	}
	var buf strings.Builder
	if err := WriteRouteTable(&buf, paths); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRouteTable(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(paths) {
		t.Fatalf("round trip lost paths: %d vs %d", len(back), len(paths))
	}
	for i := range paths {
		if len(back[i]) != len(paths[i]) {
			t.Fatalf("path %d length mismatch", i)
		}
		for j := range paths[i] {
			if back[i][j] != paths[i][j] {
				t.Fatalf("path %d element %d mismatch", i, j)
			}
		}
	}
}

func TestReadRouteTableSkipsCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\n100 10 1\n   \n200 20 2\n"
	paths, err := ReadRouteTable(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths = %d, want 2", len(paths))
	}
	if _, err := ReadRouteTable(strings.NewReader("100 banana 1\n")); err == nil {
		t.Error("bad AS should error with line info")
	}
}

func TestEmittedTableSurvivesSerialization(t *testing.T) {
	topo, err := Synthesize(SynthConfig{Tier1: 2, Tier2: 4, Stubs: 10, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	paths := topo.EmitRouteTable(3, 1)
	var buf strings.Builder
	if err := WriteRouteTable(&buf, paths); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRouteTable(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	// Inference over the round-tripped table must match the original.
	a := InferRelationships(paths, InferConfig{})
	b := InferRelationships(back, InferConfig{})
	if a.Len() != b.Len() {
		t.Errorf("inferred graph sizes differ: %d vs %d", a.Len(), b.Len())
	}
	for _, x := range a.Nodes() {
		for _, y := range a.Neighbors(x) {
			if a.Rel(x, y) != b.Rel(x, y) {
				t.Fatalf("relationship %d-%d differs after round trip", x, y)
			}
		}
	}
}
