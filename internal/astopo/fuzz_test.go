package astopo

import (
	"strings"
	"testing"
)

// FuzzParseIPv4 checks that the parser never panics and that accepted
// addresses round-trip through String.
func FuzzParseIPv4(f *testing.F) {
	for _, seed := range []string{"10.0.0.1", "255.255.255.255", "0.0.0.0", "1.2.3", "a.b.c.d", "999.1.1.1", ""} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		ip, err := ParseIPv4(s)
		if err != nil {
			return
		}
		back, err := ParseIPv4(ip.String())
		if err != nil {
			t.Fatalf("round trip of %q -> %v failed: %v", s, ip, err)
		}
		if back != ip {
			t.Fatalf("round trip changed %v -> %v", ip, back)
		}
	})
}

// FuzzReadRouteTable checks the routing-table parser never panics and that
// accepted tables survive a write/read round trip.
func FuzzReadRouteTable(f *testing.F) {
	f.Add("100 10 1\n101 10 1\n")
	f.Add("# comment\n\n1 2\n")
	f.Add("1 banana\n")
	f.Add("4294967295 0\n")
	f.Fuzz(func(t *testing.T, s string) {
		paths, err := ReadRouteTable(strings.NewReader(s))
		if err != nil {
			return
		}
		var buf strings.Builder
		if err := WriteRouteTable(&buf, paths); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadRouteTable(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		if len(back) != len(paths) {
			t.Fatalf("round trip changed path count %d -> %d", len(paths), len(back))
		}
	})
}
