package astopo

import (
	"sync"
	"testing"
)

// raceGraph builds a mid-sized synthetic topology for oracle concurrency
// tests.
func raceGraph(t *testing.T) (*Graph, []AS) {
	t.Helper()
	topo, err := Synthesize(SynthConfig{Tier1: 4, Tier2: 10, Stubs: 50, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return topo.Graph, topo.Graph.Nodes()
}

// TestDistanceOracleConcurrentConsistency hammers HopDistance and
// MeanPairwiseDistance from many goroutines (run under -race) and asserts
// that every cached answer equals a fresh, uncached BFS.
func TestDistanceOracleConcurrentConsistency(t *testing.T) {
	g, nodes := raceGraph(t)
	o := NewDistanceOracle(g)

	const goroutines = 16
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Every goroutine sweeps all pairs, offset so goroutines hit
			// the same sources at different times.
			for k := range nodes {
				src := nodes[(k+w)%len(nodes)]
				for _, dst := range nodes {
					o.HopDistance(src, dst)
				}
			}
			o.MeanPairwiseDistance(nodes)
		}(w)
	}
	wg.Wait()

	// Cached answers must equal a fresh single-threaded BFS.
	for _, src := range nodes {
		fresh := valleyFreeBFS(g, src)
		for _, dst := range nodes {
			got, ok := o.HopDistance(src, dst)
			if src == dst {
				if !ok || got != 0 {
					t.Fatalf("HopDistance(%d,%d) = %d,%v, want 0,true", src, dst, got, ok)
				}
				continue
			}
			want, wantOK := fresh[dst]
			if ok != wantOK || got != want {
				t.Fatalf("HopDistance(%d,%d) = %d,%v, fresh BFS says %d,%v", src, dst, got, ok, want, wantOK)
			}
		}
	}

	// Singleflight: with every source queried, each BFS ran exactly once.
	if runs := o.bfsRuns.Load(); runs != int64(len(nodes)) {
		t.Fatalf("bfsRuns = %d, want %d (one BFS per source)", runs, len(nodes))
	}
}

// TestDistanceOracleMeanPairwiseMatchesSerial checks that the fanned-out
// pair sweep returns exactly what the naive serial double loop returns,
// warm or cold.
func TestDistanceOracleMeanPairwiseMatchesSerial(t *testing.T) {
	g, nodes := raceGraph(t)

	serialOracle := NewDistanceOracle(g)
	var serialSum float64
	var serialPairs int
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			if d, ok := serialOracle.HopDistance(nodes[i], nodes[j]); ok {
				serialSum += float64(d)
				serialPairs++
			}
		}
	}
	wantMean := serialSum / float64(serialPairs)

	for name, oracle := range map[string]*DistanceOracle{
		"cold": NewDistanceOracle(g),
		"warm": serialOracle,
	} {
		mean, pairs := oracle.MeanPairwiseDistance(nodes)
		if pairs != serialPairs || mean != wantMean {
			t.Fatalf("%s: MeanPairwiseDistance = (%v, %d), serial = (%v, %d)",
				name, mean, pairs, wantMean, serialPairs)
		}
	}

	// Duplicate sources count as zero-distance pairs, as HopDistance says.
	dup := []AS{nodes[0], nodes[0], nodes[1]}
	mean, pairs := NewDistanceOracle(g).MeanPairwiseDistance(dup)
	d01, ok := NewDistanceOracle(g).HopDistance(nodes[0], nodes[1])
	if !ok {
		t.Skip("nodes 0 and 1 unreachable in this synthesis")
	}
	if pairs != 3 || mean != float64(2*d01)/3 {
		t.Fatalf("duplicate-source mean = (%v, %d), want (%v, 3)", mean, pairs, float64(2*d01)/3)
	}

	// Degenerate inputs.
	if mean, pairs := NewDistanceOracle(g).MeanPairwiseDistance(nil); mean != 0 || pairs != 0 {
		t.Fatalf("empty input = (%v, %d)", mean, pairs)
	}
	if mean, pairs := NewDistanceOracle(g).MeanPairwiseDistance(nodes[:1]); mean != 0 || pairs != 0 {
		t.Fatalf("single source = (%v, %d)", mean, pairs)
	}
}
