// Package astopo provides the autonomous-system topology substrate the
// paper's source-distribution feature (A^s, Eqs. 3–4) depends on: ingestion
// of routing-table AS paths, Gao-style inference of business relationships
// between ASes, valley-free path and hop-distance computation, and IP→ASN
// mapping. The paper used Route Views tables and a commercial whois
// mapping; we generate an equivalent synthetic topology (see Synthesize)
// and run the identical inference pipeline on it.
package astopo

import (
	"errors"
	"fmt"
	"sort"
)

// AS is an autonomous system number.
type AS uint32

// Relationship classifies the business relationship of a directed AS pair.
type Relationship int

// Relationship kinds between adjacent ASes, following Gao's taxonomy.
const (
	// RelUnknown marks links seen in paths but not yet classified.
	RelUnknown Relationship = iota
	// RelCustomerToProvider: the first AS pays the second for transit.
	RelCustomerToProvider
	// RelProviderToCustomer: the first AS sells transit to the second.
	RelProviderToCustomer
	// RelPeer: settlement-free peering.
	RelPeer
	// RelSibling: same organization (rare; treated like peering here).
	RelSibling
)

// String implements fmt.Stringer.
func (r Relationship) String() string {
	switch r {
	case RelCustomerToProvider:
		return "customer-to-provider"
	case RelProviderToCustomer:
		return "provider-to-customer"
	case RelPeer:
		return "peer"
	case RelSibling:
		return "sibling"
	default:
		return "unknown"
	}
}

// invert returns the relationship as seen from the opposite endpoint.
func (r Relationship) invert() Relationship {
	switch r {
	case RelCustomerToProvider:
		return RelProviderToCustomer
	case RelProviderToCustomer:
		return RelCustomerToProvider
	default:
		return r
	}
}

// Graph is an annotated AS-level topology. The zero value is empty and
// ready to use via AddLink.
type Graph struct {
	rels map[AS]map[AS]Relationship
}

// NewGraph returns an empty topology.
func NewGraph() *Graph {
	return &Graph{rels: make(map[AS]map[AS]Relationship)}
}

// AddLink records a directed relationship from a to b (and the inverse
// from b to a). Re-adding overwrites.
func (g *Graph) AddLink(a, b AS, rel Relationship) {
	if g.rels == nil {
		g.rels = make(map[AS]map[AS]Relationship)
	}
	if g.rels[a] == nil {
		g.rels[a] = make(map[AS]Relationship)
	}
	if g.rels[b] == nil {
		g.rels[b] = make(map[AS]Relationship)
	}
	g.rels[a][b] = rel
	g.rels[b][a] = rel.invert()
}

// Rel returns the relationship from a to b, RelUnknown if the link is
// absent.
func (g *Graph) Rel(a, b AS) Relationship {
	if g.rels == nil {
		return RelUnknown
	}
	return g.rels[a][b]
}

// HasLink reports whether a and b are adjacent.
func (g *Graph) HasLink(a, b AS) bool {
	if g.rels == nil {
		return false
	}
	_, ok := g.rels[a][b]
	return ok
}

// Neighbors returns the adjacent ASes of a in ascending order.
func (g *Graph) Neighbors(a AS) []AS {
	m := g.rels[a]
	out := make([]AS, 0, len(m))
	for b := range m {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Nodes returns all ASes in ascending order.
func (g *Graph) Nodes() []AS {
	out := make([]AS, 0, len(g.rels))
	for a := range g.rels {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Degree returns the number of neighbors of a.
func (g *Graph) Degree(a AS) int { return len(g.rels[a]) }

// Len returns the number of ASes.
func (g *Graph) Len() int { return len(g.rels) }

// Path is an AS-level route as it would appear in a routing table: index 0
// is the collecting vantage point, the last element the origin AS.
type Path []AS

// Validate checks that a path has at least two hops and no immediate
// repetitions (prepending collapses are expected to be removed upstream).
func (p Path) Validate() error {
	if len(p) < 2 {
		return errors.New("astopo: path needs at least two ASes")
	}
	seen := make(map[AS]bool, len(p))
	for i, as := range p {
		if seen[as] {
			return fmt.Errorf("astopo: loop at position %d (AS%d)", i, as)
		}
		seen[as] = true
	}
	return nil
}
