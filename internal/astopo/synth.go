package astopo

import (
	"fmt"

	"repro/internal/stats"
)

// Topology bundles a synthetic AS-level internet: the ground-truth
// relationship graph, the address plan, and the tier assignment. It stands
// in for the Route Views + whois data the paper used (see DESIGN.md's
// substitution table).
type Topology struct {
	Graph *Graph
	IPMap *IPMap
	// Tier1, Tier2, Stubs partition the AS numbers by role.
	Tier1, Tier2, Stubs []AS
}

// SynthConfig sizes the synthetic topology.
type SynthConfig struct {
	Tier1 int // fully-peered core ASes. Default 4.
	Tier2 int // regional providers. Default 12.
	Stubs int // edge/stub ASes (bot and target networks). Default 60.
	Seed  uint64
}

func (c SynthConfig) withDefaults() SynthConfig {
	if c.Tier1 < 1 {
		c.Tier1 = 4
	}
	if c.Tier2 < 1 {
		c.Tier2 = 12
	}
	if c.Stubs < 1 {
		c.Stubs = 60
	}
	return c
}

// Synthesize builds a three-tier hierarchical topology: a clique of
// tier-1 ASes peered with each other, tier-2 providers multihomed to two
// tier-1s (with sparse tier-2 peering), and stub ASes multihomed to one to
// three tier-2 providers. Every AS is allocated disjoint IPv4 blocks sized
// by tier.
func Synthesize(cfg SynthConfig) (*Topology, error) {
	cfg = cfg.withDefaults()
	s := stats.NewSampler(cfg.Seed + 0xa5)
	g := NewGraph()
	t := &Topology{Graph: g}
	next := AS(100)
	alloc := func() AS { next++; return next - 1 }

	for i := 0; i < cfg.Tier1; i++ {
		t.Tier1 = append(t.Tier1, alloc())
	}
	for i := 0; i < cfg.Tier1; i++ {
		for j := i + 1; j < cfg.Tier1; j++ {
			g.AddLink(t.Tier1[i], t.Tier1[j], RelPeer)
		}
	}
	for i := 0; i < cfg.Tier2; i++ {
		as := alloc()
		t.Tier2 = append(t.Tier2, as)
		// Multihome to two distinct tier-1 providers.
		p1 := t.Tier1[s.IntN(len(t.Tier1))]
		p2 := t.Tier1[s.IntN(len(t.Tier1))]
		g.AddLink(as, p1, RelCustomerToProvider)
		if p2 != p1 {
			g.AddLink(as, p2, RelCustomerToProvider)
		}
	}
	// Sparse tier-2 peering (~20% of pairs).
	for i := 0; i < cfg.Tier2; i++ {
		for j := i + 1; j < cfg.Tier2; j++ {
			if s.Float64() < 0.2 {
				g.AddLink(t.Tier2[i], t.Tier2[j], RelPeer)
			}
		}
	}
	for i := 0; i < cfg.Stubs; i++ {
		as := alloc()
		t.Stubs = append(t.Stubs, as)
		n := 1 + s.IntN(3)
		for k := 0; k < n; k++ {
			p := t.Tier2[s.IntN(len(t.Tier2))]
			g.AddLink(as, p, RelCustomerToProvider)
		}
	}

	// Address plan: carve 10.0.0.0/8-style space into per-AS blocks.
	// Tier 1 gets /14-equivalents, tier 2 /16, stubs /18.
	var ranges []PrefixRange
	cursor := IPv4(0x0A000000) // 10.0.0.0
	carve := func(as AS, size uint32) {
		ranges = append(ranges, PrefixRange{Lo: cursor, Hi: cursor + IPv4(size-1), Owner: as})
		cursor += IPv4(size)
	}
	for _, as := range t.Tier1 {
		carve(as, 1<<18)
	}
	for _, as := range t.Tier2 {
		carve(as, 1<<16)
	}
	for _, as := range t.Stubs {
		carve(as, 1<<14)
	}
	ipm, err := NewIPMap(ranges)
	if err != nil {
		return nil, fmt.Errorf("astopo: address plan: %w", err)
	}
	t.IPMap = ipm
	return t, nil
}

// AllASes returns every AS of the topology in tier order.
func (t *Topology) AllASes() []AS {
	out := make([]AS, 0, len(t.Tier1)+len(t.Tier2)+len(t.Stubs))
	out = append(out, t.Tier1...)
	out = append(out, t.Tier2...)
	out = append(out, t.Stubs...)
	return out
}

// EmitRouteTable simulates Route Views-style collection: from each of n
// vantage stub ASes it records the best valley-free route to every other
// AS. The emitted paths feed InferRelationships, exercising the paper's
// routing-table pipeline end to end.
func (t *Topology) EmitRouteTable(nVantage int, seed uint64) []Path {
	s := stats.NewSampler(seed + 0x7e)
	if nVantage < 1 {
		nVantage = 1
	}
	if nVantage > len(t.Stubs) {
		nVantage = len(t.Stubs)
	}
	// Choose vantage points without replacement.
	perm := make([]int, len(t.Stubs))
	for i := range perm {
		perm[i] = i
	}
	for i := len(perm) - 1; i > 0; i-- {
		j := s.IntN(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	var paths []Path
	for _, vi := range perm[:nVantage] {
		v := t.Stubs[vi]
		for _, dst := range t.AllASes() {
			if dst == v {
				continue
			}
			if p, ok := ValleyFreePath(t.Graph, v, dst); ok {
				paths = append(paths, Path(p))
			}
		}
	}
	return paths
}
