package astopo

import (
	"sync"
)

// Valley-free routing: a legal route climbs customer-to-provider links,
// crosses at most one peering link, then descends provider-to-customer
// links. HopDistance runs a BFS over (AS, phase) states to find the
// shortest legal route, which is how the paper's tool measures inter-AS
// distance for the A^s denominator (Eq. 4).

type phase uint8

const (
	phaseUp phase = iota
	phasePeered
	phaseDown
)

// DistanceOracle computes and caches valley-free hop distances on a graph.
// It is safe for concurrent use.
type DistanceOracle struct {
	g  *Graph
	mu sync.Mutex
	// cache maps a source AS to the distance vector computed by a full
	// BFS from that source.
	cache map[AS]map[AS]int
}

// NewDistanceOracle wraps g with a distance cache.
func NewDistanceOracle(g *Graph) *DistanceOracle {
	return &DistanceOracle{g: g, cache: make(map[AS]map[AS]int)}
}

// HopDistance returns the length (in AS hops) of the shortest valley-free
// route from src to dst, and false when no legal route exists.
func (o *DistanceOracle) HopDistance(src, dst AS) (int, bool) {
	if src == dst {
		return 0, true
	}
	o.mu.Lock()
	dists, ok := o.cache[src]
	if !ok {
		dists = valleyFreeBFS(o.g, src)
		o.cache[src] = dists
	}
	o.mu.Unlock()
	d, ok := dists[dst]
	return d, ok
}

// MeanPairwiseDistance returns the average valley-free hop distance over
// all unordered pairs of the given ASes, skipping unreachable pairs. The
// second return is the number of reachable pairs. This implements the
// inter-AS distribution DT of Eq. 4.
func (o *DistanceOracle) MeanPairwiseDistance(ases []AS) (float64, int) {
	var sum float64
	var n int
	for i := 0; i < len(ases); i++ {
		for j := i + 1; j < len(ases); j++ {
			if d, ok := o.HopDistance(ases[i], ases[j]); ok {
				sum += float64(d)
				n++
			}
		}
	}
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), n
}

// valleyFreeBFS computes shortest valley-free distances from src to every
// reachable AS.
func valleyFreeBFS(g *Graph, src AS) map[AS]int {
	type state struct {
		as AS
		ph phase
	}
	dist := make(map[AS]int)
	visited := make(map[state]bool)
	queue := []state{{as: src, ph: phaseUp}}
	visited[queue[0]] = true
	depth := 0
	for len(queue) > 0 {
		depth++
		var next []state
		for _, s := range queue {
			for _, nb := range g.Neighbors(s.as) {
				rel := g.Rel(s.as, nb)
				nph, ok := transition(s.ph, rel)
				if !ok {
					continue
				}
				ns := state{as: nb, ph: nph}
				if visited[ns] {
					continue
				}
				visited[ns] = true
				if _, seen := dist[nb]; !seen {
					dist[nb] = depth
				}
				next = append(next, ns)
			}
		}
		queue = next
	}
	return dist
}

// transition returns the next routing phase after traversing a link with
// the given relationship, or false when the move would create a valley.
func transition(ph phase, rel Relationship) (phase, bool) {
	switch ph {
	case phaseUp:
		switch rel {
		case RelCustomerToProvider:
			return phaseUp, true
		case RelPeer, RelSibling:
			return phasePeered, true
		case RelProviderToCustomer:
			return phaseDown, true
		}
	case phasePeered, phaseDown:
		if rel == RelProviderToCustomer {
			return phaseDown, true
		}
	}
	return 0, false
}

// vfState is a BFS state: an AS reached in a particular routing phase.
type vfState struct {
	as AS
	ph phase
}

// ValleyFreePath returns one shortest valley-free route from src to dst
// (inclusive of both endpoints), and false when none exists.
func ValleyFreePath(g *Graph, src, dst AS) ([]AS, bool) {
	if src == dst {
		return []AS{src}, true
	}
	parent := make(map[vfState]vfState)
	visited := map[vfState]bool{{as: src, ph: phaseUp}: true}
	queue := []vfState{{as: src, ph: phaseUp}}
	for len(queue) > 0 {
		var next []vfState
		for _, s := range queue {
			for _, nb := range g.Neighbors(s.as) {
				nph, ok := transition(s.ph, g.Rel(s.as, nb))
				if !ok {
					continue
				}
				ns := vfState{as: nb, ph: nph}
				if visited[ns] {
					continue
				}
				visited[ns] = true
				parent[ns] = s
				if nb == dst {
					return reconstruct(parent, ns), true
				}
				next = append(next, ns)
			}
		}
		queue = next
	}
	return nil, false
}

func reconstruct(parent map[vfState]vfState, end vfState) []AS {
	var rev []AS
	cur := end
	for {
		rev = append(rev, cur.as)
		p, ok := parent[cur]
		if !ok {
			break
		}
		cur = p
	}
	out := make([]AS, len(rev))
	for i, as := range rev {
		out[len(rev)-1-i] = as
	}
	return out
}
