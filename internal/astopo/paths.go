package astopo

import (
	"sync"
	"sync/atomic"

	"repro/internal/parallel"
)

// Valley-free routing: a legal route climbs customer-to-provider links,
// crosses at most one peering link, then descends provider-to-customer
// links. HopDistance runs a BFS over (AS, phase) states to find the
// shortest legal route, which is how the paper's tool measures inter-AS
// distance for the A^s denominator (Eq. 4).

type phase uint8

const (
	phaseUp phase = iota
	phasePeered
	phaseDown
)

// DistanceOracle computes and caches valley-free hop distances on a graph.
// It is safe for concurrent use and designed to scale with it: the cache
// sits behind an RWMutex so warm lookups only take a read lock, and a cold
// source's BFS runs *outside* any lock with singleflight deduplication —
// concurrent callers asking for the same source wait for one BFS instead
// of convoying on a global mutex or redundantly recomputing it.
type DistanceOracle struct {
	g  *Graph
	mu sync.RWMutex
	// cache maps a source AS to the distance vector computed by a full
	// BFS from that source. Vectors are never mutated after insertion, so
	// they may be read without holding the lock.
	cache map[AS]map[AS]int
	// inflight tracks BFS computations in progress, keyed by source.
	inflight map[AS]*bfsFlight
	// bfsRuns counts completed BFS computations (concurrency tests assert
	// exactly one run per distinct source).
	bfsRuns atomic.Int64
}

// bfsFlight is one in-progress BFS; waiters block on done and then read
// dists, which is written exactly once before done is closed.
type bfsFlight struct {
	done  chan struct{}
	dists map[AS]int
}

// NewDistanceOracle wraps g with a distance cache.
func NewDistanceOracle(g *Graph) *DistanceOracle {
	return &DistanceOracle{
		g:        g,
		cache:    make(map[AS]map[AS]int),
		inflight: make(map[AS]*bfsFlight),
	}
}

// distances returns the full distance vector from src, computing the BFS
// at most once per source across all concurrent callers.
func (o *DistanceOracle) distances(src AS) map[AS]int {
	o.mu.RLock()
	d, ok := o.cache[src]
	o.mu.RUnlock()
	if ok {
		return d
	}
	o.mu.Lock()
	if d, ok := o.cache[src]; ok {
		o.mu.Unlock()
		return d
	}
	if f, ok := o.inflight[src]; ok {
		o.mu.Unlock()
		<-f.done
		return f.dists
	}
	f := &bfsFlight{done: make(chan struct{})}
	o.inflight[src] = f
	o.mu.Unlock()

	f.dists = valleyFreeBFS(o.g, src)
	o.bfsRuns.Add(1)

	o.mu.Lock()
	o.cache[src] = f.dists
	delete(o.inflight, src)
	o.mu.Unlock()
	close(f.done)
	return f.dists
}

// HopDistance returns the length (in AS hops) of the shortest valley-free
// route from src to dst, and false when no legal route exists.
func (o *DistanceOracle) HopDistance(src, dst AS) (int, bool) {
	if src == dst {
		return 0, true
	}
	d, ok := o.distances(src)[dst]
	return d, ok
}

// meanPairwiseParallelCutoff is the source count below which a warm-cache
// pairwise sweep is cheaper serial than fanned out: each fully cached
// source costs only map lookups, so goroutine startup would dominate.
const meanPairwiseParallelCutoff = 64

// MeanPairwiseDistance returns the average valley-free hop distance over
// all unordered pairs of the given ASes, skipping unreachable pairs. The
// second return is the number of reachable pairs. This implements the
// inter-AS distribution DT of Eq. 4.
//
// Sources are independent, so the per-source BFS fan-out runs on the
// parallel worker pool whenever there is real work: more than one source
// still needs its BFS, or the pair sweep itself is large. Hop distances
// are small integers, so the float64 pair sum is exact and the result is
// bit-identical to the serial loop regardless of scheduling.
func (o *DistanceOracle) MeanPairwiseDistance(ases []AS) (float64, int) {
	n := len(ases)
	if n < 2 {
		return 0, 0
	}
	if n < meanPairwiseParallelCutoff && o.uncached(ases[:n-1]) < 2 {
		var sum float64
		var pairs int
		for i := 0; i < n-1; i++ {
			s, c := o.pairRow(ases, i)
			sum += s
			pairs += c
		}
		return finishMean(sum, pairs)
	}
	sums := make([]float64, n-1)
	counts := make([]int, n-1)
	parallel.ForEach(n-1, 0, func(i int) error {
		sums[i], counts[i] = o.pairRow(ases, i)
		return nil
	})
	var sum float64
	var pairs int
	for i := range sums {
		sum += sums[i]
		pairs += counts[i]
	}
	return finishMean(sum, pairs)
}

// pairRow sums the distances from ases[i] to every later source.
func (o *DistanceOracle) pairRow(ases []AS, i int) (sum float64, pairs int) {
	dists := o.distances(ases[i])
	for j := i + 1; j < len(ases); j++ {
		if ases[j] == ases[i] {
			pairs++ // zero-distance pair
			continue
		}
		if d, ok := dists[ases[j]]; ok {
			sum += float64(d)
			pairs++
		}
	}
	return sum, pairs
}

func finishMean(sum float64, pairs int) (float64, int) {
	if pairs == 0 {
		return 0, 0
	}
	return sum / float64(pairs), pairs
}

// uncached counts how many of the given sources have no cached distance
// vector yet.
func (o *DistanceOracle) uncached(srcs []AS) int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	n := 0
	for _, src := range srcs {
		if _, ok := o.cache[src]; !ok {
			n++
		}
	}
	return n
}

// valleyFreeBFS computes shortest valley-free distances from src to every
// reachable AS.
func valleyFreeBFS(g *Graph, src AS) map[AS]int {
	type state struct {
		as AS
		ph phase
	}
	dist := make(map[AS]int)
	visited := make(map[state]bool)
	queue := []state{{as: src, ph: phaseUp}}
	visited[queue[0]] = true
	depth := 0
	for len(queue) > 0 {
		depth++
		var next []state
		for _, s := range queue {
			for _, nb := range g.Neighbors(s.as) {
				rel := g.Rel(s.as, nb)
				nph, ok := transition(s.ph, rel)
				if !ok {
					continue
				}
				ns := state{as: nb, ph: nph}
				if visited[ns] {
					continue
				}
				visited[ns] = true
				if _, seen := dist[nb]; !seen {
					dist[nb] = depth
				}
				next = append(next, ns)
			}
		}
		queue = next
	}
	return dist
}

// transition returns the next routing phase after traversing a link with
// the given relationship, or false when the move would create a valley.
func transition(ph phase, rel Relationship) (phase, bool) {
	switch ph {
	case phaseUp:
		switch rel {
		case RelCustomerToProvider:
			return phaseUp, true
		case RelPeer, RelSibling:
			return phasePeered, true
		case RelProviderToCustomer:
			return phaseDown, true
		}
	case phasePeered, phaseDown:
		if rel == RelProviderToCustomer {
			return phaseDown, true
		}
	}
	return 0, false
}

// vfState is a BFS state: an AS reached in a particular routing phase.
type vfState struct {
	as AS
	ph phase
}

// ValleyFreePath returns one shortest valley-free route from src to dst
// (inclusive of both endpoints), and false when none exists.
func ValleyFreePath(g *Graph, src, dst AS) ([]AS, bool) {
	if src == dst {
		return []AS{src}, true
	}
	parent := make(map[vfState]vfState)
	visited := map[vfState]bool{{as: src, ph: phaseUp}: true}
	queue := []vfState{{as: src, ph: phaseUp}}
	for len(queue) > 0 {
		var next []vfState
		for _, s := range queue {
			for _, nb := range g.Neighbors(s.as) {
				nph, ok := transition(s.ph, g.Rel(s.as, nb))
				if !ok {
					continue
				}
				ns := vfState{as: nb, ph: nph}
				if visited[ns] {
					continue
				}
				visited[ns] = true
				parent[ns] = s
				if nb == dst {
					return reconstruct(parent, ns), true
				}
				next = append(next, ns)
			}
		}
		queue = next
	}
	return nil, false
}

func reconstruct(parent map[vfState]vfState, end vfState) []AS {
	var rev []AS
	cur := end
	for {
		rev = append(rev, cur.as)
		p, ok := parent[cur]
		if !ok {
			break
		}
		cur = p
	}
	out := make([]AS, len(rev))
	for i, as := range rev {
		out[len(rev)-1-i] = as
	}
	return out
}
