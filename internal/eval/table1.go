package eval

import (
	"repro/internal/features"
)

// Table1Row pairs the measured activity level of one family with the
// paper's reported values.
type Table1Row struct {
	Family          string
	AvgPerDay       float64
	ActiveDays      int
	CV              float64
	PaperAvgPerDay  float64
	PaperActiveDays int
	PaperCV         float64
}

// paperTable1 holds the values reported in Table I of the paper.
var paperTable1 = map[string][3]float64{
	"AldiBot":     {1.29, 204, 0.77},
	"BlackEnergy": {5.93, 220, 0.82},
	"Colddeath":   {7.52, 118, 1.53},
	"Darkshell":   {9.98, 210, 1.14},
	"DDoSer":      {2.13, 211, 0.84},
	"DirtJumper":  {144.30, 220, 0.77},
	"Nitol":       {2.91, 208, 1.05},
	"Optima":      {3.19, 220, 0.90},
	"Pandora":     {40.08, 165, 1.27},
	"YZF":         {6.28, 72, 1.41},
}

// RunTable1 computes Table I (activity level of bots) on the generated
// dataset and attaches the paper's reference values.
func RunTable1(env *Env) []Table1Row {
	levels := features.ActivityLevels(env.Dataset)
	rows := make([]Table1Row, 0, len(levels))
	for _, l := range levels {
		r := Table1Row{
			Family:     l.Family,
			AvgPerDay:  l.AvgPerDay,
			ActiveDays: l.ActiveDays,
			CV:         l.CV,
		}
		if p, ok := paperTable1[l.Family]; ok {
			r.PaperAvgPerDay = p[0]
			r.PaperActiveDays = int(p[1])
			r.PaperCV = p[2]
		}
		rows = append(rows, r)
	}
	return rows
}

// Table2Row documents one modeling variable (Table II of the paper).
type Table2Row struct {
	Variable    string
	Description string
}

// RunTable2 returns the paper's variable inventory (Table II), wired to
// the code that realizes each variable.
func RunTable2() []Table2Row {
	return []Table2Row{
		{Variable: "A^f_{t_i}", Description: "Botnet activity (attacks/day so far) — features.AFSeries, Eq. 1"},
		{Variable: "A^b_{t_i}", Description: "Normalized currently-active bots — features.ABSeries, Eq. 2"},
		{Variable: "A^s_{t_i}", Description: "Source-distribution compactness — features.SourceDist, Eqs. 3-4"},
		{Variable: "T_l", Description: "Target geolocation (ASN) — trace.Attack.TargetAS"},
		{Variable: "T^d_j", Description: "Attack duration (s) — trace.Attack.DurationSec"},
		{Variable: "T^ts_j", Description: "Attack timestamp (day, hour) — trace.Attack.Day/Hour"},
		{Variable: "(D^b_{t_i})_j", Description: "Predicted magnitude — core.Temporal/Spatiotemporal"},
		{Variable: "(D^d_{t_i})_j", Description: "Predicted remaining duration — core.Spatial/Spatiotemporal"},
		{Variable: "D^ts_{j+1}", Description: "Predicted next-attack timestamp — core.Spatiotemporal"},
	}
}
