package eval

import (
	"fmt"
	"time"

	"repro/internal/sdn"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Figure5Result summarizes both §VII-B use cases.
type Figure5Result struct {
	// Figure 5(a): AS-based filtering of a family's test-window attack
	// traffic, with rules from (i) the model's predicted source
	// distribution vs (ii) a reactive snapshot of the previous attack.
	Family              string
	PredictiveFiltering sdn.FilterMetrics
	ReactiveFiltering   sdn.FilterMetrics

	// Figure 5(b): middlebox reordering ahead of attacks. Proactive uses
	// the predicted launch window; reactive reorders at detection time.
	Attacks            int
	ProactiveProtected float64 // fraction of attacks met firewall-first
	ReactiveProtected  float64
	// MeanExposure is the average unprotected time (seconds) at attack
	// onset per strategy.
	ProactiveExposureSec float64
	ReactiveExposureSec  float64
}

// Figure5Config tunes the use-case simulation.
type Figure5Config struct {
	Family string // default: the most active family
	// Coverage is the predicted-share mass the filter rules must cover.
	Coverage float64 // default 0.9
	// DetectionDelay is how long reactive defenses take to notice an
	// attack. Default 120 s.
	DetectionDelay time.Duration
	// ReconfigureDelay is the SDN reconfiguration latency. Default 30 s.
	ReconfigureDelay time.Duration
	// HourSlack is how many hours before the predicted launch hour the
	// proactive reorder is requested. Default 2.
	HourSlack float64
}

func (c Figure5Config) withDefaults() Figure5Config {
	if c.Coverage <= 0 || c.Coverage > 1 {
		c.Coverage = 0.9
	}
	if c.DetectionDelay <= 0 {
		c.DetectionDelay = 2 * time.Minute
	}
	if c.ReconfigureDelay <= 0 {
		c.ReconfigureDelay = 30 * time.Second
	}
	if c.HourSlack <= 0 {
		c.HourSlack = 2
	}
	return c
}

// RunFigure5 exercises both use cases of §VII-B on the generated dataset.
func RunFigure5(env *Env, cfg Figure5Config) (*Figure5Result, error) {
	cfg = cfg.withDefaults()
	fam := cfg.Family
	if fam == "" {
		fams := env.Dataset.Families()
		if len(fams) == 0 {
			return nil, fmt.Errorf("eval: figure 5: empty dataset")
		}
		fam = fams[0]
	}
	attacks := env.Dataset.ByFamily(fam)
	if len(attacks) < 30 {
		return nil, fmt.Errorf("eval: figure 5: family %s has only %d attacks", fam, len(attacks))
	}
	nTrain := int(0.8 * float64(len(attacks)))
	train, test := attacks[:nTrain], attacks[nTrain:]
	res := &Figure5Result{Family: fam}

	if err := runFilteringUseCase(env, cfg, train, test, res); err != nil {
		return nil, err
	}
	runMiddleboxUseCase(env, cfg, train, test, res)
	return res, nil
}

// runFilteringUseCase implements Figure 5(a). The predictive controller
// installs divert rules from the source distribution predicted on the
// training window; the reactive controller only knows the sources of the
// single most recent attack. Both are evaluated on all test-window attack
// flows plus background benign traffic.
func runFilteringUseCase(env *Env, cfg Figure5Config, train, test []trace.Attack, res *Figure5Result) error {
	// Predicted distribution: per-source-AS mean share over the recent
	// training window (the temporal model's A^s-style aggregate). Using
	// the trailing quarter captures pool churn.
	tail := train[3*len(train)/4:]
	agg := env.SD.AggregateShares(tail)
	pred := make([]sdn.PredictedShare, len(agg))
	for i, s := range agg {
		pred[i] = sdn.PredictedShare{AS: s.AS, Share: s.Share}
	}
	predictive := sdn.NewController()
	if _, err := predictive.InstallFilteringRules(pred, cfg.Coverage); err != nil {
		return fmt.Errorf("eval: figure 5a: %w", err)
	}
	// Reactive: rules from the last training attack only.
	reactive := sdn.NewController()
	last := train[len(train)-1]
	lastShares := env.SD.Shares(&last)
	lastPred := make([]sdn.PredictedShare, len(lastShares))
	for i, s := range lastShares {
		lastPred[i] = sdn.PredictedShare{AS: s.AS, Share: s.Share}
	}
	if _, err := reactive.InstallFilteringRules(lastPred, cfg.Coverage); err != nil {
		return fmt.Errorf("eval: figure 5a: %w", err)
	}

	// Build the test flow set: one malicious flow per (attack, source AS)
	// weighted by bot count, plus benign background from every stub AS.
	var flows []sdn.Flow
	for i := range test {
		a := &test[i]
		for _, sh := range env.SD.Shares(a) {
			flows = append(flows, sdn.Flow{
				SrcAS:     sh.AS,
				DstIP:     a.TargetIP,
				PPS:       sh.Share * float64(a.Magnitude()) * 100,
				Malicious: true,
			})
		}
	}
	s := stats.NewSampler(env.Cfg.Seed + 0xF5)
	for _, as := range env.Topo.AllASes() {
		flows = append(flows, sdn.Flow{
			SrcAS: as,
			PPS:   50 + 100*s.Float64(),
		})
	}
	res.PredictiveFiltering = predictive.EvaluateFiltering(flows)
	res.ReactiveFiltering = reactive.EvaluateFiltering(flows)
	return nil
}

// runMiddleboxUseCase implements Figure 5(b): the proactive strategy
// reorders the chain ahead of the predicted daily launch window; the
// reactive one reorders only once the attack is detected.
func runMiddleboxUseCase(env *Env, cfg Figure5Config, train, test []trace.Attack, res *Figure5Result) {
	// Predicted launch hour: circular mean of training launch hours (the
	// temporal model's hour prediction converges to this for a stable
	// diurnal family).
	predHour := circularMeanHour(train)

	var proProtected, reProtected int
	var proExposure, reExposure float64
	for i := range test {
		a := &test[i]
		day := a.Start.Truncate(24 * time.Hour)
		// Proactive: request firewall-first HourSlack hours before the
		// predicted hour each day.
		pro := sdn.NewChain(cfg.ReconfigureDelay)
		reqAt := day.Add(time.Duration((predHour - cfg.HourSlack) * float64(time.Hour)))
		pro.RequestReorder(reqAt, []sdn.MiddleboxKind{sdn.Firewall, sdn.LoadBalancer})
		pro.AdvanceTo(a.Start)
		if pro.FirewallFirst() {
			proProtected++
		} else {
			// Exposure until the (late) reorder completes.
			completion := reqAt.Add(cfg.ReconfigureDelay)
			proExposure += completion.Sub(a.Start).Seconds()
		}

		// Reactive: reorder requested at detection time.
		re := sdn.NewChain(cfg.ReconfigureDelay)
		detectAt := a.Start.Add(cfg.DetectionDelay)
		re.RequestReorder(detectAt, []sdn.MiddleboxKind{sdn.Firewall, sdn.LoadBalancer})
		re.AdvanceTo(a.Start)
		if re.FirewallFirst() {
			reProtected++
		} else {
			reExposure += (cfg.DetectionDelay + cfg.ReconfigureDelay).Seconds()
		}
	}
	n := len(test)
	res.Attacks = n
	if n > 0 {
		res.ProactiveProtected = float64(proProtected) / float64(n)
		res.ReactiveProtected = float64(reProtected) / float64(n)
		res.ProactiveExposureSec = proExposure / float64(n)
		res.ReactiveExposureSec = reExposure / float64(n)
	}
}

func circularMeanHour(attacks []trace.Attack) float64 {
	var sinSum, cosSum float64
	for i := range attacks {
		h := float64(attacks[i].Hour())
		sinSum += sinTurn(h / 24)
		cosSum += cosTurn(h / 24)
	}
	hour := atan2Turn(sinSum, cosSum) * 24
	if hour < 0 {
		hour += 24
	}
	return hour
}
