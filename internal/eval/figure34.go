package eval

import (
	"errors"
	"sort"
	"time"

	"repro/internal/astopo"
	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Model names used as map keys in the Figure 3/4 results.
const (
	ModelTemporal       = "temporal"
	ModelSpatial        = "spatial"
	ModelSpatiotemporal = "spatiotemporal"
)

// Figure34Result carries everything Figures 3 and 4 display: per-model
// predicted-hour and predicted-day distributions against ground truth
// (Figure 3), per-model error distributions, and the RMSE comparison the
// paper reports in §VI-B (Figure 4).
type Figure34Result struct {
	// N is the number of target-specific next-attack predictions.
	N int
	// HourRMSE / DayRMSE per model (paper: hour 5.0 / 3.82 / 1.85 for
	// spatial / temporal / spatiotemporal; day 5.17 / 2.72 for spatial /
	// spatiotemporal).
	HourRMSE map[string]float64
	DayRMSE  map[string]float64
	// Predicted distributions (Figure 3): 24 hour bins, 31 day bins.
	HourHist map[string][]int
	DayHist  map[string][]int
	// Ground-truth distributions.
	TruthHourHist []int
	TruthDayHist  []int
	// Raw signed errors per model (Figure 4).
	HourErrors map[string][]float64
	DayErrors  map[string][]float64
	// HourKS / DayKS are the two-sample Kolmogorov–Smirnov distances
	// between each model's predicted distribution and the ground truth —
	// a quantitative version of Figure 3's "whose histogram sits closest".
	HourKS map[string]float64
	DayKS  map[string]float64
	// Diagnostics: RMSE of trivially predicting the target's previous
	// hour/day, and the hour-tree shape.
	PrevHourRMSE   float64
	PrevDayRMSE    float64
	HourTreeLeaves int
}

// ctxKey identifies a (family, victim) pair: the victim observes labeled
// attacks, so its context is per attacking family.
type ctxKey struct {
	family string
	ip     astopo.IPv4
}

// targetState tracks per-victim context during the walk-forward.
type targetState struct {
	lastStart time.Time
	lastHour  float64
	lastDay   float64
	magSum    float64
	magN      int
	// gapEMA is an exponential moving average of the revisit gap, the
	// victim-side estimate of the family's per-target cadence.
	gapEMA float64
}

// stSample extends core.STSample with bookkeeping for the experiment.
type stSample struct {
	core.STSample
	target astopo.IPv4
	as     astopo.AS
	order  int
}

// Figure34Config tunes the experiment.
type Figure34Config struct {
	// FitFrac is the fraction of the dataset used to fit the temporal and
	// spatial component models (default 0.6); the next stretch up to
	// TestFrac provides regression-tree training samples; the remainder
	// is evaluated.
	FitFrac  float64
	TestFrac float64
	// MinFamilyTrain / MinASTrain gate component-model fitting.
	MinFamilyTrain int
	MinASTrain     int
	// LocalHistory / RecentHistory reproduce the paper's two ten-attack
	// history groups per target (only used when PerTargetTrees is set).
	LocalHistory  int
	RecentHistory int
	// PerTargetTrees grows one model tree per target from its two history
	// groups (the paper's literal §VI-B protocol). The default pools all
	// training samples into global model trees, which is statistically
	// stronger at laptop scale and preserves the paper's model ordering.
	PerTargetTrees bool
	// MaxSeriesLen caps the series length fed to the NAR grid search to
	// bound training cost on very active networks (default 400).
	MaxSeriesLen int
}

func (c Figure34Config) withDefaults() Figure34Config {
	if c.FitFrac <= 0 || c.FitFrac >= 1 {
		c.FitFrac = 0.6
	}
	if c.TestFrac <= c.FitFrac || c.TestFrac >= 1 {
		c.TestFrac = 0.8
	}
	if c.MinFamilyTrain < 3 {
		c.MinFamilyTrain = 12
	}
	if c.MinASTrain < 3 {
		c.MinASTrain = 12
	}
	if c.LocalHistory < 1 {
		c.LocalHistory = 10
	}
	if c.RecentHistory < 1 {
		c.RecentHistory = 10
	}
	if c.MaxSeriesLen < 1 {
		c.MaxSeriesLen = 400
	}
	return c
}

// RunFigure34 reproduces the spatiotemporal experiment of §VI-B: fit the
// temporal model per family and the spatial model per target network on
// the fit window; walk forward recording each component model's
// predictions per attack; train a regression model tree per target from
// its history (plus ten AS-local and ten recent attacks, as the paper
// assumes the victim can observe); and evaluate next-attack hour and day
// predictions on the test window for all three models.
func RunFigure34(env *Env, cfg Figure34Config) (*Figure34Result, error) {
	cfg = cfg.withDefaults()
	samples, testStart, err := collectSamples(env, cfg)
	if err != nil {
		return nil, err
	}
	return assembleFigure34(samples, testStart, cfg)
}

// collectSamples fits the component models on the fit window and walks
// forward over the remainder, recording per-attack features and labels.
func collectSamples(env *Env, cfg Figure34Config) ([]stSample, int, error) {
	ds := env.Dataset
	n := ds.Len()
	if n < 100 {
		return nil, 0, errors.New("eval: figure 3/4 needs at least 100 attacks")
	}
	fitEnd := int(cfg.FitFrac * float64(n))
	testStart := int(cfg.TestFrac * float64(n))

	fit := &trace.Dataset{Attacks: ds.Attacks[:fitEnd]}

	// Component models. Per-family and per-AS fits are independent (they
	// read disjoint training slices and every fit is internally seeded), so
	// both loops fan out on the worker pool; infeasible fits come back nil,
	// exactly like the serial skip.
	fams := fit.Families()
	tmods, _ := parallel.Map(len(fams), 0, func(i int) (*core.Temporal, error) {
		attacks := fit.ByFamily(fams[i])
		if len(attacks) < cfg.MinFamilyTrain {
			return nil, nil
		}
		m, err := core.FitTemporal(fams[i], attacks, core.TemporalConfig{})
		if err != nil {
			return nil, nil
		}
		return m, nil
	})
	temporal := make(map[string]*core.Temporal)
	for i, m := range tmods {
		if m != nil {
			temporal[fams[i]] = m
		}
	}
	spCfg := core.SpatialConfig{
		Delays: []int{2, 4},
		Hidden: []int{4, 8},
		Seed:   env.Cfg.Seed + 7,
		Train:  nn.TrainConfig{Epochs: 200},
	}
	byAS := fit.ByTargetAS()
	ases := make([]astopo.AS, 0, len(byAS))
	for as := range byAS {
		ases = append(ases, as)
	}
	sort.Slice(ases, func(i, j int) bool { return ases[i] < ases[j] })
	smods, _ := parallel.Map(len(ases), 0, func(i int) (*core.Spatial, error) {
		attacks := byAS[ases[i]]
		if len(attacks) < cfg.MinASTrain {
			return nil, nil
		}
		if len(attacks) > cfg.MaxSeriesLen {
			attacks = attacks[len(attacks)-cfg.MaxSeriesLen:]
		}
		m, err := core.FitSpatial(ases[i], attacks, spCfg)
		if err != nil {
			return nil, nil
		}
		return m, nil
	})
	spatial := make(map[astopo.AS]*core.Spatial)
	for i, m := range smods {
		if m != nil {
			spatial[ases[i]] = m
		}
	}

	// Target context from the fit window.
	targets := make(map[ctxKey]*targetState)
	for i := 0; i < fitEnd; i++ {
		observeTarget(targets, &ds.Attacks[i])
	}

	// Walk forward, recording component predictions before observing.
	var samples []stSample
	for i := fitEnd; i < n; i++ {
		a := &ds.Attacks[i]
		fm := temporal[a.Family]
		sm := spatial[a.TargetAS]
		if fm == nil || sm == nil {
			observeTarget(targets, a)
			continue
		}
		f := core.STFeatures{
			TmpHour:     fm.PredictHour(),
			TmpDay:      fm.PredictDay(),
			TmpInterval: fm.PredictInterval(),
			TmpMag:      fm.PredictMagnitude(),
			SpaHour:     sm.PredictHour(),
			SpaDay:      sm.PredictDay(),
			SpaDur:      sm.PredictDuration(),
			TargetAS:    float64(a.TargetAS),
		}
		if ts := targets[ctxKey{family: a.Family, ip: a.TargetIP}]; ts != nil {
			f.PrevHour = ts.lastHour
			f.PrevDay = ts.lastDay
			f.PrevGapSec = a.Start.Sub(ts.lastStart).Seconds()
			if ts.magN > 0 {
				f.AvgMag = ts.magSum / float64(ts.magN)
			}
			if ts.gapEMA > 0 {
				due := ts.lastStart.Add(time.Duration(ts.gapEMA * float64(time.Second)))
				f.NextDueDay = float64(due.Day())
			} else {
				f.NextDueDay = ts.lastDay
			}
		}
		samples = append(samples, stSample{
			STSample: core.STSample{
				F:    f,
				Hour: float64(a.Hour()),
				Day:  float64(a.Day()),
				Dur:  a.DurationSec,
				Mag:  float64(a.Magnitude()),
			},
			target: a.TargetIP,
			as:     a.TargetAS,
			order:  i,
		})
		fm.Observe(a)
		sm.Observe(a)
		observeTarget(targets, a)
	}
	return samples, testStart, nil
}

// fitGlobalTrees pools every training sample into one set of model trees.
func fitGlobalTrees(trainSamples []stSample) *core.Spatiotemporal {
	rows := make([]core.STSample, len(trainSamples))
	for i := range trainSamples {
		rows[i] = trainSamples[i].STSample
	}
	st, err := core.FitSpatiotemporal(rows, core.STConfig{})
	if err != nil {
		return nil
	}
	return st
}

func observeTarget(targets map[ctxKey]*targetState, a *trace.Attack) {
	key := ctxKey{family: a.Family, ip: a.TargetIP}
	ts := targets[key]
	if ts == nil {
		ts = &targetState{}
		targets[key] = ts
	}
	if !ts.lastStart.IsZero() {
		gap := a.Start.Sub(ts.lastStart).Seconds()
		if gap > 0 {
			if ts.gapEMA == 0 {
				ts.gapEMA = gap
			} else {
				ts.gapEMA = 0.5*ts.gapEMA + 0.5*gap
			}
		}
	}
	ts.lastStart = a.Start
	ts.lastHour = float64(a.Hour())
	ts.lastDay = float64(a.Day())
	ts.magSum += float64(a.Magnitude())
	ts.magN++
}

// assembleFigure34 trains per-target model trees on the pre-test samples
// and evaluates all three models on the test samples.
func assembleFigure34(samples []stSample, testStart int, cfg Figure34Config) (*Figure34Result, error) {
	var trainSamples, testSamples []stSample
	for _, s := range samples {
		if s.order < testStart {
			trainSamples = append(trainSamples, s)
		} else {
			testSamples = append(testSamples, s)
		}
	}
	if len(testSamples) == 0 || len(trainSamples) == 0 {
		return nil, errors.New("eval: figure 3/4: insufficient samples")
	}
	byTarget := make(map[astopo.IPv4][]int)
	byASIdx := make(map[astopo.AS][]int)
	for i := range trainSamples {
		byTarget[trainSamples[i].target] = append(byTarget[trainSamples[i].target], i)
		byASIdx[trainSamples[i].as] = append(byASIdx[trainSamples[i].as], i)
	}

	res := &Figure34Result{
		HourRMSE:      make(map[string]float64),
		DayRMSE:       make(map[string]float64),
		HourHist:      make(map[string][]int),
		DayHist:       make(map[string][]int),
		HourKS:        make(map[string]float64),
		DayKS:         make(map[string]float64),
		HourErrors:    make(map[string][]float64),
		DayErrors:     make(map[string][]float64),
		TruthHourHist: make([]int, 24),
		TruthDayHist:  make([]int, 31),
	}
	preds := map[string][]float64{}    // model -> hour predictions
	dayPreds := map[string][]float64{} // model -> day predictions
	var hourTruth, dayTruth []float64

	var global *core.Spatiotemporal
	if !cfg.PerTargetTrees {
		global = fitGlobalTrees(trainSamples)
		if global == nil {
			return nil, errors.New("eval: figure 3/4: global tree fit failed")
		}
	}
	trees := make(map[astopo.IPv4]*core.Spatiotemporal)
	for _, s := range testSamples {
		st := global
		if cfg.PerTargetTrees {
			var ok bool
			st, ok = trees[s.target]
			if !ok {
				st = fitTargetTree(s.target, s.as, trainSamples, byTarget, byASIdx, cfg)
				trees[s.target] = st
			}
		}
		if st == nil {
			continue
		}
		tmpH, spaH, stH := s.F.TmpHour, s.F.SpaHour, st.PredictHour(&s.F)
		tmpD, spaD, stD := s.F.TmpDay, s.F.SpaDay, st.PredictDay(&s.F)
		preds[ModelTemporal] = append(preds[ModelTemporal], tmpH)
		preds[ModelSpatial] = append(preds[ModelSpatial], spaH)
		preds[ModelSpatiotemporal] = append(preds[ModelSpatiotemporal], stH)
		dayPreds[ModelTemporal] = append(dayPreds[ModelTemporal], tmpD)
		dayPreds[ModelSpatial] = append(dayPreds[ModelSpatial], spaD)
		dayPreds[ModelSpatiotemporal] = append(dayPreds[ModelSpatiotemporal], stD)
		hourTruth = append(hourTruth, s.Hour)
		dayTruth = append(dayTruth, s.Day)
	}
	if len(hourTruth) == 0 {
		return nil, errors.New("eval: figure 3/4: no target had enough history")
	}
	res.N = len(hourTruth)
	if global != nil {
		res.HourTreeLeaves = global.Hour.Leaves()
	}
	var prevH, prevD []float64
	for _, s := range testSamples {
		prevH = append(prevH, s.F.PrevHour)
		prevD = append(prevD, s.F.PrevDay)
	}
	if len(prevH) == len(hourTruth) {
		res.PrevHourRMSE, _ = stats.RMSE(prevH, hourTruth)
		res.PrevDayRMSE, _ = stats.RMSE(prevD, dayTruth)
	}
	res.TruthHourHist = stats.HistogramInts(hourTruth, 0, 23)
	res.TruthDayHist = stats.HistogramInts(dayTruth, 1, 31)
	for _, model := range []string{ModelTemporal, ModelSpatial, ModelSpatiotemporal} {
		hr, err := stats.RMSE(preds[model], hourTruth)
		if err != nil {
			return nil, err
		}
		dr, err := stats.RMSE(dayPreds[model], dayTruth)
		if err != nil {
			return nil, err
		}
		res.HourRMSE[model] = hr
		res.DayRMSE[model] = dr
		res.HourHist[model] = stats.HistogramInts(preds[model], 0, 23)
		res.DayHist[model] = stats.HistogramInts(dayPreds[model], 1, 31)
		res.HourKS[model] = stats.KSStatistic(preds[model], hourTruth)
		res.DayKS[model] = stats.KSStatistic(dayPreds[model], dayTruth)
		hErr := make([]float64, len(hourTruth))
		dErr := make([]float64, len(dayTruth))
		for i := range hourTruth {
			hErr[i] = preds[model][i] - hourTruth[i]
			dErr[i] = dayPreds[model][i] - dayTruth[i]
		}
		res.HourErrors[model] = hErr
		res.DayErrors[model] = dErr
	}
	return res, nil
}

// fitTargetTree assembles the paper's two history groups for one target —
// its own and AS-local attacks, plus recent attacks anywhere — and grows
// the spatiotemporal model tree. Returns nil when history is insufficient.
func fitTargetTree(tgt astopo.IPv4, as astopo.AS, trainSamples []stSample,
	byTarget map[astopo.IPv4][]int, byASIdx map[astopo.AS][]int, cfg Figure34Config) *core.Spatiotemporal {

	idxSet := make(map[int]bool)
	var rows []core.STSample
	add := func(idx int) {
		if !idxSet[idx] {
			idxSet[idx] = true
			rows = append(rows, trainSamples[idx].STSample)
		}
	}
	// Group 1: AS-local history (includes the target's own attacks).
	local := byASIdx[as]
	own := byTarget[tgt]
	for _, i := range own {
		add(i)
	}
	for k := len(local) - 1; k >= 0 && len(rows) < len(own)+cfg.LocalHistory; k-- {
		add(local[k])
	}
	// Group 2: recent attacks anywhere.
	for k := len(trainSamples) - 1; k >= 0 && len(rows) < len(own)+cfg.LocalHistory+cfg.RecentHistory; k-- {
		add(k)
	}
	if len(rows) < 8 {
		return nil
	}
	st, err := core.FitSpatiotemporal(rows, core.STConfig{})
	if err != nil {
		return nil
	}
	return st
}
