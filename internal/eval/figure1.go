package eval

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/parallel"
	"repro/internal/timeseries"
)

// Figure1Families are the three most active families the paper plots.
var Figure1Families = []string{"BlackEnergy", "DirtJumper", "Pandora"}

// Figure1Series is the reproduction of one subfigure of Figure 1: the
// ground-truth attack magnitudes of the test window, the temporal model's
// one-step predictions, and the per-step errors.
type Figure1Series struct {
	Family string
	Truth  []float64
	Pred   []float64
	Errors []float64
	RMSE   float64
	// NaiveRMSE is the Always Same baseline on the same split, for
	// context on prediction difficulty.
	NaiveRMSE float64
	// GoFP is the Ljung–Box p-value of the fitted model's residuals
	// (§III-C's goodness-of-fit axis): large means the ARIMA captured the
	// series' autocorrelation structure.
	GoFP float64
}

// RunFigure1 reproduces Figure 1 (prediction of attacking magnitudes) for
// the given families (defaults to the paper's three) with an 80/20
// chronological split and walk-forward one-step prediction. Families are
// evaluated on the parallel worker pool — each walk-forward owns its
// models, and results come back in family order.
func RunFigure1(env *Env, families []string) ([]Figure1Series, error) {
	if len(families) == 0 {
		families = Figure1Families
	}
	return parallel.Map(len(families), 0, func(i int) (Figure1Series, error) {
		fam := families[i]
		attacks := env.Dataset.ByFamily(fam)
		series := features.MagnitudeSeries(attacks)
		if len(series) < 30 {
			return Figure1Series{}, fmt.Errorf("eval: figure 1: family %s has only %d attacks", fam, len(series))
		}
		train, test := timeseries.SplitFrac(series, 0.8)
		pred := &core.ARIMAPredictor{}
		preds, rmse, err := core.WalkForward(pred, train, test)
		if err != nil {
			return Figure1Series{}, fmt.Errorf("eval: figure 1: %s: %w", fam, err)
		}
		_, gofP := pred.GoodnessOfFit(12)
		_, naiveRMSE, err := core.WalkForward(&core.AlwaysSame{}, train, test)
		if err != nil {
			return Figure1Series{}, fmt.Errorf("eval: figure 1: %s baseline: %w", fam, err)
		}
		errs := make([]float64, len(test))
		for i := range test {
			errs[i] = preds[i] - test[i]
		}
		return Figure1Series{
			Family: fam, Truth: test, Pred: preds, Errors: errs,
			RMSE: rmse, NaiveRMSE: naiveRMSE, GoFP: gofP,
		}, nil
	})
}
