package eval

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/parallel"
	"repro/internal/timeseries"
)

// Comparison feature names (§VII-A compares three features).
const (
	FeatureMagnitude  = "magnitude"
	FeatureDuration   = "duration"
	FeatureSourceDist = "source-dist"
)

// ComparisonRow is the RMSE of every predictor on one (family, feature)
// pair.
type ComparisonRow struct {
	Family  string
	Feature string
	// RMSE per predictor name: the paper's model (Temporal for magnitude
	// and source-dist, Spatial for duration) vs Always Same / Always Mean.
	RMSE map[string]float64
	// Winner is the predictor with the lowest RMSE.
	Winner string
}

// RunComparison reproduces the §VII-A comparison on the five most active
// families: the paper's temporal/spatial models against the Always Same
// and Always Mean baselines on bot magnitude, attack duration, and the
// source-distribution feature A^s.
//
// The (family, feature) walk-forwards are independent, so the job list is
// built serially (fixing the family order and the feature series) and then
// fanned out on the parallel worker pool. Every job owns its predictors
// and series copies, and rows come back in job order, so the output is
// identical to the serial loop.
func RunComparison(env *Env, nFamilies int) ([]ComparisonRow, error) {
	if nFamilies < 1 {
		nFamilies = 5
	}
	fams := env.Dataset.Families()
	if len(fams) > nFamilies {
		fams = fams[:nFamilies]
	}
	type job struct {
		fam, feat string
		series    []float64
	}
	var jobs []job
	for _, fam := range fams {
		attacks := env.Dataset.ByFamily(fam)
		if len(attacks) < 40 {
			continue
		}
		featureSeries := map[string][]float64{
			FeatureMagnitude:  features.MagnitudeSeries(attacks),
			FeatureDuration:   features.DurationSeries(attacks),
			FeatureSourceDist: env.SD.Series(attacks),
		}
		for _, feat := range []string{FeatureMagnitude, FeatureDuration, FeatureSourceDist} {
			jobs = append(jobs, job{fam: fam, feat: feat, series: featureSeries[feat]})
		}
	}
	rows, err := parallel.Map(len(jobs), 0, func(i int) (ComparisonRow, error) {
		j := jobs[i]
		train, test := timeseries.SplitFrac(j.series, 0.8)
		row := ComparisonRow{Family: j.fam, Feature: j.feat, RMSE: make(map[string]float64)}
		predictors := []core.SeriesPredictor{
			&core.ARIMAPredictor{},
			&core.NARPredictor{Delays: []int{2, 4}, Hidden: []int{4, 8}, Seed: env.Cfg.Seed + 3},
			&core.AlwaysSame{},
			&core.AlwaysMean{},
		}
		for _, p := range predictors {
			_, rmse, err := core.WalkForward(p, cloneSeries(train), test)
			if err != nil {
				return ComparisonRow{}, fmt.Errorf("eval: comparison %s/%s/%s: %w", j.fam, j.feat, p.Name(), err)
			}
			row.RMSE[p.Name()] = rmse
		}
		// The winner scan walks predictors in declaration order with a
		// strict comparison: RMSE ties resolve to the first-declared
		// predictor instead of whatever a map iteration happens to yield.
		for _, p := range predictors {
			name := p.Name()
			if row.Winner == "" || row.RMSE[name] < row.RMSE[row.Winner] {
				row.Winner = name
			}
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("eval: comparison: no family with enough attacks")
	}
	return rows, nil
}

// cloneSeries guards predictors that might mutate their training input.
func cloneSeries(xs []float64) []float64 {
	out := make([]float64, len(xs))
	copy(out, xs)
	return out
}
