package eval

import (
	"fmt"
	"math"
	"strings"
)

// Rendering helpers: text versions of the paper's figures for terminal
// output and EXPERIMENTS.md.

// sparkRunes are eight quantization levels for inline series plots.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a numeric series as a compact unicode strip,
// downsampling to at most width points (0 = no limit).
func Sparkline(xs []float64, width int) string {
	if len(xs) == 0 {
		return ""
	}
	if width > 0 && len(xs) > width {
		xs = downsample(xs, width)
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	span := hi - lo
	var b strings.Builder
	for _, x := range xs {
		idx := 0
		if span > 0 {
			idx = int((x - lo) / span * float64(len(sparkRunes)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkRunes) {
			idx = len(sparkRunes) - 1
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

func downsample(xs []float64, width int) []float64 {
	out := make([]float64, width)
	for i := 0; i < width; i++ {
		lo := i * len(xs) / width
		hi := (i + 1) * len(xs) / width
		if hi <= lo {
			hi = lo + 1
		}
		var s float64
		for _, v := range xs[lo:hi] {
			s += v
		}
		out[i] = s / float64(hi-lo)
	}
	return out
}

// BarChart renders labeled horizontal bars scaled to maxWidth characters.
func BarChart(labels []string, values []float64, maxWidth int) string {
	if len(labels) != len(values) || len(labels) == 0 {
		return ""
	}
	if maxWidth < 4 {
		maxWidth = 40
	}
	var max float64
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	labelWidth := 0
	for _, l := range labels {
		if len(l) > labelWidth {
			labelWidth = len(l)
		}
	}
	var b strings.Builder
	for i, l := range labels {
		n := 0
		if max > 0 {
			n = int(math.Round(values[i] / max * float64(maxWidth)))
		}
		fmt.Fprintf(&b, "%-*s |%s %.4g\n", labelWidth, l, strings.Repeat("#", n), values[i])
	}
	return b.String()
}

// HistString renders an integer histogram (e.g. hour-of-day counts) as a
// two-row label/spark display.
func HistString(counts []int, firstLabel int) string {
	xs := make([]float64, len(counts))
	for i, c := range counts {
		xs[i] = float64(c)
	}
	return fmt.Sprintf("[%d..%d] %s", firstLabel, firstLabel+len(counts)-1, Sparkline(xs, 0))
}
