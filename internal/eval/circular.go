package eval

import "math"

// Small circular-arithmetic helpers for hour-of-day statistics, expressed
// in turns (1 turn = a full day).

func sinTurn(t float64) float64 { return math.Sin(2 * math.Pi * t) }

func cosTurn(t float64) float64 { return math.Cos(2 * math.Pi * t) }

func atan2Turn(y, x float64) float64 { return math.Atan2(y, x) / (2 * math.Pi) }
