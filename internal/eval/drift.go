package eval

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/astopo"
	"repro/internal/botnet"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// DriftResult quantifies model adaptation to a botnet infrastructure
// takedown: mid-trace the family loses its primary home AS (the bots
// re-recruit elsewhere, §II-B's recruiting/dormancy dynamics), the
// walk-forward source-share prediction error spikes, and the model
// re-converges as updates arrive. Static models — the paper's critique of
// prior work — never recover.
type DriftResult struct {
	Family      string
	LostAS      astopo.AS
	TakedownIdx int // attack index of the takedown

	// Mean absolute share-prediction error before the takedown, at the
	// spike (the window right after), and after re-convergence.
	PreErr, SpikeErr, PostErr float64
	// RecoverySteps is how many attacks after the takedown the rolling
	// error needed to fall back under 2x the pre-takedown level (-1 if it
	// never did).
	RecoverySteps int
	// StaticPostErr is the error of a never-updated predictor (the mean
	// of the pre-takedown shares) over the post window, for contrast.
	StaticPostErr float64
}

// RunDrift builds a world with a takedown injected at 55% of the horizon
// for the most active family and measures walk-forward adaptation of the
// NAR share predictor for the lost AS.
func RunDrift(cfg Config) (*DriftResult, error) {
	cfg = cfg.withDefaults()
	topo, err := astopo.Synthesize(cfg.Topology)
	if err != nil {
		return nil, fmt.Errorf("eval: drift: %w", err)
	}
	profiles := botnet.ScaleProfiles(botnet.DefaultFamilies(), cfg.Scale)
	const famName = "DirtJumper" // most active; most data around the event
	day := cfg.HorizonDays * 55 / 100
	ds, err := botnet.Simulate(botnet.SimConfig{
		Families:    profiles,
		Topology:    topo,
		HorizonDays: cfg.HorizonDays,
		Takedowns:   []botnet.Takedown{{Family: famName, Day: day}},
		Seed:        cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("eval: drift: %w", err)
	}
	paths := topo.EmitRouteTable(cfg.Vantages, cfg.Seed+1)
	sd := &features.SourceDist{
		IPMap:  topo.IPMap,
		Oracle: astopo.NewDistanceOracle(astopo.InferRelationships(paths, astopo.InferConfig{})),
	}

	attacks := ds.ByFamily(famName)
	if len(attacks) < 200 {
		return nil, errors.New("eval: drift: family too small at this scale")
	}
	// The lost AS is the dominant pre-takedown source.
	cut := attacks[0].Start.AddDate(0, 0, day)
	var pre []int
	for i := range attacks {
		if attacks[i].Start.Before(cut) {
			pre = append(pre, i)
		}
	}
	if len(pre) < 100 || len(pre) > len(attacks)-50 {
		return nil, errors.New("eval: drift: takedown too close to an edge")
	}
	preAttacks := attacks[:len(pre)]
	top := sd.TopSourceASes(preAttacks, 1)
	if len(top) == 0 {
		return nil, errors.New("eval: drift: no mapped sources")
	}
	lost := top[0]
	series := sd.ShareSeries(attacks, lost)
	tdIdx := len(pre)

	// Walk-forward NAR fitted on the first half of the pre window and
	// periodically re-estimated on a trailing window — weight updates are
	// what lets the model follow a regime change (a fixed network can
	// only interpolate the regimes it was trained on).
	const (
		refitEvery  = 50
		refitWindow = 300
	)
	fitLen := tdIdx / 2
	pred := &core.NARPredictor{Delays: []int{2, 4}, Hidden: []int{4, 8}, Seed: cfg.Seed + 17}
	if err := pred.Fit(series[:fitLen]); err != nil {
		return nil, fmt.Errorf("eval: drift: %w", err)
	}
	// The refit boundaries — every refitEvery-th step — and their trailing
	// training windows are known up front, and each refit reads only the
	// immutable series with its own per-step seed. So every refit model is
	// trained on the worker pool before the walk; the walk itself stays
	// serial and swaps in the prefit models at the same boundaries, keeping
	// the old model where the fit failed (a degenerate window), exactly as
	// the inline refit did.
	walkLen := len(series) - fitLen
	var boundaries []int
	for step := refitEvery - 1; step < walkLen; step += refitEvery {
		boundaries = append(boundaries, step)
	}
	refits, _ := parallel.Map(len(boundaries), 0, func(i int) (*core.NARPredictor, error) {
		step := boundaries[i]
		end := fitLen + step + 1
		start := end - refitWindow
		if start < 0 {
			start = 0
		}
		fresh := &core.NARPredictor{Delays: []int{2, 4}, Hidden: []int{4, 8}, Seed: cfg.Seed + 17 + uint64(step)}
		if err := fresh.Fit(series[start:end]); err != nil {
			return nil, nil
		}
		return fresh, nil
	})
	refitAt := make(map[int]*core.NARPredictor, len(boundaries))
	for i, m := range refits {
		if m != nil {
			refitAt[boundaries[i]] = m
		}
	}
	absErr := make([]float64, 0, walkLen)
	for step, x := range series[fitLen:] {
		p, err := pred.PredictNext()
		if err != nil {
			return nil, err
		}
		absErr = append(absErr, math.Abs(p-x))
		pred.Update(x)
		if fresh := refitAt[step]; fresh != nil {
			pred = fresh
		}
	}
	rel := tdIdx - fitLen // takedown position within absErr

	res := &DriftResult{Family: famName, LostAS: lost, TakedownIdx: tdIdx}
	res.PreErr = stats.Mean(absErr[:rel])
	spikeEnd := rel + 30
	if spikeEnd > len(absErr) {
		spikeEnd = len(absErr)
	}
	res.SpikeErr = stats.Mean(absErr[rel:spikeEnd])
	if spikeEnd < len(absErr) {
		res.PostErr = stats.Mean(absErr[len(absErr)-(len(absErr)-spikeEnd)/2:])
	} else {
		res.PostErr = res.SpikeErr
	}

	// Recovery: first post-takedown index where the trailing-25 rolling
	// mean error drops under 2x the pre level.
	res.RecoverySteps = -1
	const win = 25
	for i := rel + win; i < len(absErr); i++ {
		if stats.Mean(absErr[i-win:i]) < 2*res.PreErr {
			res.RecoverySteps = i - rel
			break
		}
	}

	// Static contrast: predict the pre-takedown mean share forever.
	static := stats.Mean(series[:tdIdx])
	var sum float64
	n := 0
	for _, x := range series[tdIdx:] {
		sum += math.Abs(static - x)
		n++
	}
	if n > 0 {
		res.StaticPostErr = sum / float64(n)
	}
	return res, nil
}
