package eval

import (
	"fmt"
	"strings"
)

// Report runs every experiment on the environment and renders a
// self-contained markdown document — the machine-generated counterpart of
// EXPERIMENTS.md for an arbitrary seed and scale
// (cmd/ddosrepro -md FILE writes it).
func Report(env *Env) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "# Reproduction report\n\n")
	fmt.Fprintf(&b, "Seed %d, scale %.2f, horizon %d days — %d verified attacks, %d families, %d inferred ASes.\n\n",
		env.Cfg.Seed, env.Cfg.Scale, env.Cfg.HorizonDays,
		env.Dataset.Len(), len(env.Dataset.Families()), env.Inferred.Len())

	reportTable1(&b, env)
	if err := reportFigure1(&b, env); err != nil {
		return "", err
	}
	if err := reportFigure2(&b, env); err != nil {
		return "", err
	}
	if err := reportFigure34(&b, env); err != nil {
		return "", err
	}
	if err := reportComparison(&b, env); err != nil {
		return "", err
	}
	if err := reportFigure5(&b, env); err != nil {
		return "", err
	}
	if err := reportAblation(&b, env); err != nil {
		return "", err
	}
	return b.String(), nil
}

func reportTable1(b *strings.Builder, env *Env) {
	fmt.Fprintf(b, "## Table I — activity level of bots\n\n")
	fmt.Fprintf(b, "| Family | Avg#/Day | Active days | CV | paper Avg | paper days | paper CV |\n")
	fmt.Fprintf(b, "|---|---|---|---|---|---|---|\n")
	for _, r := range RunTable1(env) {
		fmt.Fprintf(b, "| %s | %.2f | %d | %.2f | %.2f | %d | %.2f |\n",
			r.Family, r.AvgPerDay, r.ActiveDays, r.CV,
			r.PaperAvgPerDay, r.PaperActiveDays, r.PaperCV)
	}
	fmt.Fprintln(b)
}

func reportFigure1(b *strings.Builder, env *Env) error {
	series, err := RunFigure1(env, nil)
	if err != nil {
		return err
	}
	fmt.Fprintf(b, "## Figure 1 — temporal prediction of attacking magnitudes\n\n")
	fmt.Fprintf(b, "| Family | n | ARIMA RMSE | Always-Same RMSE | Ljung–Box p |\n|---|---|---|---|---|\n")
	for _, s := range series {
		fmt.Fprintf(b, "| %s | %d | %.2f | %.2f | %.2f |\n",
			s.Family, len(s.Truth), s.RMSE, s.NaiveRMSE, s.GoFP)
	}
	fmt.Fprintln(b)
	return nil
}

func reportFigure2(b *strings.Builder, env *Env) error {
	results, err := RunFigure2(env, nil, 5)
	if err != nil {
		return err
	}
	fmt.Fprintf(b, "## Figure 2 — spatial prediction of attacking source distributions\n\n")
	for _, r := range results {
		fmt.Fprintf(b, "**%s** (share RMSE %.4f over %d steps)\n\n", r.Family, r.RMSE, len(r.Errors))
		fmt.Fprintf(b, "| Source AS | truth | predicted |\n|---|---|---|\n")
		for i, as := range r.ASes {
			fmt.Fprintf(b, "| AS%d | %.3f | %.3f |\n", as, r.TruthShare[i], r.PredShare[i])
		}
		fmt.Fprintln(b)
	}
	return nil
}

func reportFigure34(b *strings.Builder, env *Env) error {
	res, err := RunFigure34(env, Figure34Config{})
	if err != nil {
		return err
	}
	fmt.Fprintf(b, "## Figures 3 & 4 — spatiotemporal timestamp predictions\n\n")
	fmt.Fprintf(b, "%d target-specific next-attack predictions.\n\n", res.N)
	fmt.Fprintf(b, "| Model | hour RMSE | day RMSE | KS(hour) | KS(day) |\n|---|---|---|---|---|\n")
	for _, m := range []string{ModelSpatial, ModelTemporal, ModelSpatiotemporal} {
		fmt.Fprintf(b, "| %s | %.2f | %.2f | %.3f | %.3f |\n",
			m, res.HourRMSE[m], res.DayRMSE[m], res.HourKS[m], res.DayKS[m])
	}
	fmt.Fprintf(b, "\nPaper reference: hour 5.0 / 3.82 / 1.85 h; day 5.17 / – / 2.72 d.\n\n")
	return nil
}

func reportComparison(b *strings.Builder, env *Env) error {
	rows, err := RunComparison(env, 5)
	if err != nil {
		return err
	}
	fmt.Fprintf(b, "## §VII-A — models vs simple baselines (RMSE)\n\n")
	fmt.Fprintf(b, "| Family | Feature | ARIMA | NAR | Always Same | Always Mean | winner |\n|---|---|---|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Fprintf(b, "| %s | %s | %.4g | %.4g | %.4g | %.4g | %s |\n",
			r.Family, r.Feature,
			r.RMSE["Temporal(ARIMA)"], r.RMSE["Spatial(NAR)"],
			r.RMSE["AlwaysSame"], r.RMSE["AlwaysMean"], r.Winner)
	}
	fmt.Fprintln(b)
	return nil
}

func reportFigure5(b *strings.Builder, env *Env) error {
	res, err := RunFigure5(env, Figure5Config{})
	if err != nil {
		return err
	}
	fmt.Fprintf(b, "## Figure 5 — use cases\n\n")
	fmt.Fprintf(b, "Family %s, %d test attacks.\n\n", res.Family, res.Attacks)
	fmt.Fprintf(b, "- AS-based filtering: predictive recall %.2f (collateral %.2f, %d rules) vs reactive %.2f (collateral %.2f, %d rules)\n",
		res.PredictiveFiltering.Recall, res.PredictiveFiltering.Collateral, res.PredictiveFiltering.Rules,
		res.ReactiveFiltering.Recall, res.ReactiveFiltering.Collateral, res.ReactiveFiltering.Rules)
	fmt.Fprintf(b, "- Middlebox traversal: proactive %.0f%%, reactive %.0f%% of attacks met firewall-first\n\n",
		100*res.ProactiveProtected, 100*res.ReactiveProtected)
	return nil
}

func reportAblation(b *strings.Builder, env *Env) error {
	rows, err := RunAblation(env, Figure34Config{})
	if err != nil {
		return err
	}
	fmt.Fprintf(b, "## Ablations — §VI design choices\n\n")
	fmt.Fprintf(b, "| Variant | hour RMSE | day RMSE | hour-tree leaves |\n|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Fprintf(b, "| %s | %.2f | %.2f | %d |\n", r.Variant, r.HourRMSE, r.DayRMSE, r.HourLeaves)
	}
	fmt.Fprintln(b)
	return nil
}
