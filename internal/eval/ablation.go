package eval

import (
	"errors"

	"repro/internal/cart"
	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// AblationRow is one spatiotemporal design-choice ablation: the hour- and
// day-prediction RMSE of the model tree when a piece of the design is
// removed.
type AblationRow struct {
	Variant  string
	HourRMSE float64
	DayRMSE  float64
	// HourLeaves is the hour tree's leaf count (size effect of pruning).
	HourLeaves int
}

// Ablation variant names.
const (
	AblationFull       = "full"
	AblationNoTemporal = "no-temporal-features"
	AblationNoSpatial  = "no-spatial-features"
	AblationNoLocal    = "no-target-context"
	AblationMeanLeaves = "mean-leaves"
	AblationNoPruning  = "no-std-pruning"
)

// RunAblation quantifies the spatiotemporal model's design choices (§VI):
// it rebuilds the model tree with individual feature groups removed — the
// temporal model outputs (N_tmp/N_int), the spatial outputs (N_spa), the
// target-local context — and with the structural choices disabled (MLR
// leaves downgraded to means; the 88% standard-deviation pruning relaxed),
// then reports test-window RMSE for each variant.
func RunAblation(env *Env, cfg Figure34Config) ([]AblationRow, error) {
	cfg = cfg.withDefaults()
	samples, testStart, err := collectSamples(env, cfg)
	if err != nil {
		return nil, err
	}
	var train, test []stSample
	for _, s := range samples {
		if s.order < testStart {
			train = append(train, s)
		} else {
			test = append(test, s)
		}
	}
	if len(train) == 0 || len(test) == 0 {
		return nil, errors.New("eval: ablation: insufficient samples")
	}

	variants := []struct {
		name string
		mask func(core.STFeatures) core.STFeatures
		cfg  core.STConfig
	}{
		{name: AblationFull, mask: identity},
		{name: AblationNoTemporal, mask: dropTemporal},
		{name: AblationNoSpatial, mask: dropSpatial},
		{name: AblationNoLocal, mask: dropLocal},
		{name: AblationMeanLeaves, mask: identity, cfg: core.STConfig{Tree: cart.Config{LeafModel: cart.LeafMean}}},
		{name: AblationNoPruning, mask: identity, cfg: core.STConfig{Tree: cart.Config{StdDevRetain: 0.999}}},
	}
	// Every variant retrains its own trees from its own masked copies of
	// the samples, so the variants fan out on the worker pool; rows come
	// back in variant order.
	return parallel.Map(len(variants), 0, func(vi int) (AblationRow, error) {
		v := variants[vi]
		trainRows := make([]core.STSample, len(train))
		for i, s := range train {
			trainRows[i] = core.STSample{
				F: v.mask(s.F), Hour: s.Hour, Day: s.Day, Dur: s.Dur, Mag: s.Mag,
			}
		}
		st, err := core.FitSpatiotemporal(trainRows, v.cfg)
		if err != nil {
			return AblationRow{}, err
		}
		var hourPred, dayPred, hourTruth, dayTruth []float64
		for _, s := range test {
			f := v.mask(s.F)
			hourPred = append(hourPred, st.PredictHour(&f))
			dayPred = append(dayPred, st.PredictDay(&f))
			hourTruth = append(hourTruth, s.Hour)
			dayTruth = append(dayTruth, s.Day)
		}
		hr, err := stats.RMSE(hourPred, hourTruth)
		if err != nil {
			return AblationRow{}, err
		}
		dr, err := stats.RMSE(dayPred, dayTruth)
		if err != nil {
			return AblationRow{}, err
		}
		return AblationRow{
			Variant:    v.name,
			HourRMSE:   hr,
			DayRMSE:    dr,
			HourLeaves: st.Hour.Leaves(),
		}, nil
	})
}

func identity(f core.STFeatures) core.STFeatures { return f }

func dropTemporal(f core.STFeatures) core.STFeatures {
	f.TmpHour, f.TmpDay, f.TmpInterval, f.TmpMag = 0, 0, 0, 0
	return f
}

func dropSpatial(f core.STFeatures) core.STFeatures {
	f.SpaHour, f.SpaDay, f.SpaDur = 0, 0, 0
	return f
}

func dropLocal(f core.STFeatures) core.STFeatures {
	f.PrevHour, f.PrevDay, f.PrevGapSec, f.NextDueDay, f.AvgMag = 0, 0, 0, 0, 0
	return f
}
