package eval

import (
	"fmt"
	"time"

	"repro/internal/sdn"
	"repro/internal/trace"
)

// PipelineExperiment is the end-to-end defense-loop experiment: the
// entropy detector spots a replayed flood, the controller installs rules
// from the model's predicted source distribution, and the replay measures
// detection latency and how much attack traffic got through — with
// model-predicted rules versus rules from a stale single-attack snapshot.
type PipelineExperiment struct {
	Family string
	// Predictive / Reactive are the replay results with model-predicted
	// rules and with last-attack-snapshot rules respectively.
	Predictive *sdn.PipelineResult
	Reactive   *sdn.PipelineResult
	// PredictiveScrubRate / ReactiveScrubRate are post-mitigation scrub
	// fractions.
	PredictiveScrubRate float64
	ReactiveScrubRate   float64
}

// RunDefensePipeline replays the most recent test-window attack of the
// most active family through two defense pipelines.
func RunDefensePipeline(env *Env, seed uint64) (*PipelineExperiment, error) {
	fams := env.Dataset.Families()
	if len(fams) == 0 {
		return nil, fmt.Errorf("eval: pipeline: empty dataset")
	}
	fam := fams[0]
	attacks := env.Dataset.ByFamily(fam)
	if len(attacks) < 30 {
		return nil, fmt.Errorf("eval: pipeline: family %s too small", fam)
	}
	nTrain := 8 * len(attacks) / 10
	train, test := attacks[:nTrain], attacks[nTrain:]

	// Model prediction: aggregate source shares over the most recent
	// training attacks (bot pools churn daily, so an older window goes
	// stale). Reactive baseline: the single most recent training attack —
	// an unbiased but high-variance snapshot.
	predWindow := 20
	if predWindow > len(train) {
		predWindow = len(train)
	}
	predicted := toShares(env, train[len(train)-predWindow:])
	reactive := toShares(env, train[len(train)-1:])

	// The replayed flood: the actual source mix of the last test attack.
	last := test[len(test)-1]
	actual := toShares(env, test[len(test)-1:])
	if len(actual) == 0 {
		return nil, fmt.Errorf("eval: pipeline: replay attack has no mapped sources")
	}
	profile := sdn.AttackProfile{
		Sources:  actual,
		Rate:     100,
		Duration: time.Duration(last.DurationSec * float64(time.Second)),
	}
	if profile.Duration < 2*time.Minute {
		profile.Duration = 2 * time.Minute
	}
	if profile.Duration > 20*time.Minute {
		profile.Duration = 20 * time.Minute
	}
	benign := env.Topo.Stubs

	exp := &PipelineExperiment{Family: fam}
	for i, rules := range [][]sdn.PredictedShare{predicted, reactive} {
		p, err := sdn.NewPipeline(sdn.PipelineConfig{
			Predicted:  rules,
			BenignASes: benign,
			Seed:       seed + uint64(i),
		})
		if err != nil {
			return nil, fmt.Errorf("eval: pipeline: %w", err)
		}
		res, err := p.Replay(profile)
		if err != nil {
			return nil, fmt.Errorf("eval: pipeline replay: %w", err)
		}
		rate := 0.0
		if post := res.ScrubbedConns + res.LeakedConns; post > 0 {
			rate = float64(res.ScrubbedConns) / float64(post)
		}
		if i == 0 {
			exp.Predictive, exp.PredictiveScrubRate = res, rate
		} else {
			exp.Reactive, exp.ReactiveScrubRate = res, rate
		}
	}
	return exp, nil
}

// toShares converts a window of attacks into an aggregate source-AS share
// list for rule installation.
func toShares(env *Env, attacks []trace.Attack) []sdn.PredictedShare {
	agg := env.SD.AggregateShares(attacks)
	out := make([]sdn.PredictedShare, len(agg))
	for i, s := range agg {
		out[i] = sdn.PredictedShare{AS: s.AS, Share: s.Share}
	}
	return out
}
