package eval

import (
	"fmt"
	"sort"

	"repro/internal/astopo"
	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/stats"
	"repro/internal/timeseries"
	"repro/internal/trace"
)

// Figure2Result reproduces one subfigure of Figure 2 for a family: the
// ground-truth attacker ASN distribution over the test window versus the
// spatial model's predicted distribution, plus the per-prediction share
// errors.
type Figure2Result struct {
	Family string
	// ASes are the top source ASes, descending by ground-truth share.
	ASes []astopo.AS
	// TruthShare and PredShare align with ASes (both renormalized).
	TruthShare []float64
	PredShare  []float64
	// Errors are the individual share prediction errors across all
	// (target network, source AS) walk-forward steps.
	Errors []float64
	RMSE   float64
}

// RunFigure2 reproduces Figure 2 (prediction of attacking source
// distributions). Per the paper (§V-B), attacks are first split by the
// target's ASN; within each network the chronologically ordered per-source-
// AS share series is modeled with the NAR network and evaluated
// walk-forward on the 20% test suffix.
func RunFigure2(env *Env, families []string, topK int) ([]Figure2Result, error) {
	if len(families) == 0 {
		families = Figure1Families
	}
	if topK < 1 {
		topK = 5
	}
	return parallel.Map(len(families), 0, func(i int) (Figure2Result, error) {
		res, err := runFigure2Family(env, families[i], topK)
		if err != nil {
			return Figure2Result{}, err
		}
		return *res, nil
	})
}

func runFigure2Family(env *Env, fam string, topK int) (*Figure2Result, error) {
	attacks := env.Dataset.ByFamily(fam)
	if len(attacks) < 30 {
		return nil, fmt.Errorf("eval: figure 2: family %s has only %d attacks", fam, len(attacks))
	}
	srcASes := env.SD.TopSourceASes(attacks, topK)
	if len(srcASes) == 0 {
		return nil, fmt.Errorf("eval: figure 2: family %s has no mapped sources", fam)
	}

	// Group by target network.
	byAS := make(map[astopo.AS][]trace.Attack)
	for i := range attacks {
		byAS[attacks[i].TargetAS] = append(byAS[attacks[i].TargetAS], attacks[i])
	}
	targetASes := make([]astopo.AS, 0, len(byAS))
	for as := range byAS {
		targetASes = append(targetASes, as)
	}
	sort.Slice(targetASes, func(i, j int) bool { return targetASes[i] < targetASes[j] })

	// Cap the per-network series length to bound NAR training cost on very
	// active networks (the recent window carries the relevant dynamics).
	const maxSeriesLen = 400
	// The (target network, source AS) walk-forwards are independent, so
	// they fan out on the worker pool. Each job returns its raw test and
	// prediction slices; the share sums are then accumulated serially in
	// job order — the exact float-addition sequence of the serial double
	// loop, so the result is byte-identical regardless of scheduling.
	type job struct {
		group []trace.Attack
		src   astopo.AS
	}
	var jobs []job
	for _, tgtAS := range targetASes {
		group := byAS[tgtAS]
		if len(group) < 25 {
			continue
		}
		if len(group) > maxSeriesLen {
			group = group[len(group)-maxSeriesLen:]
		}
		for _, src := range srcASes {
			jobs = append(jobs, job{group: group, src: src})
		}
	}
	type jobOut struct {
		src   astopo.AS
		test  []float64
		preds []float64
	}
	// Degenerate series fall back inside the job, so Map never fails here.
	outs, _ := parallel.Map(len(jobs), 0, func(i int) (jobOut, error) {
		jb := jobs[i]
		series := env.SD.ShareSeries(jb.group, jb.src)
		train, test := timeseries.SplitFrac(series, 0.8)
		if len(test) == 0 {
			return jobOut{}, nil
		}
		preds, _, err := core.WalkForward(
			&core.NARPredictor{Delays: []int{2, 4}, Hidden: []int{4, 8}, Seed: env.Cfg.Seed + uint64(jb.src)},
			train, test,
		)
		if err != nil {
			// Degenerate series (e.g. constant zero share): fall back
			// to the last training value.
			preds = make([]float64, len(test))
			if len(train) > 0 {
				for i := range preds {
					preds[i] = train[len(train)-1]
				}
			}
		}
		return jobOut{src: jb.src, test: test, preds: preds}, nil
	})
	truthSum := make(map[astopo.AS]float64)
	predSum := make(map[astopo.AS]float64)
	var errs []float64
	var nSteps int
	for _, o := range outs {
		for i := range o.test {
			p := o.preds[i]
			if p < 0 {
				p = 0
			}
			if p > 1 {
				p = 1
			}
			truthSum[o.src] += o.test[i]
			predSum[o.src] += p
			errs = append(errs, p-o.test[i])
		}
		nSteps += len(o.test)
	}
	if nSteps == 0 {
		return nil, fmt.Errorf("eval: figure 2: family %s has no network with enough attacks", fam)
	}

	// Build aligned, renormalized distributions.
	sort.Slice(srcASes, func(i, j int) bool { return truthSum[srcASes[i]] > truthSum[srcASes[j]] })
	var truthTotal, predTotal float64
	for _, as := range srcASes {
		truthTotal += truthSum[as]
		predTotal += predSum[as]
	}
	res := &Figure2Result{Family: fam, ASes: srcASes, Errors: errs}
	for _, as := range srcASes {
		t, p := 0.0, 0.0
		if truthTotal > 0 {
			t = truthSum[as] / truthTotal
		}
		if predTotal > 0 {
			p = predSum[as] / predTotal
		}
		res.TruthShare = append(res.TruthShare, t)
		res.PredShare = append(res.PredShare, p)
	}
	zeros := make([]float64, len(errs))
	rmse, err := stats.RMSE(errs, zeros)
	if err != nil {
		return nil, err
	}
	res.RMSE = rmse
	return res, nil
}
