package eval

import (
	"reflect"
	"runtime"
	"testing"
)

// TestEvalParallelMatchesSerial pins the determinism contract of the
// fanned-out experiments: with GOMAXPROCS=1 the worker pool degenerates to
// the serial loop, and the parallel run must reproduce it exactly —
// including every float64 bit, since the merge phases accumulate in job
// order.
func TestEvalParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every fanned-out experiment twice")
	}
	env := sharedEnv(t)

	type outputs struct {
		Comparison []ComparisonRow
		Figure1    []Figure1Series
		Figure2    []Figure2Result
	}
	run := func() outputs {
		rows, err := RunComparison(env, 3)
		if err != nil {
			t.Fatal(err)
		}
		fig1, err := RunFigure1(env, nil)
		if err != nil {
			t.Fatal(err)
		}
		fig2, err := RunFigure2(env, []string{"DirtJumper"}, 4)
		if err != nil {
			t.Fatal(err)
		}
		return outputs{Comparison: rows, Figure1: fig1, Figure2: fig2}
	}

	serial := func() outputs {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
		return run()
	}()
	// Force a wide pool even on single-CPU machines: goroutines still
	// interleave, so a merge that depended on completion order would show.
	parallel := func() outputs {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
		return run()
	}()

	if !reflect.DeepEqual(serial.Comparison, parallel.Comparison) {
		t.Errorf("comparison rows differ:\nserial:   %+v\nparallel: %+v", serial.Comparison, parallel.Comparison)
	}
	if !reflect.DeepEqual(serial.Figure1, parallel.Figure1) {
		t.Error("figure 1 series differ between serial and parallel runs")
	}
	if !reflect.DeepEqual(serial.Figure2, parallel.Figure2) {
		t.Error("figure 2 results differ between serial and parallel runs")
	}
}
