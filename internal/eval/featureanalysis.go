package eval

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/stats"
	"repro/internal/timeseries"
	"repro/internal/trace"
)

// FeatureAnalysis reproduces the §III-A/§III-B feature study for one
// family: the inter-launching-time CDF that motivates the paper's
// 30 s–24 h multistage window, the multistage chain statistics, and the
// walk-forward predictability of the three temporal-model variables
// (A^f, A^b, A^s of Eqs. 1–3).
type FeatureAnalysis struct {
	Family string

	// Inter-launching times between consecutive attacks on the same
	// target (seconds): selected CDF quantiles and the fraction captured
	// by the paper's multistage window.
	InterLaunchQuantiles map[string]float64
	WindowCoverage       float64

	// Multistage chains under the 30 s–24 h linking rule.
	Chains         int
	MeanChainLen   float64
	LongestChain   int
	MultistageFrac float64 // fraction of attacks belonging to a chain of length >= 2

	// Walk-forward one-step RMSE of ARIMA vs the Always Mean baseline on
	// the three temporal feature series.
	AFModelRMSE, AFMeanRMSE float64
	ABModelRMSE, ABMeanRMSE float64
	ASModelRMSE, ASMeanRMSE float64
}

// RunFeatureAnalysis computes the feature study for the given families
// (default: the Figure 1 trio).
func RunFeatureAnalysis(env *Env, families []string) ([]FeatureAnalysis, error) {
	if len(families) == 0 {
		families = Figure1Families
	}
	out := make([]FeatureAnalysis, 0, len(families))
	for _, fam := range families {
		fa, err := analyzeFamily(env, fam)
		if err != nil {
			return nil, err
		}
		out = append(out, *fa)
	}
	return out, nil
}

func analyzeFamily(env *Env, fam string) (*FeatureAnalysis, error) {
	attacks := env.Dataset.ByFamily(fam)
	if len(attacks) < 40 {
		return nil, fmt.Errorf("eval: feature analysis: family %s has only %d attacks", fam, len(attacks))
	}
	fa := &FeatureAnalysis{Family: fam}

	// Per-target inter-launch times.
	byTarget := make(map[uint32][]trace.Attack)
	for i := range attacks {
		key := uint32(attacks[i].TargetIP)
		byTarget[key] = append(byTarget[key], attacks[i])
	}
	var gaps []float64
	var chains, chained, longest int
	var chainLenSum int
	for _, group := range byTarget {
		gaps = append(gaps, features.InterLaunchTimes(group)...)
		for _, chain := range features.MultistageChains(group) {
			chains++
			chainLenSum += len(chain)
			if len(chain) > longest {
				longest = len(chain)
			}
			if len(chain) >= 2 {
				chained += len(chain)
			}
		}
	}
	if len(gaps) == 0 {
		return nil, fmt.Errorf("eval: feature analysis: family %s has no repeat targets", fam)
	}
	ecdf := stats.NewECDF(gaps)
	fa.InterLaunchQuantiles = map[string]float64{
		"p10": ecdf.Quantile(0.10),
		"p50": ecdf.Quantile(0.50),
		"p90": ecdf.Quantile(0.90),
		"p99": ecdf.Quantile(0.99),
	}
	lo := features.MultistageMin.Seconds()
	hi := features.MultistageMax.Seconds()
	fa.WindowCoverage = ecdf.Eval(hi) - ecdf.Eval(lo)
	fa.Chains = chains
	if chains > 0 {
		fa.MeanChainLen = float64(chainLenSum) / float64(chains)
	}
	fa.LongestChain = longest
	fa.MultistageFrac = float64(chained) / float64(len(attacks))

	// Predictability of the three temporal variables.
	af := features.AFSeries(attacks)
	reports := trace.GenerateReports(env.Dataset, fam)
	ab := features.ABSeries(reports)
	as := env.SD.Series(capSeriesAttacks(attacks, 800))
	var err error
	if fa.AFModelRMSE, fa.AFMeanRMSE, err = modelVsMean(af); err != nil {
		return nil, fmt.Errorf("eval: feature analysis %s A^f: %w", fam, err)
	}
	if fa.ABModelRMSE, fa.ABMeanRMSE, err = modelVsMean(ab); err != nil {
		return nil, fmt.Errorf("eval: feature analysis %s A^b: %w", fam, err)
	}
	if fa.ASModelRMSE, fa.ASMeanRMSE, err = modelVsMean(as); err != nil {
		return nil, fmt.Errorf("eval: feature analysis %s A^s: %w", fam, err)
	}
	return fa, nil
}

// modelVsMean walks an ARIMA and the Always Mean baseline forward over the
// series' 20% test suffix.
func modelVsMean(series []float64) (model, mean float64, err error) {
	if len(series) < 30 {
		return 0, 0, fmt.Errorf("series too short (%d)", len(series))
	}
	train, test := timeseries.SplitFrac(series, 0.8)
	_, model, err = core.WalkForward(&core.ARIMAPredictor{}, train, test)
	if err != nil {
		return 0, 0, err
	}
	_, mean, err = core.WalkForward(&core.AlwaysMean{}, train, test)
	return model, mean, err
}

// capSeriesAttacks bounds the A^s computation (pairwise hop distances per
// attack) on very large families.
func capSeriesAttacks(attacks []trace.Attack, maxLen int) []trace.Attack {
	if len(attacks) > maxLen {
		return attacks[len(attacks)-maxLen:]
	}
	return attacks
}

// FormatDuration renders a gap in seconds human-readably for the CDF
// printout.
func FormatDuration(sec float64) string {
	return time.Duration(sec * float64(time.Second)).Round(time.Minute).String()
}
