// Package eval is the experiment harness: it builds the synthetic world
// (topology + verified-attack dataset), runs one experiment per table and
// figure of the paper's evaluation, and renders text versions of the
// figures. Each Run* function corresponds to a row of the per-experiment
// index in DESIGN.md.
package eval

import (
	"fmt"

	"repro/internal/astopo"
	"repro/internal/botnet"
	"repro/internal/features"
	"repro/internal/trace"
)

// Config sizes the synthetic world.
type Config struct {
	// Seed drives all randomness; identical seeds reproduce every number.
	Seed uint64
	// Scale multiplies the Table I attack volumes (1.0 = paper-size,
	// ~45-50k attacks). Smaller scales are for tests and quick runs.
	Scale float64
	// HorizonDays is the observation window (default 220, the paper's
	// seven months).
	HorizonDays int
	// Topology sizing; zero values take astopo defaults.
	Topology astopo.SynthConfig
	// Vantages is the number of route-collection vantage points used for
	// the Gao inference (default 15).
	Vantages int
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 || c.Scale > 1 {
		c.Scale = 1
	}
	if c.HorizonDays < 1 {
		c.HorizonDays = 220
	}
	if c.Vantages < 1 {
		c.Vantages = 15
	}
	if c.Topology.Seed == 0 {
		c.Topology.Seed = c.Seed
	}
	return c
}

// Env is the generated world shared by all experiments.
type Env struct {
	Cfg      Config
	Topo     *astopo.Topology
	Dataset  *trace.Dataset
	Inferred *astopo.Graph
	// SD computes source-distribution features over the *inferred*
	// relationships, exactly as the paper's tool does over Route Views
	// tables (the ground-truth graph is never given to the models).
	SD *features.SourceDist
}

// BuildEnv synthesizes the topology, generates the verified-attack
// dataset, emits routing tables, and runs the Gao inference — the full
// data pipeline of §II–§III.
func BuildEnv(cfg Config) (*Env, error) {
	cfg = cfg.withDefaults()
	topo, err := astopo.Synthesize(cfg.Topology)
	if err != nil {
		return nil, fmt.Errorf("eval: topology: %w", err)
	}
	profiles := botnet.ScaleProfiles(botnet.DefaultFamilies(), cfg.Scale)
	ds, err := botnet.Simulate(botnet.SimConfig{
		Families:    profiles,
		Topology:    topo,
		HorizonDays: cfg.HorizonDays,
		Seed:        cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("eval: simulate: %w", err)
	}
	paths := topo.EmitRouteTable(cfg.Vantages, cfg.Seed+1)
	inferred := astopo.InferRelationships(paths, astopo.InferConfig{})
	sd := &features.SourceDist{
		IPMap:  topo.IPMap,
		Oracle: astopo.NewDistanceOracle(inferred),
	}
	return &Env{Cfg: cfg, Topo: topo, Dataset: ds, Inferred: inferred, SD: sd}, nil
}
