package eval

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

var (
	envOnce sync.Once
	testEnv *Env
	envErr  error
)

// sharedEnv builds one small world reused by all eval tests (BuildEnv is
// the expensive step).
func sharedEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		testEnv, envErr = BuildEnv(Config{Seed: 77, Scale: 0.12, HorizonDays: 200})
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return testEnv
}

func TestBuildEnvDeterministic(t *testing.T) {
	a, err := BuildEnv(Config{Seed: 5, Scale: 0.05, HorizonDays: 60})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildEnv(Config{Seed: 5, Scale: 0.05, HorizonDays: 60})
	if err != nil {
		t.Fatal(err)
	}
	if a.Dataset.Len() != b.Dataset.Len() {
		t.Fatalf("sizes differ: %d vs %d", a.Dataset.Len(), b.Dataset.Len())
	}
	for i := range a.Dataset.Attacks {
		if a.Dataset.Attacks[i].ID != b.Dataset.Attacks[i].ID {
			t.Fatal("attack order differs")
		}
	}
	if a.Inferred.Len() != b.Inferred.Len() {
		t.Error("inferred graphs differ")
	}
}

func TestRunTable1(t *testing.T) {
	env := sharedEnv(t)
	rows := RunTable1(env)
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(rows))
	}
	// Every row carries paper reference values and sane measurements.
	for _, r := range rows {
		if r.PaperAvgPerDay == 0 {
			t.Errorf("%s: missing paper reference", r.Family)
		}
		if r.AvgPerDay <= 0 || r.ActiveDays <= 0 {
			t.Errorf("%s: degenerate measurement %+v", r.Family, r)
		}
		if math.IsNaN(r.CV) {
			t.Errorf("%s: NaN CV", r.Family)
		}
	}
	// Ordering: most active family first; DirtJumper dominates any scale.
	if rows[0].Family != "DirtJumper" {
		t.Errorf("top family = %s", rows[0].Family)
	}
}

func TestRunTable2(t *testing.T) {
	rows := RunTable2()
	if len(rows) != 9 {
		t.Fatalf("Table II rows = %d, want 9", len(rows))
	}
	seen := make(map[string]bool)
	for _, r := range rows {
		if r.Variable == "" || r.Description == "" {
			t.Errorf("empty row %+v", r)
		}
		if seen[r.Variable] {
			t.Errorf("duplicate variable %s", r.Variable)
		}
		seen[r.Variable] = true
	}
}

func TestRunFigure1(t *testing.T) {
	env := sharedEnv(t)
	series, err := RunFigure1(env, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("families = %d, want 3", len(series))
	}
	for _, s := range series {
		if len(s.Truth) != len(s.Pred) || len(s.Errors) != len(s.Truth) {
			t.Fatalf("%s: length mismatch", s.Family)
		}
		if s.RMSE <= 0 || math.IsNaN(s.RMSE) {
			t.Errorf("%s: RMSE = %v", s.Family, s.RMSE)
		}
		// The temporal model must beat the Always Same baseline (the
		// paper's headline for Figure 1).
		if s.RMSE >= s.NaiveRMSE {
			t.Errorf("%s: ARIMA %.3f should beat naive %.3f", s.Family, s.RMSE, s.NaiveRMSE)
		}
		for i := range s.Errors {
			if got := s.Pred[i] - s.Truth[i]; math.Abs(got-s.Errors[i]) > 1e-9 {
				t.Fatalf("%s: error[%d] inconsistent", s.Family, i)
			}
		}
	}
	if _, err := RunFigure1(env, []string{"NoSuchFamily"}); err == nil {
		t.Error("unknown family should error")
	}
}

func TestRunFigure2(t *testing.T) {
	env := sharedEnv(t)
	results, err := RunFigure2(env, []string{"DirtJumper"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if len(r.ASes) == 0 || len(r.TruthShare) != len(r.ASes) || len(r.PredShare) != len(r.ASes) {
		t.Fatalf("malformed result %+v", r)
	}
	var truthSum, predSum float64
	for i := range r.ASes {
		truthSum += r.TruthShare[i]
		predSum += r.PredShare[i]
	}
	if math.Abs(truthSum-1) > 1e-9 || math.Abs(predSum-1) > 1e-9 {
		t.Errorf("shares not normalized: %v / %v", truthSum, predSum)
	}
	if r.RMSE < 0 || r.RMSE > 0.5 {
		t.Errorf("share RMSE = %v implausible", r.RMSE)
	}
	// Predicted distribution should track the truth within a coarse bound
	// (the paper reports near-identical distributions for DirtJumper).
	for i := range r.ASes {
		if math.Abs(r.TruthShare[i]-r.PredShare[i]) > 0.15 {
			t.Errorf("AS %d share off: truth %.3f pred %.3f", r.ASes[i], r.TruthShare[i], r.PredShare[i])
		}
	}
	if _, err := RunFigure2(env, []string{"NoSuchFamily"}, 3); err == nil {
		t.Error("unknown family should error")
	}
}

func TestRunFigure34(t *testing.T) {
	env := sharedEnv(t)
	res, err := RunFigure34(env, Figure34Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.N < 50 {
		t.Fatalf("too few predictions: %d", res.N)
	}
	for _, model := range []string{ModelTemporal, ModelSpatial, ModelSpatiotemporal} {
		if res.HourRMSE[model] <= 0 || res.DayRMSE[model] <= 0 {
			t.Errorf("%s: nonpositive RMSE", model)
		}
		if len(res.HourHist[model]) != 24 || len(res.DayHist[model]) != 31 {
			t.Errorf("%s: histogram shapes wrong", model)
		}
		if len(res.HourErrors[model]) != res.N {
			t.Errorf("%s: error count %d != N %d", model, len(res.HourErrors[model]), res.N)
		}
	}
	// The paper's headline ordering (Figure 4): the spatiotemporal model
	// beats both component models on hour prediction, and the spatial
	// model is the weakest.
	st, tmp, spa := res.HourRMSE[ModelSpatiotemporal], res.HourRMSE[ModelTemporal], res.HourRMSE[ModelSpatial]
	if st >= tmp {
		t.Errorf("hour: spatiotemporal %.3f should beat temporal %.3f", st, tmp)
	}
	if tmp >= spa {
		t.Errorf("hour: temporal %.3f should beat spatial %.3f", tmp, spa)
	}
	// Day prediction: spatiotemporal must beat spatial (the paper's 2.72
	// vs 5.17 days).
	if res.DayRMSE[ModelSpatiotemporal] >= res.DayRMSE[ModelSpatial] {
		t.Errorf("day: spatiotemporal %.3f should beat spatial %.3f",
			res.DayRMSE[ModelSpatiotemporal], res.DayRMSE[ModelSpatial])
	}
	// Truth histograms cover all predictions.
	var total int
	for _, c := range res.TruthHourHist {
		total += c
	}
	if total != res.N {
		t.Errorf("truth hour histogram total %d != N %d", total, res.N)
	}
}

func TestRunFigure34PerTargetTrees(t *testing.T) {
	if testing.Short() {
		t.Skip("grows one tree per target")
	}
	env := sharedEnv(t)
	res, err := RunFigure34(env, Figure34Config{PerTargetTrees: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.N == 0 {
		t.Fatal("no predictions with per-target trees")
	}
	// Per-target trees still must beat the spatial model on hour RMSE.
	if res.HourRMSE[ModelSpatiotemporal] >= res.HourRMSE[ModelSpatial] {
		t.Errorf("per-target: spatiotemporal %.3f should beat spatial %.3f",
			res.HourRMSE[ModelSpatiotemporal], res.HourRMSE[ModelSpatial])
	}
}

func TestRunComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("walk-forwards 4 predictors over 9 series")
	}
	env := sharedEnv(t)
	rows, err := RunComparison(env, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no comparison rows")
	}
	winsByModel := 0
	for _, r := range rows {
		if len(r.RMSE) != 4 {
			t.Fatalf("row %s/%s has %d predictors", r.Family, r.Feature, len(r.RMSE))
		}
		for name, v := range r.RMSE {
			if v < 0 || math.IsNaN(v) {
				t.Errorf("%s/%s/%s RMSE = %v", r.Family, r.Feature, name, v)
			}
		}
		if r.Winner == "Temporal(ARIMA)" || r.Winner == "Spatial(NAR)" {
			winsByModel++
		}
	}
	// The paper's claim: its models always beat the simple baselines. At
	// small scale demand a strong majority rather than a sweep.
	if float64(winsByModel) < 0.7*float64(len(rows)) {
		t.Errorf("paper models win only %d/%d comparison rows", winsByModel, len(rows))
	}
}

func TestRunFigure5(t *testing.T) {
	env := sharedEnv(t)
	res, err := RunFigure5(env, Figure5Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Family == "" || res.Attacks == 0 {
		t.Fatalf("malformed result %+v", res)
	}
	pm, rm := res.PredictiveFiltering, res.ReactiveFiltering
	if pm.Recall <= 0 || pm.Recall > 1 {
		t.Errorf("predictive recall = %v", pm.Recall)
	}
	// Prediction-driven filtering must beat the reactive snapshot.
	if pm.Recall <= rm.Recall-0.01 {
		t.Errorf("predictive recall %.3f should be >= reactive %.3f", pm.Recall, rm.Recall)
	}
	if pm.Collateral < 0 || pm.Collateral > 0.5 {
		t.Errorf("collateral = %v implausible", pm.Collateral)
	}
	// Proactive reordering protects more attacks than reactive (which by
	// construction is always late).
	if res.ProactiveProtected <= res.ReactiveProtected {
		t.Errorf("proactive %.3f should beat reactive %.3f", res.ProactiveProtected, res.ReactiveProtected)
	}
	if res.ReactiveExposureSec <= 0 {
		t.Error("reactive exposure should be positive")
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil, 10); got != "" {
		t.Errorf("empty sparkline = %q", got)
	}
	got := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 0)
	if len([]rune(got)) != 8 {
		t.Errorf("sparkline runes = %d", len([]rune(got)))
	}
	runes := []rune(got)
	if runes[0] != '▁' || runes[7] != '█' {
		t.Errorf("sparkline extremes wrong: %q", got)
	}
	// Downsampling caps width.
	long := make([]float64, 500)
	for i := range long {
		long[i] = float64(i)
	}
	if got := Sparkline(long, 40); len([]rune(got)) != 40 {
		t.Errorf("downsampled width = %d", len([]rune(got)))
	}
	// Constant series renders at the lowest level without panicking.
	flat := Sparkline([]float64{5, 5, 5}, 0)
	if len([]rune(flat)) != 3 {
		t.Errorf("flat sparkline = %q", flat)
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart([]string{"a", "bb"}, []float64{1, 2}, 10)
	if !strings.Contains(out, "a ") || !strings.Contains(out, "bb") {
		t.Errorf("labels missing: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if strings.Count(lines[1], "#") != 10 {
		t.Errorf("max bar should span 10: %q", lines[1])
	}
	if strings.Count(lines[0], "#") != 5 {
		t.Errorf("half bar should span 5: %q", lines[0])
	}
	if BarChart([]string{"a"}, []float64{1, 2}, 10) != "" {
		t.Error("mismatched input should return empty")
	}
}

func TestHistString(t *testing.T) {
	got := HistString([]int{1, 2, 3}, 5)
	if !strings.HasPrefix(got, "[5..7] ") {
		t.Errorf("HistString = %q", got)
	}
}

func TestRunFeatureAnalysis(t *testing.T) {
	env := sharedEnv(t)
	results, err := RunFeatureAnalysis(env, []string{"DirtJumper"})
	if err != nil {
		t.Fatal(err)
	}
	fa := results[0]
	// Quantiles must be ordered.
	if !(fa.InterLaunchQuantiles["p10"] <= fa.InterLaunchQuantiles["p50"] &&
		fa.InterLaunchQuantiles["p50"] <= fa.InterLaunchQuantiles["p90"] &&
		fa.InterLaunchQuantiles["p90"] <= fa.InterLaunchQuantiles["p99"]) {
		t.Errorf("quantiles not ordered: %+v", fa.InterLaunchQuantiles)
	}
	if fa.WindowCoverage < 0 || fa.WindowCoverage > 1 {
		t.Errorf("window coverage = %v", fa.WindowCoverage)
	}
	// DirtJumper revisits targets every ~2 days, so a substantial share of
	// its attacks are multistage under the paper's rule.
	if fa.MultistageFrac < 0.3 {
		t.Errorf("multistage fraction = %v, want >= 0.3 for DirtJumper", fa.MultistageFrac)
	}
	if fa.Chains == 0 || fa.MeanChainLen < 1 || fa.LongestChain < 2 {
		t.Errorf("chain stats: %+v", fa)
	}
	// The A^f series is a smoothing cumulative average: ARIMA must beat
	// the global-mean baseline by a wide margin.
	if fa.AFModelRMSE >= fa.AFMeanRMSE {
		t.Errorf("A^f: ARIMA %v should beat mean %v", fa.AFModelRMSE, fa.AFMeanRMSE)
	}
	if fa.ABModelRMSE >= fa.ABMeanRMSE {
		t.Errorf("A^b: ARIMA %v should beat mean %v", fa.ABModelRMSE, fa.ABMeanRMSE)
	}
	if fa.ASModelRMSE <= 0 || fa.ASMeanRMSE <= 0 {
		t.Errorf("A^s RMSEs: %v / %v", fa.ASModelRMSE, fa.ASMeanRMSE)
	}
	if _, err := RunFeatureAnalysis(env, []string{"NoSuchFamily"}); err == nil {
		t.Error("unknown family should error")
	}
}

func TestFormatDuration(t *testing.T) {
	if got := FormatDuration(3600); got != "1h0m0s" {
		t.Errorf("FormatDuration(3600) = %q", got)
	}
}

func TestRunAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("retrains 6 model-tree variants")
	}
	env := sharedEnv(t)
	rows, err := RunAblation(env, Figure34Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("ablation rows = %d, want 6", len(rows))
	}
	byName := make(map[string]AblationRow, len(rows))
	for _, r := range rows {
		if r.HourRMSE <= 0 || r.DayRMSE <= 0 || math.IsNaN(r.HourRMSE) {
			t.Errorf("%s: degenerate RMSE %+v", r.Variant, r)
		}
		if r.HourLeaves < 1 {
			t.Errorf("%s: no leaves", r.Variant)
		}
		byName[r.Variant] = r
	}
	for _, name := range []string{AblationFull, AblationNoTemporal, AblationNoSpatial,
		AblationNoLocal, AblationMeanLeaves, AblationNoPruning} {
		if _, ok := byName[name]; !ok {
			t.Errorf("missing variant %s", name)
		}
	}
	// The temporal features carry the day signal: removing them must hurt
	// day prediction markedly.
	if byName[AblationNoTemporal].DayRMSE <= byName[AblationFull].DayRMSE {
		t.Errorf("removing temporal features should hurt day RMSE: %v vs full %v",
			byName[AblationNoTemporal].DayRMSE, byName[AblationFull].DayRMSE)
	}
}

func TestRunFigure34KSDistances(t *testing.T) {
	if testing.Short() {
		t.Skip("repeats the full figure 3/4 run")
	}
	env := sharedEnv(t)
	res, err := RunFigure34(env, Figure34Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range []string{ModelTemporal, ModelSpatial, ModelSpatiotemporal} {
		if ks := res.HourKS[model]; ks < 0 || ks > 1 || math.IsNaN(ks) {
			t.Errorf("%s hour KS = %v", model, ks)
		}
		if ks := res.DayKS[model]; ks < 0 || ks > 1 || math.IsNaN(ks) {
			t.Errorf("%s day KS = %v", model, ks)
		}
	}
	// The spatiotemporal model's predicted distributions sit closest to
	// ground truth (the Figure 3 observation).
	if res.HourKS[ModelSpatiotemporal] > res.HourKS[ModelSpatial] {
		t.Errorf("hour KS: spatiotemporal %.3f should not exceed spatial %.3f",
			res.HourKS[ModelSpatiotemporal], res.HourKS[ModelSpatial])
	}
}

func TestRunDefensePipeline(t *testing.T) {
	env := sharedEnv(t)
	exp, err := RunDefensePipeline(env, 3)
	if err != nil {
		t.Fatal(err)
	}
	if exp.Predictive == nil || exp.Reactive == nil {
		t.Fatal("missing replay results")
	}
	if !exp.Predictive.Detected {
		t.Error("predictive pipeline failed to detect the flood")
	}
	if exp.Predictive.DetectionDelay > time.Minute {
		t.Errorf("detection delay = %v, want under a minute", exp.Predictive.DetectionDelay)
	}
	if exp.PredictiveScrubRate < 0.5 {
		t.Errorf("predictive scrub rate = %v, want >= 0.5", exp.PredictiveScrubRate)
	}
	// Both rule sets cover the same stable home ASes; residual differences
	// come from which tail AS the 90% coverage cutoff keeps, so only guard
	// against a gross regression.
	if exp.PredictiveScrubRate < exp.ReactiveScrubRate-0.15 {
		t.Errorf("predictive scrub %.3f far below reactive %.3f",
			exp.PredictiveScrubRate, exp.ReactiveScrubRate)
	}
	total := exp.Predictive.UnmitigatedConns + exp.Predictive.ScrubbedConns + exp.Predictive.LeakedConns
	if total == 0 {
		t.Error("no attack connections accounted")
	}
}

func TestRunDrift(t *testing.T) {
	if testing.Short() {
		t.Skip("builds its own world and refits NAR models")
	}
	res, err := RunDrift(Config{Seed: 77, Scale: 0.12, HorizonDays: 200})
	if err != nil {
		t.Fatal(err)
	}
	if res.Family != "DirtJumper" || res.LostAS == 0 {
		t.Fatalf("malformed result %+v", res)
	}
	// The takedown must produce a visible error spike...
	if res.SpikeErr < 2*res.PreErr {
		t.Errorf("spike %.4f should exceed 2x pre %.4f", res.SpikeErr, res.PreErr)
	}
	// ...from which the periodically refitted model recovers...
	if res.RecoverySteps < 0 {
		t.Error("model never re-converged")
	}
	if res.PostErr > res.SpikeErr {
		t.Errorf("post error %.4f should be below the spike %.4f", res.PostErr, res.SpikeErr)
	}
	// ...while a static predictor stays broken (the paper's critique).
	if res.StaticPostErr < 4*res.PostErr && res.StaticPostErr < 0.05 {
		t.Errorf("static predictor error %.4f suspiciously low", res.StaticPostErr)
	}
}

func TestReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment end to end")
	}
	env := sharedEnv(t)
	report, err := Report(env)
	if err != nil {
		t.Fatal(err)
	}
	for _, section := range []string{
		"# Reproduction report",
		"## Table I",
		"## Figure 1",
		"## Figure 2",
		"## Figures 3 & 4",
		"## §VII-A",
		"## Figure 5",
		"## Ablations",
	} {
		if !strings.Contains(report, section) {
			t.Errorf("report missing section %q", section)
		}
	}
	// Every family appears in the Table I section.
	for _, fam := range env.Dataset.Families() {
		if !strings.Contains(report, fam) {
			t.Errorf("report missing family %s", fam)
		}
	}
	if strings.Contains(report, "NaN") {
		t.Error("report contains NaN values")
	}
}
