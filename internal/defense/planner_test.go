package defense

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
)

func TestPlanFromForecast(t *testing.T) {
	point := []float64{10, 20, 30}
	upper := []float64{15, 25, 35}
	plans, err := PlanFromForecast(point, upper, PlannerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range plans {
		if p.Reserved != upper[i] {
			t.Errorf("plan %d reserved %v, want upper %v", i, p.Reserved, upper[i])
		}
	}
	// Floor and cap apply.
	plans, err = PlanFromForecast(point, upper, PlannerConfig{Floor: 20, Cap: 30})
	if err != nil {
		t.Fatal(err)
	}
	if plans[0].Reserved != 20 {
		t.Errorf("floor not applied: %v", plans[0].Reserved)
	}
	if plans[2].Reserved != 30 {
		t.Errorf("cap not applied: %v", plans[2].Reserved)
	}
	// Headroom multiplies the upper bound.
	plans, _ = PlanFromForecast(point, upper, PlannerConfig{Headroom: 2})
	if plans[0].Reserved != 30 {
		t.Errorf("headroom not applied: %v", plans[0].Reserved)
	}
	// An upper bound below the point forecast is raised to the point.
	plans, _ = PlanFromForecast([]float64{50}, []float64{40}, PlannerConfig{})
	if plans[0].Reserved != 50 {
		t.Errorf("upper < point should reserve the point: %v", plans[0].Reserved)
	}
	if _, err := PlanFromForecast(nil, nil, PlannerConfig{}); err == nil {
		t.Error("empty forecast should error")
	}
	if _, err := PlanFromForecast(point, upper[:2], PlannerConfig{}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestStaticPlanAndEvaluate(t *testing.T) {
	plans := StaticPlan(100, 4)
	if len(plans) != 4 || plans[3].Reserved != 100 {
		t.Fatalf("static plan = %+v", plans)
	}
	actual := []float64{50, 150, 100, 80}
	m, err := Evaluate(plans, actual)
	if err != nil {
		t.Fatal(err)
	}
	if m.MeanReserved != 100 {
		t.Errorf("mean reserved = %v", m.MeanReserved)
	}
	if m.MissedVolume != 50 {
		t.Errorf("missed volume = %v, want 50", m.MissedVolume)
	}
	if m.MissRate != 0.25 {
		t.Errorf("miss rate = %v, want 0.25", m.MissRate)
	}
	if want := 380.0 / 400.0; math.Abs(m.Utilization-want) > 1e-12 {
		t.Errorf("utilization = %v, want %v", m.Utilization, want)
	}
	if _, err := Evaluate(plans, actual[:2]); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Evaluate(nil, nil); err == nil {
		t.Error("empty should error")
	}
}

func TestPredictivePlanBeatsStaticOnARWorkload(t *testing.T) {
	// AR(1) magnitudes: the predictive plan should hold less capacity at a
	// comparable (or lower) miss rate than worst-case static provisioning.
	s := stats.NewSampler(121)
	n := 1200
	series := make([]float64, n)
	level := 100.0
	for i := 0; i < n; i++ {
		level = 100 + 0.9*(level-100) + s.Normal(0, 8)
		series[i] = level
	}
	train, test := series[:1000], series[1000:]
	pred := &core.ARIMAPredictor{}
	if err := pred.Fit(train); err != nil {
		t.Fatal(err)
	}
	point := make([]float64, len(test))
	upper := make([]float64, len(test))
	for i, x := range test {
		p, err := pred.PredictNext()
		if err != nil {
			t.Fatal(err)
		}
		point[i] = p
		upper[i] = p + 2.5*8 // ~99% one-step band for known sigma
		pred.Update(x)
	}
	plans, err := PlanFromForecast(point, upper, PlannerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	predictive, err := Evaluate(plans, test)
	if err != nil {
		t.Fatal(err)
	}
	maxTrain := 0.0
	for _, x := range train {
		if x > maxTrain {
			maxTrain = x
		}
	}
	static, err := Evaluate(StaticPlan(maxTrain, len(test)), test)
	if err != nil {
		t.Fatal(err)
	}
	if predictive.MeanReserved >= static.MeanReserved {
		t.Errorf("predictive reserves %v, static %v — no saving", predictive.MeanReserved, static.MeanReserved)
	}
	if predictive.MissRate > 0.05 {
		t.Errorf("predictive miss rate = %v, want <= 0.05", predictive.MissRate)
	}
	if predictive.Utilization <= static.Utilization {
		t.Errorf("predictive utilization %v should beat static %v", predictive.Utilization, static.Utilization)
	}
}

func TestStandDown(t *testing.T) {
	m := &core.DurationModel{Mu: 7, Sigma: 0.6, N: 100}
	wait, err := StandDown(m, 0, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	// Waiting from t=0 with 95% confidence is the 95th percentile.
	if q := m.Quantile(0.95); math.Abs(wait-q) > q*0.01 {
		t.Errorf("stand-down from 0 = %v, want ~%v", wait, q)
	}
	// Conditional wait after surviving 1000s: the survival at
	// elapsed+wait must be ~5% of the survival at elapsed.
	elapsed := 1000.0
	wait, err = StandDown(m, elapsed, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	got := m.Survival(elapsed+wait) / m.Survival(elapsed)
	if math.Abs(got-0.05) > 0.01 {
		t.Errorf("conditional survival after stand-down = %v, want ~0.05", got)
	}
	// Validation.
	if _, err := StandDown(nil, 0, 0.9); err == nil {
		t.Error("nil model should error")
	}
	if _, err := StandDown(m, 0, 0); err == nil {
		t.Error("confidence 0 should error")
	}
	if _, err := StandDown(m, 0, 1); err == nil {
		t.Error("confidence 1 should error")
	}
	// Negative elapsed is treated as 0.
	w2, err := StandDown(m, -50, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w2-wait) > wait && w2 <= 0 {
		t.Errorf("negative elapsed mishandled: %v", w2)
	}
}
