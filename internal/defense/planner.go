// Package defense turns the models' predictions into mitigation decisions —
// the paper's stated purpose ("guide defense resources provisioning
// proactively", §II-B): scrubbing-capacity plans from magnitude forecasts
// with confidence headroom, and stand-down scheduling from the
// remaining-duration model.
package defense

import (
	"errors"
	"math"

	"repro/internal/core"
)

// CapacityPlan is a per-step scrubbing reservation.
type CapacityPlan struct {
	// Reserved is the capacity to hold (same unit as the forecast,
	// typically bots or Gbps-equivalents).
	Reserved float64
}

// PlannerConfig tunes plan construction.
type PlannerConfig struct {
	// Headroom multiplies the forecast band's upper edge (default 1.0 —
	// reserve exactly the upper confidence bound).
	Headroom float64
	// Floor is the minimum reservation regardless of forecast.
	Floor float64
	// Cap bounds the reservation from above (0 = unbounded).
	Cap float64
}

func (c PlannerConfig) withDefaults() PlannerConfig {
	if c.Headroom <= 0 {
		c.Headroom = 1
	}
	return c
}

// PlanFromForecast builds per-step capacity plans from point forecasts and
// their upper confidence bounds (see arima.Model.ForecastInterval). point
// and upper must have equal nonzero length.
func PlanFromForecast(point, upper []float64, cfg PlannerConfig) ([]CapacityPlan, error) {
	if len(point) == 0 || len(point) != len(upper) {
		return nil, errors.New("defense: point/upper forecast length mismatch")
	}
	cfg = cfg.withDefaults()
	plans := make([]CapacityPlan, len(point))
	for i := range point {
		r := upper[i] * cfg.Headroom
		if r < point[i] {
			r = point[i]
		}
		if r < cfg.Floor {
			r = cfg.Floor
		}
		if cfg.Cap > 0 && r > cfg.Cap {
			r = cfg.Cap
		}
		plans[i] = CapacityPlan{Reserved: r}
	}
	return plans, nil
}

// StaticPlan reserves a constant capacity for every step (the baseline the
// paper's proactive defenses improve on).
func StaticPlan(capacity float64, steps int) []CapacityPlan {
	plans := make([]CapacityPlan, steps)
	for i := range plans {
		plans[i] = CapacityPlan{Reserved: capacity}
	}
	return plans
}

// Metrics summarizes how a plan performed against realized attack volumes.
type Metrics struct {
	// MeanReserved is the average capacity held.
	MeanReserved float64
	// MissedVolume is the total attack volume exceeding the reservation.
	MissedVolume float64
	// MissRate is the fraction of steps where the reservation was
	// insufficient.
	MissRate float64
	// Utilization is total attack volume divided by total reserved
	// capacity (higher = less over-provisioning).
	Utilization float64
}

// Evaluate scores plans against the realized per-step attack volumes.
func Evaluate(plans []CapacityPlan, actual []float64) (Metrics, error) {
	if len(plans) == 0 || len(plans) != len(actual) {
		return Metrics{}, errors.New("defense: plans/actual length mismatch")
	}
	var reserved, missed, volume float64
	misses := 0
	for i, p := range plans {
		reserved += p.Reserved
		volume += actual[i]
		if actual[i] > p.Reserved {
			missed += actual[i] - p.Reserved
			misses++
		}
	}
	n := float64(len(plans))
	m := Metrics{
		MeanReserved: reserved / n,
		MissedVolume: missed,
		MissRate:     float64(misses) / n,
	}
	if reserved > 0 {
		m.Utilization = volume / reserved
	}
	return m, nil
}

// StandDown decides when mitigation for an in-progress attack can be
// released: after the attack has run for elapsed seconds, it returns the
// additional seconds to keep defenses up so that the attack has ended with
// probability at least confidence, according to the fitted duration model.
func StandDown(m *core.DurationModel, elapsed, confidence float64) (float64, error) {
	if m == nil {
		return 0, errors.New("defense: nil duration model")
	}
	if confidence <= 0 || confidence >= 1 {
		return 0, errors.New("defense: confidence must be in (0, 1)")
	}
	if elapsed < 0 {
		elapsed = 0
	}
	// Find t with P(D > elapsed + t | D > elapsed) <= 1 - confidence,
	// i.e. Survival(elapsed+t) <= (1-confidence) * Survival(elapsed).
	target := (1 - confidence) * m.Survival(elapsed)
	if target <= 0 {
		return 0, nil
	}
	lo, hi := 0.0, math.Max(m.Quantile(0.999)-elapsed, 1)
	for hi < 1e9 && m.Survival(elapsed+hi) > target {
		hi *= 2
	}
	for i := 0; i < 100 && hi-lo > 1; i++ {
		mid := (lo + hi) / 2
		if m.Survival(elapsed+mid) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi, nil
}
