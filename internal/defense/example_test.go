package defense_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/defense"
)

// Plan scrubbing capacity from forecasts and evaluate against realized
// attack volumes.
func ExamplePlanFromForecast() {
	point := []float64{100, 120, 90}
	upper := []float64{130, 150, 115}
	plans, err := defense.PlanFromForecast(point, upper, defense.PlannerConfig{Floor: 100})
	if err != nil {
		panic(err)
	}
	actual := []float64{110, 160, 95}
	m, err := defense.Evaluate(plans, actual)
	if err != nil {
		panic(err)
	}
	fmt.Printf("mean reserved %.1f, missed %.0f, miss rate %.2f\n",
		m.MeanReserved, m.MissedVolume, m.MissRate)
	// Output:
	// mean reserved 131.7, missed 10, miss rate 0.33
}

// Decide how long mitigation must stay active for an in-progress attack.
func ExampleStandDown() {
	// Median duration exp(6.9) ~ 1000s with moderate spread.
	m := &core.DurationModel{Mu: 6.9077, Sigma: 0.5, N: 500}
	wait, err := defense.StandDown(m, 600, 0.9)
	if err != nil {
		panic(err)
	}
	fmt.Printf("after 600s, keep defenses up another ~%dmin\n", int(wait/60))
	// Output:
	// after 600s, keep defenses up another ~23min
}
