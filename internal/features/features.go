// Package features implements the paper's feature analysis and extraction
// (§III): bot magnitude series, activity levels (Table I), turnaround and
// inter-launching times with multistage attack linking, the normalized
// active-bot feature A^b (Eq. 2), the cumulative activity feature A^f
// (Eq. 1), and the silhouette-style source-distribution feature A^s
// (Eqs. 3–4) built on AS-level mapping and valley-free hop distances.
package features

import (
	"sort"
	"time"

	"repro/internal/astopo"
	"repro/internal/stats"
	"repro/internal/trace"
)

// ActivityLevel is one row of Table I.
type ActivityLevel struct {
	Family     string
	AvgPerDay  float64 // average number of attacks per active day
	ActiveDays int     // number of days with at least one attack
	CV         float64 // coefficient of variation of daily counts
}

// ActivityLevels computes Table I from a dataset: per family, the average
// number of attacks per active day, the number of active days, and the CV
// of the daily attack counts. Rows are ordered by family activity
// (descending total attacks).
func ActivityLevels(ds *trace.Dataset) []ActivityLevel {
	out := make([]ActivityLevel, 0, 10)
	for _, fam := range ds.Families() {
		daily := DailyCounts(ds.ByFamily(fam))
		out = append(out, ActivityLevel{
			Family:     fam,
			AvgPerDay:  stats.Mean(daily),
			ActiveDays: len(daily),
			CV:         stats.CV(daily),
		})
	}
	return out
}

// DailyCounts returns the attack counts of the active days (days with at
// least one attack) in chronological order.
func DailyCounts(attacks []trace.Attack) []float64 {
	counts := make(map[string]int)
	var days []string
	for i := range attacks {
		d := attacks[i].Start.UTC().Format("2006-01-02")
		if counts[d] == 0 {
			days = append(days, d)
		}
		counts[d]++
	}
	sort.Strings(days)
	out := make([]float64, len(days))
	for i, d := range days {
		out[i] = float64(counts[d])
	}
	return out
}

// MagnitudeSeries returns the bot magnitudes of the attacks in
// chronological order — the time-series representation of §III-A1 that
// Figure 1 predicts.
func MagnitudeSeries(attacks []trace.Attack) []float64 {
	out := make([]float64, len(attacks))
	for i := range attacks {
		out[i] = float64(attacks[i].Magnitude())
	}
	return out
}

// DurationSeries returns the attack durations (seconds) in chronological
// order (the T^d_j inputs of the spatial model).
func DurationSeries(attacks []trace.Attack) []float64 {
	out := make([]float64, len(attacks))
	for i := range attacks {
		out[i] = attacks[i].DurationSec
	}
	return out
}

// HourSeries returns the hour-of-day of each attack, and DaySeries the
// day-of-month — the T^ts decomposition of §III-B2.
func HourSeries(attacks []trace.Attack) []float64 {
	out := make([]float64, len(attacks))
	for i := range attacks {
		out[i] = float64(attacks[i].Hour())
	}
	return out
}

// DaySeries returns the day-of-month of each attack.
func DaySeries(attacks []trace.Attack) []float64 {
	out := make([]float64, len(attacks))
	for i := range attacks {
		out[i] = float64(attacks[i].Day())
	}
	return out
}

// InterLaunchTimes returns the times between consecutive attacks in
// seconds (the waiting-time half of the turnaround feature, §III-A2).
// The slice has len(attacks)-1 entries.
func InterLaunchTimes(attacks []trace.Attack) []float64 {
	if len(attacks) < 2 {
		return nil
	}
	out := make([]float64, len(attacks)-1)
	for i := 1; i < len(attacks); i++ {
		out[i-1] = attacks[i].Start.Sub(attacks[i-1].Start).Seconds()
	}
	return out
}

// Multistage linking window per §III-A2: consecutive attacks on the same
// target between 30 seconds and 24 hours apart form one multistage attack.
const (
	MultistageMin = 30 * time.Second
	MultistageMax = 24 * time.Hour
)

// MultistageChains groups a target's chronological attacks into multistage
// chains: runs of consecutive attacks whose inter-launching times fall in
// [MultistageMin, MultistageMax]. Attacks launched closer than the minimum
// (effectively simultaneous) or farther than the maximum break the chain.
func MultistageChains(attacks []trace.Attack) [][]trace.Attack {
	if len(attacks) == 0 {
		return nil
	}
	var chains [][]trace.Attack
	cur := []trace.Attack{attacks[0]}
	for i := 1; i < len(attacks); i++ {
		gap := attacks[i].Start.Sub(attacks[i-1].Start)
		if gap >= MultistageMin && gap <= MultistageMax {
			cur = append(cur, attacks[i])
		} else {
			chains = append(chains, cur)
			cur = []trace.Attack{attacks[i]}
		}
	}
	chains = append(chains, cur)
	return chains
}

// AFSeries computes the activity-level feature A^f_{t_i} (Eq. 1): after
// each attack, the cumulative number of the family's attacks divided by
// the elapsed observation days. The series is indexed by attack.
func AFSeries(attacks []trace.Attack) []float64 {
	if len(attacks) == 0 {
		return nil
	}
	t0 := attacks[0].Start
	out := make([]float64, len(attacks))
	for i := range attacks {
		days := attacks[i].Start.Sub(t0).Hours()/24 + 1
		out[i] = float64(i+1) / days
	}
	return out
}

// ABSeries computes the normalized active-bot feature A^b_{t_i} (Eq. 2)
// from a family's hourly reports: the number of active bots divided by the
// cumulative number of distinct bots observed up to that report.
func ABSeries(reports []trace.HourlyReport) []float64 {
	seen := make(map[astopo.IPv4]bool)
	out := make([]float64, len(reports))
	for i := range reports {
		for _, b := range reports[i].ActiveBots {
			seen[b] = true
		}
		out[i] = float64(len(reports[i].ActiveBots)) / float64(len(seen))
	}
	return out
}
