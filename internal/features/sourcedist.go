package features

import (
	"sort"

	"repro/internal/astopo"
	"repro/internal/trace"
)

// SourceDist computes the source-distribution feature A^s (Eqs. 3–4) and
// the AS-share vectors that Figure 2 predicts. It needs the IP→ASN map and
// a valley-free distance oracle over the inferred AS graph.
type SourceDist struct {
	IPMap  *astopo.IPMap
	Oracle *astopo.DistanceOracle
}

// Value computes A^s for one attack:
//
//	A^s = ( Σ_j N^{AS_j} / N_{AS_j} ) / DT
//
// where the numerator sums the intra-AS densities (bots located in AS_j
// over the AS's announced address space) and DT is the mean pairwise
// valley-free hop distance between the involved ASes. More bots packed
// into fewer, closer ASes gives a larger A^s. When all bots sit in one AS
// (no pairwise distances), DT defaults to 1.
func (sd *SourceDist) Value(a *trace.Attack) float64 {
	perAS := sd.botASCounts(a)
	if len(perAS) == 0 {
		return 0
	}
	var intra float64
	ases := make([]astopo.AS, 0, len(perAS))
	for as, n := range perAS {
		total := sd.IPMap.AddressCount(as)
		if total > 0 {
			intra += float64(n) / float64(total)
		}
		ases = append(ases, as)
	}
	dt, pairs := sd.Oracle.MeanPairwiseDistance(ases)
	if pairs == 0 || dt == 0 {
		dt = 1
	}
	return intra / dt
}

// Series computes A^s for each attack in order.
func (sd *SourceDist) Series(attacks []trace.Attack) []float64 {
	out := make([]float64, len(attacks))
	for i := range attacks {
		out[i] = sd.Value(&attacks[i])
	}
	return out
}

// botASCounts maps an attack's bots to per-AS counts, dropping unrouted
// addresses.
func (sd *SourceDist) botASCounts(a *trace.Attack) map[astopo.AS]int {
	out := make(map[astopo.AS]int)
	for _, ip := range a.Bots {
		if as, ok := sd.IPMap.Lookup(ip); ok {
			out[as]++
		}
	}
	return out
}

// ASShare is the fraction of an attack's bots originating in one AS.
type ASShare struct {
	AS    astopo.AS
	Share float64
}

// Shares returns the attack's source-AS distribution, descending by share.
func (sd *SourceDist) Shares(a *trace.Attack) []ASShare {
	perAS := sd.botASCounts(a)
	var total int
	for _, n := range perAS {
		total += n
	}
	if total == 0 {
		return nil
	}
	out := make([]ASShare, 0, len(perAS))
	for as, n := range perAS {
		out = append(out, ASShare{AS: as, Share: float64(n) / float64(total)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Share != out[j].Share {
			return out[i].Share > out[j].Share
		}
		return out[i].AS < out[j].AS
	})
	return out
}

// ShareSeries returns, for each attack, the share of bots originating in
// the given AS — the per-AS series the spatial model predicts for the
// Figure 2 distributions.
func (sd *SourceDist) ShareSeries(attacks []trace.Attack, as astopo.AS) []float64 {
	out := make([]float64, len(attacks))
	for i := range attacks {
		perAS := sd.botASCounts(&attacks[i])
		var total int
		for _, n := range perAS {
			total += n
		}
		if total > 0 {
			out[i] = float64(perAS[as]) / float64(total)
		}
	}
	return out
}

// TopSourceASes returns the k ASes contributing the most bots across the
// given attacks, descending.
func (sd *SourceDist) TopSourceASes(attacks []trace.Attack, k int) []astopo.AS {
	counts := make(map[astopo.AS]int)
	for i := range attacks {
		for as, n := range sd.botASCounts(&attacks[i]) {
			counts[as] += n
		}
	}
	ases := make([]astopo.AS, 0, len(counts))
	for as := range counts {
		ases = append(ases, as)
	}
	sort.Slice(ases, func(i, j int) bool {
		if counts[ases[i]] != counts[ases[j]] {
			return counts[ases[i]] > counts[ases[j]]
		}
		return ases[i] < ases[j]
	})
	if k > 0 && len(ases) > k {
		ases = ases[:k]
	}
	return ases
}

// AggregateShares returns the overall source-AS distribution across many
// attacks (bot-weighted), descending by share. This is the "attacker ASN
// distribution" compared against predictions in Figure 2.
func (sd *SourceDist) AggregateShares(attacks []trace.Attack) []ASShare {
	counts := make(map[astopo.AS]int)
	var total int
	for i := range attacks {
		for as, n := range sd.botASCounts(&attacks[i]) {
			counts[as] += n
			total += n
		}
	}
	if total == 0 {
		return nil
	}
	out := make([]ASShare, 0, len(counts))
	for as, n := range counts {
		out = append(out, ASShare{AS: as, Share: float64(n) / float64(total)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Share != out[j].Share {
			return out[i].Share > out[j].Share
		}
		return out[i].AS < out[j].AS
	})
	return out
}
