package features

import (
	"math"
	"testing"
	"time"

	"repro/internal/astopo"
	"repro/internal/trace"
)

func mkAttack(id int, family string, start time.Time, dur float64, tgt astopo.IPv4, as astopo.AS, bots []astopo.IPv4) trace.Attack {
	return trace.Attack{
		ID: id, Family: family, Start: start, DurationSec: dur,
		TargetIP: tgt, TargetAS: as, Bots: bots,
	}
}

var base = time.Date(2012, 8, 1, 10, 0, 0, 0, time.UTC)

func TestDailyCountsAndActivityLevels(t *testing.T) {
	ds, err := trace.New([]trace.Attack{
		mkAttack(1, "A", base, 60, 1, 1, []astopo.IPv4{1}),
		mkAttack(2, "A", base.Add(2*time.Hour), 60, 1, 1, []astopo.IPv4{1}),
		mkAttack(3, "A", base.Add(48*time.Hour), 60, 1, 1, []astopo.IPv4{1}),
		mkAttack(4, "B", base.Add(time.Hour), 60, 2, 2, []astopo.IPv4{2, 3}),
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := DailyCounts(ds.ByFamily("A"))
	if len(counts) != 2 || counts[0] != 2 || counts[1] != 1 {
		t.Errorf("DailyCounts = %v, want [2 1]", counts)
	}
	levels := ActivityLevels(ds)
	if len(levels) != 2 {
		t.Fatalf("levels = %v", levels)
	}
	// Family A: 3 attacks over 2 active days -> avg 1.5.
	if levels[0].Family != "A" || levels[0].AvgPerDay != 1.5 || levels[0].ActiveDays != 2 {
		t.Errorf("A level = %+v", levels[0])
	}
	// CV of [2,1]: mean 1.5, sample std ~0.707 -> CV ~0.471.
	if math.Abs(levels[0].CV-0.4714) > 0.001 {
		t.Errorf("A CV = %v", levels[0].CV)
	}
}

func TestSeriesExtractors(t *testing.T) {
	attacks := []trace.Attack{
		mkAttack(1, "A", base, 100, 1, 1, []astopo.IPv4{1, 2}),
		mkAttack(2, "A", base.Add(90*time.Minute), 200, 1, 1, []astopo.IPv4{1, 2, 3}),
	}
	if got := MagnitudeSeries(attacks); got[0] != 2 || got[1] != 3 {
		t.Errorf("MagnitudeSeries = %v", got)
	}
	if got := DurationSeries(attacks); got[0] != 100 || got[1] != 200 {
		t.Errorf("DurationSeries = %v", got)
	}
	if got := HourSeries(attacks); got[0] != 10 || got[1] != 11 {
		t.Errorf("HourSeries = %v", got)
	}
	if got := DaySeries(attacks); got[0] != 1 || got[1] != 1 {
		t.Errorf("DaySeries = %v", got)
	}
	gaps := InterLaunchTimes(attacks)
	if len(gaps) != 1 || gaps[0] != 5400 {
		t.Errorf("InterLaunchTimes = %v", gaps)
	}
	if InterLaunchTimes(attacks[:1]) != nil {
		t.Error("single attack should have no gaps")
	}
}

func TestMultistageChains(t *testing.T) {
	attacks := []trace.Attack{
		mkAttack(1, "A", base, 10, 1, 1, nil),
		mkAttack(2, "A", base.Add(time.Hour), 10, 1, 1, nil),                // within 24h -> same chain
		mkAttack(3, "A", base.Add(time.Hour+10*time.Second), 10, 1, 1, nil), // < 30s gap -> breaks
		mkAttack(4, "A", base.Add(50*time.Hour), 10, 1, 1, nil),             // > 24h -> breaks
	}
	chains := MultistageChains(attacks)
	if len(chains) != 3 {
		t.Fatalf("chains = %d, want 3", len(chains))
	}
	if len(chains[0]) != 2 {
		t.Errorf("first chain = %d attacks, want 2", len(chains[0]))
	}
	if MultistageChains(nil) != nil {
		t.Error("empty input should be nil")
	}
}

func TestAFSeries(t *testing.T) {
	attacks := []trace.Attack{
		mkAttack(1, "A", base, 10, 1, 1, nil),
		mkAttack(2, "A", base.Add(24*time.Hour), 10, 1, 1, nil),
	}
	af := AFSeries(attacks)
	if len(af) != 2 {
		t.Fatal("length")
	}
	// After first attack: 1 attack over 1 day.
	if af[0] != 1 {
		t.Errorf("af[0] = %v", af[0])
	}
	// After second: 2 attacks over 2 days.
	if af[1] != 1 {
		t.Errorf("af[1] = %v", af[1])
	}
	if AFSeries(nil) != nil {
		t.Error("empty input should be nil")
	}
}

func TestABSeries(t *testing.T) {
	reports := []trace.HourlyReport{
		{ActiveBots: []astopo.IPv4{1, 2}},
		{ActiveBots: []astopo.IPv4{2, 3}},
		{ActiveBots: []astopo.IPv4{1}},
	}
	ab := ABSeries(reports)
	// Cumulative distinct: 2, 3, 3.
	want := []float64{1, 2.0 / 3.0, 1.0 / 3.0}
	for i := range want {
		if math.Abs(ab[i]-want[i]) > 1e-12 {
			t.Errorf("ab = %v, want %v", ab, want)
			break
		}
	}
}

// sourceDistFixture builds an IP map and oracle over the hand-checked
// astopo test topology.
func sourceDistFixture(t *testing.T) *SourceDist {
	t.Helper()
	g := astopo.NewGraph()
	g.AddLink(1, 2, astopo.RelPeer)
	g.AddLink(10, 1, astopo.RelCustomerToProvider)
	g.AddLink(11, 1, astopo.RelCustomerToProvider)
	g.AddLink(100, 10, astopo.RelCustomerToProvider)
	g.AddLink(101, 10, astopo.RelCustomerToProvider)
	g.AddLink(102, 11, astopo.RelCustomerToProvider)
	ipm, err := astopo.NewIPMap([]astopo.PrefixRange{
		{Lo: 1000, Hi: 1099, Owner: 100}, // 100 addresses
		{Lo: 2000, Hi: 2049, Owner: 101}, // 50 addresses
		{Lo: 3000, Hi: 3099, Owner: 102},
	})
	if err != nil {
		t.Fatal(err)
	}
	return &SourceDist{IPMap: ipm, Oracle: astopo.NewDistanceOracle(g)}
}

func TestSourceDistValue(t *testing.T) {
	sd := sourceDistFixture(t)
	// 10 bots in AS100 (of 100 addrs), 5 in AS101 (of 50): intra = 0.1+0.1.
	bots := make([]astopo.IPv4, 0, 15)
	for i := 0; i < 10; i++ {
		bots = append(bots, astopo.IPv4(1000+i))
	}
	for i := 0; i < 5; i++ {
		bots = append(bots, astopo.IPv4(2000+i))
	}
	a := mkAttack(1, "A", base, 10, 1, 1, bots)
	// DT: hop distance 100<->101 = 2 (via shared provider 10).
	want := (0.1 + 0.1) / 2.0
	if got := sd.Value(&a); math.Abs(got-want) > 1e-12 {
		t.Errorf("Value = %v, want %v", got, want)
	}
	// Single-AS attack: DT defaults to 1.
	a2 := mkAttack(2, "A", base, 10, 1, 1, bots[:10])
	if got := sd.Value(&a2); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("single-AS Value = %v, want 0.1", got)
	}
	// Unrouted bots only: value 0.
	a3 := mkAttack(3, "A", base, 10, 1, 1, []astopo.IPv4{9999})
	if got := sd.Value(&a3); got != 0 {
		t.Errorf("unrouted Value = %v", got)
	}
	// More concentrated attacks yield larger A^s: same bots packed in one
	// AS beat the same count split across distant ASes.
	concentrated := mkAttack(4, "A", base, 10, 1, 1, bots[:10])
	spread := mkAttack(5, "A", base, 10, 1, 1, append(append([]astopo.IPv4{}, bots[:5]...), 3000, 3001, 3002, 3003, 3004))
	if sd.Value(&concentrated) <= sd.Value(&spread) {
		t.Errorf("concentration should raise A^s: %v vs %v", sd.Value(&concentrated), sd.Value(&spread))
	}
}

func TestSourceDistShares(t *testing.T) {
	sd := sourceDistFixture(t)
	a := mkAttack(1, "A", base, 10, 1, 1, []astopo.IPv4{1000, 1001, 1002, 2000})
	shares := sd.Shares(&a)
	if len(shares) != 2 {
		t.Fatalf("shares = %v", shares)
	}
	if shares[0].AS != 100 || math.Abs(shares[0].Share-0.75) > 1e-12 {
		t.Errorf("top share = %+v", shares[0])
	}
	if shares[1].AS != 101 || math.Abs(shares[1].Share-0.25) > 1e-12 {
		t.Errorf("second share = %+v", shares[1])
	}
	empty := mkAttack(2, "A", base, 10, 1, 1, nil)
	if sd.Shares(&empty) != nil {
		t.Error("no bots should give nil shares")
	}
}

func TestShareSeriesAndTopAndAggregate(t *testing.T) {
	sd := sourceDistFixture(t)
	attacks := []trace.Attack{
		mkAttack(1, "A", base, 10, 1, 1, []astopo.IPv4{1000, 1001}),                // all AS100
		mkAttack(2, "A", base.Add(time.Hour), 10, 1, 1, []astopo.IPv4{1000, 2000}), // 50/50
	}
	series := sd.ShareSeries(attacks, 100)
	if series[0] != 1 || series[1] != 0.5 {
		t.Errorf("ShareSeries = %v", series)
	}
	top := sd.TopSourceASes(attacks, 1)
	if len(top) != 1 || top[0] != 100 {
		t.Errorf("TopSourceASes = %v", top)
	}
	agg := sd.AggregateShares(attacks)
	if len(agg) != 2 || agg[0].AS != 100 || math.Abs(agg[0].Share-0.75) > 1e-12 {
		t.Errorf("AggregateShares = %v", agg)
	}
	var sum float64
	for _, s := range agg {
		sum += s.Share
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("aggregate shares sum to %v", sum)
	}
}

func TestSeriesMatchesPerAttackValue(t *testing.T) {
	sd := sourceDistFixture(t)
	attacks := []trace.Attack{
		mkAttack(1, "A", base, 10, 1, 1, []astopo.IPv4{1000, 2000}),
		mkAttack(2, "A", base.Add(time.Hour), 10, 1, 1, []astopo.IPv4{3000}),
	}
	series := sd.Series(attacks)
	for i := range attacks {
		if series[i] != sd.Value(&attacks[i]) {
			t.Errorf("series[%d] mismatch", i)
		}
	}
}
