package trace_test

import (
	"fmt"
	"time"

	"repro/internal/astopo"
	"repro/internal/trace"
)

// Build a dataset and inspect the most active family.
func ExampleNew() {
	start := time.Date(2012, 8, 1, 12, 0, 0, 0, time.UTC)
	ds, err := trace.New([]trace.Attack{
		{ID: 2, Family: "DirtJumper", Start: start.Add(time.Hour), DurationSec: 600, TargetIP: 10, TargetAS: 1, Bots: []astopo.IPv4{1, 2, 3}},
		{ID: 1, Family: "Pandora", Start: start, DurationSec: 300, TargetIP: 20, TargetAS: 2, Bots: []astopo.IPv4{4, 5}},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("attacks:", ds.Len())
	fmt.Println("first:", ds.Attacks[0].Family)
	fmt.Println("magnitude of #2:", ds.ByFamily("DirtJumper")[0].Magnitude())
	// Output:
	// attacks: 2
	// first: Pandora
	// magnitude of #2: 3
}
