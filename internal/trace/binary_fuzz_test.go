package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"repro/internal/astopo"
)

// FuzzBatchDecoder hammers the binary batch decoder with arbitrary body
// bytes — torn tails, bit flips, hostile lengths, concatenated batches —
// in the FuzzScanSegment corpus style. Whatever the input, Decode must
// not panic, must bound its reads (no allocation driven by a hostile
// length field beyond the frame cap), and on success every decoded
// record must re-encode to exactly the payload bytes the decoder reports
// (the WAL passthrough invariant).
func FuzzBatchDecoder(f *testing.F) {
	mk := func(attacks ...Attack) []byte {
		var buf bytes.Buffer
		enc := NewBatchEncoder(&buf)
		for i := range attacks {
			if err := enc.Encode(&attacks[i]); err != nil {
				f.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	t0 := time.Date(2012, 8, 3, 14, 0, 0, 0, time.UTC)
	a1 := Attack{ID: 1, Family: "DirtJumper", Start: t0, DurationSec: 900,
		TargetIP: 0x0a000001, TargetAS: 64512, Bots: []astopo.IPv4{1, 2, 3}}
	a2 := Attack{ID: 2, Family: "Optima", Start: t0.Add(time.Hour), DurationSec: 60,
		TargetIP: 0x0a000002, TargetAS: 64513}
	valid := mk(a1, a2)

	f.Add([]byte{})
	f.Add([]byte("ddosbat1"))
	f.Add(valid)
	f.Add(valid[:len(valid)-3])                         // torn payload
	f.Add(valid[:len(batchMagic)+3])                    // torn frame header
	f.Add(append(append([]byte{}, valid...), 0x01))     // trailing garbage
	f.Add(append(append([]byte{}, valid...), valid...)) // concatenated batches
	f.Add([]byte("ddosbat1\xff\xff\xff\xff\x00\x00\x00\x00")) // hostile length
	f.Add([]byte(`[{"id":1}]`))                         // JSON mislabeled as batch
	bitflip := bytes.Clone(valid)
	bitflip[len(bitflip)-1] ^= 0x40
	f.Add(bitflip)
	hugeBots := bytes.Clone(valid)
	// Corrupt record 1's bot count without fixing the CRC: must be caught.
	binary.LittleEndian.PutUint32(hugeBots[len(batchMagic)+frameHeaderLen+44+10:], 0xfffffff0)
	f.Add(hugeBots)

	dec := NewBatchDecoder()
	f.Fuzz(func(t *testing.T, data []byte) {
		dec.Reset(bytes.NewReader(data))
		err := dec.Decode(64)
		if err != nil {
			var fe *BatchFrameError
			var te *BatchTooLargeError
			if !errors.Is(err, ErrBatchMagic) && !errors.As(err, &fe) && !errors.As(err, &te) {
				t.Fatalf("in-memory decode returned a transport error: %v", err)
			}
			if errors.As(err, &fe) && fe.Index != dec.Len()+1 {
				t.Fatalf("frame error index %d, decoded %d records", fe.Index, dec.Len())
			}
			return
		}
		// Success: the WAL passthrough invariant — every record re-encodes
		// byte-identically to its reported payload, and replays through
		// UnmarshalRecord to an equal record.
		for i := 0; i < dec.Len(); i++ {
			rec := dec.Records()[i]
			enc, encErr := AppendRecord(nil, &rec)
			if encErr != nil {
				t.Fatalf("record %d does not re-encode: %v", i, encErr)
			}
			if !bytes.Equal(enc, dec.Payload(i)) {
				t.Fatalf("record %d re-encoding differs from wire payload", i)
			}
			var back Attack
			if err := UnmarshalRecord(dec.Payload(i), &back); err != nil {
				t.Fatalf("record %d payload does not replay: %v", i, err)
			}
			if back.ID != rec.ID || !back.Start.Equal(rec.Start) || back.Family != rec.Family {
				t.Fatalf("record %d replay mismatch: %+v vs %+v", i, back, rec)
			}
		}

		// A valid prefix followed by this fuzz input never mangles the
		// prefix's records.
		combined := append(bytes.Clone(valid), data...)
		dec.Reset(bytes.NewReader(combined))
		decErr := dec.Decode(0)
		if decErr == nil && dec.Len() < 2 {
			t.Fatalf("valid 2-record prefix decoded to %d records", dec.Len())
		}
		if dec.Len() >= 2 {
			if dec.Records()[0].ID != 1 || dec.Records()[1].ID != 2 {
				t.Fatalf("valid prefix mangled under trailing fuzz bytes: %+v", dec.Records()[:2])
			}
		}
	})
}
