package trace

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"testing"
	"time"
	"unsafe"

	"repro/internal/astopo"
)

func sampleAttacks() []Attack {
	t0 := time.Date(2012, 8, 3, 14, 30, 0, 0, time.UTC)
	return []Attack{
		{
			ID: 1, Family: "DirtJumper", Start: t0, DurationSec: 900,
			TargetIP: 0x0a000001, TargetAS: 64512,
			Bots: []astopo.IPv4{1, 2, 3},
		},
		{
			ID: 2, Family: "Optima", Start: t0.Add(3 * time.Hour).In(time.FixedZone("", 7200)),
			DurationSec: 42.5, TargetIP: 0x0a000002, TargetAS: 64513,
			Bots: []astopo.IPv4{0xffffffff},
		},
		{
			ID: 3, Family: "DirtJumper", Start: t0.Add(6*time.Hour + 123456789*time.Nanosecond),
			DurationSec: 0, TargetIP: 0x0a000003, TargetAS: 64512,
			Bots: nil,
		},
	}
}

func encodeBatch(t *testing.T, attacks []Attack) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := NewBatchEncoder(&buf)
	for i := range attacks {
		if err := enc.Encode(&attacks[i]); err != nil {
			t.Fatalf("encode record %d: %v", i, err)
		}
	}
	return buf.Bytes()
}

func TestBatchRoundTrip(t *testing.T) {
	attacks := sampleAttacks()
	body := encodeBatch(t, attacks)

	d := NewBatchDecoder()
	d.Reset(bytes.NewReader(body))
	if err := d.Decode(0); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if d.Len() != len(attacks) {
		t.Fatalf("decoded %d records, want %d", d.Len(), len(attacks))
	}
	for i, got := range d.Records() {
		want := attacks[i]
		if got.ID != want.ID || got.Family != want.Family ||
			got.DurationSec != want.DurationSec || got.TargetIP != want.TargetIP ||
			got.TargetAS != want.TargetAS {
			t.Fatalf("record %d = %+v, want %+v", i, got, want)
		}
		if !got.Start.Equal(want.Start) {
			t.Fatalf("record %d start %v, want %v", i, got.Start, want.Start)
		}
		if len(got.Bots) != len(want.Bots) {
			t.Fatalf("record %d bots %v, want %v", i, got.Bots, want.Bots)
		}
		for j := range got.Bots {
			if got.Bots[j] != want.Bots[j] {
				t.Fatalf("record %d bot %d = %v, want %v", i, j, got.Bots[j], want.Bots[j])
			}
		}
	}
}

// TestBatchJSONParity pins what the "byte-identical store checkpoint"
// property rests on: a record round-tripped through the binary wire
// marshals to the same JSON as one round-tripped through the JSON wire
// (timestamps included, UTC and fixed-offset zones alike).
func TestBatchJSONParity(t *testing.T) {
	attacks := sampleAttacks()
	body := encodeBatch(t, attacks)
	d := NewBatchDecoder()
	d.Reset(bytes.NewReader(body))
	if err := d.Decode(0); err != nil {
		t.Fatal(err)
	}
	for i := range attacks {
		viaJSON, err := json.Marshal(&attacks[i])
		if err != nil {
			t.Fatal(err)
		}
		var fromJSON Attack
		if err := json.Unmarshal(viaJSON, &fromJSON); err != nil {
			t.Fatal(err)
		}
		jsonAgain, _ := json.Marshal(&fromJSON)
		viaBinary, err := json.Marshal(&d.Records()[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(jsonAgain, viaBinary) {
			t.Fatalf("record %d JSON mismatch:\n json wire: %s\n binary:    %s", i, jsonAgain, viaBinary)
		}
	}
}

// TestBatchPayloadIsWALPayload pins the zero-re-serialization contract:
// the decoder's raw payload view is byte-identical to AppendRecord's
// output, so the serve layer can append it to the WAL directly and
// UnmarshalRecord can replay it.
func TestBatchPayloadIsWALPayload(t *testing.T) {
	attacks := sampleAttacks()
	body := encodeBatch(t, attacks)
	d := NewBatchDecoder()
	d.Reset(bytes.NewReader(body))
	if err := d.Decode(0); err != nil {
		t.Fatal(err)
	}
	for i := range attacks {
		want, err := AppendRecord(nil, &attacks[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(d.Payload(i), want) {
			t.Fatalf("record %d payload differs from AppendRecord output", i)
		}
		if !IsBinaryRecord(d.Payload(i)) {
			t.Fatalf("record %d payload not recognized as binary", i)
		}
		var back Attack
		if err := UnmarshalRecord(d.Payload(i), &back); err != nil {
			t.Fatalf("UnmarshalRecord(%d): %v", i, err)
		}
		if back.ID != attacks[i].ID || !back.Start.Equal(attacks[i].Start) {
			t.Fatalf("replayed record %d = %+v, want %+v", i, back, attacks[i])
		}
	}
	if IsBinaryRecord([]byte(`{"id":1}`)) {
		t.Fatal("JSON payload misdetected as binary")
	}
}

func TestBatchDecoderReuseKeepsArenasCorrect(t *testing.T) {
	d := NewBatchDecoder()
	first := encodeBatch(t, sampleAttacks())
	second := encodeBatch(t, sampleAttacks()[:1])
	for round, body := range [][]byte{first, second, first} {
		d.Reset(bytes.NewReader(body))
		if err := d.Decode(0); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		wantLen := 3
		if round == 1 {
			wantLen = 1
		}
		if d.Len() != wantLen {
			t.Fatalf("round %d: %d records, want %d", round, d.Len(), wantLen)
		}
		if got := d.Records()[0].Family; got != "DirtJumper" {
			t.Fatalf("round %d: family %q", round, got)
		}
	}
	// Family strings must be interned across batches: same backing string.
	d.Reset(bytes.NewReader(first))
	if err := d.Decode(0); err != nil {
		t.Fatal(err)
	}
	f1 := d.Records()[0].Family
	d.Reset(bytes.NewReader(second))
	if err := d.Decode(0); err != nil {
		t.Fatal(err)
	}
	f2 := d.Records()[0].Family
	if unsafe.StringData(f1) != unsafe.StringData(f2) {
		t.Fatal("family string not interned across batches")
	}
}

func TestBatchDecoderEmptyBody(t *testing.T) {
	d := NewBatchDecoder()
	d.Reset(bytes.NewReader(nil))
	if err := d.Decode(0); err != nil {
		t.Fatalf("empty body: %v", err)
	}
	if d.Len() != 0 {
		t.Fatalf("empty body decoded %d records", d.Len())
	}
}

func TestBatchDecoderErrors(t *testing.T) {
	good := encodeBatch(t, sampleAttacks())

	t.Run("bad magic", func(t *testing.T) {
		d := NewBatchDecoder()
		d.Reset(bytes.NewReader([]byte(`[{"id":1}]`)))
		if err := d.Decode(0); !errors.Is(err, ErrBatchMagic) {
			t.Fatalf("err = %v, want ErrBatchMagic", err)
		}
	})
	t.Run("short magic", func(t *testing.T) {
		d := NewBatchDecoder()
		d.Reset(bytes.NewReader(good[:4]))
		if err := d.Decode(0); !errors.Is(err, ErrBatchMagic) {
			t.Fatalf("err = %v, want ErrBatchMagic", err)
		}
	})
	t.Run("torn tail", func(t *testing.T) {
		d := NewBatchDecoder()
		d.Reset(bytes.NewReader(good[:len(good)-3]))
		var fe *BatchFrameError
		err := d.Decode(0)
		if !errors.As(err, &fe) || fe.Index != 3 {
			t.Fatalf("err = %v, want BatchFrameError at record 3", err)
		}
	})
	t.Run("bit flip", func(t *testing.T) {
		mut := bytes.Clone(good)
		mut[len(batchMagic)+frameHeaderLen+5] ^= 0x40 // inside record 1's payload
		d := NewBatchDecoder()
		d.Reset(bytes.NewReader(mut))
		var fe *BatchFrameError
		err := d.Decode(0)
		if !errors.As(err, &fe) || fe.Index != 1 {
			t.Fatalf("err = %v, want BatchFrameError at record 1", err)
		}
	})
	t.Run("hostile length", func(t *testing.T) {
		mut := bytes.Clone(good)
		binary.LittleEndian.PutUint32(mut[len(batchMagic):], 0xffffffff)
		d := NewBatchDecoder()
		d.Reset(bytes.NewReader(mut))
		var fe *BatchFrameError
		err := d.Decode(0)
		if !errors.As(err, &fe) || fe.Index != 1 {
			t.Fatalf("err = %v, want BatchFrameError at record 1", err)
		}
	})
	t.Run("too many records", func(t *testing.T) {
		d := NewBatchDecoder()
		d.Reset(bytes.NewReader(good))
		var te *BatchTooLargeError
		err := d.Decode(2)
		if !errors.As(err, &te) || te.Max != 2 {
			t.Fatalf("err = %v, want BatchTooLargeError{2}", err)
		}
	})
	t.Run("hostile timestamp", func(t *testing.T) {
		a := Attack{ID: 1, Family: "x", Start: time.Unix(0, 0).UTC(), DurationSec: 1, TargetAS: 1}
		payload, err := AppendRecord(nil, &a)
		if err != nil {
			t.Fatal(err)
		}
		binary.LittleEndian.PutUint64(payload[10:], uint64(maxUnixSec+1))
		var back Attack
		if err := UnmarshalRecord(payload, &back); err == nil {
			t.Fatal("out-of-range timestamp accepted")
		}
	})
}

// TestBatchDecoderStopsAtMaxWithoutReading pins that the record cap is
// enforced before the over-cap frame's payload is pulled off the wire.
func TestBatchDecoderStopsAtMaxWithoutReading(t *testing.T) {
	body := encodeBatch(t, sampleAttacks())
	r := &countingReader{r: bytes.NewReader(body)}
	d := NewBatchDecoder()
	d.Reset(r)
	var te *BatchTooLargeError
	if err := d.Decode(1); !errors.As(err, &te) {
		t.Fatalf("err = %v, want BatchTooLargeError", err)
	}
	if d.Len() != 1 {
		t.Fatalf("decoded %d records before cap, want 1", d.Len())
	}
}

type countingReader struct {
	r io.Reader
	n int
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += n
	return n, err
}
