package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReadJSON checks that arbitrary input never panics the dataset loader
// and that anything it accepts re-serializes losslessly.
func FuzzReadJSON(f *testing.F) {
	f.Add([]byte(`{"attacks":[]}`))
	f.Add([]byte(`{"attacks":[{"id":1,"family":"A","start":"2012-08-01T00:00:00Z","duration_sec":60,"target_ip":1,"target_as":2,"bots":[3,4]}]}`))
	f.Add([]byte(`{nope`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		ds, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := ds.WriteJSON(&buf); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		if back.Len() != ds.Len() {
			t.Fatalf("round trip changed attack count")
		}
	})
}

// FuzzStreamDecoder hammers the loose-record decoder — the ddosd ingest
// framing — with truncated, concatenated, and interleaved JSON. The
// invariants: Next never panics, never loops forever, errors are sticky,
// and io.EOF means a clean end of input, never a disguised parse error.
func FuzzStreamDecoder(f *testing.F) {
	const rec = `{"id":1,"family":"A","start":"2012-08-01T00:00:00Z","duration_sec":60,"target_ip":1,"target_as":2,"bots":[3,4]}`
	seeds := [][]byte{
		[]byte(rec),
		[]byte(rec + "\n" + rec + "\n"),      // NDJSON
		[]byte(rec + rec),                    // concatenated, no separator
		[]byte("[" + rec + "," + rec + "]"),  // bare array
		[]byte("[" + rec + "," + rec),        // truncated array
		[]byte(rec[:len(rec)/2]),             // truncated mid-object
		[]byte("  \n\t[ ]"),                  // whitespace + empty array
		[]byte("[" + rec + ",{" + rec + "]"), // interleaved brace garbage
		[]byte(rec + "[" + rec + "]"),        // object then array (mixed framing)
		[]byte(`{"attacks":[` + rec + `]}`),  // dataset framing fed to the record decoder
		[]byte("null"),
		[]byte(""),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewStreamDecoder(bytes.NewReader(data))
		var decoded []*Attack
		var firstErr error
		// One record per input byte is a hard ceiling for every framing the
		// decoder accepts; more iterations would mean a non-terminating loop.
		for i := 0; i <= len(data)+1; i++ {
			a, err := d.Next()
			if err != nil {
				firstErr = err
				break
			}
			if a == nil {
				t.Fatal("nil record with nil error")
			}
			decoded = append(decoded, a)
		}
		if firstErr == nil {
			t.Fatalf("decoder yielded more than %d records from %d input bytes", len(data)+1, len(data))
		}
		// Errors are sticky: the next call must repeat the same error.
		if _, err := d.Next(); !errors.Is(err, firstErr) && err.Error() != firstErr.Error() {
			t.Fatalf("error not sticky: first %v, then %v", firstErr, err)
		}
		// Anything decoded must survive an encode/decode round trip.
		if errors.Is(firstErr, io.EOF) && len(decoded) > 0 {
			var buf bytes.Buffer
			enc := NewEncoder(&buf)
			for _, a := range decoded {
				if err := enc.Encode(a); err != nil {
					t.Fatalf("re-encode of accepted record failed: %v", err)
				}
			}
			if err := enc.Close(); err != nil {
				t.Fatal(err)
			}
			n := 0
			rd := NewDecoder(&buf)
			for {
				if _, err := rd.Next(); err != nil {
					if !errors.Is(err, io.EOF) {
						t.Fatalf("re-read of accepted records failed: %v", err)
					}
					break
				}
				n++
			}
			if n != len(decoded) {
				t.Fatalf("round trip kept %d of %d records", n, len(decoded))
			}
		}
	})
}
