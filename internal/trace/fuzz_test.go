package trace

import (
	"bytes"
	"testing"
)

// FuzzReadJSON checks that arbitrary input never panics the dataset loader
// and that anything it accepts re-serializes losslessly.
func FuzzReadJSON(f *testing.F) {
	f.Add([]byte(`{"attacks":[]}`))
	f.Add([]byte(`{"attacks":[{"id":1,"family":"A","start":"2012-08-01T00:00:00Z","duration_sec":60,"target_ip":1,"target_as":2,"bots":[3,4]}]}`))
	f.Add([]byte(`{nope`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		ds, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := ds.WriteJSON(&buf); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		if back.Len() != ds.Len() {
			t.Fatalf("round trip changed attack count")
		}
	})
}
