package trace

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/astopo"
)

func streamAttacks(n int) []Attack {
	t0 := time.Date(2012, 8, 1, 0, 0, 0, 0, time.UTC)
	out := make([]Attack, n)
	for i := range out {
		out[i] = Attack{
			ID:          i + 1,
			Family:      "DirtJumper",
			Start:       t0.Add(time.Duration(i) * time.Hour),
			DurationSec: 60 * float64(i+1),
			TargetIP:    astopo.IPv4(1000 + i),
			TargetAS:    64500,
			Bots:        []astopo.IPv4{1, 2, 3}[:1+i%3],
		}
	}
	return out
}

func drain(t *testing.T, next func() (*Attack, error)) []Attack {
	t.Helper()
	var out []Attack
	for {
		a, err := next()
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		out = append(out, *a)
	}
}

// TestDecoderDatasetFraming streams the canonical on-disk framing and
// checks record-level equality with the slice loader.
func TestDecoderDatasetFraming(t *testing.T) {
	ds := &Dataset{Attacks: streamAttacks(7)}
	var buf bytes.Buffer
	if err := ds.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got := drain(t, NewDecoder(bytes.NewReader(buf.Bytes())).Next)
	if len(got) != 7 || got[0].ID != 1 || got[6].ID != 7 {
		t.Fatalf("streamed %d records, want 7 in order", len(got))
	}
}

// TestDecoderFramings covers the accepted top-level shapes and the
// historical tolerances (unknown keys, null, empty input).
func TestDecoderFramings(t *testing.T) {
	rec := `{"id":1,"family":"A","start":"2012-08-01T00:00:00Z","duration_sec":60,"target_ip":1,"target_as":2,"bots":[3]}`
	cases := []struct {
		name, in string
		want     int
	}{
		{"dataset", `{"attacks":[` + rec + `]}`, 1},
		{"bare array", `[` + rec + `,` + rec + `]`, 2},
		{"unknown keys skipped", `{"version":3,"attacks":[` + rec + `],"extra":{"x":[1]}}`, 1},
		{"attacks null", `{"attacks":null}`, 0},
		{"top-level null", `null`, 0},
		{"empty object", `{}`, 0},
		{"empty input", ``, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := drain(t, NewDecoder(strings.NewReader(c.in)).Next)
			if len(got) != c.want {
				t.Fatalf("got %d records, want %d", len(got), c.want)
			}
		})
	}
}

// TestDecoderErrors checks malformed input errors and error stickiness.
func TestDecoderErrors(t *testing.T) {
	for _, in := range []string{`true`, `42`, `"x"`, `{nope`, `{"attacks":7}`, `[{"id":1},`} {
		d := NewDecoder(strings.NewReader(in))
		var err error
		for err == nil {
			_, err = d.Next()
		}
		if errors.Is(err, io.EOF) && in != `[{"id":1},` {
			t.Fatalf("input %q: want a non-EOF error", in)
		}
		_, again := d.Next()
		if !errors.Is(again, err) && again.Error() != err.Error() {
			t.Fatalf("input %q: error not sticky: %v then %v", in, err, again)
		}
	}
}

// TestStreamDecoderFramings covers the ingest shapes: single object,
// concatenated objects, NDJSON, and a bare array.
func TestStreamDecoderFramings(t *testing.T) {
	rec := `{"id":%d,"family":"A","start":"2012-08-01T00:00:00Z","duration_sec":60,"target_ip":1,"target_as":2,"bots":[3]}`
	one := strings.Replace(rec, "%d", "1", 1)
	two := strings.Replace(rec, "%d", "2", 1)
	cases := []struct {
		name, in string
		want     int
	}{
		{"single object", one, 1},
		{"concatenated", one + two, 2},
		{"ndjson", one + "\n" + two + "\n", 2},
		{"array", `[` + one + `,` + two + `]`, 2},
		{"empty", ``, 0},
		{"spaces", "  \n\t ", 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := drain(t, NewStreamDecoder(strings.NewReader(c.in)).Next)
			if len(got) != c.want {
				t.Fatalf("got %d records, want %d", len(got), c.want)
			}
			for i, a := range got {
				if a.ID != i+1 {
					t.Fatalf("record %d has ID %d", i, a.ID)
				}
			}
		})
	}
}

// TestEncoderMatchesEncodingJSON pins the streaming encoder to the exact
// bytes encoding/json produces for the Dataset struct, including the
// zero-record and nil-slice cases.
func TestEncoderMatchesEncodingJSON(t *testing.T) {
	for _, n := range []int{0, 1, 5} {
		ds := &Dataset{Attacks: streamAttacks(n)}
		var want bytes.Buffer
		if err := json.NewEncoder(&want).Encode(ds); err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		if err := ds.WriteJSON(&got); err != nil {
			t.Fatal(err)
		}
		if got.String() != want.String() {
			t.Fatalf("n=%d: streaming bytes diverge:\n got %q\nwant %q", n, got.String(), want.String())
		}
	}
	var nilDS Dataset
	var got bytes.Buffer
	if err := nilDS.WriteJSON(&got); err != nil {
		t.Fatal(err)
	}
	if got.String() != `{"attacks":null}`+"\n" {
		t.Fatalf("nil slice: %q", got.String())
	}
}

// TestEncoderAfterClose ensures the container cannot be reopened.
func TestEncoderAfterClose(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := enc.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	a := streamAttacks(1)[0]
	if err := enc.Encode(&a); err == nil {
		t.Fatal("Encode after Close must fail")
	}
}
