// Package trace defines the verified-DDoS-attack records the models
// consume, mirroring the schema of the paper's industrial dataset (§II):
// each attack carries a unique ID, the botnet family label, the start
// timestamp, a duration in seconds, the target, and the set of
// participating bot IPs. The package also reconstructs the dataset's
// hourly cumulative snapshot reports and provides chronological ordering,
// per-family/per-target views, the 80/20 train-test split, and JSON I/O.
package trace

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/astopo"
)

// Attack is one verified DDoS attack.
type Attack struct {
	// ID is the unique DDoS identifier.
	ID int `json:"id"`
	// Family is the label of the botnet family that launched the attack.
	Family string `json:"family"`
	// Start is the attack start timestamp.
	Start time.Time `json:"start"`
	// DurationSec is the approximate attack duration in seconds (the
	// dataset's Duration attribute).
	DurationSec float64 `json:"duration_sec"`
	// TargetIP identifies the victim.
	TargetIP astopo.IPv4 `json:"target_ip"`
	// TargetAS is the victim's autonomous system (T_l in the paper).
	TargetAS astopo.AS `json:"target_as"`
	// Bots lists the unique bot IPs observed in the attack; its length is
	// the attack's bot magnitude.
	Bots []astopo.IPv4 `json:"bots"`
	// Verdict is the streaming detector's classification of this record at
	// ingest time (a detect.Verdict* bitmask; 0 = baseline). It is
	// server-authoritative: serve overwrites whatever a client sends, the
	// binary wire does not carry it, and WAL replay recomputes it — only
	// store checkpoints persist it.
	Verdict uint8 `json:"verdict,omitempty"`
}

// Magnitude returns the number of bots involved (the paper's bots
// magnitude feature).
func (a *Attack) Magnitude() int { return len(a.Bots) }

// End returns the attack end time.
func (a *Attack) End() time.Time {
	return a.Start.Add(time.Duration(a.DurationSec * float64(time.Second)))
}

// Day returns the day-of-month component of the timestamp decomposition
// T_j^ts = (day, hour).
func (a *Attack) Day() int { return a.Start.Day() }

// Hour returns the hour-of-day component of the timestamp decomposition.
func (a *Attack) Hour() int { return a.Start.Hour() }

// Dataset is a chronologically ordered collection of attacks.
type Dataset struct {
	Attacks []Attack `json:"attacks"`
}

// New builds a dataset, sorting the attacks chronologically (ties broken
// by ID) and validating uniqueness of IDs.
func New(attacks []Attack) (*Dataset, error) {
	as := make([]Attack, len(attacks))
	copy(as, attacks)
	sort.Slice(as, func(i, j int) bool {
		if !as[i].Start.Equal(as[j].Start) {
			return as[i].Start.Before(as[j].Start)
		}
		return as[i].ID < as[j].ID
	})
	seen := make(map[int]bool, len(as))
	for _, a := range as {
		if seen[a.ID] {
			return nil, fmt.Errorf("trace: duplicate attack ID %d", a.ID)
		}
		seen[a.ID] = true
	}
	return &Dataset{Attacks: as}, nil
}

// Len returns the number of attacks.
func (d *Dataset) Len() int { return len(d.Attacks) }

// Families returns the family names present, ordered by descending attack
// count (most active first, as the paper ranks them).
func (d *Dataset) Families() []string {
	counts := make(map[string]int)
	for i := range d.Attacks {
		counts[d.Attacks[i].Family]++
	}
	out := make([]string, 0, len(counts))
	for f := range counts {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if counts[out[i]] != counts[out[j]] {
			return counts[out[i]] > counts[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// ByFamily returns the attacks of one family in chronological order.
func (d *Dataset) ByFamily(family string) []Attack {
	var out []Attack
	for i := range d.Attacks {
		if d.Attacks[i].Family == family {
			out = append(out, d.Attacks[i])
		}
	}
	return out
}

// ByTargetAS groups attacks by the victim's AS, preserving chronological
// order inside each group.
func (d *Dataset) ByTargetAS() map[astopo.AS][]Attack {
	out := make(map[astopo.AS][]Attack)
	for i := range d.Attacks {
		out[d.Attacks[i].TargetAS] = append(out[d.Attacks[i].TargetAS], d.Attacks[i])
	}
	return out
}

// ByTarget groups attacks by exact victim IP, preserving chronological
// order inside each group.
func (d *Dataset) ByTarget() map[astopo.IPv4][]Attack {
	out := make(map[astopo.IPv4][]Attack)
	for i := range d.Attacks {
		out[d.Attacks[i].TargetIP] = append(out[d.Attacks[i].TargetIP], d.Attacks[i])
	}
	return out
}

// Split divides the dataset chronologically: the first frac of attacks for
// training and the remainder for testing (the paper uses 80/20: 40,563
// train / 10,141 test).
func (d *Dataset) Split(frac float64) (train, test *Dataset) {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac * float64(len(d.Attacks)))
	return &Dataset{Attacks: d.Attacks[:n]}, &Dataset{Attacks: d.Attacks[n:]}
}

// TimeRange returns the first start and last end across all attacks.
func (d *Dataset) TimeRange() (first, last time.Time, err error) {
	if len(d.Attacks) == 0 {
		return time.Time{}, time.Time{}, errors.New("trace: empty dataset")
	}
	first = d.Attacks[0].Start
	last = d.Attacks[0].End()
	for i := range d.Attacks {
		if e := d.Attacks[i].End(); e.After(last) {
			last = e
		}
	}
	return first, last, nil
}

// WriteJSON streams the dataset as JSON, one record at a time (see
// Encoder); the bytes match what encoding/json would emit for the Dataset
// struct.
func (d *Dataset) WriteJSON(w io.Writer) error {
	if d.Attacks == nil {
		_, err := io.WriteString(w, `{"attacks":null}`+"\n")
		return err
	}
	enc := NewEncoder(w)
	for i := range d.Attacks {
		if err := enc.Encode(&d.Attacks[i]); err != nil {
			return err
		}
	}
	return enc.Close()
}

// ReadJSON parses a dataset written by WriteJSON and re-validates it. It
// decodes record-at-a-time (see Decoder), so peak memory is one record
// plus the accumulated slice.
func ReadJSON(r io.Reader) (*Dataset, error) {
	dec := NewDecoder(r)
	var attacks []Attack
	for {
		a, err := dec.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: decode: %w", err)
		}
		attacks = append(attacks, *a)
	}
	return New(attacks)
}

// SaveFile writes the dataset to path as JSON.
func (d *Dataset) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: save: %w", err)
	}
	defer f.Close()
	if err := d.WriteJSON(f); err != nil {
		return fmt.Errorf("trace: save: %w", err)
	}
	return f.Sync()
}

// LoadFile reads a dataset from a JSON file.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: load: %w", err)
	}
	defer f.Close()
	return ReadJSON(f)
}
