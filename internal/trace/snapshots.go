package trace

import (
	"sort"
	"time"

	"repro/internal/astopo"
)

// HourlyReport reproduces the dataset's collection unit (§II-C): for one
// botnet family at one wall-clock hour, the set of bots whose last known
// activity falls within the preceding 24 hours (the reports are cumulative
// over the past day).
type HourlyReport struct {
	Family string
	Time   time.Time
	// ActiveBots are the unique bot IPs active in the trailing 24 hours.
	ActiveBots []astopo.IPv4
}

// GenerateReports rebuilds the hourly report stream for one family over
// the dataset's time range: 24 reports per day, each listing the bots of
// attacks overlapping the trailing 24-hour window. This feeds the active
// bots feature A^b (Eq. 2).
func GenerateReports(d *Dataset, family string) []HourlyReport {
	attacks := d.ByFamily(family)
	if len(attacks) == 0 {
		return nil
	}
	first, last, err := d.TimeRange()
	if err != nil {
		return nil
	}
	start := first.Truncate(time.Hour)
	end := last.Truncate(time.Hour).Add(time.Hour)

	// Sweep: for each hour H, active bots are those of attacks with
	// activity in (H-24h, H]. An attack is active between Start and End.
	var reports []HourlyReport
	for h := start; !h.After(end); h = h.Add(time.Hour) {
		windowStart := h.Add(-24 * time.Hour)
		set := make(map[astopo.IPv4]bool)
		for i := range attacks {
			a := &attacks[i]
			if a.Start.After(h) {
				break // attacks are chronological
			}
			if a.End().After(windowStart) {
				for _, b := range a.Bots {
					set[b] = true
				}
			}
		}
		if len(set) == 0 {
			continue
		}
		bots := make([]astopo.IPv4, 0, len(set))
		for b := range set {
			bots = append(bots, b)
		}
		sort.Slice(bots, func(i, j int) bool { return bots[i] < bots[j] })
		reports = append(reports, HourlyReport{Family: family, Time: h, ActiveBots: bots})
	}
	return reports
}

// ActiveBotSeries reduces hourly reports to the count series used by the
// temporal model's A^b feature.
func ActiveBotSeries(reports []HourlyReport) []float64 {
	out := make([]float64, len(reports))
	for i := range reports {
		out[i] = float64(len(reports[i].ActiveBots))
	}
	return out
}
