package trace

import (
	"bytes"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/astopo"
)

func mkAttack(id int, family string, start time.Time, dur float64, tgt astopo.IPv4, as astopo.AS, nBots int) Attack {
	bots := make([]astopo.IPv4, nBots)
	for i := range bots {
		bots[i] = astopo.IPv4(1000*id + i)
	}
	return Attack{
		ID: id, Family: family, Start: start, DurationSec: dur,
		TargetIP: tgt, TargetAS: as, Bots: bots,
	}
}

func sampleDataset(t *testing.T) *Dataset {
	t.Helper()
	base := time.Date(2012, 8, 1, 0, 0, 0, 0, time.UTC)
	ds, err := New([]Attack{
		mkAttack(3, "B", base.Add(48*time.Hour), 600, 10, 1, 3),
		mkAttack(1, "A", base, 300, 10, 1, 2),
		mkAttack(2, "A", base.Add(2*time.Hour), 900, 20, 2, 5),
		mkAttack(4, "B", base.Add(72*time.Hour), 120, 20, 2, 1),
		mkAttack(5, "A", base.Add(96*time.Hour), 60, 10, 1, 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestNewSortsChronologically(t *testing.T) {
	ds := sampleDataset(t)
	for i := 1; i < ds.Len(); i++ {
		if ds.Attacks[i].Start.Before(ds.Attacks[i-1].Start) {
			t.Fatal("attacks not sorted")
		}
	}
	if ds.Attacks[0].ID != 1 {
		t.Errorf("first attack ID = %d, want 1", ds.Attacks[0].ID)
	}
}

func TestNewRejectsDuplicateIDs(t *testing.T) {
	a := mkAttack(1, "A", time.Now(), 1, 1, 1, 1)
	if _, err := New([]Attack{a, a}); err == nil {
		t.Error("duplicate IDs should error")
	}
}

func TestAttackAccessors(t *testing.T) {
	start := time.Date(2012, 9, 15, 13, 45, 0, 0, time.UTC)
	a := mkAttack(1, "A", start, 3600, 1, 1, 7)
	if a.Magnitude() != 7 {
		t.Errorf("Magnitude = %d", a.Magnitude())
	}
	if got := a.End(); !got.Equal(start.Add(time.Hour)) {
		t.Errorf("End = %v", got)
	}
	if a.Day() != 15 || a.Hour() != 13 {
		t.Errorf("Day/Hour = %d/%d", a.Day(), a.Hour())
	}
}

func TestFamiliesOrderedByActivity(t *testing.T) {
	ds := sampleDataset(t)
	fams := ds.Families()
	if len(fams) != 2 || fams[0] != "A" || fams[1] != "B" {
		t.Errorf("Families = %v, want [A B]", fams)
	}
}

func TestByFamilyAndGroups(t *testing.T) {
	ds := sampleDataset(t)
	as := ds.ByFamily("A")
	if len(as) != 3 {
		t.Fatalf("ByFamily(A) = %d attacks", len(as))
	}
	for i := 1; i < len(as); i++ {
		if as[i].Start.Before(as[i-1].Start) {
			t.Error("family view not chronological")
		}
	}
	if got := ds.ByFamily("nope"); got != nil {
		t.Errorf("unknown family = %v", got)
	}
	byAS := ds.ByTargetAS()
	if len(byAS[1]) != 3 || len(byAS[2]) != 2 {
		t.Errorf("ByTargetAS sizes = %d/%d", len(byAS[1]), len(byAS[2]))
	}
	byIP := ds.ByTarget()
	if len(byIP[10]) != 3 || len(byIP[20]) != 2 {
		t.Errorf("ByTarget sizes = %d/%d", len(byIP[10]), len(byIP[20]))
	}
}

func TestSplit(t *testing.T) {
	ds := sampleDataset(t)
	train, test := ds.Split(0.8)
	if train.Len() != 4 || test.Len() != 1 {
		t.Errorf("split = %d/%d, want 4/1", train.Len(), test.Len())
	}
	// Train strictly precedes test.
	if train.Attacks[3].Start.After(test.Attacks[0].Start) {
		t.Error("train leaks past test")
	}
	train, test = ds.Split(-1)
	if train.Len() != 0 || test.Len() != 5 {
		t.Error("clamped split wrong")
	}
}

func TestTimeRange(t *testing.T) {
	ds := sampleDataset(t)
	first, last, err := ds.TimeRange()
	if err != nil {
		t.Fatal(err)
	}
	if !first.Equal(ds.Attacks[0].Start) {
		t.Errorf("first = %v", first)
	}
	if !last.After(first) {
		t.Errorf("last = %v not after first", last)
	}
	empty := &Dataset{}
	if _, _, err := empty.TimeRange(); err == nil {
		t.Error("empty dataset should error")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	ds := sampleDataset(t)
	var buf bytes.Buffer
	if err := ds.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != ds.Len() {
		t.Fatalf("round trip lost attacks: %d vs %d", back.Len(), ds.Len())
	}
	for i := range ds.Attacks {
		a, b := ds.Attacks[i], back.Attacks[i]
		if a.ID != b.ID || a.Family != b.Family || !a.Start.Equal(b.Start) ||
			a.DurationSec != b.DurationSec || a.TargetIP != b.TargetIP ||
			a.TargetAS != b.TargetAS || len(a.Bots) != len(b.Bots) {
			t.Fatalf("attack %d mismatch: %+v vs %+v", i, a, b)
		}
	}
	if _, err := ReadJSON(bytes.NewBufferString("{nope")); err == nil {
		t.Error("bad JSON should error")
	}
}

func TestSaveLoadFile(t *testing.T) {
	ds := sampleDataset(t)
	path := filepath.Join(t.TempDir(), "ds.json")
	if err := ds.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != ds.Len() {
		t.Error("file round trip lost attacks")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file should error")
	}
}

func TestGenerateReportsCumulative24h(t *testing.T) {
	base := time.Date(2012, 8, 1, 0, 0, 0, 0, time.UTC)
	ds, err := New([]Attack{
		mkAttack(1, "A", base.Add(1*time.Hour), 600, 10, 1, 2),
		mkAttack(2, "A", base.Add(30*time.Hour), 600, 10, 1, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	reports := GenerateReports(ds, "A")
	if len(reports) == 0 {
		t.Fatal("no reports")
	}
	// A report at hour 2 sees only attack 1's bots.
	var at2, at25, at26, at31 *HourlyReport
	for i := range reports {
		switch reports[i].Time.Sub(base) / time.Hour {
		case 2:
			at2 = &reports[i]
		case 25:
			at25 = &reports[i]
		case 26:
			at26 = &reports[i]
		case 31:
			at31 = &reports[i]
		}
	}
	if at2 == nil || len(at2.ActiveBots) != 2 {
		t.Errorf("hour-2 report = %+v, want 2 bots", at2)
	}
	// Attack 1 ends at hour ~1.2: still inside the trailing-24h window at
	// hour 25, aged out at hour 26. Attack 2 has not started yet, so the
	// hour-26 report is empty and therefore skipped entirely.
	if at25 == nil || len(at25.ActiveBots) != 2 {
		t.Errorf("hour-25 report = %+v, want 2 bots", at25)
	}
	if at26 != nil {
		t.Errorf("hour-26 report should be skipped, got %+v", at26)
	}
	if at31 == nil || len(at31.ActiveBots) != 3 {
		t.Errorf("hour-31 report = %+v, want 3 bots", at31)
	}
	// The sweep ends at the dataset's last activity hour.
	lastReport := reports[len(reports)-1].Time
	if lastReport.Sub(base) > 32*time.Hour {
		t.Errorf("reports extend past dataset range: %v", lastReport)
	}
	if got := GenerateReports(ds, "nope"); got != nil {
		t.Errorf("unknown family reports = %v", got)
	}
	series := ActiveBotSeries(reports)
	if len(series) != len(reports) {
		t.Error("series length mismatch")
	}
	if series[0] != float64(len(reports[0].ActiveBots)) {
		t.Error("series value mismatch")
	}
}

func TestSummarize(t *testing.T) {
	base := time.Date(2012, 8, 1, 0, 0, 0, 0, time.UTC)
	ds, err := New([]Attack{
		mkAttack(1, "A", base, 7200, 10, 1, 2),                    // ends 02:00
		mkAttack(2, "B", base.Add(time.Hour), 7200, 20, 2, 3),     // overlaps 1
		mkAttack(3, "A", base.Add(90*time.Minute), 600, 10, 1, 1), // overlaps 1 and 2
		mkAttack(4, "A", base.Add(10*time.Hour), 600, 30, 3, 1),   // alone
	})
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(ds)
	if s.Attacks != 4 || s.Families != 2 {
		t.Errorf("summary = %+v", s)
	}
	if s.Targets != 3 || s.TargetASes != 3 {
		t.Errorf("targets = %d ases = %d", s.Targets, s.TargetASes)
	}
	// Bot IPs are 1000*id+i: all distinct -> 7 unique.
	if s.UniqueBots != 7 {
		t.Errorf("unique bots = %d, want 7", s.UniqueBots)
	}
	if s.PeakConcurrent != 3 {
		t.Errorf("peak concurrent = %d, want 3", s.PeakConcurrent)
	}
	if s.PerFamily["A"] != 3 || s.PerFamily["B"] != 1 {
		t.Errorf("per family = %v", s.PerFamily)
	}
	if !s.First.Equal(base) {
		t.Errorf("first = %v", s.First)
	}
	empty := Summarize(&Dataset{})
	if empty.Attacks != 0 || empty.PeakConcurrent != 0 {
		t.Errorf("empty summary = %+v", empty)
	}
}
