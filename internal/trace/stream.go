package trace

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Streaming JSON codec: record-at-a-time reading and writing of attack
// traces, so consumers with bounded memory — the ddosd ingest path, the
// ddosgen writer — never hold a whole dataset in RAM. The slice-based
// ReadJSON/WriteJSON are thin wrappers over these.

// Decoder reads a dataset one Attack at a time. It accepts the two dataset
// framings on disk: the canonical object {"attacks":[...]} (unknown keys
// are skipped, matching the historical loader) and a bare top-level array
// [...]. A top-level JSON null yields zero records, as the slice loader
// always did. Use NewStreamDecoder for record-stream framings (single
// objects, NDJSON).
type Decoder struct {
	dec  *json.Decoder
	err  error
	mode dmode
}

type dmode int

const (
	dInit    dmode = iota // framing not yet detected
	dArray                // inside a top-level [...] of records
	dObject               // inside {"attacks":[...]} between keys
	dRecords              // inside the "attacks" array of a dataset object
	dDone
)

// NewDecoder returns a streaming dataset decoder over r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{dec: json.NewDecoder(bufio.NewReader(r))}
}

// Next returns the next record, or io.EOF after the last one. Any other
// error is sticky: every subsequent call returns it again.
func (d *Decoder) Next() (*Attack, error) {
	if d.err != nil {
		return nil, d.err
	}
	a, err := d.next()
	if err != nil {
		d.err = err
		return nil, err
	}
	return a, nil
}

func (d *Decoder) next() (*Attack, error) {
	for {
		switch d.mode {
		case dInit:
			if err := d.detect(); err != nil {
				return nil, err
			}
		case dArray, dRecords:
			if d.dec.More() {
				var a Attack
				if err := d.dec.Decode(&a); err != nil {
					return nil, err
				}
				return &a, nil
			}
			if _, err := d.dec.Token(); err != nil { // consume ']'
				return nil, err
			}
			if d.mode == dArray {
				d.mode = dDone
			} else {
				d.mode = dObject
			}
		case dObject:
			if err := d.objectKey(); err != nil {
				return nil, err
			}
		case dDone:
			return nil, io.EOF
		}
	}
}

// detect consumes the first token and fixes the framing.
func (d *Decoder) detect() error {
	tok, err := d.dec.Token()
	if err != nil {
		if errors.Is(err, io.EOF) {
			// Empty input: zero records, like decoding into a zero struct.
			d.mode = dDone
			return nil
		}
		return err
	}
	switch t := tok.(type) {
	case json.Delim:
		switch t {
		case '[':
			d.mode = dArray
		case '{':
			d.mode = dObject
		default:
			return fmt.Errorf("trace: unexpected delimiter %v", t)
		}
	case nil: // top-level null: empty dataset
		d.mode = dDone
	default:
		return fmt.Errorf("trace: expected dataset object or array, got %T", tok)
	}
	return nil
}

// objectKey advances past one key of the dataset object: entering the
// "attacks" array, skipping any other key's value, or finishing at '}'.
func (d *Decoder) objectKey() error {
	tok, err := d.dec.Token()
	if err != nil {
		return err
	}
	if delim, ok := tok.(json.Delim); ok && delim == '}' {
		d.mode = dDone
		return nil
	}
	key, ok := tok.(string)
	if !ok {
		return fmt.Errorf("trace: expected object key, got %v", tok)
	}
	if key != "attacks" {
		var skip json.RawMessage
		return d.dec.Decode(&skip)
	}
	tok, err = d.dec.Token()
	if err != nil {
		return err
	}
	switch t := tok.(type) {
	case json.Delim:
		if t != '[' {
			return fmt.Errorf("trace: attacks must be an array, got %v", t)
		}
		d.mode = dRecords
		return nil
	case nil: // "attacks": null — zero records, keep scanning keys
		return nil
	default:
		return fmt.Errorf("trace: attacks must be an array, got %T", tok)
	}
}

// StreamDecoder reads loose attack records: a bare JSON array, a single
// object, or a concatenated/newline-delimited stream of objects — the
// framings the ddosd ingest endpoint accepts. It is intentionally distinct
// from Decoder: a record object's keys are attack fields, while a dataset
// object's keys are container fields, so one decoder cannot serve both
// without guessing.
type StreamDecoder struct {
	dec   *json.Decoder
	br    *bufio.Reader
	err   error
	array bool
	init  bool
}

// NewStreamDecoder returns a record-stream decoder over r.
func NewStreamDecoder(r io.Reader) *StreamDecoder {
	br := bufio.NewReader(r)
	return &StreamDecoder{br: br, dec: json.NewDecoder(br)}
}

// Next returns the next record, or io.EOF after the last one. Errors are
// sticky.
func (s *StreamDecoder) Next() (*Attack, error) {
	if s.err != nil {
		return nil, s.err
	}
	a, err := s.next()
	if err != nil {
		s.err = err
		return nil, err
	}
	return a, nil
}

func (s *StreamDecoder) next() (*Attack, error) {
	if !s.init {
		if err := s.detect(); err != nil {
			return nil, err
		}
	}
	if s.array {
		if !s.dec.More() {
			if _, err := s.dec.Token(); err != nil { // consume ']'
				return nil, err
			}
			return nil, io.EOF
		}
	}
	var a Attack
	if err := s.dec.Decode(&a); err != nil {
		return nil, err
	}
	return &a, nil
}

// detect peeks the first non-space byte to pick array vs stream framing
// without consuming record bytes.
func (s *StreamDecoder) detect() error {
	s.init = true
	for {
		b, err := s.br.ReadByte()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return io.EOF
			}
			return err
		}
		switch b {
		case ' ', '\t', '\r', '\n':
			continue
		case '[':
			if err := s.br.UnreadByte(); err != nil {
				return err
			}
			s.array = true
			if _, err := s.dec.Token(); err != nil { // consume '['
				return err
			}
			return nil
		default:
			return s.br.UnreadByte()
		}
	}
}

// Encoder writes a dataset in the canonical {"attacks":[...]} framing one
// record at a time. Close finishes the container; an Encoder closed with
// zero records emits {"attacks":[]}.
type Encoder struct {
	w      io.Writer
	n      int
	closed bool
}

// NewEncoder returns a streaming dataset encoder over w.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{w: w} }

// Encode appends one record.
func (e *Encoder) Encode(a *Attack) error {
	if e.closed {
		return errors.New("trace: encode after Close")
	}
	buf, err := json.Marshal(a)
	if err != nil {
		return fmt.Errorf("trace: encode: %w", err)
	}
	sep := ","
	if e.n == 0 {
		sep = `{"attacks":[`
	}
	if _, err := io.WriteString(e.w, sep); err != nil {
		return fmt.Errorf("trace: encode: %w", err)
	}
	if _, err := e.w.Write(buf); err != nil {
		return fmt.Errorf("trace: encode: %w", err)
	}
	e.n++
	return nil
}

// Close terminates the JSON container (with a trailing newline, matching
// encoding/json's Encoder). It does not close the underlying writer.
func (e *Encoder) Close() error {
	if e.closed {
		return nil
	}
	e.closed = true
	tail := "]}\n"
	if e.n == 0 {
		tail = `{"attacks":[]}` + "\n"
	}
	if _, err := io.WriteString(e.w, tail); err != nil {
		return fmt.Errorf("trace: encode: %w", err)
	}
	return nil
}
