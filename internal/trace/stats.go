package trace

import (
	"time"

	"repro/internal/astopo"
)

// Summary aggregates headline statistics of a dataset, mirroring the
// figures the paper reports for its dataset in §II (50,704 attacks, ~7
// months, per-family volumes, concurrent attacks).
type Summary struct {
	Attacks     int
	Families    int
	Targets     int
	TargetASes  int
	UniqueBots  int
	First, Last time.Time
	// PeakConcurrent is the maximum number of attacks in flight at any
	// attack-start instant (the paper reports an average of 243
	// simultaneous verified attacks at peak times).
	PeakConcurrent int
	// PerFamily maps family name to attack count.
	PerFamily map[string]int
}

// Summarize computes the dataset summary in one pass (plus a sweep for
// concurrency).
func Summarize(d *Dataset) Summary {
	s := Summary{PerFamily: make(map[string]int)}
	s.Attacks = len(d.Attacks)
	if s.Attacks == 0 {
		return s
	}
	targets := make(map[astopo.IPv4]bool)
	ases := make(map[astopo.AS]bool)
	bots := make(map[astopo.IPv4]bool)
	for i := range d.Attacks {
		a := &d.Attacks[i]
		s.PerFamily[a.Family]++
		targets[a.TargetIP] = true
		ases[a.TargetAS] = true
		for _, b := range a.Bots {
			bots[b] = true
		}
	}
	s.Families = len(s.PerFamily)
	s.Targets = len(targets)
	s.TargetASes = len(ases)
	s.UniqueBots = len(bots)
	s.First, s.Last, _ = d.TimeRange()

	// Concurrency sweep: at each attack start, count overlapping attacks.
	// Attacks are chronological; a min-heap of end times would be O(n log n),
	// but a simple two-pointer window over sorted ends is sufficient here.
	ends := make([]time.Time, 0, s.Attacks)
	for i := range d.Attacks {
		a := &d.Attacks[i]
		// Count attacks started before (or at) a.Start that have not ended.
		live := 0
		for _, e := range ends {
			if e.After(a.Start) {
				live++
			}
		}
		ends = append(ends, a.End())
		if live+1 > s.PeakConcurrent {
			s.PeakConcurrent = live + 1
		}
		// Keep the window small: drop ends that can no longer overlap.
		if len(ends) > 4096 {
			kept := ends[:0]
			for _, e := range ends {
				if e.After(a.Start) {
					kept = append(kept, e)
				}
			}
			ends = kept
		}
	}
	return s
}
