package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"time"

	"repro/internal/astopo"
)

// Binary batch wire codec: the high-throughput ingest framing behind
// POST /ingest with Content-Type application/x-ddos-batch. A batch body
// is an 8-byte magic header followed by frames that reuse the WAL's
// encoding — [length uint32 LE][crc32c uint32 LE][payload] — where each
// payload is one binary-encoded Attack record. Because the frame payload
// is byte-for-byte what the daemon's write-ahead log stores, an accepted
// network batch is appended to the log without re-serialization: the
// serve layer hands BatchDecoder.Payload(i) straight to wal.AppendBatch.
//
// The decoder is arena-based and reusable: payload bytes, decoded
// records, and bot IP lists all live in slices that persist across
// Reset, and family strings are interned, so a pooled decoder performs
// amortized zero allocations per record (pinned by
// serve.TestIngestBatchBinaryZeroAlloc).

const (
	// BatchContentType is the /ingest Content-Type selecting this codec.
	BatchContentType = "application/x-ddos-batch"
	// MaxRecordPayload caps one frame's payload, mirroring the WAL's
	// record sanity cap: a decoded length above it marks the frame
	// hostile instead of attempting the allocation.
	MaxRecordPayload = 16 << 20
	// frameHeaderLen is the [len][crc] framing overhead per record.
	frameHeaderLen = 8

	// recordMagic opens every binary record payload. It cannot collide
	// with a JSON record (which begins '{' or whitespace), so a WAL
	// holding a mix of legacy JSON frames and binary frames replays
	// unambiguously.
	recordMagic = 0xDB
	// recordVersion is bumped on any layout change.
	recordVersion = 1
	// recordFixedLen is the byte length of a record before the two
	// variable-length sections (family bytes, bot IPs).
	recordFixedLen = 48
)

// batchMagic opens every batch body (protocol versioning + a cheap guard
// against a JSON body mislabeled with the batch content type).
var batchMagic = []byte("ddosbat1")

// batchCRC is the CRC32C table, matching the WAL's choice (hardware
// support on amd64 and arm64).
var batchCRC = crc32.MakeTable(crc32.Castagnoli)

// zeroUnixSec is time.Time{}.Unix(): the encoder maps the zero Time
// through it, and the decoder maps it back to an exact zero Time so
// ValidateRecord's IsZero check treats both wires identically.
const zeroUnixSec = -62135596800

// maxUnixSec is 9999-12-31T23:59:59Z, the last instant RFC3339 (and so
// the JSON wire and the store checkpoint) can represent.
const maxUnixSec = 253402300799

// AppendRecord appends a's binary encoding to dst and returns the
// extended slice (append-style, so callers reuse one buffer across
// records). The layout, little-endian throughout:
//
//	[0]    recordMagic (0xDB)
//	[1]    version (1)
//	[2]    id int64
//	[10]   start unix seconds int64
//	[18]   start nanoseconds uint32
//	[22]   start zone offset seconds int32
//	[26]   duration_sec float64 bits
//	[34]   target_ip uint32
//	[38]   target_as uint32
//	[42]   family length uint16, then family bytes
//	[...]  bot count uint32, then count × uint32 bot IPs
func AppendRecord(dst []byte, a *Attack) ([]byte, error) {
	if len(a.Family) > math.MaxUint16 {
		return dst, fmt.Errorf("trace: family %d bytes over encodable max %d", len(a.Family), math.MaxUint16)
	}
	var sec int64
	var nanos uint32
	var offset int32
	if a.Start.IsZero() {
		sec = zeroUnixSec
	} else {
		sec = a.Start.Unix()
		nanos = uint32(a.Start.Nanosecond())
		_, off := a.Start.Zone()
		offset = int32(off)
	}
	dst = append(dst, recordMagic, recordVersion)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(a.ID))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(sec))
	dst = binary.LittleEndian.AppendUint32(dst, nanos)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(offset))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(a.DurationSec))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(a.TargetIP))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(a.TargetAS))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(a.Family)))
	dst = append(dst, a.Family...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(a.Bots)))
	for _, b := range a.Bots {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(b))
	}
	return dst, nil
}

// IsBinaryRecord reports whether payload opens with the binary record
// magic — the dispatch test WAL replay uses to tell binary frames from
// legacy JSON frames.
func IsBinaryRecord(payload []byte) bool {
	return len(payload) > 0 && payload[0] == recordMagic
}

// UnmarshalRecord decodes one binary record payload into a, allocating
// the family string and bot slice (the WAL replay path; the batched
// ingest path uses BatchDecoder's arenas instead).
func UnmarshalRecord(payload []byte, a *Attack) error {
	bots, err := decodeRecord(payload, a, nil, internString)
	if err != nil {
		return err
	}
	a.Bots = bots
	return nil
}

// internString is UnmarshalRecord's no-intern fallback.
func internString(b []byte) string { return string(b) }

// decodeRecord parses payload into a, appending bot IPs to bots (which
// may be nil) and resolving the family through intern. a.Bots is NOT
// set — the caller owns the returned slice (arena decoders defer the
// subslice fix-up until their arena stops growing).
func decodeRecord(payload []byte, a *Attack, bots []astopo.IPv4, intern func([]byte) string) ([]astopo.IPv4, error) {
	if len(payload) < recordFixedLen {
		return bots, fmt.Errorf("trace: binary record truncated at %d bytes (min %d)", len(payload), recordFixedLen)
	}
	if payload[0] != recordMagic {
		return bots, fmt.Errorf("trace: bad binary record magic 0x%02x", payload[0])
	}
	if payload[1] != recordVersion {
		return bots, fmt.Errorf("trace: unsupported binary record version %d", payload[1])
	}
	a.ID = int(int64(binary.LittleEndian.Uint64(payload[2:])))
	sec := int64(binary.LittleEndian.Uint64(payload[10:]))
	nanos := binary.LittleEndian.Uint32(payload[18:])
	offset := int32(binary.LittleEndian.Uint32(payload[22:]))
	a.DurationSec = math.Float64frombits(binary.LittleEndian.Uint64(payload[26:]))
	a.TargetIP = astopo.IPv4(binary.LittleEndian.Uint32(payload[34:]))
	a.TargetAS = astopo.AS(binary.LittleEndian.Uint32(payload[38:]))
	if nanos >= 1e9 {
		return bots, fmt.Errorf("trace: binary record nanoseconds %d out of range", nanos)
	}
	if offset < -18*3600 || offset > 18*3600 {
		return bots, fmt.Errorf("trace: binary record zone offset %ds out of range", offset)
	}
	// Bound the instant to what RFC3339 can express (year 1..9999), the
	// same range the JSON wire accepts — a hostile frame must not plant a
	// record the store checkpoint cannot re-marshal.
	if sec < zeroUnixSec || sec > maxUnixSec {
		return bots, fmt.Errorf("trace: binary record timestamp %d out of range", sec)
	}
	switch {
	case sec == zeroUnixSec && nanos == 0 && offset == 0:
		a.Start = time.Time{}
	case offset == 0:
		a.Start = time.Unix(sec, int64(nanos)).UTC()
	default:
		a.Start = time.Unix(sec, int64(nanos)).In(time.FixedZone("", int(offset)))
	}

	famLen := int(binary.LittleEndian.Uint16(payload[42:]))
	rest := payload[44:]
	if len(rest) < famLen+4 {
		return bots, fmt.Errorf("trace: binary record truncated in family section")
	}
	a.Family = intern(rest[:famLen])
	rest = rest[famLen:]
	botCount := int(binary.LittleEndian.Uint32(rest))
	rest = rest[4:]
	if len(rest) != botCount*4 {
		return bots, fmt.Errorf("trace: binary record bot section %d bytes, want %d", len(rest), botCount*4)
	}
	for i := 0; i < botCount; i++ {
		bots = append(bots, astopo.IPv4(binary.LittleEndian.Uint32(rest[i*4:])))
	}
	return bots, nil
}

// BatchEncoder writes a binary ingest batch: the magic header on the
// first record, then one CRC32C frame per record. Reset reuses the
// internal buffers across batches (the load generator encodes one batch
// per HTTP request from a pooled encoder).
type BatchEncoder struct {
	w       io.Writer
	payload []byte // per-record scratch
	frame   []byte // header scratch
	n       int
}

// NewBatchEncoder returns an encoder over w.
func NewBatchEncoder(w io.Writer) *BatchEncoder {
	return &BatchEncoder{w: w}
}

// Reset re-targets the encoder at w, keeping its buffers.
func (e *BatchEncoder) Reset(w io.Writer) {
	e.w = w
	e.n = 0
}

// Len returns the number of records encoded since the last Reset.
func (e *BatchEncoder) Len() int { return e.n }

// Encode appends one record to the batch.
func (e *BatchEncoder) Encode(a *Attack) error {
	if e.n == 0 {
		if _, err := e.w.Write(batchMagic); err != nil {
			return fmt.Errorf("trace: batch encode: %w", err)
		}
	}
	var err error
	e.payload, err = AppendRecord(e.payload[:0], a)
	if err != nil {
		return err
	}
	e.frame = e.frame[:0]
	e.frame = binary.LittleEndian.AppendUint32(e.frame, uint32(len(e.payload)))
	e.frame = binary.LittleEndian.AppendUint32(e.frame, crc32.Checksum(e.payload, batchCRC))
	if _, err := e.w.Write(e.frame); err != nil {
		return fmt.Errorf("trace: batch encode: %w", err)
	}
	if _, err := e.w.Write(e.payload); err != nil {
		return fmt.Errorf("trace: batch encode: %w", err)
	}
	e.n++
	return nil
}

// EncodeFrame appends one pre-encoded record payload (what AppendRecord
// produced and BatchDecoder.Payload returns) to the batch without
// re-serialization — the cluster router splits a decoded batch per owner
// node and forwards each partition's frames byte-for-byte.
func (e *BatchEncoder) EncodeFrame(payload []byte) error {
	if e.n == 0 {
		if _, err := e.w.Write(batchMagic); err != nil {
			return fmt.Errorf("trace: batch encode: %w", err)
		}
	}
	e.frame = e.frame[:0]
	e.frame = binary.LittleEndian.AppendUint32(e.frame, uint32(len(payload)))
	e.frame = binary.LittleEndian.AppendUint32(e.frame, crc32.Checksum(payload, batchCRC))
	if _, err := e.w.Write(e.frame); err != nil {
		return fmt.Errorf("trace: batch encode: %w", err)
	}
	if _, err := e.w.Write(payload); err != nil {
		return fmt.Errorf("trace: batch encode: %w", err)
	}
	e.n++
	return nil
}

// ErrBatchMagic reports a batch body that does not open with the
// protocol magic (a mislabeled or foreign payload).
var ErrBatchMagic = errors.New("trace: batch body missing ddosbat1 magic")

// BatchFrameError reports the first undecodable frame of a batch: a torn
// or truncated frame, a CRC mismatch, a hostile length, or a malformed
// record payload. Index is the 1-based position of the failing record in
// the batch. Unwrap exposes the cause (so http.MaxBytesError surfaces
// through errors.As for the 413 mapping).
type BatchFrameError struct {
	Index int
	Err   error
}

func (e *BatchFrameError) Error() string {
	return fmt.Sprintf("record %d: %v", e.Index, e.Err)
}

func (e *BatchFrameError) Unwrap() error { return e.Err }

// BatchTooLargeError reports a batch holding more records than the
// decoder's cap; nothing past the cap is read.
type BatchTooLargeError struct{ Max int }

func (e *BatchTooLargeError) Error() string {
	return fmt.Sprintf("batch larger than %d records", e.Max)
}

// BatchDecoder decodes a whole binary batch into reusable arenas. Usage:
//
//	d := NewBatchDecoder()
//	d.Reset(body)
//	if err := d.Decode(maxRecords); err != nil { ... }
//	recs := d.Records()          // valid until the next Reset
//	wal.AppendBatch(d.Payload(i) for accepted i...)
//
// All returned memory (records, bot slices, payload bytes) belongs to
// the decoder and is overwritten by the next Decode, which is what makes
// a pooled decoder amortized zero-alloc per record.
type BatchDecoder struct {
	br *bufio.Reader

	raw     []byte // arena of all frame payload bytes
	offs    []int  // record i's payload is raw[offs[i]:offs[i+1]]
	recs    []Attack
	bots    []astopo.IPv4 // arena of all bot IPs
	botOffs []int         // record i's bots are bots[botOffs[i]:botOffs[i+1]]
	intern  map[string]string
	scratch [frameHeaderLen]byte
}

// NewBatchDecoder returns an empty decoder; call Reset before Decode.
func NewBatchDecoder() *BatchDecoder {
	return &BatchDecoder{
		br:     bufio.NewReaderSize(nil, 1<<16),
		intern: make(map[string]string, 8),
	}
}

// Reset points the decoder at a new batch body, keeping all arenas (and
// the family intern table) for reuse.
func (d *BatchDecoder) Reset(r io.Reader) {
	d.br.Reset(r)
	d.raw = d.raw[:0]
	d.offs = d.offs[:0]
	d.recs = d.recs[:0]
	d.bots = d.bots[:0]
	d.botOffs = d.botOffs[:0]
}

// Len returns the number of decoded records.
func (d *BatchDecoder) Len() int { return len(d.recs) }

// Records returns the decoded batch, valid until the next Reset/Decode.
func (d *BatchDecoder) Records() []Attack { return d.recs }

// Payload returns record i's raw frame payload — byte-for-byte what
// AppendRecord produced, ready for wal.AppendBatch. Valid until the next
// Reset/Decode.
func (d *BatchDecoder) Payload(i int) []byte {
	return d.raw[d.offs[i]:d.offs[i+1]]
}

// Decode reads the whole batch: magic header, then frames to EOF. An
// empty body decodes to zero records. maxRecords caps the batch (≤ 0
// means unbounded); the frame past the cap is not read, and the error is
// *BatchTooLargeError. A bad frame or record yields *BatchFrameError
// with the 1-based failing index; nothing is delivered from a failed
// batch (Len reports the records decoded before the failure, but the
// caller decides whether to use them — the serve layer does not).
func (d *BatchDecoder) Decode(maxRecords int) error {
	head := d.scratch[:len(batchMagic)]
	if _, err := io.ReadFull(d.br, head); err != nil {
		if errors.Is(err, io.EOF) {
			// ReadFull returns bare EOF only when nothing was read: an
			// entirely empty body is zero records, like the JSON wire.
			return nil
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return ErrBatchMagic
		}
		return fmt.Errorf("trace: batch header: %w", err)
	}
	if string(head) != string(batchMagic) {
		return ErrBatchMagic
	}
	for {
		_, err := io.ReadFull(d.br, d.scratch[:frameHeaderLen])
		if errors.Is(err, io.EOF) {
			break // frame boundary: clean end of batch
		}
		idx := len(d.recs) + 1
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return &BatchFrameError{Index: idx, Err: errors.New("torn frame header")}
		}
		if err != nil {
			return &BatchFrameError{Index: idx, Err: err}
		}
		length := binary.LittleEndian.Uint32(d.scratch[0:4])
		sum := binary.LittleEndian.Uint32(d.scratch[4:8])
		if length > MaxRecordPayload {
			return &BatchFrameError{Index: idx, Err: fmt.Errorf("frame length %d over cap %d", length, MaxRecordPayload)}
		}
		if maxRecords > 0 && len(d.recs) >= maxRecords {
			return &BatchTooLargeError{Max: maxRecords}
		}
		start := len(d.raw)
		d.raw = growBytes(d.raw, int(length))
		payload := d.raw[start:]
		if _, err := io.ReadFull(d.br, payload); err != nil {
			d.raw = d.raw[:start]
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return &BatchFrameError{Index: idx, Err: errors.New("torn frame payload")}
			}
			return &BatchFrameError{Index: idx, Err: err}
		}
		if crc32.Checksum(payload, batchCRC) != sum {
			return &BatchFrameError{Index: idx, Err: errors.New("frame checksum mismatch")}
		}
		if len(d.offs) == 0 {
			d.offs = append(d.offs, start)
		}
		d.recs = append(d.recs, Attack{})
		a := &d.recs[len(d.recs)-1]
		botStart := len(d.bots)
		d.bots, err = decodeRecord(payload, a, d.bots, d.internBytes)
		if err != nil {
			d.recs = d.recs[:len(d.recs)-1]
			d.bots = d.bots[:botStart]
			d.raw = d.raw[:start]
			return &BatchFrameError{Index: idx, Err: err}
		}
		if len(d.botOffs) == 0 {
			d.botOffs = append(d.botOffs, botStart)
		}
		d.botOffs = append(d.botOffs, len(d.bots))
		d.offs = append(d.offs, len(d.raw))
	}
	// Arenas are final now; fix up each record's bot subslice (a growing
	// arena would have invalidated earlier subslices mid-decode). A record
	// with zero bots keeps a nil slice, matching what the JSON wire
	// produces for an absent/null bots field.
	for i := range d.recs {
		if lo, hi := d.botOffs[i], d.botOffs[i+1]; lo < hi {
			d.recs[i].Bots = d.bots[lo:hi:hi]
		}
	}
	return nil
}

// growBytes extends b by n bytes, amortizing capacity growth so a warm
// arena extends allocation-free (append(b, make(...)...) would allocate
// the temporary every frame).
func growBytes(b []byte, n int) []byte {
	want := len(b) + n
	for cap(b) < want {
		b = append(b[:cap(b)], 0)
	}
	return b[:want]
}

// internBytes resolves a family name against the decoder's intern table
// without allocating on the hit path (the map lookup with a string
// conversion of a byte slice compiles allocation-free).
func (d *BatchDecoder) internBytes(b []byte) string {
	if s, ok := d.intern[string(b)]; ok {
		return s
	}
	s := string(b)
	d.intern[s] = s
	return s
}
