package regress

import (
	"errors"
	"math"
)

// SimplexModel is a convex combination y ≈ Σ Weights[j] * x[j] with
// Weights on the probability simplex (each >= 0, summing to 1). The
// serving layer's stacked ensemble uses it to blend the temporal, spatial,
// and spatiotemporal forecasts per measure: the simplex constraint keeps
// the blend an interpolation of the component forecasts — it can never
// extrapolate outside their convex hull, so a wild component can be voted
// down to weight zero but never amplified.
type SimplexModel struct {
	Weights []float64
	// MSE is the mean squared error on the training data.
	MSE float64
	// N is the number of training observations.
	N int
}

// Predict evaluates the combination on x (shorter inputs are zero-padded,
// longer ones truncated).
func (m *SimplexModel) Predict(x []float64) float64 {
	var y float64
	for j, w := range m.Weights {
		if j < len(x) {
			y += w * x[j]
		}
	}
	return y
}

// FitSimplex solves min ‖y − Xw‖² subject to w >= 0 and Σw = 1 with
// deterministic exponentiated-gradient descent (a multiplicative-weights
// update that keeps every iterate on the simplex). Rows with any
// non-finite entry are skipped; NaN targets are skipped too, so callers
// can feed walk-forward samples where some component had no prediction.
func FitSimplex(rows [][]float64, ys []float64, iters int) (*SimplexModel, error) {
	if len(rows) == 0 || len(rows) != len(ys) {
		return nil, ErrNoData
	}
	p := len(rows[0])
	if p == 0 {
		return nil, errors.New("regress: simplex fit needs at least one column")
	}
	if iters <= 0 {
		iters = 200
	}
	xs := make([][]float64, 0, len(rows))
	ts := make([]float64, 0, len(ys))
	var scale float64 // largest |entry|, for the learning-rate normalizer
rows:
	for i, row := range rows {
		if len(row) != p {
			return nil, errors.New("regress: ragged design matrix")
		}
		if math.IsNaN(ys[i]) || math.IsInf(ys[i], 0) {
			continue
		}
		for _, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue rows
			}
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		if a := math.Abs(ys[i]); a > scale {
			scale = a
		}
		xs = append(xs, row)
		ts = append(ts, ys[i])
	}
	if len(xs) == 0 {
		return nil, ErrNoData
	}
	if scale == 0 {
		scale = 1
	}
	// Uniform start; the multiplicative update preserves positivity and
	// the normalization step keeps Σw = 1 exactly.
	w := make([]float64, p)
	for j := range w {
		w[j] = 1 / float64(p)
	}
	grad := make([]float64, p)
	eta := 0.5 / (scale * scale) // conservative step for g = 2 Xᵀ(Xw−y)/n
	n := float64(len(xs))
	for it := 0; it < iters; it++ {
		for j := range grad {
			grad[j] = 0
		}
		for i, row := range xs {
			r := -ts[i]
			for j, v := range row {
				r += w[j] * v
			}
			for j, v := range row {
				grad[j] += 2 * r * v / n
			}
		}
		var sum float64
		for j := range w {
			g := eta * grad[j]
			// Clamp the exponent so one outlier row cannot zero a weight
			// irrecoverably in a single step.
			if g > 20 {
				g = 20
			} else if g < -20 {
				g = -20
			}
			w[j] *= math.Exp(-g)
			sum += w[j]
		}
		if sum <= 0 || math.IsNaN(sum) || math.IsInf(sum, 0) {
			return nil, errors.New("regress: simplex fit diverged")
		}
		for j := range w {
			w[j] /= sum
		}
	}
	var sse float64
	for i, row := range xs {
		r := -ts[i]
		for j, v := range row {
			r += w[j] * v
		}
		sse += r * r
	}
	return &SimplexModel{Weights: w, MSE: sse / n, N: len(xs)}, nil
}
