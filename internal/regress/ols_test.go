package regress

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestFitExact(t *testing.T) {
	// y = 1 + 2a + 3b, noiseless.
	rows := [][]float64{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {2, 1}, {1, 2}}
	ys := make([]float64, len(rows))
	for i, r := range rows {
		ys[i] = 1 + 2*r[0] + 3*r[1]
	}
	m, err := Fit(rows, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Intercept-1) > 1e-9 || math.Abs(m.Coeffs[0]-2) > 1e-9 || math.Abs(m.Coeffs[1]-3) > 1e-9 {
		t.Errorf("coeffs = %v %v", m.Intercept, m.Coeffs)
	}
	if m.R2 < 0.999999 {
		t.Errorf("R2 = %v, want ~1", m.R2)
	}
	if m.N != len(rows) {
		t.Errorf("N = %d", m.N)
	}
}

func TestFitNoisyRecoversSlope(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	n := 500
	rows := make([][]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		x := rng.NormFloat64() * 3
		rows[i] = []float64{x}
		ys[i] = 4 - 1.5*x + rng.NormFloat64()*0.3
	}
	m, err := Fit(rows, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Intercept-4) > 0.1 || math.Abs(m.Coeffs[0]+1.5) > 0.05 {
		t.Errorf("fit = %v + %v x", m.Intercept, m.Coeffs[0])
	}
	if m.R2 < 0.9 {
		t.Errorf("R2 = %v", m.R2)
	}
}

func TestFitRidgeFallback(t *testing.T) {
	// Collinear features force the QR path to fail; ridge must take over.
	rows := [][]float64{{1, 2}, {2, 4}, {3, 6}, {4, 8}}
	ys := []float64{3, 6, 9, 12}
	m, err := Fit(rows, ys)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if math.Abs(m.Predict(r)-ys[i]) > 0.05 {
			t.Errorf("pred(%v) = %v, want %v", r, m.Predict(r), ys[i])
		}
	}
}

func TestFitUnderdetermined(t *testing.T) {
	// More features than rows still fits via ridge.
	rows := [][]float64{{1, 0, 2}, {0, 1, 1}}
	ys := []float64{1, 2}
	m, err := Fit(rows, ys)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if math.Abs(m.Predict(r)-ys[i]) > 0.1 {
			t.Errorf("underdetermined pred %v vs %v", m.Predict(r), ys[i])
		}
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, nil); err == nil {
		t.Error("empty fit should error")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Fit([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("ragged rows should error")
	}
}

func TestPredictShortLongInput(t *testing.T) {
	m := &Model{Intercept: 1, Coeffs: []float64{2, 3}}
	if got := m.Predict([]float64{1}); got != 3 {
		t.Errorf("short input pred = %v, want 3", got)
	}
	if got := m.Predict([]float64{1, 1, 99}); got != 6 {
		t.Errorf("long input pred = %v, want 6", got)
	}
}

func TestAICOrdersModels(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	n := 200
	rows1 := make([][]float64, n)
	rows2 := make([][]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		x := rng.NormFloat64()
		junk := rng.NormFloat64()
		rows1[i] = []float64{x}
		rows2[i] = []float64{x, junk, junk * junk, junk * x}
		ys[i] = 2*x + rng.NormFloat64()*0.5
	}
	m1, err := Fit(rows1, ys)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Fit(rows2, ys)
	if err != nil {
		t.Fatal(err)
	}
	if m1.AIC() >= m2.AIC()+4 {
		t.Errorf("parsimonious model should win AIC: %v vs %v", m1.AIC(), m2.AIC())
	}
	var zero Model
	if !math.IsInf(zero.AIC(), 1) {
		t.Error("unfitted AIC should be +Inf")
	}
}

func TestResiduals(t *testing.T) {
	rows := [][]float64{{0}, {1}, {2}}
	ys := []float64{1, 3, 5}
	m, err := Fit(rows, ys)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Residuals(rows, ys)
	for _, r := range res {
		if math.Abs(r) > 1e-9 {
			t.Errorf("residuals = %v, want ~0", res)
			break
		}
	}
}
