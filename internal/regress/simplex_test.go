package regress

import (
	"math"
	"math/rand"
	"testing"
)

func TestEnsembleSimplexRecoversMixture(t *testing.T) {
	// y is an exact convex combination of three columns; the solver must
	// recover the mixing weights.
	rng := rand.New(rand.NewSource(42))
	want := []float64{0.6, 0.3, 0.1}
	rows := make([][]float64, 400)
	ys := make([]float64, 400)
	for i := range rows {
		row := []float64{rng.NormFloat64() * 10, rng.NormFloat64() * 10, rng.NormFloat64() * 10}
		rows[i] = row
		for j, w := range want {
			ys[i] += w * row[j]
		}
	}
	m, err := FitSimplex(rows, ys, 500)
	if err != nil {
		t.Fatalf("FitSimplex: %v", err)
	}
	var sum float64
	for j, w := range m.Weights {
		sum += w
		if w < 0 {
			t.Fatalf("negative weight %v at %d", w, j)
		}
		if d := math.Abs(w - want[j]); d > 0.05 {
			t.Fatalf("weight %d = %v, want %v (weights %v)", j, w, want[j], m.Weights)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v, want 1", sum)
	}
	if m.MSE > 1e-2 {
		t.Fatalf("MSE %v too high for an exact mixture", m.MSE)
	}
}

func TestEnsembleSimplexDownweightsBadColumn(t *testing.T) {
	// Column 0 is the target plus small noise; column 1 is garbage. The
	// garbage column must end up with (near) zero weight — never negative,
	// never amplified.
	rng := rand.New(rand.NewSource(7))
	rows := make([][]float64, 300)
	ys := make([]float64, 300)
	for i := range rows {
		y := 100 + rng.NormFloat64()*5
		rows[i] = []float64{y + rng.NormFloat64(), rng.NormFloat64() * 1000}
		ys[i] = y
	}
	m, err := FitSimplex(rows, ys, 500)
	if err != nil {
		t.Fatalf("FitSimplex: %v", err)
	}
	if m.Weights[0] < 0.95 {
		t.Fatalf("good column weight %v, want ~1 (weights %v)", m.Weights[0], m.Weights)
	}
}

func TestEnsembleSimplexSkipsNonFiniteSamples(t *testing.T) {
	rows := [][]float64{
		{1, 2}, {math.NaN(), 2}, {3, 4}, {5, math.Inf(1)}, {5, 6},
	}
	ys := []float64{1.5, 2, 3.5, 4, math.NaN()}
	m, err := FitSimplex(rows, ys, 100)
	if err != nil {
		t.Fatalf("FitSimplex: %v", err)
	}
	if m.N != 2 { // only rows 0 and 2 are fully finite with finite targets
		t.Fatalf("N = %d, want 2", m.N)
	}
	if math.IsNaN(m.Predict([]float64{1, 2})) {
		t.Fatalf("prediction is NaN")
	}
}

func TestEnsembleSimplexDeterministic(t *testing.T) {
	rows := [][]float64{{1, 2}, {2, 1}, {4, 3}, {3, 5}}
	ys := []float64{1.4, 1.6, 3.6, 3.9}
	a, err := FitSimplex(rows, ys, 300)
	if err != nil {
		t.Fatalf("FitSimplex: %v", err)
	}
	b, _ := FitSimplex(rows, ys, 300)
	for j := range a.Weights {
		if a.Weights[j] != b.Weights[j] {
			t.Fatalf("non-deterministic weights: %v vs %v", a.Weights, b.Weights)
		}
	}
}
