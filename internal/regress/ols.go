// Package regress implements ordinary and ridge-regularized multivariate
// linear regression (MLR). The spatiotemporal model attaches MLR models to
// the leaves of its regression tree (§VI of the paper), and the ARIMA
// estimator uses OLS for its Hannan–Rissanen stages.
package regress

import (
	"errors"
	"math"

	"repro/internal/linalg"
	"repro/internal/stats"
)

// ErrNoData is returned when a fit is attempted with no observations.
var ErrNoData = errors.New("regress: no observations")

// Model is a fitted multivariate linear regression
// y = Intercept + Σ Coeffs[j] * x[j].
type Model struct {
	Intercept float64
	Coeffs    []float64
	// R2 is the coefficient of determination on the training data.
	R2 float64
	// RSS is the residual sum of squares on the training data.
	RSS float64
	// N is the number of training observations.
	N int
}

// Fit estimates an MLR by QR least squares, retrying with ridge
// regularization when the design matrix is rank deficient (common for the
// small per-leaf sample sizes in the model tree).
func Fit(rows [][]float64, ys []float64) (*Model, error) {
	n := len(rows)
	if n == 0 || n != len(ys) {
		return nil, ErrNoData
	}
	p := len(rows[0])
	design := linalg.NewMatrix(n, p+1)
	for i, row := range rows {
		if len(row) != p {
			return nil, errors.New("regress: ragged design matrix")
		}
		design.Set(i, 0, 1)
		for j, v := range row {
			design.Set(i, j+1, v)
		}
	}
	var beta []float64
	var err error
	if n >= p+1 {
		beta, err = linalg.LeastSquares(design, ys)
	} else {
		err = linalg.ErrSingular
	}
	if err != nil {
		beta, err = linalg.RidgeLeastSquares(design, ys, 1e-4)
		if err != nil {
			return nil, err
		}
	}
	m := &Model{Intercept: beta[0], Coeffs: beta[1:], N: n}
	m.computeFitStats(rows, ys)
	return m, nil
}

func (m *Model) computeFitStats(rows [][]float64, ys []float64) {
	var rss, tss float64
	mean := stats.Mean(ys)
	for i, row := range rows {
		r := ys[i] - m.Predict(row)
		rss += r * r
		d := ys[i] - mean
		tss += d * d
	}
	m.RSS = rss
	if tss > 0 {
		m.R2 = 1 - rss/tss
	} else {
		m.R2 = 0
	}
}

// Predict evaluates the regression at x. Missing trailing features are
// treated as zero; extra features are ignored.
func (m *Model) Predict(x []float64) float64 {
	y := m.Intercept
	for j, c := range m.Coeffs {
		if j >= len(x) {
			break
		}
		y += c * x[j]
	}
	return y
}

// AIC returns the Akaike information criterion of the fit, using the
// Gaussian log-likelihood n*ln(RSS/n) + 2k with k = len(Coeffs)+1.
func (m *Model) AIC() float64 {
	if m.N == 0 {
		return math.Inf(1)
	}
	rssPerN := m.RSS / float64(m.N)
	if rssPerN <= 0 {
		rssPerN = 1e-300
	}
	k := float64(len(m.Coeffs) + 1)
	return float64(m.N)*math.Log(rssPerN) + 2*k
}

// Residuals returns ys[i] - Predict(rows[i]) for each observation.
func (m *Model) Residuals(rows [][]float64, ys []float64) []float64 {
	out := make([]float64, len(rows))
	for i, row := range rows {
		out[i] = ys[i] - m.Predict(row)
	}
	return out
}
