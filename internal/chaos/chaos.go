// Package chaos holds the deterministic fault injectors of the load/soak
// harness (see DESIGN.md §8): slow and failing model refits wired into the
// serving stack through serve.Config.WrapFit, stream-level record faults
// (drops, duplicates, reorders, clock skew) applied between a traffic
// generator and an ingest sink, and byte corruption for snapshot-load
// paths. Every decision is a pure hash of the injector seed and a stable
// per-event key (attack ID, target AS plus its fit ordinal, byte offset),
// never a shared RNG stream — so the same faults fire no matter how
// goroutines interleave, and a failing soak run replays exactly.
package chaos

import (
	"errors"
	"math"
)

// mix folds the keys into the seed with a splitmix64-style finalizer; the
// result drives every injection decision.
func mix(seed uint64, keys ...uint64) uint64 {
	h := seed ^ 0x9e3779b97f4a7c15
	for _, k := range keys {
		h ^= k + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h ^= h >> 30
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}

// unit maps a hash to [0,1).
func unit(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}

// chance reports whether the event keyed by (seed, salt, keys...) fires at
// probability p.
func chance(p float64, seed, salt uint64, keys ...uint64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return unit(mix(seed^salt, keys...)) < p
}

// signedUnit maps a hash to [-1,1).
func signedUnit(h uint64) float64 {
	return 2*unit(h) - 1
}

// clampProb keeps externally supplied probabilities sane.
func clampProb(p float64) float64 {
	if math.IsNaN(p) || p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// ErrInjected marks failures manufactured by an injector, so tests can
// tell injected faults from real ones.
var ErrInjected = errors.New("chaos: injected fault")
