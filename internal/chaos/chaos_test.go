package chaos

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/astopo"
	"repro/internal/serve"
	"repro/internal/trace"
)

func mkRecords(n int) []trace.Attack {
	t0 := time.Date(2012, 8, 1, 0, 0, 0, 0, time.UTC)
	out := make([]trace.Attack, n)
	for i := range out {
		out[i] = trace.Attack{
			ID:          i + 1,
			Family:      "DirtJumper",
			Start:       t0.Add(time.Duration(i) * time.Hour),
			DurationSec: 600,
			TargetAS:    64512,
			Bots:        []astopo.IPv4{1, 2, 3},
		}
	}
	return out
}

func TestStreamFaultsDeterministic(t *testing.T) {
	in := mkRecords(500)
	mk := func() *StreamFaults {
		return &StreamFaults{
			Seed: 42, DropProb: 0.1, DupProb: 0.1, ReorderProb: 0.1,
			SkewProb: 0.2, SkewMax: time.Minute,
		}
	}
	a := mk().Apply(in)
	b := mk().Apply(in)
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || !a[i].Start.Equal(b[i].Start) {
			t.Fatalf("record %d differs across identical runs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// A different seed must produce a different fault pattern.
	c := (&StreamFaults{Seed: 43, DropProb: 0.1, DupProb: 0.1, ReorderProb: 0.1}).Apply(in)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i].ID != c[i].ID {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical fault patterns")
	}
}

// TestStreamFaultsAccounting checks conservation: every input record is
// either delivered or counted dropped, and duplicates add exactly their
// count; reorders and skews never lose records.
func TestStreamFaultsAccounting(t *testing.T) {
	in := mkRecords(1000)
	f := &StreamFaults{
		Seed: 7, DropProb: 0.15, DupProb: 0.1, ReorderProb: 0.2,
		SkewProb: 0.3, SkewMax: time.Hour,
	}
	out := f.Apply(in)
	want := int64(len(in)) - f.Dropped() + f.Duplicated()
	if int64(len(out)) != want {
		t.Fatalf("emitted %d records, want %d (in %d - dropped %d + dup %d)",
			len(out), want, len(in), f.Dropped(), f.Duplicated())
	}
	if f.Dropped() == 0 || f.Duplicated() == 0 || f.Reordered() == 0 || f.Skewed() == 0 {
		t.Fatalf("some fault never fired: drop %d dup %d reorder %d skew %d",
			f.Dropped(), f.Duplicated(), f.Reordered(), f.Skewed())
	}
	// Each surviving input ID appears 1 (+1 if duplicated) times.
	counts := make(map[int]int)
	for i := range out {
		counts[out[i].ID]++
	}
	var extra int64
	for id, n := range counts {
		if n < 1 || n > 2 {
			t.Fatalf("ID %d emitted %d times", id, n)
		}
		if n == 2 {
			extra++
		}
		_ = id
	}
	if extra != f.Duplicated() {
		t.Fatalf("%d IDs emitted twice, want %d duplicates", extra, f.Duplicated())
	}
}

func TestStreamFaultsReorderOnly(t *testing.T) {
	in := mkRecords(200)
	f := &StreamFaults{Seed: 3, ReorderProb: 0.5}
	out := f.Apply(in)
	if len(out) != len(in) {
		t.Fatalf("reorder-only stream changed length %d -> %d", len(in), len(out))
	}
	if f.Reordered() == 0 {
		t.Fatal("no reorders fired at prob 0.5")
	}
	inversions := 0
	for i := 1; i < len(out); i++ {
		if out[i].ID < out[i-1].ID {
			inversions++
		}
	}
	if inversions == 0 {
		t.Fatal("reorders fired but output is still totally ordered")
	}
}

func TestStreamFaultsZeroProbIsIdentity(t *testing.T) {
	in := mkRecords(50)
	f := &StreamFaults{Seed: 9}
	out := f.Apply(in)
	if len(out) != len(in) {
		t.Fatalf("identity stream changed length %d -> %d", len(in), len(out))
	}
	for i := range out {
		if out[i].ID != in[i].ID || !out[i].Start.Equal(in[i].Start) {
			t.Fatalf("identity stream mutated record %d", i)
		}
	}
}

func TestRefitFaultsWrap(t *testing.T) {
	calls := 0
	inner := serve.FitFunc(func(as astopo.AS, window []trace.Attack, total, gen uint64, cfg serve.Config) (*serve.TargetModels, error) {
		calls++
		return &serve.TargetModels{AS: as, Generation: gen}, nil
	})

	// Fail-always: every refit errors with ErrInjected and never reaches
	// the inner fit.
	fail := &RefitFaults{Seed: 1, FailProb: 1}
	wrapped := fail.Wrap(inner)
	if _, err := wrapped(64512, nil, 0, 1, serve.Config{}); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if calls != 0 || fail.Failed() != 1 {
		t.Fatalf("calls %d failed %d, want 0/1", calls, fail.Failed())
	}

	// Slow-always: the refit succeeds after the injected delay.
	slow := &RefitFaults{Seed: 1, SlowProb: 1, Delay: 10 * time.Millisecond}
	wrapped = slow.Wrap(inner)
	start := time.Now()
	tm, err := wrapped(64512, nil, 5, 2, serve.Config{})
	if err != nil || tm.AS != 64512 {
		t.Fatalf("slow fit result %v, %v", tm, err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("slow fit returned in %v, want >= 10ms", d)
	}
	if slow.Slowed() != 1 || calls != 1 {
		t.Fatalf("slowed %d calls %d, want 1/1", slow.Slowed(), calls)
	}

	// MaxFaults caps injection: past the cap the wrapper is transparent.
	capped := &RefitFaults{Seed: 1, FailProb: 1, MaxFaults: 2}
	wrapped = capped.Wrap(inner)
	fails := 0
	for i := 0; i < 10; i++ {
		if _, err := wrapped(64512, nil, 0, uint64(i), serve.Config{}); err != nil {
			fails++
		}
	}
	if fails != 2 {
		t.Fatalf("capped injector failed %d refits, want 2", fails)
	}
}

func TestRefitFaultsDeterministicPerTarget(t *testing.T) {
	inner := serve.FitFunc(func(as astopo.AS, window []trace.Attack, total, gen uint64, cfg serve.Config) (*serve.TargetModels, error) {
		return &serve.TargetModels{AS: as}, nil
	})
	outcomes := func() []bool {
		f := &RefitFaults{Seed: 11, FailProb: 0.5}
		w := f.Wrap(inner)
		var out []bool
		for i := 0; i < 40; i++ {
			_, err := w(astopo.AS(64512+i%4), nil, 0, uint64(i), serve.Config{})
			out = append(out, err != nil)
		}
		return out
	}
	a, b := outcomes(), outcomes()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("refit fault %d not deterministic", i)
		}
	}
}

func TestCorrupterFlipsDeterministically(t *testing.T) {
	payload := bytes.Repeat([]byte("snapshot-bytes-"), 100)
	read := func(chunk int) ([]byte, int64) {
		c := NewCorrupter(bytes.NewReader(payload), 5, 0.01)
		var out bytes.Buffer
		buf := make([]byte, chunk)
		for {
			n, err := c.Read(buf)
			out.Write(buf[:n])
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		return out.Bytes(), c.Flipped()
	}
	whole, flippedWhole := read(len(payload))
	chunked, flippedChunked := read(7)
	if flippedWhole == 0 {
		t.Fatal("corrupter flipped nothing at rate 0.01 over 1500 bytes")
	}
	if !bytes.Equal(whole, chunked) || flippedWhole != flippedChunked {
		t.Fatalf("corruption depends on read chunking: %d vs %d flips", flippedWhole, flippedChunked)
	}
	if bytes.Equal(whole, payload) {
		t.Fatal("corrupted output identical to input")
	}
	// Rate 0 is the identity.
	clean := NewCorrupter(bytes.NewReader(payload), 5, 0)
	got, err := io.ReadAll(clean)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("zero-rate corrupter mutated the stream (err %v)", err)
	}
}
