package chaos

import (
	"io"
	"sync/atomic"
)

// Corrupter flips bits of an underlying byte stream — the snapshot-load
// corruption injector. Flips key on the absolute byte offset, so a given
// (seed, rate) corrupts the same bytes of the same file on every run
// regardless of read chunking. The serving stack must reject a corrupted
// snapshot cleanly: Registry.ReadSnapshot decodes fully before publishing,
// so a flip either surfaces as a decode/validation error or leaves a
// syntactically valid file — never a half-loaded registry.
type Corrupter struct {
	r    io.Reader
	seed uint64
	rate float64
	off  uint64

	flipped atomic.Int64
}

const saltCorrupt = 0xc042

// NewCorrupter wraps r, flipping one bit of each byte independently with
// probability rate.
func NewCorrupter(r io.Reader, seed uint64, rate float64) *Corrupter {
	return &Corrupter{r: r, seed: seed, rate: clampProb(rate)}
}

// Read implements io.Reader.
func (c *Corrupter) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	for i := 0; i < n; i++ {
		off := c.off + uint64(i)
		if chance(c.rate, c.seed, saltCorrupt, off) {
			p[i] ^= 1 << (mix(c.seed^saltCorrupt, off, 1) % 8)
			c.flipped.Add(1)
		}
	}
	c.off += uint64(n)
	return n, err
}

// Flipped returns how many bytes were corrupted so far.
func (c *Corrupter) Flipped() int64 { return c.flipped.Load() }
