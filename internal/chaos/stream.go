package chaos

import (
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// StreamFaults perturbs a record stream the way a lossy collection
// pipeline does: records vanish (drop), arrive twice (duplicate, same
// attack ID — the dedup path must absorb it), fall behind a successor
// (reorder), or carry a skewed timestamp (collector clock drift). Faults
// key on the attack ID, so the same records are hit for a given seed no
// matter how the stream is paced.
type StreamFaults struct {
	// Seed drives all decisions.
	Seed uint64
	// DropProb drops the record entirely.
	DropProb float64
	// DupProb re-emits the record a few positions downstream.
	DupProb float64
	// ReorderProb delays the record one position (its successor is
	// delivered first).
	ReorderProb float64
	// SkewProb perturbs the record's Start by up to ±SkewMax.
	SkewProb float64
	// SkewMax bounds the injected clock skew (default 0: skew disabled).
	SkewMax time.Duration

	dropped    atomic.Int64
	duplicated atomic.Int64
	reordered  atomic.Int64
	skewed     atomic.Int64
}

const (
	saltDrop    = 0xd409
	saltDup     = 0xd009
	saltDupLag  = 0xd1a6
	saltReorder = 0x4e04
	saltSkew    = 0x5ce3
)

// delayedRecord is a record (duplicate or reordered original) waiting for
// its release position.
type delayedRecord struct {
	a   trace.Attack
	due int64 // emit ordinal at which it is released
}

// Stream wraps a pull-based record source. next returns nil when the
// upstream is exhausted; the wrapped source then flushes its delayed
// records before returning nil itself. The returned function keeps
// internal delay-queue state and is NOT safe for concurrent use — callers
// serialize pulls (the loadgen driver pulls under its generator lock).
func (f *StreamFaults) Stream(next func() *trace.Attack) func() *trace.Attack {
	var (
		delayed []delayedRecord
		emitted int64
	)
	release := func(i int) *trace.Attack {
		a := delayed[i].a
		delayed = append(delayed[:i], delayed[i+1:]...)
		emitted++
		return &a
	}
	return func() *trace.Attack {
		for {
			// Due delayed records go out first so duplicates and reordered
			// originals interleave with live records instead of clumping.
			for i := range delayed {
				if delayed[i].due <= emitted {
					return release(i)
				}
			}
			a := next()
			if a == nil {
				// Upstream exhausted: flush the delay queue in order.
				if len(delayed) > 0 {
					return release(0)
				}
				return nil
			}
			key := uint64(a.ID)
			if chance(clampProb(f.DropProb), f.Seed, saltDrop, key) {
				f.dropped.Add(1)
				continue
			}
			if f.SkewMax > 0 && chance(clampProb(f.SkewProb), f.Seed, saltSkew, key) {
				skewed := *a
				skewed.Start = a.Start.Add(time.Duration(signedUnit(mix(f.Seed^saltSkew, key, 1)) * float64(f.SkewMax)))
				a = &skewed
				f.skewed.Add(1)
			}
			if chance(clampProb(f.DupProb), f.Seed, saltDup, key) {
				lag := 1 + int64(mix(f.Seed^saltDupLag, key)%7)
				delayed = append(delayed, delayedRecord{a: *a, due: emitted + lag})
				f.duplicated.Add(1)
			}
			if chance(clampProb(f.ReorderProb), f.Seed, saltReorder, key) {
				// Delay the original one position: the successor pulled on
				// this or the next call is delivered first.
				delayed = append(delayed, delayedRecord{a: *a, due: emitted + 1})
				f.reordered.Add(1)
				continue
			}
			emitted++
			return a
		}
	}
}

// Apply runs a record slice through Stream (batch convenience: warm-start
// datasets, table tests). The input is not mutated.
func (f *StreamFaults) Apply(in []trace.Attack) []trace.Attack {
	i := 0
	src := f.Stream(func() *trace.Attack {
		if i >= len(in) {
			return nil
		}
		a := in[i]
		i++
		return &a
	})
	var out []trace.Attack
	for a := src(); a != nil; a = src() {
		out = append(out, *a)
	}
	return out
}

// Dropped returns how many records were dropped.
func (f *StreamFaults) Dropped() int64 { return f.dropped.Load() }

// Duplicated returns how many duplicate records were scheduled.
func (f *StreamFaults) Duplicated() int64 { return f.duplicated.Load() }

// Reordered returns how many records were delayed past a successor.
func (f *StreamFaults) Reordered() int64 { return f.reordered.Load() }

// Skewed returns how many records had their timestamp perturbed.
func (f *StreamFaults) Skewed() int64 { return f.skewed.Load() }
