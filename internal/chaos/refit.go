package chaos

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/astopo"
	"repro/internal/serve"
	"repro/internal/trace"
)

// RefitFaults injects latency and failures into the background refit path.
// Install it with serve.Config.WrapFit:
//
//	faults := &chaos.RefitFaults{Seed: 7, SlowProb: 0.5, Delay: 50 * time.Millisecond}
//	cfg.WrapFit = faults.Wrap
//
// Decisions are keyed on the target AS and that target's fit ordinal (its
// 1st, 2nd, ... refit), so a given run of refits sees the same faults
// regardless of batch composition or worker scheduling.
type RefitFaults struct {
	// Seed drives all decisions.
	Seed uint64
	// SlowProb is the probability a refit sleeps Delay before fitting.
	SlowProb float64
	// Delay is the injected extra fit latency.
	Delay time.Duration
	// FailProb is the probability a refit returns ErrInjected instead of a
	// model (the scheduler counts it as a refit error; the target keeps its
	// previously published model).
	FailProb float64
	// MaxFaults, when positive, caps the total number of injected faults
	// (slow + fail); past the cap the injector passes refits through
	// untouched. Soak tests use it to let the system recover.
	MaxFaults int64

	mu       sync.Mutex
	ordinals map[astopo.AS]uint64

	faults atomic.Int64
	slowed atomic.Int64
	failed atomic.Int64
}

const (
	saltSlow = 0x51de
	saltFail = 0xfa11
)

// Wrap is the serve.Config.WrapFit hook.
func (f *RefitFaults) Wrap(next serve.FitFunc) serve.FitFunc {
	return func(as astopo.AS, window []trace.Attack, total uint64, gen uint64, cfg serve.Config) (*serve.TargetModels, error) {
		ord := f.nextOrdinal(as)
		slow := chance(clampProb(f.SlowProb), f.Seed, saltSlow, uint64(as), ord)
		fail := chance(clampProb(f.FailProb), f.Seed, saltFail, uint64(as), ord)
		if (slow || fail) && !f.admit(slow, fail) {
			slow, fail = false, false
		}
		if slow {
			f.slowed.Add(1)
			time.Sleep(f.Delay)
		}
		if fail {
			f.failed.Add(1)
			return nil, fmt.Errorf("%w: refit AS%d ordinal %d", ErrInjected, as, ord)
		}
		return next(as, window, total, gen, cfg)
	}
}

// nextOrdinal returns the 1-based count of refits seen for the target.
func (f *RefitFaults) nextOrdinal(as astopo.AS) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.ordinals == nil {
		f.ordinals = make(map[astopo.AS]uint64)
	}
	f.ordinals[as]++
	return f.ordinals[as]
}

// admit charges the would-be faults against MaxFaults; false means the cap
// is exhausted and the refit must pass through clean.
func (f *RefitFaults) admit(slow, fail bool) bool {
	n := int64(0)
	if slow {
		n++
	}
	if fail {
		n++
	}
	if f.MaxFaults <= 0 {
		f.faults.Add(n)
		return true
	}
	for {
		cur := f.faults.Load()
		if cur >= f.MaxFaults {
			return false
		}
		if f.faults.CompareAndSwap(cur, cur+n) {
			return true
		}
	}
}

// Slowed returns how many refits were delayed.
func (f *RefitFaults) Slowed() int64 { return f.slowed.Load() }

// Failed returns how many refits were failed.
func (f *RefitFaults) Failed() int64 { return f.failed.Load() }
