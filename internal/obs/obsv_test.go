package obs

// Observability-layer tests (DESIGN.md §14): trace-context propagation
// primitives, forest stitching, drop accounting, runtime self-telemetry,
// and the SLO-breach flight recorder.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/serve/metrics"
)

func TestTraceContextRoundTrip(t *testing.T) {
	ctx := TraceContext{TraceID: 0xdeadbeefcafe0123, SpanID: 0x42}
	s := ctx.String()
	got, ok := ParseTraceContext(s)
	if !ok || got != ctx {
		t.Fatalf("round trip %q -> %+v ok=%v", s, got, ok)
	}
	for _, bad := range []string{"", "nope", "123-456x", "deadbeefcafe0123", s + "-ff",
		"0000000000000000-0000000000000000"} {
		if c, ok := ParseTraceContext(bad); ok && c.Valid() {
			t.Errorf("ParseTraceContext(%q) accepted as %+v", bad, c)
		}
	}
}

func TestTraceContextFromRequest(t *testing.T) {
	ctx := TraceContext{TraceID: 7, SpanID: 9}

	r := httptest.NewRequest(http.MethodPost, "/ingest", nil)
	r.Header.Set(TraceHeader, ctx.String())
	if got, ok := ContextFromRequest(r); !ok || got != ctx {
		t.Fatalf("header context = %+v ok=%v", got, ok)
	}

	// Query fallback: redirected requests carry the context in the
	// Location URL because Go clients replay the original headers on 307.
	r = httptest.NewRequest(http.MethodPost, "/ingest?"+TraceParam+"="+ctx.String(), nil)
	if got, ok := ContextFromRequest(r); !ok || got != ctx {
		t.Fatalf("query context = %+v ok=%v", got, ok)
	}

	// Header wins over query when both are present.
	hdr := TraceContext{TraceID: 11, SpanID: 13}
	r = httptest.NewRequest(http.MethodPost, "/ingest?"+TraceParam+"="+ctx.String(), nil)
	r.Header.Set(TraceHeader, hdr.String())
	if got, _ := ContextFromRequest(r); got != hdr {
		t.Fatalf("header did not win: %+v", got)
	}

	r = httptest.NewRequest(http.MethodPost, "/ingest", nil)
	if _, ok := ContextFromRequest(r); ok {
		t.Fatal("bare request produced a context")
	}
}

func TestTraceRemoteSpanAdoptsContext(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 4})
	parent := TraceContext{TraceID: 0xabc, SpanID: 0xdef}

	sp := tr.StartRemote("ingest", parent)
	if sp.Context().TraceID != parent.TraceID {
		t.Fatalf("remote span trace = %x, want %x", sp.Context().TraceID, parent.TraceID)
	}
	sp.End()

	// An invalid context degrades to a fresh root trace.
	fresh := tr.StartRemote("ingest", TraceContext{})
	if fresh.Context().TraceID == 0 {
		t.Fatal("fresh remote span has no trace id")
	}
	fresh.End()

	// Snapshot is most-recent-first: the fresh root leads, the adopted
	// remote span follows.
	snap := tr.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("ring holds %d traces, want 2", len(snap))
	}
	if snap[1].TraceID != fmt.Sprintf("%016x", parent.TraceID) {
		t.Fatalf("adopted trace_id = %s", snap[1].TraceID)
	}
	if snap[1].ParentID != fmt.Sprintf("%016x", parent.SpanID) {
		t.Fatalf("adopted parent_id = %s", snap[1].ParentID)
	}
	if snap[0].ParentID != "" {
		t.Fatalf("fresh root has parent_id %s", snap[0].ParentID)
	}
}

func TestTraceDroppedFiresOnUnreadEviction(t *testing.T) {
	drops := 0
	tr := NewTracer(TracerConfig{Capacity: 2, OnDrop: func() { drops++ }})
	end := func(name string) {
		sp := tr.Start(name)
		sp.End()
	}

	end("a")
	end("b")
	if drops != 0 {
		t.Fatalf("drops = %d before the ring wrapped", drops)
	}
	end("c") // overwrites unread "a"
	if drops != 1 {
		t.Fatalf("drops = %d after unread eviction, want 1", drops)
	}

	tr.Snapshot() // marks everything read
	end("d")
	end("e") // both overwrite read entries
	if drops != 1 {
		t.Fatalf("drops = %d after overwriting read entries, want still 1", drops)
	}

	// Dropped spans never land in the ring and never count.
	sp := tr.Start("heartbeat")
	sp.Drop()
	sp.End()
	if got := len(tr.Snapshot()); got != 2 {
		t.Fatalf("ring holds %d traces after drop, want 2", got)
	}
}

func TestTraceStitchReattachesForest(t *testing.T) {
	t0 := time.Unix(100, 0)
	forest := []SpanJSON{
		{Name: "proxy", TraceID: "t1", SpanID: "aa", Start: t0, Children: []SpanJSON{
			{Name: "forward", TraceID: "t1", SpanID: "bb", ParentID: "aa", Start: t0.Add(time.Millisecond)},
		}},
		// A peer's root parented under the forward span above.
		{Name: "ingest", TraceID: "t1", SpanID: "cc", ParentID: "bb", Node: "n2", Start: t0.Add(2 * time.Millisecond)},
		// Unknown parent: stays a root.
		{Name: "orphan", TraceID: "t9", SpanID: "dd", ParentID: "zz", Start: t0},
	}
	out := StitchTraces(forest)
	if len(out) != 2 {
		t.Fatalf("stitched into %d trees, want 2", len(out))
	}
	if out[0].Name != "proxy" || out[1].Name != "orphan" {
		t.Fatalf("root order = %s, %s", out[0].Name, out[1].Name)
	}
	fwd := out[0].Children[0]
	if len(fwd.Children) != 1 || fwd.Children[0].Name != "ingest" || fwd.Children[0].Node != "n2" {
		t.Fatalf("peer root not reattached under forward: %+v", fwd)
	}

	// A cycle among roots must not loop or vanish: two roots each naming
	// the other's span as parent.
	cyc := StitchTraces([]SpanJSON{
		{Name: "x", SpanID: "x1", ParentID: "y1"},
		{Name: "y", SpanID: "y1", ParentID: "x1"},
	})
	total := 0
	var count func(s *SpanJSON)
	count = func(s *SpanJSON) {
		total++
		for i := range s.Children {
			count(&s.Children[i])
		}
	}
	for i := range cyc {
		count(&cyc[i])
	}
	if total != 2 {
		t.Fatalf("cycle stitching lost or duplicated spans: %d total", total)
	}
}

func TestTraceQueryFilters(t *testing.T) {
	traces := []SpanJSON{
		{Name: "proxy", TraceID: "0000000000000001", DurationSec: 0.5, Children: []SpanJSON{{Name: "forward"}}},
		{Name: "ingest", TraceID: "0000000000000002", DurationSec: 0.001},
	}
	if got := FilterTraces(traces, TraceQuery{}); len(got) != 2 {
		t.Fatalf("zero query filtered to %d", len(got))
	}
	if got := FilterTraces(traces, TraceQuery{TraceID: "0000000000000002"}); len(got) != 1 || got[0].Name != "ingest" {
		t.Fatalf("trace filter = %+v", got)
	}
	// Stage matches anywhere in the tree, not only the root.
	if got := FilterTraces(traces, TraceQuery{Stage: "forward"}); len(got) != 1 || got[0].Name != "proxy" {
		t.Fatalf("stage filter = %+v", got)
	}
	if got := FilterTraces(traces, TraceQuery{MinDur: 100 * time.Millisecond}); len(got) != 1 || got[0].Name != "proxy" {
		t.Fatalf("min duration filter = %+v", got)
	}

	r := httptest.NewRequest(http.MethodGet, "/debug/traces?trace=ab&stage=ingest&min_ms=2.5", nil)
	q, err := QueryFromRequest(r)
	if err != nil || q.TraceID != "ab" || q.Stage != "ingest" || q.MinDur != 2500*time.Microsecond {
		t.Fatalf("parsed query = %+v err=%v", q, err)
	}
	r = httptest.NewRequest(http.MethodGet, "/debug/traces?min_ms=banana", nil)
	if _, err := QueryFromRequest(r); err == nil {
		t.Fatal("bad min_ms accepted")
	}
}

func TestRuntimeGaugesRefreshOnScrape(t *testing.T) {
	reg := metrics.NewRegistry()
	RegisterRuntime(reg)
	var sb strings.Builder
	reg.WriteText(&sb)
	text := sb.String()
	for _, name := range []string{
		"ddosd_go_goroutines", "ddosd_go_gomaxprocs", "ddosd_go_heap_alloc_bytes",
		"ddosd_go_gc_pause_seconds_total",
	} {
		if !strings.Contains(text, name+" ") {
			t.Errorf("exposition missing %s", name)
		}
	}
	if strings.Contains(text, "ddosd_go_goroutines 0\n") {
		t.Fatal("goroutine gauge not refreshed at scrape time")
	}

	snap := ReadRuntime()
	if snap.Goroutines < 1 || snap.GOMAXPROCS < 1 || snap.HeapAlloc == 0 {
		t.Fatalf("implausible runtime snapshot: %+v", snap)
	}
}

func TestWatchdogCapturesAndServesBundle(t *testing.T) {
	dir := t.TempDir()
	breach := 2.0
	wd, err := NewWatchdog(WatchdogConfig{
		Dir:        dir,
		Cooldown:   time.Hour,
		CPUProfile: -1, // skip: keep the test fast
		Rules: []WatchdogRule{
			{Name: "ingest_p99_seconds", Threshold: 1, Value: func() float64 { return breach }},
			{Name: "quiet_rule", Threshold: 100, Value: func() float64 { return 0 }},
		},
		Snapshots: map[string]func() ([]byte, error){
			"spans.json": func() ([]byte, error) { return []byte(`{"traces":[]}`), nil },
			"log.txt":    func() ([]byte, error) { return nil, fmt.Errorf("ring unavailable") },
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	name, err := wd.Check()
	if err != nil || name == "" {
		t.Fatalf("Check = %q, %v", name, err)
	}
	for _, f := range []string{"meta.json", "heap.pprof", "spans.json"} {
		if _, err := os.Stat(filepath.Join(dir, name, f)); err != nil {
			t.Errorf("bundle missing %s: %v", f, err)
		}
	}
	var meta struct {
		Breaches []Breach          `json:"breaches"`
		Rules    []Breach          `json:"rules"`
		Errors   map[string]string `json:"capture_errors"`
		Build    BuildProvenance   `json:"build"`
	}
	raw, err := os.ReadFile(filepath.Join(dir, name, "meta.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &meta); err != nil {
		t.Fatal(err)
	}
	if len(meta.Breaches) != 1 || meta.Breaches[0].Rule != "ingest_p99_seconds" || meta.Breaches[0].Value != breach {
		t.Fatalf("meta breaches = %+v", meta.Breaches)
	}
	if len(meta.Rules) != 2 {
		t.Fatalf("meta rules = %+v (want every rule's value, breached or not)", meta.Rules)
	}
	if meta.Errors["log.txt"] == "" {
		t.Fatalf("failed snapshot producer not recorded: %+v", meta.Errors)
	}
	if meta.Build.GoVersion == "" {
		t.Fatal("bundle meta missing build provenance")
	}

	// Cooldown: a persistent breach produces one bundle per cooldown.
	if again, err := wd.Check(); err != nil || again != "" {
		t.Fatalf("cooldown did not hold: %q, %v", again, err)
	}

	h := wd.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/bundle", nil))
	var list struct {
		Captures uint64 `json:"captures"`
		Rules    []Breach
		Bundles  []BundleInfo `json:"bundles"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if list.Captures != 1 || len(list.Bundles) != 1 || list.Bundles[0].Name != name {
		t.Fatalf("bundle listing = %+v", list)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/bundle?name="+name+"&file=meta.json", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ingest_p99_seconds") {
		t.Fatalf("bundle file fetch: HTTP %d: %s", rec.Code, rec.Body.String())
	}

	// Path traversal is rejected, inside and outside the bundle name.
	for _, uri := range []string{
		"/debug/bundle?name=" + name + "&file=../../etc/passwd",
		"/debug/bundle?name=..&file=meta.json",
		"/debug/bundle?name=" + name + "&file=a%2Fb",
	} {
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, uri, nil))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s answered HTTP %d, want 400", uri, rec.Code)
		}
	}

	// No breach, no capture.
	breach = 0
	if name, err := wd.Check(); err != nil || name != "" {
		t.Fatalf("healthy rules captured %q, %v", name, err)
	}
}

func TestWatchdogPruneKeepsNewestBundles(t *testing.T) {
	dir := t.TempDir()
	wd, err := NewWatchdog(WatchdogConfig{
		Dir:        dir,
		Cooldown:   time.Nanosecond,
		MaxBundles: 2,
		CPUProfile: -1,
		Rules:      []WatchdogRule{{Name: "r", Threshold: 0, Value: func() float64 { return 1 }}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for i := 0; i < 3; i++ {
		n, err := wd.Check()
		if err != nil || n == "" {
			t.Fatalf("capture %d: %q, %v", i, n, err)
		}
		names = append(names, n)
		time.Sleep(2 * time.Millisecond) // distinct capture ordering
	}
	kept := wd.Bundles()
	if len(kept) != 2 {
		t.Fatalf("ring holds %d bundles, want 2: %+v", len(kept), kept)
	}
	if kept[0].Name != names[1] || kept[1].Name != names[2] {
		t.Fatalf("ring kept %v, want newest two of %v", kept, names)
	}
	if wd.Captures() != 3 {
		t.Fatalf("capture counter = %d, want 3", wd.Captures())
	}
}

func TestWatchdogLoopCapturesAndCloses(t *testing.T) {
	captured := make(chan string, 4)
	wd, err := NewWatchdog(WatchdogConfig{
		Dir:        t.TempDir(),
		Interval:   5 * time.Millisecond,
		Cooldown:   time.Hour,
		CPUProfile: -1,
		Rules:      []WatchdogRule{{Name: "r", Threshold: 0, Value: func() float64 { return 1 }}},
		OnCapture: func(bundle string, breaches []Breach) {
			select {
			case captured <- bundle:
			default:
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	wd.Start()
	select {
	case b := <-captured:
		if b == "" {
			t.Fatal("empty bundle name from the loop")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog loop never captured")
	}
	wd.Close()
	wd.Close() // idempotent
}

func TestWatchdogLogRingTailsLines(t *testing.T) {
	var inner strings.Builder
	ring := NewLogRing(&inner, 3)
	logger, err := NewLogger(ring, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		logger.Info("event", "i", i)
	}
	lines := ring.Lines()
	if len(lines) != 3 {
		t.Fatalf("ring holds %d lines, want 3", len(lines))
	}
	if !strings.Contains(lines[0], `"i":2`) || !strings.Contains(lines[2], `"i":4`) {
		t.Fatalf("ring kept wrong tail: %q", lines)
	}
	// The tee still forwards everything to the real sink.
	if got := strings.Count(inner.String(), "\n"); got != 5 {
		t.Fatalf("inner writer saw %d lines, want 5", got)
	}
}
