package obs

import (
	"encoding/json"
	"math"
	"net/http"
	"sort"
	"sync"
)

// The online accuracy tracker closes the paper's §VII feedback loop at
// serving time: when a new verified attack arrives for a target, the
// forecast that was published *before* it arrived is scored against it.
// Three error measures per model, matching the offline evaluation:
//
//   - relative error of the predicted attack magnitude,
//   - relative error of the predicted attack duration,
//   - a timestamp hit — predicted (day, hour) within a circular
//     tolerance of the realized (day, hour).
//
// Scores accumulate in fixed sliding windows per model kind (temporal /
// spatial / spatiotemporal) and per baseline (Always-Same, Always-Mean),
// so /accuracy is a live, windowed Table VII.

// Prediction is one model's point forecast of the next attack. NaN fields
// mean the model does not predict that measure (the temporal model has no
// duration output, the spatial model no magnitude output) and are skipped.
type Prediction struct {
	Magnitude   float64
	DurationSec float64
	Hour        float64 // hour of day, [0, 24)
	Day         float64 // day of month, [1, 31]
}

// Outcome is the realized attack the prediction is judged against.
type Outcome struct {
	Magnitude   float64
	DurationSec float64
	Hour        float64
	Day         float64
}

// AccuracyConfig tunes the tracker. The zero value scores over
// 512-observation windows with a ±1 hour / ±1 day timestamp tolerance.
type AccuracyConfig struct {
	// Window is the sliding-window length per (model, measure). Default 512.
	Window int
	// HourTol is the circular hour tolerance for a timestamp hit. Default 1.
	HourTol float64
	// DayTol is the circular day-of-month tolerance. Default 1.
	DayTol float64
	// OnScore, when non-nil, receives the model's refreshed Summary after
	// every Score call (the daemon points this at its accuracy gauges).
	// Called with the model's lock held — keep it cheap and non-blocking.
	OnScore func(model string, s Summary)
}

// Accuracy tracks windowed forecast-error measures per model. Register
// the model names up front with Model; Score is then allocation-free.
type Accuracy struct {
	cfg AccuracyConfig

	mu     sync.RWMutex
	models map[string]*modelAcc
	order  []string
}

// modelAcc is one model's sliding-window accumulators, guarded by its own
// mutex so scoring different models never contends.
type modelAcc struct {
	mu     sync.Mutex
	scored uint64 // all-time Score calls for this model
	mag    window
	dur    window
	hit    window // 1 for a timestamp hit, 0 for a miss
}

// window is a fixed ring with a running sum: O(1) push, O(1) mean.
type window struct {
	vals []float64
	n    int
	next int
	sum  float64
}

func (w *window) push(v float64) {
	if w.n == len(w.vals) {
		w.sum -= w.vals[w.next]
	} else {
		w.n++
	}
	w.vals[w.next] = v
	w.sum += v
	w.next = (w.next + 1) % len(w.vals)
}

// mean returns the windowed average, floored at 0: every pushed value is
// non-negative (relative errors, hit indicators), so a negative running
// sum can only be float cancellation drift from evictions.
func (w *window) mean() float64 {
	if w.n == 0 || w.sum <= 0 {
		return 0
	}
	return w.sum / float64(w.n)
}

// NewAccuracy builds a tracker.
func NewAccuracy(cfg AccuracyConfig) *Accuracy {
	if cfg.Window < 1 {
		cfg.Window = 512
	}
	if cfg.HourTol <= 0 {
		cfg.HourTol = 1
	}
	if cfg.DayTol <= 0 {
		cfg.DayTol = 1
	}
	return &Accuracy{cfg: cfg, models: make(map[string]*modelAcc)}
}

// Model registers a model name (idempotent). Scoring an unregistered
// model is a silent no-op, so the hot path never allocates.
func (a *Accuracy) Model(name string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.models[name]; ok {
		return
	}
	a.models[name] = &modelAcc{
		mag: window{vals: make([]float64, a.cfg.Window)},
		dur: window{vals: make([]float64, a.cfg.Window)},
		hit: window{vals: make([]float64, a.cfg.Window)},
	}
	a.order = append(a.order, name)
}

// RelErr is the §VII relative error |pred−actual| / max(|actual|, 1); the
// floor keeps near-zero actuals (a one-bot attack, a sub-second duration)
// from exploding the measure.
func RelErr(pred, actual float64) float64 {
	denom := math.Abs(actual)
	if denom < 1 {
		denom = 1
	}
	return math.Abs(pred-actual) / denom
}

// circDist is the circular distance between a and b modulo mod (hours
// wrap at 24, days of month approximately at 31).
func circDist(a, b, mod float64) float64 {
	d := math.Abs(a - b)
	d = math.Mod(d, mod)
	if d > mod/2 {
		d = mod - d
	}
	return d
}

// Score folds one (prediction, outcome) pair into the model's windows.
// NaN prediction fields skip their measure; the timestamp hit needs both
// Hour and Day. Never blocks beyond the model's own mutex and never
// allocates (guarded by a testing.AllocsPerRun test).
func (a *Accuracy) Score(model string, p Prediction, o Outcome) {
	a.mu.RLock()
	m := a.models[model]
	a.mu.RUnlock()
	if m == nil {
		return
	}
	m.mu.Lock()
	m.scored++
	if !math.IsNaN(p.Magnitude) {
		m.mag.push(RelErr(p.Magnitude, o.Magnitude))
	}
	if !math.IsNaN(p.DurationSec) {
		m.dur.push(RelErr(p.DurationSec, o.DurationSec))
	}
	if !math.IsNaN(p.Hour) && !math.IsNaN(p.Day) {
		hit := 0.0
		if circDist(p.Hour, o.Hour, 24) <= a.cfg.HourTol &&
			circDist(p.Day, o.Day, 31) <= a.cfg.DayTol {
			hit = 1
		}
		m.hit.push(hit)
	}
	if a.cfg.OnScore != nil {
		a.cfg.OnScore(model, m.summaryLocked())
	}
	m.mu.Unlock()
}

// MeasureSummary is one windowed error measure.
type MeasureSummary struct {
	Samples    int     `json:"samples"`
	MeanRelErr float64 `json:"mean_rel_err"`
}

// HitSummary is the windowed timestamp-hit measure.
type HitSummary struct {
	Samples int     `json:"samples"`
	Rate    float64 `json:"rate"`
}

// Summary is one model's current windowed accuracy.
type Summary struct {
	Samples   uint64         `json:"samples"` // all-time scored arrivals
	Magnitude MeasureSummary `json:"magnitude"`
	Duration  MeasureSummary `json:"duration"`
	Timestamp HitSummary     `json:"timestamp"`
}

func (m *modelAcc) summaryLocked() Summary {
	return Summary{
		Samples:   m.scored,
		Magnitude: MeasureSummary{Samples: m.mag.n, MeanRelErr: m.mag.mean()},
		Duration:  MeasureSummary{Samples: m.dur.n, MeanRelErr: m.dur.mean()},
		Timestamp: HitSummary{Samples: m.hit.n, Rate: m.hit.mean()},
	}
}

// Summary returns one model's current summary (zero value if the model is
// unregistered).
func (a *Accuracy) Summary(model string) Summary {
	a.mu.RLock()
	m := a.models[model]
	a.mu.RUnlock()
	if m == nil {
		return Summary{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.summaryLocked()
}

// AccuracySnapshot is the /accuracy response body.
type AccuracySnapshot struct {
	Window  int                `json:"window"`
	HourTol float64            `json:"hour_tolerance"`
	DayTol  float64            `json:"day_tolerance"`
	Models  map[string]Summary `json:"models"`
}

// Snapshot captures every model's summary.
func (a *Accuracy) Snapshot() *AccuracySnapshot {
	a.mu.RLock()
	names := make([]string, len(a.order))
	copy(names, a.order)
	a.mu.RUnlock()
	sort.Strings(names)
	out := &AccuracySnapshot{
		Window:  a.cfg.Window,
		HourTol: a.cfg.HourTol,
		DayTol:  a.cfg.DayTol,
		Models:  make(map[string]Summary, len(names)),
	}
	for _, name := range names {
		out.Models[name] = a.Summary(name)
	}
	return out
}

// Handler serves Snapshot as JSON.
func (a *Accuracy) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(a.Snapshot())
	})
}
