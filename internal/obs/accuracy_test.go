package obs

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"sync"
	"testing"
)

// TestAccuracyHandComputed feeds a deterministic stream where the true
// next attack is known and checks the windows reproduce hand-computed
// §VII-style error rates.
func TestAccuracyHandComputed(t *testing.T) {
	a := NewAccuracy(AccuracyConfig{Window: 8, HourTol: 1, DayTol: 1})
	a.Model("st")

	// Arrival 1: predicted mag 120 vs actual 100 → rel err 0.2;
	// predicted dur 450 vs 500 → 0.1; hour 13 vs 14, day 3 vs 3 → hit.
	a.Score("st",
		Prediction{Magnitude: 120, DurationSec: 450, Hour: 13, Day: 3},
		Outcome{Magnitude: 100, DurationSec: 500, Hour: 14, Day: 3})
	// Arrival 2: mag 50 vs 100 → 0.5; dur 1000 vs 500 → 1.0;
	// hour 2 vs 23 (circular distance 3) → miss.
	a.Score("st",
		Prediction{Magnitude: 50, DurationSec: 1000, Hour: 2, Day: 3},
		Outcome{Magnitude: 100, DurationSec: 500, Hour: 23, Day: 3})

	s := a.Summary("st")
	if s.Samples != 2 {
		t.Fatalf("samples %d, want 2", s.Samples)
	}
	if got, want := s.Magnitude.MeanRelErr, (0.2+0.5)/2; math.Abs(got-want) > 1e-12 {
		t.Fatalf("magnitude mean rel err %v, want %v", got, want)
	}
	if got, want := s.Duration.MeanRelErr, (0.1+1.0)/2; math.Abs(got-want) > 1e-12 {
		t.Fatalf("duration mean rel err %v, want %v", got, want)
	}
	if s.Timestamp.Samples != 2 || math.Abs(s.Timestamp.Rate-0.5) > 1e-12 {
		t.Fatalf("timestamp hit rate %v over %d, want 0.5 over 2", s.Timestamp.Rate, s.Timestamp.Samples)
	}
}

// TestAccuracyNaNSkipsMeasure: the temporal model predicts no duration,
// the spatial model no magnitude — NaN fields must not pollute windows.
func TestAccuracyNaNSkipsMeasure(t *testing.T) {
	a := NewAccuracy(AccuracyConfig{Window: 4})
	a.Model("temporal")
	a.Score("temporal",
		Prediction{Magnitude: 100, DurationSec: math.NaN(), Hour: 5, Day: 10},
		Outcome{Magnitude: 100, DurationSec: 777, Hour: 5, Day: 10})
	s := a.Summary("temporal")
	if s.Magnitude.Samples != 1 || s.Magnitude.MeanRelErr != 0 {
		t.Fatalf("magnitude %+v", s.Magnitude)
	}
	if s.Duration.Samples != 0 {
		t.Fatalf("duration window polluted by NaN prediction: %+v", s.Duration)
	}
	if s.Timestamp.Samples != 1 || s.Timestamp.Rate != 1 {
		t.Fatalf("timestamp %+v", s.Timestamp)
	}
}

// TestAccuracySlidingWindowEvicts: old scores roll out of the window but
// the all-time sample counter keeps counting.
func TestAccuracySlidingWindowEvicts(t *testing.T) {
	a := NewAccuracy(AccuracyConfig{Window: 2})
	a.Model("m")
	out := Outcome{Magnitude: 100, DurationSec: 100, Hour: 0, Day: 1}
	// Rel errs 1.0, then 0.5, then 0.25: the window of 2 keeps the last two.
	for _, mag := range []float64{200, 150, 125} {
		a.Score("m", Prediction{Magnitude: mag, DurationSec: 100, Hour: 0, Day: 1}, out)
	}
	s := a.Summary("m")
	if s.Samples != 3 {
		t.Fatalf("all-time samples %d, want 3", s.Samples)
	}
	if s.Magnitude.Samples != 2 {
		t.Fatalf("windowed samples %d, want 2", s.Magnitude.Samples)
	}
	if got, want := s.Magnitude.MeanRelErr, (0.5+0.25)/2; math.Abs(got-want) > 1e-12 {
		t.Fatalf("windowed mean %v, want %v", got, want)
	}
}

// TestWindowMeanNeverNegative: the ring's running sum accumulates float
// cancellation drift as values are evicted; since every pushed value is
// non-negative, the mean must clamp at 0 rather than report -5e-16.
func TestWindowMeanNeverNegative(t *testing.T) {
	w := window{vals: make([]float64, 3)}
	// 0.1 is not exactly representable: summing and later subtracting it
	// alongside other non-representable values leaves drift in w.sum.
	for i := 0; i < 10000; i++ {
		w.push(0.1)
		w.push(1e-17)
		w.push(0.3)
	}
	w.sum = -5e-16 // the observed drift magnitude, forced deterministically
	if got := w.mean(); got != 0 {
		t.Fatalf("mean with negative drift sum = %v, want 0", got)
	}
}

func TestAccuracyUnregisteredModelIsNoop(t *testing.T) {
	a := NewAccuracy(AccuracyConfig{})
	a.Score("ghost", Prediction{Magnitude: 1}, Outcome{Magnitude: 1})
	if s := a.Summary("ghost"); s.Samples != 0 {
		t.Fatalf("unregistered model scored: %+v", s)
	}
}

func TestCircDist(t *testing.T) {
	cases := []struct{ a, b, mod, want float64 }{
		{23, 0, 24, 1},
		{0, 23, 24, 1},
		{12, 0, 24, 12},
		{31, 1, 31, 1},
		{3, 3, 24, 0},
	}
	for _, c := range cases {
		if got := circDist(c.a, c.b, c.mod); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("circDist(%v,%v,%v) = %v, want %v", c.a, c.b, c.mod, got, c.want)
		}
	}
}

func TestRelErrFloorsDenominator(t *testing.T) {
	if got := RelErr(5, 0.1); math.Abs(got-4.9) > 1e-12 {
		t.Fatalf("RelErr(5, 0.1) = %v, want 4.9 (floored denominator)", got)
	}
	if got := RelErr(90, 100); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("RelErr(90, 100) = %v, want 0.1", got)
	}
}

// TestScoreDoesNotAllocate is the ingest-hot-path guard: once a model is
// registered, Score must be allocation-free, gauge hook included.
func TestScoreDoesNotAllocate(t *testing.T) {
	var sink Summary
	a := NewAccuracy(AccuracyConfig{Window: 64, OnScore: func(_ string, s Summary) { sink = s }})
	a.Model("st")
	p := Prediction{Magnitude: 120, DurationSec: 450, Hour: 13, Day: 3}
	o := Outcome{Magnitude: 100, DurationSec: 500, Hour: 14, Day: 3}
	allocs := testing.AllocsPerRun(1000, func() { a.Score("st", p, o) })
	if allocs != 0 {
		t.Fatalf("Score allocates %.1f objects per call, want 0", allocs)
	}
	_ = sink
}

func TestAccuracyConcurrentScoring(t *testing.T) {
	a := NewAccuracy(AccuracyConfig{Window: 32})
	for _, m := range []string{"a", "b"} {
		a.Model(m)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			model := []string{"a", "b"}[g%2]
			for i := 0; i < 500; i++ {
				a.Score(model, Prediction{Magnitude: 1, DurationSec: 1, Hour: 1, Day: 1},
					Outcome{Magnitude: 2, DurationSec: 2, Hour: 2, Day: 2})
				a.Snapshot()
			}
		}(g)
	}
	wg.Wait()
	snap := a.Snapshot()
	if snap.Models["a"].Samples != 2000 || snap.Models["b"].Samples != 2000 {
		t.Fatalf("lost scores: %+v", snap.Models)
	}
}

func TestAccuracyHandlerJSON(t *testing.T) {
	a := NewAccuracy(AccuracyConfig{Window: 4})
	a.Model("always_same")
	a.Score("always_same", Prediction{Magnitude: 150, DurationSec: 60, Hour: 1, Day: 1},
		Outcome{Magnitude: 100, DurationSec: 60, Hour: 1, Day: 1})
	rec := httptest.NewRecorder()
	a.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/accuracy", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var snap AccuracySnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if snap.Window != 4 || snap.Models["always_same"].Samples != 1 {
		t.Fatalf("unexpected snapshot: %+v", snap)
	}
}

func BenchmarkAccuracyScore(b *testing.B) {
	a := NewAccuracy(AccuracyConfig{Window: 512})
	a.Model("st")
	p := Prediction{Magnitude: 120, DurationSec: 450, Hour: 13, Day: 3}
	o := Outcome{Magnitude: 100, DurationSec: 500, Hour: 14, Day: 3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Score("st", p, o)
	}
}
