// Package obs is the stdlib-only observability kit behind the online
// forecasting daemon (DESIGN.md §9). It contributes four independent
// pieces, each wired into internal/serve and cmd/ddosd:
//
//   - Pipeline tracing (span.go): lightweight spans over the ingest →
//     append → schedule → fit → publish → forecast pipeline, a per-stage
//     latency hook the daemon points at its Prometheus histograms, and a
//     fixed-size ring buffer of recent slow traces served as JSON at
//     /debug/traces.
//   - Online forecast accuracy (accuracy.go): when a verified attack
//     arrives, the forecast published *before* it is scored against it
//     with the paper's §VII error measures — relative error of magnitude
//     and duration, timestamp hit within a tolerance — per model kind and
//     per baseline, over sliding windows. Table VII becomes a live
//     /accuracy endpoint.
//   - Structured logging (log.go): a small slog constructor shared by the
//     daemon's -log-level/-log-format flags.
//   - Profiling (admin.go): net/http/pprof + expvar on an opt-in admin
//     mux, plus a /buildinfo endpoint from runtime/debug.ReadBuildInfo.
//
// Everything here is dependency-free and safe for concurrent use; the
// scoring and span paths are designed to stay off the ingest hot path's
// allocation budget (see the benchmark guards in accuracy_test.go).
package obs
