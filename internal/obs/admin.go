package obs

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
)

// AdminMux is the opt-in operator surface ddosd binds on -admin-addr:
// the full net/http/pprof suite, expvar, and /buildinfo. It is kept off
// the public serving mux on purpose — pprof handlers can run seconds-long
// CPU profiles and dump heap contents, so the admin listener should stay
// on localhost or behind operator-only network policy (DESIGN.md §9).
func AdminMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/buildinfo", BuildInfo)
	return mux
}

// BuildInfoJSON is the /buildinfo response body.
type BuildInfoJSON struct {
	GoVersion string            `json:"go_version"`
	Path      string            `json:"path"`
	Module    string            `json:"module"`
	Version   string            `json:"version"`
	Settings  map[string]string `json:"settings,omitempty"`
	NumCPU    int               `json:"num_cpu"`
	GOOS      string            `json:"goos"`
	GOARCH    string            `json:"goarch"`
}

// BuildProvenance is the compact build identity stamped into ddosload
// reports, bench artifacts, and watchdog bundle metadata: enough to tie a
// number back to the exact commit and toolchain that produced it.
type BuildProvenance struct {
	GoVersion string `json:"go_version"`
	GitCommit string `json:"git_commit,omitempty"`
	Dirty     bool   `json:"git_dirty,omitempty"`
}

// Provenance reads the build identity from debug.ReadBuildInfo. GitCommit
// is empty when the binary was built outside a VCS checkout (go test, or
// a tarball build).
func Provenance() BuildProvenance {
	p := BuildProvenance{GoVersion: runtime.Version()}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				p.GitCommit = s.Value
			case "vcs.modified":
				p.Dirty = s.Value == "true"
			}
		}
	}
	return p
}

// BuildInfo serves runtime/debug.ReadBuildInfo as JSON: which binary is
// answering, built how, on what platform.
func BuildInfo(w http.ResponseWriter, _ *http.Request) {
	out := BuildInfoJSON{
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		out.Path = bi.Path
		out.Module = bi.Main.Path
		out.Version = bi.Main.Version
		if len(bi.Settings) > 0 {
			out.Settings = make(map[string]string, len(bi.Settings))
			for _, s := range bi.Settings {
				out.Settings[s.Key] = s.Value
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(&out)
}
