package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/wal"
)

// SLO-breach flight recorder (DESIGN.md §14). A Watchdog evaluates a set
// of rules (ingest p99, shed rate, replication lag, alert-storm rate —
// supplied by the serve layer) on an interval; when any rule's value
// exceeds its threshold it captures a bounded diagnostics bundle into a
// ring of on-disk directories: pprof cpu+heap profiles, plus any named
// snapshots the caller wires in (recent spans, /statusz, the last N slog
// lines). Every file is written through wal.WriteFileAtomic so a crash
// mid-capture never leaves a torn bundle, and the ring caps disk use —
// the flight recorder can run unattended for months.

// WatchdogRule is one monitored objective: breach when Value() exceeds
// Threshold.
type WatchdogRule struct {
	Name      string
	Threshold float64
	Value     func() float64
}

// Breach is one rule's violation at capture time.
type Breach struct {
	Rule      string  `json:"rule"`
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
}

// WatchdogConfig tunes the flight recorder.
type WatchdogConfig struct {
	// Dir is the bundle ring directory (created if missing). Required.
	Dir string
	// Interval paces rule evaluation. Default 5s.
	Interval time.Duration
	// Cooldown is the minimum spacing between captures — a persistent
	// breach produces one bundle per cooldown, not one per interval.
	// Default 1m.
	Cooldown time.Duration
	// MaxBundles bounds the ring: the oldest bundle directory is removed
	// when a capture would exceed it. Default 8.
	MaxBundles int
	// CPUProfile is the cpu.pprof capture length. Default 1s; 0 keeps the
	// default, negative skips the CPU profile entirely.
	CPUProfile time.Duration
	// Rules are the monitored objectives. An empty set never captures.
	Rules []WatchdogRule
	// Snapshots are extra named bundle files: name → content producer
	// (spans.json, statusz.json, log.txt). A producer's error is recorded
	// in meta.json instead of failing the capture.
	Snapshots map[string]func() ([]byte, error)
	// OnCapture, when non-nil, observes each completed capture (the serve
	// layer's breach counter).
	OnCapture func(bundle string, breaches []Breach)
	// Logger receives breach and capture events. Default: discard.
	Logger *slog.Logger
}

// Watchdog is the flight recorder. Start launches the evaluation loop;
// Check runs one evaluation synchronously (tests and smoke drive it via
// the loop's low thresholds instead).
type Watchdog struct {
	cfg WatchdogConfig

	mu       sync.Mutex // serializes Check/capture against Handler reads
	lastCap  time.Time
	captures uint64

	stop    chan struct{}
	done    chan struct{}
	started bool
}

// NewWatchdog builds a flight recorder and creates its bundle directory.
func NewWatchdog(cfg WatchdogConfig) (*Watchdog, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("obs: watchdog needs a bundle directory")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 5 * time.Second
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = time.Minute
	}
	if cfg.MaxBundles < 1 {
		cfg.MaxBundles = 8
	}
	if cfg.CPUProfile == 0 {
		cfg.CPUProfile = time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: watchdog dir: %w", err)
	}
	return &Watchdog{
		cfg:  cfg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}, nil
}

// Start launches the evaluation loop. Call once.
func (w *Watchdog) Start() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.started {
		return
	}
	w.started = true
	go w.loop()
}

func (w *Watchdog) loop() {
	defer close(w.done)
	t := time.NewTicker(w.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			if _, err := w.Check(); err != nil {
				w.cfg.Logger.Warn("watchdog capture failed", "component", "watchdog", "error", err)
			}
		}
	}
}

// Close stops the evaluation loop (an in-flight capture completes first).
func (w *Watchdog) Close() {
	w.mu.Lock()
	started := w.started
	w.started = false
	w.mu.Unlock()
	if started {
		close(w.stop)
		<-w.done
	}
}

// Check evaluates every rule once and captures a bundle when at least one
// is breached and the cooldown has passed. Returns the bundle directory
// name ("" when nothing was captured).
func (w *Watchdog) Check() (string, error) {
	var breaches []Breach
	for _, r := range w.cfg.Rules {
		if v := r.Value(); v > r.Threshold {
			breaches = append(breaches, Breach{Rule: r.Name, Value: v, Threshold: r.Threshold})
		}
	}
	if len(breaches) == 0 {
		return "", nil
	}
	w.mu.Lock()
	if !w.lastCap.IsZero() && time.Since(w.lastCap) < w.cfg.Cooldown {
		w.mu.Unlock()
		return "", nil
	}
	w.lastCap = time.Now()
	w.captures++
	seq := w.captures
	w.mu.Unlock()
	for _, b := range breaches {
		w.cfg.Logger.Warn("slo breach", "component", "watchdog",
			"rule", b.Rule, "value", b.Value, "threshold", b.Threshold)
	}
	return w.capture(seq, breaches)
}

// bundleMeta is the bundle's meta.json.
type bundleMeta struct {
	CapturedAt time.Time         `json:"captured_at"`
	Breaches   []Breach          `json:"breaches"`
	Rules      []Breach          `json:"rules"` // every rule's value at capture, breached or not
	Errors     map[string]string `json:"capture_errors,omitempty"`
	Build      BuildProvenance   `json:"build"`
}

func (w *Watchdog) capture(seq uint64, breaches []Breach) (string, error) {
	now := time.Now().UTC()
	// The sequence number keeps same-millisecond captures from colliding
	// while preserving chronological sort order of bundle names.
	name := fmt.Sprintf("bundle-%s-%06d-%s", now.Format("20060102T150405.000"), seq, sanitizeName(breaches[0].Rule))
	dir := filepath.Join(w.cfg.Dir, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("obs: bundle dir: %w", err)
	}
	meta := bundleMeta{
		CapturedAt: now,
		Breaches:   breaches,
		Errors:     make(map[string]string),
		Build:      Provenance(),
	}
	for _, r := range w.cfg.Rules {
		meta.Rules = append(meta.Rules, Breach{Rule: r.Name, Value: r.Value(), Threshold: r.Threshold})
	}

	writeFile := func(file string, produce func(io.Writer) error) {
		if err := wal.WriteFileAtomic(filepath.Join(dir, file), produce); err != nil {
			meta.Errors[file] = err.Error()
		}
	}
	// Named snapshots first: they describe the state closest to the breach.
	names := make([]string, 0, len(w.cfg.Snapshots))
	for n := range w.cfg.Snapshots {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		produce := w.cfg.Snapshots[n]
		b, err := produce()
		if err != nil {
			meta.Errors[n] = err.Error()
			continue
		}
		writeFile(n, func(fw io.Writer) error { _, err := fw.Write(b); return err })
	}
	writeFile("heap.pprof", func(fw io.Writer) error {
		return pprof.Lookup("heap").WriteTo(fw, 0)
	})
	if w.cfg.CPUProfile > 0 {
		writeFile("cpu.pprof", func(fw io.Writer) error {
			// Fails when another profiler (admin pprof) is live; the error
			// lands in meta.json and the rest of the bundle stands.
			if err := pprof.StartCPUProfile(fw); err != nil {
				return err
			}
			time.Sleep(w.cfg.CPUProfile)
			pprof.StopCPUProfile()
			return nil
		})
	}
	if len(meta.Errors) == 0 {
		meta.Errors = nil
	}
	err := wal.WriteFileAtomic(filepath.Join(dir, "meta.json"), func(fw io.Writer) error {
		enc := json.NewEncoder(fw)
		enc.SetIndent("", "  ")
		return enc.Encode(&meta)
	})
	if err != nil {
		return name, err
	}
	w.prune()
	w.cfg.Logger.Info("captured diagnostics bundle", "component", "watchdog",
		"bundle", name, "breaches", len(breaches))
	if w.cfg.OnCapture != nil {
		w.cfg.OnCapture(name, breaches)
	}
	return name, nil
}

// prune enforces the bundle ring: oldest directories beyond MaxBundles
// are removed. Bundle names sort chronologically by construction.
func (w *Watchdog) prune() {
	names := w.bundleNames()
	for len(names) > w.cfg.MaxBundles {
		_ = os.RemoveAll(filepath.Join(w.cfg.Dir, names[0]))
		names = names[1:]
	}
}

func (w *Watchdog) bundleNames() []string {
	entries, err := os.ReadDir(w.cfg.Dir)
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "bundle-") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names
}

func sanitizeName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
			return r
		default:
			return '_'
		}
	}, s)
}

// BundleInfo is one bundle in the /debug/bundle listing.
type BundleInfo struct {
	Name  string   `json:"name"`
	Files []string `json:"files"`
}

// Bundles lists the retained bundles, oldest first.
func (w *Watchdog) Bundles() []BundleInfo {
	var out []BundleInfo
	for _, name := range w.bundleNames() {
		info := BundleInfo{Name: name}
		if entries, err := os.ReadDir(filepath.Join(w.cfg.Dir, name)); err == nil {
			for _, e := range entries {
				if !e.IsDir() {
					info.Files = append(info.Files, e.Name())
				}
			}
		}
		out = append(out, info)
	}
	return out
}

// Captures returns the all-time capture count.
func (w *Watchdog) Captures() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.captures
}

// bundleList is the /debug/bundle response body.
type bundleList struct {
	Dir        string       `json:"dir"`
	MaxBundles int          `json:"max_bundles"`
	Captures   uint64       `json:"captures"`
	Rules      []Breach     `json:"rules"`
	Bundles    []BundleInfo `json:"bundles"`
}

// Handler serves the bundle ring: GET /debug/bundle lists bundles and the
// current rule values; ?name=<bundle>&file=<f> streams one captured file.
func (w *Watchdog) Handler() http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		name := r.URL.Query().Get("name")
		file := r.URL.Query().Get("file")
		if name == "" && file == "" {
			list := bundleList{
				Dir:        w.cfg.Dir,
				MaxBundles: w.cfg.MaxBundles,
				Captures:   w.Captures(),
				Bundles:    w.Bundles(),
			}
			for _, rule := range w.cfg.Rules {
				list.Rules = append(list.Rules, Breach{Rule: rule.Name, Value: rule.Value(), Threshold: rule.Threshold})
			}
			rw.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(rw).Encode(&list)
			return
		}
		if name == "" || file == "" || !safeBundlePart(name) || !safeBundlePart(file) {
			writeBundleErr(rw, http.StatusBadRequest, "need both name=<bundle> and file=<f>, plain names only")
			return
		}
		f, err := os.Open(filepath.Join(w.cfg.Dir, name, file))
		if err != nil {
			writeBundleErr(rw, http.StatusNotFound, fmt.Sprintf("no such bundle file: %s/%s", name, file))
			return
		}
		defer f.Close()
		if strings.HasSuffix(file, ".json") {
			rw.Header().Set("Content-Type", "application/json")
		} else {
			rw.Header().Set("Content-Type", "application/octet-stream")
		}
		_, _ = io.Copy(rw, f)
	})
}

// safeBundlePart rejects path traversal in bundle/file names.
func safeBundlePart(s string) bool {
	return s != "" && s != "." && s != ".." &&
		!strings.ContainsAny(s, "/\\") && !strings.Contains(s, "..")
}

func writeBundleErr(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
