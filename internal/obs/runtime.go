package obs

import (
	"runtime"
	"time"

	"repro/internal/serve/metrics"
)

// Runtime self-telemetry (DESIGN.md §14): Go runtime health published as
// ddosd_go_* gauges on the existing /metrics exposition. The gauges are
// refreshed by a Registry.OnScrape hook — a scrape reads one
// runtime.ReadMemStats snapshot; between scrapes nothing runs, so the
// collector adds zero background goroutine churn and zero hot-path cost.

// RuntimeCollector owns the ddosd_go_* gauges and refreshes them on
// scrape.
type RuntimeCollector struct {
	goroutines  *metrics.Gauge
	gomaxprocs  *metrics.Gauge
	heapAlloc   *metrics.Gauge
	heapSys     *metrics.Gauge
	heapObjects *metrics.Gauge
	stackSys    *metrics.Gauge
	gcCycles    *metrics.Gauge
	gcPauseTot  *metrics.FGauge
	gcLastPause *metrics.FGauge
	sinceGC     *metrics.FGauge
}

// RegisterRuntime registers the runtime gauges into reg and hooks their
// refresh into the scrape path. Call once per registry.
func RegisterRuntime(reg *metrics.Registry) *RuntimeCollector {
	c := &RuntimeCollector{
		goroutines:  reg.Gauge("ddosd_go_goroutines", "Live goroutines at the last scrape."),
		gomaxprocs:  reg.Gauge("ddosd_go_gomaxprocs", "Scheduler parallelism (GOMAXPROCS)."),
		heapAlloc:   reg.Gauge("ddosd_go_heap_alloc_bytes", "Heap bytes allocated and still in use."),
		heapSys:     reg.Gauge("ddosd_go_heap_sys_bytes", "Heap bytes obtained from the OS."),
		heapObjects: reg.Gauge("ddosd_go_heap_objects", "Live heap objects."),
		stackSys:    reg.Gauge("ddosd_go_stack_sys_bytes", "Stack memory obtained from the OS."),
		gcCycles:    reg.Gauge("ddosd_go_gc_cycles_total", "Completed GC cycles."),
	}
	c.gcPauseTot = reg.FGauge("ddosd_go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.")
	c.gcLastPause = reg.FGauge("ddosd_go_gc_last_pause_seconds", "Most recent GC stop-the-world pause.")
	c.sinceGC = reg.FGauge("ddosd_go_gc_since_seconds", "Seconds since the last completed GC (0 before the first).")
	reg.OnScrape(c.Refresh)
	return c
}

// Refresh re-reads the runtime state into the gauges (one ReadMemStats —
// a sub-millisecond stop-the-world, paid only when /metrics is scraped).
func (c *RuntimeCollector) Refresh() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c.goroutines.Set(int64(runtime.NumGoroutine()))
	c.gomaxprocs.Set(int64(runtime.GOMAXPROCS(0)))
	c.heapAlloc.Set(int64(ms.HeapAlloc))
	c.heapSys.Set(int64(ms.HeapSys))
	c.heapObjects.Set(int64(ms.HeapObjects))
	c.stackSys.Set(int64(ms.StackSys))
	c.gcCycles.Set(int64(ms.NumGC))
	c.gcPauseTot.Set(float64(ms.PauseTotalNs) / 1e9)
	if ms.NumGC > 0 {
		c.gcLastPause.Set(float64(ms.PauseNs[(ms.NumGC+255)%256]) / 1e9)
		c.sinceGC.Set(time.Since(time.Unix(0, int64(ms.LastGC))).Seconds())
	}
}

// RuntimeSnapshot is the runtime section of /statusz and bundle
// captures: the same numbers as the gauges, as JSON.
type RuntimeSnapshot struct {
	Goroutines  int     `json:"goroutines"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	HeapAlloc   uint64  `json:"heap_alloc_bytes"`
	HeapSys     uint64  `json:"heap_sys_bytes"`
	HeapObjects uint64  `json:"heap_objects"`
	GCCycles    uint32  `json:"gc_cycles"`
	GCPauseSec  float64 `json:"gc_pause_total_sec"`
}

// ReadRuntime captures the runtime section.
func ReadRuntime() RuntimeSnapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return RuntimeSnapshot{
		Goroutines:  runtime.NumGoroutine(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		HeapAlloc:   ms.HeapAlloc,
		HeapSys:     ms.HeapSys,
		HeapObjects: ms.HeapObjects,
		GCCycles:    ms.NumGC,
		GCPauseSec:  float64(ms.PauseTotalNs) / 1e9,
	}
}
