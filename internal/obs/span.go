package obs

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// maxChildren caps the children recorded under one span; a runaway batch
// cannot turn a trace into an unbounded tree. Extra children are counted
// in SpanJSON.Dropped instead of stored.
const maxChildren = 128

// TracerConfig tunes a Tracer. The zero value keeps the last 64 completed
// traces regardless of duration and observes no histograms.
type TracerConfig struct {
	// Capacity is the ring-buffer size for completed root traces.
	// Default 64.
	Capacity int
	// Slow retains only root traces at least this long; 0 retains all.
	Slow time.Duration
	// Observe, when non-nil, is called once per span when its root
	// completes — the daemon points this at its per-stage latency
	// histograms. Pre-measured children attached with Span.Attach are
	// skipped (their stages were observed by whoever measured them).
	Observe func(stage string, seconds float64)
}

// Tracer hands out pipeline spans and keeps a fixed-size ring of recent
// completed traces. All methods are safe for concurrent use.
type Tracer struct {
	cfg TracerConfig

	mu   sync.Mutex
	ring []SpanJSON // completed root traces, oldest overwritten first
	next int
	n    int
}

// NewTracer builds a tracer.
func NewTracer(cfg TracerConfig) *Tracer {
	if cfg.Capacity < 1 {
		cfg.Capacity = 64
	}
	return &Tracer{cfg: cfg, ring: make([]SpanJSON, cfg.Capacity)}
}

// Span is one timed pipeline stage. A span returned by Tracer.Start is a
// root; Child opens a sub-stage. Every span must be ended exactly once,
// children before their root — the trace is recorded (and histograms
// observed) when the root ends.
type Span struct {
	tracer *Tracer
	root   *Span // nil on roots
	name   string
	start  time.Time
	end    time.Time

	mu       sync.Mutex // children/attrs: Child may be called from worker goroutines
	children []*Span
	attrs    []spanAttr
	dropped  int
	measured bool // attached pre-measured: skip the Observe hook
}

type spanAttr struct{ k, v string }

// Start opens a root span.
func (t *Tracer) Start(name string) *Span {
	return &Span{tracer: t, name: name, start: time.Now()}
}

// Child opens a sub-span under s. Safe to call concurrently (the refit
// batch opens one fit child per worker).
func (s *Span) Child(name string) *Span {
	c := &Span{name: name, start: time.Now()}
	if s.root != nil {
		c.root = s.root
	} else {
		c.root = s
	}
	s.addChild(c)
	return c
}

// Attach records a pre-measured child (an aggregate the caller timed by
// hand, e.g. total store-append time across one ingest batch). Attached
// children appear in the trace tree but are not re-observed by the
// tracer's histogram hook.
func (s *Span) Attach(name string, start time.Time, d time.Duration) {
	c := &Span{name: name, start: start, end: start.Add(d), measured: true}
	s.addChild(c)
}

func (s *Span) addChild(c *Span) {
	s.mu.Lock()
	if len(s.children) >= maxChildren {
		s.dropped++
	} else {
		s.children = append(s.children, c)
	}
	s.mu.Unlock()
}

// SetAttr annotates the span with a key/value pair.
func (s *Span) SetAttr(key, value string) {
	s.mu.Lock()
	s.attrs = append(s.attrs, spanAttr{key, value})
	s.mu.Unlock()
}

// End closes the span. Ending a root span freezes the whole tree: every
// stage duration is pushed through the tracer's Observe hook and, if the
// root is slow enough, the tree enters the /debug/traces ring.
func (s *Span) End() {
	s.end = time.Now()
	if s.root == nil && s.tracer != nil {
		s.tracer.finish(s)
	}
}

func (t *Tracer) finish(root *Span) {
	if t.cfg.Observe != nil {
		root.observeAll(root.end, t.cfg.Observe)
	}
	if root.end.Sub(root.start) < t.cfg.Slow {
		return
	}
	tree := root.toJSON(root.end)
	t.mu.Lock()
	t.ring[t.next] = tree
	t.next = (t.next + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	t.mu.Unlock()
}

// duration resolves the span's length; a child left open when the root
// ended (a misuse, but not worth panicking over) borrows the root's end.
func (s *Span) duration(rootEnd time.Time) time.Duration {
	end := s.end
	if end.IsZero() {
		end = rootEnd
	}
	return end.Sub(s.start)
}

func (s *Span) observeAll(rootEnd time.Time, observe func(string, float64)) {
	if !s.measured {
		observe(s.name, s.duration(rootEnd).Seconds())
	}
	s.mu.Lock()
	children := s.children
	s.mu.Unlock()
	for _, c := range children {
		c.observeAll(rootEnd, observe)
	}
}

// SpanJSON is the wire form of a completed span tree (/debug/traces).
type SpanJSON struct {
	Name        string            `json:"name"`
	Start       time.Time         `json:"start"`
	DurationSec float64           `json:"duration_sec"`
	Attrs       map[string]string `json:"attrs,omitempty"`
	Dropped     int               `json:"dropped_children,omitempty"`
	Children    []SpanJSON        `json:"children,omitempty"`
}

func (s *Span) toJSON(rootEnd time.Time) SpanJSON {
	s.mu.Lock()
	children := s.children
	attrs := s.attrs
	dropped := s.dropped
	s.mu.Unlock()
	out := SpanJSON{
		Name:        s.name,
		Start:       s.start,
		DurationSec: s.duration(rootEnd).Seconds(),
		Dropped:     dropped,
	}
	if len(attrs) > 0 {
		out.Attrs = make(map[string]string, len(attrs))
		for _, a := range attrs {
			out.Attrs[a.k] = a.v
		}
	}
	for _, c := range children {
		out.Children = append(out.Children, c.toJSON(rootEnd))
	}
	return out
}

// Snapshot returns the retained traces, most recent first.
func (t *Tracer) Snapshot() []SpanJSON {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanJSON, 0, t.n)
	for i := 0; i < t.n; i++ {
		// next-1 is the most recently written slot.
		idx := (t.next - 1 - i + len(t.ring) + len(t.ring)) % len(t.ring)
		out = append(out, t.ring[idx])
	}
	return out
}

// TracesSnapshot is the /debug/traces response body.
type TracesSnapshot struct {
	Capacity int        `json:"capacity"`
	SlowSec  float64    `json:"slow_threshold_sec"`
	Traces   []SpanJSON `json:"traces"`
}

// Handler serves the trace ring as JSON.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(&TracesSnapshot{
			Capacity: t.cfg.Capacity,
			SlowSec:  t.cfg.Slow.Seconds(),
			Traces:   t.Snapshot(),
		})
	})
}
