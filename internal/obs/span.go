package obs

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// maxChildren caps the children recorded under one span; a runaway batch
// cannot turn a trace into an unbounded tree. Extra children are counted
// in SpanJSON.Dropped instead of stored.
const maxChildren = 128

// TraceHeader carries trace context across node boundaries (DESIGN.md
// §14): a W3C-traceparent-style value `<trace-id>-<span-id>`, 16 lowercase
// hex digits each. The cluster router injects it on split-proxy
// sub-requests, redirect locations, and replication fetches; the serve
// handlers adopt it so one cross-node ingest is a single stitched trace.
const TraceHeader = "X-Ddos-Trace"

// TraceParam is the query-parameter fallback for TraceHeader on 307
// redirects: a redirected client replays its original headers, so the
// redirecting node threads the context through the Location URL instead.
const TraceParam = "xtrace"

// TraceContext is one position in a distributed trace: the trace every
// span of the request shares, and the sender-side span that becomes the
// parent of whatever the receiver starts.
type TraceContext struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether the context carries usable IDs.
func (c TraceContext) Valid() bool { return c.TraceID != 0 && c.SpanID != 0 }

// String renders the TraceHeader wire form `<trace-id>-<span-id>`.
func (c TraceContext) String() string {
	return fmt.Sprintf("%016x-%016x", c.TraceID, c.SpanID)
}

// ParseTraceContext decodes a TraceHeader value; ok is false on anything
// malformed (the receiver then starts a fresh root, never fails the
// request over a bad trace header).
func ParseTraceContext(s string) (ctx TraceContext, ok bool) {
	a, b, found := strings.Cut(s, "-")
	if !found || len(a) != 16 || len(b) != 16 {
		return TraceContext{}, false
	}
	tid, err1 := strconv.ParseUint(a, 16, 64)
	sid, err2 := strconv.ParseUint(b, 16, 64)
	if err1 != nil || err2 != nil {
		return TraceContext{}, false
	}
	ctx = TraceContext{TraceID: tid, SpanID: sid}
	return ctx, ctx.Valid()
}

// ContextFromRequest extracts trace context from an inbound request:
// TraceHeader first, the redirect query fallback second.
func ContextFromRequest(r *http.Request) (TraceContext, bool) {
	if h := r.Header.Get(TraceHeader); h != "" {
		if ctx, ok := ParseTraceContext(h); ok {
			return ctx, true
		}
	}
	if q := r.URL.Query().Get(TraceParam); q != "" {
		return ParseTraceContext(q)
	}
	return TraceContext{}, false
}

// newID draws a non-zero random 64-bit ID. rand/v2's global functions sit
// on the runtime's per-P generators — no lock, no allocation — so IDs are
// safe on the ingest hot path.
func newID() uint64 {
	for {
		if id := rand.Uint64(); id != 0 {
			return id
		}
	}
}

// TracerConfig tunes a Tracer. The zero value keeps the last 64 completed
// traces regardless of duration and observes no histograms.
type TracerConfig struct {
	// Capacity is the ring-buffer size for completed root traces.
	// Default 64.
	Capacity int
	// Slow retains only root traces at least this long; 0 retains all.
	Slow time.Duration
	// Observe, when non-nil, is called once per span when its root
	// completes — the daemon points this at its per-stage latency
	// histograms. Pre-measured children attached with Span.Attach are
	// skipped (their stages were observed by whoever measured them).
	Observe func(stage string, seconds float64)
	// OnDrop, when non-nil, is called each time the ring evicts a root
	// trace no Snapshot ever read — the signal behind
	// ddosd_trace_dropped_total, so trace-capacity tuning is measured
	// instead of guessed.
	OnDrop func()
}

// ringEntry is one retained root trace plus whether any Snapshot read it
// since it was written (unread evictions count as drops).
type ringEntry struct {
	tree SpanJSON
	read bool
}

// Tracer hands out pipeline spans and keeps a fixed-size ring of recent
// completed traces. All methods are safe for concurrent use.
type Tracer struct {
	cfg TracerConfig

	mu   sync.Mutex
	ring []ringEntry // completed root traces, oldest overwritten first
	next int
	n    int
}

// NewTracer builds a tracer.
func NewTracer(cfg TracerConfig) *Tracer {
	if cfg.Capacity < 1 {
		cfg.Capacity = 64
	}
	return &Tracer{cfg: cfg, ring: make([]ringEntry, cfg.Capacity)}
}

// Span is one timed pipeline stage. A span returned by Tracer.Start is a
// root; Child opens a sub-stage. Every span must be ended exactly once,
// children before their root — the trace is recorded (and histograms
// observed) when the root ends.
type Span struct {
	tracer *Tracer
	root   *Span // nil on roots
	name   string
	start  time.Time
	end    time.Time

	traceID  uint64
	spanID   uint64
	parentID uint64 // 0 on locally originated roots

	mu       sync.Mutex // children/attrs: Child may be called from worker goroutines
	children []*Span
	attrs    []spanAttr
	dropped  int
	measured bool // attached pre-measured: skip the Observe hook
	discard  bool // Drop was called: End records nothing
}

type spanAttr struct{ k, v string }

// Start opens a root span with a fresh trace ID.
func (t *Tracer) Start(name string) *Span {
	return &Span{tracer: t, name: name, start: time.Now(), traceID: newID(), spanID: newID()}
}

// StartRemote opens a root span that continues a trace started on another
// node: it shares ctx's trace ID and is parented under ctx's span. An
// invalid context degrades to a fresh Start.
func (t *Tracer) StartRemote(name string, ctx TraceContext) *Span {
	s := t.Start(name)
	if ctx.Valid() {
		s.traceID = ctx.TraceID
		s.parentID = ctx.SpanID
	}
	return s
}

// Context returns the span's position for cross-node injection: put
// Context().String() in TraceHeader and the receiver's StartRemote root
// becomes this span's child in the stitched tree.
func (s *Span) Context() TraceContext {
	return TraceContext{TraceID: s.traceID, SpanID: s.spanID}
}

// TraceIDString returns the span's trace ID in the /debug/traces?trace=
// filter form.
func (s *Span) TraceIDString() string { return fmt.Sprintf("%016x", s.traceID) }

// Child opens a sub-span under s. Safe to call concurrently (the refit
// batch opens one fit child per worker).
func (s *Span) Child(name string) *Span {
	c := &Span{name: name, start: time.Now(),
		traceID: s.traceID, spanID: newID(), parentID: s.spanID}
	if s.root != nil {
		c.root = s.root
	} else {
		c.root = s
	}
	s.addChild(c)
	return c
}

// Attach records a pre-measured child (an aggregate the caller timed by
// hand, e.g. total store-append time across one ingest batch). Attached
// children appear in the trace tree but are not re-observed by the
// tracer's histogram hook.
func (s *Span) Attach(name string, start time.Time, d time.Duration) {
	c := &Span{name: name, start: start, end: start.Add(d), measured: true,
		traceID: s.traceID, spanID: newID(), parentID: s.spanID}
	s.addChild(c)
}

func (s *Span) addChild(c *Span) {
	s.mu.Lock()
	if len(s.children) >= maxChildren {
		s.dropped++
	} else {
		s.children = append(s.children, c)
	}
	s.mu.Unlock()
}

// SetAttr annotates the span with a key/value pair.
func (s *Span) SetAttr(key, value string) {
	s.mu.Lock()
	s.attrs = append(s.attrs, spanAttr{key, value})
	s.mu.Unlock()
}

// Drop marks a root span as not worth recording: End neither observes
// histograms nor enters the ring. The replication tailer uses it to keep
// empty polls (the overwhelming majority) out of the trace ring.
func (s *Span) Drop() {
	s.mu.Lock()
	s.discard = true
	s.mu.Unlock()
}

// End closes the span. Ending a root span freezes the whole tree: every
// stage duration is pushed through the tracer's Observe hook and, if the
// root is slow enough, the tree enters the /debug/traces ring.
func (s *Span) End() {
	s.end = time.Now()
	if s.root == nil && s.tracer != nil {
		s.tracer.finish(s)
	}
}

func (t *Tracer) finish(root *Span) {
	root.mu.Lock()
	discard := root.discard
	root.mu.Unlock()
	if discard {
		return
	}
	if t.cfg.Observe != nil {
		root.observeAll(root.end, t.cfg.Observe)
	}
	if root.end.Sub(root.start) < t.cfg.Slow {
		return
	}
	tree := root.toJSON(root.end)
	t.mu.Lock()
	evictedUnread := t.n == len(t.ring) && !t.ring[t.next].read
	t.ring[t.next] = ringEntry{tree: tree}
	t.next = (t.next + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	t.mu.Unlock()
	if evictedUnread && t.cfg.OnDrop != nil {
		t.cfg.OnDrop()
	}
}

// duration resolves the span's length; a child left open when the root
// ended (a misuse, but not worth panicking over) borrows the root's end.
func (s *Span) duration(rootEnd time.Time) time.Duration {
	end := s.end
	if end.IsZero() {
		end = rootEnd
	}
	return end.Sub(s.start)
}

func (s *Span) observeAll(rootEnd time.Time, observe func(string, float64)) {
	if !s.measured {
		observe(s.name, s.duration(rootEnd).Seconds())
	}
	s.mu.Lock()
	children := s.children
	s.mu.Unlock()
	for _, c := range children {
		c.observeAll(rootEnd, observe)
	}
}

// SpanJSON is the wire form of a completed span tree (/debug/traces).
// TraceID is shared by every span of one distributed request; ParentID on
// a root names a span on another node (or another local root) the tree
// belongs under — StitchTraces reattaches those.
type SpanJSON struct {
	Name        string            `json:"name"`
	TraceID     string            `json:"trace_id,omitempty"`
	SpanID      string            `json:"span_id,omitempty"`
	ParentID    string            `json:"parent_id,omitempty"`
	Node        string            `json:"node,omitempty"` // stamped by the cluster merge
	Start       time.Time         `json:"start"`
	DurationSec float64           `json:"duration_sec"`
	Attrs       map[string]string `json:"attrs,omitempty"`
	Dropped     int               `json:"dropped_children,omitempty"`
	Children    []SpanJSON        `json:"children,omitempty"`
}

func hexID(id uint64) string {
	if id == 0 {
		return ""
	}
	return fmt.Sprintf("%016x", id)
}

func (s *Span) toJSON(rootEnd time.Time) SpanJSON {
	s.mu.Lock()
	children := s.children
	attrs := s.attrs
	dropped := s.dropped
	s.mu.Unlock()
	out := SpanJSON{
		Name:        s.name,
		TraceID:     hexID(s.traceID),
		SpanID:      hexID(s.spanID),
		ParentID:    hexID(s.parentID),
		Start:       s.start,
		DurationSec: s.duration(rootEnd).Seconds(),
		Dropped:     dropped,
	}
	if len(attrs) > 0 {
		out.Attrs = make(map[string]string, len(attrs))
		for _, a := range attrs {
			out.Attrs[a.k] = a.v
		}
	}
	for _, c := range children {
		out.Children = append(out.Children, c.toJSON(rootEnd))
	}
	return out
}

// Snapshot returns the retained traces, most recent first, and marks them
// read (an eviction of a read trace is not a drop — somebody saw it).
func (t *Tracer) Snapshot() []SpanJSON {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanJSON, 0, t.n)
	for i := 0; i < t.n; i++ {
		// next-1 is the most recently written slot.
		idx := (t.next - 1 - i + len(t.ring) + len(t.ring)) % len(t.ring)
		t.ring[idx].read = true
		out = append(out, t.ring[idx].tree)
	}
	return out
}

// TraceQuery selects a subset of the trace ring (the /debug/traces
// ?trace=, ?stage=, ?min_ms= filters). Zero fields do not filter.
type TraceQuery struct {
	TraceID string        // exact trace-id match (16 hex digits)
	Stage   string        // keep traces containing a span with this name
	MinDur  time.Duration // keep traces whose root is at least this long
}

// IsZero reports whether the query filters nothing.
func (q TraceQuery) IsZero() bool {
	return q.TraceID == "" && q.Stage == "" && q.MinDur <= 0
}

// Match reports whether one root trace satisfies the query.
func (q TraceQuery) Match(t *SpanJSON) bool {
	if q.TraceID != "" && t.TraceID != q.TraceID {
		return false
	}
	if q.MinDur > 0 && t.DurationSec < q.MinDur.Seconds() {
		return false
	}
	if q.Stage != "" && !hasStage(t, q.Stage) {
		return false
	}
	return true
}

func hasStage(t *SpanJSON, stage string) bool {
	if t.Name == stage {
		return true
	}
	for i := range t.Children {
		if hasStage(&t.Children[i], stage) {
			return true
		}
	}
	return false
}

// FilterTraces keeps the traces matching q, preserving order.
func FilterTraces(traces []SpanJSON, q TraceQuery) []SpanJSON {
	if q.IsZero() {
		return traces
	}
	out := make([]SpanJSON, 0, len(traces))
	for i := range traces {
		if q.Match(&traces[i]) {
			out = append(out, traces[i])
		}
	}
	return out
}

// QueryFromRequest parses the /debug/traces filters. err names the first
// unparsable parameter.
func QueryFromRequest(r *http.Request) (TraceQuery, error) {
	q := TraceQuery{
		TraceID: r.URL.Query().Get("trace"),
		Stage:   r.URL.Query().Get("stage"),
	}
	if ms := r.URL.Query().Get("min_ms"); ms != "" {
		v, err := strconv.ParseFloat(ms, 64)
		if err != nil || v < 0 {
			return q, fmt.Errorf("bad min_ms %q", ms)
		}
		q.MinDur = time.Duration(v * float64(time.Millisecond))
	}
	return q, nil
}

// stitchNode is StitchTraces' mutable working form of one span.
type stitchNode struct {
	span     SpanJSON // Children ignored; the pointer slice below is canonical
	children []*stitchNode
	root     *stitchNode // top of the tree this node currently belongs to
}

// StitchTraces merges a forest of span trees — local ring snapshots plus
// trees fetched from peer nodes — into as few trees as possible: a root
// whose ParentID names a span present anywhere else in the forest is
// re-attached as that span's child. Cross-node ingests (proxy fan-out,
// redirects, replication) thereby render as the single tree they
// logically are. Order among the remaining roots is preserved; attached
// children sort by start time after the sender's own children.
func StitchTraces(trees []SpanJSON) []SpanJSON {
	if len(trees) < 2 {
		return trees
	}
	roots := make([]*stitchNode, 0, len(trees))
	index := make(map[string]*stitchNode)
	var build func(s *SpanJSON, root *stitchNode) *stitchNode
	build = func(s *SpanJSON, root *stitchNode) *stitchNode {
		n := &stitchNode{span: *s, root: root}
		n.span.Children = nil
		if root == nil {
			n.root = n
		}
		if n.span.SpanID != "" {
			// First write wins on (pathological) duplicate span IDs.
			if _, dup := index[n.span.SpanID]; !dup {
				index[n.span.SpanID] = n
			}
		}
		for i := range s.Children {
			n.children = append(n.children, build(&s.Children[i], n.root))
		}
		return n
	}
	for i := range trees {
		roots = append(roots, build(&trees[i], nil))
	}
	attached := make(map[*stitchNode]bool)
	for _, r := range roots {
		parent := index[r.span.ParentID]
		if r.span.ParentID == "" || parent == nil || parent.root == r {
			continue
		}
		parent.children = append(parent.children, r)
		attached[r] = true
		// Re-root the attached tree so a chain A→B→C cannot cycle.
		var reroot func(n *stitchNode)
		reroot = func(n *stitchNode) {
			n.root = parent.root
			for _, c := range n.children {
				reroot(c)
			}
		}
		reroot(r)
	}
	out := make([]SpanJSON, 0, len(roots))
	var render func(n *stitchNode) SpanJSON
	render = func(n *stitchNode) SpanJSON {
		s := n.span
		s.Children = nil
		kids := append([]*stitchNode(nil), n.children...)
		sortStableByStart(kids)
		for _, c := range kids {
			s.Children = append(s.Children, render(c))
		}
		return s
	}
	for _, r := range roots {
		if !attached[r] {
			out = append(out, render(r))
		}
	}
	return out
}

func sortStableByStart(nodes []*stitchNode) {
	// Insertion sort: child lists are tiny and mostly ordered already.
	for i := 1; i < len(nodes); i++ {
		for j := i; j > 0 && nodes[j].span.Start.Before(nodes[j-1].span.Start); j-- {
			nodes[j], nodes[j-1] = nodes[j-1], nodes[j]
		}
	}
}

// TracesSnapshot is the /debug/traces response body.
type TracesSnapshot struct {
	Capacity int        `json:"capacity"`
	SlowSec  float64    `json:"slow_threshold_sec"`
	Traces   []SpanJSON `json:"traces"`
}

// Capacity returns the configured ring size.
func (t *Tracer) Capacity() int { return t.cfg.Capacity }

// SlowThreshold returns the configured retention threshold.
func (t *Tracer) SlowThreshold() time.Duration { return t.cfg.Slow }

// Handler serves the trace ring as JSON, filtered by ?trace=<id>,
// ?stage=<name>, and ?min_ms=<float> when present.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q, err := QueryFromRequest(r)
		if err != nil {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusBadRequest)
			_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(&TracesSnapshot{
			Capacity: t.cfg.Capacity,
			SlowSec:  t.cfg.Slow.Seconds(),
			Traces:   FilterTraces(t.Snapshot(), q),
		})
	})
}
