package obs

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeAndObserveHook(t *testing.T) {
	var mu sync.Mutex
	observed := map[string]int{}
	tr := NewTracer(TracerConfig{
		Capacity: 8,
		Observe: func(stage string, seconds float64) {
			if seconds < 0 {
				t.Errorf("negative duration for %s", stage)
			}
			mu.Lock()
			observed[stage]++
			mu.Unlock()
		},
	})

	root := tr.Start("refit")
	root.SetAttr("targets", "2")
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := root.Child("fit")
			c.SetAttr("outcome", "ok")
			c.End()
		}()
	}
	wg.Wait()
	pub := root.Child("publish")
	pub.End()
	root.Attach("premeasured", time.Now(), time.Millisecond)
	root.End()

	if got := observed["refit"]; got != 1 {
		t.Fatalf("refit observed %d times, want 1", got)
	}
	if got := observed["fit"]; got != 2 {
		t.Fatalf("fit observed %d times, want 2", got)
	}
	if got := observed["publish"]; got != 1 {
		t.Fatalf("publish observed %d times, want 1", got)
	}
	if got := observed["premeasured"]; got != 0 {
		t.Fatalf("pre-measured child observed %d times, want 0 (already measured)", got)
	}

	traces := tr.Snapshot()
	if len(traces) != 1 {
		t.Fatalf("snapshot has %d traces, want 1", len(traces))
	}
	tree := traces[0]
	if tree.Name != "refit" || len(tree.Children) != 4 {
		t.Fatalf("unexpected tree: name=%q children=%d", tree.Name, len(tree.Children))
	}
	if tree.Attrs["targets"] != "2" {
		t.Fatalf("root attrs = %v", tree.Attrs)
	}
	if tree.DurationSec <= 0 {
		t.Fatalf("root duration %v", tree.DurationSec)
	}
}

func TestTracerRingEvictsOldest(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 3})
	for _, name := range []string{"a", "b", "c", "d", "e"} {
		sp := tr.Start(name)
		sp.End()
	}
	traces := tr.Snapshot()
	if len(traces) != 3 {
		t.Fatalf("ring holds %d, want 3", len(traces))
	}
	// Most recent first.
	for i, want := range []string{"e", "d", "c"} {
		if traces[i].Name != want {
			t.Fatalf("traces[%d] = %q, want %q", i, traces[i].Name, want)
		}
	}
}

func TestTracerSlowThresholdFilters(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 4, Slow: 5 * time.Millisecond})
	fast := tr.Start("fast")
	fast.End()
	slow := tr.Start("slow")
	time.Sleep(10 * time.Millisecond)
	slow.End()
	traces := tr.Snapshot()
	if len(traces) != 1 || traces[0].Name != "slow" {
		t.Fatalf("slow filter kept %v", traces)
	}
}

func TestSpanChildCap(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 2})
	root := tr.Start("ingest")
	for i := 0; i < maxChildren+10; i++ {
		root.Child("append").End()
	}
	root.End()
	tree := tr.Snapshot()[0]
	if len(tree.Children) != maxChildren {
		t.Fatalf("children %d, want cap %d", len(tree.Children), maxChildren)
	}
	if tree.Dropped != 10 {
		t.Fatalf("dropped %d, want 10", tree.Dropped)
	}
}

func TestTracerHandlerJSON(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 2})
	sp := tr.Start("forecast")
	sp.End()
	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var body TracesSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if body.Capacity != 2 || len(body.Traces) != 1 || body.Traces[0].Name != "forecast" {
		t.Fatalf("unexpected body: %+v", body)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 16, Observe: func(string, float64) {}})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				root := tr.Start("ingest")
				root.Child("append").End()
				root.End()
				tr.Snapshot()
			}
		}()
	}
	wg.Wait()
	if len(tr.Snapshot()) != 16 {
		t.Fatalf("ring not full: %d", len(tr.Snapshot()))
	}
}
