package obs

import (
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync"
)

// LogRing tees a log stream: lines pass through to the inner writer
// unchanged while the most recent Cap complete lines are retained in a
// ring. The SLO watchdog snapshots the ring into its diagnostics bundle
// (log.txt) — the last N slog lines before the breach, without any file
// tailing. Safe for concurrent writers (slog serializes writes per
// handler, but the watchdog reads concurrently).
type LogRing struct {
	inner io.Writer

	mu    sync.Mutex
	lines []string
	next  int
	n     int
	part  bytes.Buffer // trailing write fragment with no newline yet
}

// NewLogRing wraps inner, retaining the last capacity lines (default 256).
func NewLogRing(inner io.Writer, capacity int) *LogRing {
	if capacity < 1 {
		capacity = 256
	}
	return &LogRing{inner: inner, lines: make([]string, capacity)}
}

// Write forwards to the inner writer and folds complete lines into the
// ring. The inner writer's error is returned (the ring never fails).
func (l *LogRing) Write(p []byte) (int, error) {
	n, err := l.inner.Write(p)
	l.mu.Lock()
	l.part.Write(p[:n])
	for {
		raw := l.part.Bytes()
		i := bytes.IndexByte(raw, '\n')
		if i < 0 {
			break
		}
		l.lines[l.next] = string(raw[:i])
		l.next = (l.next + 1) % len(l.lines)
		if l.n < len(l.lines) {
			l.n++
		}
		l.part.Next(i + 1)
	}
	l.mu.Unlock()
	return n, err
}

// Lines returns the retained lines, oldest first.
func (l *LogRing) Lines() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, l.n)
	for i := 0; i < l.n; i++ {
		out = append(out, l.lines[(l.next-l.n+i+2*len(l.lines))%len(l.lines)])
	}
	return out
}

// NewLogger builds the daemon's structured logger. Level is one of
// debug/info/warn/error, format one of text/json — the values behind
// ddosd's -log-level and -log-format flags.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "", "info":
		lv = slog.LevelInfo
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
}
