package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds the daemon's structured logger. Level is one of
// debug/info/warn/error, format one of text/json — the values behind
// ddosd's -log-level and -log-format flags.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "", "info":
		lv = slog.LevelInfo
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
}
