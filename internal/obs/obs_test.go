package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestNewLoggerLevelsAndFormats(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "warn", "text")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("hidden")
	lg.Warn("shown", "component", "ddosd")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Fatalf("info leaked past warn level: %q", out)
	}
	if !strings.Contains(out, "msg=shown") || !strings.Contains(out, "component=ddosd") {
		t.Fatalf("text output missing attrs: %q", out)
	}

	buf.Reset()
	lg, err = NewLogger(&buf, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("boot", "target", 42)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("json handler emitted bad JSON: %v: %q", err, buf.String())
	}
	if rec["msg"] != "boot" || rec["target"] != float64(42) {
		t.Fatalf("unexpected record: %v", rec)
	}

	if _, err := NewLogger(&buf, "loud", "text"); err == nil {
		t.Fatal("bad level accepted")
	}
	if _, err := NewLogger(&buf, "info", "yaml"); err == nil {
		t.Fatal("bad format accepted")
	}
}

func TestAdminMuxEndpoints(t *testing.T) {
	mux := AdminMux()
	for _, path := range []string{"/debug/pprof/", "/debug/vars", "/buildinfo"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Errorf("%s returned %d", path, rec.Code)
		}
	}
}

func TestBuildInfoJSON(t *testing.T) {
	rec := httptest.NewRecorder()
	BuildInfo(rec, httptest.NewRequest("GET", "/buildinfo", nil))
	var bi BuildInfoJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &bi); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if bi.GoVersion == "" || bi.NumCPU < 1 {
		t.Fatalf("unexpected build info: %+v", bi)
	}
}
