package parallel

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		n := 100
		counts := make([]int32, n)
		err := ForEach(n, workers, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	ran := false
	if err := ForEach(0, 4, func(int) error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForEach(-3, 4, func(int) error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("fn ran for empty input")
	}
}

func TestForEachCollectsAllErrorsInIndexOrder(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	err := ForEach(10, 4, func(i int) error {
		switch i {
		case 7:
			return errB
		case 2:
			return errA
		}
		return nil
	})
	if !errors.Is(err, errA) || !errors.Is(err, errB) {
		t.Fatalf("joined error missing a member: %v", err)
	}
	// Index order: the error a serial loop would hit first comes first.
	text := err.Error()
	if strings.Index(text, "a") > strings.Index(text, "b") {
		t.Fatalf("errors not in index order: %q", text)
	}
}

func TestForEachErrorDoesNotCancelSiblings(t *testing.T) {
	var ran atomic.Int32
	err := ForEach(50, 8, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return errors.New("early")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if got := ran.Load(); got != 50 {
		t.Fatalf("only %d/50 tasks ran", got)
	}
}

func TestMapPreservesIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		out, err := Map(200, workers, func(i int) (string, error) {
			return fmt.Sprintf("v%d", i), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != fmt.Sprintf("v%d", i) {
				t.Fatalf("workers=%d: out[%d] = %q", workers, i, v)
			}
		}
	}
}

func TestMapErrorDiscardsResults(t *testing.T) {
	out, err := Map(5, 2, func(i int) (int, error) {
		if i == 3 {
			return 0, errors.New("boom")
		}
		return i, nil
	})
	if err == nil || out != nil {
		t.Fatalf("want nil results + error, got %v, %v", out, err)
	}
}

func TestForEachRepanicsLowestIndex(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected re-panic")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, "task 2") {
			t.Fatalf("expected lowest-index panic (task 2), got %q", msg)
		}
	}()
	ForEach(10, 4, func(i int) error {
		if i == 2 || i == 8 {
			panic(fmt.Sprintf("p%d", i))
		}
		return nil
	})
}

func TestParallelMatchesSerialReduction(t *testing.T) {
	// The grid-search pattern: compute independently, reduce in index
	// order. The parallel reduction must match the serial loop exactly.
	score := func(i int) float64 { return float64((i*7919)%101) + float64(i)*1e-9 }
	n := 500

	serialBest, serialIdx := 0.0, -1
	for i := 0; i < n; i++ {
		if v := score(i); serialIdx < 0 || v < serialBest {
			serialBest, serialIdx = v, i
		}
	}
	vals, err := Map(n, 8, func(i int) (float64, error) { return score(i), nil })
	if err != nil {
		t.Fatal(err)
	}
	parBest, parIdx := 0.0, -1
	for i, v := range vals {
		if parIdx < 0 || v < parBest {
			parBest, parIdx = v, i
		}
	}
	if parIdx != serialIdx || parBest != serialBest {
		t.Fatalf("parallel winner (%d, %v) != serial winner (%d, %v)", parIdx, parBest, serialIdx, serialBest)
	}
}
