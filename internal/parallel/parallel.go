// Package parallel is the repro's dependency-free bounded worker pool: an
// errgroup-style fan-out primitive for index-addressed work with two
// guarantees the evaluation engine depends on (see DESIGN.md):
//
//   - Deterministic results. fn(i) writes only slot i; results and errors
//     are aggregated in index order. Worker scheduling can change *when* a
//     task runs, never *what* the caller observes.
//   - Complete error collection. A failing task does not cancel its
//     siblings; every error is reported, joined in index order, so the
//     first error in the joined chain is the one the equivalent serial
//     loop would have hit first.
//
// Workers pull tasks from a shared atomic counter (work stealing), so
// uneven task costs — an ARIMA grid where high orders dominate, a BFS
// fan-out where one source reaches the whole graph — still balance.
package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers returns the default fan-out width: GOMAXPROCS at call time. The
// model-fitting workloads here are CPU-bound, so wider pools only add
// scheduling overhead.
func Workers() int {
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines
// (workers <= 0 means Workers()). It returns after all tasks finish. Errors
// are collected per index and joined in index order; a failing task never
// cancels the others. If any task panics, ForEach re-panics in the caller
// with the lowest-index panic value after all tasks have drained.
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = Workers()
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	panics := make([]any, n)
	var panicked atomic.Bool
	var next atomic.Int64
	run := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						panics[i] = r
						panicked.Store(true)
					}
				}()
				errs[i] = fn(i)
			}()
		}
	}
	if workers == 1 {
		run()
	} else {
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				run()
			}()
		}
		wg.Wait()
	}
	if panicked.Load() {
		for i, r := range panics {
			if r != nil {
				panic(fmt.Sprintf("parallel: task %d panicked: %v", i, r))
			}
		}
	}
	return errors.Join(errs...)
}

// Map runs fn(i) for every i in [0, n) on at most workers goroutines and
// returns the results in index order — the same slice a serial loop would
// build. On error the partial results are discarded and the joined error
// (index order, see ForEach) is returned.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
