package nn_test

import (
	"fmt"

	"repro/internal/nn"
)

// Train a NAR network on a deterministic periodic series and forecast.
func ExampleFitNAR() {
	// Period-4 repeating pattern.
	series := make([]float64, 80)
	pattern := []float64{1, 5, 9, 5}
	for i := range series {
		series[i] = pattern[i%4]
	}
	m, err := nn.FitNAR(series, nn.NARConfig{
		Delays: 4, Hidden: 6, Seed: 1,
		Train: nn.TrainConfig{Epochs: 800},
	})
	if err != nil {
		panic(err)
	}
	f := m.Forecast(4)
	fmt.Printf("next period: %.0f %.0f %.0f %.0f\n", f[0], f[1], f[2], f[3])
	// Output:
	// next period: 1 5 9 5
}
