package nn

import (
	"math"
	"math/rand/v2"
	"runtime"
	"testing"
)

func TestNewNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(0, 3, 1); err == nil {
		t.Error("in=0 should error")
	}
	if _, err := NewNetwork(3, 0, 1); err == nil {
		t.Error("hidden=0 should error")
	}
	n, err := NewNetwork(2, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n.In != 2 || n.Hidden != 4 || len(n.W1) != 4 || len(n.W1[0]) != 2 {
		t.Errorf("topology wrong: %+v", n)
	}
}

func TestNetworkDeterministicInit(t *testing.T) {
	a, _ := NewNetwork(3, 5, 99)
	b, _ := NewNetwork(3, 5, 99)
	for h := range a.W1 {
		for i := range a.W1[h] {
			if a.W1[h][i] != b.W1[h][i] {
				t.Fatal("same seed should give identical weights")
			}
		}
	}
}

func TestTrainLearnsLinearFunction(t *testing.T) {
	// y = 0.5 x0 - 0.3 x1 is easily representable.
	rng := rand.New(rand.NewPCG(31, 32))
	n := 200
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		xs[i] = x
		ys[i] = 0.5*x[0] - 0.3*x[1]
	}
	net, _ := NewNetwork(2, 6, 7)
	mse, err := net.Train(xs, ys, &TrainConfig{Epochs: 500})
	if err != nil {
		t.Fatal(err)
	}
	if mse > 0.01 {
		t.Errorf("final MSE = %v, want < 0.01", mse)
	}
}

func TestTrainLearnsNonlinearFunction(t *testing.T) {
	// y = tanh(2 x) is exactly representable by one hidden unit.
	n := 100
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		x := -2 + 4*float64(i)/float64(n-1)
		xs[i] = []float64{x}
		ys[i] = math.Tanh(2 * x)
	}
	net, _ := NewNetwork(1, 4, 3)
	mse, err := net.Train(xs, ys, &TrainConfig{Epochs: 800})
	if err != nil {
		t.Fatal(err)
	}
	if mse > 0.005 {
		t.Errorf("nonlinear MSE = %v, want < 0.005", mse)
	}
	// XOR-like interaction: y = x0*x1 on {-1,1}^2.
	xor := [][]float64{{-1, -1}, {-1, 1}, {1, -1}, {1, 1}}
	yXor := []float64{1, -1, -1, 1}
	net2, _ := NewNetwork(2, 8, 5)
	mse2, err := net2.Train(xor, yXor, &TrainConfig{Epochs: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if mse2 > 0.05 {
		t.Errorf("XOR MSE = %v — the net failed to learn an interaction", mse2)
	}
}

func TestTrainErrors(t *testing.T) {
	net, _ := NewNetwork(1, 2, 1)
	if _, err := net.Train(nil, nil, nil); err == nil {
		t.Error("no data should error")
	}
	if _, err := net.Train([][]float64{{1}}, []float64{1, 2}, nil); err == nil {
		t.Error("mismatched lengths should error")
	}
}

func TestPredictZeroPadsShortInput(t *testing.T) {
	net, _ := NewNetwork(3, 2, 1)
	a := net.Predict([]float64{1, 2})
	b := net.Predict([]float64{1, 2, 0})
	if a != b {
		t.Errorf("short input should be zero-padded: %v vs %v", a, b)
	}
}

func TestFitNARAndForecast(t *testing.T) {
	// A noiseless sine is strongly predictable by a NAR model.
	n := 300
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Sin(2 * math.Pi * float64(i) / 20)
	}
	m, err := FitNAR(xs, NARConfig{Delays: 6, Hidden: 8, Seed: 1, Train: TrainConfig{Epochs: 600}})
	if err != nil {
		t.Fatal(err)
	}
	p := m.PredictNext()
	want := math.Sin(2 * math.Pi * float64(n) / 20)
	if math.Abs(p-want) > 0.15 {
		t.Errorf("next = %v, want ~%v", p, want)
	}
	f := m.Forecast(10)
	if len(f) != 10 {
		t.Fatalf("forecast len = %d", len(f))
	}
	for i, v := range f {
		want := math.Sin(2 * math.Pi * float64(n+i) / 20)
		if math.Abs(v-want) > 0.5 {
			t.Errorf("h=%d forecast %v, want ~%v", i+1, v, want)
		}
	}
}

func TestNARUpdateWalkForward(t *testing.T) {
	n := 400
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 5 + 2*math.Sin(2*math.Pi*float64(i)/24)
	}
	m, err := FitNAR(xs[:300], NARConfig{Delays: 6, Hidden: 8, Seed: 2, Train: TrainConfig{Epochs: 500}})
	if err != nil {
		t.Fatal(err)
	}
	var sse float64
	for _, x := range xs[300:] {
		p := m.PredictNext()
		sse += (p - x) * (p - x)
		m.Update(x)
	}
	rmse := math.Sqrt(sse / 100)
	if rmse > 0.5 {
		t.Errorf("walk-forward RMSE = %v, want < 0.5", rmse)
	}
}

func TestFitNARTooShort(t *testing.T) {
	if _, err := FitNAR([]float64{1, 2, 3}, NARConfig{Delays: 5}); err == nil {
		t.Error("short series should error")
	}
}

func TestNARDefaults(t *testing.T) {
	xs := make([]float64, 50)
	for i := range xs {
		xs[i] = float64(i % 7)
	}
	m, err := FitNAR(xs, NARConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Delays != 4 {
		t.Errorf("default delays = %d, want 4", m.Delays)
	}
}

func TestGridSearchNAR(t *testing.T) {
	n := 260
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Sin(2*math.Pi*float64(i)/12) + 0.05*math.Cos(float64(i))
	}
	m, err := GridSearchNAR(xs, []int{2, 6}, []int{3, 8}, 4, TrainConfig{Epochs: 300})
	if err != nil {
		t.Fatal(err)
	}
	// The chosen model must predict the continuation decently.
	p := m.PredictNext()
	want := math.Sin(2 * math.Pi * float64(n) / 12)
	if math.Abs(p-want) > 0.6 {
		t.Errorf("grid-searched prediction %v, want ~%v", p, want)
	}
	if _, err := GridSearchNAR([]float64{1, 2}, nil, nil, 1, TrainConfig{}); err == nil {
		t.Error("infeasible grid should error")
	}
}

func TestLagFromTailPanicsOnShortTail(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Error("lagFromTail on a short tail should panic, not zero-pad")
		}
	}()
	lagFromTail([]float64{1, 2}, 3)
}

func TestLagFromTailOrder(t *testing.T) {
	// Most recent observation first, exactly Delays values.
	got := lagFromTail([]float64{10, 20, 30, 40}, 3)
	want := []float64{40, 30, 20}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lagFromTail = %v, want %v", got, want)
		}
	}
}

func TestSelectNARConfigParallelMatchesSerial(t *testing.T) {
	n := 240
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Sin(2*math.Pi*float64(i)/16) + 0.1*math.Cos(float64(3*i))
	}
	delays := []int{2, 4, 6}
	hidden := []int{3, 5, 8}
	train := TrainConfig{Epochs: 200}

	serial := func() NARConfig {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
		cfg, err := selectNARConfig(xs, delays, hidden, 7, train)
		if err != nil {
			t.Fatal(err)
		}
		return cfg
	}()
	par, err := selectNARConfig(xs, delays, hidden, 7, train)
	if err != nil {
		t.Fatal(err)
	}
	if par != serial {
		t.Fatalf("parallel grid chose %+v, serial chose %+v", par, serial)
	}
}
